// Package repro's top-level benchmarks regenerate every table and figure
// of the paper's evaluation (§VI). Each benchmark runs the corresponding
// experiment harness end to end and reports the headline simulated metric
// alongside Go's own timing.
//
// By default the benchmarks run the 50x scaled-down Quick configuration so
// `go test -bench=.` completes in minutes. Set SCRATCHPIPE_FULL=1 to run
// the paper-scale configuration (8 tables x 10M rows); expect several
// minutes per benchmark.
package repro

import (
	"fmt"
	"os"
	"testing"

	"repro/internal/bench"
)

func benchConfig() bench.Config {
	if os.Getenv("SCRATCHPIPE_FULL") != "" {
		return bench.Default()
	}
	cfg := bench.Quick()
	return cfg
}

func runFigure(b *testing.B, name string, run func(bench.Config) (*bench.Table, error)) {
	cfg := benchConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tab, err := run(cfg)
		if err != nil {
			b.Fatalf("%s: %v", name, err)
		}
		if i == 0 && testing.Verbose() {
			b.Logf("\n%s", tab)
		}
	}
}

// BenchmarkFigure3 regenerates the dataset locality characterization.
func BenchmarkFigure3(b *testing.B) { runFigure(b, "fig3", bench.Figure3) }

// BenchmarkFigure5 regenerates the motivation time breakdown.
func BenchmarkFigure5(b *testing.B) { runFigure(b, "fig5", bench.Figure5) }

// BenchmarkFigure6 regenerates the static-cache hit-rate curves.
func BenchmarkFigure6(b *testing.B) { runFigure(b, "fig6", bench.Figure6) }

// BenchmarkFigure12a regenerates the baseline latency breakdown sweep.
func BenchmarkFigure12a(b *testing.B) { runFigure(b, "fig12a", bench.Figure12a) }

// BenchmarkFigure12b regenerates ScratchPipe's per-stage latencies.
func BenchmarkFigure12b(b *testing.B) { runFigure(b, "fig12b", bench.Figure12b) }

// BenchmarkFigure13 regenerates the end-to-end speedup comparison.
func BenchmarkFigure13(b *testing.B) { runFigure(b, "fig13", bench.Figure13) }

// BenchmarkFigure14 regenerates the energy comparison.
func BenchmarkFigure14(b *testing.B) { runFigure(b, "fig14", bench.Figure14) }

// BenchmarkFigure15a regenerates the embedding-dimension sensitivity.
func BenchmarkFigure15a(b *testing.B) { runFigure(b, "fig15a", bench.Figure15a) }

// BenchmarkFigure15b regenerates the lookup-count sensitivity.
func BenchmarkFigure15b(b *testing.B) { runFigure(b, "fig15b", bench.Figure15b) }

// BenchmarkTableI regenerates the training-cost comparison.
func BenchmarkTableI(b *testing.B) { runFigure(b, "tablei", bench.TableI) }

// BenchmarkOverhead regenerates the §VI-D provisioning study.
func BenchmarkOverhead(b *testing.B) { runFigure(b, "overhead", bench.OverheadStudy) }

// BenchmarkSensitivityExtra regenerates the §VI-E policy/batch/MLP study.
func BenchmarkSensitivityExtra(b *testing.B) { runFigure(b, "sensitivity", bench.SensitivityExtra) }

// BenchmarkAblation regenerates the window/pipelining ablation.
func BenchmarkAblation(b *testing.B) { runFigure(b, "ablation", bench.AblationWindows) }

// Example of the headline comparison, runnable as a test: it asserts the
// paper's qualitative result on the quick configuration.
func TestHeadlineShape(t *testing.T) {
	if testing.Short() {
		t.Skip("headline shape check is not short")
	}
	cfg := benchConfig()
	pts, err := bench.CollectFigure13(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		if p.ScratchPipe >= p.Static {
			t.Errorf("%s cache %.0f%%: ScratchPipe (%.2f ms) not faster than static (%.2f ms)",
				p.Class, p.CacheFrac*100, p.ScratchPipe*1e3, p.Static*1e3)
		}
		if p.ScratchPipe >= p.StrawMan {
			t.Errorf("%s cache %.0f%%: pipelining bought nothing (%.2f vs %.2f ms)",
				p.Class, p.CacheFrac*100, p.ScratchPipe*1e3, p.StrawMan*1e3)
		}
		if p.Static > p.Hybrid*1.05 {
			t.Errorf("%s cache %.0f%%: static cache slower than no cache (%.2f vs %.2f ms)",
				p.Class, p.CacheFrac*100, p.Static*1e3, p.Hybrid*1e3)
		}
	}
	// Speedup must shrink as locality grows (the paper's crossover
	// structure): compare Random vs High at the same cache size.
	var spRandom, spHigh float64
	for _, p := range pts {
		if p.CacheFrac == 0.02 {
			_, _, sp := p.SpeedupVsStatic()
			switch fmt.Sprint(p.Class) {
			case "Random":
				spRandom = sp
			case "High":
				spHigh = sp
			}
		}
	}
	if spRandom <= spHigh {
		t.Errorf("speedup vs static should shrink with locality: Random %.2fx vs High %.2fx", spRandom, spHigh)
	}
}
