// Placement study: the communication wall, priced — and then pushed
// back. PR 2's sharded planner coordinates through shared memory at
// zero modeled cost; this study places the shards on real topology
// nodes (sockets, PCIe devices, hosts) and sweeps placement policies x
// shard counts, showing how the cross-shard coordinator's victim-merge,
// touch-stamp, and borrow traffic turns into iteration latency as
// placement crosses NUMA -> PCIe -> network tiers — the scaling wall
// "Understanding Training Efficiency of DLRM at Scale" (Acun et al.)
// measures — and what each point costs in Table I's units (one rented
// instance per host the placement spans).
//
// Parts 3 and 4 then sweep the coordination protocols of internal/shard
// (-coord on the CLIs): batched candidate polls, the per-host
// coordinator tier, and approximate epoch-quantized LRU. Batched and
// hier are exact — identical plans, victims, and hit rates, verified in
// place — so the wall's retreat is pure protocol; approx additionally
// trades a measured eviction divergence for the last of the stamp-sync
// traffic.
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"repro/internal/cost"
	"repro/internal/hw"
	"repro/scratchpipe"
)

func main() {
	classFlag := flag.String("class", "Medium", "locality class: Random|Low|Medium|High")
	iters := flag.Int("iters", 12, "simulated iterations per data point")
	rows := flag.Int64("rows", 200_000, "rows per embedding table (quick scale)")
	flag.Parse()

	class, err := scratchpipe.ParseClass(*classFlag)
	if err != nil {
		log.Fatal(err)
	}
	model := scratchpipe.DefaultModel()
	model.RowsPerTable = *rows
	model.BatchSize = 256

	runCoord := func(shards int, topoName string, policy scratchpipe.PlacementPolicy, mode scratchpipe.CoordMode) *scratchpipe.Report {
		var topo *scratchpipe.Topology
		if topoName != "single" {
			topo, err = scratchpipe.ParseTopology(topoName)
			if err != nil {
				log.Fatal(err)
			}
		}
		tr, err := scratchpipe.NewTrainer(scratchpipe.Config{
			Engine:    scratchpipe.KindScratchPipe,
			Model:     model,
			Class:     class,
			CacheFrac: 0.02,
			Shards:    shards,
			Topology:  topo,
			Placement: policy,
			Coord:     mode,
			Seed:      42,
		})
		if err != nil {
			log.Fatalf("%s/%s/%s/S=%d: %v", topoName, policy, mode, shards, err)
		}
		rep, err := tr.Train(*iters)
		if err != nil {
			log.Fatalf("%s/%s/%s/S=%d: %v", topoName, policy, mode, shards, err)
		}
		return rep
	}
	run := func(shards int, topoName string, policy scratchpipe.PlacementPolicy) *scratchpipe.Report {
		return runCoord(shards, topoName, policy, scratchpipe.CoordExact)
	}

	fmt.Printf("Placement study — ScratchPipe, class %s, %d tables x %d rows, 2%% cache\n\n",
		class, model.NumTables, model.RowsPerTable)

	// Part 1: the tier ladder. Same shard count, same placement policy,
	// topologies one interconnect tier apart. Coordination latency must
	// climb monotonically; cache statistics must not move at all.
	const ladderShards = 4
	fmt.Println("Tier ladder (4 shards, stripe placement): the same coordinator, priced per tier")
	fmt.Printf("%-12s %-8s %12s %14s %12s %10s\n",
		"topology", "tier", "iter (ms)", "coord (ms)", "hit rate", "hosts")
	base := run(ladderShards, "single", scratchpipe.PlaceStripe)
	for _, row := range []struct{ topo, tier string }{
		{"single", "local"},
		{"numa4", "numa"},
		{"pcie4", "pcie"},
		{"cluster4x1", "net"},
	} {
		rep := run(ladderShards, row.topo, scratchpipe.PlaceStripe)
		topo, _ := scratchpipe.ParseTopology(row.topo)
		cl := cost.ClusterFor(topo, cost.P32xlarge)
		fmt.Printf("%-12s %-8s %12.3f %14.4f %11.1f%% %10d\n",
			row.topo, row.tier, rep.IterTime*1e3, rep.CoordTime*1e3, rep.HitRate()*100, cl.Hosts)
		if rep.Hits != base.Hits || rep.Misses != base.Misses || rep.Evictions != base.Evictions {
			log.Fatalf("%s: cache behaviour changed under placement — invariance broken", row.topo)
		}
	}

	// Part 2: the policy x shard-count frontier on the two-host cluster.
	// More shards buy parallelism a 1-CPU simulation cannot show, but
	// every extra shard adds coordinator traffic; the frontier shows
	// throughput against rented-fleet cost.
	fmt.Println()
	fmt.Println("Policy frontier on cluster2x2 (two hosts x two sockets, network between hosts)")
	fmt.Printf("%-10s %-10s %12s %14s %16s %14s\n",
		"placement", "shards", "iter (ms)", "coord (ms)", "$/1M iters", "fleet")
	topo, _ := scratchpipe.ParseTopology("cluster2x2")
	for _, policy := range []scratchpipe.PlacementPolicy{
		scratchpipe.PlaceStripe, scratchpipe.PlaceRange, scratchpipe.PlaceLoadAware,
	} {
		for _, shards := range []int{2, 4, 8} {
			rep := run(shards, "cluster2x2", policy)
			// Rent only the hosts this placement actually spans (e.g.
			// stripe S=2 keeps both shards on host 0). Host span is
			// weight-independent for stripe/range by construction and
			// for greedy load-aware whenever every shard carries mass
			// (empty nodes win ties before any node doubles up), so
			// nil weights reproduce the engine's placements' span.
			pl, err := hw.NewPlacement(policy, topo, shards, nil)
			if err != nil {
				log.Fatal(err)
			}
			fleet := cost.Cluster{Instance: cost.P32xlarge, Hosts: pl.Hosts()}
			fmt.Printf("%-10s %-10d %12.3f %14.4f %16s %14s\n",
				policy, shards, rep.IterTime*1e3, rep.CoordTime*1e3,
				cost.FormatUSD(fleet.MillionIterCost(rep.IterTime)), fleet.Name())
		}
	}
	single := cost.Cluster{Instance: cost.P32xlarge, Hosts: 1}
	fmt.Printf("%-10s %-10d %12.3f %14.4f %16s %14s   <- the paper's design point\n",
		"(none)", 1, base.IterTime*1e3, 0.0,
		cost.FormatUSD(single.MillionIterCost(base.IterTime)), single.Name())

	// Part 3: the coordination-protocol frontier on the two-host
	// cluster. Same placement, same shard count — only the protocol
	// changes. Batched and hier must leave cache behaviour untouched
	// (verified in place); every successive protocol must shed rounds.
	fmt.Println()
	fmt.Println("Coordination protocols on cluster2x2 (4 shards, stripe): the wall, renegotiated")
	fmt.Printf("%-10s %12s %14s %12s %12s %22s\n",
		"coord", "iter (ms)", "coord (ms)", "rounds/iter", "KB/iter", "divergence")
	exact := runCoord(4, "cluster2x2", scratchpipe.PlaceStripe, scratchpipe.CoordExact)
	for _, mode := range []scratchpipe.CoordMode{
		scratchpipe.CoordExact, scratchpipe.CoordBatched, scratchpipe.CoordHier, scratchpipe.CoordApprox,
	} {
		rep := exact
		if mode != scratchpipe.CoordExact {
			rep = runCoord(4, "cluster2x2", scratchpipe.PlaceStripe, mode)
		}
		div := "exact by construction"
		if mode == scratchpipe.CoordApprox {
			d := rep.CoordDivergence
			div = fmt.Sprintf("edit %.3f, hitΔ %+.3f%%", d.EditRate(), d.HitRateDelta()*100)
		} else if rep.Hits != exact.Hits || rep.Misses != exact.Misses || rep.Evictions != exact.Evictions {
			log.Fatalf("%s: cache behaviour diverged from exact — exactness broken", mode)
		}
		fmt.Printf("%-10s %12.3f %14.4f %12.1f %12.2f %22s\n",
			mode, rep.IterTime*1e3, rep.CoordTime*1e3,
			float64(rep.Coord.Messages)/float64(rep.Iters),
			rep.Coord.Bytes()/float64(rep.Iters)/1e3, div)
	}

	// Part 4: where the wall retreats to. The tier ladder again, one
	// column per protocol: the wall sits at the first tier whose
	// coordination dominates the iteration (coord > 25% of iter).
	fmt.Println()
	fmt.Println("Wall retreat: coordination ms/iter across the tier ladder, per protocol")
	fmt.Printf("%-12s %-8s", "topology", "tier")
	modes := []scratchpipe.CoordMode{
		scratchpipe.CoordExact, scratchpipe.CoordBatched, scratchpipe.CoordHier, scratchpipe.CoordApprox,
	}
	for _, mode := range modes {
		fmt.Printf(" %18s", mode)
	}
	fmt.Println()
	wall := map[scratchpipe.CoordMode]string{}
	for _, row := range []struct{ topo, tier string }{
		{"numa4", "numa"},
		{"pcie4", "pcie"},
		{"cluster4x1", "net"},
	} {
		fmt.Printf("%-12s %-8s", row.topo, row.tier)
		for _, mode := range modes {
			rep := runCoord(ladderShards, row.topo, scratchpipe.PlaceStripe, mode)
			marker := " "
			if rep.CoordTime > 0.25*rep.IterTime {
				marker = "*"
				if wall[mode] == "" {
					wall[mode] = row.tier
				}
			}
			fmt.Printf(" %16.3f%s ", rep.CoordTime*1e3, marker)
		}
		fmt.Println()
	}
	fmt.Printf("%-21s", "wall (coord>25% iter)")
	for _, mode := range modes {
		at := wall[mode]
		if at == "" {
			at = "none"
		}
		fmt.Printf(" %18s", at)
	}
	fmt.Println()

	fmt.Println()
	fmt.Println(strings.TrimSpace(`
Reading: plans, evictions, and hit rates are identical in every exact,
batched, and hier row — placement prices the coordination the
shared-memory planner got for free, and the batched/hierarchical
protocols renegotiate that price without changing a single eviction.
Exact coordination pays one cross-node round per eviction event, so
PCIe- and network-tier placements put the global-LRU merge on the
critical path (the Acun et al. scaling wall). Batching candidate polls
collapses O(evictions) rounds into O(shards) per Plan; the host tier
then moves most of those onto intra-host links, leaving O(hosts)
cross-network rounds — the wall retreats past PCIe and only reappears
where network latency x remaining rounds still bites. Approx LRU drops
the last per-Plan stamp-sync traffic by quantizing recency epochs; its
eviction order may drift from exact LRU, and the divergence column
reports the measured drift (edit rate over eviction sequences, hit-rate
delta) instead of assuming it away. Range placement keeps neighbor
shards co-located (fewest cross-host borrow hops); load-aware placement
balances hot-table shard mass and pulls the worst-case rows in when
table heat is skewed.`))
}
