// Placement study: the communication wall, priced. PR 2's sharded
// planner coordinates through shared memory at zero modeled cost; this
// study places the shards on real topology nodes (sockets, PCIe
// devices, hosts) and sweeps placement policies x shard counts, showing
// how the cross-shard coordinator's victim-merge, touch-stamp, and
// borrow traffic turns into iteration latency as placement crosses
// NUMA -> PCIe -> network tiers — the scaling wall "Understanding
// Training Efficiency of DLRM at Scale" (Acun et al.) measures — and
// what each point costs in Table I's units (one rented instance per
// host the placement spans).
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"repro/internal/cost"
	"repro/internal/hw"
	"repro/scratchpipe"
)

func main() {
	classFlag := flag.String("class", "Medium", "locality class: Random|Low|Medium|High")
	iters := flag.Int("iters", 12, "simulated iterations per data point")
	rows := flag.Int64("rows", 200_000, "rows per embedding table (quick scale)")
	flag.Parse()

	class, err := scratchpipe.ParseClass(*classFlag)
	if err != nil {
		log.Fatal(err)
	}
	model := scratchpipe.DefaultModel()
	model.RowsPerTable = *rows
	model.BatchSize = 256

	run := func(shards int, topoName string, policy scratchpipe.PlacementPolicy) *scratchpipe.Report {
		var topo *scratchpipe.Topology
		if topoName != "single" {
			topo, err = scratchpipe.ParseTopology(topoName)
			if err != nil {
				log.Fatal(err)
			}
		}
		tr, err := scratchpipe.NewTrainer(scratchpipe.Config{
			Engine:    scratchpipe.KindScratchPipe,
			Model:     model,
			Class:     class,
			CacheFrac: 0.02,
			Shards:    shards,
			Topology:  topo,
			Placement: policy,
			Seed:      42,
		})
		if err != nil {
			log.Fatalf("%s/%s/S=%d: %v", topoName, policy, shards, err)
		}
		rep, err := tr.Train(*iters)
		if err != nil {
			log.Fatalf("%s/%s/S=%d: %v", topoName, policy, shards, err)
		}
		return rep
	}

	fmt.Printf("Placement study — ScratchPipe, class %s, %d tables x %d rows, 2%% cache\n\n",
		class, model.NumTables, model.RowsPerTable)

	// Part 1: the tier ladder. Same shard count, same placement policy,
	// topologies one interconnect tier apart. Coordination latency must
	// climb monotonically; cache statistics must not move at all.
	const ladderShards = 4
	fmt.Println("Tier ladder (4 shards, stripe placement): the same coordinator, priced per tier")
	fmt.Printf("%-12s %-8s %12s %14s %12s %10s\n",
		"topology", "tier", "iter (ms)", "coord (ms)", "hit rate", "hosts")
	base := run(ladderShards, "single", scratchpipe.PlaceStripe)
	for _, row := range []struct{ topo, tier string }{
		{"single", "local"},
		{"numa4", "numa"},
		{"pcie4", "pcie"},
		{"cluster4x1", "net"},
	} {
		rep := run(ladderShards, row.topo, scratchpipe.PlaceStripe)
		topo, _ := scratchpipe.ParseTopology(row.topo)
		cl := cost.ClusterFor(topo, cost.P32xlarge)
		fmt.Printf("%-12s %-8s %12.3f %14.4f %11.1f%% %10d\n",
			row.topo, row.tier, rep.IterTime*1e3, rep.CoordTime*1e3, rep.HitRate()*100, cl.Hosts)
		if rep.Hits != base.Hits || rep.Misses != base.Misses || rep.Evictions != base.Evictions {
			log.Fatalf("%s: cache behaviour changed under placement — invariance broken", row.topo)
		}
	}

	// Part 2: the policy x shard-count frontier on the two-host cluster.
	// More shards buy parallelism a 1-CPU simulation cannot show, but
	// every extra shard adds coordinator traffic; the frontier shows
	// throughput against rented-fleet cost.
	fmt.Println()
	fmt.Println("Policy frontier on cluster2x2 (two hosts x two sockets, network between hosts)")
	fmt.Printf("%-10s %-10s %12s %14s %16s %14s\n",
		"placement", "shards", "iter (ms)", "coord (ms)", "$/1M iters", "fleet")
	topo, _ := scratchpipe.ParseTopology("cluster2x2")
	for _, policy := range []scratchpipe.PlacementPolicy{
		scratchpipe.PlaceStripe, scratchpipe.PlaceRange, scratchpipe.PlaceLoadAware,
	} {
		for _, shards := range []int{2, 4, 8} {
			rep := run(shards, "cluster2x2", policy)
			// Rent only the hosts this placement actually spans (e.g.
			// stripe S=2 keeps both shards on host 0). Host span is
			// weight-independent for stripe/range by construction and
			// for greedy load-aware whenever every shard carries mass
			// (empty nodes win ties before any node doubles up), so
			// nil weights reproduce the engine's placements' span.
			pl, err := hw.NewPlacement(policy, topo, shards, nil)
			if err != nil {
				log.Fatal(err)
			}
			fleet := cost.Cluster{Instance: cost.P32xlarge, Hosts: pl.Hosts()}
			fmt.Printf("%-10s %-10d %12.3f %14.4f %16s %14s\n",
				policy, shards, rep.IterTime*1e3, rep.CoordTime*1e3,
				cost.FormatUSD(fleet.MillionIterCost(rep.IterTime)), fleet.Name())
		}
	}
	single := cost.Cluster{Instance: cost.P32xlarge, Hosts: 1}
	fmt.Printf("%-10s %-10d %12.3f %14.4f %16s %14s   <- the paper's design point\n",
		"(none)", 1, base.IterTime*1e3, 0.0,
		cost.FormatUSD(single.MillionIterCost(base.IterTime)), single.Name())

	fmt.Println()
	fmt.Println(strings.TrimSpace(`
Reading: plans, evictions, and hit rates are identical in every row —
placement only prices the coordination the shared-memory planner got for
free. Crossing NUMA is nearly free; crossing PCIe visibly stretches the
Plan stage; crossing the network multiplies iteration time while DOUBLING
the hourly bill (two rented hosts), which is the Acun et al. scaling wall
in Table I units: scale-out buys parallel planning capacity only if the
per-iteration coordination it adds stays off the critical path. Range
placement keeps neighbor shards co-located (fewest cross-host borrow
hops); load-aware placement balances hot-table shard mass and pulls the
worst-case rows in when table heat is skewed.`))
}
