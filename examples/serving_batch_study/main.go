// Serving batch study: what replica-side request batching buys an
// online recommendation fleet. Each replica worker dequeues up to a
// cap of queued queries and services them as ONE scratchpad pass —
// shared embedding keys probed once, one PCIe round trip for the whole
// batch, one GPU gather+pool launch, and a dense forward whose weight
// reads are paid once while per-query FLOPs stack marginally
// (internal/serve.BatchSpec). Under light load the batcher degrades to
// singles; under a flash crowd the queue is where batches come from,
// and amortization is the difference between drowning and draining.
//
//   - Part 1 sweeps the batch cap across arrival shapes (steady
//     Poisson vs a flash crowd) on a two-host cluster under the
//     telemetry-driven router, pricing every point in $/1M queries.
//   - Part 2 verifies the no-op contract: a cap of 1 must produce a
//     report deep-equal to one from a config with batching absent —
//     the byte-identity discipline the serve package promises.
//
// The study hard-fails (log.Fatalf) unless a cap >= 8 strictly beats
// cap 1 on BOTH throughput and $/1M-query under flash load — the
// acceptance bar for the batching tentpole — and unless the cap-1
// report is identical to the unbatched one.
package main

import (
	"flag"
	"fmt"
	"log"
	"reflect"

	"repro/internal/cost"
	"repro/scratchpipe"
)

func main() {
	classFlag := flag.String("class", "High", "locality class: Random|Low|Medium|High")
	requests := flag.Int("requests", 4096, "simulated queries per data point")
	rows := flag.Int64("rows", 200_000, "rows per embedding table (quick scale)")
	flag.Parse()

	class, err := scratchpipe.ParseClass(*classFlag)
	if err != nil {
		log.Fatal(err)
	}
	model := scratchpipe.DefaultModel()
	model.RowsPerTable = *rows
	model.BatchSize = 256

	const topoName = "cluster2x2"
	const replicas = 4
	topo, err := scratchpipe.ParseTopology(topoName)
	if err != nil {
		log.Fatal(err)
	}
	cl := cost.ClusterFor(topo, cost.P32xlarge)

	run := func(arrival string, batch scratchpipe.BatchSpec) *scratchpipe.ServeReport {
		spec, err := scratchpipe.ParseArrival(arrival)
		if err != nil {
			log.Fatal(err)
		}
		tr, err := scratchpipe.NewTrainer(scratchpipe.Config{
			Engine:    scratchpipe.KindScratchPipe,
			Model:     model,
			Class:     class,
			CacheFrac: 0.02,
			Topology:  topo,
			Seed:      42,
			Serve: scratchpipe.ServeOptions{
				Replicas: replicas,
				Router:   scratchpipe.RouterTelemetry,
				Arrival:  spec,
				Requests: *requests,
				Batch:    batch,
			},
		})
		if err != nil {
			log.Fatalf("%s/batch=%v: %v", arrival, batch, err)
		}
		rep, err := tr.Serve()
		if err != nil {
			log.Fatalf("%s/batch=%v: %v", arrival, batch, err)
		}
		return rep
	}

	fmt.Printf("Serving batch study — %s, %d replicas, telemetry router, class %s, %d tables x %d rows, 2%% cache, %d queries/point\n\n",
		topoName, replicas, class, model.NumTables, model.RowsPerTable, *requests)

	// Part 1: the batch-cap frontier. Caps 1..16 across a steady and a
	// flash arrival shape. Under steady load the queue rarely holds a
	// second query, so occupancy stays near 1 and nothing is lost;
	// under the flash crowd the burst queue feeds real batches and the
	// amortized pass is what keeps the fleet from shedding.
	caps := []int{1, 2, 4, 8, 16}
	arrivals := []struct{ label, spec string }{
		{"poisson", "poisson:4000"},
		{"flash", "flash:20000:10"},
	}
	fmt.Println("Batch-cap frontier")
	fmt.Printf("%-10s %-8s %12s %10s %10s %10s %8s %9s %9s %12s\n",
		"arrival", "cap", "tput (q/s)", "hit rate", "p50 (ms)", "p99 (ms)", "drops", "batches", "avg occ", "$/1M q")
	frontier := map[string]map[int]*scratchpipe.ServeReport{}
	for _, arr := range arrivals {
		frontier[arr.label] = map[int]*scratchpipe.ServeReport{}
		for _, cap := range caps {
			rep := run(arr.spec, scratchpipe.BatchSpec{Cap: cap})
			frontier[arr.label][cap] = rep
			occ := "-"
			if rep.Batches > 0 {
				occ = fmt.Sprintf("%.2f", float64(rep.BatchedQueries)/float64(rep.Batches))
			}
			fmt.Printf("%-10s %-8d %12.0f %9.1f%% %10.3f %10.3f %8d %9d %9s %12s\n",
				arr.label, cap, rep.Throughput, rep.HitRate()*100,
				rep.Latency.P50*1e3, rep.Latency.P99*1e3, rep.Drops,
				rep.Batches, occ, cost.FormatUSD(cl.MillionQueryCost(rep.Throughput)))
		}
	}

	// Part 2: the no-op contract. Cap 1 must be indistinguishable from
	// batching left unconfigured: same code path, same report, down to
	// the last counter. This is the regression tripwire for the
	// byte-identity discipline (-serve-batch 1 == flag absent).
	fmt.Println()
	for _, arr := range arrivals {
		unbatched := run(arr.spec, scratchpipe.BatchSpec{})
		if !reflect.DeepEqual(frontier[arr.label][1], unbatched) {
			log.Fatalf("%s: cap-1 report differs from unbatched report — the no-op contract is broken", arr.label)
		}
	}
	fmt.Println("No-op contract: cap-1 reports deep-equal unbatched reports on every arrival shape.")

	// The acceptance bar: under the flash crowd, a real batch cap must
	// strictly beat singles on throughput AND on the $/1M-query bill —
	// amortization has to show up in the ledger, not just the queue.
	best := frontier["flash"][8]
	if f16 := frontier["flash"][16]; f16.Throughput > best.Throughput {
		best = f16
	}
	single := frontier["flash"][1]
	if best.Throughput <= single.Throughput {
		log.Fatalf("flash: batched throughput %.0f q/s does not beat cap-1 %.0f q/s — amortization broken",
			best.Throughput, single.Throughput)
	}
	batchedUSD := cl.MillionQueryCost(best.Throughput)
	singleUSD := cl.MillionQueryCost(single.Throughput)
	if batchedUSD >= singleUSD {
		log.Fatalf("flash: batched $/1M %.4f does not beat cap-1 $/1M %.4f — amortization broken",
			batchedUSD, singleUSD)
	}
	if best.Batches == 0 || best.MaxBatch < 2 {
		log.Fatalf("flash: batcher never formed a multi-query batch (batches %d, max %d) — study is vacuous",
			best.Batches, best.MaxBatch)
	}
	fmt.Printf("Flash acceptance: cap %d beats cap 1 — %.0f vs %.0f q/s, %s vs %s per 1M queries (max batch %d).\n",
		best.Batch.Cap, best.Throughput, single.Throughput,
		cost.FormatUSD(batchedUSD), cost.FormatUSD(singleUSD), best.MaxBatch)
}
