// Pipeline trace: a didactic walkthrough of ScratchPipe's control
// structures in the spirit of the paper's Figure 11 — a tiny scratchpad,
// a stream of two-ID mini-batches, and a cycle-by-cycle printout of the
// Hit-Map, the hold protection, and the fill/eviction schedules.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
)

func main() {
	// A 5-slot scratchpad, exactly like Figure 11's Storage array.
	sp, err := core.NewScratchpad(core.Config{
		Slots:        5,
		Reserve:      8,
		Policy:       "lru",
		PastWindow:   3,
		FutureWindow: 0, // Figure 11's example shows the past window only
	})
	if err != nil {
		log.Fatal(err)
	}

	// The mini-batch ID stream of Figure 11 (two sparse IDs per batch).
	batches := [][]int64{
		{7089, 2021},
		{3010, 7089},
		{1017, 5382},
		{7089, 1017},
		{6547, 3010},
		{9021, 1017},
		{4200, 3010},
	}

	fmt.Println("ScratchPipe control-plane walkthrough (cf. paper Figure 11)")
	fmt.Println("5-slot scratchpad, LRU, past-window 3 (holds released 3 cycles later)")
	fmt.Println()
	for cycle, ids := range batches {
		// A batch leaves the protection window after PastWindow
		// cycles: it "enters Train".
		if cycle >= 3 {
			if err := sp.Release(cycle - 3); err != nil {
				log.Fatal(err)
			}
		}
		plan, err := sp.Plan(cycle, ids, nil)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("cycle %d  [Plan] batch %d  IDs %v\n", cycle, cycle, ids)
		fmt.Printf("         hits=%d misses=%d\n", plan.OccHits, plan.OccMisses)
		for _, f := range plan.Fills {
			fmt.Printf("         fill   id %-5d -> slot %d   (Collect: read CPU row; Insert: write slot)\n", f.ID, f.Slot)
		}
		for _, e := range plan.Evictions {
			fmt.Printf("         evict  id %-5d <- slot %d   (Collect: read slot; Insert: write back CPU row)\n", e.OldID, e.Slot)
		}
		// Dump the scratchpad state: slot -> key (held?).
		fmt.Printf("         scratchpad:")
		for slot := int32(0); slot < int32(sp.TotalSlots()); slot++ {
			key := sp.Key(slot)
			if key < 0 {
				continue
			}
			mark := " "
			if sp.Held(slot) {
				mark = "*"
			}
			fmt.Printf("  [%d]=%d%s", slot, key, mark)
		}
		fmt.Println()
		fmt.Println()
	}
	fmt.Println("(* = slot protected by an in-flight mini-batch's hold mask)")
	st := sp.Stats()
	fmt.Printf("totals: %d queries, %d hits, %d misses, %d fills, %d evictions, reserve peak %d\n",
		st.Queries, st.Hits, st.Misses, st.Fills, st.Evictions, st.ReservePeak)
}
