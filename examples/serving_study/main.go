// Serving study: the routing frontier of an online recommendation
// fleet. Training ends and the same scratchpad architecture goes on
// call: R replica workers, each holding a private embedding scratchpad,
// served by a frontend router under an open-loop arrival process
// (internal/serve). Routing is where the fleet trades locality against
// load — spreading queries balances queues but dilutes every replica's
// cache, concentrating them heats one cache at the risk of queue
// buildup — and this study walks that frontier three ways:
//
//   - Part 1 sweeps all four routing policies across arrival shapes
//     (steady Poisson and a flash crowd) on one host, showing the
//     hit-aware router beating the locality-blind policies on hit rate
//     without surrendering the latency tail.
//   - Part 2 scales the replica count under the hit-aware router and
//     prices each fleet size in $/1M queries.
//   - Part 3 climbs the topology tier ladder (single host -> NUMA ->
//     two-host cluster), charging the router-to-replica links that a
//     spread fleet crosses.
//
// The study hard-fails (log.Fatalf) if the hit-aware router does not
// strictly beat random routing on both hit rate and p99 latency under
// the skewed trace — the acceptance bar for the routing frontier.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/cost"
	"repro/scratchpipe"
)

func main() {
	classFlag := flag.String("class", "High", "locality class: Random|Low|Medium|High")
	requests := flag.Int("requests", 4096, "simulated queries per data point")
	rows := flag.Int64("rows", 200_000, "rows per embedding table (quick scale)")
	flag.Parse()

	class, err := scratchpipe.ParseClass(*classFlag)
	if err != nil {
		log.Fatal(err)
	}
	model := scratchpipe.DefaultModel()
	model.RowsPerTable = *rows
	model.BatchSize = 256

	run := func(topoName string, replicas int, router scratchpipe.RouterPolicy, arrival string) *scratchpipe.ServeReport {
		var topo *scratchpipe.Topology
		if topoName != "single" {
			topo, err = scratchpipe.ParseTopology(topoName)
			if err != nil {
				log.Fatal(err)
			}
		}
		spec, err := scratchpipe.ParseArrival(arrival)
		if err != nil {
			log.Fatal(err)
		}
		tr, err := scratchpipe.NewTrainer(scratchpipe.Config{
			Engine:    scratchpipe.KindScratchPipe,
			Model:     model,
			Class:     class,
			CacheFrac: 0.02,
			Topology:  topo,
			Seed:      42,
			Serve: scratchpipe.ServeOptions{
				Replicas: replicas,
				Router:   router,
				Arrival:  spec,
				Requests: *requests,
			},
		})
		if err != nil {
			log.Fatalf("%s/%s/R=%d: %v", topoName, router, replicas, err)
		}
		rep, err := tr.Serve()
		if err != nil {
			log.Fatalf("%s/%s/R=%d: %v", topoName, router, replicas, err)
		}
		return rep
	}
	price := func(topoName string, qps float64) (string, string) {
		var topo *scratchpipe.Topology
		if topoName != "single" {
			topo, _ = scratchpipe.ParseTopology(topoName)
		}
		cl := cost.ClusterFor(topo, cost.P32xlarge)
		return cost.FormatUSD(cl.MillionQueryCost(qps)), cl.Name()
	}

	fmt.Printf("Serving study — ScratchPipe replicas on call, class %s, %d tables x %d rows, 2%% cache, %d queries/point\n\n",
		class, model.NumTables, model.RowsPerTable, *requests)

	// Part 1: the routing frontier. Four policies x two arrival shapes
	// on one host with four replicas. The locality-blind policies set
	// the baseline; hit-aware must beat random on hit rate AND p99.
	const frontierReplicas = 4
	routers := []scratchpipe.RouterPolicy{
		scratchpipe.RouterRandom, scratchpipe.RouterRoundRobin,
		scratchpipe.RouterLeastLoad, scratchpipe.RouterHitAware,
	}
	arrivals := []struct{ label, spec string }{
		{"poisson", "poisson:2000"},
		{"flash", "flash:2000"},
	}
	fmt.Printf("Routing frontier (single host, %d replicas)\n", frontierReplicas)
	fmt.Printf("%-12s %-14s %12s %10s %10s %10s %8s %12s\n",
		"router", "arrival", "tput (q/s)", "hit rate", "p50 (ms)", "p99 (ms)", "drops", "$/1M q")
	frontier := map[string]map[scratchpipe.RouterPolicy]*scratchpipe.ServeReport{}
	for _, arr := range arrivals {
		frontier[arr.label] = map[scratchpipe.RouterPolicy]*scratchpipe.ServeReport{}
		for _, router := range routers {
			rep := run("single", frontierReplicas, router, arr.spec)
			frontier[arr.label][router] = rep
			usd, _ := price("single", rep.Throughput)
			fmt.Printf("%-12s %-14s %12.0f %9.1f%% %10.3f %10.3f %8d %12s\n",
				router, arr.label, rep.Throughput, rep.HitRate()*100,
				rep.Latency.P50*1e3, rep.Latency.P99*1e3, rep.Drops, usd)
		}
	}
	// The acceptance bar: under the skewed trace, locality-aware
	// routing must strictly win the frontier, not trade one axis for
	// the other.
	for _, arr := range arrivals {
		ha, rnd := frontier[arr.label][scratchpipe.RouterHitAware], frontier[arr.label][scratchpipe.RouterRandom]
		if ha.HitRate() <= rnd.HitRate() {
			log.Fatalf("%s: hitaware hit rate %.3f does not beat random %.3f — frontier broken",
				arr.label, ha.HitRate(), rnd.HitRate())
		}
		if ha.Latency.P99 >= rnd.Latency.P99 {
			log.Fatalf("%s: hitaware p99 %.4fms does not beat random %.4fms — frontier broken",
				arr.label, ha.Latency.P99*1e3, rnd.Latency.P99*1e3)
		}
	}

	// Part 2: replica scaling under the hit-aware router. More replicas
	// drain queues faster but split the query stream across more cold
	// caches; the $/1M-query column prices the trade (replicas share
	// one host here, so the fleet bill is flat — the cost moves only
	// with throughput).
	fmt.Println()
	fmt.Println("Replica scaling (single host, hitaware, steady arrivals)")
	fmt.Printf("%-10s %12s %10s %10s %10s %8s %12s\n",
		"replicas", "tput (q/s)", "hit rate", "p50 (ms)", "p99 (ms)", "drops", "$/1M q")
	for _, r := range []int{2, 4, 8} {
		rep := run("single", r, scratchpipe.RouterHitAware, "poisson:2000")
		usd, _ := price("single", rep.Throughput)
		fmt.Printf("%-10d %12.0f %9.1f%% %10.3f %10.3f %8d %12s\n",
			r, rep.Throughput, rep.HitRate()*100,
			rep.Latency.P50*1e3, rep.Latency.P99*1e3, rep.Drops, usd)
	}

	// Part 3: the tier ladder. The same fleet spread across topology
	// tiers: replicas land on nodes round-robin, so every tier past
	// "single" charges router-to-replica transfers to the links the
	// spread crosses (surfacing as link time and a fatter tail), and
	// the cluster tier rents a second host.
	fmt.Println()
	fmt.Println("Tier ladder (4 replicas, hitaware, steady arrivals): the same fleet, spread and priced per tier")
	fmt.Printf("%-12s %-8s %12s %10s %10s %12s %12s %14s\n",
		"topology", "tier", "tput (q/s)", "hit rate", "p99 (ms)", "link (ms)", "$/1M q", "fleet")
	for _, row := range []struct{ topo, tier string }{
		{"single", "local"},
		{"numa2", "numa"},
		{"cluster2x2", "net"},
	} {
		rep := run(row.topo, frontierReplicas, scratchpipe.RouterHitAware, "poisson:2000")
		usd, fleet := price(row.topo, rep.Throughput)
		fmt.Printf("%-12s %-8s %12.0f %9.1f%% %10.3f %12.4f %12s %14s\n",
			row.topo, row.tier, rep.Throughput, rep.HitRate()*100,
			rep.Latency.P99*1e3, rep.LinkTime*1e3, usd, fleet)
		if row.topo == "cluster2x2" && rep.CrossHost == 0 {
			log.Fatalf("%s: no cross-host routing traffic — tier ladder broken", row.topo)
		}
	}
}
