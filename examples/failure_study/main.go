// Failure study: sweep checkpoint interval x coordination protocol x
// fault rate on the two-host cluster and chart the availability vs
// $/1M-iteration frontier.
//
// Every configuration trains the same ScratchPipe engine (metadata
// mode, 4 shards striped across cluster2x2) under a deterministic fault
// schedule: host deaths evacuate shards to the survivor, link
// partitions degrade coordination to approx until heal, aggregator
// losses re-elect — all priced into the report's Downtime,
// RecoveryTime, and Availability. Checkpointing is the recovery-point
// knob: a shorter interval pays more flush time every run but restores
// residency after a host death instead of repricing it as cold misses.
//
// The cost column is what the paper's Table I arithmetic says the run
// actually costs: the whole fleet (cost.ClusterFor) is rented for the
// full wall clock, outages included, so availability losses surface as
// dollars. Rows marked * are on the Pareto frontier — no other
// configuration is both cheaper and more available.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/cost"
	"repro/scratchpipe"
)

func main() {
	classFlag := flag.String("class", "Medium", "locality class: Random|Low|Medium|High")
	cacheFrac := flag.Float64("cache", 0.05, "GPU cache fraction")
	iters := flag.Int("iters", 120, "training iterations per configuration")
	rows := flag.Int64("rows", 200_000, "rows per embedding table (paper scale is 10M; the default keeps the 18-configuration sweep fast)")
	batch := flag.Int("batch", 256, "mini-batch size (paper scale is 2048)")
	flag.Parse()

	class, err := scratchpipe.ParseClass(*classFlag)
	if err != nil {
		log.Fatal(err)
	}
	topo, err := scratchpipe.ParseTopology("cluster2x2")
	if err != nil {
		log.Fatal(err)
	}
	fleet := cost.ClusterFor(topo, cost.P32xlarge)
	model := scratchpipe.DefaultModel()
	model.RowsPerTable = *rows
	model.BatchSize = *batch

	// Fault rate axis: none, a transient partition, and a compound
	// schedule that loses an aggregator, partitions the hosts, and then
	// kills one of the two hosts outright.
	faultPlans := []struct{ name, plan string }{
		{"none", ""},
		{"light", "link:host0-host1@40-55"},
		{"heavy", "agg0@20,link:host0-host1@30-45,host1@80"},
	}
	ckptIntervals := []int{0, 10, 40}
	coords := []scratchpipe.CoordMode{scratchpipe.CoordHier, scratchpipe.CoordApprox}

	type point struct {
		faults   string
		coord    scratchpipe.CoordMode
		ckpt     int
		avail    float64
		cost     float64
		rep      *scratchpipe.Report
		frontier bool
	}
	var pts []point

	for _, fp := range faultPlans {
		plan, err := scratchpipe.ParseFaultPlan(fp.plan)
		if err != nil {
			log.Fatalf("%s: %v", fp.name, err)
		}
		for _, coord := range coords {
			for _, ckpt := range ckptIntervals {
				tr, err := scratchpipe.NewTrainer(scratchpipe.Config{
					Engine:       scratchpipe.KindScratchPipe,
					Model:        model,
					Class:        class,
					CacheFrac:    *cacheFrac,
					Functional:   false,
					Seed:         7,
					Shards:       4,
					Topology:     topo,
					Coord:        coord,
					Faults:       plan,
					CkptInterval: ckpt,
				})
				if err != nil {
					log.Fatalf("%s/%s/ckpt=%d: %v", fp.name, coord, ckpt, err)
				}
				rep, err := tr.Train(*iters)
				if err != nil {
					log.Fatalf("%s/%s/ckpt=%d: %v", fp.name, coord, ckpt, err)
				}
				// The fleet is rented for the whole wall clock —
				// checkpoint flushes, outages, and recovery included —
				// so the effective per-iteration price is Wall/Iters.
				pts = append(pts, point{
					faults: fp.name, coord: coord, ckpt: ckpt,
					avail: rep.Availability,
					cost:  fleet.MillionIterCost(rep.Wall / float64(rep.Iters)),
					rep:   rep,
				})
			}
		}
	}

	// Pareto frontier, per fault environment (availability under "none"
	// and under "heavy" are different worlds): a point survives if no
	// point under the same schedule is at least as available AND cheaper
	// (with at least one strict).
	for i := range pts {
		dominated := false
		for j := range pts {
			if j == i || pts[j].faults != pts[i].faults {
				continue
			}
			betterAvail := pts[j].avail >= pts[i].avail
			betterCost := pts[j].cost <= pts[i].cost
			strictly := pts[j].avail > pts[i].avail || pts[j].cost < pts[i].cost
			if betterAvail && betterCost && strictly {
				dominated = true
				break
			}
		}
		pts[i].frontier = !dominated
	}

	fmt.Printf("Failure study — ScratchPipe on %s (%s), class %s, %d iters\n\n",
		topo.Name, fleet.Name(), class, *iters)
	fmt.Printf("%-7s %-7s %5s %13s %13s %13s %13s %13s\n",
		"faults", "coord", "ckpt", "avail", "$ / 1M iters", "down (ms)", "recov (ms)", "lost rows")
	for _, p := range pts {
		mark := " "
		if p.frontier {
			mark = "*"
		}
		fmt.Printf("%-7s %-7s %5d %12.2f%% %13s %13.1f %13.3f %13d %s\n",
			p.faults, p.coord, p.ckpt,
			p.avail*100, cost.FormatUSD(p.cost),
			p.rep.Downtime*1e3, p.rep.RecoveryTime*1e3, p.rep.LostResidency, mark)
	}

	fmt.Println()
	fmt.Println("Reading the frontier: with no faults, checkpointing is pure cost —")
	fmt.Println("the ckpt=0 rows dominate. Under the heavy schedule the knob becomes")
	fmt.Println("a real trade: uncheckpointed fleets lose the dead host's scratchpad")
	fmt.Println("residency (nonzero lost rows, repriced as cold misses after")
	fmt.Println("recovery), while checkpointed fleets keep every row but pay the")
	fmt.Println("periodic flush plus a replay bill back to the last recovery point —")
	fmt.Println("a shorter interval shrinks the replay, a longer one the flush tax.")
	fmt.Println("Which side of the trade wins depends on how expensive cold misses")
	fmt.Println("are at your scale; rerun with -rows 10000000 -batch 2048 to price")
	fmt.Println("it at paper scale.")
}
