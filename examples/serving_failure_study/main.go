// Serving failure study: what replica failures cost an online
// recommendation fleet, and what the resilience stack buys back. The
// serving fleet from examples/serving_study goes on call under fault
// injection (internal/serve + hw.FaultPlan's replica/host events): a
// flash crowd builds deep queues, a replica dies mid-spike taking its
// queue and its warm scratchpad with it, and the router view, the
// client retry/hedge policies, and the admission controller decide how
// much of the offered load still comes back as good responses.
//
//   - Part 1 holds the fault plan fixed (one replica killed mid flash
//     crowd) and sweeps the resilience stack: no client policy, retries
//     with exponential backoff, retry+hedging, hedging alone, and
//     admission shedding with CPU-path degraded mode. Availability,
//     goodput, and the outcome counters show what each layer recovers.
//   - Part 2 sweeps the fault plan (fault-free, one replica kill, a
//     whole-host kill taking two replicas, kill+heal with re-warm)
//     against the no-retry and retry+failover clients, charting the
//     availability vs $/1M-good-queries frontier. Rows marked * are
//     Pareto-optimal: no other configuration is both cheaper per good
//     answer and more available.
//
// Every report is re-checked against the conservation invariant
// offered = served + shed + dropped + timed-out, and the study
// hard-fails (log.Fatalf) if retry+failover does not strictly beat the
// no-retry client on goodput under the mid-run replica kill — the
// acceptance bar for the resilience stack.
//
// The backoff matters as much as the retry budget: a retry that fires
// while the flash crowd still saturates the surviving queues just
// bounces off a full queue and burns its budget, so the client backs
// off past the spike (50 ms) before failing over.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/cost"
	"repro/scratchpipe"
)

func main() {
	classFlag := flag.String("class", "High", "locality class: Random|Low|Medium|High")
	requests := flag.Int("requests", 9000, "simulated queries per data point")
	rows := flag.Int64("rows", 200_000, "rows per embedding table (quick scale)")
	flag.Parse()

	class, err := scratchpipe.ParseClass(*classFlag)
	if err != nil {
		log.Fatal(err)
	}
	topo, err := scratchpipe.ParseTopology("cluster2x2")
	if err != nil {
		log.Fatal(err)
	}
	fleet := cost.ClusterFor(topo, cost.P32xlarge)
	model := scratchpipe.DefaultModel()
	model.RowsPerTable = *rows
	model.BatchSize = 256

	// The common scenario: four hit-aware replicas across the two-host
	// cluster under a flash crowd (8x the steady 4000 q/s over 5% of the
	// horizon starting at t=0.2 of it). The spike overruns the fleet and
	// builds queues right when the fault plan strikes, and the run keeps
	// going well past the window, so recovered work counts as goodput
	// instead of stretching the measured duration.
	const arrival = "flash:4000:8:0.2:0.05"
	run := func(faultPlan string, opts func(*scratchpipe.ServeOptions)) *scratchpipe.ServeReport {
		faults, err := scratchpipe.ParseFaultPlan(faultPlan)
		if err != nil {
			log.Fatalf("fault plan %q: %v", faultPlan, err)
		}
		spec, err := scratchpipe.ParseArrival(arrival)
		if err != nil {
			log.Fatal(err)
		}
		serve := scratchpipe.ServeOptions{
			Replicas: 4,
			Router:   scratchpipe.RouterHitAware,
			Arrival:  spec,
			Requests: *requests,
			QueueCap: 64,
			Faults:   faults,
			Deadline: 0.2, // 200 ms: generous, so only lost work times out
		}
		if opts != nil {
			opts(&serve)
		}
		tr, err := scratchpipe.NewTrainer(scratchpipe.Config{
			Engine:    scratchpipe.KindScratchPipe,
			Model:     model,
			Class:     class,
			CacheFrac: 0.02,
			Topology:  topo,
			Seed:      42,
			Serve:     serve,
		})
		if err != nil {
			log.Fatalf("faults %q: %v", faultPlan, err)
		}
		rep, err := tr.Serve()
		if err != nil {
			log.Fatalf("faults %q: %v", faultPlan, err)
		}
		// The books must balance exactly: every offered query is served,
		// shed by admission, dropped at a queue, or timed out — nothing
		// vanishes when a replica dies with a full queue.
		if rep.Served+rep.Shed+rep.Drops+rep.TimedOut != rep.Offered {
			log.Fatalf("faults %q: conservation violated: %d served + %d shed + %d drops + %d timed out != %d offered",
				faultPlan, rep.Served, rep.Shed, rep.Drops, rep.TimedOut, rep.Offered)
		}
		return rep
	}

	fmt.Printf("Serving failure study — 4 hitaware replicas on cluster2x2, class %s, arrival %s, %d queries/point\n",
		class, arrival, *requests)
	fmt.Println()

	// Part 1: the resilience stack under one mid-spike replica kill.
	// replica1 dies at t=0.55s — inside the flash window, with its
	// queue at the 64-entry cap — and never heals: its queued work is
	// lost unless a client policy recovers it, and its scratchpad heat
	// is gone for good.
	const kill = "replica1@0.55"
	retryOpt := func(o *scratchpipe.ServeOptions) {
		o.Retry = scratchpipe.RetrySpec{Max: 3, Backoff: 0.05}
	}
	policies := []struct {
		label string
		opts  func(*scratchpipe.ServeOptions)
	}{
		{"none", nil},
		{"retry 3:50ms", retryOpt},
		{"retry+hedge 10ms", func(o *scratchpipe.ServeOptions) {
			retryOpt(o)
			o.Hedge = 0.01
		}},
		{"hedge 10ms", func(o *scratchpipe.ServeOptions) { o.Hedge = 0.01 }},
		{"shed+degrade", func(o *scratchpipe.ServeOptions) {
			o.Admission = scratchpipe.AdmissionSpec{
				Policy:  scratchpipe.AdmitCheapest,
				Degrade: true,
			}
		}},
	}
	fmt.Printf("Resilience stack under %s (mid flash crowd, queue flushed, scratchpad lost)\n", kill)
	fmt.Printf("%-18s %9s %12s %8s %8s %8s %8s %8s %8s\n",
		"client policy", "avail", "goodput q/s", "served", "timeout", "retried", "hedged", "shed", "degr")
	var noRetry, withRetry *scratchpipe.ServeReport
	for _, p := range policies {
		rep := run(kill, p.opts)
		fmt.Printf("%-18s %8.2f%% %12.0f %8d %8d %8d %8d %8d %8d\n",
			p.label, rep.Availability*100, rep.Goodput, rep.Served,
			rep.TimedOut, rep.Retried, rep.Hedged, rep.Shed, rep.Degraded)
		switch p.label {
		case "none":
			noRetry = rep
		case "retry 3:50ms":
			withRetry = rep
		}
	}
	// The acceptance bar: failing over dead-replica work to survivors
	// must strictly buy back good responses, not just shuffle the loss
	// between the timeout and drop columns.
	if withRetry.Goodput <= noRetry.Goodput {
		log.Fatalf("retry+failover goodput %.0f q/s does not beat no-retry %.0f q/s under %s — resilience stack broken",
			withRetry.Goodput, noRetry.Goodput, kill)
	}
	if withRetry.Retried == 0 {
		log.Fatalf("retry client never retried under %s — kill flush not reaching the client", kill)
	}
	fmt.Printf("=> retry+failover recovers %+.0f q/s goodput over the no-retry client (%d retries, %d fewer timeouts)\n",
		withRetry.Goodput-noRetry.Goodput, withRetry.Retried, noRetry.TimedOut-withRetry.TimedOut)

	// Part 2: the fault-rate frontier. Each fault plan runs with the
	// no-retry and the retry+failover client; the cost column rents the
	// whole two-host fleet for the run's wall clock and prices every
	// MILLION GOOD responses — losing availability without losing
	// throughput still shows up as a pricier good answer. The kill+heal
	// plan brings the replica back at t=0.9s with a cold scratchpad, so
	// its recovery bill is re-warm fills instead of permanent downtime.
	fmt.Println()
	fmt.Println("Fault-rate frontier (no-retry vs retry+failover, $/1M good responses)")
	fmt.Printf("%-22s %-14s %9s %12s %8s %8s %10s\n",
		"fault plan", "client", "avail", "goodput q/s", "timeout", "rewarm", "$/1M good")
	type point struct {
		plan, client string
		avail, usd   float64
	}
	var pts []point
	for _, plan := range []string{"", kill, "host1@1", "replica1@0.55-1.1"} {
		for _, client := range []struct {
			label string
			opts  func(*scratchpipe.ServeOptions)
		}{{"no-retry", nil}, {"retry 3:50ms", retryOpt}} {
			rep := run(plan, client.opts)
			usd := fleet.MillionQueryCost(rep.Goodput)
			label := plan
			if label == "" {
				label = "fault-free"
			}
			fmt.Printf("%-22s %-14s %8.2f%% %12.0f %8d %8d   $%8.4f\n",
				label, client.label, rep.Availability*100, rep.Goodput,
				rep.TimedOut, rep.RewarmFills, usd)
			pts = append(pts, point{label, client.label, rep.Availability, usd})
		}
	}
	// Pareto marks: a row survives if no other row is both strictly
	// cheaper per good response and at least as available.
	fmt.Println()
	fmt.Println("Pareto frontier (availability vs $/1M good responses):")
	for _, p := range pts {
		dominated := false
		for _, q := range pts {
			if q.usd < p.usd && q.avail >= p.avail {
				dominated = true
				break
			}
		}
		mark := " "
		if !dominated {
			mark = "*"
		}
		fmt.Printf("  %s %-22s %-14s %.2f%% at $%.4f per 1M good\n",
			mark, p.plan, p.client, p.avail*100, p.usd)
	}
}
