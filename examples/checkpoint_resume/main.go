// Checkpoint & resume: train half a run under ScratchPipe with Adagrad,
// checkpoint (which flushes the GPU scratchpad — embeddings AND optimizer
// accumulators — back to the CPU tables), restore, and finish. The loss
// trajectory continues seamlessly because the checkpoint captures the
// complete training state.
package main

import (
	"bytes"
	"fmt"
	"log"

	"repro/scratchpipe"
)

func main() {
	model := scratchpipe.DefaultModel()
	model.RowsPerTable = 20_000
	model.NumTables = 3
	model.EmbeddingDim = 16
	model.Lookups = 6
	model.BatchSize = 128
	model.BottomHidden = []int{32, 16}
	model.TopHidden = []int{64, 32}

	cfg := scratchpipe.Config{
		Engine:     scratchpipe.KindScratchPipe,
		Model:      model,
		Class:      scratchpipe.High,
		CacheFrac:  0.05,
		Optimizer:  scratchpipe.OptAdagrad,
		Functional: true,
		Seed:       4,
	}

	tr, err := scratchpipe.NewTrainer(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("phase 1: 25 iterations with sparse Adagrad under ScratchPipe")
	rep1, err := tr.Train(25)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  mean loss %.4f, hit rate %.1f%%\n", rep1.AvgLoss, rep1.HitRate()*100)

	var ckpt bytes.Buffer
	if err := tr.SaveCheckpoint(&ckpt); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("checkpoint: %.1f MB (embeddings + Adagrad accumulators + MLPs)\n",
		float64(ckpt.Len())/1e6)

	// Restore into the same trainer (in a real deployment this would be
	// a fresh process) and continue training.
	if err := tr.LoadCheckpoint(bytes.NewReader(ckpt.Bytes())); err != nil {
		log.Fatal(err)
	}
	fmt.Println("phase 2: resumed; 25 more iterations")
	rep2, err := tr.Train(25)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  mean loss %.4f (continuing to fall: %.4f -> %.4f)\n",
		rep2.AvgLoss, rep1.AvgLoss, rep2.AvgLoss)
	if rep2.AvgLoss >= rep1.AvgLoss {
		log.Fatal("resumed training did not continue improving")
	}
	fmt.Println("done: optimizer state survived the scratchpad round trip")
}
