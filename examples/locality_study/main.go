// Locality study: reproduce the paper's motivation (Figures 3 and 6) —
// how concentrated real RecSys embedding accesses are, and why a static
// top-N cache cannot capture low-locality working sets.
package main

import (
	"fmt"
	"log"

	"repro/scratchpipe"
)

func main() {
	const rows = 1_000_000
	fracs := []float64{0.02, 0.05, 0.10, 0.20, 0.40, 0.65, 1.0}

	fmt.Println("Static-cache hit rate vs cache size (Figure 6)")
	fmt.Printf("%-12s %-8s", "dataset", "table")
	for _, f := range fracs {
		fmt.Printf(" %6.0f%%", f*100)
	}
	fmt.Println()
	for _, name := range scratchpipe.DatasetNames {
		ds, err := scratchpipe.NewDataset(name, rows)
		if err != nil {
			log.Fatal(err)
		}
		for _, tbl := range ds.Tables {
			fmt.Printf("%-12s %-8s", name, tbl.Name)
			for _, hr := range scratchpipe.HitRateCurve(tbl.Dist, fracs) {
				fmt.Printf(" %6.1f%%", hr*100)
			}
			fmt.Println()
		}
	}

	fmt.Println()
	fmt.Println("Synthetic locality classes used by the performance experiments:")
	fmt.Printf("%-8s", "class")
	for _, f := range fracs {
		fmt.Printf(" %6.0f%%", f*100)
	}
	fmt.Println()
	for _, class := range scratchpipe.Classes {
		d, err := scratchpipe.ClassDistribution(class, rows)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s", class)
		for _, hr := range scratchpipe.HitRateCurve(d, fracs) {
			fmt.Printf(" %6.1f%%", hr*100)
		}
		fmt.Println()
	}

	fmt.Println()
	fmt.Println("Reading: for Criteo-like tables a 2% cache already catches >80% of")
	fmt.Println("accesses, but for Alibaba-like (Low) traces >65% of the table must be")
	fmt.Println("cached to reach 90% — impossible within tens of GBs of GPU memory,")
	fmt.Println("which is exactly the paper's motivation for a prefetching scratchpad.")
}
