// Cost planner: given a locality class, simulate all five training-system
// design points at paper scale (metadata mode) and report iteration time,
// per-iteration energy, and the AWS cost of one million iterations —
// the Table I decision, generalized.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/cost"
	"repro/scratchpipe"
)

func main() {
	classFlag := flag.String("class", "Medium", "locality class: Random|Low|Medium|High")
	cacheFrac := flag.Float64("cache", 0.02, "GPU cache fraction for cached engines")
	iters := flag.Int("iters", 12, "simulated iterations per engine")
	flag.Parse()

	class, err := scratchpipe.ParseClass(*classFlag)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Training-cost planner — paper-scale model (40 GB), class %s, cache %.0f%%\n\n",
		class, *cacheFrac*100)
	fmt.Printf("%-14s %14s %12s %16s %12s\n",
		"engine", "iter (ms)", "energy (J)", "$ / 1M iters", "instance")

	for _, kind := range scratchpipe.Kinds {
		tr, err := scratchpipe.NewTrainer(scratchpipe.Config{
			Engine:    kind,
			Class:     class,
			CacheFrac: *cacheFrac,
			Seed:      7,
		})
		if err != nil {
			log.Fatalf("%s: %v", kind, err)
		}
		rep, err := tr.Train(*iters)
		if err != nil {
			log.Fatalf("%s: %v", kind, err)
		}
		inst := cost.P32xlarge
		if kind == scratchpipe.KindMultiGPU {
			inst = cost.P316xlarge
		}
		joules := scratchpipe.IterationEnergy(rep, scratchpipe.DefaultSystem(), kind)
		fmt.Printf("%-14s %14.2f %12.1f %16s %12s\n",
			kind, rep.IterTime*1e3, joules,
			cost.FormatUSD(cost.MillionIterCost(inst, rep.IterTime)), inst.Name)
	}

	fmt.Println()
	fmt.Println("The paper's Table I conclusion: the 8-GPU system is fastest per")
	fmt.Println("iteration but ScratchPipe on a single-GPU instance is the cheapest")
	fmt.Println("way to buy one million training iterations.")
}
