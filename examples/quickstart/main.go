// Quickstart: train a small DLRM with the ScratchPipe engine and compare
// it against the hybrid CPU-GPU baseline — both the simulated performance
// and the (bitwise identical) training result.
package main

import (
	"fmt"
	"log"

	"repro/scratchpipe"
)

func main() {
	// A laptop-scale model so functional (real float32) training is
	// instant; the control logic is identical at paper scale.
	model := scratchpipe.DefaultModel()
	model.RowsPerTable = 50_000
	model.BatchSize = 128
	model.Lookups = 8
	model.EmbeddingDim = 32
	model.BottomHidden = []int{64, 32}
	model.TopHidden = []int{64, 32}

	const iters = 40

	run := func(kind scratchpipe.Kind) *scratchpipe.Report {
		tr, err := scratchpipe.NewTrainer(scratchpipe.Config{
			Engine:     kind,
			Model:      model,
			Class:      scratchpipe.Medium,
			CacheFrac:  0.05,
			Functional: true,
			Seed:       1,
		})
		if err != nil {
			log.Fatalf("%s: %v", kind, err)
		}
		rep, err := tr.Train(iters)
		if err != nil {
			log.Fatalf("%s: %v", kind, err)
		}
		if err := tr.Flush(); err != nil {
			log.Fatalf("%s: flush: %v", kind, err)
		}
		return rep
	}

	fmt.Println("ScratchPipe quickstart: 40 iterations, Medium locality, 5% cache")
	fmt.Println()
	hybrid := run(scratchpipe.KindHybrid)
	sp := run(scratchpipe.KindScratchPipe)

	fmt.Printf("%-22s %14s %12s %10s\n", "engine", "iter (sim ms)", "avg loss", "hit rate")
	for _, r := range []*scratchpipe.Report{hybrid, sp} {
		fmt.Printf("%-22s %14.3f %12.4f %9.1f%%\n",
			r.Engine, r.IterTime*1e3, r.AvgLoss, r.HitRate()*100)
	}
	fmt.Println()
	fmt.Printf("speedup: %.2fx — with identical training semantics\n", hybrid.IterTime/sp.IterTime)
	fmt.Printf("(losses match: hybrid %.6f vs scratchpipe %.6f)\n", hybrid.AvgLoss, sp.AvgLoss)
	fmt.Printf("prefetch fills: %d rows, eviction write-backs: %d rows\n", sp.Fills, sp.Evictions)
}
