// Command doccheck fails the build when the repository's Markdown
// documentation references intra-repo files that do not exist — the
// class of rot where DESIGN.md cites a source file that was renamed,
// or a README command names a deleted tool. (EXPERIMENTS.md spent two
// PRs as exactly such a dangling reference before it was written.)
//
// Usage:
//
//	doccheck [-root DIR]
//
// It scans every *.md file under the root (skipping .git and
// .claude) and extracts two kinds of reference:
//
//   - Markdown link targets: [text](path) with a relative, non-URL
//     path, resolved against the Markdown file's directory.
//   - Inline code spans: each whitespace-separated token inside
//     `backticks` that looks like a repo path — it contains a path
//     separator with a known top-level prefix, or carries a checkable
//     file extension (.go, .md, .json, .yml, ...). Tokens are also
//     resolved against the repo root, and trailing :line suffixes
//     (internal/bench/perf.go:86) are stripped.
//
// Anything that resolves to neither an existing file nor an existing
// directory is reported, and the exit status is 1. Exit status 0 means
// every reference resolves.
//
// It additionally cross-checks documented CLI flags: any Markdown table
// row whose first cell is a backtick span beginning with a dash
// (| `-workers N` | ... — the README's flag-reference style) claims a
// flag of that name, and the claim must match a flag definition
// somewhere under cmd/ (flag.String("workers", ...) et al.). A
// documented flag no command defines is the same class of rot as a
// dangling path: the reference table outliving a renamed or deleted
// flag.
package main

import (
	"flag"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// linkRe captures [text](target) link targets.
var linkRe = regexp.MustCompile(`\[[^\]]*\]\(([^)\s]+)\)`)

// codeRe captures inline `code` spans (single-backtick only; fenced
// blocks are scanned line by line as ordinary text and contribute no
// spans, which keeps shell output samples from being parsed).
var codeRe = regexp.MustCompile("`([^`\n]+)`")

// lineSuffixRe strips a trailing :123 line reference.
var lineSuffixRe = regexp.MustCompile(`:[0-9]+$`)

// pathTokenRe is the charset of a plausible repo path token.
var pathTokenRe = regexp.MustCompile(`^\.?/?[A-Za-z0-9_][A-Za-z0-9_.\-/]*$`)

// flagRowRe captures the flag name of a Markdown table row whose first
// cell is a backtick span starting with a dash — the flag-reference
// table style (| `-workers N` | meaning |).
var flagRowRe = regexp.MustCompile("^\\|\\s*`-([A-Za-z0-9][A-Za-z0-9_-]*)")

// flagDefRe captures flag definitions in Go sources under cmd/.
var flagDefRe = regexp.MustCompile(`flag\.(?:Bool|Duration|Float64|Int|Int64|String|Uint|Uint64|Var)\(\s*"([^"]+)"`)

// checkedExts are the file extensions worth verifying when a token has
// no directory component ("DESIGN.md", "go.mod"). Dotted Go symbol
// names (core.Config) never match these.
var checkedExts = map[string]bool{
	".go": true, ".md": true, ".json": true, ".yml": true,
	".yaml": true, ".mod": true, ".sum": true, ".sh": true,
}

// topPrefixes are the repo's top-level directories: a slash-separated
// token starting with one of these is a path claim, not prose.
var topPrefixes = []string{
	"internal/", "cmd/", "examples/", "scratchpipe/", ".github/",
}

func main() {
	root := flag.String("root", ".", "repository root to scan")
	flag.Parse()

	var mdFiles []string
	err := filepath.WalkDir(*root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			switch d.Name() {
			case ".git", ".claude", "node_modules":
				return filepath.SkipDir
			}
			return nil
		}
		if strings.EqualFold(filepath.Ext(path), ".md") {
			mdFiles = append(mdFiles, path)
		}
		return nil
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "doccheck:", err)
		os.Exit(2)
	}
	sort.Strings(mdFiles)

	cmdFlags, err := collectCmdFlags(filepath.Join(*root, "cmd"))
	if err != nil {
		fmt.Fprintln(os.Stderr, "doccheck:", err)
		os.Exit(2)
	}

	broken := 0
	for _, md := range mdFiles {
		data, err := os.ReadFile(md)
		if err != nil {
			fmt.Fprintln(os.Stderr, "doccheck:", err)
			os.Exit(2)
		}
		text := string(data)
		seen := map[string]bool{}
		report := func(ref, kind string) {
			if seen[ref] {
				return
			}
			seen[ref] = true
			fmt.Printf("doccheck: %s: dangling %s reference %q\n", md, kind, ref)
			broken++
		}

		for _, m := range linkRe.FindAllStringSubmatch(text, -1) {
			target := strings.Split(m[1], "#")[0]
			if target == "" || strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") {
				continue
			}
			if !exists(filepath.Join(filepath.Dir(md), target)) && !exists(filepath.Join(*root, target)) {
				report(m[1], "link")
			}
		}

		for _, m := range codeRe.FindAllStringSubmatch(text, -1) {
			for _, tok := range strings.Fields(m[1]) {
				ref, ok := pathClaim(tok)
				if !ok {
					continue
				}
				if !exists(filepath.Join(*root, ref)) && !exists(filepath.Join(filepath.Dir(md), ref)) {
					report(tok, "path")
				}
			}
		}

		for _, line := range strings.Split(text, "\n") {
			if m := flagRowRe.FindStringSubmatch(line); m != nil && !cmdFlags[m[1]] {
				report("-"+m[1], "flag")
			}
		}
	}
	if broken > 0 {
		fmt.Printf("doccheck: %d dangling reference(s)\n", broken)
		os.Exit(1)
	}
	fmt.Printf("doccheck: %d Markdown files clean\n", len(mdFiles))
}

// pathClaim decides whether a code-span token claims to be a repo path
// and returns the cleaned path to check. Flags (-reshard), globs
// (*.md), ellipses (./...), Go symbol paths (core.Config), and bare
// words are not claims.
func pathClaim(tok string) (string, bool) {
	tok = lineSuffixRe.ReplaceAllString(tok, "")
	tok = strings.TrimRight(tok, ".,;:")
	if tok == "" || strings.HasPrefix(tok, "-") || strings.Contains(tok, "...") ||
		strings.Contains(tok, "*") || strings.Contains(tok, "<") {
		return "", false
	}
	if !pathTokenRe.MatchString(tok) {
		return "", false
	}
	clean := strings.TrimPrefix(tok, "./")
	if strings.Contains(clean, "/") {
		matched := false
		for _, p := range topPrefixes {
			if strings.HasPrefix(clean, p) || clean == strings.TrimSuffix(p, "/") {
				matched = true
				break
			}
		}
		if !matched {
			return "", false
		}
		// A dotted last segment with a non-checkable extension is a
		// package-path symbol (internal/cost.Cluster): the claim is the
		// package directory, not a file.
		if ext := filepath.Ext(clean); ext != "" && !checkedExts[ext] {
			clean = strings.TrimSuffix(clean, ext)
		}
		return clean, true
	}
	if checkedExts[filepath.Ext(clean)] && strings.Count(clean, ".") == 1 {
		return clean, true
	}
	return "", false
}

// collectCmdFlags gathers every flag name defined by a Go source file
// under cmdDir. A missing cmd directory yields an empty set (the flag
// check then reports every documented flag, which is the honest answer
// for a tree without commands).
func collectCmdFlags(cmdDir string) (map[string]bool, error) {
	flags := map[string]bool{}
	err := filepath.WalkDir(cmdDir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() || !strings.HasSuffix(path, ".go") {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for _, m := range flagDefRe.FindAllStringSubmatch(string(data), -1) {
			flags[m[1]] = true
		}
		return nil
	})
	if os.IsNotExist(err) {
		return flags, nil
	}
	return flags, err
}

func exists(path string) bool {
	_, err := os.Stat(path)
	return err == nil
}
