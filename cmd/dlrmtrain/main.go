// Command dlrmtrain trains a DLRM end-to-end with a selectable training
// engine, printing the loss curve and the engine's simulated performance.
//
// Usage:
//
//	dlrmtrain -engine scratchpipe -class High -iters 50 -rows 100000
//	dlrmtrain -engine hybrid -functional=false -iters 20   # timing only
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/scratchpipe"
)

func main() {
	engineFlag := flag.String("engine", "scratchpipe", "hybrid|static|strawman|scratchpipe|multigpu")
	classFlag := flag.String("class", "Medium", "locality class: Random|Low|Medium|High")
	iters := flag.Int("iters", 30, "training iterations")
	rows := flag.Int64("rows", 100_000, "rows per embedding table")
	tables := flag.Int("tables", 4, "number of embedding tables")
	dim := flag.Int("dim", 32, "embedding dimension")
	lookups := flag.Int("lookups", 8, "lookups per table")
	batch := flag.Int("batch", 256, "mini-batch size")
	cacheFrac := flag.Float64("cache", 0.05, "GPU cache fraction")
	policy := flag.String("policy", "lru", "replacement policy: lru|lfu|random")
	parallel := flag.Bool("parallel", false, "run pipeline stages in goroutines")
	workers := flag.Int("workers", 0, "per-table fan-out parallelism (0 = GOMAXPROCS, 1 = serial)")
	shards := flag.Int("shards", 1, "scratchpad shards per table (1 = unsharded; results identical at any count)")
	functional := flag.Bool("functional", true, "execute real float32 training")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	class, err := scratchpipe.ParseClass(*classFlag)
	if err != nil {
		log.Fatal(err)
	}
	model := scratchpipe.DefaultModel()
	model.RowsPerTable = *rows
	model.NumTables = *tables
	model.EmbeddingDim = *dim
	model.Lookups = *lookups
	model.BatchSize = *batch
	model.BottomHidden = []int{64, 32}
	model.TopHidden = []int{128, 64}

	tr, err := scratchpipe.NewTrainer(scratchpipe.Config{
		Engine:     scratchpipe.Kind(*engineFlag),
		Model:      model,
		Class:      class,
		CacheFrac:  *cacheFrac,
		Policy:     scratchpipe.PolicyKind(*policy),
		Parallel:   *parallel,
		Workers:    *workers,
		Shards:     *shards,
		Functional: *functional,
		Seed:       *seed,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("training %s on %s locality: %d tables x %d rows x %d dims, batch %d\n",
		tr.Engine(), class, *tables, *rows, *dim, *batch)
	rep, err := tr.Train(*iters)
	if err != nil {
		log.Fatal(err)
	}
	if err := tr.Flush(); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%d iterations complete\n", rep.Iters)
	fmt.Printf("  simulated iteration time: %.3f ms (wall %.1f ms)\n", rep.IterTime*1e3, rep.Wall*1e3)
	if *functional {
		fmt.Printf("  mean training loss:       %.4f\n", rep.AvgLoss)
	}
	if rep.Hits+rep.Misses > 0 {
		fmt.Printf("  cache hit rate:           %.1f%% (%d fills, %d write-backs)\n",
			rep.HitRate()*100, rep.Fills, rep.Evictions)
	}
	fmt.Printf("  breakdown: cpu-emb-fwd %.3f ms, cpu-emb-bwd %.3f ms, gpu %.3f ms\n",
		rep.CPUEmbFwd*1e3, rep.CPUEmbBwd*1e3, rep.GPUTime*1e3)
}
