// Command dlrmtrain trains a DLRM end-to-end with a selectable training
// engine, printing the loss curve and the engine's simulated performance.
//
// Usage:
//
//	dlrmtrain -engine scratchpipe -class High -iters 50 -rows 100000
//	dlrmtrain -engine hybrid -functional=false -iters 20   # timing only
//	dlrmtrain -shards 4 -topology cluster2x2 -placement loadaware
//	dlrmtrain -shards 4 -topology cluster2x2 -coord hier   # batched host-tier coordination
//	dlrmtrain -shards 4 -topology cluster2x2 -coord approx -coord-quantum 64
//	dlrmtrain -shards 4 -topology cluster2x2 -coord hier -coord-overlap  # speculative coordination overlap
//	dlrmtrain -shards 1 -topology cluster2x2 -reshard 20:4 -coord hier  # elastic scale-out mid-run
//	dlrmtrain -topology numa4 -reshard load:4 -class High   # load-triggered growth
//	dlrmtrain -serve -replicas 4 -router hitaware -arrival poisson:2000 -class High
//	dlrmtrain -serve -replicas 8 -router leastloaded -arrival flash:2000:8 -topology cluster2x2
//	dlrmtrain -serve -serve-fail replica1@0.4 -retry 3:100 -deadline 20   # kill + failover
//	dlrmtrain -serve -arrival flash:5000:10 -admission cheapest:0.5:degrade
//
// With -serve the command runs the online serving simulation instead of
// training: -replicas scratchpad-holding workers answer an open-loop
// query stream (-arrival) behind the -router policy, and the run prints
// throughput, hit rate, and latency percentiles.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/scratchpipe"
)

// fail prints a one-line usage error and exits with status 2.
func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "dlrmtrain: "+format+"\n", args...)
	os.Exit(2)
}

// runServe plays the online serving simulation and prints the report.
func runServe(cfg scratchpipe.Config, class scratchpipe.Class) {
	tr, err := scratchpipe.NewTrainer(cfg)
	if err != nil {
		log.Fatal(err)
	}
	rep, err := tr.Serve()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("serving on %s locality: %d replicas behind %s router, arrival %s\n",
		class, rep.Replicas, rep.Router, cfg.Serve.Arrival.String())
	fmt.Printf("\n%d queries offered over %.2f s (%.0f q/s realized)\n",
		rep.Offered, rep.Duration, rep.OfferedRate)
	fmt.Printf("  throughput:      %.0f q/s (%d served, %d dropped)\n",
		rep.Throughput, rep.Served, rep.Drops)
	fmt.Printf("  cache hit rate:  %.1f%% (%d fills, %d evictions)\n",
		rep.HitRate()*100, rep.Fills, rep.Evictions)
	fmt.Printf("  latency:         p50 %.3f ms, p95 %.3f ms, p99 %.3f ms, max %.3f ms\n",
		rep.Latency.P50*1e3, rep.Latency.P95*1e3, rep.Latency.P99*1e3, rep.Latency.Max*1e3)
	// Batching section: keyed off the option, so unbatched runs print
	// byte-identically to the pre-batching serving tree.
	if cfg.Serve.Batch.Enabled() {
		occ := 0.0
		if rep.Batches > 0 {
			occ = float64(rep.BatchedQueries) / float64(rep.Batches)
		}
		fmt.Printf("  batching:        cap %d, %d batches launched, avg %.2f queries/batch (max %d)\n",
			cfg.Serve.Batch.Cap, rep.Batches, occ, rep.MaxBatch)
	}
	if rep.CrossNode > 0 {
		fmt.Printf("  routing links:   %d cross-node queries (%d cross-host), %.3f ms link time\n",
			rep.CrossNode, rep.CrossHost, rep.LinkTime*1e3)
	}
	if rep.CoordTime > 0 {
		fmt.Printf("  shard coordination: %.3f ms total across queries\n", rep.CoordTime*1e3)
	}
	// Resilience section: keyed off the options, not the report, so
	// zero-fault runs without the new flags print byte-identically to
	// the pre-fault serving tree.
	resilient := cfg.Serve.Resilient()
	if resilient {
		fmt.Printf("  resilience:      availability %.4f%%, goodput %.0f q/s, drop rate %.2f%%\n",
			rep.Availability*100, rep.Goodput, rep.DropRate()*100)
		fmt.Printf("    outcomes: %d timed out, %d retried, %d hedged, %d shed, %d degraded\n",
			rep.TimedOut, rep.Retried, rep.Hedged, rep.Shed, rep.Degraded)
		if rep.DegradedLatency.Count > 0 {
			fmt.Printf("    degraded latency: p50 %.3f ms, p99 %.3f ms over %d CPU-path completions (GPU-path percentiles above exclude them)\n",
				rep.DegradedLatency.P50*1e3, rep.DegradedLatency.P99*1e3, rep.DegradedLatency.Count)
		}
		if rep.RewarmFills > 0 {
			fmt.Printf("    recovery: %d re-warm fills, %.3f ms re-warm stall\n",
				rep.RewarmFills, rep.RewarmTime*1e3)
		}
	}
	for i, w := range rep.Workers {
		if resilient {
			fmt.Printf("  worker %d (node %d): %d served, %d dropped (%.1f%% drop rate), hit rate %.1f%%, peak queue %d, downtime %.0f ms\n",
				i, w.Node, w.Served, w.Drops, w.DropRate()*100, w.HitRate()*100, w.PeakDepth, w.Downtime*1e3)
			continue
		}
		fmt.Printf("  worker %d (node %d): %d served, %d dropped, hit rate %.1f%%, peak queue %d\n",
			i, w.Node, w.Served, w.Drops, w.HitRate()*100, w.PeakDepth)
	}
}

func main() {
	engineFlag := flag.String("engine", "scratchpipe", "hybrid|static|strawman|scratchpipe|multigpu")
	classFlag := flag.String("class", "Medium", "locality class: Random|Low|Medium|High")
	iters := flag.Int("iters", 30, "training iterations")
	rows := flag.Int64("rows", 100_000, "rows per embedding table")
	tables := flag.Int("tables", 4, "number of embedding tables")
	dim := flag.Int("dim", 32, "embedding dimension")
	lookups := flag.Int("lookups", 8, "lookups per table")
	batch := flag.Int("batch", 256, "mini-batch size")
	cacheFrac := flag.Float64("cache", 0.05, "GPU cache fraction")
	policy := flag.String("policy", "lru", "replacement policy: lru|lfu|random")
	parallel := flag.Bool("parallel", false, "run pipeline stages in goroutines")
	workers := flag.Int("workers", 0, "per-table fan-out parallelism (0 = GOMAXPROCS, 1 = serial)")
	shards := flag.Int("shards", 1, "scratchpad shards per table (1 = unsharded; results identical at any count)")
	topology := flag.String("topology", "single", "shard placement topology (single, numa<N>, pcie<N>, nvlink<N>, cluster<H>x<S>)")
	placement := flag.String("placement", "stripe", "shard placement policy (stripe|range|loadaware)")
	coord := flag.String("coord", "exact", "cross-shard coordination protocol (exact|batched|hier|approx)")
	coordQuantum := flag.Int("coord-quantum", 0, "approx-mode recency quantum in clock ticks (0 = default; 1 = exact order)")
	coordOverlap := flag.Bool("coord-overlap", false, "overlap distributed coordination with the pipeline (scratchpipe engine; bit-identical plans, shrinks the Plan-stage coordination share)")
	reshard := flag.String("reshard", "", "elastic reshard schedule: iter:shards steps and/or load:<max>[:<thresh>] (e.g. 200:4,500:8 or load:8; empty = fixed sharding)")
	failPlan := flag.String("fail", "", "fault schedule: host<H>@<I>, agg<H>@<I>, link:host<A>-host<B>@<I>[-<J>], degrade:host<A>-host<B>@<I>[-<J>][x<F>] (e.g. host1@20,link:host0-host1@10-15; empty = no faults)")
	ckptInterval := flag.Int("ckpt-interval", 0, "priced scratchpad checkpoint flush every N iterations (0 = disabled; with -fail, host deaths restore residency from the last flush)")
	functional := flag.Bool("functional", true, "execute real float32 training")
	serveMode := flag.Bool("serve", false, "run the online serving simulation instead of training")
	replicas := flag.Int("replicas", 4, "serving replica workers (with -serve)")
	router := flag.String("router", "hitaware", "serving router policy: random|roundrobin|leastloaded|hitaware|hitaware-telemetry (with -serve)")
	arrival := flag.String("arrival", "poisson:2000", "serving arrival process: poisson:<qps>, diurnal:<qps>[:<amp>], or flash:<qps>[:<mult>[:<at>:<dur>]] (with -serve)")
	serveFail := flag.String("serve-fail", "", "serving fault schedule: replica<R>@<T>[-<T2>] and/or host<H>@<T>, times in virtual-clock seconds (with -serve; empty = no faults)")
	deadline := flag.Float64("deadline", 0, "per-query deadline in ms; responses past it count as timed out (with -serve; 0 = none)")
	retry := flag.String("retry", "", "client retry policy: <max>[:<backoff-ms>], exponential backoff to a different replica (with -serve; empty = no retries)")
	hedge := flag.Float64("hedge", 0, "hedged-request delay in ms; a backup attempt fires on another replica if no response by then (with -serve; 0 = no hedging)")
	admission := flag.String("admission", "", "admission control: newest|cheapest[:<threshold>][:degrade], or bare degrade (with -serve; empty = admit all)")
	serveBatch := flag.String("serve-batch", "", "replica-side request batching: <cap>[:<delay-ms>], e.g. 8 or 8:0.25 (with -serve; empty or 1 = no batching)")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	// Reject bad knob combinations here, with one-line errors, instead
	// of letting them fail (or silently misbehave) deep in the engine.
	if *shards < 1 {
		fail("-shards %d: shard count must be >= 1", *shards)
	}
	switch scratchpipe.PolicyKind(*policy) {
	case scratchpipe.LRU, scratchpipe.LFU, scratchpipe.RandomPolicy:
	default:
		fail("-policy %q: want lru, lfu, or random", *policy)
	}
	if *shards > 1 && scratchpipe.PolicyKind(*policy) != scratchpipe.LRU {
		fail("-shards %d requires -policy lru (the cross-shard eviction coordinator merges LRU recency orders)", *shards)
	}
	topo, err := scratchpipe.ParseTopology(*topology)
	if err != nil {
		fail("-topology %q: want single, numa<N>, pcie<N>, nvlink<N>, or cluster<H>x<S>", *topology)
	}
	place, err := scratchpipe.ParsePlacementPolicy(*placement)
	if err != nil {
		fail("-placement %q: want stripe, range, or loadaware", *placement)
	}
	coordMode, err := scratchpipe.ParseCoordMode(*coord)
	if err != nil {
		fail("-coord %q: want exact, batched, hier, or approx", *coord)
	}
	if *coordQuantum < 0 {
		fail("-coord-quantum %d: quantum must be >= 0", *coordQuantum)
	}
	if *coordQuantum > 0 && coordMode != scratchpipe.CoordApprox {
		fail("-coord-quantum only applies to -coord approx (got -coord %s)", coordMode)
	}
	if *coordOverlap && scratchpipe.Kind(*engineFlag) != scratchpipe.KindScratchPipe {
		fail("-coord-overlap applies to the scratchpipe engine, got -engine %s", *engineFlag)
	}
	reshardSpec, err := scratchpipe.ParseReshardSpec(*reshard)
	if err != nil {
		fail("-reshard %q: %v", *reshard, err)
	}
	if reshardSpec.MaxShards() > 1 && scratchpipe.PolicyKind(*policy) != scratchpipe.LRU {
		fail("-reshard reaching %d shards requires -policy lru", reshardSpec.MaxShards())
	}
	if reshardSpec.Active() {
		switch scratchpipe.Kind(*engineFlag) {
		case scratchpipe.KindStrawMan, scratchpipe.KindScratchPipe:
		default:
			fail("-reshard applies to the dynamic-cache engines (strawman|scratchpipe), got -engine %s", *engineFlag)
		}
	}
	faults, err := scratchpipe.ParseFaultPlan(*failPlan)
	if err != nil {
		fail("-fail %q: %v", *failPlan, err)
	}
	if *ckptInterval < 0 {
		fail("-ckpt-interval %d: interval must be >= 0", *ckptInterval)
	}
	if faults.Active() {
		if topo.NumNodes() <= 1 {
			fail("-fail needs a multi-host -topology (cluster<H>x<S>), got %q", *topology)
		}
		if err := faults.Validate(topo); err != nil {
			fail("-fail %q: %v", *failPlan, err)
		}
		switch scratchpipe.Kind(*engineFlag) {
		case scratchpipe.KindStrawMan, scratchpipe.KindScratchPipe:
		default:
			fail("-fail applies to the dynamic-cache engines (strawman|scratchpipe), got -engine %s", *engineFlag)
		}
	}

	// Serving flags: -router/-replicas/-arrival only mean something under
	// -serve, and each gets the same early one-line rejection treatment.
	routerPolicy, err := scratchpipe.ParseRouterPolicy(*router)
	if err != nil {
		fail("-router %q: want random, roundrobin, leastloaded, hitaware, or hitaware-telemetry", *router)
	}
	arrivalSpec, err := scratchpipe.ParseArrival(*arrival)
	if err != nil {
		fail("-arrival %q: want poisson:<qps>, diurnal:<qps>[:<amp>], or flash:<qps>[:<mult>[:<at>:<dur>]]", *arrival)
	}
	serveFaults, err := scratchpipe.ParseFaultPlan(*serveFail)
	if err != nil {
		fail("-serve-fail %q: %v", *serveFail, err)
	}
	retrySpec, err := scratchpipe.ParseRetry(*retry)
	if err != nil {
		fail("-retry %q: %v", *retry, err)
	}
	admissionSpec, err := scratchpipe.ParseAdmission(*admission)
	if err != nil {
		fail("-admission %q: %v", *admission, err)
	}
	batchSpec, err := scratchpipe.ParseBatch(*serveBatch)
	if err != nil {
		fail("-serve-batch %q: %v", *serveBatch, err)
	}
	if *deadline < 0 {
		fail("-deadline %g: deadline must be >= 0 ms", *deadline)
	}
	if *hedge < 0 {
		fail("-hedge %g: hedge delay must be >= 0 ms", *hedge)
	}
	if *serveMode {
		if *replicas < 1 {
			fail("-replicas %d: serving needs at least one replica", *replicas)
		}
		// Host-scoped serving faults need the multi-host placement graph;
		// mirror the engine, which only sees a topology when it is real.
		serveTopo := topo
		if topo.NumNodes() <= 1 {
			serveTopo = nil
		}
		if err := serveFaults.ValidateServe(*replicas, serveTopo); err != nil {
			fail("-serve-fail %q: %v", *serveFail, err)
		}
	} else {
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "replicas", "router", "arrival", "serve-fail", "deadline", "retry", "hedge", "admission", "serve-batch":
				fail("-%s only applies with -serve", f.Name)
			}
		})
	}

	class, err := scratchpipe.ParseClass(*classFlag)
	if err != nil {
		log.Fatal(err)
	}
	model := scratchpipe.DefaultModel()
	model.RowsPerTable = *rows
	model.NumTables = *tables
	model.EmbeddingDim = *dim
	model.Lookups = *lookups
	model.BatchSize = *batch
	model.BottomHidden = []int{64, 32}
	model.TopHidden = []int{128, 64}

	cfg := scratchpipe.Config{
		Engine:       scratchpipe.Kind(*engineFlag),
		Model:        model,
		Class:        class,
		CacheFrac:    *cacheFrac,
		Policy:       scratchpipe.PolicyKind(*policy),
		Parallel:     *parallel,
		Workers:      *workers,
		Shards:       *shards,
		Functional:   *functional,
		Seed:         *seed,
		Placement:    place,
		Coord:        coordMode,
		CoordQuantum: *coordQuantum,
		CoordOverlap: *coordOverlap,
		Reshard:      reshardSpec,
		Faults:       faults,
		CkptInterval: *ckptInterval,
	}
	if topo.NumNodes() > 1 {
		cfg.Topology = topo
	}
	if *serveMode {
		cfg.Serve = scratchpipe.ServeOptions{
			Replicas:  *replicas,
			Router:    routerPolicy,
			Arrival:   arrivalSpec,
			CacheFrac: *cacheFrac,
			Faults:    serveFaults,
			Deadline:  *deadline * 1e-3,
			Retry:     retrySpec,
			Hedge:     *hedge * 1e-3,
			Admission: admissionSpec,
			Batch:     batchSpec,
		}
		// Serving is a pure simulation over ID metadata — real float32
		// tables would only add allocation time (and at paper scale,
		// tens of GB).
		cfg.Functional = false
		runServe(cfg, class)
		return
	}
	tr, err := scratchpipe.NewTrainer(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("training %s on %s locality: %d tables x %d rows x %d dims, batch %d\n",
		tr.Engine(), class, *tables, *rows, *dim, *batch)
	rep, err := tr.Train(*iters)
	if err != nil {
		log.Fatal(err)
	}
	if err := tr.Flush(); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%d iterations complete\n", rep.Iters)
	fmt.Printf("  simulated iteration time: %.3f ms (wall %.1f ms)\n", rep.IterTime*1e3, rep.Wall*1e3)
	if *functional {
		fmt.Printf("  mean training loss:       %.4f\n", rep.AvgLoss)
	}
	if rep.Hits+rep.Misses > 0 {
		fmt.Printf("  cache hit rate:           %.1f%% (%d fills, %d write-backs)\n",
			rep.HitRate()*100, rep.Fills, rep.Evictions)
	}
	fmt.Printf("  breakdown: cpu-emb-fwd %.3f ms, cpu-emb-bwd %.3f ms, gpu %.3f ms\n",
		rep.CPUEmbFwd*1e3, rep.CPUEmbBwd*1e3, rep.GPUTime*1e3)
	if rep.CoordTime > 0 {
		finalShards := *shards
		if rep.FinalShards > 0 {
			finalShards = rep.FinalShards
		}
		fmt.Printf("  shard coordination:       %.3f ms/iter (%s, %s placement, %d shards, %s protocol)\n",
			rep.CoordTime*1e3, topo.Name, place, finalShards, rep.CoordMode)
		fmt.Printf("    rounds: %d total (%d polls, %d confirms, %d slot moves, %d stamp syncs, %d borrows), %.1f KB\n",
			rep.Coord.Messages, rep.Coord.PollRounds, rep.Coord.ConfirmRounds,
			rep.Coord.SlotMoveRounds, rep.Coord.StampSyncRounds, rep.Coord.BorrowRounds,
			rep.Coord.Bytes()/1e3)
		if rep.CoordWallTime > 0 {
			fmt.Printf("    message plane: %.3f ms/iter measured wall (modeled %.3f ms/iter)\n",
				rep.CoordWallTime*1e3, rep.CoordTime*1e3)
		}
		if ov := rep.Overlap; ov.Speculated > 0 {
			fmt.Printf("    overlap: %d speculated, %d adopted, %d rolled back\n",
				ov.Speculated, ov.Adopted, ov.RolledBack)
		}
	}
	if rs := rep.Resharding; rs.Events > 0 {
		// Resharding counters sum across tables; every boundary
		// reshards each table's manager once.
		fmt.Printf("  elastic resharding:       %d boundaries -> %d shards; %d resident / %d free / %d hold entries migrated\n",
			rs.Events/int64(*tables), rep.FinalShards, rs.ResidentMoved, rs.FreeMoved, rs.HoldsMoved)
		fmt.Printf("    migration: %.1f KB in %d transfers, %.3f ms modeled stall\n",
			rs.Bytes/1e3, rs.Rounds, rep.MigrationTime*1e3)
	}
	if div := rep.CoordDivergence; div.Plans > 0 {
		fmt.Printf("  approx-LRU divergence:    edit rate %.4f (distance %d over %d exact / %d approx evictions), hit-rate delta %+.4f%%\n",
			div.EditRate(), div.EditDistance, div.ExactEvictions, div.ApproxEvictions, div.HitRateDelta()*100)
	}
	// Fault-tolerance section: keyed off the flags, not the report, so
	// fault-free runs print byte-identically to the pre-fault tree.
	if faults.Active() || *ckptInterval > 0 {
		fmt.Printf("  fault tolerance:          downtime %.1f ms, recovery %.3f ms, availability %.4f%%\n",
			rep.Downtime*1e3, rep.RecoveryTime*1e3, rep.Availability*100)
		if ev := rep.Evac; ev.Events > 0 {
			fmt.Printf("    evacuation: %d events, %d shards re-homed; %d resident lost, %d restored, %d held kept; %.1f KB in %d transfers\n",
				ev.Events, ev.ShardsEvacuated, ev.LostResident, ev.RestoredResident, ev.HeldKept,
				ev.Bytes/1e3, ev.Rounds)
		}
		if *ckptInterval > 0 {
			fmt.Printf("    checkpoints: every %d iters, %.3f ms flush total\n",
				*ckptInterval, rep.CheckpointTime*1e3)
		}
	}
}
