// Command tracegen generates synthetic embedding-access traces and prints
// their locality characterization (the Figure 3 analysis).
//
// Usage:
//
//	tracegen -class High -tables 8 -rows 10000000 -lookups 20 \
//	         -batch 2048 -batches 32 -out trace.bin
//	tracegen -characterize -rows 1000000
//
// Without -out, the trace is generated and characterized but not written.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/trace"
)

func main() {
	classFlag := flag.String("class", "Medium", "locality class: Random|Low|Medium|High")
	tables := flag.Int("tables", 8, "number of embedding tables")
	rows := flag.Int64("rows", 10_000_000, "rows per table")
	lookups := flag.Int("lookups", 20, "lookups per table per sample")
	batch := flag.Int("batch", 2048, "mini-batch size")
	batches := flag.Int("batches", 16, "number of mini-batches to generate")
	seed := flag.Int64("seed", 42, "random seed")
	out := flag.String("out", "", "output trace file (optional)")
	characterize := flag.Bool("characterize", false, "print the dataset-preset characterization instead")
	flag.Parse()

	if *characterize {
		printCharacterization(*rows, *seed)
		return
	}

	class, err := trace.ParseClass(*classFlag)
	if err != nil {
		log.Fatal(err)
	}
	gen, err := trace.NewGenerator(trace.GeneratorConfig{
		NumTables:    *tables,
		RowsPerTable: *rows,
		Lookups:      *lookups,
		BatchSize:    *batch,
		Class:        class,
		Seed:         *seed,
		MetadataOnly: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	bs := make([]*trace.Batch, 0, *batches)
	for i := 0; i < *batches; i++ {
		bs = append(bs, gen.Next())
	}

	// Characterize table 0 of the generated trace.
	var total, unique int
	seen := make(map[int64]struct{})
	for _, b := range bs {
		for _, id := range b.Tables[0] {
			total++
			if _, ok := seen[id]; !ok {
				seen[id] = struct{}{}
				unique++
			}
		}
	}
	fmt.Printf("generated %d batches: %d tables x %d rows, %d lookups, batch %d (class %s)\n",
		len(bs), *tables, *rows, *lookups, *batch, class)
	fmt.Printf("table 0: %d total IDs, %d distinct (%.1f%% of table touched)\n",
		total, unique, 100*float64(unique)/float64(*rows))

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := trace.WriteTrace(f, *rows, bs); err != nil {
			log.Fatal(err)
		}
		info, err := f.Stat()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s (%.1f MB)\n", *out, float64(info.Size())/1e6)
	}
}

func printCharacterization(rows, seed int64) {
	fmt.Println("Sorted access concentration of the dataset presets (Figure 3):")
	for _, name := range trace.DatasetNames {
		ds, err := trace.NewDataset(name, rows)
		if err != nil {
			log.Fatal(err)
		}
		for _, tbl := range ds.Tables {
			fmt.Printf("%-12s %-8s top-0.1%%: %5.1f%%  top-2%%: %5.1f%%  top-10%%: %5.1f%%  top-30%%: %5.1f%%\n",
				name, tbl.Name,
				tbl.Dist.CDF(0.001)*100, tbl.Dist.CDF(0.02)*100,
				tbl.Dist.CDF(0.10)*100, tbl.Dist.CDF(0.30)*100)
		}
	}
}
