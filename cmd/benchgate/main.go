// Command benchgate is the CI benchmark-regression smoke gate: it re-runs
// the quick hot-path sweep (the same measurement `spbench -quick -json`
// records) and fails when wall time or allocation count regresses beyond
// the configured thresholds against the committed BENCH_hotpath.json
// baseline.
//
// Usage:
//
//	benchgate -baseline BENCH_hotpath.json [-wall-factor 1.25]
//	          [-alloc-factor 1.25] [-coord-factor 1.25]
//	          [-skew-tolerance 0.75] [-runs 2]
//	          [-workers 1] [-shards 1] [-topology single]
//	          [-placement stripe] [-coord exact] [-coord-overlap]
//	          [-reshard SPEC] [-fail PLAN] [-ckpt-interval N]
//	          [-serve] [-router P] [-replicas R] [-arrival SPEC]
//	          [-serve-fail PLAN] [-deadline MS] [-retry SPEC] [-hedge MS]
//	          [-admission SPEC] [-serve-batch SPEC]
//
// The gate measures with Workers=1 and Shards=1 by default so allocation
// counts are deterministic and wall time does not depend on the CI
// runner's core count; it compares against the most recent baseline entry
// with the same configuration label and the same
// workers/shards/topology/placement/coord shape. Passing -shards with
// -topology/-placement gates the sharded+placement entry family (the
// coordination-metering hot path) against its own baseline; adding
// -coord gates a specific coordination protocol, and when the baseline
// entry recorded coordination rounds the gate also fails on a >25%
// (by default; -coord-factor) round-count regression — rounds are
// simulated and deterministic, so a regression there is a protocol
// change, not noise. Passing -reshard gates the elastic-resharding
// entry family — a mid-sweep shard-count transition with live state
// migration — against its own baseline (the schedule string must match
// the recorded entry's); modeled migration seconds gate at the same
// -coord-factor threshold when the baseline recorded any. Passing
// -fail (with a matching -ckpt-interval) gates the fault-family
// entries — a deterministic mid-sweep failure schedule with shard
// evacuation, degraded-mode coordination, and priced recovery — and
// additionally fails on a modeled recovery-seconds regression at the
// -coord-factor threshold, since the recovery bill is deterministic
// for a given schedule. Passing -serve (with -router/-replicas/-arrival)
// gates the serving-family entries — the online serving simulation —
// on their deterministic throughput, hit rate, and p99, where *falling
// below* the baseline by the -coord-factor is the regression. Adding
// -serve-fail (with -deadline/-retry/-hedge/-admission) gates the
// fault-injected serving family: availability and goodput must not
// fall below the baseline by the -coord-factor, and the retried/
// hedged/shed counters must match the baseline exactly — they are
// deterministic in the seed, so any drift means the resilience
// machinery (retry scheduling, hedge arming, admission shedding)
// changed behaviour. Passing -serve-batch gates the batched serving
// family: the batch-launch count and batched-query count must match
// the baseline exactly — batch formation is deterministic in the
// seed, so any drift means the batcher's scheduling changed.
//
// Entries that recorded a measured coordination wall additionally gate
// the modeled-vs-measured skew |coord_seconds - coord_wall_seconds| /
// coord_seconds against -skew-tolerance (DESIGN.md §12 documents why
// the plane legitimately undershoots the serial pricing model).
// Passing -coord-overlap gates the overlapped-coordination family: the
// speculation counters must match the baseline exactly (they are
// deterministic — a guard regression that silently stops adopting is a
// failure even though plans stay correct), an undisturbed family must
// adopt every speculation, and the deterministic modeled sweep wall
// (sim_wall_seconds) must sit strictly below the matching non-overlap
// twin entry's — the gated "overlap measurably wins" criterion.
//
// Wall time is the minimum of -runs sweeps, which damps scheduler
// noise on shared runners. On any regression the gate prints the
// failing family's full baseline-vs-measured delta table, not just the
// first offending metric. Exit status 1 means a regression, 2 a
// usage/baseline problem.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"

	"repro/internal/bench"
	"repro/internal/engine"
	"repro/internal/hw"
	"repro/internal/serve"
	"repro/internal/shard"
)

func main() {
	baseline := flag.String("baseline", "BENCH_hotpath.json", "committed hot-path history to gate against")
	configName := flag.String("config", "quick", "configuration label to measure and match (quick|full)")
	wallFactor := flag.Float64("wall-factor", 1.25, "fail if wall time exceeds baseline by this factor")
	allocFactor := flag.Float64("alloc-factor", 1.25, "fail if allocation count exceeds baseline by this factor")
	coordFactor := flag.Float64("coord-factor", 1.25, "fail if coordination rounds exceed baseline by this factor (entries with recorded rounds only)")
	skewTol := flag.Float64("skew-tolerance", 0.75, "fail if the modeled-vs-measured coordination skew exceeds this fraction (entries with a recorded coordination wall only)")
	runs := flag.Int("runs", 2, "measurement repetitions (best wall time wins)")
	workers := flag.Int("workers", 1, "per-table fan-out parallelism for the measurement")
	shards := flag.Int("shards", 1, "scratchpad shards per table for the measurement")
	topology := flag.String("topology", "single", "shard placement topology for the measurement ("+hw.TopologyNames+")")
	placement := flag.String("placement", "stripe", "shard placement policy for the measurement (stripe|range|loadaware)")
	coord := flag.String("coord", "exact", "cross-shard coordination protocol for the measurement ("+shard.CoordModeNames+")")
	coordOverlap := flag.Bool("coord-overlap", false, "gate the overlapped-coordination family (speculation counters exact; sim wall strictly below the non-overlap twin entry)")
	reshard := flag.String("reshard", "", "elastic reshard schedule for the measurement (e.g. 4:4 or load:8; empty = fixed sharding)")
	failPlan := flag.String("fail", "", "fault schedule for the measurement ("+hw.FaultGrammar+"; empty = fault-free)")
	ckptInterval := flag.Int("ckpt-interval", 0, "checkpoint-flush interval for the measurement (0 = disabled)")
	serveMode := flag.Bool("serve", false, "gate the serving family (the online serving simulation) instead of the training sweep")
	replicas := flag.Int("replicas", 4, "serving replica workers (with -serve)")
	router := flag.String("router", "hitaware", "serving router policy: "+serve.PolicyNames+" (with -serve)")
	arrival := flag.String("arrival", "", "serving arrival process: "+serve.ArrivalGrammar+" (with -serve; empty = poisson default)")
	serveFail := flag.String("serve-fail", "", "serving fault schedule ("+serve.ServeFaultGrammar+"; with -serve; empty = no faults)")
	deadline := flag.Float64("deadline", 0, "per-query serving deadline in ms (with -serve; 0 = none)")
	retry := flag.String("retry", "", "serving client retry policy ("+serve.RetryGrammar+"; with -serve; empty = no retries)")
	hedge := flag.Float64("hedge", 0, "serving hedged-request delay in ms (with -serve; 0 = no hedging)")
	admission := flag.String("admission", "", "serving admission control ("+serve.AdmissionGrammar+"; with -serve; empty = admit all)")
	serveBatch := flag.String("serve-batch", "", "replica-side request batching ("+serve.BatchGrammar+"; with -serve; empty or 1 = no batching)")
	flag.Parse()

	if *shards < 1 {
		fmt.Fprintf(os.Stderr, "benchgate: -shards %d: shard count must be >= 1\n", *shards)
		os.Exit(2)
	}
	topo, err := hw.ParseTopology(*topology)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: -topology %q: want %s\n", *topology, hw.TopologyNames)
		os.Exit(2)
	}
	policy, err := hw.ParsePlacementPolicy(*placement)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: -placement %q: want stripe, range, or loadaware\n", *placement)
		os.Exit(2)
	}
	coordMode, err := shard.ParseCoordMode(*coord)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: -coord %q: want %s\n", *coord, shard.CoordModeNames)
		os.Exit(2)
	}
	reshardSpec, err := engine.ParseReshardSpec(*reshard)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: -reshard %q: %v\n", *reshard, err)
		os.Exit(2)
	}
	faults, err := hw.ParseFaultPlan(*failPlan)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: -fail %q: %v\n", *failPlan, err)
		os.Exit(2)
	}
	if *ckptInterval < 0 {
		fmt.Fprintf(os.Stderr, "benchgate: -ckpt-interval %d: interval must be >= 0\n", *ckptInterval)
		os.Exit(2)
	}
	if faults.Active() {
		if topo.NumNodes() <= 1 {
			fmt.Fprintf(os.Stderr, "benchgate: -fail needs a multi-host -topology (cluster<H>x<S>), got %q\n", *topology)
			os.Exit(2)
		}
		if err := faults.Validate(topo); err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: -fail %q: %v\n", *failPlan, err)
			os.Exit(2)
		}
	}

	routerPolicy, err := serve.ParsePolicy(*router)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: -router %q: want %s\n", *router, serve.PolicyNames)
		os.Exit(2)
	}
	arrivalSpec, err := serve.ParseArrival(*arrival)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: -arrival %q: want %s\n", *arrival, serve.ArrivalGrammar)
		os.Exit(2)
	}
	if *serveMode && *replicas < 1 {
		fmt.Fprintf(os.Stderr, "benchgate: -replicas %d: serving needs at least one replica\n", *replicas)
		os.Exit(2)
	}
	serveFaults, err := hw.ParseFaultPlan(*serveFail)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: -serve-fail %q: %v\n", *serveFail, err)
		os.Exit(2)
	}
	retrySpec, err := serve.ParseRetry(*retry)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: -retry %q: %v\n", *retry, err)
		os.Exit(2)
	}
	admissionSpec, err := serve.ParseAdmission(*admission)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: -admission %q: %v\n", *admission, err)
		os.Exit(2)
	}
	batchSpec, err := serve.ParseBatch(*serveBatch)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: -serve-batch %q: %v\n", *serveBatch, err)
		os.Exit(2)
	}
	if *deadline < 0 || *hedge < 0 {
		fmt.Fprintf(os.Stderr, "benchgate: -deadline/-hedge must be >= 0 ms\n")
		os.Exit(2)
	}
	if *serveMode {
		serveTopo := topo
		if topo.NumNodes() <= 1 {
			serveTopo = nil
		}
		if err := serveFaults.ValidateServe(*replicas, serveTopo); err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: -serve-fail %q: %v\n", *serveFail, err)
			os.Exit(2)
		}
	}

	data, err := os.ReadFile(*baseline)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	var hist bench.HotPathHistory
	if err := json.Unmarshal(data, &hist); err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %s is not a hot-path history: %v\n", *baseline, err)
		os.Exit(2)
	}
	topoName := ""
	if topo.NumNodes() > 1 {
		topoName = topo.Name
	}
	// The serving-family shape the measurement will record (empty router
	// = not a serving entry).
	serveOpts := serve.Options{}
	if *serveMode {
		serveOpts = serve.Options{
			Replicas:  *replicas,
			Router:    routerPolicy,
			Arrival:   arrivalSpec,
			Faults:    serveFaults,
			Deadline:  *deadline * 1e-3,
			Retry:     retrySpec,
			Hedge:     *hedge * 1e-3,
			Admission: admissionSpec,
			Batch:     batchSpec,
		}
	}
	serveRouter, serveArrival, serveReplicas := "", "", 0
	serveFaultsStr, serveResilience, serveBatchStr := "", "", ""
	if *serveMode {
		resolved := serveOpts.WithDefaults()
		serveRouter = string(resolved.Router)
		serveArrival = resolved.Arrival.String()
		serveReplicas = resolved.Replicas
		serveFaultsStr = resolved.Faults.String()
		serveResilience = resolved.ResilienceString()
		serveBatchStr = resolved.Batch.String()
	}
	base := pickBaseline(hist.History, *configName, *workers, *shards, topoName, string(policy), string(coordMode), *coordOverlap, reshardSpec.String(), faults.String(), *ckptInterval, serveRouter, serveArrival, serveReplicas, serveFaultsStr, serveResilience, serveBatchStr)
	if base == nil {
		extraArgs := ""
		if *coordOverlap {
			extraArgs += " -coord-overlap"
		}
		if reshardSpec.Active() {
			extraArgs += " -reshard " + reshardSpec.String()
		}
		if faults.Active() {
			extraArgs += " -fail " + faults.String()
		}
		if *ckptInterval > 0 {
			extraArgs += fmt.Sprintf(" -ckpt-interval %d", *ckptInterval)
		}
		if *serveMode {
			extraArgs += fmt.Sprintf(" -serve -router %s -replicas %d", serveRouter, serveReplicas)
			if *arrival != "" {
				extraArgs += " -arrival " + *arrival
			}
			if *serveFail != "" {
				extraArgs += " -serve-fail " + serveFaultsStr
			}
			if *deadline > 0 {
				extraArgs += fmt.Sprintf(" -deadline %g", *deadline)
			}
			if retrySpec.Active() {
				extraArgs += " -retry " + retrySpec.String()
			}
			if *hedge > 0 {
				extraArgs += fmt.Sprintf(" -hedge %g", *hedge)
			}
			if admissionSpec.Active() {
				extraArgs += " -admission " + admissionSpec.String()
			}
			if batchSpec.Enabled() {
				extraArgs += " -serve-batch " + batchSpec.String()
			}
		}
		fmt.Fprintf(os.Stderr,
			"benchgate: no %q entry with workers=%d shards=%d topology=%q placement=%q coord=%q reshard=%q fail=%q ckpt=%d in %s to gate against; record one with:\n  go run ./cmd/spbench -quick -json %s -workers %d -shards %d -topology %s -placement %s -coord %s%s\n",
			*configName, *workers, *shards, *topology, *placement, *coord, reshardSpec.String(), faults.String(), *ckptInterval, *baseline, *baseline, *workers, *shards, *topology, *placement, *coord, extraArgs)
		os.Exit(2)
	}

	cfg := bench.Default()
	if *configName == "quick" {
		cfg = bench.Quick()
	}
	cfg.Workers = *workers
	cfg.Shards = *shards
	cfg.Reshard = reshardSpec
	cfg.Faults = faults
	cfg.CkptInterval = *ckptInterval
	cfg.Serve = serveOpts
	cfg.CoordOverlap = *coordOverlap
	if topo.NumNodes() > 1 {
		cfg.Topology = topo
		cfg.Placement = policy
		cfg.Coord = coordMode
	}

	var best *bench.HotPathResult
	for i := 0; i < *runs; i++ {
		res, err := bench.HotPath(cfg, *configName)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchgate:", err)
			os.Exit(2)
		}
		if best == nil || res.WallSeconds < best.WallSeconds {
			best = res
		}
	}

	fmt.Printf("benchgate: baseline %s (workers=%d shards=%d): %.2fs wall, %d allocs, %d coord rounds\n",
		base.Timestamp, base.Workers, base.Shards, base.WallSeconds, base.Allocs, base.CoordRounds)
	fmt.Printf("benchgate: measured (best of %d):            %.2fs wall, %d allocs, %d coord rounds\n",
		*runs, best.WallSeconds, best.Allocs, best.CoordRounds)

	failed := false
	if limit := base.WallSeconds * *wallFactor; best.WallSeconds > limit {
		fmt.Printf("benchgate: FAIL wall time %.2fs exceeds %.2fs (baseline x %.2f)\n",
			best.WallSeconds, limit, *wallFactor)
		failed = true
	}
	if limit := float64(base.Allocs) * *allocFactor; float64(best.Allocs) > limit {
		fmt.Printf("benchgate: FAIL allocs %d exceed %.0f (baseline x %.2f)\n",
			best.Allocs, limit, *allocFactor)
		failed = true
	}
	// Coordination rounds are simulated and deterministic: exceeding the
	// baseline means the protocol itself regressed (e.g. batching broke
	// and the coordinator fell back to per-eviction rounds).
	if base.CoordRounds > 0 {
		if limit := float64(base.CoordRounds) * *coordFactor; float64(best.CoordRounds) > limit {
			fmt.Printf("benchgate: FAIL coordination rounds %d exceed %.0f (baseline x %.2f)\n",
				best.CoordRounds, limit, *coordFactor)
			failed = true
		}
	}
	// Modeled migration seconds are equally deterministic: a growth here
	// means the reshard path started shipping more state (or pricing
	// links it used to consider local).
	if base.MigrationSeconds > 0 {
		if limit := base.MigrationSeconds * *coordFactor; best.MigrationSeconds > limit {
			fmt.Printf("benchgate: FAIL migration %.4fs exceeds %.4fs (baseline x %.2f)\n",
				best.MigrationSeconds, limit, *coordFactor)
			failed = true
		}
	}
	// Modeled recovery seconds gate the fault path: evacuation bytes,
	// re-election rounds, and checkpoint-replay billing are all
	// deterministic for a given schedule, so growth means the recovery
	// machinery itself got more expensive.
	if base.RecoverySeconds > 0 {
		if limit := base.RecoverySeconds * *coordFactor; best.RecoverySeconds > limit {
			fmt.Printf("benchgate: FAIL recovery %.4fs exceeds %.4fs (baseline x %.2f)\n",
				best.RecoverySeconds, limit, *coordFactor)
			failed = true
		}
	}
	// Serving entries gate on the simulated throughput/hit-rate/p99,
	// which are deterministic in the seed: falling below the baseline
	// (note the inverted direction — lower is the regression) means the
	// router or the serving cache path itself changed behaviour.
	if base.Serve != "" {
		if floor := base.ServeThroughput / *coordFactor; best.ServeThroughput < floor {
			fmt.Printf("benchgate: FAIL serving throughput %.0f q/s below %.0f (baseline / %.2f)\n",
				best.ServeThroughput, floor, *coordFactor)
			failed = true
		}
		if floor := base.ServeHitRate / *coordFactor; best.ServeHitRate < floor {
			fmt.Printf("benchgate: FAIL serving hit rate %.3f below %.3f (baseline / %.2f)\n",
				best.ServeHitRate, floor, *coordFactor)
			failed = true
		}
		if limit := base.ServeP99Ms * *coordFactor; best.ServeP99Ms > limit {
			fmt.Printf("benchgate: FAIL serving p99 %.3f ms exceeds %.3f ms (baseline x %.2f)\n",
				best.ServeP99Ms, limit, *coordFactor)
			failed = true
		}
	}
	// The batched serving family additionally matches the batcher's
	// counters exactly: batch formation is deterministic in the seed, so
	// a moved launch count or occupancy means the batch scheduler itself
	// changed behaviour — exactly the silent drift this gate exists to
	// catch, since throughput can stay flat while batching degrades.
	if base.Serve != "" && base.ServeBatch != "" {
		if best.ServeBatch != base.ServeBatch {
			fmt.Printf("benchgate: FAIL serve batch spec %q != baseline %q\n",
				best.ServeBatch, base.ServeBatch)
			failed = true
		}
		if best.ServeBatches != base.ServeBatches ||
			best.ServeBatchedQueries != base.ServeBatchedQueries ||
			best.ServeMaxBatch != base.ServeMaxBatch {
			fmt.Printf("benchgate: FAIL batch counters moved: batches %d->%d, batched queries %d->%d, max batch %d->%d (deterministic; gate is exact)\n",
				base.ServeBatches, best.ServeBatches,
				base.ServeBatchedQueries, best.ServeBatchedQueries,
				base.ServeMaxBatch, best.ServeMaxBatch)
			failed = true
		}
	}
	// The fault-injected serving family gates availability and goodput as
	// floors (lower is the regression), and the resilience counters
	// exactly: retry scheduling, hedge arming, and admission shedding are
	// all deterministic in the seed, so any drift means the machinery
	// itself changed behaviour, not noise.
	if base.Serve != "" && (base.ServeFaults != "" || base.ServeResilience != "") {
		if floor := base.ServeAvailability / *coordFactor; best.ServeAvailability < floor {
			fmt.Printf("benchgate: FAIL serving availability %.4f below %.4f (baseline / %.2f)\n",
				best.ServeAvailability, floor, *coordFactor)
			failed = true
		}
		if floor := base.ServeGoodput / *coordFactor; best.ServeGoodput < floor {
			fmt.Printf("benchgate: FAIL serving goodput %.0f q/s below %.0f (baseline / %.2f)\n",
				best.ServeGoodput, floor, *coordFactor)
			failed = true
		}
		if best.ServeRetried != base.ServeRetried ||
			best.ServeHedged != base.ServeHedged ||
			best.ServeShed != base.ServeShed {
			fmt.Printf("benchgate: FAIL resilience counters moved: retried %d->%d, hedged %d->%d, shed %d->%d (deterministic; gate is exact)\n",
				base.ServeRetried, best.ServeRetried,
				base.ServeHedged, best.ServeHedged,
				base.ServeShed, best.ServeShed)
			failed = true
		}
	}
	// The modeled-vs-measured skew: the message plane's makespan must
	// track the serial pricing model within the documented tolerance
	// (DESIGN.md §12 — the plane legitimately undershoots because it
	// executes rounds the model prices serially).
	if best.CoordSeconds > 0 && best.CoordWallSeconds > 0 {
		skew := math.Abs(best.CoordSeconds-best.CoordWallSeconds) / best.CoordSeconds
		if skew > *skewTol {
			fmt.Printf("benchgate: FAIL modeled-vs-measured coordination skew %.3f exceeds %.2f (modeled %.4fs, measured %.4fs)\n",
				skew, *skewTol, best.CoordSeconds, best.CoordWallSeconds)
			failed = true
		}
	}
	// The modeled sweep wall is deterministic for a configuration, so it
	// gates at the coordination threshold like the other simulated
	// quantities.
	if base.SimWallSeconds > 0 {
		if limit := base.SimWallSeconds * *coordFactor; best.SimWallSeconds > limit {
			fmt.Printf("benchgate: FAIL modeled sweep wall %.4fs exceeds %.4fs (baseline x %.2f)\n",
				best.SimWallSeconds, limit, *coordFactor)
			failed = true
		}
	}
	// The overlap family's speculation counters are deterministic:
	// any drift from the baseline means the adoption guards changed
	// behaviour (plans would still be correct — adoptSpec re-validates —
	// but the overlap win silently erodes, which is exactly what this
	// gate exists to catch).
	if *coordOverlap {
		if best.OverlapSpeculated == 0 {
			fmt.Printf("benchgate: FAIL overlap family never speculated\n")
			failed = true
		}
		if !faults.Active() && (best.OverlapAdopted != best.OverlapSpeculated || best.OverlapRolledBack != 0) {
			fmt.Printf("benchgate: FAIL undisturbed overlap family must adopt every speculation (speculated %d, adopted %d, rolled back %d)\n",
				best.OverlapSpeculated, best.OverlapAdopted, best.OverlapRolledBack)
			failed = true
		}
		if best.OverlapSpeculated != base.OverlapSpeculated ||
			best.OverlapAdopted != base.OverlapAdopted ||
			best.OverlapRolledBack != base.OverlapRolledBack {
			fmt.Printf("benchgate: FAIL speculation counters moved: speculated %d->%d, adopted %d->%d, rolled back %d->%d (deterministic; gate is exact)\n",
				base.OverlapSpeculated, best.OverlapSpeculated,
				base.OverlapAdopted, best.OverlapAdopted,
				base.OverlapRolledBack, best.OverlapRolledBack)
			failed = true
		}
		// The win itself: the overlapped sweep's modeled wall must sit
		// strictly below the matching non-overlap twin entry's.
		twin := pickBaseline(hist.History, *configName, *workers, *shards, topoName, string(policy), string(coordMode), false, reshardSpec.String(), faults.String(), *ckptInterval, serveRouter, serveArrival, serveReplicas, serveFaultsStr, serveResilience, serveBatchStr)
		switch {
		case twin == nil || twin.SimWallSeconds <= 0:
			fmt.Fprintf(os.Stderr, "benchgate: no non-overlap twin entry in %s to verify the overlap win against; record one with the same shape minus -coord-overlap\n", *baseline)
			os.Exit(2)
		case best.SimWallSeconds >= twin.SimWallSeconds:
			fmt.Printf("benchgate: FAIL overlap did not beat the non-overlap twin: sim wall %.6fs vs twin %.6fs\n",
				best.SimWallSeconds, twin.SimWallSeconds)
			failed = true
		default:
			fmt.Printf("benchgate: overlap win %.4fs -> %.4fs modeled sweep wall (-%.2f%% vs non-overlap twin)\n",
				twin.SimWallSeconds, best.SimWallSeconds,
				100*(1-best.SimWallSeconds/twin.SimWallSeconds))
		}
	}
	if failed {
		printDelta(base, best)
		os.Exit(1)
	}
	coordNote := ""
	if base.CoordRounds > 0 {
		coordNote = fmt.Sprintf(", coord rounds %.2fx", float64(best.CoordRounds)/float64(base.CoordRounds))
	}
	fmt.Printf("benchgate: PASS (wall %.2fx, allocs %.2fx of baseline%s)\n",
		best.WallSeconds/base.WallSeconds, float64(best.Allocs)/float64(base.Allocs), coordNote)
}

// pickBaseline returns the most recent entry matching the configuration
// label AND the measurement's workers/shards/topology/placement/coord
// shape (shards 0 and 1 both mean unsharded; topology ""/"single",
// placement ""/"stripe", and coord ""/"exact" are the defaults). A
// shape mismatch returns nil rather than silently gating against an
// entry measured under a different fan-out — e.g. the committed S=8
// shard-scaling record is ~50% slower and 4x more allocation-heavy than
// the S=1 baseline, and comparing against it would mask real
// regressions; the placement-family entries additionally pay
// coordination metering the co-located sweep never executes, and the
// batched/hier/approx protocol entries send a fraction of the exact
// protocol's rounds.
func pickBaseline(hist []bench.HotPathResult, config string, workers, shards int, topology, placement, coord string, coordOverlap bool, reshard, faults string, ckptInterval int, serveRouter, serveArrival string, serveReplicas int, serveFaults, serveResilience, serveBatch string) *bench.HotPathResult {
	norm := func(s int) int {
		if s <= 1 {
			return 1
		}
		return s
	}
	normTopo := func(s string) string {
		if s == "single" {
			return ""
		}
		return s
	}
	normPlace := func(s string) string {
		if s == "stripe" {
			return ""
		}
		return s
	}
	normCoord := func(s string) string {
		if s == "exact" {
			return ""
		}
		return s
	}
	var exact *bench.HotPathResult
	for i := range hist {
		e := &hist[i]
		// The protocol must match even co-located (it changes the sweep
		// machinery's allocation shape, and approx changes behaviour);
		// placement is meaningless without a topology and is compared
		// only when one is set.
		if e.Config == config && e.Workers == workers && norm(e.Shards) == norm(shards) &&
			normCoord(e.CoordMode) == normCoord(coord) &&
			e.CoordOverlap == coordOverlap && e.Reshard == reshard &&
			e.Faults == faults && e.CkptInterval == ckptInterval &&
			e.Serve == serveRouter && e.ServeArrival == serveArrival &&
			e.ServeReplicas == serveReplicas &&
			e.ServeFaults == serveFaults && e.ServeResilience == serveResilience &&
			e.ServeBatch == serveBatch &&
			normTopo(e.Topology) == normTopo(topology) &&
			(normTopo(e.Topology) == "" || normPlace(e.Placement) == normPlace(placement)) {
			exact = e
		}
	}
	return exact
}

// printDelta dumps the failing family's full baseline-vs-measured table
// so one CI failure shows every metric's movement, not just the first
// offending gate. Rows where both sides are zero (fields the family
// never recorded) are omitted.
func printDelta(base, best *bench.HotPathResult) {
	type row struct {
		name    string
		b, m    float64
		integer bool
	}
	rows := []row{
		{"wall_seconds", base.WallSeconds, best.WallSeconds, false},
		{"allocs", float64(base.Allocs), float64(best.Allocs), true},
		{"alloc_bytes", float64(base.AllocBytes), float64(best.AllocBytes), true},
		{"scratchpipe_speedup_avg", base.ScratchPipeSpeedupAvg, best.ScratchPipeSpeedupAvg, false},
		{"coord_rounds", float64(base.CoordRounds), float64(best.CoordRounds), true},
		{"coord_seconds", base.CoordSeconds, best.CoordSeconds, false},
		{"coord_wall_seconds", base.CoordWallSeconds, best.CoordWallSeconds, false},
		{"sim_wall_seconds", base.SimWallSeconds, best.SimWallSeconds, false},
		{"overlap_speculated", float64(base.OverlapSpeculated), float64(best.OverlapSpeculated), true},
		{"overlap_adopted", float64(base.OverlapAdopted), float64(best.OverlapAdopted), true},
		{"overlap_rolled_back", float64(base.OverlapRolledBack), float64(best.OverlapRolledBack), true},
		{"migration_seconds", base.MigrationSeconds, best.MigrationSeconds, false},
		{"downtime_seconds", base.DowntimeSeconds, best.DowntimeSeconds, false},
		{"recovery_seconds", base.RecoverySeconds, best.RecoverySeconds, false},
		{"serve_throughput", base.ServeThroughput, best.ServeThroughput, false},
		{"serve_hit_rate", base.ServeHitRate, best.ServeHitRate, false},
		{"serve_p99_ms", base.ServeP99Ms, best.ServeP99Ms, false},
		{"serve_drops", float64(base.ServeDrops), float64(best.ServeDrops), true},
		{"serve_availability", base.ServeAvailability, best.ServeAvailability, false},
		{"serve_goodput", base.ServeGoodput, best.ServeGoodput, false},
		{"serve_retried", float64(base.ServeRetried), float64(best.ServeRetried), true},
		{"serve_hedged", float64(base.ServeHedged), float64(best.ServeHedged), true},
		{"serve_shed", float64(base.ServeShed), float64(best.ServeShed), true},
		{"serve_timed_out", float64(base.ServeTimedOut), float64(best.ServeTimedOut), true},
		{"serve_batches", float64(base.ServeBatches), float64(best.ServeBatches), true},
		{"serve_batched_queries", float64(base.ServeBatchedQueries), float64(best.ServeBatchedQueries), true},
		{"serve_max_batch", float64(base.ServeMaxBatch), float64(best.ServeMaxBatch), true},
	}
	fmt.Printf("benchgate: full family delta (baseline %s):\n", base.Timestamp)
	fmt.Printf("  %-24s %16s %16s %10s\n", "metric", "baseline", "measured", "ratio")
	for _, r := range rows {
		if r.b == 0 && r.m == 0 {
			continue
		}
		format := func(v float64) string {
			if r.integer {
				return fmt.Sprintf("%d", int64(v))
			}
			return fmt.Sprintf("%.6g", v)
		}
		ratio := "-"
		if r.b != 0 {
			ratio = fmt.Sprintf("%.3fx", r.m/r.b)
		}
		fmt.Printf("  %-24s %16s %16s %10s\n", r.name, format(r.b), format(r.m), ratio)
	}
}
