// Command spbench regenerates the paper's evaluation tables and figures.
//
// Usage:
//
//	spbench [-experiment all|fig3|fig5|fig6|fig6classes|fig12a|fig12b|
//	         fig13|fig14|fig15a|fig15b|tablei|overhead|sensitivity|ablation|
//	         serving]
//	        [-iters N] [-quick] [-seed S] [-workers N] [-shards S]
//	        [-topology T] [-placement P] [-coord M] [-coord-overlap]
//	        [-reshard SPEC] [-fail PLAN] [-ckpt-interval N]
//	        [-serve] [-replicas R] [-router P] [-arrival SPEC]
//	        [-serve-fail PLAN] [-deadline MS] [-retry SPEC] [-hedge MS]
//	        [-admission SPEC]
//	spbench -json BENCH_hotpath.json [-quick] [-workers N] [-shards S]
//	        [-topology T] [-placement P] [-coord M] [-coord-overlap]
//	        [-reshard SPEC] [-fail PLAN] [-ckpt-interval N] [-note TEXT]
//	        [-serve] [-replicas R] [-router P] [-arrival SPEC]
//	        [-serve-fail PLAN] [-deadline MS] [-retry SPEC] [-hedge MS]
//	        [-admission SPEC]
//
// With -quick the paper-scale tables (10M rows) shrink 50x, which changes
// absolute hit rates slightly but preserves every qualitative shape; use it
// for smoke runs. -workers bounds the simulator's per-table parallelism
// (0 = GOMAXPROCS); -shards partitions each table's scratchpad control
// plane across socket shards (internal/shard); simulated results are
// identical at any worker and shard count.
//
// -topology places the shards on a platform graph ("single", "numa2",
// "pcie4", "cluster2x2", ...) and -placement picks the shard-to-node
// policy (stripe|range|loadaware): the cross-shard coordinator's traffic
// is then priced on the links the placement crosses. The default single
// topology co-locates everything at zero cost, so every table stays
// bit-identical to the unplaced tree. -coord selects the coordination
// protocol (exact|batched|hier|approx): exact, batched, and hier
// produce identical tables (batching only cuts coordination rounds);
// approx trades measured eviction divergence for zero stamp-sync
// traffic. -coord-overlap overlaps each ScratchPipe run's distributed
// coordination with the pipeline (speculative candidate resolution with
// rollback-and-replay; DESIGN.md §12): plans and cache statistics stay
// bit-identical, only the critical coordination share charged to the
// Plan stage — and with it the modeled wall — shrinks. With -json the
// entry additionally records coord_wall_seconds (the measured message-
// plane makespan) and the overlap_* speculation counters.
//
// -reshard schedules elastic shard-count transitions mid-run for the
// dynamic-cache engines ("200:4,500:8" = step to 4 shards at iteration
// 200 and 8 at 500; "load:8" grows toward 8 shards on observed
// query-mass skew): live scratchpad state migrates between Plans with
// the moved bytes priced on -topology's links. Plans and cache
// statistics are preserved exactly (a same-S schedule leaves every
// table bit-identical); timing columns can shift once the new shard
// count pays cross-node coordination, exactly as a static -shards
// change would.
//
// -fail injects a deterministic fault schedule into every data point's
// dynamic-cache runs ("host1@5" kills host 1 before iteration 5;
// link/degrade/agg events follow the same grammar): dead hosts'
// shards evacuate to survivors, partitions degrade coordination to
// approx until heal, and the reports price the outage into
// Downtime/RecoveryTime/Availability. -ckpt-interval prices a periodic
// scratchpad checkpoint flush every N iterations; with -fail, host
// deaths then restore at-risk residency from the last flush instead of
// repricing it as cold misses. The empty plan changes nothing.
//
// -serve configures the online serving simulation (internal/serve):
// -replicas scratchpad-holding workers answer an open-loop query stream
// (-arrival) behind the -router policy. The serving experiment sweeps
// the full routing frontier; with -json the measurement records the
// serving family's deterministic throughput/hit-rate/p99 instead of the
// training sweep. -serve-fail injects replica/host kills into the
// serving run ("replica1@0.4" kills replica 1 at t=0.4s; "host1@1"
// takes down every replica placed on host 1), and -deadline/-retry/
// -hedge/-admission configure the client and admission resilience
// policies; the -json entry then also records availability, goodput,
// and the retried/hedged/shed/timed-out counters.
//
// With -json the command runs the hot-path benchmark (one Figure 13
// sweep) instead of printing tables, appends the wall-clock and allocator
// measurements to the given JSON history file, and prints the new entry —
// the mechanism future PRs use to track the simulator's perf trajectory.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
	"repro/internal/engine"
	"repro/internal/hw"
	"repro/internal/serve"
	"repro/internal/shard"
)

var experiments = map[string]func(bench.Config) (*bench.Table, error){
	"fig3":        bench.Figure3,
	"fig5":        bench.Figure5,
	"fig6":        bench.Figure6,
	"fig6classes": bench.Figure6Classes,
	"fig12a":      bench.Figure12a,
	"fig12b":      bench.Figure12b,
	"fig13":       bench.Figure13,
	"fig14":       bench.Figure14,
	"fig15a":      bench.Figure15a,
	"fig15b":      bench.Figure15b,
	"tablei":      bench.TableI,
	"overhead":    bench.OverheadStudy,
	"sensitivity": bench.SensitivityExtra,
	"ablation":    bench.AblationWindows,
	"serving":     bench.ServingFrontier,
}

func main() {
	exp := flag.String("experiment", "all", "experiment to run (all or one of fig3..ablation)")
	iters := flag.Int("iters", 0, "measured iterations per data point (0 = default)")
	quick := flag.Bool("quick", false, "use the 50x scaled-down configuration")
	seed := flag.Int64("seed", 42, "random seed")
	workers := flag.Int("workers", 0, "per-table fan-out parallelism (0 = GOMAXPROCS, 1 = serial)")
	shards := flag.Int("shards", 1, "scratchpad shards per table (1 = unsharded; results identical at any count; non-LRU policy studies always run unsharded)")
	topology := flag.String("topology", "single", "shard placement topology ("+hw.TopologyNames+")")
	placement := flag.String("placement", "stripe", "shard placement policy (stripe|range|loadaware)")
	coord := flag.String("coord", "exact", "cross-shard coordination protocol ("+shard.CoordModeNames+")")
	coordOverlap := flag.Bool("coord-overlap", false, "overlap ScratchPipe's distributed coordination with the pipeline (bit-identical plans; shrinks the Plan-stage coordination share)")
	reshard := flag.String("reshard", "", "elastic reshard schedule (e.g. 200:4,500:8 or load:8; empty = fixed sharding)")
	failPlan := flag.String("fail", "", "fault schedule for the dynamic-cache engines ("+hw.FaultGrammar+"; empty = no faults)")
	ckptInterval := flag.Int("ckpt-interval", 0, "priced scratchpad checkpoint flush every N iterations (0 = disabled)")
	serveMode := flag.Bool("serve", false, "configure the online serving simulation (the serving experiment and the -json serving family)")
	replicas := flag.Int("replicas", 4, "serving replica workers (with -serve)")
	router := flag.String("router", "hitaware", "serving router policy: "+serve.PolicyNames+" (with -serve)")
	arrival := flag.String("arrival", "", "serving arrival process: "+serve.ArrivalGrammar+" (with -serve; empty = poisson default)")
	serveFail := flag.String("serve-fail", "", "serving fault schedule ("+serve.ServeFaultGrammar+"; with -serve; empty = no faults)")
	deadline := flag.Float64("deadline", 0, "per-query serving deadline in ms (with -serve; 0 = none)")
	retry := flag.String("retry", "", "serving client retry policy ("+serve.RetryGrammar+"; with -serve; empty = no retries)")
	hedge := flag.Float64("hedge", 0, "serving hedged-request delay in ms (with -serve; 0 = no hedging)")
	admission := flag.String("admission", "", "serving admission control ("+serve.AdmissionGrammar+"; with -serve; empty = admit all)")
	serveBatch := flag.String("serve-batch", "", "replica-side request batching ("+serve.BatchGrammar+"; with -serve; empty or 1 = no batching)")
	jsonPath := flag.String("json", "", "run the hot-path benchmark and append the measurement to this JSON history file")
	note := flag.String("note", "", "free-form note recorded with the -json measurement")
	flag.Parse()

	// Validate the knobs here, with one-line errors, rather than deep in
	// the engine.
	if *shards < 1 {
		fmt.Fprintf(os.Stderr, "spbench: -shards %d: shard count must be >= 1\n", *shards)
		os.Exit(2)
	}
	topo, err := hw.ParseTopology(*topology)
	if err != nil {
		fmt.Fprintf(os.Stderr, "spbench: -topology %q: want %s\n", *topology, hw.TopologyNames)
		os.Exit(2)
	}
	policy, err := hw.ParsePlacementPolicy(*placement)
	if err != nil {
		fmt.Fprintf(os.Stderr, "spbench: -placement %q: want stripe, range, or loadaware\n", *placement)
		os.Exit(2)
	}
	coordMode, err := shard.ParseCoordMode(*coord)
	if err != nil {
		fmt.Fprintf(os.Stderr, "spbench: -coord %q: want %s\n", *coord, shard.CoordModeNames)
		os.Exit(2)
	}
	reshardSpec, err := engine.ParseReshardSpec(*reshard)
	if err != nil {
		fmt.Fprintf(os.Stderr, "spbench: -reshard %q: %v\n", *reshard, err)
		os.Exit(2)
	}
	faults, err := hw.ParseFaultPlan(*failPlan)
	if err != nil {
		fmt.Fprintf(os.Stderr, "spbench: -fail %q: %v\n", *failPlan, err)
		os.Exit(2)
	}
	if *ckptInterval < 0 {
		fmt.Fprintf(os.Stderr, "spbench: -ckpt-interval %d: interval must be >= 0\n", *ckptInterval)
		os.Exit(2)
	}
	if faults.Active() {
		if topo.NumNodes() <= 1 {
			fmt.Fprintf(os.Stderr, "spbench: -fail needs a multi-host -topology (cluster<H>x<S>), got %q\n", *topology)
			os.Exit(2)
		}
		if err := faults.Validate(topo); err != nil {
			fmt.Fprintf(os.Stderr, "spbench: -fail %q: %v\n", *failPlan, err)
			os.Exit(2)
		}
	}
	routerPolicy, err := serve.ParsePolicy(*router)
	if err != nil {
		fmt.Fprintf(os.Stderr, "spbench: -router %q: want %s\n", *router, serve.PolicyNames)
		os.Exit(2)
	}
	arrivalSpec, err := serve.ParseArrival(*arrival)
	if err != nil {
		fmt.Fprintf(os.Stderr, "spbench: -arrival %q: want %s\n", *arrival, serve.ArrivalGrammar)
		os.Exit(2)
	}
	if *serveMode && *replicas < 1 {
		fmt.Fprintf(os.Stderr, "spbench: -replicas %d: serving needs at least one replica\n", *replicas)
		os.Exit(2)
	}
	serveFaults, err := hw.ParseFaultPlan(*serveFail)
	if err != nil {
		fmt.Fprintf(os.Stderr, "spbench: -serve-fail %q: %v\n", *serveFail, err)
		os.Exit(2)
	}
	retrySpec, err := serve.ParseRetry(*retry)
	if err != nil {
		fmt.Fprintf(os.Stderr, "spbench: -retry %q: %v\n", *retry, err)
		os.Exit(2)
	}
	admissionSpec, err := serve.ParseAdmission(*admission)
	if err != nil {
		fmt.Fprintf(os.Stderr, "spbench: -admission %q: %v\n", *admission, err)
		os.Exit(2)
	}
	batchSpec, err := serve.ParseBatch(*serveBatch)
	if err != nil {
		fmt.Fprintf(os.Stderr, "spbench: -serve-batch %q: %v\n", *serveBatch, err)
		os.Exit(2)
	}
	if *deadline < 0 || *hedge < 0 {
		fmt.Fprintf(os.Stderr, "spbench: -deadline/-hedge must be >= 0 ms\n")
		os.Exit(2)
	}
	if !*serveMode && (serveFaults.Active() || retrySpec.Active() || admissionSpec.Active() || *deadline > 0 || *hedge > 0 || batchSpec.Enabled()) {
		fmt.Fprintf(os.Stderr, "spbench: -serve-fail/-deadline/-retry/-hedge/-admission/-serve-batch only apply with -serve\n")
		os.Exit(2)
	}
	if *serveMode {
		serveTopo := topo
		if topo.NumNodes() <= 1 {
			serveTopo = nil
		}
		if err := serveFaults.ValidateServe(*replicas, serveTopo); err != nil {
			fmt.Fprintf(os.Stderr, "spbench: -serve-fail %q: %v\n", *serveFail, err)
			os.Exit(2)
		}
	}

	cfg := bench.Default()
	configName := "full"
	if *quick {
		cfg = bench.Quick()
		configName = "quick"
	}
	if *iters > 0 {
		cfg.Iters = *iters
	}
	cfg.Seed = *seed
	cfg.Workers = *workers
	cfg.Shards = *shards
	// The coordination protocol applies even co-located (batched/hier
	// exercise the candidate-batch machinery at zero modeled cost, which
	// is how their figures are diff-verified bit-identical to exact;
	// approx changes eviction order regardless of placement).
	cfg.Coord = coordMode
	cfg.CoordOverlap = *coordOverlap
	cfg.Reshard = reshardSpec
	cfg.Faults = faults
	cfg.CkptInterval = *ckptInterval
	if topo.NumNodes() > 1 {
		cfg.Topology = topo
		cfg.Placement = policy
	}
	if *serveMode {
		cfg.Serve = serve.Options{
			Replicas:  *replicas,
			Router:    routerPolicy,
			Arrival:   arrivalSpec,
			Faults:    serveFaults,
			Deadline:  *deadline * 1e-3,
			Retry:     retrySpec,
			Hedge:     *hedge * 1e-3,
			Admission: admissionSpec,
			Batch:     batchSpec,
		}
	}

	if *jsonPath != "" {
		res, err := bench.HotPath(cfg, configName)
		if err != nil {
			fmt.Fprintln(os.Stderr, "spbench:", err)
			os.Exit(1)
		}
		res.Note = *note
		if _, err := bench.AppendHotPath(*jsonPath, res); err != nil {
			fmt.Fprintln(os.Stderr, "spbench:", err)
			os.Exit(1)
		}
		if res.Serve != "" {
			batchInfo := ""
			if res.ServeBatch != "" {
				batchInfo = fmt.Sprintf(", batch cap %s: %d batches (max %d)",
					res.ServeBatch, res.ServeBatches, res.ServeMaxBatch)
			}
			resil := ""
			if res.ServeFaults != "" || res.ServeResilience != "" {
				resil = fmt.Sprintf(", faults %q + %q: availability %.4f, goodput %.0f q/s, %d retried, %d hedged, %d shed, %d timed out",
					res.ServeFaults, res.ServeResilience, res.ServeAvailability, res.ServeGoodput,
					res.ServeRetried, res.ServeHedged, res.ServeShed, res.ServeTimedOut)
			}
			fmt.Printf("hotpath serving (%s, %s router, %d replicas, arrival %s): %.2fs wall, %.0f q/s, %.1f%% hit rate, p99 %.3f ms, %d drops%s%s -> %s\n",
				configName, res.Serve, res.ServeReplicas, res.ServeArrival,
				res.WallSeconds, res.ServeThroughput, res.ServeHitRate*100, res.ServeP99Ms, res.ServeDrops, batchInfo, resil, *jsonPath)
			return
		}
		shape := ""
		if res.Topology != "" {
			shape = fmt.Sprintf(", topology=%s, placement=%s, coord=%s", res.Topology, res.Placement, coordMode)
		}
		coordLine := ""
		if res.CoordRounds > 0 {
			coordLine = fmt.Sprintf(", %d coord rounds (%.1f ms modeled, %.1f ms measured)",
				res.CoordRounds, res.CoordSeconds*1e3, res.CoordWallSeconds*1e3)
		}
		if res.CoordOverlap {
			coordLine += fmt.Sprintf(", overlap %d/%d adopted (%d rolled back, sim wall %.1f ms)",
				res.OverlapAdopted, res.OverlapSpeculated, res.OverlapRolledBack, res.SimWallSeconds*1e3)
		}
		if res.Reshard != "" {
			coordLine += fmt.Sprintf(", reshard %s (%.1f ms migration)", res.Reshard, res.MigrationSeconds*1e3)
		}
		if res.Faults != "" {
			coordLine += fmt.Sprintf(", faults %s (%.1f ms down, %.1f ms recovery)", res.Faults, res.DowntimeSeconds*1e3, res.RecoverySeconds*1e3)
		}
		fmt.Printf("hotpath (%s, workers=%d, shards=%d%s): %.2fs wall, %d allocs, %.1f MB allocated, sp-vs-static avg %.2fx%s -> %s\n",
			configName, res.Workers, res.Shards, shape, res.WallSeconds, res.Allocs, float64(res.AllocBytes)/1e6,
			res.ScratchPipeSpeedupAvg, coordLine, *jsonPath)
		return
	}

	if *exp == "all" {
		tables, err := bench.AllExperiments(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "spbench:", err)
			os.Exit(1)
		}
		for _, t := range tables {
			fmt.Println(t)
		}
		return
	}
	run, ok := experiments[*exp]
	if !ok {
		fmt.Fprintf(os.Stderr, "spbench: unknown experiment %q\n", *exp)
		os.Exit(2)
	}
	t, err := run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "spbench:", err)
		os.Exit(1)
	}
	fmt.Println(t)
}
