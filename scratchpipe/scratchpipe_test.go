package scratchpipe

import (
	"testing"
)

func smallModel() ModelConfig {
	m := DefaultModel()
	m.RowsPerTable = 2000
	m.BatchSize = 16
	m.Lookups = 4
	m.EmbeddingDim = 8
	m.NumTables = 2
	m.BottomHidden = []int{8}
	m.TopHidden = []int{16}
	return m
}

func TestNewTrainerDefaults(t *testing.T) {
	tr, err := NewTrainer(Config{Model: smallModel()})
	if err != nil {
		t.Fatal(err)
	}
	cfg := tr.Config()
	if cfg.Engine != KindScratchPipe || cfg.CacheFrac != 0.02 || cfg.Policy != LRU {
		t.Fatalf("defaults not applied: %+v", cfg)
	}
	if tr.Engine() != "scratchpipe" {
		t.Fatalf("engine = %s", tr.Engine())
	}
}

func TestAllKindsTrain(t *testing.T) {
	for _, kind := range Kinds {
		tr, err := NewTrainer(Config{
			Engine:     kind,
			Model:      smallModel(),
			Class:      Medium,
			CacheFrac:  0.05,
			Functional: true,
			Seed:       3,
		})
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		rep, err := tr.Train(10)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if rep.Iters != 10 || rep.IterTime <= 0 {
			t.Fatalf("%s: report %+v", kind, rep)
		}
		if err := tr.Flush(); err != nil {
			t.Fatalf("%s flush: %v", kind, err)
		}
	}
}

func TestUnknownKindRejected(t *testing.T) {
	if _, err := NewTrainer(Config{Engine: "bogus", Model: smallModel()}); err == nil {
		t.Fatal("unknown engine accepted")
	}
}

func TestIterationEnergyPositive(t *testing.T) {
	tr, err := NewTrainer(Config{Model: smallModel(), Class: High})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := tr.Train(8)
	if err != nil {
		t.Fatal(err)
	}
	if e := IterationEnergy(rep, DefaultSystem(), KindScratchPipe); e <= 0 {
		t.Fatalf("energy = %v", e)
	}
	if e := IterationEnergy(rep, DefaultSystem(), KindMultiGPU); e <= 0 {
		t.Fatalf("multi-gpu energy = %v", e)
	}
}

func TestTraceUtilities(t *testing.T) {
	for _, name := range DatasetNames {
		ds, err := NewDataset(name, 10000)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(ds.Tables) == 0 {
			t.Fatalf("%s: no tables", name)
		}
		curve := HitRateCurve(ds.Tables[0].Dist, []float64{0.02, 0.5, 1})
		if curve[2] != 1 || curve[0] > curve[1] {
			t.Fatalf("%s: curve %v", name, curve)
		}
	}
	d, err := ClassDistribution(High, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if StaticHitRate(d, 0.02) < 0.8 {
		t.Fatalf("High top-2%% = %v", StaticHitRate(d, 0.02))
	}
	if _, err := ParseClass("High"); err != nil {
		t.Fatal(err)
	}
	if len(PipelineStages()) != 6 {
		t.Fatalf("stages = %v", PipelineStages())
	}
}

func TestParallelFunctionalEquivalenceViaFacade(t *testing.T) {
	runOnce := func(parallel bool) *Report {
		tr, err := NewTrainer(Config{
			Model:      smallModel(),
			Class:      Low,
			CacheFrac:  0.05,
			Parallel:   parallel,
			Functional: true,
			Seed:       9,
		})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := tr.Train(12)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	seq := runOnce(false)
	par := runOnce(true)
	if seq.AvgLoss != par.AvgLoss {
		t.Fatalf("parallel pipeline changed training: %v vs %v", seq.AvgLoss, par.AvgLoss)
	}
}

// TestTopologyPlacementViaFacade: the public Config's topology/placement
// knobs price coordination without touching cache behaviour or training
// results, and reject unknown placement policies.
func TestTopologyPlacementViaFacade(t *testing.T) {
	topo, err := ParseTopology("cluster2x2")
	if err != nil {
		t.Fatal(err)
	}
	base, err := NewTrainer(Config{Model: smallModel(), Class: Medium, Shards: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	placed, err := NewTrainer(Config{Model: smallModel(), Class: Medium, Shards: 4, Seed: 3,
		Topology: topo, Placement: PlaceLoadAware})
	if err != nil {
		t.Fatal(err)
	}
	repBase, err := base.Train(12)
	if err != nil {
		t.Fatal(err)
	}
	repPlaced, err := placed.Train(12)
	if err != nil {
		t.Fatal(err)
	}
	if repBase.CoordTime != 0 {
		t.Fatalf("unplaced CoordTime %g", repBase.CoordTime)
	}
	if repPlaced.CoordTime <= 0 {
		t.Fatal("placed run reports no coordination latency")
	}
	if repBase.Hits != repPlaced.Hits || repBase.Misses != repPlaced.Misses ||
		repBase.Evictions != repPlaced.Evictions {
		t.Fatalf("placement changed cache behaviour: %+v vs %+v", repBase, repPlaced)
	}
	if repBase.AvgLoss != repPlaced.AvgLoss {
		t.Fatalf("placement changed training: loss %v vs %v", repBase.AvgLoss, repPlaced.AvgLoss)
	}
	if _, err := NewTrainer(Config{Model: smallModel(), Placement: "bogus"}); err == nil {
		t.Fatal("unknown placement policy accepted by the facade")
	}
}

// TestReshardViaFacade: an elastic schedule threaded through the public
// Config must reshard mid-run, price the migration on the topology, and
// leave training results and cache statistics untouched.
func TestReshardViaFacade(t *testing.T) {
	spec, err := ParseReshardSpec("6:4,12:2")
	if err != nil {
		t.Fatal(err)
	}
	topo, err := ParseTopology("cluster2x2")
	if err != nil {
		t.Fatal(err)
	}
	base, err := NewTrainer(Config{Model: smallModel(), Class: Medium, Seed: 3, Functional: true})
	if err != nil {
		t.Fatal(err)
	}
	elastic, err := NewTrainer(Config{Model: smallModel(), Class: Medium, Seed: 3, Functional: true,
		Topology: topo, Reshard: spec})
	if err != nil {
		t.Fatal(err)
	}
	repBase, err := base.Train(20)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := elastic.Train(20)
	if err != nil {
		t.Fatal(err)
	}
	if rep.FinalShards != 2 || rep.Resharding.Events == 0 {
		t.Fatalf("schedule did not execute: final shards %d, %+v", rep.FinalShards, rep.Resharding)
	}
	if rep.MigrationTime <= 0 {
		t.Fatal("cross-node migration not priced via the facade")
	}
	if rep.Hits != repBase.Hits || rep.Misses != repBase.Misses || rep.Evictions != repBase.Evictions {
		t.Fatalf("resharding changed cache behaviour: %+v vs %+v", repBase, rep)
	}
	if rep.AvgLoss != repBase.AvgLoss {
		t.Fatalf("resharding changed training: loss %v vs %v", repBase.AvgLoss, rep.AvgLoss)
	}
	if _, err := ParseReshardSpec("bogus"); err == nil {
		t.Fatal("bogus reshard spec accepted")
	}
}
