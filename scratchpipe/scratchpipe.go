// Package scratchpipe is the public entry point of the ScratchPipe
// reproduction: a single facade over the training engines, trace
// generators, hardware model, and experiment harness in internal/.
//
// Quick start:
//
//	cfg := scratchpipe.Config{Class: scratchpipe.High, Functional: true}
//	tr, err := scratchpipe.NewTrainer(cfg)
//	...
//	rep, err := tr.Train(100)
//	fmt.Println(rep.IterTime, rep.AvgLoss)
//
// The five engine kinds mirror the paper's evaluation: the hybrid CPU-GPU
// baseline (Figure 4a), the static-cache baseline (Figure 4b), the
// unpipelined straw-man (§IV-B), pipelined ScratchPipe itself (§IV-C), and
// the 8-GPU model-parallel comparison system (§VI-F).
package scratchpipe

import (
	"fmt"
	"io"

	"repro/internal/cache"
	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/dlrm"
	"repro/internal/energy"
	"repro/internal/engine"
	"repro/internal/hw"
	"repro/internal/opt"
	"repro/internal/serve"
	"repro/internal/shard"
	"repro/internal/trace"
)

// Kind selects a training engine.
type Kind string

// The five training-system design points.
const (
	KindHybrid      Kind = "hybrid"
	KindStatic      Kind = "static"
	KindStrawMan    Kind = "strawman"
	KindScratchPipe Kind = "scratchpipe"
	KindMultiGPU    Kind = "multigpu"
)

// Kinds lists every engine kind in the paper's presentation order.
var Kinds = []Kind{KindHybrid, KindStatic, KindStrawMan, KindScratchPipe, KindMultiGPU}

// Locality classes, re-exported for callers.
type Class = trace.Class

// The four locality classes of the paper's synthetic traces.
const (
	Random = trace.Random
	Low    = trace.Low
	Medium = trace.Medium
	High   = trace.High
)

// Classes lists all locality classes.
var Classes = trace.Classes

// ParseClass converts "Random"/"Low"/"Medium"/"High" to a Class.
func ParseClass(s string) (Class, error) { return trace.ParseClass(s) }

// ModelConfig is the DLRM architecture configuration.
type ModelConfig = dlrm.Config

// DefaultModel returns the paper's §V default model: 8 tables x 10M rows x
// 128-dim embeddings (40 GB), 20 lookups, batch 2048, MLPerf-DLRM MLPs.
func DefaultModel() ModelConfig { return dlrm.DefaultConfig() }

// SystemConfig is the hardware platform model.
type SystemConfig = hw.System

// DefaultSystem returns the paper's evaluation platform (Xeon E5-2698v4 +
// V100 over PCIe gen3).
func DefaultSystem() SystemConfig { return hw.DefaultSystem() }

// Topology is the general platform graph (nodes + tiered link matrix)
// scratchpad shards are placed on.
type Topology = hw.Topology

// ParseTopology resolves a topology name: "single", "numa<N>",
// "pcie<N>", "nvlink<N>", or "cluster<H>x<S>".
func ParseTopology(name string) (*Topology, error) { return hw.ParseTopology(name) }

// PlacementPolicy selects how shards spread across topology nodes.
type PlacementPolicy = hw.PlacementPolicy

// Shard placement policies.
const (
	PlaceStripe    = hw.PlaceStripe
	PlaceRange     = hw.PlaceRange
	PlaceLoadAware = hw.PlaceLoadAware
)

// ParsePlacementPolicy resolves a placement policy name ("" = stripe).
func ParsePlacementPolicy(s string) (PlacementPolicy, error) { return hw.ParsePlacementPolicy(s) }

// CoordMode selects the cross-shard coordination protocol (see
// internal/shard): how the eviction-budget coordinator talks once
// shards are placed on different topology nodes.
type CoordMode = shard.CoordMode

// Coordination protocols, in traffic-escalation order: exact pays one
// round per eviction event; batched gathers each shard's candidates in
// one round per Plan; hier adds a per-host aggregation tier so hosts
// exchange only host-level winners; approx quantizes recency epochs and
// sends no stamp-sync traffic at all, reporting its measured divergence
// from exact in Report.CoordDivergence.
const (
	CoordExact   = shard.CoordExact
	CoordBatched = shard.CoordBatched
	CoordHier    = shard.CoordHier
	CoordApprox  = shard.CoordApprox
)

// ParseCoordMode resolves a coordination protocol name ("" = exact).
func ParseCoordMode(s string) (CoordMode, error) { return shard.ParseCoordMode(s) }

// CoordStats aggregates cross-node coordination traffic (see
// shard.CoordStats for field docs); Report.Coord carries the run's
// totals.
type CoordStats = shard.CoordStats

// CoordDivergence measures approx-mode eviction divergence against an
// exact shadow planner (see shard.Divergence).
type CoordDivergence = shard.Divergence

// OverlapStats counts speculative-coordination outcomes under
// Config.CoordOverlap (see shard.OverlapStats); Report.Overlap carries
// the run's totals.
type OverlapStats = shard.OverlapStats

// ReshardSpec schedules run-time shard-count transitions (elastic
// resharding with live state migration; see engine.ReshardSpec and
// DESIGN.md §9): static "iter:shards" steps and/or a load-triggered
// growth policy reacting to observed query-mass skew.
type ReshardSpec = engine.ReshardSpec

// ReshardStep is one static reshard schedule entry.
type ReshardStep = engine.ReshardStep

// ReshardStats totals a run's reshard events, migrated state entries,
// and modeled migration cost (see shard.ReshardStats); Report.Resharding
// carries the run's totals and Report.MigrationTime their latency.
type ReshardStats = shard.ReshardStats

// ParseReshardSpec parses the -reshard flag grammar: "" (none),
// "200:4,500:8" (static steps), "load:8" / "load:8:2.5" (load-triggered
// growth), or a combination ("200:4,load:8").
func ParseReshardSpec(s string) (ReshardSpec, error) { return engine.ParseReshardSpec(s) }

// FaultPlan is a deterministic fault-injection schedule (see
// hw.FaultPlan): host deaths, link partitions/degradations, and
// aggregator losses pinned to iteration indices. The zero plan is
// guaranteed not to perturb a run.
type FaultPlan = hw.FaultPlan

// FaultEvent is one scheduled fault (see hw.FaultEvent).
type FaultEvent = hw.FaultEvent

// EvacStats totals a run's host-evacuation activity (see
// shard.EvacStats); Report.Evac carries the run's totals.
type EvacStats = shard.EvacStats

// ParseFaultPlan parses the -fail flag grammar: "" (no faults), or a
// comma-separated schedule like "host1@300,link:host0-host1@500-600",
// with event forms host<H>@<I>, agg<H>@<I>,
// link:host<A>-host<B>@<I>[-<J>],
// degrade:host<A>-host<B>@<I>[-<J>][x<F>], and — for serving plans
// (-serve-fail) — replica<R>@<T>[-<T2>] in virtual-clock seconds.
func ParseFaultPlan(s string) (FaultPlan, error) { return hw.ParseFaultPlan(s) }

// ServeOptions configures the online serving simulation (see
// serve.Options): replica count, routing policy, arrival process,
// queue bound, and per-replica cache fraction. The zero value keeps
// serving off.
type ServeOptions = serve.Options

// RouterPolicy names a serving routing policy.
type RouterPolicy = serve.Policy

// The routing policies, in sophistication order: random spreads
// blindly, roundrobin evenly, leastloaded by queue depth, hitaware by
// estimated cache overlap (tie-broken by queue depth), and
// hitaware-telemetry by the replicas' own published decayed hit rates
// instead of the router's send history.
const (
	RouterRandom     = serve.PolicyRandom
	RouterRoundRobin = serve.PolicyRoundRobin
	RouterLeastLoad  = serve.PolicyLeastLoaded
	RouterHitAware   = serve.PolicyHitAware
	RouterTelemetry  = serve.PolicyTelemetry
)

// ParseRouterPolicy resolves a routing policy name ("" = hitaware).
func ParseRouterPolicy(s string) (RouterPolicy, error) { return serve.ParsePolicy(s) }

// ArrivalSpec describes a serving arrival process (see serve.ArrivalSpec).
type ArrivalSpec = serve.ArrivalSpec

// ParseArrival parses the -arrival flag grammar: "poisson:<qps>",
// "diurnal:<qps>[:<amp>]", or "flash:<qps>[:<mult>[:<at>:<dur>]]".
func ParseArrival(s string) (ArrivalSpec, error) { return serve.ParseArrival(s) }

// ServeReport summarizes one serving simulation (see serve.Report for
// field docs). The zero value is valid: serving-off runs carry it
// zero-valued, never nil.
type ServeReport = serve.Report

// RetrySpec bounds a serving client's retries after a failed attempt
// (see serve.RetrySpec): up to Max redispatches with exponential
// backoff to a replica the query has not tried. The zero spec disables
// retries.
type RetrySpec = serve.RetrySpec

// ParseRetry parses the -retry flag grammar: "<max>[:<backoff-ms>]",
// e.g. "2" or "3:0.25". "" parses to the inactive zero spec.
func ParseRetry(s string) (RetrySpec, error) { return serve.ParseRetry(s) }

// AdmissionSpec configures the serving frontend's admission controller
// (see serve.AdmissionSpec): shed by policy past a queue-depth
// threshold, optionally degrading rejections onto the CPU fallback
// path instead of losing them. The zero spec admits everything.
type AdmissionSpec = serve.AdmissionSpec

// AdmissionPolicy names an admission-controller shedding rule.
type AdmissionPolicy = serve.AdmissionPolicy

// Admission-controller shedding rules for AdmissionSpec.Policy.
const (
	// AdmitAll admits every arrival (queue caps still drop).
	AdmitAll = serve.AdmitAll
	// AdmitNewest sheds the incoming query once the chosen replica's
	// queue passes the admission threshold.
	AdmitNewest = serve.AdmitNewest
	// AdmitCheapest sheds past the threshold only when the query looks
	// cache-cheap on the router's view (mostly-warm queries lose the
	// least locality by being turned away).
	AdmitCheapest = serve.AdmitCheapest
)

// ParseAdmission parses the -admission flag grammar:
// "newest|cheapest[:<threshold>][:degrade]", or the bare "degrade".
// "" parses to the inactive zero spec.
func ParseAdmission(s string) (AdmissionSpec, error) { return serve.ParseAdmission(s) }

// BatchSpec configures replica-side request batching (see
// serve.BatchSpec): each worker services up to Cap queued queries as
// one deduplicated batch, holding an undersized batch open at most
// Delay seconds. The zero spec (and Cap <= 1) disables batching.
type BatchSpec = serve.BatchSpec

// ParseBatch parses the -serve-batch flag grammar: "<cap>[:<delay-ms>]",
// e.g. "8" or "8:0.25". "" and "1" parse to the disabled zero spec.
func ParseBatch(s string) (BatchSpec, error) { return serve.ParseBatch(s) }

// PolicyKind selects the scratchpad replacement policy.
type PolicyKind = cache.PolicyKind

// Replacement policies (§VI-E).
const (
	LRU          = cache.LRU
	LFU          = cache.LFU
	RandomPolicy = cache.RandomPolicy
)

// OptimizerKind selects the embedding optimizer.
type OptimizerKind = opt.Kind

// Embedding optimizers.
const (
	OptSGD     = opt.SGDKind
	OptAdagrad = opt.AdagradKind
)

// Report summarizes a training run (see engine.Report for field docs).
type Report = engine.Report

// Config assembles one training setup.
type Config struct {
	// Engine picks the design point; empty selects KindScratchPipe.
	Engine Kind
	// Model is the DLRM configuration; the zero value selects
	// DefaultModel().
	Model ModelConfig
	// System is the hardware model; the zero value selects
	// DefaultSystem().
	System SystemConfig
	// Class is the trace locality class (default Random).
	Class Class
	// CacheFrac sizes the GPU embedding cache as a fraction of each CPU
	// table for the cached engines; 0 selects the paper's headline 2%.
	CacheFrac float64
	// Policy is the dynamic-cache replacement policy (default LRU).
	Policy PolicyKind
	// Parallel runs ScratchPipe's pipeline stages in goroutines.
	Parallel bool
	// Functional executes real float32 training (needed for losses and
	// model state); metadata-only simulation otherwise.
	Functional bool
	// Optimizer selects the embedding optimizer (default SGD, the
	// paper's choice; Adagrad adds per-row state that the scratchpad
	// keeps coherent through the same prefetch/write-back pipeline).
	Optimizer OptimizerKind
	// Seed drives all randomness (traces, init, policies).
	Seed int64
	// Workers bounds the host-side per-table fan-out parallelism of the
	// simulator (tables are independent): 0 selects GOMAXPROCS, 1 the
	// serial path. Simulated stats and functional results are
	// bit-identical at any worker count.
	Workers int
	// Shards partitions each table's scratchpad control plane across
	// socket shards (hash-partitioned ID space with cross-shard
	// eviction-budget coordination; see internal/shard). 0 and 1 select
	// the unsharded planner; simulated stats and functional results are
	// identical at any shard count. Shards > 1 requires the LRU policy.
	Shards int
	// Topology places the shards on a platform graph (hw.ParseTopology
	// names one: "numa2", "pcie4", "cluster2x2", ...); the shard
	// coordinator's victim-merge, touch-stamp, and borrow traffic is
	// then charged to the links the placement crosses and surfaces as
	// Report.CoordTime. nil co-locates all shards at zero cost.
	Topology *Topology
	// Placement selects the shard-to-node policy: stripe (default),
	// range, or loadaware. Placement affects only modeled coordination
	// latency, never plans, statistics, or training results.
	Placement PlacementPolicy
	// Coord selects the cross-shard coordination protocol: exact
	// (default), batched, hier, or approx. Exact, batched, and hier
	// produce identical plans, statistics, and training results —
	// batching and the host tier only cut coordination rounds; approx
	// may change eviction behaviour and reports the measured divergence
	// in Report.CoordDivergence.
	Coord CoordMode
	// CoordQuantum is approx mode's recency quantum in clock ticks
	// (0 = the shard package default; 1 makes approx exact).
	CoordQuantum int
	// CoordOverlap overlaps distributed coordination with the pipeline
	// (ScratchPipe engine only): the coordinator speculatively resolves
	// the next Plan's eviction candidates against a stamp-clock snapshot
	// while the current cycle runs, rolling back and replaying on any
	// mismatch. Plans, statistics, and training results are bit-identical
	// with the flag off; only the critical coordination share charged to
	// the Plan stage shrinks. A no-op co-located or unsharded.
	CoordOverlap bool
	// Reshard schedules run-time shard-count transitions for the
	// dynamic-cache engines (strawman/scratchpipe): the live scratchpad
	// state migrates between Plans — plans, statistics, and functional
	// training results are preserved exactly — and the migrated bytes
	// are priced on Topology, surfacing as Report.MigrationTime. The
	// zero spec disables elasticity; schedules reaching more than one
	// shard require the LRU policy.
	Reshard ReshardSpec
	// Faults schedules deterministic fault injection for the
	// dynamic-cache engines (ParseFaultPlan's -fail grammar): host
	// deaths evacuate their shards to surviving hosts, link partitions
	// degrade coordination to the approx protocol until heal, and
	// aggregator losses trigger priced re-elections. The recovery bill
	// surfaces as Report.Downtime / RecoveryTime / LostResidency /
	// Availability. An active plan requires a multi-host Topology; the
	// zero plan changes nothing.
	Faults FaultPlan
	// CkptInterval prices a periodic scratchpad checkpoint flush every
	// this many iterations (0 disables): a host death then restores
	// residency from the last flush (Report.CheckpointTime carries the
	// flush cost) instead of dropping it cold.
	CkptInterval int
	// Serve configures the online serving simulation (Trainer.Serve):
	// replicas, router, arrival process. The zero value keeps serving
	// off and never perturbs training.
	Serve ServeOptions
}

func (c *Config) applyDefaults() {
	if c.Engine == "" {
		c.Engine = KindScratchPipe
	}
	if c.Model.NumTables == 0 {
		c.Model = DefaultModel()
	}
	if c.System.NumGPUs == 0 {
		c.System = DefaultSystem()
	}
	if c.CacheFrac == 0 {
		c.CacheFrac = 0.02
	}
	if c.Policy == "" {
		c.Policy = LRU
	}
}

// Trainer drives one engine over one environment.
type Trainer struct {
	cfg Config
	env *engine.Env
	eng engine.Engine
}

// NewTrainer builds a training setup from cfg.
func NewTrainer(cfg Config) (*Trainer, error) {
	cfg.applyDefaults()
	env, err := engine.NewEnv(engine.EnvConfig{
		Model:        cfg.Model,
		System:       cfg.System,
		Class:        cfg.Class,
		Seed:         cfg.Seed,
		Functional:   cfg.Functional,
		Optimizer:    cfg.Optimizer,
		Workers:      cfg.Workers,
		Shards:       cfg.Shards,
		Topology:     cfg.Topology,
		Placement:    cfg.Placement,
		Coord:        cfg.Coord,
		CoordQuantum: cfg.CoordQuantum,
		Reshard:      cfg.Reshard,
		Faults:       cfg.Faults,
		CkptInterval: cfg.CkptInterval,
		Serve:        cfg.Serve,
	})
	if err != nil {
		return nil, err
	}
	var eng engine.Engine
	switch cfg.Engine {
	case KindHybrid:
		eng = engine.NewHybrid(env)
	case KindStatic:
		eng, err = engine.NewStaticCache(env, cfg.CacheFrac)
	case KindStrawMan:
		eng, err = engine.NewStrawMan(env, cfg.CacheFrac, cfg.Policy)
	case KindScratchPipe:
		eng, err = engine.NewScratchPipe(env, engine.ScratchPipeOptions{
			CacheFrac:    cfg.CacheFrac,
			Policy:       cfg.Policy,
			Parallel:     cfg.Parallel,
			CoordOverlap: cfg.CoordOverlap,
		})
	case KindMultiGPU:
		eng, err = engine.NewMultiGPU(env)
	default:
		return nil, fmt.Errorf("scratchpipe: unknown engine kind %q", cfg.Engine)
	}
	if err != nil {
		return nil, err
	}
	return &Trainer{cfg: cfg, env: env, eng: eng}, nil
}

// Config returns the trainer's configuration after defaulting.
func (t *Trainer) Config() Config { return t.cfg }

// Engine returns the engine name.
func (t *Trainer) Engine() string { return t.eng.Name() }

// Train runs iters training iterations and returns the report.
func (t *Trainer) Train(iters int) (*Report, error) { return t.eng.Run(iters) }

// Serve plays the configured online serving simulation (Config.Serve)
// over this trainer's model, trace class, topology, and shard knobs:
// replica workers holding reactive scratchpads answer an open-loop
// query stream behind the configured router. Training state is never
// touched. Returns an error if Config.Serve is inactive.
func (t *Trainer) Serve() (*ServeReport, error) {
	if !t.cfg.Serve.Active() {
		return nil, fmt.Errorf("scratchpipe: serving not configured (Config.Serve.Replicas == 0)")
	}
	return engine.RunServe(t.env)
}

// Flush writes GPU-cached dirty embedding rows back to the CPU tables
// (functional mode) so full model state can be inspected or compared.
func (t *Trainer) Flush() error {
	if f, ok := t.eng.(engine.FlushTables); ok {
		return f.Flush()
	}
	return nil
}

// SaveCheckpoint flushes engine caches and writes the complete training
// state (dense parameters, embedding tables, optimizer state) to w.
// Functional mode only.
func (t *Trainer) SaveCheckpoint(w io.Writer) error {
	if err := t.Flush(); err != nil {
		return err
	}
	return checkpoint.Save(w, t.env)
}

// LoadCheckpoint restores state written by SaveCheckpoint into this
// trainer's environment; the model configuration and optimizer must match.
func (t *Trainer) LoadCheckpoint(r io.Reader) error {
	return checkpoint.Load(r, t.env)
}

// IterationEnergy estimates the energy (joules) of one training iteration
// from a report, using the paper's §VI-C power methodology.
func IterationEnergy(rep *Report, sys SystemConfig, eng Kind) float64 {
	gpus := 1
	if eng == KindMultiGPU {
		gpus = sys.NumGPUs
	}
	return energy.Default().IterationEnergy(rep.IterTime, rep.CPUBusy, rep.GPUBusy, gpus)
}

// PipelineStages re-exports the stage names for reports.
func PipelineStages() []string {
	out := make([]string, 0, len(core.Stages))
	for _, s := range core.Stages {
		out = append(out, s.String())
	}
	return out
}
