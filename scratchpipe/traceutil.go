package scratchpipe

import (
	"repro/internal/trace"
)

// Dataset re-exports the real-world dataset presets (Figures 3 and 6).
type Dataset = trace.Dataset

// DatasetNames lists the four dataset presets in paper order: Alibaba,
// KaggleAnime, MovieLens, Criteo.
var DatasetNames = trace.DatasetNames

// NewDataset returns the named dataset preset with rows rows per table.
func NewDataset(name string, rows int64) (*Dataset, error) {
	return trace.NewDataset(name, rows)
}

// ClassDistribution returns the access distribution of a locality class
// over a table of the given size.
func ClassDistribution(c Class, rows int64) (trace.Distribution, error) {
	return trace.NewClassDistribution(c, rows)
}

// StaticHitRate returns the analytic hit rate of a static top-N cache
// holding the top cacheFrac fraction of rows (the Figure 6 curves).
func StaticHitRate(d trace.Distribution, cacheFrac float64) float64 {
	return trace.StaticHitRate(d, cacheFrac)
}

// HitRateCurve evaluates StaticHitRate at each cache fraction.
func HitRateCurve(d trace.Distribution, fracs []float64) []float64 {
	return trace.HitRateCurve(d, fracs)
}
