// Elastic-resharding schedules: when, and to how many shards, the
// dynamic-cache engines transition their per-table scratchpad managers
// at run time (shard.Manager.Reshard; DESIGN.md §9). Two triggers:
//
//   - a static schedule ("200:4,500:8"): step to the given shard count
//     before the batch with that sequence number is planned;
//   - a load policy ("load:8" / "load:8:2.5"): watch the managers'
//     fixed-granularity query-mass probes and double the shard count
//     toward the cap whenever the observed ID-space skew exceeds the
//     threshold — the manager reacting to traffic it can see (a
//     locality shift concentrating mass on few hash buckets) instead
//     of a schedule written in advance.
//
// The reshard itself happens between Plans: state migrates with batches
// still in flight, plans and statistics are preserved exactly (the
// shard package's reshard equivalence suite), and the migrated bytes
// are priced on the environment's topology, surfacing as
// Report.MigrationTime.

package engine

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"repro/internal/shard"
)

// ReshardStep is one static schedule entry: step to Shards shards
// before the batch with sequence number Iter is planned.
type ReshardStep struct {
	Iter   int
	Shards int
}

// DefaultLoadSkewThreshold is the load policy's trigger when the spec
// does not name one: grow when the busiest probe bucket carries more
// than twice its fair share of the observed query mass.
const DefaultLoadSkewThreshold = 2.0

// loadCheckEvery is the load policy's sampling period in iterations.
const loadCheckEvery = 8

// minLoadSample is the minimum observed query mass (occurrences across
// all tables since the last check) before the load policy trusts a
// skew estimate: below ~8 occurrences per probe bucket the max-bucket
// statistic is sampling noise, not traffic shape, and acting on it
// would grow the shard count on uniform streams.
const minLoadSample = 8 * shard.LoadProbeBuckets

// ReshardSpec is a reshard schedule for the dynamic-cache engines
// (strawman and ScratchPipe; the static and hybrid engines have no
// dynamic scratchpad and ignore it). The zero value disables
// elasticity entirely — managers then keep their delegated S=1 fast
// path and nothing changes.
type ReshardSpec struct {
	// Steps is the static schedule, ascending by Iter.
	Steps []ReshardStep
	// LoadMax enables the load-triggered policy when > 1: the shard
	// count doubles toward this cap whenever the observed query-mass
	// skew exceeds LoadThresh. Growth only; explicit Steps can shrink.
	LoadMax int
	// LoadThresh is the skew trigger (max probe bucket / fair share);
	// 0 selects DefaultLoadSkewThreshold.
	LoadThresh float64
}

// Active reports whether the spec asks for any resharding.
func (s ReshardSpec) Active() bool { return len(s.Steps) > 0 || s.LoadMax > 1 }

// MaxShards returns the largest shard count the spec can reach (0 when
// inactive) — what the policy/LRU validation checks against.
func (s ReshardSpec) MaxShards() int {
	max := s.LoadMax
	for _, st := range s.Steps {
		if st.Shards > max {
			max = st.Shards
		}
	}
	return max
}

// loadThresh resolves the skew trigger.
func (s ReshardSpec) loadThresh() float64 {
	if s.LoadThresh > 0 {
		return s.LoadThresh
	}
	return DefaultLoadSkewThreshold
}

// Validate reports a descriptive error for an unusable spec.
func (s ReshardSpec) Validate() error {
	last := -1
	for i, st := range s.Steps {
		if st.Iter < 0 {
			return fmt.Errorf("engine: reshard step %d: negative iteration %d", i, st.Iter)
		}
		if st.Iter <= last {
			return fmt.Errorf("engine: reshard step %d: iteration %d not after %d (steps must ascend)", i, st.Iter, last)
		}
		if st.Shards < 1 {
			return fmt.Errorf("engine: reshard step %d: %d shards", i, st.Shards)
		}
		last = st.Iter
	}
	if s.LoadMax < 0 || s.LoadMax == 1 {
		return fmt.Errorf("engine: reshard load cap %d (want 0 to disable or >= 2)", s.LoadMax)
	}
	if math.IsNaN(s.LoadThresh) || math.IsInf(s.LoadThresh, 0) || s.LoadThresh < 0 || (s.LoadThresh > 0 && s.LoadThresh <= 1) {
		return fmt.Errorf("engine: reshard load threshold %g (want 0 for the default or > 1)", s.LoadThresh)
	}
	return nil
}

// String renders the spec in the -reshard flag grammar (canonical: the
// benchmark history matches baselines on it). The zero spec renders "".
func (s ReshardSpec) String() string {
	var parts []string
	for _, st := range s.Steps {
		parts = append(parts, fmt.Sprintf("%d:%d", st.Iter, st.Shards))
	}
	if s.LoadMax > 1 {
		p := fmt.Sprintf("load:%d", s.LoadMax)
		if s.LoadThresh > 0 {
			p += fmt.Sprintf(":%g", s.LoadThresh)
		}
		parts = append(parts, p)
	}
	return strings.Join(parts, ",")
}

// ParseReshardSpec parses the -reshard flag grammar:
//
//	""                 no resharding (the zero spec)
//	"200:4,500:8"      static schedule: 4 shards at iteration 200, 8 at 500
//	"load:8"           load policy: double toward 8 shards on observed skew
//	"load:8:2.5"       same, with an explicit skew threshold
//	"200:4,load:8"     schedule and load policy combined
func ParseReshardSpec(text string) (ReshardSpec, error) {
	var spec ReshardSpec
	text = strings.TrimSpace(text)
	if text == "" {
		return spec, nil
	}
	for _, part := range strings.Split(text, ",") {
		fields := strings.Split(strings.TrimSpace(part), ":")
		if fields[0] == "load" {
			if spec.LoadMax != 0 {
				return ReshardSpec{}, fmt.Errorf("engine: reshard spec %q: multiple load clauses", text)
			}
			if len(fields) < 2 || len(fields) > 3 {
				return ReshardSpec{}, fmt.Errorf("engine: reshard spec %q: want load:<max> or load:<max>:<thresh>", text)
			}
			max, err := strconv.Atoi(fields[1])
			if err != nil {
				return ReshardSpec{}, fmt.Errorf("engine: reshard spec %q: bad load cap %q", text, fields[1])
			}
			spec.LoadMax = max
			if len(fields) == 3 {
				th, err := strconv.ParseFloat(fields[2], 64)
				if err != nil {
					return ReshardSpec{}, fmt.Errorf("engine: reshard spec %q: bad load threshold %q", text, fields[2])
				}
				spec.LoadThresh = th
			}
			continue
		}
		if len(fields) != 2 {
			return ReshardSpec{}, fmt.Errorf("engine: reshard spec %q: want <iter>:<shards> steps or a load:<max> clause", text)
		}
		iter, err := strconv.Atoi(fields[0])
		if err != nil {
			return ReshardSpec{}, fmt.Errorf("engine: reshard spec %q: bad iteration %q", text, fields[0])
		}
		shards, err := strconv.Atoi(fields[1])
		if err != nil {
			return ReshardSpec{}, fmt.Errorf("engine: reshard spec %q: bad shard count %q", text, fields[1])
		}
		spec.Steps = append(spec.Steps, ReshardStep{Iter: iter, Shards: shards})
	}
	if err := spec.Validate(); err != nil {
		return ReshardSpec{}, err
	}
	return spec, nil
}

// maybeReshard runs the environment's reshard schedule for the batch
// about to be planned at iteration it: fire every static step whose
// time has come (the last one wins if several crossed), then consult
// the load policy on its sampling period. Called by the dynamic-cache
// engines at the top of each training iteration — between Plans, which
// is the boundary shard.Manager.Reshard requires.
func (d *dynamicState) maybeReshard(it int) error {
	spec := d.env.Cfg.Reshard
	if !spec.Active() {
		return nil
	}
	target := 0
	for d.reshardNext < len(spec.Steps) && spec.Steps[d.reshardNext].Iter <= it {
		target = spec.Steps[d.reshardNext].Shards
		d.reshardNext++
	}
	if target > 0 {
		// Same-S steps still execute: the manager treats them as priced
		// no-ops (bit-identical plans after the boundary), which is how
		// the equivalence tests pin the boundary itself.
		if err := d.reshardTo(target); err != nil {
			return err
		}
	}
	if spec.LoadMax > 1 && it > 0 && it%loadCheckEvery == 0 {
		cur := d.sps[0].Shards()
		if cur < spec.LoadMax {
			if skew := d.probeSkew(); skew > spec.loadThresh() {
				next := cur * 2
				if next > spec.LoadMax {
					next = spec.LoadMax
				}
				if err := d.reshardTo(next); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// probeSkew returns the observed ID-space query-mass skew since the
// last check: the busiest probe bucket's mass relative to its fair
// share, summed over all tables (1 = perfectly even, LoadProbeBuckets =
// all mass in one bucket), or 0 when the window holds too little mass
// to distinguish skew from sampling noise. The snapshot advances on
// every call.
func (d *dynamicState) probeSkew() float64 {
	if d.loadSnap == nil {
		d.loadSnap = make([]int64, shard.LoadProbeBuckets)
	}
	cur := make([]int64, shard.LoadProbeBuckets)
	for _, sp := range d.sps {
		for i, v := range sp.LoadProbe() {
			cur[i] += v
		}
	}
	var total, max int64
	for i, v := range cur {
		delta := v - d.loadSnap[i]
		total += delta
		if delta > max {
			max = delta
		}
	}
	copy(d.loadSnap, cur)
	if total < minLoadSample {
		return 0
	}
	return float64(shard.LoadProbeBuckets) * float64(max) / float64(total)
}

// reshardTo transitions every table's manager to newS shards under the
// environment's topology and placement policy, accumulating the
// modeled migration latency.
func (d *dynamicState) reshardTo(newS int) error {
	for t, sp := range d.sps {
		place, err := placementFor(d.env, t, newS)
		if err != nil {
			return err
		}
		if err := sp.Reshard(newS, place); err != nil {
			return fmt.Errorf("engine: reshard table %d to %d shards: %w", t, newS, err)
		}
		d.migrationSecs += sp.LastReshardTime()
	}
	// The load snapshot stays: the probe is bucket-keyed and
	// shard-count-independent, so its deltas remain valid across the
	// boundary (zeroing it would re-count already-acted-upon mass as
	// fresh skew on the next check).
	return nil
}
