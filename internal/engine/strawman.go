package engine

import (
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/trace"
)

// StrawMan is the unpipelined dynamic-cache design of §IV-B (Figure 8):
// every training iteration executes Query/Plan, Collect, Exchange, Insert
// and Train back-to-back, so the cache-management latency sits fully on
// the critical path. It needs no look-ahead and no hold-mask windows
// beyond protecting the current batch's own slots from its own victim
// selection. The paper uses it to show that dynamic caching alone already
// beats static caching — and that pipelining is where the rest of the
// speedup comes from.
type StrawMan struct {
	env       *Env
	dyn       *dynamicState
	loader    *trace.Loader
	cacheFrac float64
}

// NewStrawMan builds the engine with a dynamic per-table cache of
// cacheFrac x RowsPerTable slots and the given replacement policy. The
// cache is prewarmed to steady state like ScratchPipe's.
func NewStrawMan(env *Env, cacheFrac float64, policy cache.PolicyKind) (*StrawMan, error) {
	dyn, err := newDynamicState(env, cacheFrac, policy, 0, 0, nil)
	if err != nil {
		return nil, err
	}
	loader, err := trace.NewLoader(env.Gen, 0)
	if err != nil {
		return nil, err
	}
	dyn.prewarm()
	return &StrawMan{env: env, dyn: dyn, loader: loader, cacheFrac: cacheFrac}, nil
}

// Name implements Engine.
func (s *StrawMan) Name() string { return "strawman" }

// Run implements Engine.
func (s *StrawMan) Run(n int) (*Report, error) {
	if err := validateIters(n); err != nil {
		return nil, err
	}
	rep := &Report{Engine: s.Name(), Iters: n}
	var lossSum float64
	for it := 0; it < n; it++ {
		// Elastic resharding fires between Plans (see scratchpipe.go;
		// unpipelined, so there is never more than one batch in flight
		// here).
		if err := s.dyn.maybeReshard(it); err != nil {
			return nil, err
		}
		if err := s.dyn.maybeFault(it, rep.Wall); err != nil {
			return nil, err
		}
		job := s.dyn.newJob(s.loader, 0, 0)
		if err := s.dyn.stagePlan(job); err != nil {
			return nil, err
		}
		if err := s.dyn.stageCollect(job); err != nil {
			return nil, err
		}
		if err := s.dyn.stageExchange(job); err != nil {
			return nil, err
		}
		if err := s.dyn.stageInsert(job); err != nil {
			return nil, err
		}
		// The batch enters Train: its slots may be evicted by later
		// batches from here on.
		if err := s.dyn.release(job); err != nil {
			return nil, err
		}
		if err := s.dyn.stageTrain(job); err != nil {
			return nil, err
		}

		var iter float64
		for st, t := range job.stageTime {
			iter += t
			rep.StageAvg[st] += t
		}
		rep.Wall += iter
		rep.CoordTime += job.coord
		rep.CPUBusy += job.cpuBusy
		rep.GPUBusy += job.gpuBusy
		lossSum += float64(job.loss)
		s.dyn.recycleJob(job)
	}
	s.dyn.aggregateCacheStats(rep)
	finalizeAverages(rep, n, lossSum)
	// Migration, fault and checkpoint stalls are episodic: they extend
	// wall time but stay out of the per-iteration average
	// (finalizeAverages already divided).
	rep.Wall += rep.MigrationTime + rep.Downtime + rep.RecoveryTime + rep.CheckpointTime
	if rep.Wall > 0 {
		rep.Availability = 1 - (rep.Downtime+rep.RecoveryTime)/rep.Wall
	}
	// Attribute the Figure 5-style buckets: cache management touching
	// CPU memory counts as CPU embedding time.
	rep.CPUEmbFwd = rep.StageAvg[core.StagePlan] + rep.StageAvg[core.StageCollect] + rep.StageAvg[core.StageExchange]
	rep.CPUEmbBwd = rep.StageAvg[core.StageInsert]
	rep.GPUTime = rep.StageAvg[core.StageTrain]
	return rep, nil
}

// Flush implements FlushTables.
func (s *StrawMan) Flush() error { return s.dyn.flush() }
