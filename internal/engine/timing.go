package engine

import (
	"math/rand"

	"repro/internal/dlrm"
	"repro/internal/hw"
	"repro/internal/shard"
	"repro/internal/trace"
)

// newSeededRand returns a deterministic PRNG stream for the given seed.
func newSeededRand(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// batchShape caches the per-table ID structure of one batch that the
// timing model needs: total occurrences and distinct rows.
type batchShape struct {
	totalIDs int   // per table (BatchSize * Lookups)
	unique   []int // per table distinct rows
}

func shapeOf(b *trace.Batch) batchShape {
	s := batchShape{totalIDs: b.TotalIDs(), unique: make([]int, b.NumTables())}
	for t := range s.unique {
		s.unique[t] = len(b.UniqueIDs(t))
	}
	return s
}

// mlpFlopsPerIteration computes the dense FLOPs of one training iteration
// (forward + backward ~ 3x forward) from the configuration alone, so
// metadata-mode engines need not instantiate a model.
func mlpFlopsPerIteration(cfg dlrm.Config) float64 {
	batch := float64(cfg.BatchSize)
	fwd := chainFlops(batch, cfg.DenseDim, cfg.BottomHidden, cfg.EmbeddingDim)
	fwd += chainFlops(batch, cfg.TopInputDim(), cfg.TopHidden, 1)
	fwd += 2 * batch * float64(cfg.NumInteractionPairs()) * float64(cfg.EmbeddingDim)
	return 3 * fwd
}

// chainFlops sums the matmul FLOPs of the layer chain in -> hidden... ->
// out, walking the layer widths in place (the multi-GPU engines call
// these formulas every cycle, so no slices are built).
func chainFlops(batch float64, in int, hidden []int, out int) float64 {
	prev, f := in, 0.0
	for _, h := range hidden {
		f += 2 * batch * float64(prev) * float64(h)
		prev = h
	}
	return f + 2*batch*float64(prev)*float64(out)
}

// mlpParamCount returns the number of dense trainable scalars (for the
// multi-GPU allreduce volume).
func mlpParamCount(cfg dlrm.Config) float64 {
	return chainParams(cfg.DenseDim, cfg.BottomHidden, cfg.EmbeddingDim) +
		chainParams(cfg.TopInputDim(), cfg.TopHidden, 1)
}

// chainParams sums weights + biases of the layer chain in -> hidden... ->
// out.
func chainParams(in int, hidden []int, out int) float64 {
	prev, n := in, 0.0
	for _, h := range hidden {
		n += float64(prev)*float64(h) + float64(h)
		prev = h
	}
	return n + float64(prev)*float64(out) + float64(out)
}

// costModel bundles the latency formulas shared by the engines. All times
// are simulated seconds.
type costModel struct {
	env *Env
}

func (c costModel) dim() int { return c.env.Cfg.Model.EmbeddingDim }

// idBytes is the transfer payload of n sparse IDs (int64).
func idBytes(n int) float64 { return float64(n) * 8 }

// gatherCPU / gatherGPU: random row reads.
func (c costModel) gatherCPU(rows int) float64 {
	return c.env.Cfg.System.CPU.GatherTime(rows, c.dim())
}

func (c costModel) gatherGPU(rows int) float64 {
	return c.env.Cfg.System.GPU.GatherTime(rows, c.dim())
}

// scatterWrite: full-row random writes (cache fills, eviction write-backs).
func (c costModel) scatterWriteCPU(rows int) float64 {
	return c.env.Cfg.System.CPU.ScatterWriteTime(rows, c.dim())
}

func (c costModel) scatterWriteGPU(rows int) float64 {
	return c.env.Cfg.System.GPU.ScatterWriteTime(rows, c.dim())
}

// scatterUpdate: read-modify-write optimizer scatters.
func (c costModel) scatterUpdateCPU(rows int) float64 {
	return c.env.Cfg.System.CPU.ScatterUpdateTime(rows, c.dim())
}

func (c costModel) scatterUpdateGPU(rows int) float64 {
	return c.env.Cfg.System.GPU.ScatterUpdateTime(rows, c.dim())
}

// reduce: per-table pooled reduction.
func (c costModel) reduceCPU(total, out int) float64 {
	return c.env.Cfg.System.CPU.ReduceTime(total, out, c.dim())
}

func (c costModel) reduceGPU(total, out int) float64 {
	return c.env.Cfg.System.GPU.ReduceTime(total, out, c.dim())
}

// dupCoalesce: gradient duplication + coalescing (Figure 2b).
func (c costModel) dupCoalesceCPU(batch, total, uniq int) float64 {
	return c.env.Cfg.System.CPU.GradDuplicateCoalesceTime(batch, total, uniq, c.dim())
}

func (c costModel) dupCoalesceGPU(batch, total, uniq int) float64 {
	return c.env.Cfg.System.GPU.GradDuplicateCoalesceTime(batch, total, uniq, c.dim())
}

// stateDim is the optimizer's per-row state width (0 when stateless).
func (c costModel) stateDim() int { return c.env.StateDim }

// stateUpdateCPU / stateUpdateGPU: optimizer-state read-modify-write.
func (c costModel) stateUpdateCPU(rows int) float64 {
	if c.stateDim() == 0 {
		return 0
	}
	return c.env.Cfg.System.CPU.ScatterUpdateTime(rows, c.stateDim())
}

func (c costModel) stateUpdateGPU(rows int) float64 {
	if c.stateDim() == 0 {
		return 0
	}
	return c.env.Cfg.System.GPU.ScatterUpdateTime(rows, c.stateDim())
}

// stateMoveCPU / stateMoveGPU: optimizer-state row movement (gathers into
// staging on Collect, scatters on Insert).
func (c costModel) stateMoveCPU(rows int) float64 {
	if c.stateDim() == 0 {
		return 0
	}
	return c.env.Cfg.System.CPU.RandomTime(float64(rows) * float64(c.stateDim()) * 4)
}

func (c costModel) stateMoveGPU(rows int) float64 {
	if c.stateDim() == 0 {
		return 0
	}
	return c.env.Cfg.System.GPU.RandomTime(float64(rows) * float64(c.stateDim()) * 4)
}

// stateBytes is the payload of rows state rows.
func (c costModel) stateBytes(rows int) float64 {
	return float64(rows) * float64(c.stateDim()) * 4
}

// pcie / pcieDuplex: CPU<->GPU transfers.
func (c costModel) pcie(bytes float64) float64 {
	return c.env.Cfg.System.PCIe.TransferTime(bytes)
}

func (c costModel) pcieDuplex(up, down float64) float64 {
	return c.env.Cfg.System.PCIe.DuplexTransferTime(up, down)
}

// embBytes is the payload of rows embedding rows.
func (c costModel) embBytes(rows int) float64 {
	return float64(rows) * float64(c.dim()) * 4
}

// mlpTime is the GPU dense time of one full training iteration: bottom and
// top MLP forward+backward, feature interaction, plus the fixed
// per-iteration framework overhead. Charged once per iteration. The value
// depends only on the configuration, so NewEnv computes it once and every
// per-cycle call reads the cache.
func (c costModel) mlpTime() float64 { return c.env.mlpIterTime }

// computeMLPTime is the uncached formula behind mlpTime.
func (c costModel) computeMLPTime() float64 {
	cfg := c.env.Cfg.Model
	flops := mlpFlopsPerIteration(cfg)
	// Operand traffic: weights and activations each stream roughly once
	// per forward/backward pass (3 passes: fwd, dgrad, wgrad), read and
	// written.
	bytes := 3 * 2 * 4 * (mlpParamCount(cfg) + mlpActivationFloats(cfg))
	return c.env.Cfg.System.GPU.MatmulTime(flops, bytes) + c.env.Cfg.System.GPU.IterOverhead
}

// mlpActivationFloats estimates the activation tensor volume of one
// forward pass (batch x every layer width).
func mlpActivationFloats(cfg dlrm.Config) float64 {
	widths := cfg.DenseDim + cfg.EmbeddingDim + cfg.TopInputDim() + 1
	for _, w := range cfg.BottomHidden {
		widths += w
	}
	for _, w := range cfg.TopHidden {
		widths += w
	}
	return float64(cfg.BatchSize) * float64(widths)
}

// denseInputBytes is the PCIe payload of the batch's continuous features.
func (c costModel) denseInputBytes() float64 {
	cfg := c.env.Cfg.Model
	return float64(cfg.BatchSize) * float64(cfg.DenseDim) * 4
}

// pooledBytes is the payload of one table's pooled output (batch x dim).
func (c costModel) pooledBytes() float64 {
	cfg := c.env.Cfg.Model
	return float64(cfg.BatchSize) * float64(cfg.EmbeddingDim) * 4
}

// --- cross-node shard coordination -------------------------------------
//
// When EnvConfig places scratchpad shards across topology nodes, the
// shard coordinator's victim-merge, touch-stamp, and free-slot-borrow
// messages are metered in bytes (internal/shard's coordMeter) and priced
// on the links each table's placement crosses. The resulting latency is
// charged to the [Plan] stage — the coordinator runs inside Plan — and
// surfaces as Report.CoordTime. With every shard on one node the charge
// is exactly zero, so all pre-topology figures are bit-identical.

// loadWeightSamples is the number of trace-distribution draws used to
// estimate per-shard query mass for load-aware placement.
const loadWeightSamples = 4096

// shardLoadWeights estimates each shard's share of one table's query
// mass: draws from the table's trace distribution are hashed through the
// shard router and counted. Deterministic in the seed, so every engine
// built over the same environment places identically.
func shardLoadWeights(dist trace.Distribution, seed int64, shards int) []float64 {
	rng := newSeededRand(seed)
	w := make([]float64, shards)
	for i := 0; i < loadWeightSamples; i++ {
		w[shard.ShardOf(dist.Sample(rng), shards)]++
	}
	return w
}

// placementFor builds table t's shard-to-node assignment under the
// environment's topology and placement policy. The zero Placement
// (co-located, costless) is returned when no topology is configured or
// the table is unsharded.
func placementFor(env *Env, t, shards int) (hw.Placement, error) {
	topo := env.Cfg.Topology
	if topo == nil || shards <= 1 {
		return hw.Placement{}, nil
	}
	policy, err := hw.ParsePlacementPolicy(string(env.Cfg.Placement))
	if err != nil {
		return hw.Placement{}, err
	}
	var weights []float64
	if policy == hw.PlaceLoadAware {
		// Per-shard heat varies per table (hot tables concentrate
		// their mass on few shards), so each table places its own
		// shards against its own distribution.
		weights = shardLoadWeights(env.Gen.Dists()[t], env.Cfg.Seed+int64(5000+t), shards)
	}
	return hw.NewPlacement(policy, topo, shards, weights)
}
