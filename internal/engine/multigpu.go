package engine

import (
	"fmt"

	"repro/internal/embed"
	"repro/internal/tensor"
	"repro/internal/trace"
)

// MultiGPU models the §VI-F comparison system: NumGPUs GPUs whose pooled
// HBM holds *all* embedding tables (table-wise model parallelism), with the
// MLPs trained data-parallel. Embedding traffic runs at HBM speed on every
// GPU; the cost is an all-to-all of pooled embeddings each direction, a
// gradient allreduce for the MLPs — and an 8x larger AWS bill (Table I).
type MultiGPU struct {
	env  *Env
	cost costModel
}

// NewMultiGPU builds the model-parallel engine; the GPU count comes from
// the environment's hw.System.
func NewMultiGPU(env *Env) (*MultiGPU, error) {
	cfg := env.Cfg.Model
	g := env.Cfg.System.NumGPUs
	if g < 1 {
		return nil, fmt.Errorf("engine: multigpu: %d GPUs", g)
	}
	// Feasibility check the paper makes implicitly: the pooled HBM of
	// all GPUs must fit the full model (8 x 32 GB > 40 GB).
	hbmBytes := 32e9 * float64(g)
	if cfg.ModelBytes() > hbmBytes {
		return nil, fmt.Errorf("engine: multigpu: model %.1f GB exceeds %d GPUs' pooled HBM (%.1f GB)",
			cfg.ModelBytes()/1e9, g, hbmBytes/1e9)
	}
	return &MultiGPU{env: env, cost: costModel{env: env}}, nil
}

// Name implements Engine.
func (m *MultiGPU) Name() string { return "multigpu" }

// Run implements Engine.
func (m *MultiGPU) Run(n int) (*Report, error) {
	if err := validateIters(n); err != nil {
		return nil, err
	}
	cfg := m.env.Cfg.Model
	sys := m.env.Cfg.System
	g := sys.NumGPUs
	tablesPerGPU := (cfg.NumTables + g - 1) / g
	rep := &Report{Engine: m.Name(), Iters: n}
	var lossSum float64
	for it := 0; it < n; it++ {
		b := m.env.Gen.Next()
		shape := shapeOf(b)

		// Model-parallel embedding forward: each GPU gathers and
		// reduces its local tables for the full global batch.
		var localFwd, localBwd float64
		for t := 0; t < tablesPerGPU; t++ {
			localFwd += m.cost.gatherGPU(shape.totalIDs)
			localFwd += m.cost.reduceGPU(shape.totalIDs, cfg.BatchSize)
			uniq := shape.unique[t%cfg.NumTables]
			localBwd += m.cost.dupCoalesceGPU(cfg.BatchSize, shape.totalIDs, uniq)
			localBwd += m.cost.scatterUpdateGPU(uniq)
			localBwd += m.cost.stateUpdateGPU(uniq)
		}
		// All-to-all of pooled outputs (forward) and pooled gradients
		// (backward): each GPU ships its tables' pooled rows to the
		// (g-1)/g other owners' data-parallel shards.
		a2aBytes := m.cost.pooledBytes() * float64(tablesPerGPU) * float64(g-1) / float64(g)
		a2a := sys.NVLink.TransferTime(a2aBytes)
		// Data-parallel MLPs on batch/g plus a ring allreduce of the
		// dense gradients.
		flops := mlpFlopsPerIteration(cfg) / float64(g)
		mlp := sys.GPU.MatmulTime(flops, flops/2) + sys.GPU.IterOverhead
		allreduce := sys.NVLink.TransferTime(2 * mlpParamCount(cfg) * 4 * float64(g-1) / float64(g))

		iter := localFwd + a2a + mlp + a2a + localBwd + allreduce
		rep.Wall += iter
		rep.GPUTime += iter
		rep.GPUBusy += iter * float64(g)
		rep.Hits += int64(cfg.NumTables * shape.totalIDs) // all HBM-resident

		if m.env.Cfg.Functional {
			lossSum += float64(m.trainStep(b))
		}
		m.env.Gen.Recycle(b)
	}
	finalizeAverages(rep, n, lossSum)
	return rep, nil
}

// trainStep: table-wise model parallelism does not reorder any float
// operation (each table's gather/reduce/scatter happens on its owner GPU
// exactly as the baseline does on the CPU), so the functional math is the
// canonical program against the tables.
func (m *MultiGPU) trainStep(b *trace.Batch) float32 {
	cfg := m.env.Cfg.Model
	pooled := make([]*tensor.Matrix, cfg.NumTables)
	m.env.Pool.ForEach(cfg.NumTables, func(t int) {
		pooled[t] = embed.ForwardPooled(m.env.Tables[t], b.Tables[t], b.BatchSize, b.Lookups)
	})
	res := m.env.Model.TrainStep(m.env.DenseMatrix(b), pooled, b.Labels)
	m.env.Pool.ForEach(cfg.NumTables, func(t int) {
		g := embed.DuplicateCoalesce(b.Tables[t], res.PooledGrads[t], b.Lookups)
		m.env.Opt.Apply(m.env.Tables[t], m.env.stateTable(t), g)
	})
	return res.Loss
}

// Flush implements FlushTables (tables are authoritative already in the
// functional simulation).
func (m *MultiGPU) Flush() error { return nil }
