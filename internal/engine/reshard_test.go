package engine

import (
	"reflect"
	"testing"

	"repro/internal/cache"
	"repro/internal/dlrm"
	"repro/internal/hw"
	"repro/internal/trace"
)

// TestParseReshardSpec pins the -reshard grammar, its canonical String
// rendering, and its rejections.
func TestParseReshardSpec(t *testing.T) {
	good := []struct {
		in, canon string
		spec      ReshardSpec
	}{
		{"", "", ReshardSpec{}},
		{"200:4", "200:4", ReshardSpec{Steps: []ReshardStep{{200, 4}}}},
		{"200:4,500:8", "200:4,500:8", ReshardSpec{Steps: []ReshardStep{{200, 4}, {500, 8}}}},
		{"0:1", "0:1", ReshardSpec{Steps: []ReshardStep{{0, 1}}}},
		{"load:8", "load:8", ReshardSpec{LoadMax: 8}},
		{"load:8:2.5", "load:8:2.5", ReshardSpec{LoadMax: 8, LoadThresh: 2.5}},
		{"200:4,load:8", "200:4,load:8", ReshardSpec{Steps: []ReshardStep{{200, 4}}, LoadMax: 8}},
		{" 200:4 , 500:8 ", "200:4,500:8", ReshardSpec{Steps: []ReshardStep{{200, 4}, {500, 8}}}},
	}
	for _, tc := range good {
		spec, err := ParseReshardSpec(tc.in)
		if err != nil {
			t.Fatalf("ParseReshardSpec(%q): %v", tc.in, err)
		}
		if !reflect.DeepEqual(spec, tc.spec) {
			t.Fatalf("ParseReshardSpec(%q) = %+v, want %+v", tc.in, spec, tc.spec)
		}
		if got := spec.String(); got != tc.canon {
			t.Fatalf("ParseReshardSpec(%q).String() = %q, want %q", tc.in, got, tc.canon)
		}
		if reparsed, err := ParseReshardSpec(spec.String()); err != nil || !reflect.DeepEqual(reparsed, spec) {
			t.Fatalf("String round-trip of %q failed: %+v, %v", tc.in, reparsed, err)
		}
	}
	bad := []string{
		"abc", "200", "200:", ":4", "200:0", "200:-1", "-5:4",
		"500:8,200:4", "200:4,200:8", // non-ascending
		"load", "load:1", "load:x", "load:8:0.5", "load:8:abc", "load:4,load:8",
	}
	for _, in := range bad {
		if _, err := ParseReshardSpec(in); err == nil {
			t.Fatalf("ParseReshardSpec(%q) accepted", in)
		}
	}
	if (ReshardSpec{}).Active() {
		t.Fatal("zero spec active")
	}
	if got := (ReshardSpec{Steps: []ReshardStep{{10, 4}}, LoadMax: 8}).MaxShards(); got != 8 {
		t.Fatalf("MaxShards = %d, want 8", got)
	}
}

// reshardEnv builds a metadata-mode environment with a reshard spec.
func reshardEnv(t *testing.T, model dlrm.Config, shards int, topo *hw.Topology, spec ReshardSpec) *Env {
	t.Helper()
	env, err := NewEnv(EnvConfig{
		Model:     model,
		System:    hw.DefaultSystem(),
		Class:     trace.Medium,
		Seed:      42,
		Workers:   2,
		Shards:    shards,
		Topology:  topo,
		Placement: hw.PlaceStripe,
		Reshard:   spec,
	})
	if err != nil {
		t.Fatalf("NewEnv(reshard=%q): %v", spec, err)
	}
	return env
}

// runSP runs a ScratchPipe engine over env for 24 iterations.
func runSP(t *testing.T, env *Env) *Report {
	t.Helper()
	eng, err := NewScratchPipe(env, ScratchPipeOptions{CacheFrac: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := eng.Run(24)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// scrubReshard zeroes the fields that only exist because a reshard
// schedule ran (event bookkeeping), leaving everything a same-S priced
// no-op must preserve — including MigrationTime, which must be zero.
func scrubReshard(rep *Report) *Report {
	c := *rep
	c.Resharding = shardReshardStatsZero
	c.FinalShards = 0
	return &c
}

var shardReshardStatsZero = (&Report{}).Resharding

// TestReshardSameSReportNoOp: a schedule that reshards to the current
// shard count mid-run must leave the engine report bit-identical to a
// run that never resharded — timing, stage averages, coordination, and
// cache statistics — with zero migration cost.
func TestReshardSameSReportNoOp(t *testing.T) {
	model := dlrm.DefaultConfig()
	model.RowsPerTable = 50_000
	model.BatchSize = 128

	spec, err := ParseReshardSpec("10:4")
	if err != nil {
		t.Fatal(err)
	}
	base := runSP(t, reshardEnv(t, model, 4, nil, ReshardSpec{}))
	resharded := runSP(t, reshardEnv(t, model, 4, nil, spec))
	if got := resharded.Resharding.Events; got != int64(model.NumTables) {
		t.Fatalf("reshard events %d, want one per table (%d)", got, model.NumTables)
	}
	if resharded.MigrationTime != 0 {
		t.Fatalf("same-S co-located reshard priced %g", resharded.MigrationTime)
	}
	if resharded.FinalShards != 4 {
		t.Fatalf("final shards %d, want 4", resharded.FinalShards)
	}
	if !reflect.DeepEqual(base, scrubReshard(resharded)) {
		t.Fatalf("same-S reshard changed the report:\nbase      %+v\nresharded %+v", base, resharded)
	}
}

// TestReshardReportEquivalence: a run resharding S=1 -> 4 -> 2 must
// keep every cache statistic identical to an unresharded run — sharding
// (and resharding) is a pure decomposition — with zero migration cost
// while co-located.
func TestReshardReportEquivalence(t *testing.T) {
	model := dlrm.DefaultConfig()
	model.RowsPerTable = 50_000
	model.BatchSize = 128

	spec, err := ParseReshardSpec("8:4,16:2")
	if err != nil {
		t.Fatal(err)
	}
	base := runSP(t, reshardEnv(t, model, 1, nil, ReshardSpec{}))
	resharded := runSP(t, reshardEnv(t, model, 1, nil, spec))
	if resharded.Hits != base.Hits || resharded.Misses != base.Misses ||
		resharded.Fills != base.Fills || resharded.Evictions != base.Evictions ||
		resharded.ReservePeak != base.ReservePeak {
		t.Fatalf("resharding changed cache behaviour:\nbase      %+v\nresharded %+v", base, resharded)
	}
	if resharded.MigrationTime != 0 {
		t.Fatalf("co-located migration priced %g", resharded.MigrationTime)
	}
	if resharded.FinalShards != 2 {
		t.Fatalf("final shards %d, want 2", resharded.FinalShards)
	}
	if resharded.Resharding.ResidentMoved == 0 || resharded.Resharding.HoldsMoved == 0 {
		t.Fatalf("no state re-bucketed: %+v", resharded.Resharding)
	}
}

// TestReshardMigrationPriced is the acceptance criterion: scaling
// S=1 -> 4 across cluster2x2 mid-run must report MigrationTime > 0
// while preserving every cache statistic (no row loss anywhere), and
// the migration stall must extend Wall beyond the per-iteration sum.
func TestReshardMigrationPriced(t *testing.T) {
	model := dlrm.DefaultConfig()
	model.RowsPerTable = 50_000
	model.BatchSize = 128

	spec, err := ParseReshardSpec("10:4")
	if err != nil {
		t.Fatal(err)
	}
	topo := hw.Cluster(2, 2)
	base := runSP(t, reshardEnv(t, model, 1, topo, ReshardSpec{}))
	resharded := runSP(t, reshardEnv(t, model, 1, topo, spec))
	if resharded.Hits != base.Hits || resharded.Misses != base.Misses ||
		resharded.Fills != base.Fills || resharded.Evictions != base.Evictions ||
		resharded.ReservePeak != base.ReservePeak {
		t.Fatalf("distributed resharding changed cache behaviour:\nbase      %+v\nresharded %+v", base, resharded)
	}
	if resharded.MigrationTime <= 0 {
		t.Fatal("cross-node migration not priced")
	}
	if resharded.MigrationTime != resharded.Resharding.Seconds {
		t.Fatalf("MigrationTime %g != Resharding.Seconds %g", resharded.MigrationTime, resharded.Resharding.Seconds)
	}
	if resharded.Resharding.Bytes <= 0 || resharded.Resharding.Rounds <= 0 {
		t.Fatalf("migration traffic not metered: %+v", resharded.Resharding)
	}
	// After the boundary the S=4 placement pays coordination the S=1
	// run never did.
	if resharded.CoordTime <= base.CoordTime {
		t.Fatalf("post-reshard coordination %g not above base %g", resharded.CoordTime, base.CoordTime)
	}
	// Migration must also not be free on the clock: Wall includes it on
	// top of the cycle times.
	if resharded.Wall <= base.Wall {
		t.Fatalf("resharded wall %g not above base %g despite coordination + migration", resharded.Wall, base.Wall)
	}
}

// TestReshardStrawman: the unpipelined dynamic engine reshard-steps the
// same way (both dynamic-cache engines share the machinery).
func TestReshardStrawman(t *testing.T) {
	model := dlrm.DefaultConfig()
	model.RowsPerTable = 50_000
	model.BatchSize = 128

	spec, err := ParseReshardSpec("8:4")
	if err != nil {
		t.Fatal(err)
	}
	run := func(env *Env) *Report {
		t.Helper()
		eng, err := NewStrawMan(env, 0.02, cache.LRU)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := eng.Run(20)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	base := run(reshardEnv(t, model, 1, hw.Cluster(2, 2), ReshardSpec{}))
	resharded := run(reshardEnv(t, model, 1, hw.Cluster(2, 2), spec))
	if resharded.Hits != base.Hits || resharded.Misses != base.Misses || resharded.Evictions != base.Evictions {
		t.Fatalf("strawman resharding changed cache behaviour:\nbase      %+v\nresharded %+v", base, resharded)
	}
	if resharded.MigrationTime <= 0 || resharded.FinalShards != 4 {
		t.Fatalf("strawman reshard not executed/priced: mig %g, final shards %d",
			resharded.MigrationTime, resharded.FinalShards)
	}
}

// TestReshardFunctionalEquivalence extends the bitwise model-state
// guarantee across reshard boundaries: growing and shrinking the shard
// count mid-training must not change a single trained float.
func TestReshardFunctionalEquivalence(t *testing.T) {
	const iters = 30
	base := newTestEnv(t, trace.Medium, 7)
	runAndFlush(t, NewHybrid(base), iters)

	spec, err := ParseReshardSpec("8:4,16:2")
	if err != nil {
		t.Fatal(err)
	}
	env, err := NewEnv(EnvConfig{
		Model:      smallModel(),
		System:     hw.DefaultSystem(),
		Class:      trace.Medium,
		Seed:       7,
		Functional: true,
		Reshard:    spec,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewScratchPipe(env, ScratchPipeOptions{CacheFrac: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	rep := runAndFlush(t, eng, iters)
	if rep.FinalShards != 2 || rep.Resharding.Events == 0 {
		t.Fatalf("schedule did not execute: %+v", rep.Resharding)
	}
	assertSameModelState(t, "resharded-scratchpipe", env, base)
}

// TestReshardLoadPolicy: the load-triggered policy must grow the shard
// count on a skewed locality class and hold still on a uniform one.
func TestReshardLoadPolicy(t *testing.T) {
	spec := ReshardSpec{LoadMax: 4}
	// Big enough batches that every check window clears the policy's
	// minimum-sample guard (smallModel's windows are all noise).
	model := dlrm.DefaultConfig()
	model.RowsPerTable = 50_000
	model.BatchSize = 256
	run := func(class trace.Class) *Report {
		t.Helper()
		env, err := NewEnv(EnvConfig{
			Model:    model,
			System:   hw.DefaultSystem(),
			Class:    class,
			Seed:     42,
			Topology: hw.MultiSocket(4),
			Reshard:  spec,
		})
		if err != nil {
			t.Fatal(err)
		}
		eng, err := NewScratchPipe(env, ScratchPipeOptions{CacheFrac: 0.05})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := eng.Run(40)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	hot := run(trace.High)
	if hot.FinalShards < 2 {
		t.Fatalf("load policy never grew on High locality: final shards %d", hot.FinalShards)
	}
	if hot.MigrationTime <= 0 {
		t.Fatal("load-triggered growth across NUMA nodes not priced")
	}
	uniform := run(trace.Random)
	if uniform.FinalShards != 1 {
		t.Fatalf("load policy grew to %d shards on a uniform trace", uniform.FinalShards)
	}
}

// TestReshardValidationEngine: malformed schedules and policy
// conflicts are rejected at construction, not mid-run.
func TestReshardValidationEngine(t *testing.T) {
	if _, err := NewEnv(EnvConfig{
		Model:   smallModel(),
		System:  hw.DefaultSystem(),
		Reshard: ReshardSpec{Steps: []ReshardStep{{Iter: 5, Shards: 0}}},
	}); err == nil {
		t.Fatal("zero-shard reshard step accepted by NewEnv")
	}
	if _, err := NewEnv(EnvConfig{
		Model:   smallModel(),
		System:  hw.DefaultSystem(),
		Reshard: ReshardSpec{LoadMax: 1},
	}); err == nil {
		t.Fatal("load cap 1 accepted by NewEnv")
	}
	env := reshardEnv(t, smallModel(), 1, nil, ReshardSpec{Steps: []ReshardStep{{Iter: 5, Shards: 4}}})
	if _, err := NewScratchPipe(env, ScratchPipeOptions{CacheFrac: 0.05, Policy: cache.LFU}); err == nil {
		t.Fatal("reshard schedule with LFU accepted (migration is LRU-specific)")
	}
	if _, err := NewStrawMan(env, 0.05, cache.RandomPolicy); err == nil {
		t.Fatal("reshard schedule with random policy accepted")
	}
}
