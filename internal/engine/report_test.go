package engine

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/hw"
	"repro/internal/trace"
)

// TestTimingModeIndependence: simulated performance derives only from
// sparse-ID event counts, so a functional run and a metadata run of the
// same seed must report identical timing — the guarantee that lets the
// paper-scale experiments run in metadata mode.
func TestTimingModeIndependence(t *testing.T) {
	build := func(functional bool) *Env {
		env, err := NewEnv(EnvConfig{
			Model:      smallModel(),
			System:     hw.DefaultSystem(),
			Class:      trace.Medium,
			Seed:       61,
			Functional: functional,
		})
		if err != nil {
			t.Fatal(err)
		}
		return env
	}
	for name, mk := range map[string]func(*Env) (Engine, error){
		"hybrid":   func(e *Env) (Engine, error) { return NewHybrid(e), nil },
		"static":   func(e *Env) (Engine, error) { return NewStaticCache(e, 0.05) },
		"strawman": func(e *Env) (Engine, error) { return NewStrawMan(e, 0.05, cache.LRU) },
		"scratchpipe": func(e *Env) (Engine, error) {
			return NewScratchPipe(e, ScratchPipeOptions{CacheFrac: 0.05})
		},
		"multigpu": func(e *Env) (Engine, error) { return NewMultiGPU(e) },
	} {
		engF, err := mk(build(true))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		engM, err := mk(build(false))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		repF, err := engF.Run(15)
		if err != nil {
			t.Fatalf("%s functional: %v", name, err)
		}
		repM, err := engM.Run(15)
		if err != nil {
			t.Fatalf("%s metadata: %v", name, err)
		}
		if repF.Wall != repM.Wall || repF.IterTime != repM.IterTime {
			t.Errorf("%s: timing differs across modes: wall %v vs %v, iter %v vs %v",
				name, repF.Wall, repM.Wall, repF.IterTime, repM.IterTime)
		}
		if repF.Hits != repM.Hits || repF.Misses != repM.Misses {
			t.Errorf("%s: cache stats differ across modes", name)
		}
	}
}

// TestReportInvariants checks the accounting identities every report must
// satisfy.
func TestReportInvariants(t *testing.T) {
	env := newTestEnv(t, trace.High, 67)
	eng, err := NewScratchPipe(env, ScratchPipeOptions{CacheFrac: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := eng.Run(20)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Iters != 20 {
		t.Errorf("Iters = %d", rep.Iters)
	}
	if rep.Wall <= 0 || rep.IterTime <= 0 {
		t.Errorf("non-positive time: wall %v iter %v", rep.Wall, rep.IterTime)
	}
	// Queries = hits + misses; hit rate within [0,1].
	if hr := rep.HitRate(); hr < 0 || hr > 1 {
		t.Errorf("hit rate %v", hr)
	}
	// A 6-deep pipeline needs 5 fill cycles plus 5 drain cycles around
	// the steady region.
	if rep.FillCycles != 10 {
		t.Errorf("fill+drain cycles = %d, want 10", rep.FillCycles)
	}
	// Steady-state cycle stats digest the per-cycle walls.
	if rep.CycleStats.Count != 15 {
		t.Errorf("steady cycles = %d, want 15", rep.CycleStats.Count)
	}
	if rep.CycleStats.Max < rep.CycleStats.P50 || rep.CycleStats.P50 < rep.CycleStats.Min {
		t.Errorf("cycle stats not ordered: %+v", rep.CycleStats)
	}
	// Fills == unique misses <= occurrence misses; evictions <= fills.
	if rep.Fills > rep.Misses {
		t.Errorf("fills %d > occurrence misses %d", rep.Fills, rep.Misses)
	}
	if rep.Evictions > rep.Fills {
		t.Errorf("evictions %d > fills %d", rep.Evictions, rep.Fills)
	}
}

// TestCPUContentionNeverFaster: the contention model is a pessimistic
// bound, so it can only increase iteration time.
func TestCPUContentionNeverFaster(t *testing.T) {
	run := func(contention bool) *Report {
		env := newTestEnv(t, trace.Random, 71)
		eng, err := NewScratchPipe(env, ScratchPipeOptions{
			CacheFrac:     0.05,
			CPUContention: contention,
		})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := eng.Run(20)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	base := run(false)
	cont := run(true)
	if cont.IterTime < base.IterTime {
		t.Errorf("contention model faster than optimistic: %v < %v", cont.IterTime, base.IterTime)
	}
}

// TestColdStartSlowerStart: skipping the prewarm must produce at least as
// many fills (compulsory misses) as a warmed cache.
func TestColdStartSlowerStart(t *testing.T) {
	run := func(cold bool) *Report {
		env := newTestEnv(t, trace.High, 73)
		eng, err := NewScratchPipe(env, ScratchPipeOptions{
			CacheFrac: 0.05,
			ColdStart: cold,
		})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := eng.Run(15)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	warm := run(false)
	cold := run(true)
	if cold.Fills < warm.Fills {
		t.Errorf("cold start produced fewer fills (%d) than warm (%d)", cold.Fills, warm.Fills)
	}
}

// TestMultiGPUScratchPipe quantifies the §VI-G discussion: with 8 GPUs,
// ScratchPipe's Train stage shrinks, but on a random trace the CPU-side
// Collect bound stays — so the speedup is far below 8x (the paper's
// "underutilize the abundant GPU compute" argument) — while the training
// math is still bitwise identical.
func TestMultiGPUScratchPipe(t *testing.T) {
	run := func(gpus int, seed int64) (*Report, *Env) {
		env := newTestEnv(t, trace.Random, seed)
		eng, err := NewScratchPipe(env, ScratchPipeOptions{
			CacheFrac: 0.05,
			NumGPUs:   gpus,
		})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := eng.Run(25)
		if err != nil {
			t.Fatal(err)
		}
		if err := eng.Flush(); err != nil {
			t.Fatal(err)
		}
		return rep, env
	}
	one, envOne := run(1, 89)
	eight, envEight := run(8, 89)
	if eight.IterTime > one.IterTime {
		t.Errorf("8-GPU ScratchPipe slower than 1-GPU: %v vs %v", eight.IterTime, one.IterTime)
	}
	if one.IterTime/eight.IterTime > 6 {
		t.Errorf("8-GPU speedup %.2fx implausibly near-linear on a CPU-bound trace",
			one.IterTime/eight.IterTime)
	}
	assertSameModelState(t, "multigpu-scratchpipe", envEight, envOne)
}

// TestRunValidation: engines reject nonsensical iteration counts.
func TestRunValidation(t *testing.T) {
	env := newTestEnv(t, trace.Low, 79)
	eng := NewHybrid(env)
	if _, err := eng.Run(0); err == nil {
		t.Error("Run(0) accepted")
	}
	if _, err := eng.Run(-3); err == nil {
		t.Error("Run(-3) accepted")
	}
}

// TestStaticCacheFracBounds: configuration validation.
func TestStaticCacheFracBounds(t *testing.T) {
	env := newTestEnv(t, trace.Low, 83)
	if _, err := NewStaticCache(env, -0.1); err == nil {
		t.Error("negative cache fraction accepted")
	}
	if _, err := NewStaticCache(env, 1.5); err == nil {
		t.Error("cache fraction > 1 accepted")
	}
	env2 := newTestEnv(t, trace.Low, 83)
	if _, err := NewStrawMan(env2, 0, cache.LRU); err == nil {
		t.Error("zero cache fraction accepted for strawman")
	}
}

// TestMultiGPUCapacityCheck: the multi-GPU engine refuses models that do
// not fit the pooled HBM (the feasibility requirement §VI-F states).
func TestMultiGPUCapacityCheck(t *testing.T) {
	model := smallModel()
	model.RowsPerTable = 1 << 40 // absurd: ~8 PB of embeddings
	env, err := NewEnv(EnvConfig{
		Model:  model,
		System: hw.DefaultSystem(),
		Class:  trace.Low,
		Seed:   1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewMultiGPU(env); err == nil {
		t.Error("oversized model accepted by multi-GPU engine")
	}
}
