package engine

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/trace"
)

// ScratchPipeOptions tunes the pipelined engine.
type ScratchPipeOptions struct {
	// CacheFrac sizes the per-table scratchpad as a fraction of the CPU
	// table (the paper sweeps 2-10%).
	CacheFrac float64
	// Policy is the replacement policy among unprotected slots
	// (default LRU).
	Policy cache.PolicyKind
	// FutureWindow is the number of upcoming batches whose cached rows
	// the Plan stage pins (look-ahead). 0 selects the paper's 2; -1
	// disables the future window entirely (fault injection: this
	// reintroduces RAW-4).
	FutureWindow int
	// EvictionLookahead extends the dataset look-ahead beyond the
	// hazard window: the Plan stage additionally reads the IDs of
	// batches at distance (FutureWindow, EvictionLookahead] and avoids
	// evicting their cached rows when any other victim exists. This is
	// the "look forward" principle applied to replacement quality
	// rather than correctness; 0 disables it.
	EvictionLookahead int
	// Parallel executes each cycle's six stages in separate goroutines;
	// any hold-discipline bug then becomes a data race.
	Parallel bool
	// Hazard, when non-nil, records every row/slot access for conflict
	// checking (tests only: it is O(accesses) per cycle).
	Hazard *core.HazardChecker
	// UnsafeReleaseAt releases a batch's hold protection when it enters
	// the given stage instead of [Train]. It exists purely for fault
	// injection: releasing early shrinks the effective past-window and
	// reintroduces the RAW-2/3 hazards, which the tests then observe
	// through the HazardChecker. The zero value selects [Train].
	UnsafeReleaseAt core.Stage
	// ColdStart skips the steady-state cache prewarm (measurements then
	// include the compulsory-miss ramp).
	ColdStart bool
	// CPUContention models the pessimistic case in which the CPU-memory
	// components of concurrently executing stages (one batch's
	// [Collect] gathers, another's [Insert] write-backs) cannot overlap
	// and serialize on the single socket's DRAM bandwidth; the default
	// optimistic model lets them proceed concurrently, as the paper's
	// measured stage latencies imply.
	CPUContention bool
	// NumGPUs > 1 models the §VI-G multi-GPU ScratchPipe: tables are
	// partitioned table-wise, each GPU runs its own per-table cache
	// managers, and the MLPs train data-parallel. GPU-side stage work
	// and PCIe traffic scale down with the GPU count; the CPU-side
	// gathers and write-backs do not (one socket feeds all GPUs) —
	// which is why the paper expects this design point to underutilize
	// GPU compute at low locality. Functional training is unchanged
	// (table-wise parallelism reorders no float operation). Zero
	// selects the paper's single-GPU design.
	NumGPUs int
	// CoordOverlap pipelines distributed coordination with the cycle:
	// after each cycle retires, every table's shard manager speculatively
	// resolves the NEXT Plan's eviction candidates against a snapshot of
	// its stamp clock (shard.Manager.SpeculatePlan), so when that Plan
	// runs it only waits for the non-speculable confirm/transfer rounds.
	// A snapshot invalidated by resharding, faults, or a mis-projected
	// release rolls back and the Plan replays the sweep from scratch —
	// plans, traffic counters, and total coordination Seconds are
	// bit-identical either way; only the critical share charged to the
	// [Plan] stage shrinks (DESIGN.md §12). No effect under co-located
	// placement or Shards == 1.
	CoordOverlap bool
}

func (o *ScratchPipeOptions) applyDefaults() {
	if o.Policy == "" {
		o.Policy = cache.LRU
	}
	if o.FutureWindow == 0 {
		_, o.FutureWindow = core.DefaultWindows()
	} else if o.FutureWindow < 0 {
		o.FutureWindow = 0
	}
	if o.UnsafeReleaseAt == core.StageLoad {
		o.UnsafeReleaseAt = core.StageTrain
	}
}

// pastWindow is the effective past-window width: a batch's slots stay
// protected from its [Plan] until it enters the release stage, so the
// width is the pipeline distance between the two (3 for the paper's
// release-at-[Train]).
func (o ScratchPipeOptions) pastWindow() int {
	return int(o.UnsafeReleaseAt-core.StagePlan) - 1
}

// ScratchPipe is the paper's proposed engine (§IV-C, Figure 10): the
// six-stage pipelined scratchpad runtime. Every cycle retires one training
// iteration whose embedding traffic is serviced entirely from GPU memory,
// while the Collect/Exchange/Insert stages of younger batches prefetch
// their working sets in the background. Steady-state iteration latency is
// therefore the *maximum* stage latency rather than the sum.
type ScratchPipe struct {
	env    *Env
	opts   ScratchPipeOptions
	dyn    *dynamicState
	loader *trace.Loader
	pipe   *core.Pipeline
}

// NewScratchPipe builds the pipelined engine.
func NewScratchPipe(env *Env, opts ScratchPipeOptions) (*ScratchPipe, error) {
	opts.applyDefaults()
	if opts.UnsafeReleaseAt <= core.StagePlan || opts.UnsafeReleaseAt > core.StageTrain {
		return nil, fmt.Errorf("engine: scratchpipe: release stage %s out of (Plan, Train]", opts.UnsafeReleaseAt)
	}
	if opts.EvictionLookahead < 0 {
		return nil, fmt.Errorf("engine: scratchpipe: negative eviction look-ahead")
	}
	if opts.NumGPUs < 0 {
		return nil, fmt.Errorf("engine: scratchpipe: negative GPU count")
	}
	if opts.NumGPUs == 0 {
		opts.NumGPUs = 1
	}
	dyn, err := newDynamicState(env, opts.CacheFrac, opts.Policy, opts.pastWindow(), opts.FutureWindow, opts.Hazard)
	if err != nil {
		return nil, err
	}
	dyn.gpus = opts.NumGPUs
	lookahead := opts.FutureWindow
	if opts.EvictionLookahead > lookahead {
		lookahead = opts.EvictionLookahead
	}
	loader, err := trace.NewLoader(env.Gen, lookahead)
	if err != nil {
		return nil, err
	}
	s := &ScratchPipe{env: env, opts: opts, dyn: dyn, loader: loader}
	if !opts.ColdStart {
		dyn.prewarm()
	}

	wrap := func(f func(*spJob) error) core.StageFunc {
		return func(_ int, job core.Job) error { return f(job.(*spJob)) }
	}
	var stages [core.NumStages]core.StageFunc
	stages[core.StageLoad] = nil // jobs are materialized by the run loop
	stages[core.StagePlan] = wrap(dyn.stagePlan)
	stages[core.StageCollect] = wrap(dyn.stageCollect)
	stages[core.StageExchange] = wrap(dyn.stageExchange)
	stages[core.StageInsert] = wrap(dyn.stageInsert)
	stages[core.StageTrain] = wrap(dyn.stageTrain)
	s.pipe = core.NewPipeline(stages, opts.Parallel)
	if opts.Hazard != nil {
		s.pipe.SetCycleStartHook(opts.Hazard.BeginCycle)
	}
	return s, nil
}

// Name implements Engine.
func (s *ScratchPipe) Name() string { return "scratchpipe" }

// Options returns the engine options (after defaulting).
func (s *ScratchPipe) Options() ScratchPipeOptions { return s.opts }

// Run implements Engine: injects n mini-batches, pipelines them to
// completion, and reports steady-state per-iteration latency.
func (s *ScratchPipe) Run(n int) (*Report, error) {
	if err := validateIters(n); err != nil {
		return nil, err
	}
	rep := &Report{Engine: s.Name(), Iters: n}
	var lossSum float64
	var steadyTime float64
	var steadyCycles int
	var cycleSeries metrics.Series

	runCycle := func(job *spJob) error {
		// Any in-flight speculation must land before the cycle touches
		// the managers (release, Plan) — this is the join point of the
		// overlap window.
		s.dyn.joinSpec()
		// The job about to enter [Train] stops holding its slots:
		// from this cycle's [Plan] onward they are fair eviction
		// game, exactly the paper's past-window arithmetic. (Fault
		// injection may move the release earlier; see
		// UnsafeReleaseAt.)
		if entering := s.pipe.AtStage(s.opts.UnsafeReleaseAt - 1); entering != nil {
			if err := s.dyn.release(entering.(*spJob)); err != nil {
				return err
			}
		}
		var injected core.Job
		if job != nil {
			injected = job
		}
		done, err := s.pipe.RunCycle(injected)
		if err != nil {
			return err
		}
		// Cycle latency = slowest concurrently executing stage; under
		// the contention model, additionally no shorter than the sum
		// of the executing stages' CPU-memory components.
		exec := s.pipe.LastExecuted()
		var cycleWall, cpuSum float64
		occupied := 0
		for st, j := range exec {
			if j == nil {
				continue
			}
			occupied++
			sj := j.(*spJob)
			if t := sj.stageTime[st]; t > cycleWall {
				cycleWall = t
			}
			cpuSum += sj.stageCPU[st]
		}
		if s.opts.CPUContention && cpuSum > cycleWall {
			cycleWall = cpuSum
		}
		// The coordination share hidden by speculation ran on the
		// inter-node links concurrently with this cycle's stages; the
		// cycle cannot retire before those rounds complete, so it floors
		// the wall (this is what keeps overlap honest rather than free).
		if pj := exec[core.StagePlan]; pj != nil {
			if h := pj.(*spJob).coordHidden; h > cycleWall {
				cycleWall = h
			}
		}
		rep.Wall += cycleWall
		if occupied == int(core.NumStages) {
			steadyTime += cycleWall
			steadyCycles++
			cycleSeries.Add(cycleWall)
		} else {
			rep.FillCycles++
		}
		if done != nil {
			j := done.(*spJob)
			lossSum += float64(j.loss)
			for st, t := range j.stageTime {
				rep.StageAvg[st] += t
			}
			rep.CoordTime += j.coord
			rep.CoordWallTime += j.coordWall
			rep.CPUBusy += j.cpuBusy
			rep.GPUBusy += j.gpuBusy
			// The batch has fully retired: recycle its plans and
			// buffers for an upcoming batch.
			s.dyn.recycleJob(j)
		}
		return nil
	}

	for it := 0; it < n; it++ {
		// Elastic resharding fires between Plans: in-flight batches'
		// hold state migrates with everything else, so the pipeline
		// does not drain and plans stay identical across the boundary.
		// Reshard/fault events mutate the managers, so the speculation
		// goroutine (if any) is joined first; the events then invalidate
		// its snapshot and the next Plan replays non-speculatively.
		s.dyn.joinSpec()
		if err := s.dyn.maybeReshard(it); err != nil {
			return nil, err
		}
		// Fault events fire at the same boundary: detection, evacuation
		// and recovery happen with batches still in flight.
		if err := s.dyn.maybeFault(it, rep.Wall); err != nil {
			return nil, err
		}
		job := s.dyn.newJob(s.loader, s.opts.FutureWindow, s.loader.Ahead())
		if err := runCycle(job); err != nil {
			return nil, err
		}
		s.maybeSpeculate(job)
	}
	for s.pipe.InFlight() > 0 {
		if err := runCycle(nil); err != nil {
			return nil, err
		}
	}

	s.dyn.aggregateCacheStats(rep)
	finalizeAverages(rep, n, lossSum)
	// Migration, fault and checkpoint stalls are episodic: they extend
	// the run's wall time but are kept out of the steady-state
	// iteration average.
	rep.Wall += rep.MigrationTime + rep.Downtime + rep.RecoveryTime + rep.CheckpointTime
	if rep.Wall > 0 {
		rep.Availability = 1 - (rep.Downtime+rep.RecoveryTime)/rep.Wall
	}
	if steadyCycles > 0 {
		rep.IterTime = steadyTime / float64(steadyCycles)
		rep.CycleStats = cycleSeries.Summarize()
	}
	// Figure 5-style buckets for cross-engine tables: at steady state
	// the CPU-side stages overlap training, so attribute the pipeline's
	// exposed latency to the GPU bucket and the cache-management stages
	// to the CPU buckets for breakdown reporting.
	rep.CPUEmbFwd = rep.StageAvg[core.StagePlan] + rep.StageAvg[core.StageCollect] + rep.StageAvg[core.StageExchange]
	rep.CPUEmbBwd = rep.StageAvg[core.StageInsert]
	rep.GPUTime = rep.StageAvg[core.StageTrain]
	return rep, nil
}

// maybeSpeculate launches the overlap window after a cycle that injected
// job: the job sits at [Load] and executes its Plan NEXT cycle, so a
// goroutine runs every table's SpeculatePlan against the job's own batch
// and look-ahead windows (captured by newJob, immutable from here on),
// projecting across the release the next cycle will perform first. The
// goroutine only reads the job plus each manager's own state, which
// nothing else touches until joinSpec.
func (s *ScratchPipe) maybeSpeculate(job *spJob) {
	if !s.opts.CoordOverlap || job == nil {
		return
	}
	d := s.dyn
	nt := d.env.Cfg.Model.NumTables
	// The next cycle releases the job currently parked at the stage
	// before the release stage (it executed that stage this cycle);
	// the projection must account for those holds dropping.
	rel := -1
	if entering := s.pipe.AtStage(s.opts.UnsafeReleaseAt - 1); entering != nil {
		rel = entering.(*spJob).batch.Seq
	}
	d.specWG.Add(1)
	go func() {
		defer d.specWG.Done()
		for t := 0; t < nt; t++ {
			uniq, _ := job.batch.UniqueWithCounts(t)
			d.sps[t].SpeculatePlan(job.batch.Seq, uniq, job.futT[t], job.hintT[t], rel)
		}
	}()
}

// joinSpec waits for the in-flight speculation goroutine, if any. Every
// path that mutates the shard managers (release, Plan, reshard, fault
// injection, flush) joins first.
func (d *dynamicState) joinSpec() { d.specWG.Wait() }

// Flush implements FlushTables.
func (s *ScratchPipe) Flush() error {
	s.dyn.joinSpec()
	return s.dyn.flush()
}
