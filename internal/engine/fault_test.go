package engine

import (
	"reflect"
	"testing"

	"repro/internal/dlrm"
	"repro/internal/hw"
	"repro/internal/shard"
	"repro/internal/trace"
)

// faultEnv builds a metadata-mode environment with a fault schedule and
// checkpoint interval.
func faultEnv(t *testing.T, model dlrm.Config, shards int, topo *hw.Topology, coord shard.CoordMode, plan hw.FaultPlan, ckpt int) *Env {
	t.Helper()
	env, err := NewEnv(EnvConfig{
		Model:        model,
		System:       hw.DefaultSystem(),
		Class:        trace.Medium,
		Seed:         42,
		Workers:      2,
		Shards:       shards,
		Topology:     topo,
		Placement:    hw.PlaceStripe,
		Coord:        coord,
		Faults:       plan,
		CkptInterval: ckpt,
	})
	if err != nil {
		t.Fatalf("NewEnv(faults=%q, ckpt=%d): %v", plan, ckpt, err)
	}
	return env
}

// mustFaultPlan parses a -fail schedule, failing the test on error.
func mustFaultPlan(t *testing.T, s string) hw.FaultPlan {
	t.Helper()
	plan, err := hw.ParseFaultPlan(s)
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

// smallFaultModel is the shared model for the fault-path tests.
func smallFaultModel() dlrm.Config {
	model := dlrm.DefaultConfig()
	model.RowsPerTable = 50_000
	model.BatchSize = 128
	return model
}

// TestFaultValidationEngine: malformed knob combinations are rejected
// at construction, not mid-run.
func TestFaultValidationEngine(t *testing.T) {
	if _, err := NewEnv(EnvConfig{
		Model:        smallModel(),
		System:       hw.DefaultSystem(),
		CkptInterval: -1,
	}); err == nil {
		t.Fatal("negative checkpoint interval accepted by NewEnv")
	}
	if _, err := NewEnv(EnvConfig{
		Model:  smallModel(),
		System: hw.DefaultSystem(),
		Faults: mustFaultPlan(t, "host1@5"),
	}); err == nil {
		t.Fatal("fault plan without a topology accepted by NewEnv")
	}
	if _, err := NewEnv(EnvConfig{
		Model:    smallModel(),
		System:   hw.DefaultSystem(),
		Shards:   4,
		Topology: hw.Cluster(2, 2),
		Faults:   mustFaultPlan(t, "host7@5"),
	}); err == nil {
		t.Fatal("fault plan addressing an absent host accepted by NewEnv")
	}
}

// TestFaultTopologyPristine: NewEnv clones the topology for an active
// plan, so the caller's graph never sees the mutations the schedule
// applies mid-run.
func TestFaultTopologyPristine(t *testing.T) {
	topo := hw.Cluster(2, 2)
	pristine := topo.Clone()
	env := faultEnv(t, smallFaultModel(), 4, topo, shard.CoordHier,
		mustFaultPlan(t, "host1@5"), 0)
	runSP(t, env)
	if !reflect.DeepEqual(topo, pristine) {
		t.Fatal("fault run mutated the caller's topology")
	}
}

// TestEmptyFaultPlanBitIdentical is the satellite equivalence
// guarantee: an explicitly threaded empty FaultPlan (and zero
// checkpoint interval) must leave the whole Report bit-identical to a
// run that never heard of faults, at every shard count and under every
// coordination protocol.
func TestEmptyFaultPlanBitIdentical(t *testing.T) {
	model := smallFaultModel()
	topo := hw.Cluster(2, 2)
	for _, shards := range []int{1, 2, 4} {
		for _, coord := range []shard.CoordMode{shard.CoordExact, shard.CoordBatched, shard.CoordHier, shard.CoordApprox} {
			base := runSP(t, reshardEnv(t, model, shards, topo, ReshardSpec{}))
			withPlan := runSP(t, faultEnv(t, model, shards, topo, coord, hw.FaultPlan{}, 0))
			// Reshard/fault knobs aside, reshardEnv defaults to exact
			// coordination: compare full reports only there, cache
			// statistics everywhere (approx may evict differently by
			// design, exact/batched/hier may not).
			if coord == shard.CoordExact && !reflect.DeepEqual(base, withPlan) {
				t.Fatalf("S=%d %s: empty fault plan changed the report:\nbase  %+v\nfault %+v",
					shards, coord, base, withPlan)
			}
			if withPlan.Downtime != 0 || withPlan.RecoveryTime != 0 || withPlan.CheckpointTime != 0 ||
				withPlan.LostResidency != 0 || withPlan.Evac != (shard.EvacStats{}) {
				t.Fatalf("S=%d %s: empty fault plan accrued fault bookkeeping: %+v", shards, coord, withPlan)
			}
			if withPlan.Availability != 1 {
				t.Fatalf("S=%d %s: fault-free availability %g, want 1", shards, coord, withPlan.Availability)
			}
			if coord != shard.CoordApprox {
				if withPlan.Hits != base.Hits || withPlan.Misses != base.Misses ||
					withPlan.Fills != base.Fills || withPlan.Evictions != base.Evictions {
					t.Fatalf("S=%d %s: empty fault plan changed cache behaviour:\nbase  %+v\nfault %+v",
						shards, coord, base, withPlan)
				}
			}
		}
	}
}

// TestFaultIdleHostKillNoOp is the second satellite equivalence: a
// fleet whose shards all live on host 0 loses idle host 1 — detection
// is priced (downtime, availability < 1) but residency, evacuation,
// and every cache statistic are untouched.
func TestFaultIdleHostKillNoOp(t *testing.T) {
	model := smallFaultModel()
	topo := hw.Cluster(2, 2)
	// S=2 stripe homes shards on nodes 0 and 1 — both host 0.
	base := runSP(t, faultEnv(t, model, 2, topo, shard.CoordExact, hw.FaultPlan{}, 0))
	killed := runSP(t, faultEnv(t, model, 2, topo, shard.CoordExact,
		mustFaultPlan(t, "host1@10"), 0))
	if killed.Downtime <= 0 {
		t.Fatal("idle-host death not detected (no downtime)")
	}
	if killed.Availability >= 1 {
		t.Fatalf("availability %g despite downtime", killed.Availability)
	}
	if killed.Evac != (shard.EvacStats{}) || killed.LostResidency != 0 || killed.RecoveryTime != 0 {
		t.Fatalf("idle-host death recovered something: %+v", killed.Evac)
	}
	if killed.Hits != base.Hits || killed.Misses != base.Misses ||
		killed.Fills != base.Fills || killed.Evictions != base.Evictions {
		t.Fatalf("idle-host death changed cache behaviour:\nbase   %+v\nkilled %+v", base, killed)
	}
	if killed.IterTime != base.IterTime || killed.CoordTime != base.CoordTime {
		t.Fatalf("idle-host death changed steady-state timing: %g/%g vs %g/%g",
			killed.IterTime, killed.CoordTime, base.IterTime, base.CoordTime)
	}
}

// TestFaultHostKillRecovery is the acceptance scenario: a cluster2x2
// S=4 run loses host 1 mid-sweep, evacuates its shards to host 0,
// reprices the lost residency as cold misses, and completes with a
// nonzero recovery bill and an availability fraction.
func TestFaultHostKillRecovery(t *testing.T) {
	model := smallFaultModel()
	topo := hw.Cluster(2, 2)
	base := runSP(t, faultEnv(t, model, 4, topo, shard.CoordHier, hw.FaultPlan{}, 0))
	killed := runSP(t, faultEnv(t, model, 4, topo, shard.CoordHier,
		mustFaultPlan(t, "host1@10"), 0))

	if killed.Iters != base.Iters {
		t.Fatalf("faulted run completed %d iters, want %d", killed.Iters, base.Iters)
	}
	if killed.Downtime <= 0 || killed.RecoveryTime <= 0 {
		t.Fatalf("downtime %g / recovery %g, want both > 0", killed.Downtime, killed.RecoveryTime)
	}
	if killed.Availability <= 0 || killed.Availability >= 1 {
		t.Fatalf("availability %g, want in (0, 1)", killed.Availability)
	}
	ev := killed.Evac
	if ev.Events != int64(model.NumTables) || ev.ShardsEvacuated != int64(2*model.NumTables) {
		t.Fatalf("evacuation events/shards %d/%d, want %d/%d",
			ev.Events, ev.ShardsEvacuated, model.NumTables, 2*model.NumTables)
	}
	if killed.LostResidency == 0 || killed.LostResidency != ev.LostResident {
		t.Fatalf("lost residency %d (evac %d), want equal and > 0", killed.LostResidency, ev.LostResident)
	}
	if ev.RestoredResident != 0 {
		t.Fatal("uncheckpointed kill restored residency")
	}
	// The lost residency reprices as extra cold misses after the kill.
	if killed.Misses <= base.Misses {
		t.Fatalf("faulted misses %d not above fault-free %d despite lost residency", killed.Misses, base.Misses)
	}
	// Wall absorbs the episodic bill on top of the cycle times.
	if killed.Wall <= base.Wall {
		t.Fatalf("faulted wall %g not above base %g", killed.Wall, base.Wall)
	}
}

// TestFaultCheckpointRestore: the same kill with checkpointing on
// preserves residency (restored, not lost) and prices the flushes and
// the replay back to the recovery point.
func TestFaultCheckpointRestore(t *testing.T) {
	model := smallFaultModel()
	topo := hw.Cluster(2, 2)
	plan := mustFaultPlan(t, "host1@10")
	dropped := runSP(t, faultEnv(t, model, 4, topo, shard.CoordHier, plan, 0))
	restored := runSP(t, faultEnv(t, model, 4, topo, shard.CoordHier, plan, 4))

	if restored.CheckpointTime <= 0 {
		t.Fatal("checkpoint flushes not priced")
	}
	if restored.LostResidency != 0 {
		t.Fatalf("checkpointed kill lost %d rows", restored.LostResidency)
	}
	if restored.Evac.RestoredResident == 0 {
		t.Fatal("checkpointed kill restored nothing")
	}
	// Restored residency means the post-kill Plans do NOT pay the cold
	// misses the uncheckpointed run does.
	if restored.Misses >= dropped.Misses {
		t.Fatalf("checkpointed misses %d not below uncheckpointed %d", restored.Misses, dropped.Misses)
	}
	// Checkpointing alone (no faults) prices flushes but changes no
	// cache statistic.
	clean := runSP(t, faultEnv(t, model, 4, topo, shard.CoordHier, hw.FaultPlan{}, 4))
	base := runSP(t, faultEnv(t, model, 4, topo, shard.CoordHier, hw.FaultPlan{}, 0))
	if clean.CheckpointTime <= 0 || clean.Availability != 1 {
		t.Fatalf("fault-free checkpointing: flush %g, availability %g", clean.CheckpointTime, clean.Availability)
	}
	if clean.Hits != base.Hits || clean.Misses != base.Misses || clean.Evictions != base.Evictions {
		t.Fatal("checkpointing changed cache behaviour without any fault")
	}
}

// TestFaultLinkPartitionDegrades: while hosts are partitioned the
// coordinator degrades to approx with divergence measured, then heals
// with a priced stamp re-sync; a degrade event only reprices links.
func TestFaultLinkPartitionDegrades(t *testing.T) {
	model := smallFaultModel()
	topo := hw.Cluster(2, 2)
	base := runSP(t, faultEnv(t, model, 4, topo, shard.CoordHier, hw.FaultPlan{}, 0))
	cut := runSP(t, faultEnv(t, model, 4, topo, shard.CoordHier,
		mustFaultPlan(t, "link:host0-host1@8-16"), 0))

	if cut.Iters != base.Iters {
		t.Fatalf("partitioned run completed %d iters, want %d", cut.Iters, base.Iters)
	}
	if cut.Downtime <= 0 {
		t.Fatal("partition not detected")
	}
	// 8 degraded Plans per table (iterations 7..14, struck at the
	// boundary before iteration 8 and healed before 16).
	if cut.CoordDivergence.Plans != int64(8*model.NumTables) {
		t.Fatalf("degraded-mode divergence compared %d plans, want %d",
			cut.CoordDivergence.Plans, 8*model.NumTables)
	}
	// Heal prices the stamp re-sync into recovery.
	if cut.RecoveryTime <= 0 {
		t.Fatal("post-heal stamp re-sync not priced")
	}
	if cut.Evac.Events != 0 {
		t.Fatal("partition evacuated shards")
	}

	// A degrade event keeps the links up: no downtime, no protocol
	// change, coordination just pays more while it lasts.
	slow := runSP(t, faultEnv(t, model, 4, topo, shard.CoordHier,
		mustFaultPlan(t, "degrade:host0-host1@8-16x8"), 0))
	if slow.Downtime != 0 || slow.RecoveryTime != 0 {
		t.Fatalf("degrade billed downtime %g / recovery %g", slow.Downtime, slow.RecoveryTime)
	}
	if slow.CoordDivergence.Plans != 0 {
		t.Fatal("degrade switched protocols")
	}
	if slow.CoordTime <= base.CoordTime {
		t.Fatalf("degraded links did not raise coordination: %g vs %g", slow.CoordTime, base.CoordTime)
	}
	if slow.Hits != base.Hits || slow.Misses != base.Misses || slow.Evictions != base.Evictions {
		t.Fatal("degrade changed cache behaviour")
	}
}

// TestFaultAggregatorReelection: losing a host aggregator triggers a
// priced re-election round under the hier protocol.
func TestFaultAggregatorReelection(t *testing.T) {
	model := smallFaultModel()
	topo := hw.Cluster(2, 2)
	rep := runSP(t, faultEnv(t, model, 4, topo, shard.CoordHier,
		mustFaultPlan(t, "agg0@10"), 0))
	if rep.Coord.ReelectRounds == 0 || rep.Coord.ReelectBytes <= 0 {
		t.Fatalf("re-election not metered: %+v", rep.Coord)
	}
	if rep.Downtime <= 0 || rep.RecoveryTime <= 0 {
		t.Fatalf("aggregator loss not billed: down %g recovery %g", rep.Downtime, rep.RecoveryTime)
	}
}

// TestFaultStrawman: the unpipelined dynamic engine survives the same
// kill (both engines share the orchestration).
func TestFaultStrawman(t *testing.T) {
	model := smallFaultModel()
	topo := hw.Cluster(2, 2)
	env := faultEnv(t, model, 4, topo, shard.CoordHier, mustFaultPlan(t, "host1@10"), 0)
	eng, err := NewStrawMan(env, 0.02, "lru")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := eng.Run(24)
	if err != nil {
		t.Fatal(err)
	}
	if rep.RecoveryTime <= 0 || rep.LostResidency == 0 {
		t.Fatalf("strawman kill not recovered: recovery %g, lost %d", rep.RecoveryTime, rep.LostResidency)
	}
	if rep.Availability <= 0 || rep.Availability >= 1 {
		t.Fatalf("strawman availability %g, want in (0, 1)", rep.Availability)
	}
}
