package engine

import (
	"fmt"
	"sync"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/embed"
	"repro/internal/hw"
	"repro/internal/par"
	"repro/internal/shard"
	"repro/internal/tensor"
	"repro/internal/trace"
)

// dynamicState is the machinery shared by the two dynamic-cache engines
// (straw-man and ScratchPipe): per-table scratchpad managers, the
// functional GPU storage arrays, and the five stage implementations with
// their timing formulas. The straw-man executes the stages back-to-back;
// ScratchPipe runs them through the pipeline.
//
// Each table's control plane is a shard.Manager: with Shards == 1 it is
// the unsharded core scratchpad; with Shards > 1 its ID space is
// hash-partitioned across socket shards that plan concurrently (within a
// table) while the per-table fan-out parallelizes across tables, with
// plans and statistics identical at every shard/worker count.
type dynamicState struct {
	env  *Env
	cost costModel
	// pool fans per-table work across workers; tables are fully
	// independent (separate scratchpads, storage, CPU tables).
	pool    *par.Pool
	sps     []*shard.Manager
	storage []*tensor.Matrix // per table: TotalSlots x dim (functional mode)
	// stateStorage shadows storage for per-row optimizer state: the
	// scratchpad caches optimizer accumulators with the same slot
	// assignment, prefetching them at [Collect] and writing them back
	// at [Insert] exactly like the embedding rows.
	stateStorage []*tensor.Matrix
	hazard       *core.HazardChecker
	// jobPool recycles spJobs (and, through Scratchpad.Recycle, their
	// plans) once batches retire, keeping the steady-state cycle free
	// of per-batch allocations.
	jobPool []*spJob
	// gpus > 1 models the §VI-G multi-GPU extension: tables are
	// partitioned table-wise across gpus GPUs, each running its own
	// per-table cache manager. GPU-side stage work and PCIe traffic
	// divide across devices/links; the CPU-side gathers and write-backs
	// do NOT — the single socket's DRAM is shared, which is exactly why
	// the paper expects multi-GPU ScratchPipe to underutilize GPUs.
	gpus int

	// Overlapped-coordination state (scratchpipe.go maybeSpeculate):
	// specWG joins the speculation goroutine running behind the cycle
	// before anything else touches the shard managers.
	specWG sync.WaitGroup

	// Elastic-resharding state (reshard.go): reshardNext cursors the
	// static schedule, loadSnap is the load policy's last probe
	// snapshot, migrationSecs accumulates the modeled migration latency
	// across all reshard events and tables.
	reshardNext   int
	loadSnap      []int64
	migrationSecs float64

	// Fault-injection state (fault.go): pristineTopo is the restore
	// source for link heals, faultNext cursors the sorted schedule,
	// heals holds struck link events awaiting their heal iteration,
	// deadHosts accumulates host deaths, and partitions counts active
	// link partitions (the managers run degraded while > 0).
	// downtimeSecs/recoverySecs/ckptSecs feed Report.Downtime/
	// RecoveryTime/CheckpointTime; lastCkpt is the iteration of the
	// most recent priced checkpoint flush (-1 before the first).
	pristineTopo *hw.Topology
	faultNext    int
	heals        []hw.FaultEvent
	deadHosts    map[int]bool
	partitions   int
	downtimeSecs float64
	recoverySecs float64
	ckptSecs     float64
	lastCkpt     int
}

// spJob is the per-mini-batch pipeline state (core.Job).
type spJob struct {
	batch *trace.Batch
	// futT[t][k] is table t's ID list of the batch k+1 positions ahead
	// (the hazard window), captured at Load time from the dataset
	// look-ahead; hintT carries batches beyond the hazard window for
	// eviction-preference hints. Stored per table so each table's Plan
	// reads its own column without per-call projection buffers.
	futT  [][][]int64
	hintT [][][]int64
	plans []*core.PlanResult
	// fillVals/evictVals stage the embedding payloads between Collect
	// and Insert (the data "crossing PCIe" at Exchange). Indexed per
	// table, concatenated row-major. fillState/evictState carry the
	// optimizer-state rows of the same schedule.
	fillVals   [][]float32
	evictVals  [][]float32
	fillState  [][]float32
	evictState [][]float32
	// tCPU/tGPU are per-table scratch accumulators for the parallel
	// fan-outs. Stage bodies write tCPU[t]/tGPU[t]; the reduction runs
	// serially in table order afterward, so a parallel run sums floats
	// in exactly the order Workers=1 does (bit-identical timing).
	tCPU, tGPU []float64
	// tCoord collects each table's cross-node shard-coordination
	// latency for the Plan just executed; coord accumulates the batch's
	// total (zero under co-located placement). tCoordCrit/tCoordWall
	// are its overlapped-coordination companions: the critical share
	// the Plan actually waited for (== tCoord unless a speculation was
	// adopted) and the message plane's measured wall twin. coordHidden
	// is the batch's speculation-hidden share (coord - critical): it
	// occupies the coordinator concurrently with the cycle's other
	// stages, so the cycle wall floors on it.
	tCoord      []float64
	tCoordCrit  []float64
	tCoordWall  []float64
	coord       float64
	coordWall   float64
	coordHidden float64
	stageTime   [core.NumStages]float64
	// stageCPU is the CPU-memory-bound component of each stage, used by
	// the optional contention model (concurrent stages sharing the one
	// CPU socket's DRAM bandwidth serialize in the worst case).
	stageCPU [core.NumStages]float64
	cpuBusy  float64
	gpuBusy  float64
	loss     float32
}

// Seq implements core.Job.
func (j *spJob) Seq() int { return j.batch.Seq }

func newDynamicState(env *Env, cacheFrac float64, policy cache.PolicyKind, past, future int, hazard *core.HazardChecker) (*dynamicState, error) {
	if cacheFrac <= 0 || cacheFrac > 1 {
		return nil, fmt.Errorf("engine: dynamic cache: cacheFrac %g out of (0,1]", cacheFrac)
	}
	cfg := env.Cfg.Model
	slots := int(cacheFrac * float64(cfg.RowsPerTable))
	if slots < 1 {
		slots = 1
	}
	d := &dynamicState{env: env, cost: costModel{env: env}, pool: env.Pool, hazard: hazard, gpus: 1, lastCkpt: -1}
	if env.Cfg.Faults.Active() {
		d.pristineTopo = env.Cfg.Topology.Clone()
		d.deadHosts = make(map[int]bool)
	}
	// Fault injection rides on the reshard machinery (evacuation is the
	// same-S corner of it), so an active fault plan also builds the
	// managers elastic.
	elastic := env.Cfg.Reshard.Active() || env.Cfg.Faults.Active()
	if elastic && env.Cfg.Reshard.MaxShards() > 1 && policy != cache.LRU {
		return nil, fmt.Errorf("engine: reshard schedule reaching %d shards requires the %q policy, got %q",
			env.Cfg.Reshard.MaxShards(), cache.LRU, policy)
	}
	maxUnique := cfg.BatchSize * cfg.Lookups
	// The shard fan-out nests inside the per-table fan-out, so its own
	// pool gets the per-table share of the Workers budget (total
	// concurrency stays ~Workers rather than Workers x Shards); on hosts
	// with more cores than tables the surplus parallelizes the shards.
	shardPool := par.New((env.Pool.Workers() + cfg.NumTables - 1) / cfg.NumTables)
	for t := 0; t < cfg.NumTables; t++ {
		spCfg := core.Config{
			Slots:        slots,
			Policy:       policy,
			PolicySeed:   env.Cfg.Seed + int64(2000+t),
			PastWindow:   past,
			FutureWindow: future,
		}
		spCfg.Reserve = core.WorstCaseReserve(spCfg, maxUnique)
		place, err := placementFor(env, t, env.Cfg.Shards)
		if err != nil {
			return nil, err
		}
		sp, err := shard.New(shard.Config{
			Scratchpad:   spCfg,
			Shards:       env.Cfg.Shards,
			Pool:         shardPool,
			Placement:    place,
			Coord:        env.Cfg.Coord,
			CoordQuantum: env.Cfg.CoordQuantum,
			Elastic:      elastic,
			LoadProbe:    env.Cfg.Reshard.LoadMax > 1,
		})
		if err != nil {
			return nil, err
		}
		d.sps = append(d.sps, sp)
		if env.Cfg.Functional {
			d.storage = append(d.storage, tensor.New(sp.TotalSlots(), cfg.EmbeddingDim))
			if env.StateDim > 0 {
				d.stateStorage = append(d.stateStorage, tensor.New(sp.TotalSlots(), env.StateDim))
			}
		}
	}
	return d, nil
}

// prewarm fills every table's scratchpad to capacity with draws from the
// trace distribution, approximating LRU steady-state content so measured
// iterations reflect warm-cache behaviour rather than a cold start. In
// functional mode the drawn rows' values are copied into GPU storage, so
// training results are unchanged.
func (d *dynamicState) prewarm() {
	dists := d.env.Gen.Dists()
	d.pool.ForEach(len(d.sps), func(t int) {
		sp := d.sps[t]
		rng := newSeededRand(d.env.Cfg.Seed + int64(3000+t))
		dist := dists[t]
		var onFill func(id int64, slot int32)
		if d.env.Cfg.Functional {
			tbl := d.env.Tables[t]
			storage := d.storage[t]
			var stateTbl *embed.Table
			var stateStorage *tensor.Matrix
			if d.stateStorage != nil {
				stateTbl = d.env.StateTables[t]
				stateStorage = d.stateStorage[t]
			}
			onFill = func(id int64, slot int32) {
				copy(storage.Row(int(slot)), tbl.Row(id))
				if stateStorage != nil {
					copy(stateStorage.Row(int(slot)), stateTbl.Row(id))
				}
			}
		}
		sp.PrewarmRows(d.env.Cfg.Model.RowsPerTable, func() int64 { return dist.Sample(rng) }, onFill)
	})
}

// getJob pops a recycled job or builds one with every per-table buffer
// preallocated.
func (d *dynamicState) getJob() *spJob {
	if n := len(d.jobPool); n > 0 {
		job := d.jobPool[n-1]
		d.jobPool[n-1] = nil
		d.jobPool = d.jobPool[:n-1]
		return job
	}
	nt := d.env.Cfg.Model.NumTables
	return &spJob{
		futT:       make([][][]int64, nt),
		hintT:      make([][][]int64, nt),
		plans:      make([]*core.PlanResult, nt),
		fillVals:   make([][]float32, nt),
		evictVals:  make([][]float32, nt),
		fillState:  make([][]float32, nt),
		evictState: make([][]float32, nt),
		tCPU:       make([]float64, nt),
		tGPU:       make([]float64, nt),
		tCoord:     make([]float64, nt),
		tCoordCrit: make([]float64, nt),
		tCoordWall: make([]float64, nt),
	}
}

// recycleJob returns a fully retired job to the pool, handing its plans
// back to their scratchpads. The caller must not read the job (or its
// plans) afterward.
func (d *dynamicState) recycleJob(job *spJob) {
	if job == nil {
		return
	}
	for t, plan := range job.plans {
		if plan != nil {
			d.sps[t].Recycle(plan)
			job.plans[t] = nil
		}
	}
	for t := range job.futT {
		job.futT[t] = job.futT[t][:0]
	}
	for t := range job.hintT {
		job.hintT[t] = job.hintT[t][:0]
	}
	// The batch has left the loader window and every job that looked
	// ahead at it retired earlier (jobs retire in FIFO order), so no
	// reference into it survives.
	d.env.Gen.Recycle(job.batch)
	job.batch = nil
	job.stageTime = [core.NumStages]float64{}
	job.stageCPU = [core.NumStages]float64{}
	job.cpuBusy, job.gpuBusy = 0, 0
	job.coord, job.coordWall, job.coordHidden = 0, 0, 0
	job.loss = 0
	d.jobPool = append(d.jobPool, job)
}

// newJob captures the batch at the loader head plus references to the next
// `future` batches' ID lists (hazard window) and, beyond that, up to
// `lookahead` batches of eviction hints, then advances the loader. Batches
// are immutable after generation, so sharing the references across
// concurrently executing stages is race-free.
func (d *dynamicState) newJob(loader *trace.Loader, future, lookahead int) *spJob {
	job := d.getJob()
	nt := d.env.Cfg.Model.NumTables
	// Look-ahead carries the distinct-ID lists: pinning is idempotent,
	// so probing each future ID once is equivalent to (and much cheaper
	// than) walking its occurrence stream.
	for k := 1; k <= future; k++ {
		b := loader.Peek(k)
		for t := 0; t < nt; t++ {
			job.futT[t] = append(job.futT[t], b.UniqueIDs(t))
		}
	}
	for k := future + 1; k <= lookahead; k++ {
		b := loader.Peek(k)
		for t := 0; t < nt; t++ {
			job.hintT[t] = append(job.hintT[t], b.UniqueIDs(t))
		}
	}
	job.batch = loader.Advance()
	// Materialize the distinct-ID lists serially so stagePlan's
	// per-table fan-out only reads them (generator batches already
	// carry them; this is a memo check).
	job.batch.EnsureUnique()
	return job
}

// stagePlan runs [Plan] for every table: Hit-Map queries, victim planning,
// hold registration. Simulated cost: the sparse IDs cross PCIe and the GPU
// probes its Hit-Map structures.
func (d *dynamicState) stagePlan(job *spJob) error {
	cfg := d.env.Cfg.Model
	err := d.pool.ForEachErr(cfg.NumTables, func(t int) error {
		uniq, cnt := job.batch.UniqueWithCounts(t)
		plan, err := d.sps[t].PlanUniqueWithHints(job.batch.Seq, uniq, cnt, job.futT[t], job.hintT[t])
		if err != nil {
			return err
		}
		job.plans[t] = plan
		// Hash-probe traffic: key+value per ID occurrence (the GPU
		// probes its Hit-Map once per lookup).
		job.tGPU[t] = d.env.Cfg.System.GPU.RandomTime(float64(len(job.batch.Tables[t])) * 16)
		// Cross-node coordination latency this table's placement just
		// paid (zero when its shards are co-located). The critical
		// share is what this Plan actually waited for — the rest was
		// hidden by speculation under the previous cycle; the wall
		// figure is the message plane's measured twin.
		job.tCoord[t] = d.sps[t].LastPlanCoord()
		job.tCoordCrit[t] = d.sps[t].LastPlanCoordCritical()
		job.tCoordWall[t] = d.sps[t].LastPlanCoordWall()
		return nil
	})
	if err != nil {
		return err
	}
	totalIDs := 0
	var gpuProbe, coord, coordCrit, coordWall float64
	for t := 0; t < cfg.NumTables; t++ {
		totalIDs += len(job.batch.Tables[t])
		gpuProbe += job.tGPU[t]
		coord += job.tCoord[t]
		coordCrit += job.tCoordCrit[t]
		coordWall += job.tCoordWall[t]
	}
	// The per-table coordinators contend for the same inter-node links,
	// so their communication serializes (sum, not max) on top of the
	// local Plan work. Only the critical share blocks the stage; the
	// speculation-hidden remainder runs concurrently with the cycle and
	// is floored into the cycle wall by the run loop.
	tTime := d.cost.pcie(idBytes(totalIDs))/d.links() + gpuProbe/float64(d.gpus) + coordCrit
	job.stageTime[core.StagePlan] = tTime
	job.coord += coord
	job.coordWall += coordWall
	job.coordHidden += coord - coordCrit
	job.gpuBusy += gpuProbe
	return nil
}

// links returns the number of independent CPU-GPU PCIe links available
// (one per GPU pair on p3-class hosts).
func (d *dynamicState) links() float64 {
	if d.gpus <= 1 {
		return 1
	}
	return float64((d.gpus + 1) / 2)
}

// stageCollect gathers the missed rows from the CPU tables and the victim
// rows from the GPU scratchpad into staging buffers.
func (d *dynamicState) stageCollect(job *spJob) error {
	cfg := d.env.Cfg.Model
	dim := cfg.EmbeddingDim
	sdim := d.env.StateDim
	d.pool.ForEach(cfg.NumTables, func(t int) {
		plan := job.plans[t]
		job.tCPU[t] = d.cost.gatherCPU(len(plan.Fills)) +
			d.cost.stateMoveCPU(len(plan.Fills))
		job.tGPU[t] = d.cost.gatherGPU(len(plan.Evictions)) +
			d.cost.stateMoveGPU(len(plan.Evictions))
		if d.hazard != nil {
			for _, f := range plan.Fills {
				d.hazard.Access(core.StageCollect, core.ResCPURow, t, f.ID, false, job.batch.Seq)
			}
			for _, e := range plan.Evictions {
				d.hazard.Access(core.StageCollect, core.ResGPUSlot, t, int64(e.Slot), false, job.batch.Seq)
			}
		}
		if d.env.Cfg.Functional {
			fv := resizeF32(job.fillVals[t], len(plan.Fills)*dim)
			for i, f := range plan.Fills {
				copy(fv[i*dim:(i+1)*dim], d.env.Tables[t].Row(f.ID))
			}
			job.fillVals[t] = fv
			ev := resizeF32(job.evictVals[t], len(plan.Evictions)*dim)
			for i, e := range plan.Evictions {
				copy(ev[i*dim:(i+1)*dim], d.storage[t].Row(int(e.Slot)))
			}
			job.evictVals[t] = ev
			if d.stateStorage != nil {
				fs := resizeF32(job.fillState[t], len(plan.Fills)*sdim)
				for i, f := range plan.Fills {
					copy(fs[i*sdim:(i+1)*sdim], d.env.StateTables[t].Row(f.ID))
				}
				job.fillState[t] = fs
				es := resizeF32(job.evictState[t], len(plan.Evictions)*sdim)
				for i, e := range plan.Evictions {
					copy(es[i*sdim:(i+1)*sdim], d.stateStorage[t].Row(int(e.Slot)))
				}
				job.evictState[t] = es
			}
		}
	})
	var cpuT, gpuT float64
	for t := 0; t < cfg.NumTables; t++ {
		cpuT += job.tCPU[t]
		gpuT += job.tGPU[t]
	}
	job.stageTime[core.StageCollect] = maxf(cpuT, gpuT/float64(d.gpus))
	job.stageCPU[core.StageCollect] = cpuT
	job.cpuBusy += cpuT
	job.gpuBusy += gpuT
	return nil
}

// resizeF32 returns buf with exactly n elements, reusing its capacity;
// contents are undefined (callers overwrite every element).
func resizeF32(buf []float32, n int) []float32 {
	if cap(buf) < n {
		return make([]float32, n)
	}
	return buf[:n]
}

// stageExchange ships staged rows across PCIe: fills CPU->GPU concurrently
// with eviction write-backs GPU->CPU (full duplex).
func (d *dynamicState) stageExchange(job *spJob) error {
	var up, down int
	for _, plan := range job.plans {
		up += len(plan.Fills)
		down += len(plan.Evictions)
	}
	upBytes := d.cost.embBytes(up) + d.cost.stateBytes(up)
	downBytes := d.cost.embBytes(down) + d.cost.stateBytes(down)
	links := d.links()
	job.stageTime[core.StageExchange] = d.cost.pcieDuplex(upBytes/links, downBytes/links)
	return nil
}

// stageInsert fills missed rows into the scratchpad and writes evicted
// rows back into the CPU tables.
func (d *dynamicState) stageInsert(job *spJob) error {
	cfg := d.env.Cfg.Model
	dim := cfg.EmbeddingDim
	sdim := d.env.StateDim
	d.pool.ForEach(cfg.NumTables, func(t int) {
		plan := job.plans[t]
		job.tGPU[t] = d.cost.scatterWriteGPU(len(plan.Fills)) +
			d.cost.stateMoveGPU(len(plan.Fills))
		job.tCPU[t] = d.cost.scatterWriteCPU(len(plan.Evictions)) +
			d.cost.stateMoveCPU(len(plan.Evictions))
		if d.hazard != nil {
			for _, f := range plan.Fills {
				d.hazard.Access(core.StageInsert, core.ResGPUSlot, t, int64(f.Slot), true, job.batch.Seq)
			}
			for _, e := range plan.Evictions {
				d.hazard.Access(core.StageInsert, core.ResCPURow, t, e.OldID, true, job.batch.Seq)
			}
		}
		if d.env.Cfg.Functional {
			fv := job.fillVals[t]
			for i, f := range plan.Fills {
				copy(d.storage[t].Row(int(f.Slot)), fv[i*dim:(i+1)*dim])
			}
			ev := job.evictVals[t]
			for i, e := range plan.Evictions {
				copy(d.env.Tables[t].Row(e.OldID), ev[i*dim:(i+1)*dim])
			}
			if d.stateStorage != nil {
				fs := job.fillState[t]
				for i, f := range plan.Fills {
					copy(d.stateStorage[t].Row(int(f.Slot)), fs[i*sdim:(i+1)*sdim])
				}
				es := job.evictState[t]
				for i, e := range plan.Evictions {
					copy(d.env.StateTables[t].Row(e.OldID), es[i*sdim:(i+1)*sdim])
				}
			}
		}
	})
	var cpuT, gpuT float64
	for t := 0; t < cfg.NumTables; t++ {
		cpuT += job.tCPU[t]
		gpuT += job.tGPU[t]
	}
	job.stageTime[core.StageInsert] = maxf(cpuT, gpuT/float64(d.gpus))
	job.stageCPU[core.StageInsert] = cpuT
	job.cpuBusy += cpuT
	job.gpuBusy += gpuT
	return nil
}

// cacheView adapts one table's scratchpad storage + a batch's plan into an
// embed.RowStore, so [Train] runs the canonical primitives unchanged but
// at "GPU memory speed".
type cacheView struct {
	dim     int
	storage *tensor.Matrix
	plan    *core.PlanResult
}

func (v cacheView) Dim() int { return v.dim }

func (v cacheView) Row(id int64) []float32 {
	return v.storage.Row(int(v.plan.Slot(id)))
}

// stageTrain runs the whole model-training step against the scratchpad:
// embedding forward, MLP forward/backward, gradient coalescing, and the
// embedding parameter update. All embedding traffic hits GPU memory — the
// cache "always hits" by construction.
func (d *dynamicState) stageTrain(job *spJob) error {
	cfg := d.env.Cfg.Model
	d.pool.ForEach(cfg.NumTables, func(t int) {
		plan := job.plans[t]
		uniq := len(plan.UniqueIDs)
		job.tGPU[t] = d.cost.gatherGPU(job.batch.TotalIDs()) +
			d.cost.reduceGPU(job.batch.TotalIDs(), cfg.BatchSize) +
			d.cost.dupCoalesceGPU(cfg.BatchSize, job.batch.TotalIDs(), uniq) +
			d.cost.scatterUpdateGPU(uniq) +
			d.cost.stateUpdateGPU(uniq)
		if d.hazard != nil {
			for _, slot := range plan.Slots {
				d.hazard.Access(core.StageTrain, core.ResGPUSlot, t, int64(slot), true, job.batch.Seq)
			}
		}
	})
	var embT float64
	for t := 0; t < cfg.NumTables; t++ {
		embT += job.tGPU[t]
	}
	var gpuT float64
	if d.gpus > 1 {
		// Table-wise model parallelism: each GPU trains its tables'
		// embedding ops locally, exchanges pooled outputs/gradients
		// all-to-all, and data-parallel-trains the MLPs (cf. §VI-G
		// and the MultiGPU engine).
		g := float64(d.gpus)
		sys := d.env.Cfg.System
		flops := mlpFlopsPerIteration(cfg)
		mlp := sys.GPU.MatmulTime(flops/g, 3*2*4*(mlpParamCount(cfg)+mlpActivationFloats(cfg))/g) + sys.GPU.IterOverhead
		tablesPerGPU := (float64(cfg.NumTables) + g - 1) / g
		a2aBytes := d.cost.pooledBytes() * tablesPerGPU * (g - 1) / g
		comm := 2*sys.NVLink.TransferTime(a2aBytes) +
			sys.NVLink.TransferTime(2*mlpParamCount(cfg)*4*(g-1)/g)
		gpuT = embT/g + mlp + comm
	} else {
		gpuT = embT + d.cost.mlpTime()
	}
	job.stageTime[core.StageTrain] = gpuT
	job.gpuBusy += gpuT

	if d.env.Cfg.Functional {
		b := job.batch
		pooled := make([]*tensor.Matrix, cfg.NumTables)
		views := make([]cacheView, cfg.NumTables)
		d.pool.ForEach(cfg.NumTables, func(t int) {
			views[t] = cacheView{dim: cfg.EmbeddingDim, storage: d.storage[t], plan: job.plans[t]}
			pooled[t] = embed.ForwardPooled(views[t], b.Tables[t], b.BatchSize, b.Lookups)
		})
		res := d.env.Model.TrainStep(d.env.DenseMatrix(b), pooled, b.Labels)
		d.pool.ForEach(cfg.NumTables, func(t int) {
			g := embed.DuplicateCoalesce(b.Tables[t], res.PooledGrads[t], b.Lookups)
			var state embed.RowStore
			if d.stateStorage != nil {
				state = cacheView{dim: d.env.StateDim, storage: d.stateStorage[t], plan: job.plans[t]}
			}
			d.env.Opt.Apply(views[t], state, g)
		})
		job.loss = res.Loss
	}
	return nil
}

// release drops the job's hold protection on every table; the engine calls
// it exactly when the job enters [Train] (see Scratchpad.Release).
func (d *dynamicState) release(job *spJob) error {
	return d.pool.ForEachErr(len(d.sps), func(t int) error {
		return d.sps[t].Release(job.batch.Seq)
	})
}

// flush writes every dirty cached row (and its optimizer state) back to
// the CPU tables.
func (d *dynamicState) flush() error {
	if !d.env.Cfg.Functional {
		return nil
	}
	d.pool.ForEach(len(d.sps), func(t int) {
		sp := d.sps[t]
		tbl := d.env.Tables[t]
		storage := d.storage[t]
		var stateTbl *embed.Table
		var stateStorage *tensor.Matrix
		if d.stateStorage != nil {
			stateTbl = d.env.StateTables[t]
			stateStorage = d.stateStorage[t]
		}
		sp.ForEach(func(id int64, slot int32) {
			copy(tbl.Row(id), storage.Row(int(slot)))
			if stateStorage != nil {
				copy(stateTbl.Row(id), stateStorage.Row(int(slot)))
			}
		})
	})
	return nil
}

// aggregateCacheStats folds per-table scratchpad statistics — cache
// counters, cross-node coordination traffic, and approx-mode divergence
// — into a report.
func (d *dynamicState) aggregateCacheStats(rep *Report) {
	for _, sp := range d.sps {
		st := sp.Stats()
		rep.Hits += st.Hits
		rep.Misses += st.Misses
		rep.Fills += st.Fills
		rep.Evictions += st.Evictions
		rep.ReservePeak += st.ReservePeak
		rep.Coord.Merge(sp.CoordStats())
		rep.Overlap.Merge(sp.OverlapStats())
		rep.CoordDivergence.Merge(sp.Divergence())
		rep.Resharding.Merge(sp.ReshardStats())
		rep.Evac.Merge(sp.EvacStats())
	}
	if len(d.sps) > 0 {
		rep.CoordMode = string(d.sps[0].CoordMode())
	}
	rep.MigrationTime = d.migrationSecs
	if d.env.Cfg.Reshard.Active() && len(d.sps) > 0 {
		rep.FinalShards = d.sps[0].Shards()
	}
	rep.Downtime = d.downtimeSecs
	rep.RecoveryTime = d.recoverySecs
	rep.CheckpointTime = d.ckptSecs
	rep.LostResidency = rep.Evac.LostResident
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
