package engine

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/embed"
	"repro/internal/tensor"
	"repro/internal/trace"
)

// dynamicState is the machinery shared by the two dynamic-cache engines
// (straw-man and ScratchPipe): per-table scratchpad managers, the
// functional GPU storage arrays, and the five stage implementations with
// their timing formulas. The straw-man executes the stages back-to-back;
// ScratchPipe runs them through the pipeline.
type dynamicState struct {
	env     *Env
	cost    costModel
	sps     []*core.Scratchpad
	storage []*tensor.Matrix // per table: TotalSlots x dim (functional mode)
	// stateStorage shadows storage for per-row optimizer state: the
	// scratchpad caches optimizer accumulators with the same slot
	// assignment, prefetching them at [Collect] and writing them back
	// at [Insert] exactly like the embedding rows.
	stateStorage []*tensor.Matrix
	hazard       *core.HazardChecker
	// gpus > 1 models the §VI-G multi-GPU extension: tables are
	// partitioned table-wise across gpus GPUs, each running its own
	// per-table cache manager. GPU-side stage work and PCIe traffic
	// divide across devices/links; the CPU-side gathers and write-backs
	// do NOT — the single socket's DRAM is shared, which is exactly why
	// the paper expects multi-GPU ScratchPipe to underutilize GPUs.
	gpus int
}

// spJob is the per-mini-batch pipeline state (core.Job).
type spJob struct {
	batch *trace.Batch
	// futureIDs[k][t] is table t's ID list of the batch k+1 positions
	// ahead, captured at Load time from the dataset look-ahead window;
	// hintIDs carries batches beyond the hazard window for
	// eviction-preference hints.
	futureIDs [][][]int64
	hintIDs   [][][]int64
	plans     []*core.PlanResult
	// fillVals/evictVals stage the embedding payloads between Collect
	// and Insert (the data "crossing PCIe" at Exchange). Indexed per
	// table, concatenated row-major. fillState/evictState carry the
	// optimizer-state rows of the same schedule.
	fillVals   [][]float32
	evictVals  [][]float32
	fillState  [][]float32
	evictState [][]float32
	stageTime  [core.NumStages]float64
	// stageCPU is the CPU-memory-bound component of each stage, used by
	// the optional contention model (concurrent stages sharing the one
	// CPU socket's DRAM bandwidth serialize in the worst case).
	stageCPU [core.NumStages]float64
	cpuBusy  float64
	gpuBusy  float64
	loss     float32
}

// Seq implements core.Job.
func (j *spJob) Seq() int { return j.batch.Seq }

func newDynamicState(env *Env, cacheFrac float64, policy cache.PolicyKind, past, future int, hazard *core.HazardChecker) (*dynamicState, error) {
	if cacheFrac <= 0 || cacheFrac > 1 {
		return nil, fmt.Errorf("engine: dynamic cache: cacheFrac %g out of (0,1]", cacheFrac)
	}
	cfg := env.Cfg.Model
	slots := int(cacheFrac * float64(cfg.RowsPerTable))
	if slots < 1 {
		slots = 1
	}
	d := &dynamicState{env: env, cost: costModel{env: env}, hazard: hazard, gpus: 1}
	maxUnique := cfg.BatchSize * cfg.Lookups
	for t := 0; t < cfg.NumTables; t++ {
		spCfg := core.Config{
			Slots:        slots,
			Policy:       policy,
			PolicySeed:   env.Cfg.Seed + int64(2000+t),
			PastWindow:   past,
			FutureWindow: future,
		}
		spCfg.Reserve = core.WorstCaseReserve(spCfg, maxUnique)
		sp, err := core.NewScratchpad(spCfg)
		if err != nil {
			return nil, err
		}
		d.sps = append(d.sps, sp)
		if env.Cfg.Functional {
			d.storage = append(d.storage, tensor.New(sp.TotalSlots(), cfg.EmbeddingDim))
			if env.StateDim > 0 {
				d.stateStorage = append(d.stateStorage, tensor.New(sp.TotalSlots(), env.StateDim))
			}
		}
	}
	return d, nil
}

// prewarm fills every table's scratchpad to capacity with draws from the
// trace distribution, approximating LRU steady-state content so measured
// iterations reflect warm-cache behaviour rather than a cold start. In
// functional mode the drawn rows' values are copied into GPU storage, so
// training results are unchanged.
func (d *dynamicState) prewarm() {
	dists := d.env.Gen.Dists()
	for t, sp := range d.sps {
		rng := newSeededRand(d.env.Cfg.Seed + int64(3000+t))
		dist := dists[t]
		var onFill func(id int64, slot int32)
		if d.env.Cfg.Functional {
			tbl := d.env.Tables[t]
			storage := d.storage[t]
			var stateTbl *embed.Table
			var stateStorage *tensor.Matrix
			if d.stateStorage != nil {
				stateTbl = d.env.StateTables[t]
				stateStorage = d.stateStorage[t]
			}
			onFill = func(id int64, slot int32) {
				copy(storage.Row(int(slot)), tbl.Row(id))
				if stateStorage != nil {
					copy(stateStorage.Row(int(slot)), stateTbl.Row(id))
				}
			}
		}
		sp.Prewarm(func() int64 { return dist.Sample(rng) }, onFill)
	}
}

// newJob captures the batch at the loader head plus references to the next
// `future` batches' ID lists (hazard window) and, beyond that, up to
// `lookahead` batches of eviction hints, then advances the loader. Batches
// are immutable after generation, so sharing the references across
// concurrently executing stages is race-free.
func (d *dynamicState) newJob(loader *trace.Loader, future, lookahead int) *spJob {
	job := &spJob{}
	for k := 1; k <= future; k++ {
		job.futureIDs = append(job.futureIDs, loader.Peek(k).Tables)
	}
	for k := future + 1; k <= lookahead; k++ {
		job.hintIDs = append(job.hintIDs, loader.Peek(k).Tables)
	}
	job.batch = loader.Advance()
	return job
}

// futureForTable projects the captured look-ahead onto one table.
func (j *spJob) futureForTable(t int) [][]int64 {
	out := make([][]int64, 0, len(j.futureIDs))
	for _, tables := range j.futureIDs {
		out = append(out, tables[t])
	}
	return out
}

// hintsForTable projects the eviction-hint look-ahead onto one table.
func (j *spJob) hintsForTable(t int) [][]int64 {
	if len(j.hintIDs) == 0 {
		return nil
	}
	out := make([][]int64, 0, len(j.hintIDs))
	for _, tables := range j.hintIDs {
		out = append(out, tables[t])
	}
	return out
}

// stagePlan runs [Plan] for every table: Hit-Map queries, victim planning,
// hold registration. Simulated cost: the sparse IDs cross PCIe and the GPU
// probes its Hit-Map structures.
func (d *dynamicState) stagePlan(job *spJob) error {
	cfg := d.env.Cfg.Model
	job.plans = make([]*core.PlanResult, cfg.NumTables)
	totalIDs := 0
	var gpuProbe float64
	for t := 0; t < cfg.NumTables; t++ {
		ids := job.batch.Tables[t]
		plan, err := d.sps[t].PlanWithHints(job.batch.Seq, ids, job.futureForTable(t), job.hintsForTable(t))
		if err != nil {
			return err
		}
		job.plans[t] = plan
		totalIDs += len(ids)
		// Hash-probe traffic: key+value per ID.
		gpuProbe += d.env.Cfg.System.GPU.RandomTime(float64(len(ids)) * 16)
	}
	tTime := d.cost.pcie(idBytes(totalIDs))/d.links() + gpuProbe/float64(d.gpus)
	job.stageTime[core.StagePlan] = tTime
	job.gpuBusy += gpuProbe
	return nil
}

// links returns the number of independent CPU-GPU PCIe links available
// (one per GPU pair on p3-class hosts).
func (d *dynamicState) links() float64 {
	if d.gpus <= 1 {
		return 1
	}
	return float64((d.gpus + 1) / 2)
}

// stageCollect gathers the missed rows from the CPU tables and the victim
// rows from the GPU scratchpad into staging buffers.
func (d *dynamicState) stageCollect(job *spJob) error {
	cfg := d.env.Cfg.Model
	dim := cfg.EmbeddingDim
	var cpuT, gpuT float64
	if d.env.Cfg.Functional {
		job.fillVals = make([][]float32, cfg.NumTables)
		job.evictVals = make([][]float32, cfg.NumTables)
		if d.stateStorage != nil {
			job.fillState = make([][]float32, cfg.NumTables)
			job.evictState = make([][]float32, cfg.NumTables)
		}
	}
	sdim := d.env.StateDim
	for t := 0; t < cfg.NumTables; t++ {
		plan := job.plans[t]
		cpuT += d.cost.gatherCPU(len(plan.Fills))
		cpuT += d.cost.stateMoveCPU(len(plan.Fills))
		gpuT += d.cost.gatherGPU(len(plan.Evictions))
		gpuT += d.cost.stateMoveGPU(len(plan.Evictions))
		if d.hazard != nil {
			for _, f := range plan.Fills {
				d.hazard.Access(core.StageCollect, core.ResCPURow, t, f.ID, false, job.batch.Seq)
			}
			for _, e := range plan.Evictions {
				d.hazard.Access(core.StageCollect, core.ResGPUSlot, t, int64(e.Slot), false, job.batch.Seq)
			}
		}
		if d.env.Cfg.Functional {
			fv := make([]float32, len(plan.Fills)*dim)
			for i, f := range plan.Fills {
				copy(fv[i*dim:(i+1)*dim], d.env.Tables[t].Row(f.ID))
			}
			job.fillVals[t] = fv
			ev := make([]float32, len(plan.Evictions)*dim)
			for i, e := range plan.Evictions {
				copy(ev[i*dim:(i+1)*dim], d.storage[t].Row(int(e.Slot)))
			}
			job.evictVals[t] = ev
			if d.stateStorage != nil {
				fs := make([]float32, len(plan.Fills)*sdim)
				for i, f := range plan.Fills {
					copy(fs[i*sdim:(i+1)*sdim], d.env.StateTables[t].Row(f.ID))
				}
				job.fillState[t] = fs
				es := make([]float32, len(plan.Evictions)*sdim)
				for i, e := range plan.Evictions {
					copy(es[i*sdim:(i+1)*sdim], d.stateStorage[t].Row(int(e.Slot)))
				}
				job.evictState[t] = es
			}
		}
	}
	job.stageTime[core.StageCollect] = maxf(cpuT, gpuT/float64(d.gpus))
	job.stageCPU[core.StageCollect] = cpuT
	job.cpuBusy += cpuT
	job.gpuBusy += gpuT
	return nil
}

// stageExchange ships staged rows across PCIe: fills CPU->GPU concurrently
// with eviction write-backs GPU->CPU (full duplex).
func (d *dynamicState) stageExchange(job *spJob) error {
	var up, down int
	for _, plan := range job.plans {
		up += len(plan.Fills)
		down += len(plan.Evictions)
	}
	upBytes := d.cost.embBytes(up) + d.cost.stateBytes(up)
	downBytes := d.cost.embBytes(down) + d.cost.stateBytes(down)
	links := d.links()
	job.stageTime[core.StageExchange] = d.cost.pcieDuplex(upBytes/links, downBytes/links)
	return nil
}

// stageInsert fills missed rows into the scratchpad and writes evicted
// rows back into the CPU tables.
func (d *dynamicState) stageInsert(job *spJob) error {
	cfg := d.env.Cfg.Model
	dim := cfg.EmbeddingDim
	var cpuT, gpuT float64
	sdim := d.env.StateDim
	for t := 0; t < cfg.NumTables; t++ {
		plan := job.plans[t]
		gpuT += d.cost.scatterWriteGPU(len(plan.Fills))
		gpuT += d.cost.stateMoveGPU(len(plan.Fills))
		cpuT += d.cost.scatterWriteCPU(len(plan.Evictions))
		cpuT += d.cost.stateMoveCPU(len(plan.Evictions))
		if d.hazard != nil {
			for _, f := range plan.Fills {
				d.hazard.Access(core.StageInsert, core.ResGPUSlot, t, int64(f.Slot), true, job.batch.Seq)
			}
			for _, e := range plan.Evictions {
				d.hazard.Access(core.StageInsert, core.ResCPURow, t, e.OldID, true, job.batch.Seq)
			}
		}
		if d.env.Cfg.Functional {
			fv := job.fillVals[t]
			for i, f := range plan.Fills {
				copy(d.storage[t].Row(int(f.Slot)), fv[i*dim:(i+1)*dim])
			}
			ev := job.evictVals[t]
			for i, e := range plan.Evictions {
				copy(d.env.Tables[t].Row(e.OldID), ev[i*dim:(i+1)*dim])
			}
			if d.stateStorage != nil {
				fs := job.fillState[t]
				for i, f := range plan.Fills {
					copy(d.stateStorage[t].Row(int(f.Slot)), fs[i*sdim:(i+1)*sdim])
				}
				es := job.evictState[t]
				for i, e := range plan.Evictions {
					copy(d.env.StateTables[t].Row(e.OldID), es[i*sdim:(i+1)*sdim])
				}
			}
		}
	}
	job.stageTime[core.StageInsert] = maxf(cpuT, gpuT/float64(d.gpus))
	job.stageCPU[core.StageInsert] = cpuT
	job.cpuBusy += cpuT
	job.gpuBusy += gpuT
	return nil
}

// cacheView adapts one table's scratchpad storage + a batch's plan into an
// embed.RowStore, so [Train] runs the canonical primitives unchanged but
// at "GPU memory speed".
type cacheView struct {
	dim     int
	storage *tensor.Matrix
	plan    *core.PlanResult
}

func (v cacheView) Dim() int { return v.dim }

func (v cacheView) Row(id int64) []float32 {
	return v.storage.Row(int(v.plan.Slot(id)))
}

// stageTrain runs the whole model-training step against the scratchpad:
// embedding forward, MLP forward/backward, gradient coalescing, and the
// embedding parameter update. All embedding traffic hits GPU memory — the
// cache "always hits" by construction.
func (d *dynamicState) stageTrain(job *spJob) error {
	cfg := d.env.Cfg.Model
	var embT float64
	for t := 0; t < cfg.NumTables; t++ {
		plan := job.plans[t]
		uniq := len(plan.UniqueIDs)
		embT += d.cost.gatherGPU(job.batch.TotalIDs())
		embT += d.cost.reduceGPU(job.batch.TotalIDs(), cfg.BatchSize)
		embT += d.cost.dupCoalesceGPU(cfg.BatchSize, job.batch.TotalIDs(), uniq)
		embT += d.cost.scatterUpdateGPU(uniq)
		embT += d.cost.stateUpdateGPU(uniq)
		if d.hazard != nil {
			for _, slot := range plan.Slots {
				d.hazard.Access(core.StageTrain, core.ResGPUSlot, t, int64(slot), true, job.batch.Seq)
			}
		}
	}
	var gpuT float64
	if d.gpus > 1 {
		// Table-wise model parallelism: each GPU trains its tables'
		// embedding ops locally, exchanges pooled outputs/gradients
		// all-to-all, and data-parallel-trains the MLPs (cf. §VI-G
		// and the MultiGPU engine).
		g := float64(d.gpus)
		sys := d.env.Cfg.System
		flops := mlpFlopsPerIteration(cfg)
		mlp := sys.GPU.MatmulTime(flops/g, 3*2*4*(mlpParamCount(cfg)+mlpActivationFloats(cfg))/g) + sys.GPU.IterOverhead
		tablesPerGPU := (float64(cfg.NumTables) + g - 1) / g
		a2aBytes := d.cost.pooledBytes() * tablesPerGPU * (g - 1) / g
		comm := 2*sys.NVLink.TransferTime(a2aBytes) +
			sys.NVLink.TransferTime(2*mlpParamCount(cfg)*4*(g-1)/g)
		gpuT = embT/g + mlp + comm
	} else {
		gpuT = embT + d.cost.mlpTime()
	}
	job.stageTime[core.StageTrain] = gpuT
	job.gpuBusy += gpuT

	if d.env.Cfg.Functional {
		b := job.batch
		pooled := make([]*tensor.Matrix, cfg.NumTables)
		views := make([]cacheView, cfg.NumTables)
		for t := 0; t < cfg.NumTables; t++ {
			views[t] = cacheView{dim: cfg.EmbeddingDim, storage: d.storage[t], plan: job.plans[t]}
			pooled[t] = embed.ForwardPooled(views[t], b.Tables[t], b.BatchSize, b.Lookups)
		}
		res := d.env.Model.TrainStep(d.env.DenseMatrix(b), pooled, b.Labels)
		for t := 0; t < cfg.NumTables; t++ {
			g := embed.DuplicateCoalesce(b.Tables[t], res.PooledGrads[t], b.Lookups)
			var state embed.RowStore
			if d.stateStorage != nil {
				state = cacheView{dim: d.env.StateDim, storage: d.stateStorage[t], plan: job.plans[t]}
			}
			d.env.Opt.Apply(views[t], state, g)
		}
		job.loss = res.Loss
	}
	return nil
}

// release drops the job's hold protection on every table; the engine calls
// it exactly when the job enters [Train] (see Scratchpad.Release).
func (d *dynamicState) release(job *spJob) error {
	for t := range d.sps {
		if err := d.sps[t].Release(job.batch.Seq); err != nil {
			return err
		}
	}
	return nil
}

// flush writes every dirty cached row (and its optimizer state) back to
// the CPU tables.
func (d *dynamicState) flush() error {
	if !d.env.Cfg.Functional {
		return nil
	}
	for t, sp := range d.sps {
		tbl := d.env.Tables[t]
		storage := d.storage[t]
		var stateTbl *embed.Table
		var stateStorage *tensor.Matrix
		if d.stateStorage != nil {
			stateTbl = d.env.StateTables[t]
			stateStorage = d.stateStorage[t]
		}
		sp.ForEach(func(id int64, slot int32) {
			copy(tbl.Row(id), storage.Row(int(slot)))
			if stateStorage != nil {
				copy(stateTbl.Row(id), stateStorage.Row(int(slot)))
			}
		})
	}
	return nil
}

// aggregateCacheStats folds per-table scratchpad statistics into a report.
func (d *dynamicState) aggregateCacheStats(rep *Report) {
	for _, sp := range d.sps {
		st := sp.Stats()
		rep.Hits += st.Hits
		rep.Misses += st.Misses
		rep.Fills += st.Fills
		rep.Evictions += st.Evictions
		rep.ReservePeak += st.ReservePeak
	}
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
