package engine

import (
	"repro/internal/embed"
	"repro/internal/tensor"
	"repro/internal/trace"
)

// Hybrid is the baseline hybrid CPU-GPU system of Figure 4a: the CPU
// memory stores the embedding tables and executes every embedding-layer
// primitive (gather, reduce, gradient duplicate/coalesce, scatter update)
// while the GPU trains the MLPs. No embedding caching at all — every
// lookup pays CPU DRAM latency, which is the bottleneck the paper
// characterizes in Figure 5.
type Hybrid struct {
	env  *Env
	cost costModel
}

// NewHybrid builds the baseline engine over env.
func NewHybrid(env *Env) *Hybrid {
	return &Hybrid{env: env, cost: costModel{env: env}}
}

// Name implements Engine.
func (h *Hybrid) Name() string { return "hybrid" }

// Run implements Engine.
func (h *Hybrid) Run(n int) (*Report, error) {
	if err := validateIters(n); err != nil {
		return nil, err
	}
	cfg := h.env.Cfg.Model
	rep := &Report{Engine: h.Name(), Iters: n}
	var lossSum float64
	for it := 0; it < n; it++ {
		b := h.env.Gen.Next()
		shape := shapeOf(b)

		// --- timing ---
		var fwd, bwd float64
		for t := 0; t < cfg.NumTables; t++ {
			fwd += h.cost.gatherCPU(shape.totalIDs)
			fwd += h.cost.reduceCPU(shape.totalIDs, cfg.BatchSize)
			bwd += h.cost.dupCoalesceCPU(cfg.BatchSize, shape.totalIDs, shape.unique[t])
			bwd += h.cost.scatterUpdateCPU(shape.unique[t])
			// Stateful optimizers read-modify-write their per-row
			// accumulators alongside the embedding rows.
			bwd += h.cost.stateUpdateCPU(shape.unique[t])
		}
		// Ship pooled outputs + dense inputs up, pooled gradients down.
		upBytes := float64(cfg.NumTables)*h.cost.pooledBytes() + h.cost.denseInputBytes()
		fwd += h.cost.pcie(upBytes)
		bwd += h.cost.pcie(float64(cfg.NumTables) * h.cost.pooledBytes())
		gpu := h.cost.mlpTime()

		rep.CPUEmbFwd += fwd
		rep.CPUEmbBwd += bwd
		rep.GPUTime += gpu
		rep.Wall += fwd + gpu + bwd
		rep.CPUBusy += fwd + bwd
		rep.GPUBusy += gpu
		rep.Misses += int64(cfg.NumTables * shape.totalIDs)

		// --- functional training ---
		if h.env.Cfg.Functional {
			lossSum += float64(h.trainStep(b))
		}
		h.env.Gen.Recycle(b)
	}
	finalizeAverages(rep, n, lossSum)
	return rep, nil
}

// trainStep executes one real training iteration directly against the CPU
// tables using the canonical embedding primitives.
func (h *Hybrid) trainStep(b *trace.Batch) float32 {
	cfg := h.env.Cfg.Model
	pooled := make([]*tensor.Matrix, cfg.NumTables)
	h.env.Pool.ForEach(cfg.NumTables, func(t int) {
		pooled[t] = embed.ForwardPooled(h.env.Tables[t], b.Tables[t], b.BatchSize, b.Lookups)
	})
	res := h.env.Model.TrainStep(h.env.DenseMatrix(b), pooled, b.Labels)
	h.env.Pool.ForEach(cfg.NumTables, func(t int) {
		g := embed.DuplicateCoalesce(b.Tables[t], res.PooledGrads[t], b.Lookups)
		h.env.Opt.Apply(h.env.Tables[t], h.env.stateTable(t), g)
	})
	return res.Loss
}

// Flush implements FlushTables (no GPU-resident state).
func (h *Hybrid) Flush() error { return nil }

// finalizeAverages converts a Report's accumulated sums into per-iteration
// averages.
func finalizeAverages(rep *Report, n int, lossSum float64) {
	fn := float64(n)
	rep.IterTime = rep.Wall / fn
	rep.CPUEmbFwd /= fn
	rep.CPUEmbBwd /= fn
	rep.GPUTime /= fn
	rep.CPUBusy /= fn
	rep.GPUBusy /= fn
	rep.CoordTime /= fn
	rep.CoordWallTime /= fn
	for s := range rep.StageAvg {
		rep.StageAvg[s] /= fn
	}
	rep.AvgLoss = lossSum / fn
	// Fault-free engines are fully available; the dynamic-cache engines
	// recompute this after adding their episodic outage time to Wall.
	rep.Availability = 1
}
