package engine

import (
	"reflect"
	"testing"

	"repro/internal/cache"
	"repro/internal/dlrm"
	"repro/internal/hw"
	"repro/internal/shard"
	"repro/internal/trace"
)

// metaEnv builds a metadata-mode environment with the given shard count.
func metaEnv(t *testing.T, model dlrm.Config, class trace.Class, shards int) *Env {
	t.Helper()
	env, err := NewEnv(EnvConfig{
		Model:   model,
		System:  hw.DefaultSystem(),
		Class:   class,
		Seed:    42,
		Workers: 2,
		Shards:  shards,
	})
	if err != nil {
		t.Fatalf("NewEnv(shards=%d): %v", shards, err)
	}
	return env
}

// TestShardsReportEquivalence is the engine-level half of the sharding
// acceptance criterion: the simulated Report — timing, stage averages,
// hit/miss/fill/eviction counts, reserve peaks — must be identical at
// every shard count, for both dynamic-cache engines.
func TestShardsReportEquivalence(t *testing.T) {
	model := dlrm.DefaultConfig()
	model.RowsPerTable = 50_000
	model.BatchSize = 128

	builders := map[string]func(*Env) (Engine, error){
		"scratchpipe": func(e *Env) (Engine, error) {
			return NewScratchPipe(e, ScratchPipeOptions{CacheFrac: 0.02})
		},
		"scratchpipe-lookahead": func(e *Env) (Engine, error) {
			return NewScratchPipe(e, ScratchPipeOptions{CacheFrac: 0.02, EvictionLookahead: 5})
		},
		"strawman": func(e *Env) (Engine, error) { return NewStrawMan(e, 0.02, cache.LRU) },
		"static":   func(e *Env) (Engine, error) { return NewStaticCache(e, 0.02) },
	}
	for name, build := range builders {
		name, build := name, build
		t.Run(name, func(t *testing.T) {
			var base *Report
			for _, shards := range []int{1, 2, 3, 4, 7} {
				eng, err := build(metaEnv(t, model, trace.Medium, shards))
				if err != nil {
					t.Fatalf("shards=%d: %v", shards, err)
				}
				rep, err := eng.Run(20)
				if err != nil {
					t.Fatalf("shards=%d: Run: %v", shards, err)
				}
				if base == nil {
					base = rep
					continue
				}
				if !reflect.DeepEqual(base, rep) {
					t.Fatalf("report diverged at shards=%d:\nS=1 %+v\nS=%d %+v", shards, base, shards, rep)
				}
			}
		})
	}
}

// TestShardsFunctionalEquivalence extends the bitwise model-state
// equivalence claim to the sharded control plane: sharding changes which
// physical slot a row occupies, never its values or update order.
func TestShardsFunctionalEquivalence(t *testing.T) {
	const iters = 30
	base := newTestEnv(t, trace.Medium, 7)
	runAndFlush(t, NewHybrid(base), iters)

	for _, shards := range []int{2, 4} {
		env, err := NewEnv(EnvConfig{
			Model:      smallModel(),
			System:     hw.DefaultSystem(),
			Class:      trace.Medium,
			Seed:       7,
			Functional: true,
			Shards:     shards,
		})
		if err != nil {
			t.Fatal(err)
		}
		eng, err := NewScratchPipe(env, ScratchPipeOptions{CacheFrac: 0.05})
		if err != nil {
			t.Fatal(err)
		}
		runAndFlush(t, eng, iters)
		assertSameModelState(t, "sharded-scratchpipe", env, base)
	}
}

// placedEnv builds a metadata-mode environment with a shard placement.
func placedEnv(t *testing.T, model dlrm.Config, shards int, topo *hw.Topology, policy hw.PlacementPolicy) *Env {
	t.Helper()
	env, err := NewEnv(EnvConfig{
		Model:     model,
		System:    hw.DefaultSystem(),
		Class:     trace.Medium,
		Seed:      42,
		Workers:   2,
		Shards:    shards,
		Topology:  topo,
		Placement: policy,
	})
	if err != nil {
		t.Fatalf("NewEnv(topology=%v): %v", topo, err)
	}
	return env
}

// TestPlacementReportInvariance is the engine half of the placement
// acceptance criterion: cache behaviour (hits, misses, fills, evictions,
// reserve pressure) is identical across placements; only the modeled
// coordination latency — and therefore iteration time — may move. A
// single-node topology must reproduce the unplaced report exactly.
func TestPlacementReportInvariance(t *testing.T) {
	model := dlrm.DefaultConfig()
	model.RowsPerTable = 50_000
	model.BatchSize = 128
	const shards = 4

	run := func(t *testing.T, env *Env) *Report {
		t.Helper()
		eng, err := NewScratchPipe(env, ScratchPipeOptions{CacheFrac: 0.02})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := eng.Run(20)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}

	base := run(t, metaEnv(t, model, trace.Medium, shards))
	if base.CoordTime != 0 {
		t.Fatalf("unplaced run reports coordination time %g", base.CoordTime)
	}

	// Degenerate placement: a single-node topology is the unplaced tree
	// bit for bit.
	single := run(t, placedEnv(t, model, shards, hw.SingleNode(), hw.PlaceStripe))
	if !reflect.DeepEqual(base, single) {
		t.Fatalf("single-node placement diverged:\nbase   %+v\nplaced %+v", base, single)
	}

	topo := hw.Cluster(2, 2)
	for _, policy := range hw.PlacementPolicies {
		rep := run(t, placedEnv(t, model, shards, topo, policy))
		if rep.Hits != base.Hits || rep.Misses != base.Misses ||
			rep.Fills != base.Fills || rep.Evictions != base.Evictions ||
			rep.ReservePeak != base.ReservePeak {
			t.Fatalf("placement %s changed cache behaviour:\nbase   %+v\nplaced %+v", policy, base, rep)
		}
		if rep.CoordTime <= 0 {
			t.Fatalf("placement %s on %s reports no coordination latency", policy, topo.Name)
		}
		if rep.IterTime <= base.IterTime {
			t.Fatalf("placement %s: iteration time %g not above unplaced %g despite coordination cost",
				policy, rep.IterTime, base.IterTime)
		}
	}

	// Crossing a slower tier must cost strictly more: NUMA < network
	// for the same placement shape.
	numa := run(t, placedEnv(t, model, shards, hw.MultiSocket(4), hw.PlaceStripe))
	net := run(t, placedEnv(t, model, shards, hw.Cluster(4, 1), hw.PlaceStripe))
	if numa.CoordTime <= 0 || net.CoordTime <= numa.CoordTime {
		t.Fatalf("tier penalty not monotone: numa %g, net %g", numa.CoordTime, net.CoordTime)
	}
}

// TestPlacementValidationEngine: unknown placement policies and invalid
// topologies must be rejected at environment construction.
func TestPlacementValidationEngine(t *testing.T) {
	if _, err := NewEnv(EnvConfig{
		Model:     smallModel(),
		System:    hw.DefaultSystem(),
		Placement: "bogus",
	}); err == nil {
		t.Fatal("unknown placement policy accepted by NewEnv")
	}
	bad := hw.NewTopology("bad", []hw.Node{{Name: "a"}, {Name: "b"}}, hw.TierNUMA)
	bad.SetLink(0, 1, hw.Link{Name: "x", Tier: hw.TierNUMA, Bandwidth: -1})
	if _, err := NewEnv(EnvConfig{
		Model:    smallModel(),
		System:   hw.DefaultSystem(),
		Topology: bad,
	}); err == nil {
		t.Fatal("invalid topology accepted by NewEnv")
	}
}

// TestShardsValidation: invalid shard configurations must be rejected at
// construction, not discovered mid-run.
func TestShardsValidation(t *testing.T) {
	if _, err := NewEnv(EnvConfig{
		Model:  smallModel(),
		System: hw.DefaultSystem(),
		Shards: -1,
	}); err == nil {
		t.Fatal("negative shard count accepted by NewEnv")
	}
	env := metaEnv(t, smallModel(), trace.Medium, 2)
	if _, err := NewScratchPipe(env, ScratchPipeOptions{CacheFrac: 0.05, Policy: cache.LFU}); err == nil {
		t.Fatal("sharded LFU accepted (eviction coordinator is LRU-specific)")
	}
	if _, err := NewStrawMan(env, 0.05, cache.RandomPolicy); err == nil {
		t.Fatal("sharded random policy accepted")
	}
}

// coordEnv builds a metadata-mode environment with a cluster placement
// and the given coordination protocol.
func coordEnv(t *testing.T, model dlrm.Config, shards int, mode shard.CoordMode, quantum int) *Env {
	t.Helper()
	env, err := NewEnv(EnvConfig{
		Model:        model,
		System:       hw.DefaultSystem(),
		Class:        trace.Medium,
		Seed:         42,
		Workers:      2,
		Shards:       shards,
		Topology:     hw.Cluster(2, 2),
		Placement:    hw.PlaceStripe,
		Coord:        mode,
		CoordQuantum: quantum,
	})
	if err != nil {
		t.Fatalf("NewEnv(coord=%s): %v", mode, err)
	}
	return env
}

// TestCoordModeReportEquivalence is the engine half of the coordination
// tentpole: batched and hierarchical protocols leave every cache
// statistic identical to exact while strictly reducing both
// coordination rounds and modeled coordination latency (exact > batched
// > hier); approx drops traffic further still and reports a measured
// divergence.
func TestCoordModeReportEquivalence(t *testing.T) {
	model := dlrm.DefaultConfig()
	model.RowsPerTable = 50_000
	model.BatchSize = 128
	const shards = 4

	run := func(t *testing.T, env *Env) *Report {
		t.Helper()
		eng, err := NewScratchPipe(env, ScratchPipeOptions{CacheFrac: 0.02})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := eng.Run(20)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}

	exact := run(t, coordEnv(t, model, shards, shard.CoordExact, 0))
	batched := run(t, coordEnv(t, model, shards, shard.CoordBatched, 0))
	hier := run(t, coordEnv(t, model, shards, shard.CoordHier, 0))
	approx := run(t, coordEnv(t, model, shards, shard.CoordApprox, 0))

	for name, rep := range map[string]*Report{"batched": batched, "hier": hier} {
		if rep.Hits != exact.Hits || rep.Misses != exact.Misses ||
			rep.Fills != exact.Fills || rep.Evictions != exact.Evictions ||
			rep.ReservePeak != exact.ReservePeak {
			t.Fatalf("%s changed cache behaviour:\nexact %+v\nmode  %+v", name, exact, rep)
		}
		if rep.CoordDivergence != (shard.Divergence{}) {
			t.Fatalf("%s reports divergence despite exact ordering: %+v", name, rep.CoordDivergence)
		}
	}
	if exact.Coord.Messages < 5*batched.Coord.Messages {
		t.Fatalf("batched rounds %d not >=5x below exact's %d", batched.Coord.Messages, exact.Coord.Messages)
	}
	if exact.Coord.Messages < 5*hier.Coord.Messages {
		t.Fatalf("hier rounds %d not >=5x below exact's %d", hier.Coord.Messages, exact.Coord.Messages)
	}
	if !(exact.CoordTime > batched.CoordTime && batched.CoordTime > hier.CoordTime && hier.CoordTime > 0) {
		t.Fatalf("coordination latency not strictly decreasing: exact %g, batched %g, hier %g",
			exact.CoordTime, batched.CoordTime, hier.CoordTime)
	}
	if approx.Coord.Bytes() >= hier.Coord.Bytes() {
		t.Fatalf("approx traffic %g B not strictly below hier's %g B",
			approx.Coord.Bytes(), hier.Coord.Bytes())
	}
	if approx.CoordDivergence.Plans == 0 {
		t.Fatal("approx mode measured no divergence plans")
	}
	if got, want := exact.CoordMode, string(shard.CoordExact); got != want {
		t.Fatalf("exact run labeled %q, want %q", got, want)
	}
	if got, want := hier.CoordMode, string(shard.CoordHier); got != want {
		t.Fatalf("hier run labeled %q, want %q", got, want)
	}
}

// TestCoordValidationEngine: unknown coordination modes and negative
// quantums are rejected at environment construction.
func TestCoordValidationEngine(t *testing.T) {
	if _, err := NewEnv(EnvConfig{
		Model:  smallModel(),
		System: hw.DefaultSystem(),
		Coord:  "gossip",
	}); err == nil {
		t.Fatal("unknown coordination mode accepted by NewEnv")
	}
	if _, err := NewEnv(EnvConfig{
		Model:        smallModel(),
		System:       hw.DefaultSystem(),
		CoordQuantum: -3,
	}); err == nil {
		t.Fatal("negative coordination quantum accepted by NewEnv")
	}
}
