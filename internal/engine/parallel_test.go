package engine

import (
	"testing"

	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/trace"
)

// newWorkersEnv builds a functional env with an explicit worker count.
func newWorkersEnv(t testing.TB, class trace.Class, seed int64, workers int) *Env {
	t.Helper()
	env, err := NewEnv(EnvConfig{
		Model:      smallModel(),
		System:     hw.DefaultSystem(),
		Class:      class,
		Seed:       seed,
		Functional: true,
		Workers:    workers,
	})
	if err != nil {
		t.Fatalf("NewEnv: %v", err)
	}
	return env
}

// TestWorkersEquivalence is the determinism contract of the per-table
// fan-out: for every engine, a run with Workers=4 must produce
// bit-identical simulated statistics, timing, losses, and model state to
// Workers=1. Per-table work writes only per-table state; reductions run
// serially in table order.
func TestWorkersEquivalence(t *testing.T) {
	builders := map[string]func(*Env) (Engine, error){
		"hybrid":   func(e *Env) (Engine, error) { return NewHybrid(e), nil },
		"static":   func(e *Env) (Engine, error) { return NewStaticCache(e, 0.10) },
		"strawman": func(e *Env) (Engine, error) { return NewStrawMan(e, 0.05, "lru") },
		"scratchpipe": func(e *Env) (Engine, error) {
			return NewScratchPipe(e, ScratchPipeOptions{CacheFrac: 0.05, EvictionLookahead: 6})
		},
		"scratchpipe-pipelined": func(e *Env) (Engine, error) {
			return NewScratchPipe(e, ScratchPipeOptions{CacheFrac: 0.05, Parallel: true})
		},
		"multigpu": func(e *Env) (Engine, error) { return NewMultiGPU(e) },
	}
	const iters = 25
	for name, build := range builders {
		run := func(workers int) (*Report, *Env) {
			env := newWorkersEnv(t, trace.Medium, 77, workers)
			eng, err := build(env)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			rep := runAndFlush(t, eng, iters)
			return rep, env
		}
		serialRep, serialEnv := run(1)
		parRep, parEnv := run(4)

		if serialRep.Wall != parRep.Wall || serialRep.IterTime != parRep.IterTime {
			t.Errorf("%s: timing differs: wall %v vs %v, iter %v vs %v",
				name, serialRep.Wall, parRep.Wall, serialRep.IterTime, parRep.IterTime)
		}
		if serialRep.Hits != parRep.Hits || serialRep.Misses != parRep.Misses ||
			serialRep.Fills != parRep.Fills || serialRep.Evictions != parRep.Evictions {
			t.Errorf("%s: cache stats differ: hits %d/%d misses %d/%d fills %d/%d evictions %d/%d",
				name, serialRep.Hits, parRep.Hits, serialRep.Misses, parRep.Misses,
				serialRep.Fills, parRep.Fills, serialRep.Evictions, parRep.Evictions)
		}
		if serialRep.AvgLoss != parRep.AvgLoss {
			t.Errorf("%s: loss differs: %v vs %v", name, serialRep.AvgLoss, parRep.AvgLoss)
		}
		for st := range serialRep.StageAvg {
			if serialRep.StageAvg[st] != parRep.StageAvg[st] {
				t.Errorf("%s: stage %d latency differs: %v vs %v",
					name, st, serialRep.StageAvg[st], parRep.StageAvg[st])
			}
		}
		assertSameModelState(t, name+"-workers", parEnv, serialEnv)
	}
}

// TestWorkersHazardFree runs the parallel pipeline AND the per-table
// fan-out together under the hazard checker: stage-level and table-level
// parallelism must compose without conflicts (this is also the
// configuration `go test -race ./internal/engine/` exercises).
func TestWorkersHazardFree(t *testing.T) {
	hz := core.NewHazardChecker(16)
	env := newWorkersEnv(t, trace.Random, 19, 4)
	eng, err := NewScratchPipe(env, ScratchPipeOptions{
		CacheFrac: 0.05,
		Parallel:  true,
		Hazard:    hz,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(40); err != nil {
		t.Fatal(err)
	}
	if n := hz.Count(); n != 0 {
		t.Fatalf("%d hazard violations with workers=4: %v", n, hz.Violations()[0])
	}
}
