package engine

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/dlrm"
	"repro/internal/hw"
	"repro/internal/trace"
)

// smallModel returns a functional-scale DLRM configuration: small enough
// to train in milliseconds, structured enough to exercise every code path
// (duplicate IDs within batches, evictions, reserve slots).
func smallModel() dlrm.Config {
	return dlrm.Config{
		NumTables:    3,
		EmbeddingDim: 8,
		Lookups:      4,
		DenseDim:     4,
		RowsPerTable: 800,
		BatchSize:    16,
		BottomHidden: []int{8},
		TopHidden:    []int{16},
		LR:           0.05,
	}
}

func newTestEnv(t *testing.T, class trace.Class, seed int64) *Env {
	t.Helper()
	env, err := NewEnv(EnvConfig{
		Model:      smallModel(),
		System:     hw.DefaultSystem(),
		Class:      class,
		Seed:       seed,
		Functional: true,
	})
	if err != nil {
		t.Fatalf("NewEnv: %v", err)
	}
	return env
}

// runAndFlush trains n iterations and flushes GPU-side state back to the
// CPU tables.
func runAndFlush(t *testing.T, e Engine, n int) *Report {
	t.Helper()
	rep, err := e.Run(n)
	if err != nil {
		t.Fatalf("%s.Run: %v", e.Name(), err)
	}
	if f, ok := e.(FlushTables); ok {
		if err := f.Flush(); err != nil {
			t.Fatalf("%s.Flush: %v", e.Name(), err)
		}
	}
	return rep
}

// assertSameModelState compares embedding tables and dense parameters
// bitwise between two environments.
func assertSameModelState(t *testing.T, name string, a, b *Env) {
	t.Helper()
	for i := range a.Tables {
		if !a.Tables[i].Equal(b.Tables[i]) {
			t.Fatalf("%s: embedding table %d differs from baseline", name, i)
		}
	}
	pa, pb := a.Model.Params(), b.Model.Params()
	if len(pa) != len(pb) {
		t.Fatalf("%s: param count %d vs %d", name, len(pa), len(pb))
	}
	for i := range pa {
		wa, wb := pa[i].Weights(), pb[i].Weights()
		for j := range wa {
			if wa[j] != wb[j] {
				t.Fatalf("%s: dense param %d[%d]: %v vs %v", name, i, j, wa[j], wb[j])
			}
		}
	}
}

// TestEquivalence is the paper's central correctness claim: ScratchPipe
// "does not change the algorithmic properties of RecSys training" — after
// N iterations every engine must hold bitwise-identical model state to the
// sequential hybrid baseline.
func TestEquivalence(t *testing.T) {
	const iters = 30
	for _, class := range trace.Classes {
		class := class
		t.Run(class.String(), func(t *testing.T) {
			base := newTestEnv(t, class, 7)
			runAndFlush(t, NewHybrid(base), iters)

			builders := map[string]func(*Env) (Engine, error){
				"static-10pct": func(e *Env) (Engine, error) { return NewStaticCache(e, 0.10) },
				"strawman": func(e *Env) (Engine, error) {
					return NewStrawMan(e, 0.05, cache.LRU)
				},
				"scratchpipe-lru": func(e *Env) (Engine, error) {
					return NewScratchPipe(e, ScratchPipeOptions{CacheFrac: 0.05})
				},
				"scratchpipe-lfu": func(e *Env) (Engine, error) {
					return NewScratchPipe(e, ScratchPipeOptions{CacheFrac: 0.05, Policy: cache.LFU})
				},
				"scratchpipe-random": func(e *Env) (Engine, error) {
					return NewScratchPipe(e, ScratchPipeOptions{CacheFrac: 0.05, Policy: cache.RandomPolicy})
				},
				"scratchpipe-parallel": func(e *Env) (Engine, error) {
					return NewScratchPipe(e, ScratchPipeOptions{CacheFrac: 0.05, Parallel: true})
				},
				"multigpu": func(e *Env) (Engine, error) { return NewMultiGPU(e) },
			}
			for name, build := range builders {
				env := newTestEnv(t, class, 7)
				eng, err := build(env)
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				runAndFlush(t, eng, iters)
				assertSameModelState(t, name, env, base)
			}
		})
	}
}

// TestEquivalenceAdagrad extends the equivalence claim to a stateful
// optimizer: the per-row Adagrad accumulators must migrate through the
// scratchpad (prefetched at Collect, updated at Train, written back at
// Insert) and still end up bitwise identical to the baseline's — including
// the state tables themselves.
func TestEquivalenceAdagrad(t *testing.T) {
	const iters = 25
	newAdaEnv := func() *Env {
		env, err := NewEnv(EnvConfig{
			Model:      smallModel(),
			System:     hw.DefaultSystem(),
			Class:      trace.Medium,
			Seed:       41,
			Functional: true,
			Optimizer:  "adagrad",
		})
		if err != nil {
			t.Fatal(err)
		}
		return env
	}
	base := newAdaEnv()
	runAndFlush(t, NewHybrid(base), iters)

	for name, build := range map[string]func(*Env) (Engine, error){
		"static": func(e *Env) (Engine, error) { return NewStaticCache(e, 0.10) },
		"scratchpipe": func(e *Env) (Engine, error) {
			return NewScratchPipe(e, ScratchPipeOptions{CacheFrac: 0.05})
		},
		"strawman": func(e *Env) (Engine, error) { return NewStrawMan(e, 0.05, cache.LRU) },
	} {
		env := newAdaEnv()
		eng, err := build(env)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		runAndFlush(t, eng, iters)
		assertSameModelState(t, name, env, base)
		for i := range base.StateTables {
			if !env.StateTables[i].Equal(base.StateTables[i]) {
				t.Fatalf("%s: adagrad state table %d differs from baseline", name, i)
			}
		}
	}
}

// TestScratchPipeHazardFree verifies the §IV-C claim directly: with the
// paper's windows the pipeline performs zero conflicting accesses, even
// with all six stages running in parallel goroutines.
func TestScratchPipeHazardFree(t *testing.T) {
	for _, parallel := range []bool{false, true} {
		hz := core.NewHazardChecker(16)
		env := newTestEnv(t, trace.Random, 11)
		eng, err := NewScratchPipe(env, ScratchPipeOptions{
			CacheFrac: 0.05,
			Parallel:  parallel,
			Hazard:    hz,
		})
		if err != nil {
			t.Fatalf("NewScratchPipe: %v", err)
		}
		if _, err := eng.Run(40); err != nil {
			t.Fatalf("Run: %v", err)
		}
		if n := hz.Count(); n != 0 {
			t.Fatalf("parallel=%v: %d hazard violations, first: %v", parallel, n, hz.Violations()[0])
		}
	}
}

// TestHazardInjectionFutureWindow shows the converse: removing the future
// window reintroduces RAW-4 (eviction write-backs racing future batches'
// CPU-side collects), and the checker sees it.
func TestHazardInjectionFutureWindow(t *testing.T) {
	hz := core.NewHazardChecker(4)
	env := newTestEnv(t, trace.Random, 13)
	eng, err := NewScratchPipe(env, ScratchPipeOptions{
		CacheFrac:    0.02, // tiny cache: heavy eviction churn
		FutureWindow: -1,
		Hazard:       hz,
	})
	if err != nil {
		t.Fatalf("NewScratchPipe: %v", err)
	}
	if _, err := eng.Run(60); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if hz.Count() == 0 {
		t.Fatal("expected RAW-4 violations with the future window disabled, saw none")
	}
}

// TestHazardInjectionEarlyRelease shrinks the past window by releasing
// hold protection when a batch enters [Collect] instead of [Train]; the
// RAW-2/3 hazards (later batches evicting rows still being trained) must
// reappear.
func TestHazardInjectionEarlyRelease(t *testing.T) {
	hz := core.NewHazardChecker(4)
	env := newTestEnv(t, trace.Random, 17)
	eng, err := NewScratchPipe(env, ScratchPipeOptions{
		CacheFrac:       0.02,
		Hazard:          hz,
		UnsafeReleaseAt: core.StageCollect,
	})
	if err != nil {
		t.Fatalf("NewScratchPipe: %v", err)
	}
	if _, err := eng.Run(60); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if hz.Count() == 0 {
		t.Fatal("expected RAW-2/3 violations with early hold release, saw none")
	}
}

// TestScratchPipeAlwaysHitsAtTrain asserts the headline property: by the
// time a batch trains, every one of its embedding rows is resident in the
// scratchpad — the plan resolution covers every ID and training never
// touches CPU rows (enforced structurally: stageTrain only reads the
// cache view; here we check the plan covers all IDs).
func TestScratchPipeAlwaysHitsAtTrain(t *testing.T) {
	env := newTestEnv(t, trace.Medium, 23)
	eng, err := NewScratchPipe(env, ScratchPipeOptions{CacheFrac: 0.05})
	if err != nil {
		t.Fatalf("NewScratchPipe: %v", err)
	}
	rep, err := eng.Run(25)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.Fills == 0 {
		t.Fatal("expected some prefetch fills")
	}
	if rep.Iters != 25 {
		t.Fatalf("Iters = %d, want 25", rep.Iters)
	}
}

// TestEvictionLookaheadReducesMisses checks the deep look-ahead extension:
// hinting victim selection with batches beyond the hazard window must not
// change training results and should reduce prefetch traffic on a
// locality-bearing trace.
func TestEvictionLookaheadReducesMisses(t *testing.T) {
	run := func(lookahead int) (*Report, *Env) {
		env := newTestEnv(t, trace.Medium, 47)
		eng, err := NewScratchPipe(env, ScratchPipeOptions{
			CacheFrac:         0.05,
			EvictionLookahead: lookahead,
		})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := eng.Run(40)
		if err != nil {
			t.Fatal(err)
		}
		if err := eng.Flush(); err != nil {
			t.Fatal(err)
		}
		return rep, env
	}
	base, envBase := run(0)
	deep, envDeep := run(12)
	if deep.Fills > base.Fills {
		t.Errorf("deep look-ahead increased fills: %d vs %d", deep.Fills, base.Fills)
	}
	// Hints change placement, never values.
	assertSameModelState(t, "lookahead", envDeep, envBase)
}

// TestStrawManSlowerThanScratchPipe checks the pipelining claim of
// Figure 13: the straw-man (sum of stage latencies) must be slower per
// iteration than ScratchPipe (max stage latency) on the same workload.
func TestStrawManSlowerThanScratchPipe(t *testing.T) {
	envA := newTestEnv(t, trace.Low, 31)
	sm, err := NewStrawMan(envA, 0.05, cache.LRU)
	if err != nil {
		t.Fatal(err)
	}
	repA, err := sm.Run(25)
	if err != nil {
		t.Fatal(err)
	}
	envB := newTestEnv(t, trace.Low, 31)
	sp, err := NewScratchPipe(envB, ScratchPipeOptions{CacheFrac: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	repB, err := sp.Run(25)
	if err != nil {
		t.Fatal(err)
	}
	if repB.IterTime >= repA.IterTime {
		t.Fatalf("scratchpipe iter %.3gs not faster than strawman %.3gs", repB.IterTime, repA.IterTime)
	}
}
