// Fault-injection orchestration: the dynamic-cache engines walk the
// environment's hw.FaultPlan at the same between-Plans boundary the
// elastic reshard schedule uses (detection -> evacuate -> recover with
// batches still in flight, so the pipeline never drains), mutate the
// env's live topology clone, and drive the shard managers' failure
// reactions (shard.Manager.Evacuate / Degrade / Heal /
// ReelectAggregator). The bill lands in Report.Downtime (detection
// blips), Report.RecoveryTime (evacuation transfers, stamp re-syncs,
// re-elections, recovery-point replay), Report.LostResidency (entries
// dropped with their hosts, repriced as the cold misses that refill
// them), and the availability fraction.
//
// Checkpointing is the priced knob on the recovery point: with
// EnvConfig.CkptInterval > 0 every interval flushes the scratchpad's
// resident rows to stable storage (CheckpointTime), a host death then
// restores residency from the last flush at bulk-transfer prices and
// replays the iterations since it; with the interval at 0 the flushes
// cost nothing but a death drops residency cold. examples/failure_study
// sweeps the trade-off into an availability-vs-cost frontier.

package engine

import (
	"fmt"

	"repro/internal/hw"
)

// DefaultDetectLatency is the modeled failure-detection latency
// (seconds) charged to Report.Downtime when a service-affecting fault
// strikes — the heartbeat-timeout window before the fleet reacts. Link
// degradations charge nothing: the link stays up, only slower.
const DefaultDetectLatency = 0.5

// maybeFault prices the checkpoint-flush schedule and applies every
// fault event due before the batch at iteration it (0-based) is
// planned. wall is the engine's simulated time so far — the observed
// per-iteration rate prices recovery-point replay. Called by the
// dynamic-cache engines beside maybeReshard, between Plans.
func (d *dynamicState) maybeFault(it int, wall float64) error {
	cfg := &d.env.Cfg
	if cfg.CkptInterval > 0 && it%cfg.CkptInterval == 0 {
		d.ckptSecs += d.checkpointFlush()
		d.lastCkpt = it
	}
	if !cfg.Faults.Active() {
		return nil
	}
	boundary := int64(it + 1) // events use 1-based strike iterations
	for i := 0; i < len(d.heals); {
		if d.heals[i].Heal > boundary {
			i++
			continue
		}
		d.healEvent(d.heals[i])
		d.heals = append(d.heals[:i], d.heals[i+1:]...)
	}
	for d.faultNext < len(cfg.Faults.Events) && cfg.Faults.Events[d.faultNext].Iter <= boundary {
		e := cfg.Faults.Events[d.faultNext]
		d.faultNext++
		if err := d.strike(e, it, wall); err != nil {
			return err
		}
		if e.Heal > 0 {
			d.heals = append(d.heals, e)
		}
	}
	return nil
}

// strike applies one fault event to the live topology and the shard
// managers.
func (d *dynamicState) strike(e hw.FaultEvent, it int, wall float64) error {
	topo := d.env.Cfg.Topology
	switch e.Kind {
	case hw.FaultHostDown:
		d.downtimeSecs += DefaultDetectLatency
		return d.killHost(e.Host, it, wall)
	case hw.FaultLinkDown:
		d.downtimeSecs += DefaultDetectLatency
		topo.SetHostLinksDown(e.Host, e.HostB, true)
		d.partitions++
		if d.partitions == 1 {
			// The coordinator cannot sync stamps across the cut, so
			// every manager runs the partition-mode approx protocol
			// until the last partition heals; the stale view's damage
			// is measured as Report.CoordDivergence.
			for _, sp := range d.sps {
				sp.Degrade()
			}
		}
	case hw.FaultLinkDegraded:
		topo.DegradeHostLinks(e.Host, e.HostB, e.Factor)
	case hw.FaultAggLoss:
		d.downtimeSecs += DefaultDetectLatency
		for _, sp := range d.sps {
			d.recoverySecs += sp.ReelectAggregator(e.Host)
		}
	}
	return nil
}

// healEvent un-applies a link event at its heal iteration: the pair's
// links restore from the pristine clone (unless an endpoint has died
// since — dead hosts stay unreachable), and when the last partition
// heals every manager re-syncs stamps under its original protocol,
// priced into recovery.
func (d *dynamicState) healEvent(e hw.FaultEvent) {
	topo := d.env.Cfg.Topology
	topo.RestoreHostLinks(d.pristineTopo, e.Host, e.HostB)
	if d.deadHosts[e.Host] || d.deadHosts[e.HostB] {
		topo.SetHostLinksDown(e.Host, e.HostB, true)
	}
	if e.Kind == hw.FaultLinkDown {
		d.partitions--
		if d.partitions == 0 {
			for _, sp := range d.sps {
				d.recoverySecs += sp.Heal()
			}
		}
	}
}

// killHost applies a permanent host death: every link into the host
// goes down, each table's shards evacuate to the surviving nodes
// (hw.EvacuatePlacement chooses the homes, shard.Manager.Evacuate
// migrates and prices), and with checkpointing enabled the restored
// residency's recovery point is billed as replay of the iterations
// since the last flush.
func (d *dynamicState) killHost(h, it int, wall float64) error {
	topo := d.env.Cfg.Topology
	d.deadHosts[h] = true
	hostDead := func(host int) bool { return d.deadHosts[host] }
	seen := make(map[int]bool)
	for _, n := range topo.Nodes {
		if n.Host != h && !seen[n.Host] {
			seen[n.Host] = true
			topo.SetHostLinksDown(h, n.Host, true)
		}
	}
	var restore float64
	if d.env.Cfg.CkptInterval > 0 {
		restore = d.faultRowBytes()
	}
	for t, sp := range d.sps {
		place := sp.Placement()
		if place.Topo == nil {
			// Co-located control plane (S <= 1): nothing is placed on
			// the dead host, so there is nothing to evacuate.
			continue
		}
		newPlace, err := hw.EvacuatePlacement(place, hostDead)
		if err != nil {
			return fmt.Errorf("engine: host %d death: table %d: %w", h, t, err)
		}
		st, err := sp.Evacuate(newPlace, hostDead, restore)
		if err != nil {
			return fmt.Errorf("engine: host %d death: table %d: %w", h, t, err)
		}
		d.recoverySecs += st.Seconds
	}
	if d.env.Cfg.CkptInterval > 0 && it > d.lastCkpt && it > 0 {
		// Recovery point: the restored residency is the last flush's
		// image, so the iterations since then retrain at the run's
		// observed per-iteration rate.
		d.recoverySecs += float64(it-d.lastCkpt) * wall / float64(it)
	}
	return nil
}

// faultRowBytes is the per-row checkpoint-restore payload: one
// embedding row plus its optimizer state.
func (d *dynamicState) faultRowBytes() float64 {
	return float64(d.env.Cfg.Model.EmbeddingDim+d.env.StateDim) * 4
}

// checkpointFlush prices one periodic scratchpad checkpoint: every
// table's resident rows (embeddings + optimizer state) stream GPU->CPU
// over PCIe and then to stable storage at CPU streaming bandwidth. The
// cost scales with residency, so shorter intervals buy a nearer
// recovery point at a proportionally larger share of the run.
func (d *dynamicState) checkpointFlush() float64 {
	rows := 0
	for _, sp := range d.sps {
		rows += sp.Len()
	}
	bytes := float64(rows) * d.faultRowBytes()
	return d.cost.pcie(bytes) + d.env.Cfg.System.CPU.StreamTime(bytes)
}
