// Package engine implements the five training-system design points the
// paper evaluates against each other:
//
//   - Hybrid CPU-GPU without caching (Figure 4a) — the baseline.
//   - Hybrid CPU-GPU with a static top-N GPU embedding cache (Figure 4b).
//   - The straw-man dynamic cache without pipelining (§IV-B, Figure 8).
//   - ScratchPipe: the pipelined scratchpad runtime (§IV-C, Figure 10).
//   - An 8-GPU model-parallel "GPU-only" system (§VI-F, Table I).
//
// Every engine runs in one of two modes. In functional mode it executes the
// real float32 training math through the canonical primitives of
// internal/embed and internal/dlrm, so engines can be checked for bitwise
// equivalence. In metadata mode it tracks only sparse IDs and cache events,
// which lets the paper-scale configuration (8 x 10M-row tables) run in a
// few hundred MB. Both modes drive the same analytic timing model
// (internal/hw), because simulated latency depends only on event counts.
//
// Architecture orientation (DESIGN.md is the long form):
//
//   - [EnvConfig] -> [NewEnv] -> [Env]: one experiment environment — the
//     model shape, hardware platform, trace class, and the scale-out
//     knobs (Workers fan-out, Shards per table, Topology + Placement for
//     costed cross-node coordination, Coord protocol, Reshard schedule
//     for run-time elasticity). Every engine built over the same Env
//     sees the same batch stream.
//   - The two dynamic-cache engines (StrawMan, ScratchPipe) share
//     dynamicState: per-table shard.Manager control planes, the five
//     stage implementations with their timing formulas, and the
//     elastic-resharding hooks. ScratchPipe runs the stages through
//     core.Pipeline; the straw-man runs them back-to-back.
//   - [Report] is the output contract: simulated times (Wall, IterTime,
//     per-stage averages, CoordTime, MigrationTime), cache statistics,
//     coordination traffic (Coord, CoordDivergence), and resharding
//     totals (Resharding, FinalShards). The bench package renders the
//     paper's tables from Reports; EXPERIMENTS.md says how to reproduce
//     each one.
package engine

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dlrm"
	"repro/internal/embed"
	"repro/internal/hw"
	"repro/internal/metrics"
	"repro/internal/opt"
	"repro/internal/par"
	"repro/internal/serve"
	"repro/internal/shard"
	"repro/internal/tensor"
	"repro/internal/trace"
)

// EnvConfig describes one experiment environment.
type EnvConfig struct {
	// Model is the DLRM architecture (paper defaults: DefaultConfig).
	Model dlrm.Config
	// System is the hardware platform model.
	System hw.System
	// Class is the trace locality class.
	Class trace.Class
	// Seed drives every PRNG in the environment (trace, init, policies).
	Seed int64
	// Functional enables real float32 training; otherwise the engine
	// simulates metadata only.
	Functional bool
	// Optimizer selects the embedding optimizer (default SGD, the
	// paper's choice). Stateful optimizers allocate per-row state that
	// travels through the cache hierarchy alongside the embeddings.
	Optimizer opt.Kind
	// Workers bounds the host-side parallelism of the per-table stage
	// loops (tables are independent, so every engine fans its per-table
	// work across this many goroutines). 0 selects GOMAXPROCS; 1 forces
	// the serial path. Parallel runs produce bit-identical simulated
	// stats and functional results to Workers=1.
	Workers int
	// Shards partitions each table's scratchpad control plane across
	// this many socket shards (hash-partitioned ID space, per-shard
	// Hit-Maps/free lists/hold rings, cross-shard eviction-budget
	// coordination; see internal/shard). 0 and 1 select the unsharded
	// planner. Simulated stats and functional results are identical at
	// any shard count; Shards > 1 requires the LRU policy.
	Shards int
	// Topology places the shards of each table's scratchpad on the
	// nodes of a platform graph (sockets, hosts; see hw.Topology): the
	// cross-shard coordinator's messages are then charged to the links
	// the placement crosses and surface as Report.CoordTime. nil (or
	// any single-node topology) co-locates all shards at zero
	// coordination cost — the exact pre-topology behaviour, so every
	// figure is bit-identical to the unplaced tree.
	Topology *hw.Topology
	// Placement selects how shards spread over Topology's nodes:
	// stripe (default), range, or loadaware (greedy balance of each
	// table's per-shard query mass). Placement changes only the modeled
	// coordination latency, never plans or statistics.
	Placement hw.PlacementPolicy
	// Coord selects the cross-shard coordination protocol (see
	// internal/shard): exact (default, per-eviction rounds), batched
	// (one candidate batch per shard per Plan), hier (batched plus a
	// per-host aggregation tier), or approx (epoch-quantized recency
	// with zero stamp-sync traffic and a measured divergence). Exact,
	// batched, and hier produce identical plans and statistics; approx
	// may diverge and Report.CoordDivergence says by how much.
	Coord shard.CoordMode
	// CoordQuantum is approx mode's recency quantum in clock ticks
	// (0 selects the shard package default; 1 makes approx exact).
	CoordQuantum int
	// Reshard schedules run-time shard-count transitions for the
	// dynamic-cache engines (strawman/ScratchPipe; the static and
	// hybrid engines have no dynamic scratchpad and ignore it): static
	// "iter:shards" steps and/or a load-triggered growth policy. The
	// managers then migrate their live state between Plans — plans and
	// statistics are preserved exactly — and the migrated bytes are
	// priced on Topology, surfacing as Report.MigrationTime. The zero
	// spec disables elasticity. Reaching more than one shard requires
	// the LRU policy.
	Reshard ReshardSpec
	// Faults is the deterministic fault-injection schedule for the
	// dynamic-cache engines (hw.ParseFaultPlan's -fail grammar): host
	// deaths evacuate their shards to the survivors, link partitions
	// degrade coordination to the approx protocol until heal, and
	// aggregator losses trigger priced re-elections — all between
	// Plans, with the pipeline never draining. An active plan requires
	// a multi-host Topology; the zero plan is guaranteed not to perturb
	// a run in any way (bit-identical to the fault-free tree). The
	// recovery bill surfaces as Report.Downtime / RecoveryTime /
	// LostResidency / Availability.
	Faults hw.FaultPlan
	// CkptInterval prices a periodic scratchpad checkpoint flush every
	// this many iterations (0 disables): resident rows stream to stable
	// storage (Report.CheckpointTime), and a host death then restores
	// residency from the last flush instead of dropping it cold — the
	// knob trades per-interval flush cost against recovery point.
	CkptInterval int
	// Serve configures the online serving simulation (internal/serve):
	// RunServe plays an open-loop query stream through Serve.Replicas
	// scratchpad-holding workers behind the Serve.Router policy,
	// reusing this config's model/trace/topology/shard knobs. The zero
	// value keeps serving off and is guaranteed not to perturb any
	// training run.
	Serve serve.Options
}

// Env is the shared substrate an engine trains on: the batch stream and,
// in functional mode, the CPU embedding tables and the dense model.
type Env struct {
	Cfg    EnvConfig
	Gen    *trace.Generator
	Tables []*embed.Table
	// StateTables holds per-row optimizer state (nil for stateless
	// optimizers or metadata mode); it shadows Tables row for row.
	StateTables []*embed.Table
	Model       *dlrm.Model
	// Opt is the embedding optimizer shared by all engines of this env.
	Opt opt.SparseOptimizer
	// StateDim is the resolved per-row optimizer state width.
	StateDim int
	// Pool fans per-table work across Cfg.Workers goroutines; engines
	// built over this env share it.
	Pool *par.Pool
	// mlpIterTime caches costModel.mlpTime: it depends only on the
	// model and system configuration, and recomputing it (with its
	// layer-size slice appends) every cycle showed up in the hot-path
	// profile.
	mlpIterTime float64
}

// NewEnv materializes an environment from cfg.
func NewEnv(cfg EnvConfig) (*Env, error) {
	if err := cfg.Model.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.System.Validate(); err != nil {
		return nil, err
	}
	if cfg.Shards < 0 {
		return nil, fmt.Errorf("engine: Shards %d < 0", cfg.Shards)
	}
	if _, err := hw.ParsePlacementPolicy(string(cfg.Placement)); err != nil {
		return nil, err
	}
	if _, err := shard.ParseCoordMode(string(cfg.Coord)); err != nil {
		return nil, err
	}
	if cfg.CoordQuantum < 0 {
		return nil, fmt.Errorf("engine: CoordQuantum %d < 0", cfg.CoordQuantum)
	}
	if err := cfg.Reshard.Validate(); err != nil {
		return nil, err
	}
	if cfg.Topology != nil {
		if err := cfg.Topology.Validate(); err != nil {
			return nil, err
		}
	}
	if cfg.CkptInterval < 0 {
		return nil, fmt.Errorf("engine: CkptInterval %d < 0", cfg.CkptInterval)
	}
	if err := cfg.Serve.Validate(); err != nil {
		return nil, err
	}
	if cfg.Faults.Active() {
		if err := cfg.Faults.Validate(cfg.Topology); err != nil {
			return nil, err
		}
		// The engines mutate the topology while applying fault events;
		// a private clone keeps the caller's graph pristine.
		cfg.Topology = cfg.Topology.Clone()
	}
	gen, err := trace.NewGenerator(trace.GeneratorConfig{
		NumTables:    cfg.Model.NumTables,
		RowsPerTable: cfg.Model.RowsPerTable,
		Lookups:      cfg.Model.Lookups,
		BatchSize:    cfg.Model.BatchSize,
		DenseDim:     cfg.Model.DenseDim,
		Class:        cfg.Class,
		Seed:         cfg.Seed,
		MetadataOnly: !cfg.Functional,
	})
	if err != nil {
		return nil, err
	}
	env := &Env{Cfg: cfg, Gen: gen, Pool: par.New(cfg.Workers)}
	env.Opt, err = opt.New(cfg.Optimizer, cfg.Model.LR)
	if err != nil {
		return nil, err
	}
	env.StateDim = opt.EffectiveStateDim(env.Opt, cfg.Model.EmbeddingDim)
	if cfg.Functional {
		for t := 0; t < cfg.Model.NumTables; t++ {
			tbl, err := embed.NewTable(cfg.Model.RowsPerTable, cfg.Model.EmbeddingDim,
				newSeededRand(cfg.Seed+int64(1000+t)))
			if err != nil {
				return nil, err
			}
			env.Tables = append(env.Tables, tbl)
			if env.StateDim > 0 {
				st, err := embed.NewZeroTable(cfg.Model.RowsPerTable, env.StateDim)
				if err != nil {
					return nil, err
				}
				env.StateTables = append(env.StateTables, st)
			}
		}
		m, err := dlrm.New(cfg.Model, cfg.Seed+1)
		if err != nil {
			return nil, err
		}
		env.Model = m
	}
	env.mlpIterTime = costModel{env: env}.computeMLPTime()
	return env, nil
}

// stateTable returns table t's optimizer-state store, or nil when the
// optimizer is stateless.
func (e *Env) stateTable(t int) embed.RowStore {
	if e.StateTables == nil {
		return nil
	}
	return e.StateTables[t]
}

// DenseMatrix views the batch's dense features as a matrix.
func (e *Env) DenseMatrix(b *trace.Batch) *tensor.Matrix {
	return tensor.FromSlice(b.BatchSize, b.DenseDim, b.Dense)
}

// Report summarizes one engine run for the benchmark harness. All times
// are simulated seconds.
type Report struct {
	// Engine is the engine name; Iters the number of trained batches.
	Engine string
	Iters  int
	// Wall is total simulated time; IterTime the steady-state average
	// per training iteration.
	Wall     float64
	IterTime float64
	// Figure 5 / 12a buckets (averages per iteration). For the cached
	// engines GPUTime includes everything executed on the GPU.
	CPUEmbFwd float64
	CPUEmbBwd float64
	GPUTime   float64
	// StageAvg is the average latency of each pipeline stage per
	// iteration (Figure 12b); only the dynamic-cache engines fill it.
	StageAvg [core.NumStages]float64
	// CoordTime is the average per-iteration cross-node shard
	// coordination latency (victim merge, touch-stamp sync, free-slot
	// borrowing on the placement's links; included in the Plan stage's
	// time). Zero unless shards are placed across topology nodes.
	CoordTime float64
	// CoordWallTime is CoordTime's measured twin: the average
	// per-iteration wall-clock makespan of the same coordination
	// messages replayed through internal/msgplane's goroutine hosts
	// (critical and speculation-hidden shares together). It differs
	// from the modeled CoordTime exactly where the serial pricing model
	// ignores cross-host parallelism; benchgate gates the skew
	// (DESIGN.md §12). Zero under co-located placements.
	CoordWallTime float64
	// Overlap counts speculative-coordination outcomes across tables
	// (shard.OverlapStats); the zero value unless the run enabled
	// overlapped coordination against a distributed placement.
	Overlap shard.OverlapStats
	// CoordMode names the cross-shard coordination protocol the run
	// used (empty for engines without a dynamic scratchpad).
	CoordMode string
	// Coord totals the coordinator's cross-node traffic over the whole
	// run, summed across tables: per-pattern message rounds and payload
	// bytes (lifetime sums, not per-iteration averages — divide by
	// Iters for a per-Plan rate). Zero under co-located placements.
	Coord shard.CoordStats
	// CoordDivergence measures approx-mode eviction divergence against
	// the shadow exact planner, summed across tables; the zero value in
	// every exact-order mode.
	CoordDivergence shard.Divergence
	// MigrationTime is the total modeled elastic-resharding migration
	// latency of the run (seconds), summed across tables. Unlike
	// CoordTime it is episodic, not per-iteration: it adds to Wall but
	// is excluded from IterTime, and is zero without a reshard schedule
	// or when every migration is co-located.
	MigrationTime float64
	// Resharding totals the run's reshard events and migrated state
	// entries across tables (shard.ReshardStats; zero without a
	// schedule). Resharding.Seconds == MigrationTime.
	Resharding shard.ReshardStats
	// FinalShards is the per-table shard count when the run ended —
	// reported only under an active reshard schedule (0 otherwise), so
	// load-policy growth is observable.
	FinalShards int
	// Downtime totals the modeled service-outage time of the run's
	// fault schedule: the failure-detection window charged per
	// service-affecting strike. Episodic like MigrationTime — added to
	// Wall, excluded from IterTime; zero without faults.
	Downtime float64
	// RecoveryTime totals the modeled repair bill: evacuation
	// transfers, stamp re-syncs on partition heal, aggregator
	// re-elections, and (with checkpointing) recovery-point replay.
	// Episodic; zero without faults.
	RecoveryTime float64
	// CheckpointTime totals the periodic scratchpad checkpoint flushes
	// (CkptInterval's per-interval price; zero when disabled).
	// Episodic; counts as available time — the fleet keeps serving
	// while it flushes.
	CheckpointTime float64
	// LostResidency counts scratchpad entries dropped with their dead
	// hosts (Evac.LostResident): no wire cost at the fault, repriced as
	// the cold misses that later refill them.
	LostResidency int64
	// Evac totals the run's host-evacuation activity across tables
	// (shard.EvacStats; the zero value without host deaths).
	// Evac.Seconds is included in RecoveryTime.
	Evac shard.EvacStats
	// Availability is the fraction of total wall time the fleet was
	// serving: 1 - (Downtime+RecoveryTime)/Wall. Exactly 1 for
	// fault-free runs.
	Availability float64
	// CPUBusy/GPUBusy are average per-iteration device-active times for
	// the energy model (Figure 14).
	CPUBusy float64
	GPUBusy float64
	// Hits/Misses are occurrence-level cache statistics summed over all
	// tables; Fills/Evictions count scheduled row movements.
	Hits, Misses     int64
	Fills, Evictions int64
	// ReservePeak is the §VI-D overflow high-water mark (slots), summed
	// over tables.
	ReservePeak int
	// FillCycles counts pipeline ramp-up cycles excluded from IterTime.
	FillCycles int
	// CycleStats digests the distribution of steady-state pipeline
	// cycle latencies (ScratchPipe only): tails expose cycles whose
	// batch missed on an unusually large working set.
	CycleStats metrics.Summary
	// AvgLoss is the mean training loss (functional mode only).
	AvgLoss float64
}

// HitRate returns the occurrence-level cache hit rate.
func (r *Report) HitRate() float64 {
	total := r.Hits + r.Misses
	if total == 0 {
		return 0
	}
	return float64(r.Hits) / float64(total)
}

// Engine is one training-system design point.
type Engine interface {
	// Name identifies the engine ("hybrid", "static", "strawman",
	// "scratchpipe", "multigpu").
	Name() string
	// Run trains n mini-batches and returns the run report.
	Run(n int) (*Report, error)
}

// FlushTables writes any engine-side dirty cached rows back into the CPU
// tables so model state can be compared across engines. Engines that keep
// no GPU-resident dirty state implement it as a no-op.
type FlushTables interface {
	Flush() error
}

func validateIters(n int) error {
	if n <= 0 {
		return fmt.Errorf("engine: iterations %d <= 0", n)
	}
	return nil
}
