package engine

import (
	"repro/internal/serve"
)

// inferenceDenseTime prices one single-query dense forward pass: the
// bottom/top MLP chains and the feature interaction at batch size 1,
// one pass (no backward), operands read and written once. The training
// IterOverhead is deliberately excluded — that models the framework's
// per-training-iteration bookkeeping, while serving's launch overheads
// are already charged per-kernel inside serve.ServiceTime.
func inferenceDenseTime(env *Env) float64 {
	return inferenceDenseBatchTime(env, 1)
}

// inferenceDenseBatchTime prices the dense forward at serving batch
// size n on the MLP roofline: FLOPs and activation bytes scale with n,
// the weight-read bytes and the kernel launch are paid once — so the
// marginal cost of the n-th query is strictly below the first's, the
// amortization replica-side batching (serve.BatchSpec) exists to
// capture.
func inferenceDenseBatchTime(env *Env, n int) float64 {
	cfg := env.Cfg.Model
	flops := mlpFlopsPerIteration(cfg) / 3 / float64(cfg.BatchSize) * float64(n)
	acts := mlpActivationFloats(cfg) / float64(cfg.BatchSize) * float64(n)
	bytes := 2 * 4 * (mlpParamCount(cfg) + acts)
	return env.Cfg.System.GPU.MatmulTime(flops, bytes)
}

// RunServe plays the environment's serving configuration (EnvConfig's
// Serve options over its model, trace class, topology, and shard knobs)
// and returns the serving report. The training path is untouched:
// serving builds its own replica scratchpads from the same seed and
// never touches the environment's generator or tables.
func RunServe(env *Env) (*serve.Report, error) {
	cfg := env.Cfg
	return serve.Run(serve.Config{
		Options:      cfg.Serve,
		NumTables:    cfg.Model.NumTables,
		RowsPerTable: cfg.Model.RowsPerTable,
		Lookups:      cfg.Model.Lookups,
		EmbeddingDim: cfg.Model.EmbeddingDim,
		Dists:        env.Gen.Dists(),
		Seed:         cfg.Seed,
		System:       cfg.System,
		Topology:     cfg.Topology,
		Shards:       cfg.Shards,
		Coord:        cfg.Coord,
		CoordQuantum: cfg.CoordQuantum,
		Elastic:      cfg.Reshard.Active(),
		DenseTime:    inferenceDenseTime(env),
		DenseBatch:   func(n int) float64 { return inferenceDenseBatchTime(env, n) },
		Pool:         env.Pool,
	})
}
