package engine

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/embed"
	"repro/internal/par"
	"repro/internal/tensor"
	"repro/internal/trace"
)

// StaticCache is the hybrid CPU-GPU system augmented with the
// software-managed static GPU embedding cache of Figure 4b (after Yin et
// al.): the top-N hottest rows live in GPU memory for the whole run. Hit
// IDs train at GPU memory speed; missed IDs still pay the full CPU-side
// gather / duplicate / coalesce / scatter cost, and — critically — those
// misses sit on the training critical path, which is the limitation
// ScratchPipe removes.
type StaticCache struct {
	env     *Env
	cost    costModel
	topFrac float64
	caches  []*cache.Static
	// stateCaches shadow caches for per-row optimizer state (nil for
	// stateless optimizers): hot-row state lives in GPU memory too.
	stateCaches []*cache.Static
	// acc is per-table scratch for the parallel fan-out; reduced
	// serially in table order each iteration.
	acc []staticAcc
	// shards > 1 routes each table's hit/miss classification through
	// the sharded control plane: the distinct-ID list splits into
	// shards ranges classified concurrently (the static cache's hit
	// predicate is a pure function of the ID, so no hash routing is
	// needed), with per-shard counters reduced serially — identical
	// totals at any shard count. shardPool carries the per-table share
	// of the Workers budget, like the dynamic engines' shard fan-out.
	shards    int
	shardPool *par.Pool
	chunks    [][]staticChunk
}

// staticAcc collects one table's contribution to an iteration.
type staticAcc struct {
	cpuFwd, cpuBwd, gpu float64
	hitOcc, missOcc     int
}

// staticChunk collects one shard range's classification counts.
type staticChunk struct {
	hitOcc, missOcc, uniqHit, uniqMiss int
}

// NewStaticCache builds the engine with a per-table static cache sized to
// the top topFrac fraction of rows (the paper sweeps 2-10%).
func NewStaticCache(env *Env, topFrac float64) (*StaticCache, error) {
	if topFrac < 0 || topFrac > 1 {
		return nil, fmt.Errorf("engine: static: topFrac %g out of [0,1]", topFrac)
	}
	cfg := env.Cfg.Model
	topN := int64(topFrac * float64(cfg.RowsPerTable))
	s := &StaticCache{env: env, cost: costModel{env: env}, topFrac: topFrac}
	for t := 0; t < cfg.NumTables; t++ {
		var cpu *embed.Table
		if env.Cfg.Functional {
			cpu = env.Tables[t]
		}
		c, err := cache.NewStatic(cpu, cfg.RowsPerTable, cfg.EmbeddingDim, topN)
		if err != nil {
			return nil, err
		}
		s.caches = append(s.caches, c)
		if env.StateDim > 0 {
			var cpuState *embed.Table
			if env.Cfg.Functional {
				cpuState = env.StateTables[t]
			}
			sc, err := cache.NewStatic(cpuState, cfg.RowsPerTable, env.StateDim, topN)
			if err != nil {
				return nil, err
			}
			s.stateCaches = append(s.stateCaches, sc)
		}
	}
	s.acc = make([]staticAcc, cfg.NumTables)
	s.shards = env.Cfg.Shards
	if s.shards < 1 {
		s.shards = 1
	}
	if s.shards > 1 {
		s.shardPool = par.New((env.Pool.Workers() + cfg.NumTables - 1) / cfg.NumTables)
		s.chunks = make([][]staticChunk, cfg.NumTables)
		for t := range s.chunks {
			s.chunks[t] = make([]staticChunk, s.shards)
		}
	}
	return s, nil
}

// Name implements Engine.
func (s *StaticCache) Name() string { return "static" }

// TopFrac returns the configured cache fraction.
func (s *StaticCache) TopFrac() float64 { return s.topFrac }

// Run implements Engine.
func (s *StaticCache) Run(n int) (*Report, error) {
	if err := validateIters(n); err != nil {
		return nil, err
	}
	cfg := s.env.Cfg.Model
	rep := &Report{Engine: s.Name(), Iters: n}
	var lossSum float64
	for it := 0; it < n; it++ {
		b := s.env.Gen.Next()
		// Serial materialization before the per-table fan-out reads
		// the distinct-ID lists concurrently.
		b.EnsureUnique()

		var cpuFwd, cpuBwd, gpu float64
		// Sparse IDs cross PCIe once for hit/miss evaluation
		// (Figure 4b's first red arrow), missed IDs come back.
		totalIDsAll := cfg.NumTables * b.TotalIDs()
		cpuFwd += s.cost.pcie(idBytes(totalIDsAll) + s.cost.denseInputBytes())

		// Per-table fan-out: each table touches only its own cache and
		// its scratch accumulator slot; the reduction below runs in
		// table order for deterministic float summation.
		s.env.Pool.ForEach(cfg.NumTables, func(t int) {
			a := &s.acc[t]
			uniq, cnt := b.UniqueWithCounts(t)
			var hitOcc, missOcc, uniqHit, uniqMiss int
			if s.shards > 1 {
				chunks := s.chunks[t]
				s.shardPool.ForEach(s.shards, func(c int) {
					lo := c * len(uniq) / s.shards
					hi := (c + 1) * len(uniq) / s.shards
					var ch staticChunk
					for i := lo; i < hi; i++ {
						if s.caches[t].Hit(uniq[i]) {
							ch.uniqHit++
							ch.hitOcc += int(cnt[i])
						} else {
							ch.uniqMiss++
							ch.missOcc += int(cnt[i])
						}
					}
					chunks[c] = ch
				})
				for _, ch := range chunks {
					hitOcc += ch.hitOcc
					missOcc += ch.missOcc
					uniqHit += ch.uniqHit
					uniqMiss += ch.uniqMiss
				}
			} else {
				for i, id := range uniq {
					if s.caches[t].Hit(id) {
						uniqHit++
						hitOcc += int(cnt[i])
					} else {
						uniqMiss++
						missOcc += int(cnt[i])
					}
				}
			}
			s.caches[t].RecordQuery(hitOcc, missOcc)

			// Forward: GPU gathers hits; CPU gathers misses and
			// partially reduces them; partial sums cross PCIe.
			a.gpu = s.cost.gatherGPU(hitOcc) +
				s.cost.reduceGPU(hitOcc+cfg.BatchSize, cfg.BatchSize)
			a.cpuFwd = s.cost.gatherCPU(missOcc) +
				s.cost.reduceCPU(missOcc, cfg.BatchSize) +
				s.cost.pcie(s.cost.pooledBytes())

			// Backward: the pooled gradient crosses to the CPU for
			// the missed IDs; both sides duplicate/coalesce and
			// scatter their share.
			a.gpu += s.cost.dupCoalesceGPU(cfg.BatchSize, hitOcc, uniqHit) +
				s.cost.scatterUpdateGPU(uniqHit) +
				s.cost.stateUpdateGPU(uniqHit)
			a.cpuBwd = s.cost.pcie(s.cost.pooledBytes()) +
				s.cost.dupCoalesceCPU(cfg.BatchSize, missOcc, uniqMiss) +
				s.cost.scatterUpdateCPU(uniqMiss) +
				s.cost.stateUpdateCPU(uniqMiss)
			a.hitOcc, a.missOcc = hitOcc, missOcc
		})
		var missedBack int
		for t := 0; t < cfg.NumTables; t++ {
			a := &s.acc[t]
			rep.Hits += int64(a.hitOcc)
			rep.Misses += int64(a.missOcc)
			missedBack += a.missOcc
			gpu += a.gpu
			cpuFwd += a.cpuFwd
			cpuBwd += a.cpuBwd
		}
		cpuFwd += s.cost.pcie(idBytes(missedBack))
		gpu += s.cost.mlpTime()

		rep.CPUEmbFwd += cpuFwd
		rep.CPUEmbBwd += cpuBwd
		rep.GPUTime += gpu
		rep.Wall += cpuFwd + gpu + cpuBwd
		rep.CPUBusy += cpuFwd + cpuBwd
		rep.GPUBusy += gpu

		if s.env.Cfg.Functional {
			lossSum += float64(s.trainStep(b))
		}
		s.env.Gen.Recycle(b)
	}
	finalizeAverages(rep, n, lossSum)
	return rep, nil
}

// trainStep runs the real math. The static cache is an embed.RowStore that
// routes hot rows to the GPU copy and cold rows to the CPU table, so the
// canonical primitives execute the identical float program as the
// baseline.
func (s *StaticCache) trainStep(b *trace.Batch) float32 {
	cfg := s.env.Cfg.Model
	pooled := make([]*tensor.Matrix, cfg.NumTables)
	s.env.Pool.ForEach(cfg.NumTables, func(t int) {
		pooled[t] = embed.ForwardPooled(s.caches[t], b.Tables[t], b.BatchSize, b.Lookups)
	})
	res := s.env.Model.TrainStep(s.env.DenseMatrix(b), pooled, b.Labels)
	s.env.Pool.ForEach(cfg.NumTables, func(t int) {
		g := embed.DuplicateCoalesce(b.Tables[t], res.PooledGrads[t], b.Lookups)
		var state embed.RowStore
		if s.stateCaches != nil {
			state = s.stateCaches[t]
		}
		s.env.Opt.Apply(s.caches[t], state, g)
	})
	return res.Loss
}

// Flush implements FlushTables: write dirty hot rows (and their optimizer
// state) back to CPU tables.
func (s *StaticCache) Flush() error {
	for _, c := range s.caches {
		c.Flush()
	}
	for _, c := range s.stateCaches {
		c.Flush()
	}
	return nil
}
