package engine

import "testing"

// FuzzParseReshardSpec drives the -reshard grammar with arbitrary
// input. Properties (see hw.FuzzParseFaultPlan for the rationale —
// benchmark baselines match on the canonical form):
//
//  1. No input panics the parser.
//  2. Any accepted spec validates, and its String() form reparses to
//     the same canonical string (steps in schedule order, the load
//     clause last).
func FuzzParseReshardSpec(f *testing.F) {
	for _, seed := range []string{
		"",
		"200:4",
		"200:4,500:8",
		"load:8",
		"load:8:2.5",
		"200:4,load:8",
		"load:8,200:4",
		"500:8,200:4",
		"load:8,load:4",
		"200:0",
		"load:1",
		"load:8:0.5",
		"-1:4",
		"200:4:9",
		"200",
		",",
		" 200:4 , 500:8 ",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		spec, err := ParseReshardSpec(s)
		if err != nil {
			return
		}
		if err := spec.Validate(); err != nil {
			t.Fatalf("accepted spec %q fails Validate: %v", s, err)
		}
		canon := spec.String()
		again, err := ParseReshardSpec(canon)
		if err != nil {
			t.Fatalf("canonical form %q of accepted spec %q does not reparse: %v", canon, s, err)
		}
		if got := again.String(); got != canon {
			t.Fatalf("canonical form is not a fixpoint: %q -> %q -> %q", s, canon, got)
		}
	})
}
