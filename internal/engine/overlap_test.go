package engine

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/dlrm"
	"repro/internal/hw"
	"repro/internal/shard"
	"repro/internal/trace"
)

// runOverlapSP builds and runs a ScratchPipe over env with the given
// options.
func runOverlapSP(t *testing.T, env *Env, opts ScratchPipeOptions, iters int) *Report {
	t.Helper()
	eng, err := NewScratchPipe(env, opts)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := eng.Run(iters)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestOverlapReportEquivalence is the engine half of the overlapped-
// coordination tentpole: with -coord-overlap the plans, cache statistics,
// coordination traffic, and total modeled coordination latency are all
// unchanged — only WHERE the latency sits moves (out of the [Plan]
// critical path, into the concurrent overlap window), so the Plan stage
// and the run's modeled wall strictly shrink. The measured message-plane
// wall must also track the modeled total within the documented skew
// tolerance.
func TestOverlapReportEquivalence(t *testing.T) {
	model := dlrm.DefaultConfig()
	model.RowsPerTable = 50_000
	model.BatchSize = 128
	const shards = 4
	const iters = 40

	for _, mode := range []shard.CoordMode{shard.CoordExact, shard.CoordBatched, shard.CoordHier, shard.CoordApprox} {
		mode := mode
		t.Run(string(mode), func(t *testing.T) {
			base := runOverlapSP(t, coordEnv(t, model, shards, mode, 0),
				ScratchPipeOptions{CacheFrac: 0.02}, iters)
			over := runOverlapSP(t, coordEnv(t, model, shards, mode, 0),
				ScratchPipeOptions{CacheFrac: 0.02, CoordOverlap: true}, iters)

			if over.Hits != base.Hits || over.Misses != base.Misses ||
				over.Fills != base.Fills || over.Evictions != base.Evictions ||
				over.ReservePeak != base.ReservePeak {
				t.Fatalf("overlap changed cache behaviour:\noff %+v\non  %+v", base, over)
			}
			// Coordination traffic (bytes, rounds, every bucket) is
			// bit-identical; only the time-split fields may differ.
			bc, oc := base.Coord, over.Coord
			bc.Seconds, oc.Seconds = 0, 0
			bc.OverlapSeconds, oc.OverlapSeconds = 0, 0
			bc.WallSeconds, oc.WallSeconds = 0, 0
			bc.WallHiddenSeconds, oc.WallHiddenSeconds = 0, 0
			if !reflect.DeepEqual(bc, oc) {
				t.Fatalf("overlap changed coordination traffic:\noff %+v\non  %+v", bc, oc)
			}
			if base.Coord.Seconds <= 0 {
				t.Fatal("baseline run priced no coordination")
			}
			if rel := math.Abs(over.Coord.Seconds-base.Coord.Seconds) / base.Coord.Seconds; rel > 1e-9 {
				t.Fatalf("total coordination seconds moved by %g (off %g, on %g)",
					rel, base.Coord.Seconds, over.Coord.Seconds)
			}
			if rel := math.Abs(over.CoordTime-base.CoordTime) / base.CoordTime; rel > 1e-9 {
				t.Fatalf("Report.CoordTime moved by %g (off %g, on %g)", rel, base.CoordTime, over.CoordTime)
			}

			// Speculation outcomes: the baseline never speculates; the
			// overlapped run speculates every cycle and — undisturbed by
			// faults or resharding — adopts every speculation.
			if base.Overlap != (shard.OverlapStats{}) {
				t.Fatalf("baseline reports speculation: %+v", base.Overlap)
			}
			ov := over.Overlap
			if ov.Speculated == 0 || ov.Adopted != ov.Speculated || ov.RolledBack != 0 {
				t.Fatalf("undisturbed overlap run should adopt every speculation: %+v", ov)
			}
			if over.Coord.OverlapSeconds <= 0 || over.Coord.OverlapSeconds >= over.Coord.Seconds {
				t.Fatalf("hidden share %g not a strict share of total %g",
					over.Coord.OverlapSeconds, over.Coord.Seconds)
			}

			// The whole point: the critical coordination share charged
			// to [Plan] strictly drops, and with it the run's modeled
			// wall (fill cycles are Plan-bound even when the steady-state
			// cycle is bound elsewhere). The steady-state cycle never
			// gets slower.
			if over.StageAvg[core.StagePlan] >= base.StageAvg[core.StagePlan] {
				t.Fatalf("overlap did not shrink the Plan stage: on %g, off %g",
					over.StageAvg[core.StagePlan], base.StageAvg[core.StagePlan])
			}
			if over.Wall >= base.Wall {
				t.Fatalf("overlap did not reduce modeled wall: on %g, off %g", over.Wall, base.Wall)
			}
			if over.IterTime > base.IterTime {
				t.Fatalf("overlap made the steady-state cycle slower: on %g, off %g", over.IterTime, base.IterTime)
			}

			// Measured wall twin: present in both runs (the plane runs
			// whether or not speculation is on) and within the documented
			// skew tolerance of the modeled total (DESIGN.md §12).
			for name, rep := range map[string]*Report{"off": base, "on": over} {
				if rep.CoordWallTime <= 0 {
					t.Fatalf("%s: no measured coordination wall", name)
				}
				skew := math.Abs(rep.CoordTime-rep.CoordWallTime) / rep.CoordTime
				t.Logf("%s: modeled %g, measured %g, skew %.3f", name, rep.CoordTime, rep.CoordWallTime, skew)
				if skew > 0.75 {
					t.Fatalf("%s: modeled-vs-measured skew %.3f above tolerance 0.75", name, skew)
				}
			}
		})
	}
}

// TestOverlapColocatedIdentical: under co-located placement there is no
// coordinator, so -coord-overlap must be a perfect no-op — the report is
// bit-identical and no speculation is ever attempted.
func TestOverlapColocatedIdentical(t *testing.T) {
	model := dlrm.DefaultConfig()
	model.RowsPerTable = 50_000
	model.BatchSize = 128

	base := runOverlapSP(t, metaEnv(t, model, trace.Medium, 4),
		ScratchPipeOptions{CacheFrac: 0.02}, 20)
	over := runOverlapSP(t, metaEnv(t, model, trace.Medium, 4),
		ScratchPipeOptions{CacheFrac: 0.02, CoordOverlap: true}, 20)
	if over.Overlap != (shard.OverlapStats{}) {
		t.Fatalf("co-located run attempted speculation: %+v", over.Overlap)
	}
	if !reflect.DeepEqual(base, over) {
		t.Fatalf("co-located overlap not a no-op:\noff %+v\non  %+v", base, over)
	}
}

// TestOverlapWithFaultsStaysEquivalent drives the overlapped engine
// through the fault schedule used by the recovery tests: every fault
// event invalidates in-flight speculation, so some snapshots roll back,
// yet cache statistics and coordination traffic match the non-overlapped
// run exactly.
func TestOverlapWithFaultsStaysEquivalent(t *testing.T) {
	model := dlrm.DefaultConfig()
	model.RowsPerTable = 50_000
	model.BatchSize = 128
	const iters = 40

	plan, err := hw.ParseFaultPlan("link:host0-host1@8-14,agg1@22")
	if err != nil {
		t.Fatal(err)
	}
	mk := func(overlap bool) *Report {
		env, err := NewEnv(EnvConfig{
			Model:     model,
			System:    hw.DefaultSystem(),
			Class:     trace.Medium,
			Seed:      42,
			Workers:   2,
			Shards:    4,
			Topology:  hw.Cluster(2, 2),
			Placement: hw.PlaceStripe,
			Coord:     shard.CoordHier,
			Faults:    plan,
		})
		if err != nil {
			t.Fatal(err)
		}
		return runOverlapSP(t, env, ScratchPipeOptions{CacheFrac: 0.02, CoordOverlap: overlap}, iters)
	}

	base := mk(false)
	over := mk(true)
	if over.Hits != base.Hits || over.Misses != base.Misses ||
		over.Fills != base.Fills || over.Evictions != base.Evictions {
		t.Fatalf("faulted overlap changed cache behaviour:\noff %+v\non  %+v", base, over)
	}
	bc, oc := base.Coord, over.Coord
	bc.Seconds, oc.Seconds = 0, 0
	bc.OverlapSeconds, oc.OverlapSeconds = 0, 0
	bc.WallSeconds, oc.WallSeconds = 0, 0
	bc.WallHiddenSeconds, oc.WallHiddenSeconds = 0, 0
	if !reflect.DeepEqual(bc, oc) {
		t.Fatalf("faulted overlap changed coordination traffic:\noff %+v\non  %+v", bc, oc)
	}
	if over.Overlap.Speculated == 0 || over.Overlap.Adopted == 0 {
		t.Fatalf("faulted overlap run never adopted: %+v", over.Overlap)
	}
	if over.Overlap.RolledBack == 0 {
		t.Fatalf("fault events should have invalidated at least one speculation: %+v", over.Overlap)
	}
}
