package engine

import (
	"fmt"
	"testing"

	"repro/internal/dlrm"
	"repro/internal/hw"
	"repro/internal/trace"
)

// benchModel is a metadata-mode configuration heavy enough that per-table
// work dominates dispatch overhead (8 tables, paper-like ID volume).
func benchModel() dlrm.Config {
	cfg := dlrm.DefaultConfig()
	cfg.RowsPerTable = 200_000
	cfg.BatchSize = 256
	return cfg
}

// BenchmarkCycleParallelTables measures one steady-state ScratchPipe
// pipeline cycle (all six stages, one batch retired) at several worker
// counts; 1 worker is the serial baseline.
func BenchmarkCycleParallelTables(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 0} {
		name := fmt.Sprintf("workers=%d", workers)
		if workers == 0 {
			name = "workers=GOMAXPROCS"
		}
		b.Run(name, func(b *testing.B) {
			env, err := NewEnv(EnvConfig{
				Model:   benchModel(),
				System:  hw.DefaultSystem(),
				Class:   trace.Medium,
				Seed:    42,
				Workers: workers,
			})
			if err != nil {
				b.Fatal(err)
			}
			eng, err := NewScratchPipe(env, ScratchPipeOptions{CacheFrac: 0.02})
			if err != nil {
				b.Fatal(err)
			}
			// One warm-up window so the pipeline is full and every
			// pool has stabilized, then measure b.N iterations in
			// one Run call.
			if _, err := eng.Run(16); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			if _, err := eng.Run(b.N); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkCycleSharded measures the steady-state ScratchPipe cycle at
// several per-table shard counts (shards plan concurrently within each
// table, on top of the cross-table fan-out; simulated results are
// identical at every point — only wall time may differ).
func BenchmarkCycleSharded(b *testing.B) {
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			env, err := NewEnv(EnvConfig{
				Model:  benchModel(),
				System: hw.DefaultSystem(),
				Class:  trace.Medium,
				Seed:   42,
				Shards: shards,
			})
			if err != nil {
				b.Fatal(err)
			}
			eng, err := NewScratchPipe(env, ScratchPipeOptions{CacheFrac: 0.02})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := eng.Run(16); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			if _, err := eng.Run(b.N); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkStrawManCycle is the unpipelined counterpart, isolating the
// per-table stage work without pipeline bookkeeping.
func BenchmarkStrawManCycle(b *testing.B) {
	env, err := NewEnv(EnvConfig{
		Model:  benchModel(),
		System: hw.DefaultSystem(),
		Class:  trace.Medium,
		Seed:   42,
	})
	if err != nil {
		b.Fatal(err)
	}
	eng, err := NewStrawMan(env, 0.02, "lru")
	if err != nil {
		b.Fatal(err)
	}
	if _, err := eng.Run(16); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	if _, err := eng.Run(b.N); err != nil {
		b.Fatal(err)
	}
}
