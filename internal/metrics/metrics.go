// Package metrics provides the small streaming statistics the engines
// report: per-cycle latency distributions (mean/percentiles) and counters.
// The paper reports averages; tail percentiles expose pipeline jitter —
// e.g. the periodic cycles where an unlucky batch misses on its whole
// working set.
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// Series collects float64 samples for summary statistics.
type Series struct {
	samples []float64
	sorted  bool
}

// Add appends one sample.
func (s *Series) Add(v float64) {
	s.samples = append(s.samples, v)
	s.sorted = false
}

// Len returns the number of samples.
func (s *Series) Len() int { return len(s.samples) }

// Summary is the digest of a Series.
type Summary struct {
	Count         int
	Mean          float64
	Min, Max      float64
	P50, P95, P99 float64
	StdDev        float64
	Total         float64
}

// Summarize computes the digest. An empty series yields a zero Summary.
func (s *Series) Summarize() Summary {
	n := len(s.samples)
	if n == 0 {
		return Summary{}
	}
	if !s.sorted {
		sort.Float64s(s.samples)
		s.sorted = true
	}
	var sum, sumSq float64
	for _, v := range s.samples {
		sum += v
		sumSq += v * v
	}
	mean := sum / float64(n)
	variance := sumSq/float64(n) - mean*mean
	if variance < 0 {
		variance = 0
	}
	return Summary{
		Count:  n,
		Mean:   mean,
		Min:    s.samples[0],
		Max:    s.samples[n-1],
		P50:    s.Quantile(0.50),
		P95:    s.Quantile(0.95),
		P99:    s.Quantile(0.99),
		StdDev: math.Sqrt(variance),
		Total:  sum,
	}
}

// Quantile returns the q-quantile (q in [0,1]) using nearest-rank with
// linear interpolation. The series is sorted as a side effect.
func (s *Series) Quantile(q float64) float64 {
	n := len(s.samples)
	if n == 0 {
		return 0
	}
	if !s.sorted {
		sort.Float64s(s.samples)
		s.sorted = true
	}
	if q <= 0 {
		return s.samples[0]
	}
	if q >= 1 {
		return s.samples[n-1]
	}
	pos := q * float64(n-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= n {
		return s.samples[n-1]
	}
	return s.samples[lo]*(1-frac) + s.samples[lo+1]*frac
}

// String renders the summary compactly in milliseconds (values are
// interpreted as seconds, matching the engines' units).
func (sum Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.3fms p50=%.3fms p95=%.3fms p99=%.3fms max=%.3fms",
		sum.Count, sum.Mean*1e3, sum.P50*1e3, sum.P95*1e3, sum.P99*1e3, sum.Max*1e3)
}
