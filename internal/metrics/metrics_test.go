package metrics

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestEmptySeries(t *testing.T) {
	var s Series
	sum := s.Summarize()
	if sum.Count != 0 || sum.Mean != 0 || sum.Max != 0 {
		t.Fatalf("empty summary %+v", sum)
	}
	if s.Quantile(0.5) != 0 {
		t.Fatal("empty quantile non-zero")
	}
}

func TestKnownSummary(t *testing.T) {
	var s Series
	for _, v := range []float64{4, 1, 3, 2, 5} {
		s.Add(v)
	}
	sum := s.Summarize()
	if sum.Count != 5 || sum.Mean != 3 || sum.Min != 1 || sum.Max != 5 || sum.Total != 15 {
		t.Fatalf("summary %+v", sum)
	}
	if sum.P50 != 3 {
		t.Fatalf("p50 = %v", sum.P50)
	}
	if math.Abs(sum.StdDev-math.Sqrt(2)) > 1e-12 {
		t.Fatalf("stddev = %v", sum.StdDev)
	}
}

func TestQuantileEndpoints(t *testing.T) {
	var s Series
	s.Add(10)
	s.Add(20)
	if s.Quantile(0) != 10 || s.Quantile(1) != 20 {
		t.Fatalf("endpoints %v %v", s.Quantile(0), s.Quantile(1))
	}
	if got := s.Quantile(0.5); got != 15 {
		t.Fatalf("interpolated median = %v", got)
	}
}

// TestQuantileMonotoneProperty: quantiles are monotone in q and bounded by
// min/max.
func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(raw []float64, qa, qb float64) bool {
		if len(raw) == 0 {
			return true
		}
		var s Series
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = 0
			}
			s.Add(math.Mod(v, 1e6))
		}
		qa = math.Abs(math.Mod(qa, 1))
		qb = math.Abs(math.Mod(qb, 1))
		if qa > qb {
			qa, qb = qb, qa
		}
		va, vb := s.Quantile(qa), s.Quantile(qb)
		sum := s.Summarize()
		return va <= vb+1e-9 && va >= sum.Min-1e-9 && vb <= sum.Max+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestMeanMatchesDirectComputation cross-checks against a straightforward
// reference on a deterministic ramp.
func TestMeanMatchesDirectComputation(t *testing.T) {
	var s Series
	vals := make([]float64, 101)
	for i := range vals {
		vals[i] = float64(i)
		s.Add(float64(i))
	}
	sum := s.Summarize()
	if sum.Mean != 50 {
		t.Fatalf("mean = %v", sum.Mean)
	}
	sort.Float64s(vals)
	if sum.P95 != vals[95] {
		t.Fatalf("p95 = %v want %v", sum.P95, vals[95])
	}
	if sum.String() == "" {
		t.Fatal("empty string rendering")
	}
}
