// Hot-path benchmark harness: measures the Figure 13 sweep — the run
// that exercises every engine's steady-state cycle — with real wall-clock
// and allocator counters, and appends the result to a JSON history file
// so successive PRs can track the simulator's performance trajectory.

package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/engine"
	"repro/internal/shard"
	"repro/internal/trace"
)

// HotPathResult is one measurement of the hot-path benchmark.
type HotPathResult struct {
	// Timestamp is RFC3339 UTC at measurement time.
	Timestamp string `json:"timestamp"`
	// Config labels the benchmark configuration ("quick" or "full").
	Config string `json:"config"`
	// Workers is the per-table fan-out bound; GoMaxProcs the host
	// parallelism it resolved against.
	Workers    int `json:"workers"`
	GoMaxProcs int `json:"gomaxprocs"`
	// Shards is the per-table scratchpad shard count (0/1 = unsharded),
	// so the history records per-shard-count scaling of the same sweep.
	Shards int `json:"shards,omitempty"`
	// Topology/Placement record the shard placement shape of the sweep
	// (empty = all shards co-located / stripe): entries of the
	// sharded+placement family gate independently of the co-located
	// baseline, whose coordination cost is zero by construction.
	Topology  string `json:"topology,omitempty"`
	Placement string `json:"placement,omitempty"`
	// CoordMode records the cross-shard coordination protocol of the
	// sweep (empty = exact, the per-eviction reference protocol).
	CoordMode string `json:"coord_mode,omitempty"`
	// CoordRounds/CoordSeconds total the sweep's cross-node
	// coordination message rounds and modeled link time (simulated
	// quantities: deterministic for a given configuration, so benchgate
	// gates protocol regressions on them exactly).
	CoordRounds  int64   `json:"coord_rounds,omitempty"`
	CoordSeconds float64 `json:"coord_seconds,omitempty"`
	// CoordWallSeconds is the MEASURED coordination wall: the message
	// plane's makespan (internal/msgplane), recorded beside the modeled
	// CoordSeconds so benchgate can gate the modeled-vs-measured skew
	// |modeled - measured| / modeled within the documented tolerance
	// (DESIGN.md §12).
	CoordWallSeconds float64 `json:"coord_wall_seconds,omitempty"`
	// CoordOverlap records whether the sweep ran with overlapped
	// coordination (-coord-overlap): overlap entries are their own
	// family — same traffic, different wall shape.
	CoordOverlap bool `json:"coord_overlap,omitempty"`
	// OverlapSpeculated/Adopted/RolledBack total the sweep's speculation
	// outcomes (deterministic; benchgate gates them exactly so a guard
	// regression that silently stops adopting is caught).
	OverlapSpeculated int64 `json:"overlap_speculated,omitempty"`
	OverlapAdopted    int64 `json:"overlap_adopted,omitempty"`
	OverlapRolledBack int64 `json:"overlap_rolled_back,omitempty"`
	// SimWallSeconds totals the ScratchPipe runs' modeled wall across
	// the sweep's data points (deterministic). The overlap family's
	// value must sit strictly below its non-overlapped twin entry —
	// that is the gated "hot-path wall measurably drops" criterion.
	SimWallSeconds float64 `json:"sim_wall_seconds,omitempty"`
	// Reshard records the elastic-resharding schedule of the sweep in
	// the -reshard grammar (empty = no resharding): reshard entries
	// gate independently, since mid-sweep migration changes both the
	// allocation shape and the coordination totals.
	Reshard string `json:"reshard,omitempty"`
	// MigrationSeconds totals the sweep's modeled state-migration
	// latency (simulated, deterministic).
	MigrationSeconds float64 `json:"migration_seconds,omitempty"`
	// Faults records the fault schedule of the sweep in the -fail
	// grammar (empty = fault-free): fault entries gate independently,
	// since mid-sweep evacuation and degraded-mode coordination change
	// both the recovery bill and the coordination totals.
	Faults string `json:"faults,omitempty"`
	// CkptInterval records the checkpoint-flush interval of the sweep
	// (0 = checkpointing disabled).
	CkptInterval int `json:"ckpt_interval,omitempty"`
	// DowntimeSeconds/RecoverySeconds total the sweep's modeled outage
	// and repair time (simulated: deterministic for a given fault
	// schedule, so benchgate gates recovery-path regressions exactly).
	DowntimeSeconds float64 `json:"downtime_seconds,omitempty"`
	RecoverySeconds float64 `json:"recovery_seconds,omitempty"`
	// Serve/ServeArrival/ServeReplicas record the serving-family shape:
	// entries with a router name measured the online serving simulation
	// (internal/serve) instead of the Figure 13 training sweep and gate
	// independently of every training family.
	Serve         string `json:"serve,omitempty"`
	ServeArrival  string `json:"serve_arrival,omitempty"`
	ServeReplicas int    `json:"serve_replicas,omitempty"`
	// ServeThroughput/ServeHitRate/ServeP99Ms/ServeDrops are the serving
	// run's headline results (simulated, deterministic in the seed, so
	// benchgate gates routing regressions on them exactly).
	ServeThroughput float64 `json:"serve_throughput,omitempty"`
	ServeHitRate    float64 `json:"serve_hit_rate,omitempty"`
	ServeP99Ms      float64 `json:"serve_p99_ms,omitempty"`
	ServeDrops      int64   `json:"serve_drops,omitempty"`
	// ServeFaults/ServeResilience record the failure schedule
	// (-serve-fail, canonical FaultPlan form) and the engaged
	// client-resilience knobs (Options.ResilienceString) of a serving
	// sweep: fault-injected entries are their own family, gated
	// independently of fault-free serving baselines.
	ServeFaults     string `json:"serve_faults,omitempty"`
	ServeResilience string `json:"serve_resilience,omitempty"`
	// ServeAvailability/ServeGoodput are the fault family's headline
	// results; ServeRetried/ServeHedged/ServeShed/ServeTimedOut the
	// deterministic resilience counters benchgate matches exactly.
	ServeAvailability float64 `json:"serve_availability,omitempty"`
	ServeGoodput      float64 `json:"serve_goodput,omitempty"`
	ServeRetried      int64   `json:"serve_retried,omitempty"`
	ServeHedged       int64   `json:"serve_hedged,omitempty"`
	ServeShed         int64   `json:"serve_shed,omitempty"`
	ServeTimedOut     int64   `json:"serve_timed_out,omitempty"`
	// ServeBatch records the replica-side batching knob in canonical
	// BatchSpec form (empty = unbatched): batched entries are their own
	// family, gated independently of unbatched serving baselines.
	// ServeBatches/ServeBatchedQueries/ServeMaxBatch are the batcher's
	// deterministic counters, which benchgate matches exactly so a
	// scheduling regression that silently changes batch formation is
	// caught even when throughput barely moves.
	ServeBatch          string `json:"serve_batch,omitempty"`
	ServeBatches        int64  `json:"serve_batches,omitempty"`
	ServeBatchedQueries int64  `json:"serve_batched_queries,omitempty"`
	ServeMaxBatch       int    `json:"serve_max_batch,omitempty"`
	// Iters is the measured iterations per data point.
	Iters int `json:"iters"`
	// WallSeconds is the real time of one full Figure 13 sweep.
	WallSeconds float64 `json:"wall_seconds"`
	// Allocs/AllocBytes are the allocator's object and byte counts over
	// the sweep (runtime.MemStats deltas).
	Allocs     uint64 `json:"allocs"`
	AllocBytes uint64 `json:"alloc_bytes"`
	// ScratchPipeSpeedupAvg is the simulated headline result (mean
	// ScratchPipe speedup vs the static cache across all data points),
	// recorded so a perf regression that silently changes simulated
	// results is caught alongside one that slows the simulator.
	ScratchPipeSpeedupAvg float64 `json:"scratchpipe_speedup_avg"`
	// Note carries free-form context (e.g. "pre-change baseline").
	Note string `json:"note,omitempty"`
}

// HotPathHistory is the on-disk format of BENCH_hotpath.json.
type HotPathHistory struct {
	History []HotPathResult `json:"history"`
}

// HotPath runs one Figure 13 sweep under cfg and returns the
// measurement. With cfg.Serve active it measures the online serving
// simulation (the serving hot path) instead of the training sweep.
func HotPath(cfg Config, configName string) (*HotPathResult, error) {
	if cfg.Serve.Active() {
		return hotPathServe(cfg, configName)
	}
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	pts, err := CollectFigure13(cfg)
	if err != nil {
		return nil, err
	}
	wall := time.Since(start)
	runtime.ReadMemStats(&after)

	var spSum, coordSec, coordWallSec, migSec, downSec, recovSec, simWall float64
	var coordRounds int64
	var overlap shard.OverlapStats
	for _, p := range pts {
		_, _, sp := p.SpeedupVsStatic()
		spSum += sp
		coordRounds += p.CoordRounds
		coordSec += p.CoordSeconds
		coordWallSec += p.CoordWallSeconds
		simWall += p.ScratchPipeWall
		overlap.Merge(p.Overlap)
		migSec += p.MigrationSeconds
		downSec += p.DowntimeSeconds
		recovSec += p.RecoverySeconds
	}
	topoName := ""
	if cfg.Topology != nil {
		topoName = cfg.Topology.Name
	}
	// The protocol is recorded even for co-located sweeps: batched/hier
	// exercise the candidate-batch machinery (different allocation
	// shape) and approx changes eviction order regardless of placement,
	// so their entries must not masquerade as exact baselines.
	coordMode := ""
	if mode, err := shard.ParseCoordMode(string(cfg.Coord)); err == nil && mode != shard.CoordExact {
		coordMode = string(mode)
	}
	return &HotPathResult{
		Timestamp:             time.Now().UTC().Format(time.RFC3339),
		Config:                configName,
		Workers:               cfg.Workers,
		Shards:                cfg.Shards,
		Topology:              topoName,
		Placement:             string(cfg.Placement),
		CoordMode:             coordMode,
		CoordRounds:           coordRounds,
		CoordSeconds:          coordSec,
		CoordWallSeconds:      coordWallSec,
		CoordOverlap:          cfg.CoordOverlap,
		OverlapSpeculated:     overlap.Speculated,
		OverlapAdopted:        overlap.Adopted,
		OverlapRolledBack:     overlap.RolledBack,
		SimWallSeconds:        simWall,
		Reshard:               cfg.Reshard.String(),
		MigrationSeconds:      migSec,
		Faults:                cfg.Faults.String(),
		CkptInterval:          cfg.CkptInterval,
		DowntimeSeconds:       downSec,
		RecoverySeconds:       recovSec,
		GoMaxProcs:            runtime.GOMAXPROCS(0),
		Iters:                 cfg.Iters,
		WallSeconds:           wall.Seconds(),
		Allocs:                after.Mallocs - before.Mallocs,
		AllocBytes:            after.TotalAlloc - before.TotalAlloc,
		ScratchPipeSpeedupAvg: spSum / float64(len(pts)),
	}, nil
}

// hotPathServe measures the serving hot path: one engine.RunServe pass
// on the skewed (High locality) trace under cfg's serving options, with
// wall-clock/allocator counters around it and the deterministic
// throughput/hit-rate/p99 results recorded for benchgate's serving
// family.
func hotPathServe(cfg Config, configName string) (*HotPathResult, error) {
	cfg.Serve = cfg.Serve.WithDefaults()
	env, err := newEnv(cfg, cfg.Model, trace.High)
	if err != nil {
		return nil, err
	}
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	rep, err := engine.RunServe(env)
	if err != nil {
		return nil, err
	}
	wall := time.Since(start)
	runtime.ReadMemStats(&after)
	topoName := ""
	if cfg.Topology != nil {
		topoName = cfg.Topology.Name
	}
	// Serving entries carry the same coordination columns as training
	// entries: protocol, rounds, modeled seconds, measured wall.
	coordMode := ""
	if mode, err := shard.ParseCoordMode(string(cfg.Coord)); err == nil && mode != shard.CoordExact {
		coordMode = string(mode)
	}
	return &HotPathResult{
		Timestamp:           time.Now().UTC().Format(time.RFC3339),
		Config:              configName,
		Workers:             cfg.Workers,
		Shards:              cfg.Shards,
		Topology:            topoName,
		Placement:           string(cfg.Placement),
		CoordMode:           coordMode,
		CoordRounds:         rep.CoordRounds,
		CoordSeconds:        rep.CoordTime,
		CoordWallSeconds:    rep.CoordWallTime,
		Serve:               string(rep.Router),
		ServeArrival:        cfg.Serve.Arrival.String(),
		ServeReplicas:       rep.Replicas,
		ServeThroughput:     rep.Throughput,
		ServeHitRate:        rep.HitRate(),
		ServeP99Ms:          rep.Latency.P99 * 1e3,
		ServeDrops:          rep.Drops,
		ServeFaults:         cfg.Serve.Faults.String(),
		ServeResilience:     cfg.Serve.ResilienceString(),
		ServeAvailability:   rep.Availability,
		ServeGoodput:        rep.Goodput,
		ServeRetried:        rep.Retried,
		ServeHedged:         rep.Hedged,
		ServeShed:           rep.Shed,
		ServeTimedOut:       rep.TimedOut,
		ServeBatch:          rep.Batch.String(),
		ServeBatches:        rep.Batches,
		ServeBatchedQueries: rep.BatchedQueries,
		ServeMaxBatch:       rep.MaxBatch,
		GoMaxProcs:          runtime.GOMAXPROCS(0),
		Iters:               cfg.Iters,
		WallSeconds:         wall.Seconds(),
		Allocs:              after.Mallocs - before.Mallocs,
		AllocBytes:          after.TotalAlloc - before.TotalAlloc,
	}, nil
}

// AppendHotPath appends res to the JSON history at path (creating it if
// absent) and returns the full history.
func AppendHotPath(path string, res *HotPathResult) (*HotPathHistory, error) {
	hist := &HotPathHistory{}
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, hist); err != nil {
			return nil, fmt.Errorf("bench: %s exists but is not a hot-path history: %w", path, err)
		}
	} else if !os.IsNotExist(err) {
		return nil, err
	}
	hist.History = append(hist.History, *res)
	data, err := json.MarshalIndent(hist, "", "  ")
	if err != nil {
		return nil, err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return nil, err
	}
	return hist, nil
}
