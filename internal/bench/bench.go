// Package bench regenerates every table and figure of the paper's
// evaluation section (§VI). Each runner builds the relevant engines in
// metadata mode at the paper-scale default configuration (8 tables x 10M
// rows x 128-dim, batch 2048, 20 lookups), simulates a window of training
// iterations, and prints the same rows/series the paper plots.
//
// Absolute times come from the calibrated analytic model in internal/hw;
// the claims to check are the *shapes*: who wins, by what factor, and
// where the crossovers fall. DESIGN.md records the calibration rationale
// behind the absolute numbers.
package bench

import (
	"fmt"
	"strings"

	"repro/internal/dlrm"
	"repro/internal/engine"
	"repro/internal/hw"
	"repro/internal/serve"
	"repro/internal/shard"
	"repro/internal/trace"
)

// Config parameterizes a benchmark run.
type Config struct {
	// Model is the RecSys configuration every experiment starts from.
	Model dlrm.Config
	// System is the hardware model.
	System hw.System
	// Iters is the number of measured training iterations per data
	// point (pipeline fill cycles are excluded automatically).
	Iters int
	// Seed drives all randomness.
	Seed int64
	// Workers bounds the per-table fan-out parallelism of every engine
	// (0 = GOMAXPROCS, 1 = serial). Simulated results are bit-identical
	// at any worker count.
	Workers int
	// Shards partitions every table's scratchpad control plane across
	// socket shards (0/1 = unsharded; see internal/shard). Simulated
	// results are identical at any shard count.
	Shards int
	// Topology places the shards on a platform graph and Placement
	// picks the shard-to-node policy (stripe/range/loadaware): the
	// shard coordinator's traffic is then priced on the crossed links.
	// nil topology co-locates everything at zero cost, keeping every
	// figure bit-identical to the unplaced tree.
	Topology  *hw.Topology
	Placement hw.PlacementPolicy
	// Coord selects the cross-shard coordination protocol
	// (exact|batched|hier|approx; see internal/shard). Exact, batched,
	// and hier produce identical simulated tables; approx may diverge
	// and the reports carry the measured divergence.
	Coord shard.CoordMode
	// CoordOverlap overlaps each ScratchPipe run's distributed
	// coordination with the pipeline (engine.ScratchPipeOptions
	// .CoordOverlap): plans and cache statistics are unchanged, the
	// critical coordination share charged to [Plan] shrinks. A no-op
	// for every other engine and under co-located placement.
	CoordOverlap bool
	// Reshard schedules run-time shard-count transitions for the
	// dynamic-cache engines mid-run (engine.ReshardSpec): every data
	// point's strawman and ScratchPipe runs then migrate their live
	// scratchpad state per the schedule, with the migrated bytes priced
	// on Topology. Plans and cache statistics are preserved exactly (a
	// same-S schedule leaves every table bit-identical); timing columns
	// shift only as far as the new shard count's cross-node
	// coordination does, exactly as a static Shards change would.
	Reshard engine.ReshardSpec
	// Faults schedules deterministic fault injection for every data
	// point's dynamic-cache runs (hw.FaultPlan, the -fail grammar):
	// host deaths evacuate shards mid-sweep, link faults degrade
	// coordination, aggregator losses re-elect — all priced into the
	// reports' Downtime/RecoveryTime/Availability. The zero plan
	// changes nothing.
	Faults hw.FaultPlan
	// CkptInterval prices a periodic scratchpad checkpoint flush every
	// this many iterations (0 disables); with faults it buys
	// checkpoint-restored residency at the flush cost.
	CkptInterval int
	// Serve configures the online serving simulation (internal/serve):
	// replicas, router policy, arrival process. The zero value keeps
	// serving off; active options power the ServingFrontier experiment
	// and the hotpath serving family.
	Serve serve.Options
}

// Default returns the paper's §V methodology configuration. Iters must
// exceed the pipeline depth (6) for ScratchPipe to reach steady state;
// caches are prewarmed so a modest window suffices.
func Default() Config {
	return Config{
		Model:  dlrm.DefaultConfig(),
		System: hw.DefaultSystem(),
		Iters:  16,
		Seed:   42,
	}
}

// Quick returns a scaled-down configuration for fast smoke tests: the
// model keeps its shape ratios (cache % semantics, lookup structure) but
// tables shrink 50x.
func Quick() Config {
	c := Default()
	c.Model.RowsPerTable = 200_000
	c.Model.BatchSize = 256
	c.Iters = 8
	return c
}

// CacheFracs is the cache-size sweep of the evaluation (2-10%).
var CacheFracs = []float64{0.02, 0.04, 0.06, 0.08, 0.10}

// Table is a printable result table.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// String renders the table as aligned text.
func (t *Table) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[min(i, len(widths)-1)], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// ms formats seconds as milliseconds.
func ms(sec float64) string { return fmt.Sprintf("%.2f", sec*1e3) }

// pct formats a ratio as a percentage.
func pct(x float64) string { return fmt.Sprintf("%.1f%%", x*100) }

// x2 formats a speedup factor.
func x2(x float64) string { return fmt.Sprintf("%.2fx", x) }

// newEnv builds a metadata-mode environment for one data point. Every
// engine gets a fresh environment with the same seed so all engines see
// the same batch stream.
func newEnv(cfg Config, model dlrm.Config, class trace.Class) (*engine.Env, error) {
	return engine.NewEnv(engine.EnvConfig{
		Model:        model,
		System:       cfg.System,
		Class:        class,
		Seed:         cfg.Seed,
		Functional:   false,
		Workers:      cfg.Workers,
		Shards:       cfg.Shards,
		Topology:     cfg.Topology,
		Placement:    cfg.Placement,
		Coord:        cfg.Coord,
		Reshard:      cfg.Reshard,
		Faults:       cfg.Faults,
		CkptInterval: cfg.CkptInterval,
		Serve:        cfg.Serve,
	})
}

// runEngine runs n iterations of a freshly built engine.
func runEngine(cfg Config, model dlrm.Config, class trace.Class, build func(*engine.Env) (engine.Engine, error)) (*engine.Report, error) {
	env, err := newEnv(cfg, model, class)
	if err != nil {
		return nil, err
	}
	eng, err := build(env)
	if err != nil {
		return nil, err
	}
	return eng.Run(cfg.Iters)
}

// Builders for the four cache design points of Figure 13.
func buildHybrid(env *engine.Env) (engine.Engine, error) { return engine.NewHybrid(env), nil }

func buildStatic(frac float64) func(*engine.Env) (engine.Engine, error) {
	return func(env *engine.Env) (engine.Engine, error) { return engine.NewStaticCache(env, frac) }
}

func buildStrawMan(frac float64) func(*engine.Env) (engine.Engine, error) {
	return func(env *engine.Env) (engine.Engine, error) { return engine.NewStrawMan(env, frac, "lru") }
}

func buildScratchPipe(frac float64, overlap bool) func(*engine.Env) (engine.Engine, error) {
	return func(env *engine.Env) (engine.Engine, error) {
		return engine.NewScratchPipe(env, engine.ScratchPipeOptions{CacheFrac: frac, CoordOverlap: overlap})
	}
}

func buildMultiGPU(env *engine.Env) (engine.Engine, error) { return engine.NewMultiGPU(env) }
