package bench

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dlrm"
	"repro/internal/energy"
	"repro/internal/shard"
	"repro/internal/trace"
)

// Figure12a reproduces the latency breakdown of the baselines: hybrid
// CPU-GPU (cache 0%) and the static cache swept from 2% to 10%, broken
// into CPU embedding forward / backward and GPU time.
func Figure12a(cfg Config) (*Table, error) {
	tab := &Table{
		Title:   "Figure 12a: latency breakdown (ms) -- baseline + static cache sweep",
		Columns: []string{"class", "cache", "cpu-emb-fwd", "cpu-emb-bwd", "gpu", "total"},
	}
	fracs := append([]float64{0}, CacheFracs...)
	for _, class := range trace.Classes {
		for _, frac := range fracs {
			build := buildHybrid
			label := "0%"
			if frac > 0 {
				build = buildStatic(frac)
				label = fmt.Sprintf("%g%%", frac*100)
			}
			rep, err := runEngine(cfg, cfg.Model, class, build)
			if err != nil {
				return nil, err
			}
			tab.AddRow(class.String(), label,
				ms(rep.CPUEmbFwd), ms(rep.CPUEmbBwd), ms(rep.GPUTime), ms(rep.IterTime))
		}
	}
	return tab, nil
}

// Figure12b reproduces ScratchPipe's per-stage pipeline latency across the
// cache-size sweep. The steady-state iteration time is the max stage
// latency, not the sum — that is the whole point of pipelining.
func Figure12b(cfg Config) (*Table, error) {
	tab := &Table{
		Title:   "Figure 12b: ScratchPipe per-stage pipeline latency (ms)",
		Columns: []string{"class", "cache", "plan", "collect", "exchange", "insert", "train", "iter(max)"},
	}
	for _, class := range trace.Classes {
		for _, frac := range CacheFracs {
			rep, err := runEngine(cfg, cfg.Model, class, buildScratchPipe(frac, cfg.CoordOverlap))
			if err != nil {
				return nil, err
			}
			tab.AddRow(class.String(), fmt.Sprintf("%g%%", frac*100),
				ms(rep.StageAvg[core.StagePlan]),
				ms(rep.StageAvg[core.StageCollect]),
				ms(rep.StageAvg[core.StageExchange]),
				ms(rep.StageAvg[core.StageInsert]),
				ms(rep.StageAvg[core.StageTrain]),
				ms(rep.IterTime))
		}
	}
	return tab, nil
}

// SpeedupPoint is one Figure 13 data point.
type SpeedupPoint struct {
	Class     trace.Class
	CacheFrac float64
	// Iteration times (seconds) of the four design points.
	Hybrid, Static, StrawMan, ScratchPipe float64
	// CoordRounds/CoordSeconds total the dynamic-cache engines'
	// cross-node shard-coordination message rounds and modeled link
	// time at this point (zero under co-located placements).
	CoordRounds  int64
	CoordSeconds float64
	// CoordWallSeconds totals the same engines' MEASURED coordination
	// wall — the message plane's makespan (internal/msgplane) rather
	// than the meter's serialized arithmetic; the modeled-vs-measured
	// skew is defined over the two (DESIGN.md §12).
	CoordWallSeconds float64
	// Overlap totals the ScratchPipe run's speculative-coordination
	// outcomes at this point (all zero unless cfg.CoordOverlap).
	Overlap shard.OverlapStats
	// ScratchPipeWall is the ScratchPipe run's total modeled wall at
	// this point (fill + steady cycles + episodic stalls). Deterministic
	// for a configuration, and strictly smaller with CoordOverlap on a
	// distributed placement — benchgate gates the overlap win on it.
	ScratchPipeWall float64
	// MigrationSeconds totals the dynamic-cache engines' modeled
	// elastic-resharding migration latency at this point (zero without
	// a reshard schedule or under co-located migration).
	MigrationSeconds float64
	// DowntimeSeconds/RecoverySeconds total the dynamic-cache engines'
	// modeled fault outage and repair time at this point (zero without
	// a fault plan; see engine.Report.Downtime/RecoveryTime).
	DowntimeSeconds float64
	RecoverySeconds float64
}

// SpeedupVsStatic returns each design's speedup normalized to the static
// cache, as the paper plots.
func (p SpeedupPoint) SpeedupVsStatic() (hybrid, strawman, scratchpipe float64) {
	return p.Static / p.Hybrid, p.Static / p.StrawMan, p.Static / p.ScratchPipe
}

// CollectFigure13 gathers the raw data behind Figure 13 so both the table
// renderer and the hot-path measurement can use it (EXPERIMENTS.md
// documents how to reproduce and diff-verify the sweep).
func CollectFigure13(cfg Config) ([]SpeedupPoint, error) {
	var pts []SpeedupPoint
	for _, class := range trace.Classes {
		hybrid, err := runEngine(cfg, cfg.Model, class, buildHybrid)
		if err != nil {
			return nil, err
		}
		for _, frac := range CacheFracs {
			static, err := runEngine(cfg, cfg.Model, class, buildStatic(frac))
			if err != nil {
				return nil, err
			}
			sm, err := runEngine(cfg, cfg.Model, class, buildStrawMan(frac))
			if err != nil {
				return nil, err
			}
			sp, err := runEngine(cfg, cfg.Model, class, buildScratchPipe(frac, cfg.CoordOverlap))
			if err != nil {
				return nil, err
			}
			pt := SpeedupPoint{
				Class: class, CacheFrac: frac,
				Hybrid: hybrid.IterTime, Static: static.IterTime,
				StrawMan: sm.IterTime, ScratchPipe: sp.IterTime,
				CoordRounds:  sm.Coord.Messages + sp.Coord.Messages,
				CoordSeconds: sm.Coord.Seconds + sp.Coord.Seconds,
				CoordWallSeconds: sm.Coord.WallSeconds + sm.Coord.WallHiddenSeconds +
					sp.Coord.WallSeconds + sp.Coord.WallHiddenSeconds,
				MigrationSeconds: sm.MigrationTime + sp.MigrationTime,
				DowntimeSeconds:  sm.Downtime + sp.Downtime,
				RecoverySeconds:  sm.RecoveryTime + sp.RecoveryTime,
				ScratchPipeWall:  sp.Wall,
			}
			pt.Overlap.Merge(sm.Overlap)
			pt.Overlap.Merge(sp.Overlap)
			pts = append(pts, pt)
		}
	}
	return pts, nil
}

// Figure13 reproduces the end-to-end speedup plot (normalized to the
// static cache).
func Figure13(cfg Config) (*Table, error) {
	pts, err := CollectFigure13(cfg)
	if err != nil {
		return nil, err
	}
	tab := &Table{
		Title:   "Figure 13: end-to-end speedup (normalized to static cache)",
		Columns: []string{"class", "cache", "hybrid", "static", "strawman", "scratchpipe", "sp-vs-hybrid"},
	}
	var sum, maxSp float64
	var sumH float64
	for _, p := range pts {
		h, sm, sp := p.SpeedupVsStatic()
		tab.AddRow(p.Class.String(), fmt.Sprintf("%g%%", p.CacheFrac*100),
			x2(h), x2(1.0), x2(sm), x2(sp), x2(p.Hybrid/p.ScratchPipe))
		sum += sp
		sumH += p.Hybrid / p.ScratchPipe
		if sp > maxSp {
			maxSp = sp
		}
	}
	n := float64(len(pts))
	tab.AddRow("SUMMARY", "",
		"", "", "",
		fmt.Sprintf("avg %s max %s", x2(sum/n), x2(maxSp)),
		fmt.Sprintf("avg %s", x2(sumH/n)))
	return tab, nil
}

// Figure14 compares the per-iteration energy of the static cache and
// ScratchPipe (cache 2%, as the headline comparison) across classes.
func Figure14(cfg Config) (*Table, error) {
	tab := &Table{
		Title:   "Figure 14: energy per iteration (J) -- static cache vs ScratchPipe",
		Columns: []string{"class", "static (J)", "scratchpipe (J)", "savings"},
	}
	pm := energy.Default()
	for _, class := range trace.Classes {
		st, err := runEngine(cfg, cfg.Model, class, buildStatic(0.02))
		if err != nil {
			return nil, err
		}
		sp, err := runEngine(cfg, cfg.Model, class, buildScratchPipe(0.02, cfg.CoordOverlap))
		if err != nil {
			return nil, err
		}
		eSt := pm.IterationEnergy(st.IterTime, st.CPUBusy, st.GPUBusy, 1)
		eSp := pm.IterationEnergy(sp.IterTime, sp.CPUBusy, sp.GPUBusy, 1)
		tab.AddRow(class.String(),
			fmt.Sprintf("%.1f", eSt), fmt.Sprintf("%.1f", eSp), x2(eSt/eSp))
	}
	return tab, nil
}

// Figure15a sweeps the embedding vector dimension (64/128/256) and reports
// every design's speedup over the static cache at 2% capacity, as in the
// sensitivity study.
func Figure15a(cfg Config) (*Table, error) {
	tab := &Table{
		Title:   "Figure 15a: sensitivity to embedding dimension (speedup vs static, cache 2%)",
		Columns: []string{"class", "dim", "hybrid", "strawman", "scratchpipe"},
	}
	for _, class := range trace.Classes {
		for _, dim := range []int{64, 128, 256} {
			model := cfg.Model
			model.EmbeddingDim = dim
			if err := addSweepRow(tab, cfg, model, class, fmt.Sprintf("%d", dim)); err != nil {
				return nil, err
			}
		}
	}
	return tab, nil
}

// Figure15b sweeps the number of embedding-table lookups (1/20/50).
func Figure15b(cfg Config) (*Table, error) {
	tab := &Table{
		Title:   "Figure 15b: sensitivity to lookups per table (speedup vs static, cache 2%)",
		Columns: []string{"class", "lookups", "hybrid", "strawman", "scratchpipe"},
	}
	for _, class := range trace.Classes {
		for _, lk := range []int{1, 20, 50} {
			model := cfg.Model
			model.Lookups = lk
			if err := addSweepRow(tab, cfg, model, class, fmt.Sprintf("%d", lk)); err != nil {
				return nil, err
			}
		}
	}
	return tab, nil
}

func addSweepRow(tab *Table, cfg Config, model dlrm.Config, class trace.Class, label string) error {
	const frac = 0.02
	hybrid, err := runEngine(cfg, model, class, buildHybrid)
	if err != nil {
		return err
	}
	static, err := runEngine(cfg, model, class, buildStatic(frac))
	if err != nil {
		return err
	}
	sm, err := runEngine(cfg, model, class, buildStrawMan(frac))
	if err != nil {
		return err
	}
	sp, err := runEngine(cfg, model, class, buildScratchPipe(frac, cfg.CoordOverlap))
	if err != nil {
		return err
	}
	tab.AddRow(class.String(), label,
		x2(static.IterTime/hybrid.IterTime),
		x2(static.IterTime/sm.IterTime),
		x2(static.IterTime/sp.IterTime))
	return nil
}
