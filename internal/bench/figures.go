package bench

import (
	"fmt"

	"repro/internal/trace"
)

// Figure3 characterizes the four dataset presets the way Figure 3 plots
// them: the (sorted) access-count concentration of embedding-table rows.
// For each preset table we report the share of accesses captured by the
// hottest fractions of rows, both analytically (the fitted CDF) and
// empirically (sampled trace), plus the fraction of rows ever touched.
func Figure3(cfg Config) (*Table, error) {
	tab := &Table{
		Title:   "Figure 3: sorted access concentration of RecSys datasets",
		Columns: []string{"dataset", "table", "top0.1%", "top2%", "top10%", "top30%", "touched", "top2%(sampled)"},
	}
	const samples = 400_000
	for _, name := range trace.DatasetNames {
		ds, err := trace.NewDataset(name, cfg.Model.RowsPerTable)
		if err != nil {
			return nil, err
		}
		for _, dt := range ds.Tables {
			h, err := trace.CollectHistogram(dt.Dist, samples, 1000, cfg.Seed)
			if err != nil {
				return nil, err
			}
			tab.AddRow(name, dt.Name,
				pct(dt.Dist.CDF(0.001)),
				pct(dt.Dist.CDF(0.02)),
				pct(dt.Dist.CDF(0.10)),
				pct(dt.Dist.CDF(0.30)),
				pct(float64(h.UniqueRows)/float64(h.Rows)),
				pct(h.TopShare(0.02)),
			)
		}
	}
	return tab, nil
}

// Figure5 reproduces the motivation breakdown: training time split into
// CPU embedding forward, CPU embedding backward, and GPU time for the
// hybrid baseline and static caches of 2% and 10%, across the four
// locality classes.
func Figure5(cfg Config) (*Table, error) {
	tab := &Table{
		Title:   "Figure 5: training time breakdown (ms) -- hybrid vs static cache",
		Columns: []string{"system", "class", "cpu-emb-fwd", "cpu-emb-bwd", "gpu", "total", "cpu-share"},
	}
	systems := []struct {
		label string
		frac  float64 // <0 means no cache (hybrid)
	}{
		{"Hybrid CPU-GPU", -1},
		{"Static cache (2%)", 0.02},
		{"Static cache (10%)", 0.10},
	}
	for _, s := range systems {
		for _, class := range trace.Classes {
			build := buildHybrid
			if s.frac >= 0 {
				build = buildStatic(s.frac)
			}
			rep, err := runEngine(cfg, cfg.Model, class, build)
			if err != nil {
				return nil, err
			}
			cpu := rep.CPUEmbFwd + rep.CPUEmbBwd
			tab.AddRow(s.label, class.String(),
				ms(rep.CPUEmbFwd), ms(rep.CPUEmbBwd), ms(rep.GPUTime),
				ms(rep.IterTime), pct(cpu/rep.IterTime))
		}
	}
	return tab, nil
}

// Figure6 reproduces the static-cache hit-rate curves: hit rate as a
// function of cache size (fraction of the table pinned in GPU memory) for
// every table of the four dataset presets.
func Figure6(cfg Config) (*Table, error) {
	fracs := []float64{0.02, 0.05, 0.10, 0.20, 0.40, 0.65, 0.80, 1.0}
	cols := []string{"dataset", "table"}
	for _, f := range fracs {
		cols = append(cols, fmt.Sprintf("%g%%", f*100))
	}
	tab := &Table{
		Title:   "Figure 6: static GPU embedding cache hit rate vs cache size",
		Columns: cols,
	}
	for _, name := range trace.DatasetNames {
		ds, err := trace.NewDataset(name, cfg.Model.RowsPerTable)
		if err != nil {
			return nil, err
		}
		for _, dt := range ds.Tables {
			row := []string{name, dt.Name}
			for _, hr := range trace.HitRateCurve(dt.Dist, fracs) {
				row = append(row, pct(hr))
			}
			tab.AddRow(row...)
		}
	}
	return tab, nil
}

// Figure6Classes prints the same curve for the synthetic locality classes
// the performance experiments use, making the "low locality needs >65% of
// the table cached for >90% hits" observation directly visible.
func Figure6Classes(cfg Config) (*Table, error) {
	fracs := []float64{0.02, 0.05, 0.10, 0.20, 0.40, 0.65, 0.80, 1.0}
	cols := []string{"class"}
	for _, f := range fracs {
		cols = append(cols, fmt.Sprintf("%g%%", f*100))
	}
	tab := &Table{
		Title:   "Figure 6 (synthetic classes): static cache hit rate vs cache size",
		Columns: cols,
	}
	for _, class := range trace.Classes {
		d, err := trace.NewClassDistribution(class, cfg.Model.RowsPerTable)
		if err != nil {
			return nil, err
		}
		row := []string{class.String()}
		for _, hr := range trace.HitRateCurve(d, fracs) {
			row = append(row, pct(hr))
		}
		tab.AddRow(row...)
	}
	return tab, nil
}
