package bench

import (
	"strings"
	"testing"

	"repro/internal/trace"
)

// tinyConfig shrinks everything so every runner executes in well under a
// second; shapes, not absolute numbers, are asserted.
func tinyConfig() Config {
	cfg := Quick()
	cfg.Model.RowsPerTable = 50_000
	cfg.Model.BatchSize = 64
	cfg.Model.Lookups = 4
	cfg.Iters = 8
	return cfg
}

func checkTable(t *testing.T, tab *Table, wantRows int) {
	t.Helper()
	if tab.Title == "" {
		t.Error("empty title")
	}
	if len(tab.Rows) != wantRows {
		t.Errorf("%s: %d rows, want %d", tab.Title, len(tab.Rows), wantRows)
	}
	for i, row := range tab.Rows {
		if len(row) > len(tab.Columns) {
			t.Errorf("%s: row %d has %d cells for %d columns", tab.Title, i, len(row), len(tab.Columns))
		}
	}
	s := tab.String()
	if !strings.Contains(s, tab.Title) {
		t.Errorf("rendered table missing title")
	}
}

func TestFigure3(t *testing.T) {
	tab, err := Figure3(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	// 2+2+2+7 dataset tables.
	checkTable(t, tab, 13)
}

func TestFigure5(t *testing.T) {
	tab, err := Figure5(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tab, 3*len(trace.Classes))
}

func TestFigure6(t *testing.T) {
	tab, err := Figure6(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tab, 13)
	tab2, err := Figure6Classes(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tab2, len(trace.Classes))
}

func TestFigure12(t *testing.T) {
	tab, err := Figure12a(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tab, len(trace.Classes)*(1+len(CacheFracs)))
	tab2, err := Figure12b(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tab2, len(trace.Classes)*len(CacheFracs))
}

func TestFigure13(t *testing.T) {
	tab, err := Figure13(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	// One row per point plus the summary row.
	checkTable(t, tab, len(trace.Classes)*len(CacheFracs)+1)
}

func TestFigure14(t *testing.T) {
	tab, err := Figure14(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tab, len(trace.Classes))
}

func TestFigure15(t *testing.T) {
	tab, err := Figure15a(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tab, len(trace.Classes)*3)
	tab2, err := Figure15b(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tab2, len(trace.Classes)*3)
}

func TestTableI(t *testing.T) {
	tab, err := TableI(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tab, len(trace.Classes)*2)
}

func TestOverheadStudy(t *testing.T) {
	tab, err := OverheadStudy(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tab, len(trace.Classes)*2)
}

func TestSensitivityExtra(t *testing.T) {
	tab, err := SensitivityExtra(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	// 3 policies x 2 classes + 3 batch sizes + 2 MLP-intensive rows.
	checkTable(t, tab, 3*2+3+2)
}

func TestAblationWindows(t *testing.T) {
	tab, err := AblationWindows(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tab, 2*7)
}

func TestSpeedupPoint(t *testing.T) {
	p := SpeedupPoint{Hybrid: 4, Static: 2, StrawMan: 1, ScratchPipe: 0.5}
	h, sm, sp := p.SpeedupVsStatic()
	if h != 0.5 || sm != 2 || sp != 4 {
		t.Fatalf("speedups %v %v %v", h, sm, sp)
	}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{Title: "T", Columns: []string{"a", "long-column"}}
	tab.AddRow("1", "2")
	s := tab.String()
	if !strings.Contains(s, "long-column") || !strings.Contains(s, "== T ==") {
		t.Fatalf("rendered:\n%s", s)
	}
}
