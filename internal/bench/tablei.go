package bench

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/cost"
	"repro/internal/engine"
	"repro/internal/trace"
)

// TableI reproduces the training-cost comparison: a single-GPU ScratchPipe
// on p3.2xlarge versus an 8-GPU model-parallel system on p3.16xlarge,
// costed over one million training iterations.
func TableI(cfg Config) (*Table, error) {
	tab := &Table{
		Title:   "Table I: training cost -- ScratchPipe vs 8-GPU multi-GPU",
		Columns: []string{"dataset", "system", "instance", "price/hr", "iter time (ms)", "1M-iter cost", "cost ratio"},
	}
	for _, class := range trace.Classes {
		sp, err := runEngine(cfg, cfg.Model, class, buildScratchPipe(0.02, cfg.CoordOverlap))
		if err != nil {
			return nil, err
		}
		mg, err := runEngine(cfg, cfg.Model, class, buildMultiGPU)
		if err != nil {
			return nil, err
		}
		cSp := cost.MillionIterCost(cost.P32xlarge, sp.IterTime)
		cMg := cost.MillionIterCost(cost.P316xlarge, mg.IterTime)
		tab.AddRow(class.String(), "ScratchPipe", cost.P32xlarge.Name,
			cost.FormatUSD(cost.P32xlarge.PricePerHour), ms(sp.IterTime), cost.FormatUSD(cSp), "")
		tab.AddRow(class.String(), "8 GPU", cost.P316xlarge.Name,
			cost.FormatUSD(cost.P316xlarge.PricePerHour), ms(mg.IterTime), cost.FormatUSD(cMg),
			x2(cMg/cSp))
	}
	return tab, nil
}

// OverheadStudy reproduces §VI-D: the GPU memory the scratchpad must
// provision. It reports the worst-case reserve sizing formula (the paper's
// 960 MB for six in-flight mini-batches) and the reserve actually touched
// during a simulated run, which is far smaller because window IDs overlap.
func OverheadStudy(cfg Config) (*Table, error) {
	tab := &Table{
		Title:   "SecVI-D: scratchpad provisioning overhead",
		Columns: []string{"class", "cache", "nominal (MB)", "worst-case hold (MB)", "reserve peak (MB)", "hit-map est (MB)"},
	}
	model := cfg.Model
	rowBytes := float64(model.EmbeddingDim) * 4
	perBatch := model.BatchSize * model.Lookups // per table
	window := 6
	worstRows := float64(window * perBatch * model.NumTables)
	for _, class := range trace.Classes {
		for _, frac := range []float64{0.02, 0.10} {
			rep, err := runEngine(cfg, model, class, buildScratchPipe(frac, cfg.CoordOverlap))
			if err != nil {
				return nil, err
			}
			nominal := frac * float64(model.RowsPerTable) * float64(model.NumTables) * rowBytes
			// Hit-Map: ~24 B per cached entry (key, value, bucket
			// overhead), one entry per nominal slot.
			hitMap := frac * float64(model.RowsPerTable) * float64(model.NumTables) * 24
			tab.AddRow(class.String(), fmt.Sprintf("%g%%", frac*100),
				fmt.Sprintf("%.0f", nominal/1e6),
				fmt.Sprintf("%.0f", worstRows*rowBytes/1e6),
				fmt.Sprintf("%.1f", float64(rep.ReservePeak)*rowBytes/1e6),
				fmt.Sprintf("%.0f", hitMap/1e6))
		}
	}
	return tab, nil
}

// SensitivityExtra covers the §VI-E studies the paper summarizes in prose:
// replacement policy (LRU/LFU/Random), batch size, and an MLP-intensive
// model variant.
func SensitivityExtra(cfg Config) (*Table, error) {
	tab := &Table{
		Title:   "SecVI-E: replacement policy, batch size, MLP-intensive sensitivity",
		Columns: []string{"study", "variant", "class", "iter (ms)", "hit rate"},
	}
	// Replacement policy. The sharded control plane is LRU-specific (the
	// cross-shard eviction coordinator merges LRU recency orders), so
	// the non-LRU sensitivity points run unsharded at any -shards
	// setting — their results never depend on the shard count anyway.
	for _, pol := range []cache.PolicyKind{cache.LRU, cache.LFU, cache.RandomPolicy} {
		polCfg := cfg
		if pol != cache.LRU {
			polCfg.Shards = 1
		}
		for _, class := range []trace.Class{trace.Low, trace.High} {
			rep, err := runEngine(polCfg, cfg.Model, class, func(env *engine.Env) (engine.Engine, error) {
				return engine.NewScratchPipe(env, engine.ScratchPipeOptions{CacheFrac: 0.02, Policy: pol})
			})
			if err != nil {
				return nil, err
			}
			tab.AddRow("policy", string(pol), class.String(), ms(rep.IterTime), pct(rep.HitRate()))
		}
	}
	// Batch size.
	for _, bs := range []int{512, 2048, 8192} {
		model := cfg.Model
		model.BatchSize = bs
		rep, err := runEngine(cfg, model, trace.Medium, buildScratchPipe(0.02, cfg.CoordOverlap))
		if err != nil {
			return nil, err
		}
		tab.AddRow("batch-size", fmt.Sprintf("%d", bs), "Medium", ms(rep.IterTime), pct(rep.HitRate()))
	}
	// MLP-intensive variant: deeper/wider top MLP, single lookup.
	model := cfg.Model
	model.TopHidden = []int{4096, 4096, 2048, 1024}
	model.Lookups = 2
	for _, class := range []trace.Class{trace.Low, trace.High} {
		sp, err := runEngine(cfg, model, class, buildScratchPipe(0.02, cfg.CoordOverlap))
		if err != nil {
			return nil, err
		}
		st, err := runEngine(cfg, model, class, buildStatic(0.02))
		if err != nil {
			return nil, err
		}
		tab.AddRow("mlp-intensive", "speedup "+x2(st.IterTime/sp.IterTime), class.String(), ms(sp.IterTime), pct(sp.HitRate()))
	}
	return tab, nil
}

// AblationWindows quantifies the design choices DESIGN.md calls out: what
// the future window and the pipeline itself buy. It compares ScratchPipe
// against (a) the straw-man (no pipelining) and (b) the degenerate
// single-stage windows, reporting iteration time and reserve pressure.
func AblationWindows(cfg Config) (*Table, error) {
	tab := &Table{
		Title:   "Ablation: pipelining and window sizing",
		Columns: []string{"variant", "class", "iter (ms)", "reserve peak (rows)", "notes"},
	}
	for _, class := range []trace.Class{trace.Random, trace.High} {
		sm, err := runEngine(cfg, cfg.Model, class, buildStrawMan(0.02))
		if err != nil {
			return nil, err
		}
		tab.AddRow("strawman (no pipeline)", class.String(), ms(sm.IterTime), fmt.Sprintf("%d", sm.ReservePeak), "stage sum")
		sp, err := runEngine(cfg, cfg.Model, class, buildScratchPipe(0.02, cfg.CoordOverlap))
		if err != nil {
			return nil, err
		}
		tab.AddRow("scratchpipe (3past/2future)", class.String(), ms(sp.IterTime), fmt.Sprintf("%d", sp.ReservePeak), "stage max")
		spWide, err := runEngine(cfg, cfg.Model, class, func(env *engine.Env) (engine.Engine, error) {
			return engine.NewScratchPipe(env, engine.ScratchPipeOptions{CacheFrac: 0.02, FutureWindow: 4})
		})
		if err != nil {
			return nil, err
		}
		tab.AddRow("scratchpipe (future=4)", class.String(), ms(spWide.IterTime), fmt.Sprintf("%d", spWide.ReservePeak), "wider pin set")
		for _, la := range []int{8, 16} {
			la := la
			spDeep, err := runEngine(cfg, cfg.Model, class, func(env *engine.Env) (engine.Engine, error) {
				return engine.NewScratchPipe(env, engine.ScratchPipeOptions{CacheFrac: 0.02, EvictionLookahead: la})
			})
			if err != nil {
				return nil, err
			}
			tab.AddRow(fmt.Sprintf("scratchpipe (lookahead=%d)", la), class.String(),
				ms(spDeep.IterTime), fmt.Sprintf("%d", spDeep.ReservePeak),
				fmt.Sprintf("fills %d (vs %d)", spDeep.Fills, sp.Fills))
		}
		spCont, err := runEngine(cfg, cfg.Model, class, func(env *engine.Env) (engine.Engine, error) {
			return engine.NewScratchPipe(env, engine.ScratchPipeOptions{CacheFrac: 0.02, CPUContention: true})
		})
		if err != nil {
			return nil, err
		}
		tab.AddRow("scratchpipe (cpu contention)", class.String(),
			ms(spCont.IterTime), fmt.Sprintf("%d", spCont.ReservePeak), "serialized CPU stages")
		spMG, err := runEngine(cfg, cfg.Model, class, func(env *engine.Env) (engine.Engine, error) {
			return engine.NewScratchPipe(env, engine.ScratchPipeOptions{CacheFrac: 0.02, NumGPUs: 8})
		})
		if err != nil {
			return nil, err
		}
		tab.AddRow("scratchpipe (8 GPUs, SecVI-G)", class.String(),
			ms(spMG.IterTime), fmt.Sprintf("%d", spMG.ReservePeak),
			fmt.Sprintf("%.2fx over 1 GPU", sp.IterTime/spMG.IterTime))
	}
	return tab, nil
}

// AllExperiments runs every experiment and returns the rendered tables in
// paper order.
func AllExperiments(cfg Config) ([]*Table, error) {
	runners := []func(Config) (*Table, error){
		Figure3, Figure5, Figure6, Figure6Classes,
		Figure12a, Figure12b, Figure13, Figure14,
		Figure15a, Figure15b, TableI, OverheadStudy,
		SensitivityExtra, AblationWindows,
	}
	var out []*Table
	for _, r := range runners {
		t, err := r(cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, t)
	}
	return out, nil
}
