// Online-serving frontier: the routing-policy sweep behind README's
// "Online serving" table. Training benchmarks ask "how fast does the
// cache learn"; this one asks "how well does a fleet of cache-holding
// replicas answer queries" — and the answer turns on the router.

package bench

import (
	"fmt"

	"repro/internal/cost"
	"repro/internal/engine"
	"repro/internal/serve"
	"repro/internal/trace"
)

// servingArrivals returns the arrival shapes the frontier sweeps: the
// configured (or default) Poisson base rate plus a flash-crowd variant
// at the same base rate, so every policy is measured both in steady
// state and through an overload transient.
func servingArrivals(opts serve.Options) []serve.ArrivalSpec {
	base := opts.Arrival
	if !base.Active() {
		base = serve.ArrivalSpec{Shape: serve.ShapePoisson, Rate: serve.DefaultArrivalRate}
	}
	flash := base
	flash.Shape = serve.ShapeFlash
	if base.Shape == serve.ShapeFlash {
		// Already a flash spec: pair it with its own Poisson base.
		base.Shape = serve.ShapePoisson
	}
	return []serve.ArrivalSpec{base, flash}
}

// ServingFrontier sweeps the routing frontier — every routing policy
// under steady-state and flash-crowd arrivals on the skewed (High
// locality) trace — and reports throughput, hit rate, latency tail,
// drops, and cost.Cluster $/1M-query pricing for each point. Replicas,
// topology, sharding, and the base arrival rate come from cfg.
func ServingFrontier(cfg Config) (*Table, error) {
	opts := cfg.Serve
	if !opts.Active() {
		opts.Replicas = 4
	}
	cluster := cost.ClusterFor(cfg.Topology, cost.P32xlarge)
	table := &Table{
		Title: fmt.Sprintf("Online serving: routing frontier (%d replicas, %s, High locality)",
			opts.Replicas, cluster.Name()),
		Columns: []string{"Router", "Arrival", "Offered q/s", "Tput q/s", "Hit rate", "p50 ms", "p99 ms", "Drops", "$/1M q"},
	}
	for _, arrival := range servingArrivals(opts) {
		for _, policy := range serve.Policies {
			c := cfg
			c.Serve = opts
			c.Serve.Router = policy
			c.Serve.Arrival = arrival
			env, err := newEnv(c, c.Model, trace.High)
			if err != nil {
				return nil, err
			}
			rep, err := engine.RunServe(env)
			if err != nil {
				return nil, err
			}
			table.AddRow(
				string(policy),
				arrival.String(),
				fmt.Sprintf("%.0f", rep.OfferedRate),
				fmt.Sprintf("%.0f", rep.Throughput),
				pct(rep.HitRate()),
				ms(rep.Latency.P50),
				ms(rep.Latency.P99),
				fmt.Sprintf("%d", rep.Drops),
				cost.FormatUSD(cluster.MillionQueryCost(rep.Throughput)),
			)
		}
	}
	return table, nil
}
