// Package intmap provides an open-addressing hash table from int64 keys
// to int32 values, tuned for the scratchpad control plane's access
// pattern: power-of-two capacity, linear probing, tombstone-free
// (backward-shift) deletion, and an O(capacity) Clear that compiles to a
// memclr.
//
// The Go built-in map dominated the Plan stage's profile (hashing,
// bucket-group probing, and incremental growth on every batch); this
// table removes that overhead because the scratchpad knows its maximum
// population up front (the slot count), keys are small non-negative
// integers, and lookups vastly outnumber insertions. Keys are stored
// internally as key+1 so the zero word means "empty slot" and Clear can
// use the runtime's bulk memory clear. Key and value live in one 16-byte
// entry, so a probe touches a single cache line and a linear-probe run
// covers four entries per line.
package intmap

import "fmt"

const (
	// minCapacity keeps the probe mask sane for tiny hints.
	minCapacity = 8
	// fibMult is the 64-bit Fibonacci hashing multiplier
	// (2^64 / golden ratio, forced odd).
	fibMult = 0x9E3779B97F4A7C15
)

// entry packs a biased key (key+1; 0 = empty) with its value and the
// epoch it was written in (what would otherwise be padding to 16 bytes).
type entry struct {
	k uint64
	v int32
	e uint32
}

// Map is an int64 -> int32 hash table. Keys must be non-negative. The
// zero value is not usable; call New. Map is not safe for concurrent use,
// matching the per-table single-writer discipline of the scratchpad.
//
// Clear is O(1): it bumps the map's epoch, making every existing entry
// stale. A stale slot behaves exactly like an empty one — it terminates
// probe chains and is claimed by the next Put that reaches it — which is
// sound because within one epoch every insert claims the first
// stale-or-empty slot of its chain, so no live entry ever sits beyond a
// stale slot in any probe path.
type Map struct {
	entries []entry
	// mask is len(entries)-1 (capacity is a power of two).
	mask uint64
	// shift positions the Fibonacci hash's top bits onto the mask.
	shift uint
	n     int
	// maxLoad is the resize threshold (3/4 of capacity).
	maxLoad int
	// epoch tags live entries; bumped by Clear.
	epoch uint32
}

// New returns a map pre-sized so that hint entries fit without growth.
func New(hint int) *Map {
	m := &Map{}
	m.init(capacityFor(hint))
	return m
}

// capacityFor returns the smallest power-of-two capacity whose 3/4 load
// threshold accommodates hint entries.
func capacityFor(hint int) int {
	c := minCapacity
	for c*3/4 < hint {
		c <<= 1
	}
	return c
}

func (m *Map) init(capacity int) {
	m.entries = make([]entry, capacity)
	m.mask = uint64(capacity - 1)
	m.maxLoad = capacity * 3 / 4
	shift := uint(64)
	for c := capacity; c > 1; c >>= 1 {
		shift--
	}
	m.shift = shift
	m.n = 0
}

// home returns the preferred slot index for a biased key.
func (m *Map) home(bkey uint64) uint64 {
	return (bkey * fibMult) >> m.shift & m.mask
}

// Len returns the number of stored entries.
func (m *Map) Len() int { return m.n }

// Cap returns the current table capacity (before the next growth).
func (m *Map) Cap() int { return len(m.entries) }

// Get returns the value stored under key and whether it is present.
func (m *Map) Get(key int64) (int32, bool) {
	bkey := uint64(key) + 1
	// Indexing through a local slice with `& (len-1)` lets the compiler
	// drop the bounds check in the probe loop (capacity is a power of
	// two); this loop is the hottest code in the whole simulator.
	ents := m.entries
	mask := uint64(len(ents) - 1)
	for i := (bkey * fibMult) >> m.shift & mask; ; i = (i + 1) & mask {
		e := &ents[i&mask]
		if e.k == bkey && e.e == m.epoch {
			return e.v, true
		}
		if e.k == 0 || e.e != m.epoch {
			return 0, false
		}
	}
}

// Put stores val under key, replacing any existing entry.
func (m *Map) Put(key int64, val int32) {
	if key < 0 {
		panic(fmt.Sprintf("intmap: negative key %d", key))
	}
	if m.n >= m.maxLoad {
		m.grow()
	}
	bkey := uint64(key) + 1
	ents := m.entries
	mask := uint64(len(ents) - 1)
	for i := (bkey * fibMult) >> m.shift & mask; ; i = (i + 1) & mask {
		e := &ents[i&mask]
		if e.k == bkey && e.e == m.epoch {
			e.v = val
			return
		}
		if e.k == 0 || e.e != m.epoch {
			e.k, e.v, e.e = bkey, val, m.epoch
			m.n++
			return
		}
	}
}

// GetOrPut returns the value stored under key if present; otherwise it
// inserts def and returns it. A single probe walk serves both the lookup
// and the insert (the Plan stage's classify-then-record pattern). idx is
// the entry's position, valid for SetAt until the next growth or Clear.
func (m *Map) GetOrPut(key int64, def int32) (val int32, idx int, existed bool) {
	if key < 0 {
		panic(fmt.Sprintf("intmap: negative key %d", key))
	}
	if m.n >= m.maxLoad {
		m.grow()
	}
	bkey := uint64(key) + 1
	ents := m.entries
	mask := uint64(len(ents) - 1)
	for i := (bkey * fibMult) >> m.shift & mask; ; i = (i + 1) & mask {
		e := &ents[i&mask]
		if e.k == bkey && e.e == m.epoch {
			return e.v, int(i & mask), true
		}
		if e.k == 0 || e.e != m.epoch {
			e.k, e.v, e.e = bkey, def, m.epoch
			m.n++
			return def, int(i & mask), false
		}
	}
}

// SetAt overwrites the value at an entry position returned by GetOrPut.
// The position must come from a GetOrPut call with no intervening growth
// or Clear.
func (m *Map) SetAt(idx int, val int32) { m.entries[idx].v = val }

// PutIdx is Put returning the entry's final position (valid until the
// next growth or Clear), for callers that maintain a reverse index into
// the table.
func (m *Map) PutIdx(key int64, val int32) int {
	if key < 0 {
		panic(fmt.Sprintf("intmap: negative key %d", key))
	}
	if m.n >= m.maxLoad {
		m.grow()
	}
	bkey := uint64(key) + 1
	ents := m.entries
	mask := uint64(len(ents) - 1)
	for i := (bkey * fibMult) >> m.shift & mask; ; i = (i + 1) & mask {
		e := &ents[i&mask]
		if e.k == bkey && e.e == m.epoch {
			e.v = val
			return int(i & mask)
		}
		if e.k == 0 || e.e != m.epoch {
			e.k, e.v, e.e = bkey, val, m.epoch
			m.n++
			return int(i & mask)
		}
	}
}

// DeleteAt removes the entry at a known position (from PutIdx/GetOrPut),
// skipping the lookup probe. The backward shift relocates trailing
// entries of the probe run; onMove reports each relocated entry's value
// and new position so reverse indices stay consistent. onMove may be
// nil.
func (m *Map) DeleteAt(idx int, onMove func(val int32, newIdx int)) {
	i := uint64(idx)
	if m.entries[i].k == 0 || m.entries[i].e != m.epoch {
		panic(fmt.Sprintf("intmap: DeleteAt(%d) on empty or stale slot", idx))
	}
	m.n--
	m.backwardShift(i, onMove)
}

// backwardShift closes the hole at i, relocating run entries that would
// otherwise become unreachable (see Delete).
func (m *Map) backwardShift(i uint64, onMove func(val int32, newIdx int)) {
	j := i
	for {
		j = (j + 1) & m.mask
		e := m.entries[j]
		if e.k == 0 || e.e != m.epoch {
			break
		}
		if cyclicBetween(i, m.home(e.k), j) {
			continue
		}
		m.entries[i] = e
		if onMove != nil {
			onMove(e.v, int(i))
		}
		i = j
	}
	m.entries[i] = entry{}
}

// Delete removes key, reporting whether it was present. Deletion shifts
// the displaced tail of the probe chain backward instead of leaving a
// tombstone, so lookup cost never degrades under delete/reinsert churn
// (the scratchpad's eviction pattern).
func (m *Map) Delete(key int64) bool {
	bkey := uint64(key) + 1
	i := m.home(bkey)
	for {
		e := &m.entries[i]
		if e.k == 0 || e.e != m.epoch {
			return false
		}
		if e.k == bkey {
			break
		}
		i = (i + 1) & m.mask
	}
	m.n--
	// Backward-shift: walk the contiguous run of live entries after i;
	// any entry whose home position does not lie in the cyclic interval
	// (i, j] can be moved into the hole at i, which relocates the hole
	// to j ("home cyclically in (i, j]" <=> the entry stays reachable
	// from its home once slot i empties). Stale slots terminate chains
	// just like empty ones.
	m.backwardShift(i, nil)
	return true
}

// cyclicBetween reports whether h lies in the cyclic half-open interval
// (i, j].
func cyclicBetween(i, h, j uint64) bool {
	if i <= j {
		return i < h && h <= j
	}
	return i < h || h <= j
}

// Clear removes every entry in O(1) by advancing the epoch, keeping the
// capacity. On the (practically unreachable) epoch wraparound it falls
// back to a physical clear so ancient entries cannot resurface.
func (m *Map) Clear() {
	if m.n == 0 {
		return
	}
	m.epoch++
	if m.epoch == 0 {
		clear(m.entries)
	}
	m.n = 0
}

// ForEach visits every (key, value) pair in unspecified order. The map
// must not be mutated during the walk.
func (m *Map) ForEach(f func(key int64, val int32)) {
	for i := range m.entries {
		if e := &m.entries[i]; e.k != 0 && e.e == m.epoch {
			f(int64(e.k-1), e.v)
		}
	}
}

// ForEachIdx is ForEach that also reports each entry's position, letting
// reverse indices rebuild after a growth.
func (m *Map) ForEachIdx(f func(idx int, key int64, val int32)) {
	for i := range m.entries {
		if e := &m.entries[i]; e.k != 0 && e.e == m.epoch {
			f(i, int64(e.k-1), e.v)
		}
	}
}

// Reserve grows the table so n entries fit without further rehashing;
// existing entries are preserved.
func (m *Map) Reserve(n int) {
	if c := capacityFor(n); c > len(m.entries) {
		m.rehashTo(c)
	}
}

// Dedup splits an occurrence list into (distinct values, occurrence
// counts) in first-appearance order, using seen as scratch (cleared
// first) and appending into uniq/cnt. It is the one shared definition of
// the dedup-with-counts semantics the planner, the trace generator, and
// batch memoization all rely on staying bit-identical.
func Dedup(ids []int64, seen *Map, uniq []int64, cnt []int32) ([]int64, []int32) {
	seen.Clear()
	seen.Reserve(len(ids))
	for _, id := range ids {
		if at, _, dup := seen.GetOrPut(id, int32(len(uniq))); dup {
			cnt[at]++
			continue
		}
		uniq = append(uniq, id)
		cnt = append(cnt, 1)
	}
	return uniq, cnt
}

// grow doubles the capacity and reinserts every entry.
func (m *Map) grow() { m.rehashTo(len(m.entries) * 2) }

func (m *Map) rehashTo(capacity int) {
	old := m.entries
	m.init(capacity)
	// Only live entries migrate; they keep their epoch tag (the epoch
	// field is preserved across init, and fresh slots' k==0 marks them
	// empty regardless of epoch).
	for _, e := range old {
		if e.k == 0 || e.e != m.epoch {
			continue
		}
		for j := m.home(e.k); ; j = (j + 1) & m.mask {
			if m.entries[j].k == 0 {
				m.entries[j] = e
				m.n++
				break
			}
		}
	}
}
