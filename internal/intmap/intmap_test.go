package intmap

import (
	"math/rand"
	"testing"
)

// TestOracle drives a Map and the built-in map with the same randomized
// operation stream — including the delete/reinsert churn the scratchpad
// produces under eviction pressure — and requires identical observable
// state throughout.
func TestOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := New(0)
	oracle := map[int64]int32{}
	const keySpace = 512 // small space forces collisions and reinsertion
	for op := 0; op < 200_000; op++ {
		key := int64(rng.Intn(keySpace))
		switch rng.Intn(4) {
		case 0, 1: // insert / overwrite
			val := int32(rng.Intn(1 << 20))
			m.Put(key, val)
			oracle[key] = val
		case 2: // delete
			want := false
			if _, ok := oracle[key]; ok {
				want = true
			}
			if got := m.Delete(key); got != want {
				t.Fatalf("op %d: Delete(%d) = %v, oracle %v", op, key, got, want)
			}
			delete(oracle, key)
		case 3: // lookup
			got, ok := m.Get(key)
			want, wok := oracle[key]
			if ok != wok || (ok && got != want) {
				t.Fatalf("op %d: Get(%d) = (%d,%v), oracle (%d,%v)", op, key, got, ok, want, wok)
			}
		}
		if op%1777 == 0 { // exercise the O(1) epoch Clear mid-churn
			m.Clear()
			clear(oracle)
		}
		if m.Len() != len(oracle) {
			t.Fatalf("op %d: Len %d, oracle %d", op, m.Len(), len(oracle))
		}
	}
	// Full final sweep.
	for key, want := range oracle {
		got, ok := m.Get(key)
		if !ok || got != want {
			t.Fatalf("final: Get(%d) = (%d,%v), want (%d,true)", key, got, ok, want)
		}
	}
	seen := 0
	m.ForEach(func(k int64, v int32) {
		if want, ok := oracle[k]; !ok || v != want {
			t.Fatalf("ForEach visited (%d,%d) not matching oracle", k, v)
		}
		seen++
	})
	if seen != len(oracle) {
		t.Fatalf("ForEach visited %d entries, oracle has %d", seen, len(oracle))
	}
}

// TestDeleteChains targets the backward-shift deletion on adversarial
// probe chains: many keys colliding into one home slot, deleted from the
// middle of the run.
func TestDeleteChains(t *testing.T) {
	for trial := 0; trial < 100; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		m := New(16)
		oracle := map[int64]int32{}
		// Dense key block: Fibonacci hashing spreads these, but the
		// small capacity still produces long runs at 3/4 load.
		for i := 0; i < 12; i++ {
			k := int64(rng.Intn(64))
			m.Put(k, int32(k))
			oracle[k] = int32(k)
		}
		// Delete half in random order, verifying the rest after each.
		for k := range oracle {
			if rng.Intn(2) == 0 {
				continue
			}
			m.Delete(k)
			delete(oracle, k)
			for want := range oracle {
				if _, ok := m.Get(want); !ok {
					t.Fatalf("trial %d: key %d lost after deleting %d", trial, want, k)
				}
			}
		}
	}
}

func TestClear(t *testing.T) {
	m := New(4)
	for i := int64(0); i < 100; i++ {
		m.Put(i, int32(i))
	}
	c := m.Cap()
	m.Clear()
	if m.Len() != 0 || m.Cap() != c {
		t.Fatalf("after Clear: Len %d Cap %d, want 0 and %d", m.Len(), m.Cap(), c)
	}
	for i := int64(0); i < 100; i++ {
		if _, ok := m.Get(i); ok {
			t.Fatalf("key %d survived Clear", i)
		}
	}
	// Reuse after Clear.
	m.Put(7, 42)
	if v, ok := m.Get(7); !ok || v != 42 {
		t.Fatalf("Get(7) after Clear+Put = (%d,%v)", v, ok)
	}
}

// TestEpochReuse drives many Clear/refill rounds on one map (the
// PlanResult pool's access pattern) and checks isolation between epochs,
// including growth mid-epoch.
func TestEpochReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := New(8) // deliberately small: forces stale-slot reuse and growth
	for round := 0; round < 300; round++ {
		oracle := map[int64]int32{}
		for i := 0; i < 50; i++ {
			k := int64(rng.Intn(200))
			v := int32(round*1000 + i)
			m.Put(k, v)
			oracle[k] = v
			if rng.Intn(4) == 0 {
				m.Delete(k)
				delete(oracle, k)
			}
		}
		if m.Len() != len(oracle) {
			t.Fatalf("round %d: Len %d, oracle %d", round, m.Len(), len(oracle))
		}
		for k := int64(0); k < 200; k++ {
			got, ok := m.Get(k)
			want, wok := oracle[k]
			if ok != wok || (ok && got != want) {
				t.Fatalf("round %d: Get(%d) = (%d,%v), oracle (%d,%v)", round, k, got, ok, want, wok)
			}
		}
		m.Clear()
		if m.Len() != 0 {
			t.Fatalf("round %d: Len %d after Clear", round, m.Len())
		}
	}
}

func TestZeroKeyAndGrowth(t *testing.T) {
	m := New(0)
	m.Put(0, 9) // key 0 must be distinguishable from "empty"
	if v, ok := m.Get(0); !ok || v != 9 {
		t.Fatalf("Get(0) = (%d,%v), want (9,true)", v, ok)
	}
	// Force several doublings.
	for i := int64(0); i < 10_000; i++ {
		m.Put(i, int32(i%777))
	}
	if m.Len() != 10_000 {
		t.Fatalf("Len = %d, want 10000", m.Len())
	}
	for i := int64(0); i < 10_000; i++ {
		if v, ok := m.Get(i); !ok || v != int32(i%777) {
			t.Fatalf("Get(%d) = (%d,%v)", i, v, ok)
		}
	}
}

func TestNegativeKeyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Put(-1) did not panic")
		}
	}()
	New(0).Put(-1, 0)
}

// TestPresizedNoGrowth checks the scratchpad's sizing contract: a map
// built with New(n) never reallocates while holding at most n entries.
func TestPresizedNoGrowth(t *testing.T) {
	const n = 1000
	m := New(n)
	c := m.Cap()
	for round := 0; round < 3; round++ {
		for i := int64(0); i < n; i++ {
			m.Put(i+int64(round)*n, int32(i))
		}
		for i := int64(0); i < n; i++ {
			m.Delete(i + int64(round)*n)
		}
	}
	if m.Cap() != c {
		t.Fatalf("capacity grew from %d to %d despite population <= %d", c, m.Cap(), n)
	}
}

func BenchmarkGetHit(b *testing.B) {
	const n = 4096
	m := New(n)
	for i := int64(0); i < n; i++ {
		m.Put(i*7, int32(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Get(int64(i%n) * 7)
	}
}

func BenchmarkGetHitStdMap(b *testing.B) {
	const n = 4096
	m := make(map[int64]int32, n)
	for i := int64(0); i < n; i++ {
		m[i*7] = int32(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m[int64(i%n)*7]
	}
}

func BenchmarkChurn(b *testing.B) {
	const n = 4096
	m := New(n)
	for i := int64(0); i < n; i++ {
		m.Put(i, int32(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := int64(i % n)
		m.Delete(k)
		m.Put(k+n, int32(k))
		m.Delete(k + n)
		m.Put(k, int32(k))
	}
}
