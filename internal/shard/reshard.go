// Elastic resharding: changing a live Manager's shard count between
// Plans, with the migrated state priced on the topology links the move
// crosses (DESIGN.md §9).
//
// The paper's ScratchPipe fixes the scratchpad partitioning for the
// life of a run, but a production fleet does not hold still: hosts
// join and leave, and query mass shifts between embedding tables, the
// dynamic resource churn Acun et al. ("Understanding Training
// Efficiency of DLRM at Scale") identify as the dominant fleet-scale
// effect. Reshard transitions a Manager from S to S' shards — grow or
// shrink — by re-partitioning every piece of per-shard control state
// under the new hash function:
//
//   - Hit-Map entries: every resident (sparse ID, slot) pair re-buckets
//     to ShardOf(id, S').
//   - Recency state: resident slots are re-threaded onto the new
//     shards' LRU lists in global touch-stamp order, so the k-way
//     victim merge reproduces exactly the eviction sequence the old
//     partitioning (and the unsharded planner) would have produced.
//   - Free lists: remaining never-used primary slots re-stripe as slot
//     s mod S', stacks refilled descending so pops ascend — the fresh
//     construction's allocation direction.
//   - Hold rings: every in-flight batch's hold set re-buckets by each
//     held slot's current key, preserving per-shard FIFO release order,
//     so resharding is legal even with batches in flight (a pipelined
//     engine does not drain).
//
// Physical slots never move: the scratchpad's storage rows are
// engine-side and slot-addressed, so only control metadata migrates.
// What IS priced is that metadata's journey: each item that leaves one
// placement node for another contributes its wire size to a per-link
// state-transfer message, and the event's latency is the sum over
// crossed non-local links of latency + bytes/bandwidth — the same
// pricing discipline as the coordination meter (coord.go). Co-located
// moves (same node, including the nil-topology case) are free, and a
// reshard to the same S is a priced no-op: no state is rebuilt, plans
// after the boundary are bit-identical, and only a placement change
// can make it cost anything.

package shard

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/intmap"
)

// LoadProbeBuckets is the fixed, shard-count-independent granularity of
// the elastic manager's query-mass histogram (Manager.LoadProbe):
// occurrences bucket by ShardOf(id, LoadProbeBuckets), so a
// load-triggered reshard policy can observe ID-space skew even while
// S = 1, where per-shard counters are blind. The granularity bounds the
// hot-set size the probe can resolve: a hot working set much larger
// than the bucket count hashes flat and reads as balanced (1024 buckets
// resolve the locality classes' hot sets at both quick and paper
// scale, for 8 KB per table).
const LoadProbeBuckets = 1024

// Migration wire sizes (bytes). Like the coordination message sizes in
// coord.go these are control-plane metadata, not embedding payloads:
// slots are global storage addresses, so a row's floats never travel on
// a reshard — only the bookkeeping that says who owns them.
const (
	// migHeaderBytes heads one state-transfer message per dirty
	// (source node, destination node) pair.
	migHeaderBytes = 16
	// migResidentBytes is one resident Hit-Map entry with its recency
	// and pin metadata: id 8 + slot 4 + touch stamp 8 + pin/hint 8.
	migResidentBytes = 28
	// migFreeSlotBytes hands one never-used primary slot index to its
	// new stripe owner.
	migFreeSlotBytes = 4
	// migHoldBytes is one in-flight hold-ring entry: seq 8 + slot 4.
	migHoldBytes = 12
)

// ReshardStats totals a Manager's elastic-resharding activity: how
// often it transitioned, how much control state re-bucketed, and what
// the node-crossing subset cost on the topology. Moved counters are
// partition-level (the item's owning shard or node changed); Bytes,
// Rounds, and Seconds cover only items that crossed a non-local link —
// co-located migration is free, exactly like co-located coordination.
type ReshardStats struct {
	// Events counts Reshard calls (including priced same-S no-ops).
	Events int64
	// ResidentMoved / FreeMoved / HoldsMoved count migrated Hit-Map
	// entries, re-striped free primary slots, and re-bucketed in-flight
	// hold-ring entries whose owning shard (or shard's node) changed.
	ResidentMoved int64
	FreeMoved     int64
	HoldsMoved    int64
	// Bytes is the total state-transfer payload that crossed non-local
	// links (including per-message headers); Rounds the number of
	// state-transfer messages (one per dirty node pair per event).
	Bytes  float64
	Rounds int64
	// Seconds is the total modeled migration latency charged on the
	// crossed links.
	Seconds float64
}

// Merge adds another manager's lifetime resharding totals into s (the
// engines sum per-table managers into one report).
func (s *ReshardStats) Merge(o ReshardStats) {
	s.Events += o.Events
	s.ResidentMoved += o.ResidentMoved
	s.FreeMoved += o.FreeMoved
	s.HoldsMoved += o.HoldsMoved
	s.Bytes += o.Bytes
	s.Rounds += o.Rounds
	s.Seconds += o.Seconds
}

// Elastic reports whether the manager supports Reshard.
func (m *Manager) Elastic() bool { return m.elastic }

// ReshardStats returns the manager's lifetime resharding totals (the
// zero value when no Reshard has run).
func (m *Manager) ReshardStats() ReshardStats { return m.resharding }

// LastReshardTime returns the modeled migration latency (seconds) of
// the most recent Reshard: zero for co-located moves.
func (m *Manager) LastReshardTime() float64 { return m.lastReshard }

// LoadProbe returns a copy of the manager's fixed-granularity
// query-mass histogram (LoadProbeBuckets buckets of occurrence counts),
// or nil unless Config.LoadProbe opted in. The probe is keyed by ID
// hash, not by current shard, so its skew is comparable across reshard
// events.
func (m *Manager) LoadProbe() []int64 {
	if m.loadProbe == nil {
		return nil
	}
	return append([]int64(nil), m.loadProbe...)
}

// placeNode returns the topology node hosting shard j under placement
// p. A zero placement pins everything to node 0 — the coordinator's
// home — which is what prices a scale-out from a previously co-located
// (or S=1) configuration: the state leaves node 0 for the new shards'
// nodes.
func placeNode(p hw.Placement, j int) int32 {
	if p.Topo == nil || len(p.Node) == 0 {
		return 0
	}
	return int32(p.Node[j])
}

// migAccum accumulates one reshard event's state-transfer payload per
// dirty node pair (insertion-ordered so pricing sums floats
// deterministically, like the coordination meter's touched list).
type migAccum struct {
	topo    *hw.Topology
	bytes   []float64
	touched []linkUse
}

func newMigAccum(topo *hw.Topology) *migAccum {
	a := &migAccum{topo: topo}
	if topo != nil {
		a.bytes = make([]float64, topo.NumLinkPairs())
	}
	return a
}

// move records n items of the given unit wire size migrating from one
// node to another, bumping the partition-level moved counter when the
// owning shard changed or the item crossed nodes. Same-node traffic is
// free (and, when the shard also kept its index, not a move at all).
func (a *migAccum) move(from, to int32, changedShard bool, n int64, unit float64, moved *int64) {
	if n == 0 {
		return
	}
	if from == to {
		if changedShard {
			*moved += n
		}
		return
	}
	*moved += n
	idx := int32(a.topo.PairIndex(int(from), int(to)))
	if a.bytes[idx] == 0 {
		a.touched = append(a.touched, linkUse{idx: idx, a: from, b: to})
	}
	a.bytes[idx] += unit * float64(n)
}

// price converts the accumulated per-link payloads into the event's
// modeled migration latency: one state-transfer message (header +
// payload) per dirty pair, latency + bytes/bandwidth per non-local
// link, summed (state transfers serialize through the coordinator,
// like the coordination rounds they generalize).
func (a *migAccum) price() (secs float64, rounds int64, bytes float64) {
	for _, u := range a.touched {
		l := a.topo.Link(int(u.a), int(u.b))
		if l.Tier == hw.TierLocal || l.Down {
			// Local transfers are free; a partitioned link carries no
			// migration (evacuation routes over the survivors).
			continue
		}
		payload := a.bytes[u.idx] + migHeaderBytes
		secs += l.Latency + payload/l.Bandwidth
		rounds++
		bytes += payload
	}
	return secs, rounds, bytes
}

// holdCount sums one shard's in-flight hold-ring entries.
func holdCount(sh *shardState) int64 {
	var n int64
	for k := 0; k < sh.inFlight.Len(); k++ {
		n += int64(len(sh.inFlight.At(k).Slots))
	}
	return n
}

// Reshard transitions the live manager from its current shard count to
// newS shards placed by place, between Plans (callers may have batches
// in flight: hold state migrates with everything else, so a pipelined
// engine does not drain). It migrates every Hit-Map entry, free list,
// hold ring, and recency list to the new hash partitioning without
// losing a single cached row, and prices the migrated control bytes on
// the topology links the move crosses (LastReshardTime / ReshardStats).
//
// Semantics preserved across the boundary (the reshard equivalence
// tests prove each):
//
//   - Residency: the (id, slot) map is identical before and after —
//     no row loss, no slot reassignment.
//   - Eviction order: recency re-threads in global stamp order, so
//     future victims are exactly what the old partitioning (and the
//     unsharded planner) would have chosen.
//   - Budgets: free primary / reserve totals and hold protection carry
//     over unchanged, so eviction onset and release behaviour do not
//     shift.
//   - Same-S: a reshard to the current S rebuilds nothing — plans after
//     the boundary are bit-identical, and only a placement change makes
//     the (still correctly priced) event cost bytes.
//
// The old and new placements must share a topology when both are
// distributed; a zero old placement prices as "everything on node 0".
func (m *Manager) Reshard(newS int, place hw.Placement) error {
	if m.single != nil || !m.elastic {
		return fmt.Errorf("shard: Reshard on a non-elastic manager (build with Config.Elastic)")
	}
	if newS < 1 {
		return fmt.Errorf("shard: Reshard to %d shards", newS)
	}
	if err := place.Validate(newS); err != nil {
		return err
	}
	// Migration re-partitions every list the speculation snapshot walked.
	m.invalidateSpec()
	oldPlace := m.place
	if oldPlace.Topo != nil && place.Topo != nil && oldPlace.Topo != place.Topo {
		return fmt.Errorf("shard: Reshard: old and new placements use different topologies (%q vs %q)",
			oldPlace.Topo.Name, place.Topo.Name)
	}
	topo := place.Topo
	if topo == nil {
		topo = oldPlace.Topo
	}
	acc := newMigAccum(topo)
	oldN := m.nshards

	if newS == oldN {
		// Priced no-op: the hash partition is unchanged, so no state is
		// rebuilt and plans after the boundary are bit-identical. Each
		// shard whose node assignment changed still ships its whole
		// control state over the crossed link.
		for j := range m.shards {
			from, to := placeNode(oldPlace, j), placeNode(place, j)
			sh := &m.shards[j]
			acc.move(from, to, false, int64(sh.hitMap.Len()), migResidentBytes, &m.resharding.ResidentMoved)
			acc.move(from, to, false, int64(len(sh.freePrimary)), migFreeSlotBytes, &m.resharding.FreeMoved)
			acc.move(from, to, false, holdCount(sh), migHoldBytes, &m.resharding.HoldsMoved)
		}
		m.installPlacement(place, newS)
		m.finishReshard(acc)
		return nil
	}

	old := m.shards
	total := m.cfg.Slots + m.cfg.Reserve

	// Resident slots in global touch-stamp order: stamps are unique
	// (one monotonic clock tick per touch), so this is the exact global
	// recency timeline, and appending per new shard preserves each
	// shard's increasing-stamp LRU invariant.
	resident := make([]int32, 0, m.Len())
	for s := 0; s < total; s++ {
		if m.meta[s].key >= 0 {
			resident = append(resident, int32(s))
		}
	}
	sortSlotsByStamp(m.meta, resident)

	// Record each free primary slot's current owner before the old
	// shards are torn down (borrowing drifts slots off their stripe, so
	// the owner is wherever the slot sits now).
	freeShard := make([]int32, m.cfg.Slots)
	for i := range freeShard {
		freeShard[i] = -1
	}
	for j := range old {
		for _, s := range old[j].freePrimary {
			freeShard[s] = int32(j)
		}
	}

	shards := make([]shardState, newS)
	for j := range shards {
		sh := &shards[j]
		sh.hitMap = intmap.New((m.cfg.Slots + m.cfg.Reserve/2) / newS)
		sh.lruHead, sh.lruTail = nilSlot, nilSlot
	}
	m.shards = shards
	m.nshards = newS

	// Hit-Maps + recency lists.
	for _, slot := range resident {
		id := m.meta[slot].key
		oldJ := ShardOf(id, oldN)
		newJ := ShardOf(id, newS)
		m.pushMRU(newJ, slot)
		shards[newJ].hitMap.PutIdx(id, slot)
		acc.move(placeNode(oldPlace, oldJ), placeNode(place, newJ), oldJ != newJ,
			1, migResidentBytes, &m.resharding.ResidentMoved)
	}
	for j := range shards {
		m.reindex(j)
	}

	// Free primary re-striping: slot s belongs to shard s mod S',
	// stacks filled descending so pops ascend — fresh-construction
	// allocation order. The global budget (freePrimaryTotal) is
	// untouched, so eviction onset cannot shift.
	for s := m.cfg.Slots - 1; s >= 0; s-- {
		oldJ := freeShard[s]
		if oldJ < 0 {
			continue
		}
		j := s % newS
		shards[j].freePrimary = append(shards[j].freePrimary, int32(s))
		acc.move(placeNode(oldPlace, int(oldJ)), placeNode(place, j), int(oldJ) != j,
			1, migFreeSlotBytes, &m.resharding.FreeMoved)
	}

	// Hold rings: every in-flight batch appears once on every shard
	// (possibly empty), in the same FIFO order; re-bucket each held
	// slot by its current key's new owner. Held slots cannot be evicted
	// while held, so the key is stable and the re-bucketing exact.
	depth := 0
	if oldN > 0 {
		depth = old[0].inFlight.Len()
	}
	newHeld := make([][]int32, newS)
	for k := 0; k < depth; k++ {
		seq := old[0].inFlight.At(k).Seq
		for j := range newHeld {
			newHeld[j] = nil
		}
		for oj := range old {
			hb := old[oj].inFlight.At(k)
			if hb.Seq != seq {
				return fmt.Errorf("shard: Reshard: in-flight ring skew (batch %d: seq %d vs %d)", k, hb.Seq, seq)
			}
			for _, slot := range hb.Slots {
				nj := ShardOf(m.meta[slot].key, newS)
				newHeld[nj] = append(newHeld[nj], slot)
				acc.move(placeNode(oldPlace, oj), placeNode(place, nj), oj != nj,
					1, migHoldBytes, &m.resharding.HoldsMoved)
			}
		}
		for j := range shards {
			shards[j].inFlight.Push(core.HeldBatch{Seq: seq, Slots: newHeld[j]})
		}
	}

	m.uniqIdx = make([][]int32, newS)
	m.winIdx = make([][]int32, newS)
	m.installPlacement(place, newS)
	m.finishReshard(acc)
	return nil
}

// installPlacement swaps the placement and rebuilds the coordination
// meter for the (possibly new) shard count, folding the retired meter's
// lifetime traffic into the carry-over so CoordStats stays a lifetime
// total across reshard events.
func (m *Manager) installPlacement(place hw.Placement, shards int) {
	if m.coord != nil {
		m.coordBase.Merge(m.coord.stats)
	}
	m.place = place
	m.coord = newCoordMeter(place, shards, m.mode)
}

// finishReshard prices the event and folds it into the lifetime totals.
func (m *Manager) finishReshard(acc *migAccum) {
	secs, rounds, bytes := acc.price()
	m.resharding.Events++
	m.resharding.Bytes += bytes
	m.resharding.Rounds += rounds
	m.resharding.Seconds += secs
	m.lastReshard = secs
}

// sortSlotsByStamp orders slots by touch stamp, ascending. Stamps are
// unique, so the order is total and deterministic.
func sortSlotsByStamp(meta []slotMeta, slots []int32) {
	sort.Slice(slots, func(i, j int) bool {
		return meta[slots[i]].stamp < meta[slots[j]].stamp
	})
}
