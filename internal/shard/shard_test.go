package shard

import (
	"math/rand"
	"testing"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/par"
)

// stream is a deterministic batch stream with a look-ahead window, shared
// by the equivalence harnesses.
type stream struct {
	batches [][]int64
	future  [][]int64
	hints   [][]int64
}

func newStream(seed int64, nbatches, batchLen int, idSpace int64) *stream {
	rng := rand.New(rand.NewSource(seed))
	s := &stream{batches: make([][]int64, nbatches)}
	for i := range s.batches {
		ids := make([]int64, batchLen)
		for j := range ids {
			ids[j] = rng.Int63n(idSpace)
		}
		s.batches[i] = ids
	}
	return s
}

func (s *stream) at(seq int) []int64 { return s.batches[seq%len(s.batches)] }

// window projects the future and hint batches for seq.
func (s *stream) window(seq, futureWin, lookahead int) (future, hints [][]int64) {
	s.future = s.future[:0]
	s.hints = s.hints[:0]
	for k := 1; k <= futureWin; k++ {
		s.future = append(s.future, s.at(seq+k))
	}
	for k := futureWin + 1; k <= lookahead; k++ {
		s.hints = append(s.hints, s.at(seq+k))
	}
	return s.future, s.hints
}

// planner abstracts core.Scratchpad and Manager behind the subset of the
// lifecycle the equivalence tests drive.
type planner interface {
	PlanWithHints(seq int, ids []int64, future, hints [][]int64) (*core.PlanResult, error)
	Release(seq int) error
	Recycle(res *core.PlanResult)
	Prewarm(sample func() int64, onFill func(id int64, slot int32)) int
	Contains(id int64) bool
	Len() int
}

var _ planner = (*core.Scratchpad)(nil)
var _ planner = (*Manager)(nil)

func testConfig(slots, batchLen int) core.Config {
	cfg := core.Config{Slots: slots, Policy: cache.LRU, PastWindow: 3, FutureWindow: 2}
	cfg.Reserve = core.WorstCaseReserve(cfg, batchLen)
	return cfg
}

// samePlan compares everything except physical slot numbers (shards place
// rows in different slots; residency, eviction victims, and counters must
// be identical).
func samePlan(t *testing.T, label string, seq int, a, b *core.PlanResult) {
	t.Helper()
	if a.OccHits != b.OccHits || a.OccMisses != b.OccMisses {
		t.Fatalf("%s seq %d: occ hits/misses %d/%d vs %d/%d", label, seq, a.OccHits, a.OccMisses, b.OccHits, b.OccMisses)
	}
	if len(a.UniqueIDs) != len(b.UniqueIDs) {
		t.Fatalf("%s seq %d: unique count %d vs %d", label, seq, len(a.UniqueIDs), len(b.UniqueIDs))
	}
	for i := range a.UniqueIDs {
		if a.UniqueIDs[i] != b.UniqueIDs[i] {
			t.Fatalf("%s seq %d: unique ID %d: %d vs %d", label, seq, i, a.UniqueIDs[i], b.UniqueIDs[i])
		}
	}
	if len(a.Fills) != len(b.Fills) {
		t.Fatalf("%s seq %d: fills %d vs %d", label, seq, len(a.Fills), len(b.Fills))
	}
	for i := range a.Fills {
		if a.Fills[i].ID != b.Fills[i].ID {
			t.Fatalf("%s seq %d: fill %d: ID %d vs %d", label, seq, i, a.Fills[i].ID, b.Fills[i].ID)
		}
	}
	if len(a.Evictions) != len(b.Evictions) {
		t.Fatalf("%s seq %d: evictions %d vs %d", label, seq, len(a.Evictions), len(b.Evictions))
	}
	for i := range a.Evictions {
		if a.Evictions[i].OldID != b.Evictions[i].OldID {
			t.Fatalf("%s seq %d: eviction %d: victim %d vs %d (cross-shard LRU merge diverged from the global order)",
				label, seq, i, a.Evictions[i].OldID, b.Evictions[i].OldID)
		}
	}
	if a.ReserveAllocs != b.ReserveAllocs {
		t.Fatalf("%s seq %d: reserve allocs %d vs %d", label, seq, a.ReserveAllocs, b.ReserveAllocs)
	}
}

// driveLockstep runs the same stream through two planners, comparing every
// plan, with a pipeline-shaped Release/Recycle pattern (depth 4 = the
// paper's release-at-Train distance).
func driveLockstep(t *testing.T, label string, a, b planner, st *stream, iters, futureWin, lookahead int) {
	t.Helper()
	const depth = 4
	var pendA, pendB []*core.PlanResult
	for seq := 0; seq < iters; seq++ {
		future, hints := st.window(seq, futureWin, lookahead)
		ra, err := a.PlanWithHints(seq, st.at(seq), future, hints)
		if err != nil {
			t.Fatalf("%s seq %d: a.Plan: %v", label, seq, err)
		}
		rb, err := b.PlanWithHints(seq, st.at(seq), future, hints)
		if err != nil {
			t.Fatalf("%s seq %d: b.Plan: %v", label, seq, err)
		}
		samePlan(t, label, seq, ra, rb)
		pendA, pendB = append(pendA, ra), append(pendB, rb)
		if len(pendA) >= depth {
			old := seq - depth + 1
			if err := a.Release(old); err != nil {
				t.Fatalf("%s: a.Release(%d): %v", label, old, err)
			}
			if err := b.Release(old); err != nil {
				t.Fatalf("%s: b.Release(%d): %v", label, old, err)
			}
			a.Recycle(pendA[0])
			b.Recycle(pendB[0])
			pendA, pendB = pendA[1:], pendB[1:]
		}
	}
	if a.Len() != b.Len() {
		t.Fatalf("%s: resident rows %d vs %d", label, a.Len(), b.Len())
	}
}

// TestConfigValidation covers the constructor edge cases, including the
// mid-config shard-count change the engines guard against.
func TestConfigValidation(t *testing.T) {
	base := testConfig(64, 16)
	if _, err := New(Config{Scratchpad: base, Shards: -1}); err == nil {
		t.Fatal("negative shard count accepted")
	}
	lfu := base
	lfu.Policy = cache.LFU
	if _, err := New(Config{Scratchpad: lfu, Shards: 2}); err == nil {
		t.Fatal("sharded non-LRU policy accepted (the eviction coordinator is LRU-specific)")
	}
	if m, err := New(Config{Scratchpad: lfu, Shards: 1}); err != nil || m.Shards() != 1 {
		t.Fatalf("single-shard LFU should delegate unsharded: %v", err)
	}
	if m, err := New(Config{Scratchpad: base}); err != nil || m.Shards() != 1 {
		t.Fatalf("zero shard count should default to 1: %v", err)
	}
	bad := base
	bad.Slots = 0
	if _, err := New(Config{Scratchpad: bad, Shards: 2}); err == nil {
		t.Fatal("invalid scratchpad config accepted")
	}
}

// TestSingleShardBitIdentical proves the S=1 delegation is the unsharded
// planner: identical plans including the physical slot numbers.
func TestSingleShardBitIdentical(t *testing.T) {
	cfg := testConfig(256, 64)
	sp, err := core.NewScratchpad(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(Config{Scratchpad: cfg, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	st := newStream(11, 64, 64, int64(256*4))
	const depth = 4
	var pendA, pendB []*core.PlanResult
	for seq := 0; seq < 100; seq++ {
		future, hints := st.window(seq, 2, 6)
		ra, err := sp.PlanWithHints(seq, st.at(seq), future, hints)
		if err != nil {
			t.Fatal(err)
		}
		rb, err := m.PlanWithHints(seq, st.at(seq), future, hints)
		if err != nil {
			t.Fatal(err)
		}
		samePlan(t, "s1", seq, ra, rb)
		for i := range ra.Slots {
			if ra.Slots[i] != rb.Slots[i] {
				t.Fatalf("seq %d: slot %d: %d vs %d (S=1 must be bit-identical)", seq, i, ra.Slots[i], rb.Slots[i])
			}
		}
		pendA, pendB = append(pendA, ra), append(pendB, rb)
		if len(pendA) >= depth {
			old := seq - depth + 1
			if err := sp.Release(old); err != nil {
				t.Fatal(err)
			}
			if err := m.Release(old); err != nil {
				t.Fatal(err)
			}
			sp.Recycle(pendA[0])
			m.Recycle(pendB[0])
			pendA, pendB = pendA[1:], pendB[1:]
		}
	}
	if sp.Stats() != m.Stats() {
		t.Fatalf("stats diverged:\ncore    %+v\nmanager %+v", sp.Stats(), m.Stats())
	}
}

// TestShardedEquivalence is the tentpole property: at every shard count,
// with and without a worker pool, the sharded manager must emit the same
// plans, the same eviction victims in the same order, and the same
// aggregate statistics as the unsharded planner.
func TestShardedEquivalence(t *testing.T) {
	for _, tc := range []struct {
		name      string
		shards    int
		workers   int
		lookahead int
	}{
		{"S2-serial", 2, 1, 0},
		{"S3-hints", 3, 1, 6},
		{"S4-parallel", 4, 4, 0},
		{"S4-parallel-hints", 4, 4, 6},
		{"S7-parallel", 7, 3, 0},
		{"S7-parallel-hints", 7, 3, 6},
		{"S8-parallel", 8, 0, 0},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := testConfig(512, 96)
			sp, err := core.NewScratchpad(cfg)
			if err != nil {
				t.Fatal(err)
			}
			m, err := New(Config{Scratchpad: cfg, Shards: tc.shards, Pool: par.New(tc.workers)})
			if err != nil {
				t.Fatal(err)
			}
			st := newStream(int64(tc.shards)*100+7, 96, 96, int64(512*4))
			driveLockstep(t, tc.name, sp, m, st, 150, 2, tc.lookahead)
			if sp.Stats() != m.Stats() {
				t.Fatalf("stats diverged:\ncore    %+v\nsharded %+v", sp.Stats(), m.Stats())
			}
		})
	}
}

// TestPrewarmEquivalence: a prewarmed sharded manager must hold exactly
// the rows the unsharded planner would hold from the same draw stream.
func TestPrewarmEquivalence(t *testing.T) {
	cfg := testConfig(512, 64)
	sp, err := core.NewScratchpad(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(Config{Scratchpad: cfg, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	rngA := rand.New(rand.NewSource(3))
	rngB := rand.New(rand.NewSource(3))
	const idSpace = 2048
	na := sp.Prewarm(func() int64 { return rngA.Int63n(idSpace) }, nil)
	nb := m.Prewarm(func() int64 { return rngB.Int63n(idSpace) }, nil)
	if na != nb {
		t.Fatalf("prewarm inserted %d vs %d rows", na, nb)
	}
	if sp.Len() != m.Len() {
		t.Fatalf("resident %d vs %d", sp.Len(), m.Len())
	}
	for id := int64(0); id < idSpace; id++ {
		if sp.Contains(id) != m.Contains(id) {
			t.Fatalf("id %d: residency %v vs %v", id, sp.Contains(id), m.Contains(id))
		}
	}
	// The warm content must then evolve identically under planning.
	st := newStream(17, 48, 64, idSpace)
	driveLockstep(t, "prewarmed", sp, m, st, 80, 2, 0)
}

// TestMoreShardsThanIDs: S far above the distinct-ID population must
// still work — most shards stay empty, aggregate behaviour is unchanged.
func TestMoreShardsThanIDs(t *testing.T) {
	cfg := testConfig(64, 16)
	sp, err := core.NewScratchpad(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(Config{Scratchpad: cfg, Shards: 32})
	if err != nil {
		t.Fatal(err)
	}
	st := newStream(23, 16, 16, 10) // only 10 distinct IDs in the universe
	driveLockstep(t, "tiny", sp, m, st, 40, 2, 0)
	if sp.Stats() != m.Stats() {
		t.Fatalf("stats diverged:\ncore    %+v\nsharded %+v", sp.Stats(), m.Stats())
	}
	if got := m.Len(); got > 10 {
		t.Fatalf("resident %d rows, universe has 10", got)
	}
	empty, queried := 0, 0
	for _, ss := range m.ShardStats() {
		if ss.Queries == 0 && ss.Resident == 0 {
			empty++
		} else {
			queried++
		}
	}
	if queried == 0 || empty == 0 {
		t.Fatalf("expected a mix of empty and populated shards with 10 IDs on 32 shards, got %d empty / %d populated", empty, queried)
	}
}

// TestFuzzStatsEquivalence is the fuzz-style satellite: random
// configurations and random traces, S=1 against a rotating non-trivial
// shard count (including the non-power-of-two 3 and 7), identical
// aggregate hit/miss/eviction statistics every time.
func TestFuzzStatsEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	shardCounts := []int{4, 3, 7}
	for trial := 0; trial < 12; trial++ {
		slots := 64 + rng.Intn(512)
		batchLen := 16 + rng.Intn(96)
		idSpace := int64(slots/2 + rng.Intn(slots*6))
		shards := shardCounts[trial%len(shardCounts)]
		cfg := core.Config{
			Slots:        slots,
			Policy:       cache.LRU,
			PastWindow:   3,
			FutureWindow: rng.Intn(3),
		}
		cfg.Reserve = core.WorstCaseReserve(cfg, batchLen)
		m1, err := New(Config{Scratchpad: cfg, Shards: 1})
		if err != nil {
			t.Fatal(err)
		}
		mS, err := New(Config{Scratchpad: cfg, Shards: shards, Pool: par.New(2)})
		if err != nil {
			t.Fatal(err)
		}
		st := newStream(rng.Int63(), 32, batchLen, idSpace)
		driveLockstep(t, "fuzz", m1, mS, st, 60, cfg.FutureWindow, 0)
		if m1.Stats() != mS.Stats() {
			t.Fatalf("trial %d (slots %d, batch %d, ids %d): stats diverged:\nS=1 %+v\nS=%d %+v",
				trial, slots, batchLen, idSpace, m1.Stats(), shards, mS.Stats())
		}
	}
}

// TestReleaseErrors: the per-shard FIFO discipline must reject
// out-of-order and spurious releases like the unsharded planner.
func TestReleaseErrors(t *testing.T) {
	cfg := testConfig(64, 16)
	m, err := New(Config{Scratchpad: cfg, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Release(0); err == nil {
		t.Fatal("release with no in-flight batches succeeded")
	}
	st := newStream(5, 8, 16, 128)
	if _, err := m.Plan(0, st.at(0), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Plan(1, st.at(1), nil); err != nil {
		t.Fatal(err)
	}
	if err := m.Release(1); err == nil {
		t.Fatal("out-of-order release succeeded")
	}
	if err := m.Release(0); err != nil {
		t.Fatalf("FIFO release failed: %v", err)
	}
	if m.InFlight() != 1 {
		t.Fatalf("in-flight %d, want 1", m.InFlight())
	}
}

// TestShardBalance sanity-checks the hash partition: over a large uniform
// ID space every shard should see a non-trivial share of the queries.
func TestShardBalance(t *testing.T) {
	cfg := testConfig(1024, 256)
	m, err := New(Config{Scratchpad: cfg, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	st := newStream(41, 32, 256, 8192)
	var pend []*core.PlanResult
	for seq := 0; seq < 40; seq++ {
		future, _ := st.window(seq, 2, 0)
		res, err := m.PlanWithHints(seq, st.at(seq), future, nil)
		if err != nil {
			t.Fatal(err)
		}
		pend = append(pend, res)
		if len(pend) >= 4 {
			if err := m.Release(seq - 3); err != nil {
				t.Fatal(err)
			}
			m.Recycle(pend[0])
			pend = pend[1:]
		}
	}
	stats := m.ShardStats()
	total := int64(0)
	for _, ss := range stats {
		total += ss.Queries
	}
	for j, ss := range stats {
		if ss.Queries < total/16 {
			t.Fatalf("shard %d saw %d of %d queries: hash partition badly skewed", j, ss.Queries, total)
		}
	}
}

// BenchmarkPlanSharded measures the steady-state sharded Plan cycle at
// several shard counts (S=1 is the delegated unsharded baseline); the
// hot-path JSON history records the same scaling on the full sweep.
func BenchmarkPlanSharded(b *testing.B) {
	for _, tc := range []struct {
		name    string
		shards  int
		workers int
	}{
		{"S=1", 1, 1},
		{"S=2", 2, 2},
		{"S=4", 4, 4},
		{"S=8", 8, 0},
	} {
		b.Run(tc.name, func(b *testing.B) {
			cfg := testConfig(8192, 2048)
			m, err := New(Config{Scratchpad: cfg, Shards: tc.shards, Pool: par.New(tc.workers)})
			if err != nil {
				b.Fatal(err)
			}
			st := newStream(9, 64, 2048, int64(8192*4))
			var pend []*core.PlanResult
			seq := 0
			step := func() {
				future, _ := st.window(seq, 2, 0)
				res, err := m.PlanWithHints(seq, st.at(seq), future, nil)
				if err != nil {
					b.Fatal(err)
				}
				pend = append(pend, res)
				if len(pend) >= 4 {
					if err := m.Release(seq - 3); err != nil {
						b.Fatal(err)
					}
					m.Recycle(pend[0])
					pend = pend[1:]
				}
				seq++
			}
			for i := 0; i < 50; i++ {
				step()
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				step()
			}
		})
	}
}
