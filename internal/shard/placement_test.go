package shard

import (
	"testing"

	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/par"
)

// placedManager builds an S-shard manager placed on topo under policy.
func placedManager(t *testing.T, cfg core.Config, shards int, topo *hw.Topology, policy hw.PlacementPolicy, weights []float64) *Manager {
	t.Helper()
	var pl hw.Placement
	if topo != nil {
		var err error
		pl, err = hw.NewPlacement(policy, topo, shards, weights)
		if err != nil {
			t.Fatal(err)
		}
	}
	m, err := New(Config{Scratchpad: cfg, Shards: shards, Pool: par.New(2), Placement: pl})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestPlacementInvariance is the satellite acceptance property: plans,
// eviction victims, and statistics are identical across co-located,
// stripe, range, and load-aware placements — only the modeled
// coordination latency differs.
func TestPlacementInvariance(t *testing.T) {
	const shards = 8
	cfg := testConfig(512, 96)
	topo := hw.Cluster(2, 2)
	weights := []float64{13, 1, 7, 2, 11, 3, 5, 1} // skewed shard heat
	managers := []*Manager{
		placedManager(t, cfg, shards, nil, "", nil), // co-located baseline
		placedManager(t, cfg, shards, topo, hw.PlaceStripe, nil),
		placedManager(t, cfg, shards, topo, hw.PlaceRange, nil),
		placedManager(t, cfg, shards, topo, hw.PlaceLoadAware, weights),
	}
	labels := []string{"colocated", "stripe", "range", "loadaware"}

	st := newStream(77, 96, 96, int64(512*4))
	const depth = 4
	pend := make([][]*core.PlanResult, len(managers))
	for seq := 0; seq < 150; seq++ {
		future, hints := st.window(seq, 2, 6)
		var base *core.PlanResult
		for i, m := range managers {
			res, err := m.PlanWithHints(seq, st.at(seq), future, hints)
			if err != nil {
				t.Fatalf("%s seq %d: %v", labels[i], seq, err)
			}
			if i == 0 {
				base = res
			} else {
				samePlan(t, labels[i], seq, base, res)
				// Placement must not even change physical slots: the
				// same hash partition runs under every placement.
				for k := range base.Slots {
					if base.Slots[k] != res.Slots[k] {
						t.Fatalf("%s seq %d: slot %d differs (%d vs %d): placement changed planning",
							labels[i], seq, k, base.Slots[k], res.Slots[k])
					}
				}
			}
			pend[i] = append(pend[i], res)
			if len(pend[i]) >= depth {
				if err := m.Release(seq - depth + 1); err != nil {
					t.Fatalf("%s: release: %v", labels[i], err)
				}
				m.Recycle(pend[i][0])
				pend[i] = pend[i][1:]
			}
		}
	}
	for i := 1; i < len(managers); i++ {
		if managers[0].Stats() != managers[i].Stats() {
			t.Fatalf("%s: stats diverged from co-located:\n%+v\n%+v",
				labels[i], managers[0].Stats(), managers[i].Stats())
		}
	}
	// The co-located manager must charge nothing; every distributed
	// placement must have metered real traffic and real latency.
	if cs := managers[0].CoordStats(); cs != (CoordStats{}) {
		t.Fatalf("co-located manager metered coordination: %+v", cs)
	}
	if managers[0].LastPlanCoord() != 0 {
		t.Fatalf("co-located LastPlanCoord %g, want 0", managers[0].LastPlanCoord())
	}
	for i := 1; i < len(managers); i++ {
		cs := managers[i].CoordStats()
		if cs.Seconds <= 0 || cs.Bytes() <= 0 || cs.Messages <= 0 {
			t.Fatalf("%s: no coordination metered: %+v", labels[i], cs)
		}
		if cs.TouchStampBytes <= 0 || cs.VictimMergeBytes <= 0 {
			t.Fatalf("%s: missing traffic class: %+v", labels[i], cs)
		}
	}
}

// TestCoordTierMonotonicity drives the same stream over two-node
// topologies one interconnect tier apart: total coordination latency
// must rise strictly as the links slow (NUMA -> PCIe -> network), while
// traffic bytes stay identical — the placement study's acceptance shape.
func TestCoordTierMonotonicity(t *testing.T) {
	cfg := testConfig(256, 64)
	topos := []*hw.Topology{hw.MultiSocket(2), hw.PCIePool(2), hw.Cluster(2, 1)}
	var prev float64
	var prevBytes float64
	for i, topo := range topos {
		m := placedManager(t, cfg, 4, topo, hw.PlaceStripe, nil)
		st := newStream(31, 64, 64, int64(256*4))
		var pend []*core.PlanResult
		for seq := 0; seq < 100; seq++ {
			future, _ := st.window(seq, 2, 0)
			res, err := m.PlanWithHints(seq, st.at(seq), future, nil)
			if err != nil {
				t.Fatal(err)
			}
			pend = append(pend, res)
			if len(pend) >= 4 {
				if err := m.Release(seq - 3); err != nil {
					t.Fatal(err)
				}
				m.Recycle(pend[0])
				pend = pend[1:]
			}
		}
		cs := m.CoordStats()
		if cs.Seconds <= prev {
			t.Fatalf("%s: coordination seconds %g not above previous tier's %g", topo.Name, cs.Seconds, prev)
		}
		if i > 0 && cs.Bytes() != prevBytes {
			t.Fatalf("%s: traffic %g bytes differs from previous tier's %g (placement must not change behaviour)",
				topo.Name, cs.Bytes(), prevBytes)
		}
		prev, prevBytes = cs.Seconds, cs.Bytes()
	}
}

// TestCoordColocatedOnBigTopology: a placement that parks every shard on
// one node of a wide topology meters nothing — locality, not topology
// size, decides the cost.
func TestCoordColocatedOnBigTopology(t *testing.T) {
	cfg := testConfig(128, 32)
	topo := hw.Cluster(4, 2)
	pl := hw.Placement{Topo: topo, Node: []int{3, 3, 3, 3}, Policy: hw.PlaceStripe}
	m, err := New(Config{Scratchpad: cfg, Shards: 4, Placement: pl})
	if err != nil {
		t.Fatal(err)
	}
	st := newStream(13, 32, 32, 512)
	var pend []*core.PlanResult
	for seq := 0; seq < 40; seq++ {
		future, _ := st.window(seq, 2, 0)
		res, err := m.PlanWithHints(seq, st.at(seq), future, nil)
		if err != nil {
			t.Fatal(err)
		}
		pend = append(pend, res)
		if len(pend) >= 4 {
			if err := m.Release(seq - 3); err != nil {
				t.Fatal(err)
			}
			m.Recycle(pend[0])
			pend = pend[1:]
		}
	}
	if cs := m.CoordStats(); cs != (CoordStats{}) {
		t.Fatalf("co-located placement metered coordination: %+v", cs)
	}
}

// TestPrewarmNotMetered: PrewarmRows shuffles free slots across shards
// before training starts; that construction-time traffic must not be
// billed to the first Plan's coordination latency (or to the lifetime
// stats at all).
func TestPrewarmNotMetered(t *testing.T) {
	cfg := testConfig(256, 64)
	m := placedManager(t, cfg, 4, hw.Cluster(2, 2), hw.PlaceStripe, nil)
	draws := 0
	m.Prewarm(func() int64 { draws++; return int64(draws * 7) }, nil)
	if cs := m.CoordStats(); cs != (CoordStats{}) {
		t.Fatalf("prewarm metered coordination: %+v", cs)
	}
	// The first Plan after prewarm prices only its own traffic: its
	// latency must match the same Plan on a freshly-planned manager
	// whose stamp sync is the only guaranteed component, i.e. be
	// finite and reflect a single Plan (no warm-up backlog dumped in).
	st := newStream(5, 8, 64, 1024)
	res, err := m.PlanWithHints(0, st.at(0), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Recycle(res)
	cs := m.CoordStats()
	if m.LastPlanCoord() != cs.Seconds {
		t.Fatalf("first Plan charged %g but lifetime says %g: pre-Plan traffic leaked in",
			m.LastPlanCoord(), cs.Seconds)
	}
	if cs.BorrowBytes != 0 {
		t.Fatalf("first Plan (free capacity everywhere) shows borrow traffic: %+v", cs)
	}
}

// TestPlacementConfigValidation: inconsistent placements are rejected at
// construction.
func TestPlacementConfigValidation(t *testing.T) {
	cfg := testConfig(64, 16)
	topo := hw.MultiSocket(2)
	if _, err := New(Config{Scratchpad: cfg, Shards: 4,
		Placement: hw.Placement{Topo: topo, Node: []int{0, 1}}}); err == nil {
		t.Fatal("placement covering 2 of 4 shards accepted")
	}
	if _, err := New(Config{Scratchpad: cfg, Shards: 2,
		Placement: hw.Placement{Topo: topo, Node: []int{0, 7}}}); err == nil {
		t.Fatal("out-of-range node accepted")
	}
	if _, err := New(Config{Scratchpad: cfg, Shards: 2,
		Placement: hw.Placement{Node: []int{0, 1}}}); err == nil {
		t.Fatal("node assignment without topology accepted")
	}
}
