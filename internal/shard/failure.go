// Failure reactions: what the sharded control plane does when the
// fleet under it breaks (hw.FaultPlan schedules the breakage; the
// engine walks the schedule and calls the methods here between Plans).
//
// Three reactions, one per fault family:
//
//   - Evacuate re-homes every shard whose host died onto the surviving
//     nodes, reusing the reshard machinery's migration pricing. A dead
//     host's scratchpad rows are gone: non-held resident entries drop
//     (their slots return to the free budget, so the lost residency is
//     repriced as the cold misses the next Plans will pay), while held
//     entries survive — an in-flight batch's rows are replicated in
//     the pipeline's staging buffers by construction, so re-installing
//     them is a priced control transfer, not a loss. Alternatively the
//     caller supplies a per-row restore size (checkpoint recovery) and
//     residency is preserved at bulk-transfer prices instead.
//   - Degrade/Heal bracket a link partition: while partitioned the
//     coordinator cannot sync stamps across the cut, so the manager
//     runs the approx protocol (epoch-quantized recency, no stamp
//     traffic) and measures its divergence inline — each victim merge
//     compares the quantized winner against the raw-stamp winner it
//     would have picked with full information. Heal restores the
//     original protocol and prices one full stamp re-synchronization.
//   - ReelectAggregator replaces a lost per-host aggregator (hier and
//     approx modes): the host's shards vote the next shard's node into
//     the role and announce it to the global coordinator, all priced
//     as ordinary coordination rounds (CoordStats.ReelectRounds).
//
// Like resharding, every reaction runs between Plans with batches in
// flight — the pipeline never drains.

package shard

import (
	"fmt"
	"sort"

	"repro/internal/hw"
)

// Re-election wire sizes (bytes): control-plane metadata, like every
// other coordination message.
const (
	// electVoteBytes is one shard's vote for the new aggregator
	// (term + candidate node).
	electVoteBytes = 16
	// electAnnounceBytes announces the election result to the global
	// coordinator.
	electAnnounceBytes = 16
)

// EvacStats totals a Manager's host-evacuation activity. Residency
// counters are entry-level; Bytes/Rounds/Seconds price only transfers
// that crossed a non-local, non-partitioned link, the same discipline
// as ReshardStats.
type EvacStats struct {
	// Events counts Evacuate calls that found at least one dead shard.
	Events int64
	// ShardsEvacuated counts shards re-homed off dead hosts.
	ShardsEvacuated int64
	// LostResident counts resident entries dropped with their host
	// (repriced as cold misses on the Plans that re-fetch them).
	LostResident int64
	// RestoredResident counts resident entries restored from a
	// checkpoint at bulk row-transfer prices instead of being dropped.
	RestoredResident int64
	// HeldKept counts in-flight-held entries that survived the death
	// (re-installed from pipeline staging buffers).
	HeldKept int64
	// FreeMoved / HoldsMoved count re-announced free-slot indices and
	// hold-ring entries for the evacuated shards.
	FreeMoved  int64
	HoldsMoved int64
	// Bytes / Rounds / Seconds are the recovery transfer totals on the
	// surviving links.
	Bytes   float64
	Rounds  int64
	Seconds float64
}

// Merge adds another manager's lifetime evacuation totals into s.
func (s *EvacStats) Merge(o EvacStats) {
	s.Events += o.Events
	s.ShardsEvacuated += o.ShardsEvacuated
	s.LostResident += o.LostResident
	s.RestoredResident += o.RestoredResident
	s.HeldKept += o.HeldKept
	s.FreeMoved += o.FreeMoved
	s.HoldsMoved += o.HoldsMoved
	s.Bytes += o.Bytes
	s.Rounds += o.Rounds
	s.Seconds += o.Seconds
}

// EvacStats returns the manager's lifetime evacuation totals (the zero
// value when no host ever died under it).
func (m *Manager) EvacStats() EvacStats { return m.evac }

// LastEvacTime returns the modeled recovery-transfer latency (seconds)
// of the most recent Evacuate.
func (m *Manager) LastEvacTime() float64 { return m.lastEvac }

// Degraded reports whether the manager is currently running the
// degraded (partition-mode) approx protocol.
func (m *Manager) Degraded() bool { return m.degraded }

// Evacuate re-homes the manager's shards after host deaths: place is
// the new assignment (every dead-host shard moved to a surviving node,
// typically from hw.EvacuatePlacement), hostDead the death predicate
// over the *old* placement's hosts. The shard count is unchanged —
// evacuation is the same-S corner of the reshard machinery, plus loss:
//
//   - Non-held resident entries of a dead shard drop. Their slots
//     return to the shard's primary free list (reserve slots to the
//     reserve stack), so the budget invariant holds and the loss is
//     repriced as the cold misses that refill them — no wire cost now,
//     paid in fill cycles later.
//   - Held entries survive (their rows are replicated in the
//     pipeline's in-flight staging buffers) and re-install on the new
//     node at control-transfer prices; hold rings migrate untouched,
//     so Release stays FIFO-valid and the pipeline never drains.
//   - When restoreRowBytes > 0 (checkpoint recovery), nothing drops:
//     every at-risk entry re-installs at restoreRowBytes per row —
//     residency (and therefore the future plan stream) is preserved,
//     and the recovery bill shifts from future misses to bulk
//     transfer now.
//
// Recovery transfers originate at the coordinator's new home (shard
// 0's node under place) and are priced on the surviving links like any
// reshard migration.
func (m *Manager) Evacuate(place hw.Placement, hostDead func(host int) bool, restoreRowBytes float64) (EvacStats, error) {
	var st EvacStats
	if m.single != nil || !m.elastic {
		return st, fmt.Errorf("shard: Evacuate on a non-elastic manager (build with Config.Elastic)")
	}
	// A death invalidates any speculative coordination in flight: the
	// re-homed shards' state no longer matches the snapshot.
	m.invalidateSpec()
	if err := place.Validate(m.nshards); err != nil {
		return st, err
	}
	oldPlace := m.place
	if oldPlace.Topo != nil && place.Topo != nil && oldPlace.Topo != place.Topo {
		return st, fmt.Errorf("shard: Evacuate: old and new placements use different topologies (%q vs %q)",
			oldPlace.Topo.Name, place.Topo.Name)
	}
	topo := place.Topo
	if topo == nil {
		topo = oldPlace.Topo
	}
	if topo == nil {
		return st, fmt.Errorf("shard: Evacuate without a topology (nothing to die)")
	}
	acc := newMigAccum(topo)
	src := placeNode(place, 0)

	var drop []int32
	for j := range m.shards {
		oldNode := placeNode(oldPlace, j)
		if !hostDead(topo.Nodes[oldNode].Host) {
			continue
		}
		st.ShardsEvacuated++
		newNode := placeNode(place, j)
		sh := &m.shards[j]

		drop = drop[:0]
		sh.hitMap.ForEach(func(id int64, slot int32) {
			switch {
			case m.meta[slot].holds > 0:
				acc.move(src, newNode, true, 1, migResidentBytes, &st.HeldKept)
			case restoreRowBytes > 0:
				acc.move(src, newNode, true, 1, restoreRowBytes, &st.RestoredResident)
			default:
				drop = append(drop, slot)
			}
		})
		// Drop the lost entries in descending slot order so the freed
		// primary slots pop ascending — the fresh construction's
		// allocation direction, and a deterministic one.
		sort.Slice(drop, func(a, b int) bool { return drop[a] > drop[b] })
		for _, slot := range drop {
			sh.hitMap.DeleteAt(int(m.meta[slot].entryIdx), func(s int32, newIdx int) {
				m.meta[s].entryIdx = int32(newIdx)
			})
			m.unlink(j, slot)
			m.meta[slot].key = -1
			if int(slot) < m.cfg.Slots {
				sh.freePrimary = append(sh.freePrimary, slot)
				m.freePrimaryTotal++
			} else {
				m.freeReserve = append(m.freeReserve, slot)
				m.reserveInUse--
			}
		}
		st.LostResident += int64(len(drop))

		// Re-announce the evacuated shard's free-slot inventory and
		// hold ring to its new home.
		acc.move(src, newNode, true, int64(len(sh.freePrimary)), migFreeSlotBytes, &st.FreeMoved)
		acc.move(src, newNode, true, holdCount(sh), migHoldBytes, &st.HoldsMoved)
	}

	if st.ShardsEvacuated == 0 {
		return st, nil
	}
	m.installPlacement(place, m.nshards)
	st.Events = 1
	st.Seconds, st.Rounds, st.Bytes = pricedEvac(acc)
	m.evac.Merge(st)
	m.lastEvac = st.Seconds
	return st, nil
}

// pricedEvac prices an evacuation's accumulated transfers (identical
// discipline to a reshard's migAccum.price).
func pricedEvac(acc *migAccum) (secs float64, rounds int64, bytes float64) {
	return acc.price()
}

// Degrade switches a live manager to the partition-mode approx
// protocol: epoch-quantized recency (DefaultApproxQuantum) and no
// stamp-sync traffic, because none can cross the cut. The divergence
// the stale view introduces is measured inline — every victim merge
// compares its quantized pick against the raw-stamp pick — and
// reported through Divergence. No-op for the S=1 delegate, a manager
// already degraded, and native approx mode (which measures divergence
// against its shadow planner already).
func (m *Manager) Degrade() {
	if m.single != nil || m.degraded || m.mode == CoordApprox {
		return
	}
	m.invalidateSpec()
	m.degraded = true
	m.preMode, m.preQuantum = m.mode, m.quantum
	m.mode = CoordApprox
	m.quantum = DefaultApproxQuantum
	if m.coord != nil {
		m.coord.mode = CoordApprox
	}
}

// Heal ends a Degrade: the original protocol and quantum come back,
// and the coordinator prices one full stamp re-synchronization (every
// remote shard uploads its current clock under the restored protocol's
// routing) so the global recency timeline is consistent again. Returns
// the re-sync's modeled seconds (the engine bills it to recovery).
func (m *Manager) Heal() float64 {
	if !m.degraded {
		return 0
	}
	m.invalidateSpec()
	m.degraded = false
	m.mode, m.quantum = m.preMode, m.preQuantum
	if m.coord == nil {
		return 0
	}
	m.coord.mode = m.preMode
	m.coord.meterStampSync()
	return m.coord.finishPlan()
}

// ReelectAggregator replaces host's lost coordination aggregator (the
// hier/approx host tier): the host's shards vote the next shard's node
// into the role, the winner announces itself to the global
// coordinator, and the aggregator mapping updates. Rounds and bytes
// are priced like any coordination traffic (CoordStats.ReelectRounds /
// ReelectBytes). Returns the election's modeled seconds; zero when the
// manager has no aggregator tier (exact/batched modes, co-located
// placements) or no shards on that host.
func (m *Manager) ReelectAggregator(host int) float64 {
	if m.coord == nil || (m.mode != CoordHier && m.mode != CoordApprox) {
		return 0
	}
	// The election re-routes the host tier, so staged speculative polls
	// against the old aggregator would price (and route) wrong.
	m.invalidateSpec()
	return m.coord.reelect(host)
}

// reelect runs one priced re-election round for the topology host's
// aggregator.
func (c *coordMeter) reelect(topoHost int) float64 {
	h := -1
	for idx, agg := range c.aggNode {
		if c.place.Topo.Nodes[agg].Host == topoHost {
			h = idx
			break
		}
	}
	if h < 0 {
		return 0
	}
	// The host's shards in index order; the current aggregator is the
	// first's node, the successor the next shard's (wrapping — a
	// one-shard host re-elects the same node: the process restarts).
	first, next := -1, -1
	for j := range c.hostIdx {
		if c.hostIdx[j] != int32(h) {
			continue
		}
		if first < 0 {
			first = j
		} else if next < 0 {
			next = j
			break
		}
	}
	if first < 0 {
		return 0
	}
	if next < 0 {
		next = first
	}
	newAgg := c.nodeOf[next]
	for j := range c.hostIdx {
		if c.hostIdx[j] == int32(h) {
			c.addRound(c.nodeOf[j], newAgg, electVoteBytes, bktReelect, rndReelect)
		}
	}
	c.addRound(newAgg, c.coordNode, electAnnounceBytes, bktReelect, rndReelect)
	c.aggNode[h] = newAgg
	return c.finishPlan()
}
