// Package shard partitions one embedding table's scratchpad manager
// across S socket shards, the ROADMAP's multi-socket follow-on to the
// single-host parallel Plan path: the same scaling wall "Understanding
// Training Efficiency of DLRM at Scale" identifies once look-ahead
// planning saturates one socket's memory bandwidth.
//
// Each shard owns a hash partition of the sparse-ID space with its own
// Hit-Map (intmap), its own primary free list, its own in-flight hold
// ring, and its own recency list, so the per-occurrence work of the
// [Plan] stage — Hit-Map probes, recency touches, pin/hint stamping,
// hold registration — runs shard-parallel with no shared mutable state
// (every slot is written only by the shard whose ID currently occupies
// it). What cannot be sharded without changing results is the eviction
// decision: the paper's replacement policy is a *global* LRU over the
// whole scratchpad, and splitting it into independent per-shard LRUs
// would change which rows stay resident. The Manager therefore runs a
// cross-shard eviction-budget coordinator: a global monotonic touch-stamp
// clock orders every shard's recency list on one timeline, primary and
// reserve capacity are global budgets (shards borrow free slots from each
// other before anyone evicts), and victim selection k-way-merges the
// shard cursors by stamp — which reproduces the unsharded planner's
// eviction sequence exactly. Sharding is thus a pure decomposition:
// plans, eviction victims, and aggregate statistics are identical to
// core.Scratchpad at every shard count (the equivalence tests in this
// package prove it plan by plan).
//
// With Shards == 1 the Manager delegates wholesale to a single
// core.Scratchpad, making the S=1 configuration bit-identical to the
// unsharded tree by construction (including its zero-allocation Plan
// path). Shards > 1 requires the LRU policy: the stamp-merge coordinator
// is the distributed form of the LRU eviction order specifically.
//
// A Config.Placement assigns shards to the nodes of an hw.Topology
// (sockets, hosts, GPUs); the coordinator's victim-merge, touch-stamp,
// and free-slot-borrow messages are then metered in bytes and charged to
// the links the assignment crosses (coord.go), pricing the communication
// wall a scale-out deployment pays. Placement changes only the modeled
// coordination latency — never plans, victims, or statistics. How the
// coordinator talks over those links is selected by Config.Coord
// (hierarchy.go): exact per-eviction rounds, batched candidate polls,
// a per-host aggregation tier, or approximate epoch-quantized LRU whose
// divergence from exact is measured by a shadow planner.
//
// Nothing above requires the partitioning to be static: an elastic
// manager (Config.Elastic) can change its shard count between Plans via
// [Manager.Reshard] — growing or shrinking a live run, migrating every
// Hit-Map entry, free list, hold ring, and recency list to the new hash
// partitioning without losing a cached row, and pricing the migrated
// control bytes on the same topology links (reshard.go; DESIGN.md §9).
package shard

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/intmap"
	"repro/internal/par"
)

// fibMult is the 64-bit Fibonacci hashing multiplier used to spread
// sparse IDs across shards (same mixing constant as intmap).
const fibMult = 0x9E3779B97F4A7C15

// Config configures one sharded per-table manager.
type Config struct {
	// Scratchpad is the underlying cache configuration; capacity
	// (Slots + Reserve) is a global budget shared by all shards.
	Scratchpad core.Config
	// Shards is the number of socket shards the ID space is
	// hash-partitioned into. 0 selects 1 (unsharded); values above 1
	// require the LRU policy (the cross-shard eviction coordinator
	// merges shard recency orders, which is LRU-specific).
	Shards int
	// Pool bounds the shard fan-out parallelism; nil runs shards
	// serially. Results are bit-identical either way.
	Pool *par.Pool
	// Placement assigns each shard to a topology node; the cross-shard
	// coordinator's victim-merge, touch-stamp, and free-slot-borrow
	// messages are then metered in bytes and charged to the links the
	// assignment crosses (see coord.go). The zero value co-locates all
	// shards: zero coordination cost, the pre-topology behaviour.
	// Placement never changes plans, victims, or statistics — only the
	// modeled coordination latency reported by LastPlanCoord.
	Placement hw.Placement
	// Coord selects the coordination protocol (see hierarchy.go):
	// exact (default, per-eviction rounds), batched (one candidate
	// batch per shard per sweep, Plan-end aggregated confirms), hier
	// (batched plus a per-host aggregation tier), or approx (hier minus
	// stamp sync, with epoch-quantized recency and a measured
	// divergence). Exact, batched, and hier produce identical plans,
	// victims, and statistics; approx may diverge and reports how much.
	Coord CoordMode
	// CoordQuantum is approx mode's recency quantum in global clock
	// ticks (touches per epoch); 0 selects DefaultApproxQuantum. A
	// quantum of 1 makes approx bit-identical to exact (and its
	// divergence metrics provably zero). Ignored outside approx mode.
	CoordQuantum int
	// Elastic builds a manager whose shard count can change at run time
	// via [Manager.Reshard] (see reshard.go). It requires the LRU policy
	// (resharding re-threads LRU recency state) and makes Shards == 1
	// run the generic sharded machinery instead of delegating to a
	// single core.Scratchpad — plans, victims, and statistics stay
	// identical (TestElasticSingleShardBitIdentical proves slot-level
	// identity), but the S=1 fast path's zero-allocation guarantee is
	// traded for the ability to migrate.
	Elastic bool
	// LoadProbe additionally maintains the fixed-granularity query-mass
	// histogram behind [Manager.LoadProbe] that load-triggered reshard
	// policies read. It costs one extra hash + write per unique ID per
	// Plan, so it is opt-in: schedules without a load policy (static
	// steps only) leave the Plan hot path untouched. Requires Elastic.
	LoadProbe bool
}

// Validate reports a descriptive error for an unusable configuration.
func (c Config) Validate() error {
	if c.Shards < 0 {
		return fmt.Errorf("shard: Shards %d < 0", c.Shards)
	}
	if c.Shards > 1 && c.Scratchpad.Policy != cache.LRU {
		return fmt.Errorf("shard: %d shards requires the %q policy (cross-shard eviction coordination merges LRU recency orders), got %q",
			c.Shards, cache.LRU, c.Scratchpad.Policy)
	}
	if c.Elastic && c.Scratchpad.Policy != cache.LRU {
		return fmt.Errorf("shard: elastic resharding requires the %q policy (migration re-threads LRU recency state), got %q",
			cache.LRU, c.Scratchpad.Policy)
	}
	if c.LoadProbe && !c.Elastic {
		return fmt.Errorf("shard: LoadProbe without Elastic (the probe only feeds reshard policies)")
	}
	if _, err := ParseCoordMode(string(c.Coord)); err != nil {
		return err
	}
	if c.CoordQuantum < 0 {
		return fmt.Errorf("shard: CoordQuantum %d < 0", c.CoordQuantum)
	}
	n := c.Shards
	if n == 0 {
		n = 1
	}
	if err := c.Placement.Validate(n); err != nil {
		return err
	}
	return c.Scratchpad.Validate()
}

// slotMeta is one slot's control metadata. Unlike core.Scratchpad's, it
// carries the global touch stamp that orders all shards' recency lists
// on one timeline (the coordinator's merge key).
type slotMeta struct {
	// key is the cached sparse ID (-1 when the slot is empty).
	key int64
	// pinStamp is the epoch of the slot's latest look-ahead pin.
	pinStamp int64
	// stamp is the global recency stamp of the slot's last touch.
	stamp uint64
	// holds counts in-flight batches referencing the slot.
	holds int32
	// entryIdx is the key's entry position inside the owning shard's
	// hitMap (shards never share a slot, so one field suffices).
	entryIdx int32
}

// shardState is one socket shard's private state.
type shardState struct {
	// hitMap maps this shard's resident sparse IDs to global slots.
	hitMap *intmap.Map
	// freePrimary holds this shard's share of the never-yet-used
	// primary slots (striped at construction; replenished only by
	// borrowing — eviction reuses the victim's slot directly, exactly
	// like the unsharded planner).
	freePrimary []int32
	// inFlight is this shard's FIFO of per-batch hold sets; every Plan
	// pushes one entry (possibly empty) so Release stays FIFO-checked
	// per shard.
	inFlight core.BatchRing
	// lruHead/lruTail delimit this shard's recency list (least recent
	// first) threaded through the Manager's shared next/prev arrays.
	// List order equals increasing touch-stamp order, which is what
	// lets the coordinator merge shard lists into the global LRU
	// sequence.
	lruHead, lruTail int32

	// sweepCur is the coordinator's per-shard victim-sweep cursor;
	// candQ[candHead:] holds the shard's parked evictable candidates
	// (in recency order) gathered by the latest poll, and candDone
	// marks the shard's eviction order exhausted for this sweep. Exact
	// mode polls one candidate at a time; the batched modes gather the
	// Plan's whole miss budget per poll.
	sweepCur int32
	candQ    []int32
	candHead int
	candDone bool

	// held is the hold set being assembled for the current Plan;
	// heldPool recycles retired hold-set buffers.
	held     []int32
	heldPool [][]int32

	// queries/hits are per-shard occurrence counters (shard-balance
	// observability; the empty-shard tests read them).
	queries, hits int64
	// occHits/occMisses accumulate the current Plan's per-shard
	// occurrence counts, reduced serially after the parallel pass.
	occHits, occMisses int
}

// nilSlot is the recency-list terminator (and the "no candidate"
// sentinel of the victim sweep).
const nilSlot = int32(-1)

// Manager is the sharded per-table scratchpad control plane. It exposes
// the same Plan/Release/Recycle/Prewarm lifecycle as core.Scratchpad and
// produces identical plans and statistics at every shard count; with
// Shards == 1 it *is* a core.Scratchpad behind a thin delegation layer.
type Manager struct {
	cfg     core.Config
	nshards int
	pool    *par.Pool

	// place is the shard-to-node assignment; coord meters the
	// coordinator's cross-node traffic under it (nil when co-located:
	// no metering, zero cost). lastCoord is the coordination latency
	// charged to the most recent Plan.
	place     hw.Placement
	coord     *coordMeter
	lastCoord float64
	// coordBase carries lifetime coordination traffic across reshard
	// events (each event retires its meter; see installPlacement).
	coordBase CoordStats
	// prewarming suppresses coordination metering during PrewarmRows
	// (setup-time slot shuffling is not per-iteration traffic).
	prewarming bool

	// Overlapped coordination (see spec.go): spec parks one speculative
	// sweep between SpeculatePlan and the Plan that adopts or rolls it
	// back; specFlags/specDirty are the sparse projection overlay;
	// specEntryClock snapshots the stamp clock at Plan entry for the
	// adoption guard; overlap counts lifetime outcomes. lastCoordCrit /
	// lastCoordWall are the most recent Plan's critical modeled share
	// and measured wall twin (see LastPlanCoordCritical).
	spec           specState
	specFlags      []uint8
	specDirty      []int32
	specEntryClock uint64
	overlap        OverlapStats
	lastCoordCrit  float64
	lastCoordWall  float64

	// mode is the coordination protocol; quantum is the approx-mode
	// recency quantum in clock ticks (1 outside approx mode, so the
	// victim merge compares raw stamps); pollK is the current Plan's
	// candidate batch size (1 in exact mode, the miss budget
	// otherwise).
	mode    CoordMode
	quantum uint64
	pollK   int

	// shadow is approx mode's exact reference planner: it consumes the
	// identical Plan stream so the divergence the quantized recency
	// introduces is measured, not assumed. div accumulates the
	// comparison; edScratch/evSelf/evShadow back it allocation-free.
	shadow    *core.Scratchpad
	div       Divergence
	edScratch []int32
	evSelf    []int64
	evShadow  []int64

	// single is the unsharded fast path (Shards == 1): full delegation,
	// bit-identical to the pre-sharding tree.
	single *core.Scratchpad

	// elastic marks the manager reshardable (see reshard.go): its shard
	// count may change between Plans via Reshard. loadProbe is the
	// fixed-granularity query-mass histogram load-triggered reshard
	// policies read (occurrences bucketed by ShardOf(id,
	// LoadProbeBuckets); nil unless Config.LoadProbe opted in);
	// resharding tracks the lifetime migration totals and lastReshard
	// the most recent event's modeled latency.
	elastic     bool
	loadProbe   []int64
	resharding  ReshardStats
	lastReshard float64

	// Failure state (see failure.go): degraded marks partition-mode
	// approx coordination (preMode/preQuantum restore on Heal); evac
	// totals host-evacuation activity and lastEvac the most recent
	// event's modeled recovery-transfer latency.
	degraded   bool
	preMode    CoordMode
	preQuantum uint64
	evac       EvacStats
	lastEvac   float64

	shards []shardState
	// meta/next/prev are global per-slot arrays. A slot belongs to
	// exactly one shard at a time (the one whose ID occupies it), so
	// shard-parallel writes never alias; empty slots are touched only
	// by the serial coordinator.
	meta       []slotMeta
	next, prev []int32
	// hintStamp[slot] == pinEpoch marks a deep-look-ahead eviction
	// hint (allocated lazily like the unsharded planner's).
	hintStamp   []int64
	hintRelaxed bool

	// stampClock is the global recency timeline: every touch gets the
	// next stamp, assigned deterministically by batch position so the
	// shard-parallel pass reproduces the serial touch order.
	stampClock uint64

	// Look-ahead pin epoch state (same discipline as core.Scratchpad,
	// lifted to the coordinator).
	pinEpoch      int64
	pinValid      int64
	lastPinnedSeq int
	havePinned    bool

	// The eviction-budget coordinator's global capacity accounting:
	// freePrimaryTotal counts unused primary slots across all shards
	// (shards borrow from each other before anyone evicts, so eviction
	// starts exactly when the unsharded free list would run dry);
	// freeReserve is the global reserve stack.
	freePrimaryTotal int
	freeReserve      []int32
	reserveInUse     int
	sweepArmed       bool

	// planPool recycles PlanResults; scratch slices back the Plan
	// passes: shardOf routes each uniq position to its owner (read by
	// the serial coordinator pass), uniqIdx/winIdx bucket the batch and
	// look-ahead-window positions per shard so each shard's parallel
	// pass walks only its own share (O(batch+window) total routing work
	// instead of S skip-scans), winIDs is the flattened window.
	planPool    []*core.PlanResult
	shardOf     []uint16
	uniqIdx     [][]int32
	winIdx      [][]int32
	winIDs      []int64
	missIdx     []int32
	dedup       *intmap.Map
	uniqScratch []int64
	cntScratch  []int32

	stats core.Stats
}

// New builds a sharded manager from cfg.
func New(cfg Config) (*Manager, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := cfg.Shards
	if n == 0 {
		n = 1
	}
	mode, err := ParseCoordMode(string(cfg.Coord))
	if err != nil {
		return nil, err
	}
	if n == 1 && !cfg.Elastic {
		// The S=1 delegate has no cross-shard coordination; every mode
		// is trivially exact. (Elastic managers skip the delegation so
		// their state lives in the migratable generic representation.)
		sp, err := core.NewScratchpad(cfg.Scratchpad)
		if err != nil {
			return nil, err
		}
		return &Manager{cfg: cfg.Scratchpad, nshards: 1, pool: cfg.Pool, mode: mode, quantum: 1, single: sp}, nil
	}
	c := cfg.Scratchpad
	total := c.Slots + c.Reserve
	m := &Manager{
		cfg:     c,
		nshards: n,
		pool:    cfg.Pool,
		place:   cfg.Placement,
		coord:   newCoordMeter(cfg.Placement, n, mode),
		mode:    mode,
		quantum: 1,
		pollK:   1,
		shards:  make([]shardState, n),
		meta:    make([]slotMeta, total),
		next:    make([]int32, total),
		prev:    make([]int32, total),
		uniqIdx: make([][]int32, n),
		winIdx:  make([][]int32, n),
	}
	if cfg.Elastic {
		m.elastic = true
	}
	if cfg.LoadProbe {
		m.loadProbe = make([]int64, LoadProbeBuckets)
	}
	if mode == CoordApprox {
		m.quantum = uint64(cfg.CoordQuantum)
		if m.quantum == 0 {
			m.quantum = DefaultApproxQuantum
		}
		shadow, err := core.NewScratchpad(c)
		if err != nil {
			return nil, err
		}
		m.shadow = shadow
	}
	m.pinValid = 1
	if c.FutureWindow > 1 && c.PastWindow >= c.FutureWindow {
		m.pinValid = int64(c.FutureWindow)
	}
	m.pinEpoch = m.pinValid
	for i := range m.meta {
		m.meta[i].key = -1
	}
	// Stripe the primary slots across shards (slot s starts on shard
	// s % n); each stack is filled descending so pops ascend, matching
	// the unsharded free list's allocation direction.
	for j := 0; j < n; j++ {
		sh := &m.shards[j]
		sh.hitMap = intmap.New((c.Slots + c.Reserve/2) / n)
		sh.lruHead, sh.lruTail = nilSlot, nilSlot
		count := (c.Slots - j + n - 1) / n
		sh.freePrimary = make([]int32, 0, count)
		for s := c.Slots - 1; s >= 0; s-- {
			if s%n == j {
				sh.freePrimary = append(sh.freePrimary, int32(s))
			}
		}
	}
	m.freePrimaryTotal = c.Slots
	m.freeReserve = make([]int32, 0, c.Reserve)
	for s := total - 1; s >= c.Slots; s-- {
		m.freeReserve = append(m.freeReserve, int32(s))
	}
	return m, nil
}

// Shards returns the shard count.
func (m *Manager) Shards() int { return m.nshards }

// Placement returns the shard-to-node assignment (zero value when
// co-located).
func (m *Manager) Placement() hw.Placement { return m.place }

// LastPlanCoord returns the modeled cross-node coordination latency
// (seconds) of the most recent Plan: zero for co-located placements and
// the S=1 delegate.
func (m *Manager) LastPlanCoord() float64 { return m.lastCoord }

// CoordStats returns the lifetime cross-node coordination traffic (the
// zero value when the placement is co-located), summed across any
// reshard events (each event retires the previous placement's meter).
func (m *Manager) CoordStats() CoordStats {
	s := m.coordBase
	if m.coord != nil {
		s.Merge(m.coord.stats)
	}
	return s
}

// CoordMode returns the coordination protocol the manager runs.
func (m *Manager) CoordMode() CoordMode { return m.mode }

// CoordQuantum returns approx mode's recency quantum in clock ticks
// (1 in every exact-order mode).
func (m *Manager) CoordQuantum() int { return int(m.quantum) }

// Divergence reports how far approximate eviction behaviour drifted
// from the exact global LRU: measured against the shadow planner in
// native approx mode, and inline (quantized victim pick vs raw-stamp
// pick) while a partition has the manager degraded (see failure.go).
// The zero value outside both (exact-order modes cannot diverge).
func (m *Manager) Divergence() Divergence {
	if m.shadow == nil {
		return m.div
	}
	d := m.div
	st, ss := m.stats, m.shadow.Stats()
	d.ApproxHits, d.ApproxQueries = st.Hits, st.Queries
	d.ExactHits, d.ExactQueries = ss.Hits, ss.Queries
	return d
}

// Capacity returns the nominal slot count (excluding reserve).
func (m *Manager) Capacity() int { return m.cfg.Slots }

// TotalSlots returns nominal + reserve capacity.
func (m *Manager) TotalSlots() int { return m.cfg.Slots + m.cfg.Reserve }

// Len returns the number of cached rows across all shards.
func (m *Manager) Len() int {
	if m.single != nil {
		return m.single.Len()
	}
	n := 0
	for j := range m.shards {
		n += m.shards[j].hitMap.Len()
	}
	return n
}

// Contains reports whether sparse ID id currently has a slot.
func (m *Manager) Contains(id int64) bool {
	if m.single != nil {
		return m.single.Contains(id)
	}
	_, ok := m.shards[m.shardFor(id)].hitMap.Get(id)
	return ok
}

// InFlight returns the number of batches currently holding slots.
func (m *Manager) InFlight() int {
	if m.single != nil {
		return m.single.InFlight()
	}
	return m.shards[0].inFlight.Len()
}

// Stats returns the aggregate counters (identical to the unsharded
// planner's at every shard count).
func (m *Manager) Stats() core.Stats {
	if m.single != nil {
		return m.single.Stats()
	}
	return m.stats
}

// ShardStats is one shard's balance snapshot.
type ShardStats struct {
	// Queries/Hits are occurrence-level counters over planned batches.
	Queries, Hits int64
	// Resident is the shard's current Hit-Map population.
	Resident int
	// FreePrimary counts the shard's remaining never-used primary
	// slots (borrowing drains the best-stocked shard first).
	FreePrimary int
}

// ShardStats returns per-shard balance counters (one entry per shard;
// a single-shard manager reports its aggregate as shard 0).
func (m *Manager) ShardStats() []ShardStats {
	if m.single != nil {
		st := m.single.Stats()
		return []ShardStats{{Queries: st.Queries, Hits: st.Hits, Resident: m.single.Len()}}
	}
	out := make([]ShardStats, m.nshards)
	for j := range m.shards {
		sh := &m.shards[j]
		out[j] = ShardStats{
			Queries:     sh.queries,
			Hits:        sh.hits,
			Resident:    sh.hitMap.Len(),
			FreePrimary: len(sh.freePrimary),
		}
	}
	return out
}

// ShardOf returns the shard owning sparse ID id under an S-way hash
// partition (the Manager's own routing function); exported so placement
// policies can estimate per-shard load from a trace distribution.
func ShardOf(id int64, shards int) int {
	return int((uint64(id) * fibMult) >> 32 % uint64(shards))
}

// shardFor hashes a sparse ID to its owning shard.
func (m *Manager) shardFor(id int64) int {
	return ShardOf(id, m.nshards)
}

// --- recency lists -----------------------------------------------------

// pushMRU appends slot at the most-recent end of shard j's list.
func (m *Manager) pushMRU(j int, slot int32) {
	sh := &m.shards[j]
	m.next[slot] = nilSlot
	m.prev[slot] = sh.lruTail
	if sh.lruTail != nilSlot {
		m.next[sh.lruTail] = slot
	} else {
		sh.lruHead = slot
	}
	sh.lruTail = slot
}

// unlink removes slot from shard j's list.
func (m *Manager) unlink(j int, slot int32) {
	sh := &m.shards[j]
	p, nx := m.prev[slot], m.next[slot]
	if p != nilSlot {
		m.next[p] = nx
	} else {
		sh.lruHead = nx
	}
	if nx != nilSlot {
		m.prev[nx] = p
	} else {
		sh.lruTail = p
	}
}

// touch moves slot to shard j's most-recent end and stamps it.
func (m *Manager) touch(j int, slot int32, stamp uint64) {
	m.unlink(j, slot)
	m.pushMRU(j, slot)
	m.meta[slot].stamp = stamp
}

// --- eviction coordination ---------------------------------------------

// isEvictable is the victim predicate (same as the unsharded planner's:
// no holds, no in-window pin, occupied, and — unless the search has
// relaxed — not hinted for reuse by deep look-ahead).
func (m *Manager) isEvictable(slot int32) bool {
	sm := &m.meta[slot]
	if sm.holds != 0 || sm.pinStamp > m.pinEpoch-m.pinValid || sm.key < 0 {
		return false
	}
	return m.hintRelaxed || m.hintStamp[slot] != m.pinEpoch
}

// armSweep resets every shard's sweep cursor to its least-recent end
// and flushes the parked candidate batches (a re-arm changes the
// evictability predicate, so gathered candidates are stale and the next
// consultation re-polls). Mirrors BeginVictimSweep: within one Plan no
// slot can *become* evictable, so skipped slots are never revisited
// until a re-arm.
func (m *Manager) armSweep() {
	for j := range m.shards {
		sh := &m.shards[j]
		sh.sweepCur = sh.lruHead
		sh.candQ = sh.candQ[:0]
		sh.candHead = 0
		sh.candDone = false
	}
	if m.coord != nil {
		m.coord.beginSweep()
	}
}

// shardCand returns shard j's next parked evictable candidate, polling
// the shard to refill its candidate batch when the parked ones are
// consumed; nilSlot when the shard's eviction order is exhausted for
// this sweep. One poll round gathers up to pollK candidates in recency
// order (1 in exact mode — the PR 3 protocol — or the Plan's whole miss
// budget in the batched modes, so a single round per shard covers the
// sweep); parked candidates cost nothing to re-compare, and a batch is
// invalidated only by a sweep re-arm.
func (m *Manager) shardCand(j int) int32 {
	sh := &m.shards[j]
	if sh.candHead < len(sh.candQ) {
		return sh.candQ[sh.candHead]
	}
	if sh.candDone {
		return nilSlot
	}
	sh.candQ = sh.candQ[:0]
	sh.candHead = 0
	cur := sh.sweepCur
	for cur != nilSlot && len(sh.candQ) < m.pollK {
		nxt := m.next[cur]
		if m.isEvictable(cur) {
			sh.candQ = append(sh.candQ, cur)
		}
		cur = nxt
	}
	sh.sweepCur = cur
	if m.coord != nil {
		m.coord.meterPoll(j, len(sh.candQ))
	}
	if len(sh.candQ) == 0 {
		sh.candDone = true
		return nilSlot
	}
	if cur == nilSlot && m.mode != CoordExact {
		// A short batch's reply already says the shard is exhausted;
		// no follow-up empty poll is needed. (Exact mode keeps the PR 3
		// behaviour: exhaustion is discovered by one final empty poll.)
		sh.candDone = true
	}
	return sh.candQ[0]
}

// olderStamp orders two candidate slots on the recency timeline. The
// exact-order modes compare raw global stamps, which are unique, so the
// k-way merge reproduces the serial LRU sequence bit for bit. Approx
// mode compares epoch-quantized stamps: candidates inside one quantum
// tie and resolve toward the lower shard index (the merge loop's scan
// order), which is exactly where its measured divergence comes from.
func (m *Manager) olderStamp(a, b int32) bool {
	if m.quantum > 1 {
		return m.meta[a].stamp/m.quantum < m.meta[b].stamp/m.quantum
	}
	return m.meta[a].stamp < m.meta[b].stamp
}

// victim k-way-merges the shard candidate batches by touch stamp and
// consumes the globally least-recently-used evictable slot — exactly the
// slot the unsharded planner's single LRU sweep would pick (up to
// quantization in approx mode). Returns the slot and its owning shard,
// or (-1, -1) when every shard is exhausted.
func (m *Manager) victim() (int32, int) {
	best, bestShard := nilSlot, -1
	rawBest := nilSlot
	for j := 0; j < m.nshards; j++ {
		c := m.shardCand(j)
		if c < 0 {
			continue
		}
		if best < 0 || m.olderStamp(c, best) {
			best, bestShard = c, j
		}
		if m.degraded && (rawBest < 0 || m.meta[c].stamp < m.meta[rawBest].stamp) {
			rawBest = c
		}
	}
	if m.degraded && best >= 0 && best != rawBest {
		// Inline divergence metering for partition-mode approx: the
		// quantized merge picked a different victim than the raw-stamp
		// merge would have — one substitution in the eviction sequence.
		m.div.EditDistance++
	}
	if best >= 0 {
		m.shards[bestShard].candHead++
		if m.coord != nil {
			// Confirm the merge winner to its owning shard, which
			// unlinks the victim: an immediate round in exact mode,
			// aggregated per shard at Plan end otherwise.
			m.coord.meterConfirm(bestShard)
		}
	}
	return best, bestShard
}

// borrowPrimary pops a never-used primary slot for shard j, borrowing
// from the best-stocked shard when j's own stripe has run dry. The
// global budget (freePrimaryTotal) guarantees no shard evicts while any
// shard still has free capacity — the coordinator property that keeps
// eviction onset identical to the unsharded planner.
func (m *Manager) borrowPrimary(j int) int32 {
	sh := &m.shards[j]
	if len(sh.freePrimary) == 0 {
		donor, max := -1, 0
		for k := range m.shards {
			if l := len(m.shards[k].freePrimary); l > max {
				donor, max = k, l
			}
		}
		if donor < 0 {
			return nilSlot
		}
		if m.coord != nil && donor != j && !m.prewarming {
			// Free-slot borrow: request/grant round trip between the
			// starved shard and the donor stripe's owner. Prewarm-time
			// borrowing is construction work before the measured run
			// starts and is deliberately not metered — otherwise the
			// warm-up's slot shuffling would be billed to the first
			// Plan's coordination latency.
			m.coord.meterBorrow(j, donor)
		}
		sh = &m.shards[donor]
	}
	n := len(sh.freePrimary)
	slot := sh.freePrimary[n-1]
	sh.freePrimary = sh.freePrimary[:n-1]
	m.freePrimaryTotal--
	return slot
}

// reindex rebuilds shard j's slot->entry positions after its hitMap grew.
func (m *Manager) reindex(j int) {
	m.shards[j].hitMap.ForEachIdx(func(idx int, _ int64, slot int32) {
		m.meta[slot].entryIdx = int32(idx)
	})
}

// insert places id (owned by shard j) into slot: hitMap entry, metadata,
// recency stamp, and the current Plan's hold.
func (m *Manager) insert(j int, id int64, slot int32) {
	sh := &m.shards[j]
	// PutIdx grows before inserting, so the returned position is valid
	// even when the map just grew; reindex repairs the older entries.
	cap0 := sh.hitMap.Cap()
	at := sh.hitMap.PutIdx(id, slot)
	if sh.hitMap.Cap() != cap0 {
		m.reindex(j)
	}
	sm := &m.meta[slot]
	sm.key = id
	sm.entryIdx = int32(at)
	m.stampClock++
	sm.stamp = m.stampClock
	m.pushMRU(j, slot)
	sm.holds++
	sh.held = append(sh.held, slot)
}

// --- plan lifecycle ----------------------------------------------------

// getPlanResult pops a recycled PlanResult or builds a fresh one.
func (m *Manager) getPlanResult() *core.PlanResult {
	if n := len(m.planPool); n > 0 {
		res := m.planPool[n-1]
		m.planPool[n-1] = nil
		m.planPool = m.planPool[:n-1]
		return res
	}
	return core.NewPlanResult()
}

// Recycle returns a retired batch's plan buffers to the free list (see
// core.Scratchpad.Recycle).
func (m *Manager) Recycle(res *core.PlanResult) {
	if m.single != nil {
		m.single.Recycle(res)
		return
	}
	if res == nil {
		return
	}
	res.Reset()
	m.planPool = append(m.planPool, res)
}

// getHeld pops a recycled hold-set buffer for shard j.
func (sh *shardState) getHeld() []int32 {
	if n := len(sh.heldPool); n > 0 {
		buf := sh.heldPool[n-1]
		sh.heldPool[n-1] = nil
		sh.heldPool = sh.heldPool[:n-1]
		return buf[:0]
	}
	return nil
}

// Plan runs the [Plan] stage for one mini-batch (see core.Scratchpad.Plan).
func (m *Manager) Plan(seq int, ids []int64, future [][]int64) (*core.PlanResult, error) {
	return m.PlanWithHints(seq, ids, future, nil)
}

// PlanWithHints is Plan with deep look-ahead eviction hints (see
// core.Scratchpad.PlanWithHints).
func (m *Manager) PlanWithHints(seq int, ids []int64, future, hints [][]int64) (*core.PlanResult, error) {
	if m.single != nil {
		return m.single.PlanWithHints(seq, ids, future, hints)
	}
	if m.dedup == nil {
		m.dedup = intmap.New(len(ids))
	}
	uniq, cnt := m.uniqScratch[:0], m.cntScratch[:0]
	if cap(uniq) < len(ids) {
		uniq = make([]int64, 0, len(ids))
		cnt = make([]int32, 0, len(ids))
	}
	uniq, cnt = intmap.Dedup(ids, m.dedup, uniq, cnt)
	m.uniqScratch, m.cntScratch = uniq, cnt
	return m.PlanUniqueWithHints(seq, uniq, cnt, future, hints)
}

// PlanUniqueWithHints is the planner's native form (see
// core.Scratchpad.PlanUniqueWithHints). The per-occurrence work — Hit-Map
// probes, recency touches, pin/hint stamping, hold registration — fans
// out across shards; the eviction-budget coordinator then allocates the
// misses serially in first-appearance order, reproducing the unsharded
// planner's victim sequence through the cross-shard stamp merge.
func (m *Manager) PlanUniqueWithHints(seq int, uniq []int64, counts []int32, future, hints [][]int64) (*core.PlanResult, error) {
	if m.single != nil {
		return m.single.PlanUniqueWithHints(seq, uniq, counts, future, hints)
	}
	if got := len(future); got > m.cfg.FutureWindow {
		return nil, fmt.Errorf("shard: plan %d: %d future batches exceeds future window %d", seq, got, m.cfg.FutureWindow)
	}

	// Snapshot the stamp clock before anything moves: the speculative
	// sweep (if one is parked) was taken against exactly this value.
	m.specEntryClock = m.stampClock

	// Pin-epoch bookkeeping (identical to the unsharded planner; see
	// core.Scratchpad for the multi-epoch stamp argument).
	m.pinEpoch++
	futStart := 0
	if m.pinValid > 1 && m.havePinned {
		if futStart = m.lastPinnedSeq - seq; futStart < 0 {
			futStart = 0
		} else if futStart > len(future) {
			futStart = len(future)
		}
	}
	if n := seq + len(future); len(future) > 0 && (!m.havePinned || n > m.lastPinnedSeq) {
		m.lastPinnedSeq = n
		m.havePinned = true
	}
	if len(hints) > 0 && m.hintStamp == nil {
		m.hintStamp = make([]int64, m.TotalSlots())
	}

	res := m.getPlanResult()
	res.Seq = seq
	m.hintRelaxed = len(hints) == 0

	if cap(res.UniqueIDs) < len(uniq) {
		res.UniqueIDs = make([]int64, 0, len(uniq))
		res.Slots = make([]int32, 0, len(uniq))
	}
	res.UniqueIDs = append(res.UniqueIDs, uniq...)
	res.Slots = res.Slots[:len(uniq)]
	// Route the batch and the look-ahead window once, bucketing
	// positions per owning shard: the parallel pass below then walks
	// only each shard's own share (total routing work O(batch+window),
	// not S skip-scans). shardOf keeps the per-position owner for the
	// serial coordinator pass.
	if cap(m.shardOf) < len(uniq) {
		m.shardOf = make([]uint16, len(uniq))
	}
	shardOf := m.shardOf[:len(uniq)]
	for j := range m.uniqIdx {
		m.uniqIdx[j] = m.uniqIdx[j][:0]
		m.winIdx[j] = m.winIdx[j][:0]
	}
	for i, id := range uniq {
		j := m.shardFor(id)
		shardOf[i] = uint16(j)
		m.uniqIdx[j] = append(m.uniqIdx[j], int32(i))
		if m.loadProbe != nil {
			// Elastic managers histogram the query mass at a fixed
			// S-independent granularity so load-triggered reshard
			// policies can observe ID-space skew even at S=1.
			c := int64(1)
			if counts != nil {
				c = int64(counts[i])
			}
			m.loadProbe[ShardOf(id, LoadProbeBuckets)] += c
		}
	}
	fut := future[futStart:]
	winIDs := m.winIDs[:0]
	for _, fids := range fut {
		for _, id := range fids {
			j := m.shardFor(id)
			m.winIdx[j] = append(m.winIdx[j], int32(len(winIDs)))
			winIDs = append(winIDs, id)
		}
	}
	hintOff := len(winIDs)
	for _, hids := range hints {
		for _, id := range hids {
			j := m.shardFor(id)
			m.winIdx[j] = append(m.winIdx[j], int32(len(winIDs)))
			winIDs = append(winIDs, id)
		}
	}
	m.winIDs = winIDs

	// Shard-parallel pass: every shard pins its own future IDs, stamps
	// its own hints, and classifies its own partition of the batch.
	// Touch stamps are assigned by batch position (stampBase + i), so
	// the shard-parallel pass reproduces the exact recency order the
	// serial planner would produce; all writes go through slots owned
	// by the executing shard, so the fan-out is race-free and
	// bit-identical at any worker count.
	stampBase := m.stampClock
	m.pool.ForEach(m.nshards, func(j int) {
		sh := &m.shards[j]
		for _, w := range m.winIdx[j] {
			if slot, ok := sh.hitMap.Get(winIDs[w]); ok {
				if int(w) < hintOff {
					m.meta[slot].pinStamp = m.pinEpoch
				} else {
					m.hintStamp[slot] = m.pinEpoch
				}
			}
		}
		held := sh.getHeld()
		occHits, occMisses := 0, 0
		for _, iPos := range m.uniqIdx[j] {
			i := int(iPos)
			id := uniq[i]
			c := 1
			if counts != nil {
				c = int(counts[i])
			}
			if slot, ok := sh.hitMap.Get(id); ok {
				occHits += c
				res.Slots[i] = slot
				m.touch(j, slot, stampBase+uint64(i)+1)
				m.meta[slot].holds++
				held = append(held, slot)
				continue
			}
			occMisses++
			occHits += c - 1
			res.Slots[i] = -1
		}
		sh.held = held
		sh.occHits, sh.occMisses = occHits, occMisses
		sh.queries += int64(occHits + occMisses)
		sh.hits += int64(occHits)
	})
	m.stampClock = stampBase + uint64(len(uniq))
	for j := range m.shards {
		sh := &m.shards[j]
		res.OccHits += sh.occHits
		res.OccMisses += sh.occMisses
	}
	if m.coord != nil {
		// Touch-stamp sync: the coordinator broadcasts the Plan's stamp
		// base and collects each remote shard's touch count so the
		// global recency timeline stays merge-consistent — per remote
		// shard in exact/batched, aggregated through the host tier in
		// hier, and not at all in approx (quantized epochs need no
		// global clock; co-located endpoints are always free).
		m.coord.meterStampSync()
	}

	// Collect the misses in first-appearance order (the order the
	// coordinator must allocate them in to match the serial planner).
	missIdx := m.missIdx[:0]
	if cap(missIdx) < len(uniq) {
		missIdx = make([]int32, 0, len(uniq))
	}
	for i := range res.Slots {
		if res.Slots[i] < 0 {
			missIdx = append(missIdx, int32(i))
		}
	}
	m.missIdx = missIdx

	// Size the candidate batches from the Plan's miss budget: at most
	// len(missIdx) victims can be needed, so one batched poll round per
	// shard always covers the sweep. Exact mode polls one at a time.
	m.pollK = 1
	if m.mode != CoordExact && len(missIdx) > 1 {
		m.pollK = len(missIdx)
	}

	if cap(res.Fills) < len(missIdx) {
		res.Fills = make([]core.Fill, 0, len(missIdx))
	}
	if cap(res.Evictions) < len(missIdx) {
		res.Evictions = make([]core.Eviction, 0, len(missIdx))
	}

	// Serial coordinator pass: allocate the misses. Free primary
	// capacity (own stripe, then borrowed) precedes eviction; the
	// cross-shard stamp merge picks victims in global LRU order; the
	// reserve budget is the last resort, exactly as unsharded.
	m.sweepArmed = false
	for _, k := range missIdx {
		id := uniq[k]
		j := int(shardOf[k])
		slot := m.borrowPrimary(j)
		if slot < 0 {
			if !m.sweepArmed {
				// Adoption point: a valid speculation installs the
				// sweep pre-answered (its polls become the Plan's
				// hidden coordination share); otherwise arm critically.
				if !m.adoptSpec(seq, len(uniq), len(missIdx)) {
					m.armSweep()
				}
				m.sweepArmed = true
			}
			v, vsh := m.victim()
			if v < 0 && !m.hintRelaxed {
				// Every unprotected slot is merely hinted: relax
				// the preference and sweep once more.
				m.hintRelaxed = true
				m.armSweep()
				v, vsh = m.victim()
			}
			if v >= 0 {
				old := m.meta[v].key
				m.shards[vsh].hitMap.DeleteAt(int(m.meta[v].entryIdx), func(slot int32, newIdx int) {
					m.meta[slot].entryIdx = int32(newIdx)
				})
				m.unlink(vsh, v)
				m.meta[v].key = -1
				slot = v
				if m.coord != nil && vsh != j {
					// The victim's slot changes owners: transfer its
					// control metadata to the missing ID's shard
					// (immediately in exact mode, one aggregated round
					// per shard pair at Plan end otherwise).
					m.coord.meterSlotMove(vsh, j)
				}
				res.Evictions = append(res.Evictions, core.Eviction{OldID: old, Slot: slot})
			} else if n := len(m.freeReserve); n > 0 {
				slot = m.freeReserve[n-1]
				m.freeReserve = m.freeReserve[:n-1]
				m.reserveInUse++
				if m.reserveInUse > m.stats.ReservePeak {
					m.stats.ReservePeak = m.reserveInUse
				}
				res.ReserveAllocs++
			} else {
				return nil, fmt.Errorf("shard: plan %d: scratchpad exhausted: %d slots + %d reserve all protected across %d shards (in-flight %d batches)",
					seq, m.cfg.Slots, m.cfg.Reserve, m.nshards, m.InFlight())
			}
		}
		m.insert(j, id, slot)
		res.Slots[k] = slot
		res.Fills = append(res.Fills, core.Fill{ID: id, Slot: slot})
	}

	// Register every shard's hold set (one ring entry per Plan, even
	// when empty, keeping Release FIFO-checkable per shard).
	for j := range m.shards {
		sh := &m.shards[j]
		sh.inFlight.Push(core.HeldBatch{Seq: seq, Slots: sh.held})
		sh.held = nil
	}

	// Retire a speculation this Plan never consumed (no sweep armed)
	// before pricing, so its staged ledger cannot leak into the bill.
	m.endSpecPlan(seq)
	if m.coord != nil {
		m.lastCoord = m.coord.finishPlan()
		m.lastCoordCrit = m.coord.lastCrit
		m.lastCoordWall = m.coord.lastWallFull
	} else {
		m.lastCoordCrit, m.lastCoordWall = 0, 0
	}

	if m.shadow != nil {
		// Approx mode: the shadow exact planner consumes the identical
		// Plan, and the victim sequences are compared so the
		// quantization's divergence is measured per Plan. The shadow's
		// result buffers recycle immediately (its hold state lives in
		// the planner, not the result).
		sres, err := m.shadow.PlanUniqueWithHints(seq, uniq, counts, future, hints)
		if err != nil {
			return nil, fmt.Errorf("shard: plan %d: approx shadow planner: %w", seq, err)
		}
		m.evSelf = m.evSelf[:0]
		for _, e := range res.Evictions {
			m.evSelf = append(m.evSelf, e.OldID)
		}
		m.evShadow = m.evShadow[:0]
		for _, e := range sres.Evictions {
			m.evShadow = append(m.evShadow, e.OldID)
		}
		var dist int
		dist, m.edScratch = editDistance(m.evSelf, m.evShadow, m.edScratch)
		m.div.Plans++
		m.div.EditDistance += int64(dist)
		m.div.ApproxEvictions += int64(len(res.Evictions))
		m.div.ExactEvictions += int64(len(sres.Evictions))
		m.shadow.Recycle(sres)
	}

	if m.degraded {
		// Partition-mode divergence accounting (both planners see the
		// same Plan, so the eviction counts agree; the edit distance
		// accumulated per differing victim pick in the merge).
		m.div.Plans++
		m.div.ApproxEvictions += int64(len(res.Evictions))
		m.div.ExactEvictions += int64(len(res.Evictions))
	}

	m.stats.Planned++
	m.stats.Queries += int64(res.OccHits + res.OccMisses)
	m.stats.Hits += int64(res.OccHits)
	m.stats.Misses += int64(res.OccMisses)
	m.stats.UniqueQueries += int64(len(res.UniqueIDs))
	m.stats.UniqueMisses += int64(len(res.Fills))
	m.stats.UniqueHits += int64(len(res.UniqueIDs) - len(res.Fills))
	m.stats.Fills += int64(len(res.Fills))
	m.stats.Evictions += int64(len(res.Evictions))
	m.stats.ReserveAllocs += int64(res.ReserveAllocs)
	return res, nil
}

// Release drops the oldest in-flight batch's holds on every shard (see
// core.Scratchpad.Release); shards release in parallel.
func (m *Manager) Release(seq int) error {
	if m.single != nil {
		return m.single.Release(seq)
	}
	err := m.pool.ForEachErr(m.nshards, func(j int) error {
		sh := &m.shards[j]
		if sh.inFlight.Len() == 0 {
			return fmt.Errorf("shard: release %d: no in-flight batches", seq)
		}
		if got := sh.inFlight.Front().Seq; got != seq {
			return fmt.Errorf("shard: release %d: oldest in-flight batch is %d (releases must be FIFO)", seq, got)
		}
		hb := sh.inFlight.Pop()
		for _, slot := range hb.Slots {
			if m.meta[slot].holds <= 0 {
				return fmt.Errorf("shard: release %d: slot %d hold underflow", seq, slot)
			}
			m.meta[slot].holds--
		}
		if hb.Slots != nil {
			sh.heldPool = append(sh.heldPool, hb.Slots)
		}
		return nil
	})
	if err != nil {
		return err
	}
	if m.shadow != nil {
		if err := m.shadow.Release(seq); err != nil {
			return fmt.Errorf("shard: approx shadow planner: %w", err)
		}
	}
	m.stats.Released++
	return nil
}

// Prewarm fills free capacity with IDs drawn from sample before training
// starts (see core.Scratchpad.Prewarm).
func (m *Manager) Prewarm(sample func() int64, onFill func(id int64, slot int32)) int {
	return m.PrewarmRows(0, sample, onFill)
}

// PrewarmRows is Prewarm with a known sparse-ID domain (see
// core.Scratchpad.PrewarmRows). Draw sequence, duplicate decisions, and
// the set of inserted rows are identical to the unsharded planner's;
// only the physical slot numbers differ.
func (m *Manager) PrewarmRows(rows int64, sample func() int64, onFill func(id int64, slot int32)) int {
	if m.single != nil {
		return m.single.PrewarmRows(rows, sample, onFill)
	}
	if m.InFlight() != 0 {
		panic("shard: Prewarm with batches in flight")
	}
	// Prewarm inserts move recency lists and the stamp clock: any parked
	// speculation is stale.
	m.invalidateSpec()
	m.prewarming = true
	defer func() { m.prewarming = false }()
	if m.shadow != nil {
		// Tee the draw stream so the shadow exact planner warms to the
		// identical content (draw sequences and duplicate decisions are
		// identical by the prewarm-equivalence property, so the shadow
		// consumes exactly the recorded draws).
		var draws []int64
		inner := sample
		sample = func() int64 {
			id := inner()
			draws = append(draws, id)
			return id
		}
		defer func() {
			i := 0
			m.shadow.PrewarmRows(rows, func() int64 { id := draws[i]; i++; return id }, nil)
		}()
	}
	var seen []uint64
	if rows > 0 {
		seen = make([]uint64, (rows+63)/64)
	}
	inserted := 0
	limit := 8*m.cfg.Slots + 100
	for draws := 0; m.freePrimaryTotal > 0 && draws < limit; draws++ {
		id := sample()
		j := m.shardFor(id)
		sh := &m.shards[j]
		if seen != nil {
			w, bit := id/64, uint64(1)<<(uint64(id)%64)
			if seen[w]&bit != 0 {
				continue
			}
			seen[w] |= bit
		} else if _, ok := sh.hitMap.Get(id); ok {
			continue
		}
		slot := m.borrowPrimary(j)
		cap0 := sh.hitMap.Cap()
		at := sh.hitMap.PutIdx(id, slot)
		if sh.hitMap.Cap() != cap0 {
			m.reindex(j)
		}
		sm := &m.meta[slot]
		sm.key = id
		sm.entryIdx = int32(at)
		m.stampClock++
		sm.stamp = m.stampClock
		m.pushMRU(j, slot)
		if onFill != nil {
			onFill(id, slot)
		}
		inserted++
	}
	return inserted
}

// ForEach visits every cached (sparse ID, slot) pair, shard by shard, in
// unspecified order within each shard.
func (m *Manager) ForEach(f func(id int64, slot int32)) {
	if m.single != nil {
		m.single.ForEach(f)
		return
	}
	for j := range m.shards {
		m.shards[j].hitMap.ForEach(f)
	}
}

// Held reports whether a slot is currently protected by any in-flight
// batch; exported for invariant tests.
func (m *Manager) Held(slot int32) bool {
	if m.single != nil {
		return m.single.Held(slot)
	}
	return m.meta[slot].holds != 0
}

// Key returns the sparse ID cached in slot, or -1. Exported for tests.
func (m *Manager) Key(slot int32) int64 {
	if m.single != nil {
		return m.single.Key(slot)
	}
	return m.meta[slot].key
}
