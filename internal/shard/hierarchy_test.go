package shard

import (
	"math/rand"
	"testing"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/par"
)

// modeManager builds an S-shard manager placed on topo (stripe policy)
// running the given coordination protocol.
func modeManager(t *testing.T, cfg core.Config, shards int, topo *hw.Topology, mode CoordMode, quantum int) *Manager {
	t.Helper()
	var pl hw.Placement
	if topo != nil {
		var err error
		pl, err = hw.NewPlacement(hw.PlaceStripe, topo, shards, nil)
		if err != nil {
			t.Fatal(err)
		}
	}
	m, err := New(Config{
		Scratchpad:   cfg,
		Shards:       shards,
		Pool:         par.New(2),
		Placement:    pl,
		Coord:        mode,
		CoordQuantum: quantum,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// driveSlotLockstep runs the same stream through two managers, requiring
// byte-identical plans *including physical slot numbers* (both managers
// run the same hash partition, so even slots must agree).
func driveSlotLockstep(t *testing.T, label string, a, b *Manager, st *stream, iters, futureWin, lookahead int) {
	t.Helper()
	const depth = 4
	var pendA, pendB []*core.PlanResult
	for seq := 0; seq < iters; seq++ {
		future, hints := st.window(seq, futureWin, lookahead)
		ra, err := a.PlanWithHints(seq, st.at(seq), future, hints)
		if err != nil {
			t.Fatalf("%s seq %d: a.Plan: %v", label, seq, err)
		}
		rb, err := b.PlanWithHints(seq, st.at(seq), future, hints)
		if err != nil {
			t.Fatalf("%s seq %d: b.Plan: %v", label, seq, err)
		}
		samePlan(t, label, seq, ra, rb)
		for i := range ra.Slots {
			if ra.Slots[i] != rb.Slots[i] {
				t.Fatalf("%s seq %d: slot %d: %d vs %d (coordination mode changed planning)",
					label, seq, i, ra.Slots[i], rb.Slots[i])
			}
		}
		pendA, pendB = append(pendA, ra), append(pendB, rb)
		if len(pendA) >= depth {
			old := seq - depth + 1
			if err := a.Release(old); err != nil {
				t.Fatalf("%s: a.Release(%d): %v", label, old, err)
			}
			if err := b.Release(old); err != nil {
				t.Fatalf("%s: b.Release(%d): %v", label, old, err)
			}
			a.Recycle(pendA[0])
			b.Recycle(pendB[0])
			pendA, pendB = pendA[1:], pendB[1:]
		}
	}
}

// TestCoordModeExactness is the tentpole acceptance property: batched
// and hierarchical coordination must produce byte-identical plans,
// victims, slots, and statistics to the exact protocol at every shard
// count, on both intra-host (numa) and cross-host (cluster) topologies —
// batching changes only how the merge is *communicated*, never what it
// decides.
func TestCoordModeExactness(t *testing.T) {
	topos := map[string]func(int) *hw.Topology{
		"numa":    func(s int) *hw.Topology { return hw.MultiSocket(s) },
		"cluster": func(s int) *hw.Topology { return hw.Cluster(2, (s+1)/2) },
	}
	for _, mode := range []CoordMode{CoordBatched, CoordHier} {
		for topoName, mk := range topos {
			for _, shards := range []int{2, 3, 4, 7} {
				label := string(mode) + "-" + topoName + "-S" + string(rune('0'+shards))
				t.Run(label, func(t *testing.T) {
					cfg := testConfig(512, 96)
					exact := modeManager(t, cfg, shards, mk(shards), CoordExact, 0)
					m := modeManager(t, cfg, shards, mk(shards), mode, 0)
					st := newStream(int64(shards)*31+int64(len(topoName)), 96, 96, int64(512*4))
					driveSlotLockstep(t, label, exact, m, st, 150, 2, 6)
					if exact.Stats() != m.Stats() {
						t.Fatalf("stats diverged:\nexact %+v\n%s %+v", exact.Stats(), mode, m.Stats())
					}
				})
			}
		}
	}
}

// driveRounds pushes a fixed stream through m and returns its lifetime
// coordination stats.
func driveRounds(t *testing.T, m *Manager, seed int64, iters int) CoordStats {
	t.Helper()
	st := newStream(seed, 96, 96, int64(512*4))
	var pend []*core.PlanResult
	for seq := 0; seq < iters; seq++ {
		future, _ := st.window(seq, 2, 0)
		res, err := m.PlanWithHints(seq, st.at(seq), future, nil)
		if err != nil {
			t.Fatal(err)
		}
		pend = append(pend, res)
		if len(pend) >= 4 {
			if err := m.Release(seq - 3); err != nil {
				t.Fatal(err)
			}
			m.Recycle(pend[0])
			pend = pend[1:]
		}
	}
	return m.CoordStats()
}

// TestCoordRoundReduction encodes the headline perf claim: on the
// two-host cluster at S=4, batched and hierarchical coordination cut
// message rounds per Plan by at least 5x against the exact protocol at
// identical plans, the hierarchical tier is no chattier (and strictly
// cheaper in modeled time) than flat batching, and approx sends
// strictly less traffic than hier.
func TestCoordRoundReduction(t *testing.T) {
	cfg := testConfig(512, 96)
	topo := hw.Cluster(2, 2)
	const iters = 120
	stats := map[CoordMode]CoordStats{}
	for _, mode := range CoordModes {
		m := modeManager(t, cfg, 4, topo, mode, 0)
		stats[mode] = driveRounds(t, m, 1234, iters)
	}
	exact, batched, hier, approx := stats[CoordExact], stats[CoordBatched], stats[CoordHier], stats[CoordApprox]
	if exact.Messages == 0 || batched.Messages == 0 || hier.Messages == 0 {
		t.Fatalf("no coordination metered: exact %d, batched %d, hier %d rounds",
			exact.Messages, batched.Messages, hier.Messages)
	}
	if batched.Messages*5 > exact.Messages {
		t.Fatalf("batched rounds %d not >=5x below exact's %d", batched.Messages, exact.Messages)
	}
	if hier.Messages*5 > exact.Messages {
		t.Fatalf("hier rounds %d not >=5x below exact's %d", hier.Messages, exact.Messages)
	}
	if hier.Seconds >= batched.Seconds {
		t.Fatalf("hier modeled time %g not below batched %g (host tier should shift rounds to cheap links)",
			hier.Seconds, batched.Seconds)
	}
	if approx.Bytes() >= hier.Bytes() || approx.Messages >= hier.Messages {
		t.Fatalf("approx traffic (%g B, %d rounds) not strictly below hier (%g B, %d rounds)",
			approx.Bytes(), approx.Messages, hier.Bytes(), hier.Messages)
	}
	if approx.StampSyncRounds != 0 || approx.TouchStampBytes != 0 {
		t.Fatalf("approx metered stamp-sync traffic: %+v", approx)
	}
	// The per-pattern breakdown must account for every round.
	for mode, s := range stats {
		if sum := s.PollRounds + s.ConfirmRounds + s.SlotMoveRounds + s.StampSyncRounds + s.BorrowRounds; sum != s.Messages {
			t.Fatalf("%s: pattern rounds sum %d != total messages %d (%+v)", mode, sum, s.Messages, s)
		}
	}
}

// TestApproxQuantumOneIsExact is the fuzz satellite: with quantum 1 the
// quantized merge key equals the raw stamp, so approx mode must emit
// byte-identical plans to exact and every divergence metric must be
// zero, across randomized configurations and streams.
func TestApproxQuantumOneIsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 10; trial++ {
		slots := 64 + rng.Intn(512)
		batchLen := 16 + rng.Intn(96)
		idSpace := int64(slots/2 + rng.Intn(slots*6))
		shards := []int{2, 3, 4, 7}[trial%4]
		cfg := core.Config{
			Slots:        slots,
			Policy:       cache.LRU,
			PastWindow:   3,
			FutureWindow: rng.Intn(3),
		}
		cfg.Reserve = core.WorstCaseReserve(cfg, batchLen)
		exact := modeManager(t, cfg, shards, hw.Cluster(2, (shards+1)/2), CoordExact, 0)
		approx := modeManager(t, cfg, shards, hw.Cluster(2, (shards+1)/2), CoordApprox, 1)
		st := newStream(rng.Int63(), 32, batchLen, idSpace)
		driveSlotLockstep(t, "approx-q1", exact, approx, st, 60, cfg.FutureWindow, 0)
		if exact.Stats() != approx.Stats() {
			t.Fatalf("trial %d: stats diverged:\nexact  %+v\napprox %+v", trial, exact.Stats(), approx.Stats())
		}
		div := approx.Divergence()
		if div.EditDistance != 0 || div.EditRate() != 0 || div.HitRateDelta() != 0 {
			t.Fatalf("trial %d: quantum-1 divergence nonzero: %+v", trial, div)
		}
		if div.Plans == 0 {
			t.Fatalf("trial %d: shadow planner compared no plans", trial)
		}
	}
}

// TestApproxDivergenceMeasured: with a coarse quantum the approximate
// LRU must actually diverge — and the meter must report it as a nonzero,
// bounded edit rate rather than silently pretending exactness. Prewarm
// runs first so the shadow's teed warm-up is exercised too.
func TestApproxDivergenceMeasured(t *testing.T) {
	cfg := testConfig(256, 64)
	m := modeManager(t, cfg, 4, hw.Cluster(2, 2), CoordApprox, 4096)
	rng := rand.New(rand.NewSource(5))
	m.Prewarm(func() int64 { return rng.Int63n(1024) }, nil)
	st := newStream(9, 96, 64, 1024)
	var pend []*core.PlanResult
	for seq := 0; seq < 120; seq++ {
		future, _ := st.window(seq, 2, 0)
		res, err := m.PlanWithHints(seq, st.at(seq), future, nil)
		if err != nil {
			t.Fatal(err)
		}
		pend = append(pend, res)
		if len(pend) >= 4 {
			if err := m.Release(seq - 3); err != nil {
				t.Fatal(err)
			}
			m.Recycle(pend[0])
			pend = pend[1:]
		}
	}
	div := m.Divergence()
	if div.Plans != 120 {
		t.Fatalf("shadow compared %d plans, want 120", div.Plans)
	}
	if div.EditDistance == 0 {
		t.Fatal("coarse-quantum approx mode produced zero divergence: the meter is not measuring")
	}
	if r := div.EditRate(); r <= 0 || r > 1 {
		t.Fatalf("edit rate %g outside (0, 1]: Levenshtein bound violated", r)
	}
	if div.ExactEvictions == 0 || div.ApproxEvictions == 0 {
		t.Fatalf("divergence missing eviction totals: %+v", div)
	}
	if d := div.HitRateDelta(); d < -1 || d > 1 {
		t.Fatalf("hit-rate delta %g outside [-1, 1]", d)
	}
}

// TestCoordModeValidation: unknown protocols and negative quantums are
// rejected at construction; every named mode constructs.
func TestCoordModeValidation(t *testing.T) {
	cfg := testConfig(64, 16)
	if _, err := New(Config{Scratchpad: cfg, Shards: 2, Coord: "gossip"}); err == nil {
		t.Fatal("unknown coordination mode accepted")
	}
	if _, err := New(Config{Scratchpad: cfg, Shards: 2, CoordQuantum: -1}); err == nil {
		t.Fatal("negative quantum accepted")
	}
	for _, mode := range CoordModes {
		m, err := New(Config{Scratchpad: cfg, Shards: 2, Coord: mode})
		if err != nil {
			t.Fatalf("mode %s rejected: %v", mode, err)
		}
		if m.CoordMode() != mode {
			t.Fatalf("mode %s reports %s", mode, m.CoordMode())
		}
	}
	// The S=1 delegate accepts every mode (no coordination exists).
	for _, mode := range CoordModes {
		if _, err := New(Config{Scratchpad: cfg, Shards: 1, Coord: mode}); err != nil {
			t.Fatalf("S=1 mode %s rejected: %v", mode, err)
		}
	}
}

// TestEditDistance pins the divergence metric's core on hand-checked
// cases.
func TestEditDistance(t *testing.T) {
	cases := []struct {
		a, b []int64
		want int
	}{
		{nil, nil, 0},
		{[]int64{1, 2, 3}, nil, 3},
		{nil, []int64{7}, 1},
		{[]int64{1, 2, 3}, []int64{1, 2, 3}, 0},
		{[]int64{1, 2, 3}, []int64{1, 3}, 1},
		{[]int64{1, 2, 3}, []int64{2, 1, 3}, 2},
		{[]int64{1, 2, 3}, []int64{4, 5, 6}, 3},
		{[]int64{1, 2, 3, 4}, []int64{2, 3, 4, 5}, 2},
	}
	var scratch []int32
	for i, c := range cases {
		var got int
		got, scratch = editDistance(c.a, c.b, scratch)
		if got != c.want {
			t.Fatalf("case %d: editDistance(%v, %v) = %d, want %d", i, c.a, c.b, got, c.want)
		}
	}
}
