package shard

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/intmap"
)

// specDriver runs the engine's overlap choreography against a manager:
// after each Plan, speculate the next Plan's sweep (projecting the
// Release the driver will issue before it), then release and go around.
// mis != nil perturbs the speculation inputs to force rollbacks.
type specDriver struct {
	dedup *intmap.Map
	uniq  []int64
	cnt   []int32
}

func (d *specDriver) speculate(m *Manager, seq int, ids []int64, future, hints [][]int64, releaseSeq int) {
	if d.dedup == nil {
		d.dedup = intmap.New(len(ids))
	}
	d.uniq, d.cnt = intmap.Dedup(ids, d.dedup, d.uniq[:0], d.cnt[:0])
	m.SpeculatePlan(seq, d.uniq, future, hints, releaseSeq)
}

// driveOverlap is driveLockstep with manager b running the speculation
// choreography; wrongRelease mis-projects every Release (the adversarial
// all-rollback mode).
func driveOverlap(t *testing.T, label string, a, b *Manager, st *stream, iters, futureWin, lookahead int, wrongRelease bool) {
	t.Helper()
	const depth = 4
	var d specDriver
	var pendA, pendB []*core.PlanResult
	for seq := 0; seq < iters; seq++ {
		future, hints := st.window(seq, futureWin, lookahead)
		ra, err := a.PlanWithHints(seq, st.at(seq), future, hints)
		if err != nil {
			t.Fatalf("%s seq %d: baseline Plan: %v", label, seq, err)
		}
		rb, err := b.PlanWithHints(seq, st.at(seq), future, hints)
		if err != nil {
			t.Fatalf("%s seq %d: overlapped Plan: %v", label, seq, err)
		}
		samePlan(t, label, seq, ra, rb)
		for k := range ra.Slots {
			if ra.Slots[k] != rb.Slots[k] {
				t.Fatalf("%s seq %d: slot %d differs (%d vs %d): speculation changed planning",
					label, seq, k, ra.Slots[k], rb.Slots[k])
			}
		}
		pendA, pendB = append(pendA, ra), append(pendB, rb)

		// The engine's overlap window: speculate the next Plan against
		// the current state, projecting the Release that will precede it.
		if seq+1 < iters {
			rel := -1
			if len(pendA) >= depth {
				rel = seq - depth + 1
			}
			if wrongRelease {
				rel = -1 // project "no release", then release anyway
			}
			nf, nh := st.window(seq+1, futureWin, lookahead)
			d.speculate(b, seq+1, st.at(seq+1), nf, nh, rel)
		}

		if len(pendA) >= depth {
			old := seq - depth + 1
			if err := a.Release(old); err != nil {
				t.Fatalf("%s: baseline Release(%d): %v", label, old, err)
			}
			if err := b.Release(old); err != nil {
				t.Fatalf("%s: overlapped Release(%d): %v", label, old, err)
			}
			a.Recycle(pendA[0])
			b.Recycle(pendB[0])
			pendA, pendB = pendA[1:], pendB[1:]
		}
	}
	if a.Stats() != b.Stats() {
		t.Fatalf("%s: stats diverged:\nbase %+v\nspec %+v", label, a.Stats(), b.Stats())
	}
}

// sameTraffic asserts the two managers metered identical coordination
// traffic: counters and bytes exactly (all payload sums are integer-
// valued, so float addition is exact), priced seconds within tol
// relative (the critical/overlapped split re-associates the per-link
// sums).
func sameTraffic(t *testing.T, label string, a, b CoordStats, tol float64) {
	t.Helper()
	ca, cb := a, b
	ca.Seconds, cb.Seconds = 0, 0
	ca.OverlapSeconds, cb.OverlapSeconds = 0, 0
	ca.WallSeconds, cb.WallSeconds = 0, 0
	ca.WallHiddenSeconds, cb.WallHiddenSeconds = 0, 0
	if ca != cb {
		t.Fatalf("%s: coordination counters diverged:\nbase %+v\nspec %+v", label, ca, cb)
	}
	if d := math.Abs(a.Seconds - b.Seconds); d > tol*math.Max(a.Seconds, 1e-30) {
		t.Fatalf("%s: coordination seconds diverged beyond %g: %g vs %g", label, tol, a.Seconds, b.Seconds)
	}
}

// TestOverlapEquivalence is the tentpole acceptance property at the
// shard layer: with speculation running the engine's choreography,
// plans, victims, physical slots, statistics, and coordination traffic
// are identical to a run that never speculated — the hidden share just
// moves from critical to overlapped — across every protocol and shard
// count the fig12b/fig13 suites sweep.
func TestOverlapEquivalence(t *testing.T) {
	topo := hw.Cluster(2, 2)
	for _, mode := range []CoordMode{CoordExact, CoordBatched, CoordHier, CoordApprox} {
		for _, shards := range []int{2, 4} {
			label := string(mode) + "/S=" + string(rune('0'+shards))
			cfg := testConfig(512, 96)
			mk := func() *Manager {
				pl, err := hw.NewPlacement(hw.PlaceStripe, topo, shards, nil)
				if err != nil {
					t.Fatal(err)
				}
				m, err := New(Config{Scratchpad: cfg, Shards: shards, Pool: nil, Placement: pl, Coord: mode})
				if err != nil {
					t.Fatal(err)
				}
				return m
			}
			base, spec := mk(), mk()
			st := newStream(77, 96, 96, int64(512*4))
			driveOverlap(t, label, base, spec, st, 150, 2, 6, false)

			if os := base.OverlapStats(); os != (OverlapStats{}) {
				t.Fatalf("%s: baseline speculated: %+v", label, os)
			}
			os := spec.OverlapStats()
			if os.Speculated == 0 || os.Adopted == 0 {
				t.Fatalf("%s: speculation never adopted: %+v", label, os)
			}
			if os.Adopted != os.Speculated {
				t.Fatalf("%s: undisturbed run rolled back (%d of %d): the projection is not exact", label, os.RolledBack, os.Speculated)
			}
			sameTraffic(t, label, base.CoordStats(), spec.CoordStats(), 1e-9)

			cs := spec.CoordStats()
			if cs.OverlapSeconds <= 0 {
				t.Fatalf("%s: nothing hidden: %+v", label, cs)
			}
			if cs.OverlapSeconds >= cs.Seconds {
				t.Fatalf("%s: hidden share %g not a strict share of %g", label, cs.OverlapSeconds, cs.Seconds)
			}
			if base.CoordStats().OverlapSeconds != 0 {
				t.Fatalf("%s: baseline priced an overlapped share", label)
			}
			// The measured twin must cover both scripts: hidden wall only
			// on the speculating run, critical wall on both.
			if cs.WallHiddenSeconds <= 0 || cs.WallSeconds <= 0 {
				t.Fatalf("%s: measured wall missing a share: %+v", label, cs)
			}
			if bs := base.CoordStats(); bs.WallHiddenSeconds != 0 || bs.WallSeconds <= 0 {
				t.Fatalf("%s: baseline wall shape wrong: %+v", label, bs)
			}
		}
	}
}

// TestOverlapAdversarialAllMiss forces every speculation to miss (each
// one projects "no Release" and a Release then happens), asserting the
// rollback path's two guarantees: bit-identical plans and statistics,
// and bounded replay cost — the discarded speculation contributes zero
// modeled seconds, zero rounds, zero bytes, and zero hidden wall; the
// only cost is the wasted background walk.
func TestOverlapAdversarialAllMiss(t *testing.T) {
	topo := hw.Cluster(2, 2)
	for _, mode := range []CoordMode{CoordExact, CoordHier} {
		label := "allmiss/" + string(mode)
		cfg := testConfig(512, 96)
		mk := func() *Manager {
			pl, err := hw.NewPlacement(hw.PlaceStripe, topo, 4, nil)
			if err != nil {
				t.Fatal(err)
			}
			m, err := New(Config{Scratchpad: cfg, Shards: 4, Pool: nil, Placement: pl, Coord: mode})
			if err != nil {
				t.Fatal(err)
			}
			return m
		}
		base, spec := mk(), mk()
		st := newStream(77, 96, 96, int64(512*4))
		driveOverlap(t, label, base, spec, st, 150, 2, 6, true)

		os := spec.OverlapStats()
		if os.Speculated == 0 {
			t.Fatalf("%s: adversary never speculated: %+v", label, os)
		}
		if os.Adopted != 0 {
			t.Fatalf("%s: a mis-projected Release was adopted: %+v", label, os)
		}
		if os.RolledBack < os.Speculated {
			t.Fatalf("%s: %d speculations unaccounted: %+v", label, os.Speculated-os.RolledBack, os)
		}
		// Bounded replay: the rolled-back ledgers must leave no trace —
		// traffic totals match the baseline bit for bit (integer-valued
		// sums in identical order), and nothing was priced as hidden.
		if base.CoordStats() != spec.CoordStats() {
			t.Fatalf("%s: rollback left residue:\nbase %+v\nspec %+v", label, base.CoordStats(), spec.CoordStats())
		}
		if cs := spec.CoordStats(); cs.OverlapSeconds != 0 || cs.WallHiddenSeconds != 0 {
			t.Fatalf("%s: rolled-back speculation priced time: %+v", label, cs)
		}
	}
}

// TestOverlapColocatedNoOp: without a coordination meter there is
// nothing to hide; SpeculatePlan must be a free no-op so engines can
// call it unconditionally.
func TestOverlapColocatedNoOp(t *testing.T) {
	cfg := testConfig(256, 64)
	mk := func() *Manager {
		m, err := New(Config{Scratchpad: cfg, Shards: 4, Pool: nil})
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	base, spec := mk(), mk()
	st := newStream(31, 64, 64, int64(256*4))
	driveOverlap(t, "colocated", base, spec, st, 100, 2, 0, false)
	if os := spec.OverlapStats(); os != (OverlapStats{}) {
		t.Fatalf("co-located manager speculated: %+v", os)
	}
	if cs := spec.CoordStats(); cs != (CoordStats{}) {
		t.Fatalf("co-located manager metered coordination: %+v", cs)
	}
}

// TestOverlapInvalidatedByFaults: the invalidation hooks must retire a
// parked speculation on every state mutation outside the projected
// closed set, and the following Plan must replan critically and stay
// correct.
func TestOverlapInvalidatedByFaults(t *testing.T) {
	topo := hw.Cluster(2, 2)
	cfg := testConfig(512, 96)
	mk := func() *Manager {
		pl, err := hw.NewPlacement(hw.PlaceStripe, topo, 4, nil)
		if err != nil {
			t.Fatal(err)
		}
		m, err := New(Config{Scratchpad: cfg, Shards: 4, Pool: nil, Placement: pl, Coord: CoordHier})
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	base, spec := mk(), mk()
	st := newStream(77, 96, 96, int64(512*4))
	var d specDriver
	const depth = 4
	var pendA, pendB []*core.PlanResult
	for seq := 0; seq < 120; seq++ {
		future, hints := st.window(seq, 2, 6)
		ra, err := base.PlanWithHints(seq, st.at(seq), future, hints)
		if err != nil {
			t.Fatal(err)
		}
		rb, err := spec.PlanWithHints(seq, st.at(seq), future, hints)
		if err != nil {
			t.Fatal(err)
		}
		samePlan(t, "faulted", seq, ra, rb)
		pendA, pendB = append(pendA, ra), append(pendB, rb)
		if seq+1 < 120 {
			rel := -1
			if len(pendA) >= depth {
				rel = seq - depth + 1
			}
			nf, nh := st.window(seq+1, 2, 6)
			d.speculate(spec, seq+1, st.at(seq+1), nf, nh, rel)
		}
		if seq%10 == 5 {
			// A degrade/heal cycle between speculation and Plan: both
			// managers take it, only spec has a parked sweep to lose.
			base.Degrade()
			base.Heal()
			spec.Degrade()
			spec.Heal()
		}
		if len(pendA) >= depth {
			old := seq - depth + 1
			if err := base.Release(old); err != nil {
				t.Fatal(err)
			}
			if err := spec.Release(old); err != nil {
				t.Fatal(err)
			}
			base.Recycle(pendA[0])
			spec.Recycle(pendB[0])
			pendA, pendB = pendA[1:], pendB[1:]
		}
	}
	os := spec.OverlapStats()
	if os.RolledBack == 0 || os.Adopted == 0 {
		t.Fatalf("fault schedule produced no mix of outcomes: %+v", os)
	}
	if base.Stats() != spec.Stats() {
		t.Fatalf("stats diverged across faults:\nbase %+v\nspec %+v", base.Stats(), spec.Stats())
	}
	sameTraffic(t, "faulted", base.CoordStats(), spec.CoordStats(), 1e-9)
}
