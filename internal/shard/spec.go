// Speculative coordination: resolving the next Plan's eviction
// candidates while the pipeline's Collect stage still runs.
//
// The engine's overlap window is the rest of the cycle after [Plan]
// returns: no stage before the next Plan touches the Manager except one
// possible Release (whose sequence number the engine knows in advance
// from the pipeline's occupancy). SpeculatePlan exploits that quiet
// window. Against a snapshot of the stamp clock it projects the
// Manager's state forward across that Release and the upcoming Plan's
// own touch/pin/hint passes, walks every shard's recency list with the
// projected evictability predicate — exactly the walk the Plan's first
// armed sweep would do — and parks the gathered candidate batches. The
// poll rounds this costs are staged on the coordination meter's side
// ledger (coord.go), priced later as the Plan's overlapped share.
//
// When the Plan arrives, its first armSweep becomes an adoption point:
// if every guard holds (same sequence, same stamp clock, exactly the
// projected Release happened, the miss budget matches the projection,
// no reshard/fault/prewarm invalidated the snapshot, and every parked
// candidate is still evictable under the live predicate), the parked
// batches are installed verbatim — the sweep starts with its polls
// already answered, and the staged rounds are adopted as hidden time.
// Otherwise the speculation rolls back: the ledger is discarded, the
// sweep re-polls critically, and the Plan is bit-identical (plans,
// victims, rounds, statistics) to one that never speculated. Rollback
// costs only the wasted background walk — no modeled seconds, no
// rounds, no statistics drift.
//
// The projection is exact, not heuristic: between SpeculatePlan and the
// Plan, holds only drop through the one projected Release, pins only
// expire through the pin epoch the projection already advanced, and
// recency only changes through touches the projection marked as held
// (a touched slot is hold-protected for the whole Plan). Any event
// outside that closed set — reshard, evacuation, degrade/heal,
// re-election, prewarm — invalidates the speculation eagerly. The
// adoption guards are therefore a cross-check, not a filter: in an
// undisturbed run every speculation adopts.
package shard

// OverlapStats counts speculative-coordination outcomes over a
// Manager's lifetime.
type OverlapStats struct {
	// Speculated counts SpeculatePlan calls that staged candidates.
	Speculated int64
	// Adopted counts speculations a Plan consumed verbatim.
	Adopted int64
	// RolledBack counts speculations discarded — by a failed adoption
	// guard, by an invalidating event (reshard, fault, prewarm), or by
	// a Plan that never needed the sweep.
	RolledBack int64
}

// Merge adds another manager's lifetime outcomes into s.
func (s *OverlapStats) Merge(o OverlapStats) {
	s.Speculated += o.Speculated
	s.Adopted += o.Adopted
	s.RolledBack += o.RolledBack
}

// OverlapStats returns the manager's lifetime speculation outcomes (the
// zero value when nothing ever speculated).
func (m *Manager) OverlapStats() OverlapStats { return m.overlap }

// Projection overlay bits (specFlags, one per slot, sparse via
// specDirty).
const (
	specReleased uint8 = 1 << iota // holds will drop by one (projected Release)
	specHeld                       // the next Plan's batch hits it (holds will rise)
	specPinned                     // the next Plan's window pass will pin it
	specHinted                     // the next Plan's hint pass will stamp it
)

// specState parks one speculation between SpeculatePlan and the Plan
// that consumes it.
type specState struct {
	valid bool
	// Guards: the Plan must present the same sequence and batch size,
	// the stamp clock must not have moved, exactly the projected
	// Release (and no other) must have happened, the hint-relaxation
	// mode must match, and the live miss budget must equal the
	// projection.
	seq         int
	nuniq       int
	stampClock  uint64
	released    int64
	relSeq      int
	hintRelaxed bool
	projMisses  int
	pollK       int
	// Parked per-shard results of the projected first sweep: the
	// candidate batches, each shard's resume anchor (the last gathered
	// candidate — the live list's next pointer at adoption time is
	// exactly where the real walk would have stopped), whether the walk
	// exhausted the list, and the candDone flag the real poll would
	// have left.
	candQ    [][]int32
	lastCand []int32
	candDone []bool
}

// invalidateSpec discards any in-flight speculation (and its staged
// meter ledger). Every state mutation outside the projected closed set
// calls it: reshard, evacuation, degrade/heal, aggregator re-election,
// prewarm.
func (m *Manager) invalidateSpec() {
	if !m.spec.valid {
		return
	}
	m.spec.valid = false
	m.overlap.RolledBack++
	if m.coord != nil {
		m.coord.discardStaging()
	}
}

// SpeculatePlan projects the Manager's state across releaseSeq's
// Release and the upcoming Plan (seq, uniq, future, hints) — which must
// be the exact arguments the next PlanUniqueWithHints will receive —
// and parks the first victim sweep's candidate batches, staging their
// poll rounds as the Plan's overlapped coordination share. releaseSeq
// is the batch whose holds the engine will drop before the Plan (-1
// when none will be).
//
// The call is a no-op (nothing staged, nothing counted) when the
// manager cannot profit: the S=1 delegate, co-located placements
// (nothing to meter), degraded partition mode, or a Plan whose misses
// fit the free budget (no sweep, no polls to hide).
//
// The caller must guarantee exclusive access to the Manager for the
// duration of the call, exactly as for Plan — the engine runs it on a
// background goroutine joined before anything else touches the manager.
func (m *Manager) SpeculatePlan(seq int, uniq []int64, future, hints [][]int64, releaseSeq int) {
	// Stale speculation from a Plan that never consumed it cannot
	// accumulate: restage from scratch.
	m.invalidateSpec()
	if m.single != nil || m.coord == nil || m.degraded {
		return
	}
	sp := &m.spec

	// Projected Release: mark the slots whose last hold drops. The
	// engine's release is FIFO per shard, so the front hold set of
	// every shard must carry releaseSeq; anything else means the
	// projection cannot know the release's effect and the speculation
	// is abandoned before staging.
	m.specEnsure()
	dirty := m.specDirty[:0]
	mark := func(slot int32, bit uint8) []int32 {
		if m.specFlags[slot] == 0 {
			dirty = append(dirty, slot)
		}
		m.specFlags[slot] |= bit
		return dirty
	}
	defer func() {
		for _, s := range dirty {
			m.specFlags[s] = 0
		}
		m.specDirty = dirty[:0]
	}()
	if releaseSeq >= 0 {
		for j := range m.shards {
			sh := &m.shards[j]
			if sh.inFlight.Len() == 0 || sh.inFlight.Front().Seq != releaseSeq {
				return
			}
			for _, slot := range sh.inFlight.Front().Slots {
				if m.meta[slot].holds == 1 {
					dirty = mark(slot, specReleased)
				}
			}
		}
	}

	// Projected Plan passes: batch hits hold their slots, window hits
	// pin, hint hits stamp. Misses are counted on the way (residency
	// cannot change before the Plan — the guards prove it didn't).
	projMisses := 0
	for _, id := range uniq {
		if slot, ok := m.shards[m.shardFor(id)].hitMap.Get(id); ok {
			dirty = mark(slot, specHeld)
		} else {
			projMisses++
		}
	}
	if projMisses <= m.freePrimaryTotal {
		// The free budget covers the misses: the Plan will not sweep,
		// so there are no polls to hide.
		return
	}
	// futStart replicates the Plan's pin-window trim (the prefix
	// already pinned by earlier Plans' deeper look-ahead).
	futStart := 0
	if m.pinValid > 1 && m.havePinned {
		if futStart = m.lastPinnedSeq - seq; futStart < 0 {
			futStart = 0
		} else if futStart > len(future) {
			futStart = len(future)
		}
	}
	for _, fids := range future[futStart:] {
		for _, id := range fids {
			if slot, ok := m.shards[m.shardFor(id)].hitMap.Get(id); ok {
				dirty = mark(slot, specPinned)
			}
		}
	}
	hintRelaxed := len(hints) == 0
	if !hintRelaxed {
		for _, hids := range hints {
			for _, id := range hids {
				if slot, ok := m.shards[m.shardFor(id)].hitMap.Get(id); ok {
					dirty = mark(slot, specHinted)
				}
			}
		}
	}

	sp.seq = seq
	sp.nuniq = len(uniq)
	sp.stampClock = m.stampClock
	sp.released = m.stats.Released
	sp.relSeq = releaseSeq
	sp.hintRelaxed = hintRelaxed
	sp.projMisses = projMisses
	sp.pollK = 1
	if m.mode != CoordExact && projMisses > 1 {
		sp.pollK = projMisses
	}

	// The projected first sweep: walk every shard's recency list under
	// the projected predicate, in the k-way merge's poll order, staging
	// the poll rounds on the side ledger. This is the identical walk —
	// candidates, order, counts, metering — the Plan's first armSweep
	// would run.
	if sp.candQ == nil {
		sp.candQ = make([][]int32, 0, m.nshards)
	}
	sp.candQ = sp.candQ[:0]
	sp.lastCand = sp.lastCand[:0]
	sp.candDone = sp.candDone[:0]
	m.coord.beginStaging()
	for j := range m.shards {
		var q []int32
		if n := len(sp.candQ); n < cap(sp.candQ) {
			q = sp.candQ[:n+1][n][:0]
		}
		cur := m.shards[j].lruHead
		for cur != nilSlot && len(q) < sp.pollK {
			nxt := m.next[cur]
			if m.specEvictable(cur) {
				q = append(q, cur)
			}
			cur = nxt
		}
		m.coord.meterPoll(j, len(q))
		last, done := nilSlot, false
		if n := len(q); n > 0 {
			last = q[n-1]
		}
		if len(q) == 0 {
			done = true
		} else if cur == nilSlot && m.mode != CoordExact {
			done = true
		}
		exhausted := cur == nilSlot
		if exhausted {
			last = nilSlot
		}
		sp.candQ = append(sp.candQ[:len(sp.candQ)], q)
		sp.lastCand = append(sp.lastCand, last)
		sp.candDone = append(sp.candDone, done)
	}
	m.coord.endStaging()
	sp.valid = true
	m.overlap.Speculated++
}

// specEnsure sizes the projection overlay.
func (m *Manager) specEnsure() {
	if len(m.specFlags) < m.TotalSlots() {
		m.specFlags = make([]uint8, m.TotalSlots())
	}
}

// specEvictable is isEvictable under the projection overlay: holds
// adjusted by the projected Release and the next Plan's touches, pins
// and hints advanced to the next Plan's epoch.
func (m *Manager) specEvictable(slot int32) bool {
	sm := &m.meta[slot]
	f := m.specFlags[slot]
	if f&specHeld != 0 {
		return false
	}
	h := sm.holds
	if f&specReleased != 0 {
		h--
	}
	if h != 0 || sm.key < 0 {
		return false
	}
	// The Plan will run at pinEpoch+1; a projected window pin lands at
	// exactly that epoch, so it always protects.
	if f&specPinned != 0 {
		return false
	}
	if sm.pinStamp > m.pinEpoch+1-m.pinValid {
		return false
	}
	return m.spec.hintRelaxed || f&specHinted == 0
}

// adoptSpec is the Plan's adoption point, called in place of the first
// armSweep. It validates the speculation against the live state and
// either installs the parked candidate batches (returning true — the
// sweep starts answered, the staged rounds become the Plan's overlapped
// share) or rolls the speculation back (returning false — the caller
// arms a critical sweep, bit-identical to a run that never speculated).
func (m *Manager) adoptSpec(seq, nuniq, misses int) bool {
	sp := &m.spec
	if !sp.valid {
		return false
	}
	expectReleased := sp.released
	if sp.relSeq >= 0 {
		expectReleased++
	}
	ok := sp.seq == seq &&
		sp.nuniq == nuniq &&
		sp.stampClock == m.specEntryClock &&
		m.stats.Released == expectReleased &&
		sp.hintRelaxed == m.hintRelaxed &&
		sp.projMisses == misses &&
		sp.pollK == m.pollK &&
		!m.degraded && m.coord != nil
	if ok {
		// Cross-check every parked candidate against the live
		// predicate (cheap: O(candidates), not a list walk). The
		// guards above make a mismatch impossible in an undisturbed
		// run; a failure here forces a correct critical re-poll.
		for j := range sp.candQ {
			for _, slot := range sp.candQ[j] {
				if !m.isEvictable(slot) {
					ok = false
					break
				}
			}
			if !ok {
				break
			}
		}
	}
	if !ok {
		m.invalidateSpec()
		return false
	}
	// Install: parked batches become each shard's answered poll; the
	// resume anchor's live next pointer is exactly where the real walk
	// would have stopped (intervening unlinks of touched slots repaired
	// the chain past them).
	for j := range m.shards {
		sh := &m.shards[j]
		sh.candQ = append(sh.candQ[:0], sp.candQ[j]...)
		sh.candHead = 0
		sh.candDone = sp.candDone[j]
		if sp.lastCand[j] == nilSlot {
			sh.sweepCur = nilSlot
		} else {
			sh.sweepCur = m.next[sp.lastCand[j]]
		}
	}
	m.coord.adoptStaging()
	sp.valid = false
	m.overlap.Adopted++
	return true
}

// endSpecPlan retires a speculation the finishing Plan never consumed
// (its sweep never armed, or it was staged for an earlier sequence).
// Runs before finishPlan so the stale ledger cannot be priced.
func (m *Manager) endSpecPlan(seq int) {
	if m.spec.valid && m.spec.seq <= seq {
		m.invalidateSpec()
	}
}

// LastPlanCoordCritical returns the modeled coordination latency the
// most recent Plan actually waited for: LastPlanCoord minus the share
// speculation hid under the previous Collect. Equal to LastPlanCoord
// when nothing was adopted (or overlap is off), so engines can charge
// it to stage time unconditionally.
func (m *Manager) LastPlanCoordCritical() float64 { return m.lastCoordCrit }

// LastPlanCoordWall returns the message plane's measured wall clock for
// the most recent Plan's full coordination script (critical + hidden) —
// the measured twin of LastPlanCoord. Zero for co-located placements
// and the S=1 delegate, like LastPlanCoord.
func (m *Manager) LastPlanCoordWall() float64 { return m.lastCoordWall }

// CoordWallStats returns the lifetime measured wall split: the critical
// share Plans waited for and the share hidden under Collect.
func (m *Manager) CoordWallStats() (critical, hidden float64) {
	s := m.CoordStats()
	return s.WallSeconds, s.WallHiddenSeconds
}
