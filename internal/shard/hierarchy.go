// Coordination protocols: how the cross-shard eviction-budget
// coordinator talks once shards live on different topology nodes.
//
// PR 3's costed placement model showed the exact per-eviction protocol
// is unaffordable over PCIe/network tiers: every eviction pays a
// cross-node candidate-poll round trip, so coordination rounds grow as
// O(evictions x shards) per Plan — the communication wall Acun et al.
// ("Understanding Training Efficiency of DLRM at Scale") observe once
// embedding-access communication dominates scale-out DLRM training.
// This file applies the source paper's look-forward insight to the
// coordinator itself: a Plan knows its whole miss budget up front, so
// coordination for the entire batch can be planned in advance instead
// of reacting one eviction at a time.
//
// Four protocols, selected by [CoordMode]:
//
//   - CoordExact: the PR 3 protocol. One poll round per fresh victim
//     candidate, one confirm round per victim, one transfer round per
//     cross-shard slot move. Reference semantics and reference meter.
//   - CoordBatched: one poll round per shard per sweep gathers the
//     shard's next k evictable candidates (k = the Plan's miss budget,
//     so one batch always covers the sweep); victim confirmations and
//     slot transfers are aggregated into one round per shard (or shard
//     pair) at Plan end. Candidate selection is unchanged — parked
//     candidates are consumed lazily from the batch and re-polled only
//     after a sweep re-arm — so the eviction sequence is bit-identical
//     to exact.
//   - CoordHier: batched polling plus a per-host coordinator tier.
//     Shards talk only to their host's aggregator (the node of the
//     host's lowest shard) at intra-host cost; hosts exchange only
//     host-level candidate batches, confirmations, and stamp counts
//     with the global coordinator, cutting cross-host rounds from
//     O(evictions x shards) to O(rounds x hosts). Also exact.
//   - CoordApprox: the hierarchical protocol minus touch-stamp sync
//     entirely. Touch stamps are epoch-quantized (Config.CoordQuantum
//     clock ticks per epoch): shards order victims by quantized epoch,
//     which each shard derives locally from the batch stream, so no
//     per-Plan stamp round trips exist at any tier. Stamps within one
//     epoch tie and resolve toward the lower shard index, so the
//     eviction sequence may diverge from exact LRU — the divergence is
//     measured, not assumed: a shadow exact planner runs alongside and
//     [Divergence] reports the eviction-sequence edit distance and the
//     hit-rate delta. With quantum 1 the quantized order equals the
//     exact order and every divergence metric is zero.
//
// The protocol changes only message accounting (and, for approx, the
// merge key); batched and hierarchical plans, victims, and statistics
// are identical to exact at every shard count — the equivalence tests
// in hierarchy_test.go prove it plan by plan.

package shard

import "fmt"

// CoordMode selects the cross-shard coordination protocol.
type CoordMode string

const (
	// CoordExact is the reference per-eviction protocol: one candidate
	// poll round per fresh candidate, one confirm round per victim.
	CoordExact CoordMode = "exact"
	// CoordBatched gathers each shard's k next-evictable candidates in
	// one round per sweep and batches confirms/transfers per Plan;
	// eviction sequence identical to exact.
	CoordBatched CoordMode = "batched"
	// CoordHier adds a per-host coordinator tier on top of batched
	// polling: hosts exchange only host-level winner batches; eviction
	// sequence identical to exact.
	CoordHier CoordMode = "hier"
	// CoordApprox is CoordHier with epoch-quantized touch stamps and no
	// stamp-sync traffic at all; eviction order may diverge from exact
	// LRU and the divergence is measured (see Divergence).
	CoordApprox CoordMode = "approx"
)

// CoordModes lists every protocol in escalation order (each mode sends
// strictly less cross-tier traffic than the one before it).
var CoordModes = []CoordMode{CoordExact, CoordBatched, CoordHier, CoordApprox}

// CoordModeNames lists the parseable protocol names for usage errors.
const CoordModeNames = "exact, batched, hier, approx"

// DefaultApproxQuantum is the approx-mode stamp quantum (global clock
// ticks per recency epoch) when Config.CoordQuantum is unset: coarse
// enough to measure real divergence, fine enough (well under typical
// scratchpad populations) to keep it bounded.
const DefaultApproxQuantum = 64

// ParseCoordMode resolves a coordination protocol name ("" selects
// exact).
func ParseCoordMode(s string) (CoordMode, error) {
	switch CoordMode(s) {
	case "", CoordExact:
		return CoordExact, nil
	case CoordBatched:
		return CoordBatched, nil
	case CoordHier:
		return CoordHier, nil
	case CoordApprox:
		return CoordApprox, nil
	}
	return "", fmt.Errorf("shard: unknown coordination mode %q (want %s)", s, CoordModeNames)
}

// Divergence quantifies how far approx-mode eviction behaviour drifted
// from the exact global LRU, measured against a shadow exact planner
// that consumes the identical Plan stream. The zero value means "no
// divergence" — guaranteed when the quantum is 1, reported otherwise.
type Divergence struct {
	// Plans counts compared Plans.
	Plans int64
	// EditDistance sums the per-Plan Levenshtein distance between the
	// approx and exact eviction-victim ID sequences.
	EditDistance int64
	// ApproxEvictions/ExactEvictions total both planners' evictions
	// (the edit distance's normalizer).
	ApproxEvictions int64
	ExactEvictions  int64
	// ApproxHits/ApproxQueries and ExactHits/ExactQueries are both
	// planners' occurrence-level counters (the hit-rate delta's inputs).
	ApproxHits, ApproxQueries int64
	ExactHits, ExactQueries   int64
}

// EditRate normalizes the eviction-sequence edit distance by the larger
// eviction total: 0 means identical sequences, 1 means entirely
// rewritten. Levenshtein distance is at most max(len(a), len(b)), so the
// rate is bounded in [0, 1].
func (d Divergence) EditRate() float64 {
	n := d.ExactEvictions
	if d.ApproxEvictions > n {
		n = d.ApproxEvictions
	}
	if n == 0 {
		return 0
	}
	return float64(d.EditDistance) / float64(n)
}

// HitRateDelta returns approx hit rate minus exact hit rate (negative
// when quantization costs hits).
func (d Divergence) HitRateDelta() float64 {
	var a, e float64
	if d.ApproxQueries > 0 {
		a = float64(d.ApproxHits) / float64(d.ApproxQueries)
	}
	if d.ExactQueries > 0 {
		e = float64(d.ExactHits) / float64(d.ExactQueries)
	}
	return a - e
}

// Merge folds another table's divergence into d (counters add; the
// derived rates recompute from the merged counters).
func (d *Divergence) Merge(o Divergence) {
	d.Plans += o.Plans
	d.EditDistance += o.EditDistance
	d.ApproxEvictions += o.ApproxEvictions
	d.ExactEvictions += o.ExactEvictions
	d.ApproxHits += o.ApproxHits
	d.ApproxQueries += o.ApproxQueries
	d.ExactHits += o.ExactHits
	d.ExactQueries += o.ExactQueries
}

// editDistance returns the Levenshtein distance between two ID
// sequences (insertions, deletions, substitutions all cost 1) plus the
// possibly-regrown scratch buffer, reused across calls to keep the
// per-Plan comparison allocation-free at steady state.
func editDistance(a, b []int64, scratch []int32) (int, []int32) {
	if len(a) == 0 {
		return len(b), scratch
	}
	if len(b) == 0 {
		return len(a), scratch
	}
	w := len(b) + 1
	if cap(scratch) < 2*w {
		scratch = make([]int32, 2*w)
	}
	prev, cur := scratch[:w], scratch[w:2*w]
	for j := 0; j <= len(b); j++ {
		prev[j] = int32(j)
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = int32(i)
		for j := 1; j <= len(b); j++ {
			cost := int32(1)
			if a[i-1] == b[j-1] {
				cost = 0
			}
			best := prev[j-1] + cost        // substitute (or match)
			if d := prev[j] + 1; d < best { // delete
				best = d
			}
			if d := cur[j-1] + 1; d < best { // insert
				best = d
			}
			cur[j] = best
		}
		prev, cur = cur, prev
	}
	return int(prev[len(b)]), scratch
}
