package shard

import (
	"repro/internal/hw"
	"repro/internal/msgplane"
)

// The cross-shard eviction-budget coordinator is free only while every
// shard lives in one socket's shared memory. Under a distributed
// placement (hw.Placement spanning several topology nodes) its three
// communication patterns become real messages on real links:
//
//   - touch-stamp sync: each Plan, the coordinator broadcasts the batch's
//     stamp base and collects every remote shard's touch count, keeping
//     the global recency timeline consistent (one round trip per remote
//     shard per Plan; aggregated per host in hier mode; eliminated
//     entirely in approx mode, whose quantized epochs are derived
//     locally from the batch stream).
//   - victim merge: the k-way LRU merge polls a shard for its next
//     evictable candidates (one candidate per round in exact mode, the
//     Plan's whole miss budget per round in batched/hier/approx),
//     confirms chosen victims to their owners (per victim in exact
//     mode, one aggregated round per shard — routed through the host
//     tier in hier/approx — at Plan end otherwise), and transfers slot
//     ownership when the victim's shard is not the missing ID's shard
//     (per event in exact mode, one aggregated round per shard pair at
//     Plan end otherwise).
//   - free-slot borrowing: taking a never-used slot from another shard's
//     stripe is a request/grant round trip between the two shards in
//     every mode (the starved shard needs the grant before it can
//     continue).
//
// The meter counts those messages and their payload bytes per link pair
// within one Plan, then prices the Plan's coordination latency as the
// sum over links of rounds x latency + bytes / bandwidth (the
// coordinator pass is serial, so link times add). Message sizes are
// control-plane metadata (slot + stamp + ID sized), not embedding
// payloads — row data still moves through the pipeline's Exchange stage.
// Co-located shards (same node, or any TierLocal link) contribute
// nothing, so a single-node placement reproduces the shared-memory
// coordinator bit-for-bit at zero cost.
//
// Since PR 8 the meter does two more things (DESIGN.md §12):
//
//   - Every recorded round is also appended to a message script and
//     replayed through internal/msgplane's goroutine hosts at Plan end,
//     yielding a *measured* wall-clock twin (CoordStats.WallSeconds /
//     WallHiddenSeconds) of the modeled Seconds. The script's phase
//     boundaries mark the protocol's real barriers: stamp sync before
//     the sweep, the sweep before the Plan-end flush.
//   - Speculative coordination (spec.go) stages its rounds on a side
//     ledger (staging == true): the same addRound paths write into the
//     spec arrays/script instead of the Plan's. On adoption the staged
//     traffic is priced separately as OverlapSeconds (hidden under the
//     previous Collect) and its counters merge into the lifetime stats;
//     on rollback the ledger is discarded wholesale, leaving the
//     lifetime stats bit-identical to a run that never speculated.
const (
	// stampSyncBytes is one touch-stamp round trip: stamp base out,
	// touch count back.
	stampSyncBytes = 16
	// victimPollBytes is one exact-mode candidate poll: request out,
	// (slot, stamp) back.
	victimPollBytes = 24
	// victimConfirmBytes confirms a chosen victim to its owning shard
	// (exact mode).
	victimConfirmBytes = 16
	// slotMoveBytes transfers one slot's ownership between shards after
	// a cross-shard eviction.
	slotMoveBytes = 16
	// borrowBytes is one free-slot borrow: request out, slot grant back.
	borrowBytes = 16

	// Batched-protocol sizing (CoordBatched/CoordHier/CoordApprox): a
	// batched message is one header plus per-entry payload — candidate
	// entries on polls (slot + stamp), victim slots on aggregated
	// confirms, per-shard touch counts on hier stamp syncs.
	batchHeaderBytes = 8
	candEntryBytes   = 12
	confirmSlotBytes = 8
	stampCountBytes  = 8
)

// pollPayload is the wire size of one batched candidate poll carrying
// got candidates (request header + reply entries).
func pollPayload(got int) float64 {
	return batchHeaderBytes + candEntryBytes*float64(got)
}

// byteBucket / roundBucket name the CoordStats field a message tallies
// into; addRound resolves them against the live or staging stats, so
// the speculative path reuses the exact recording code.
type byteBucket uint8

const (
	bktVictim byteBucket = iota
	bktStamp
	bktBorrow
	bktReelect
)

type roundBucket uint8

const (
	rndPoll roundBucket = iota
	rndConfirm
	rndSlotMove
	rndStampSync
	rndBorrow
	rndReelect
)

// CoordStats aggregates the coordinator's cross-node communication over
// a Manager's lifetime. All byte counts are control-message payloads
// that crossed a non-local link; co-located coordination is free and
// uncounted.
type CoordStats struct {
	// VictimMergeBytes is the victim-merge traffic: candidate polls,
	// victim confirmations, and cross-shard slot transfers.
	VictimMergeBytes float64
	// TouchStampBytes is the per-Plan stamp-clock synchronization.
	TouchStampBytes float64
	// BorrowBytes is the free-slot borrowing traffic.
	BorrowBytes float64
	// ReelectBytes is the aggregator re-election traffic after a fault
	// (see failure.go): votes plus the result announcement.
	ReelectBytes float64

	// Per-pattern message-round counts: every cross-node round trip is
	// tallied in exactly one of these, so mode comparisons can report
	// rounds saved per pattern (not just bytes). Messages is their sum.
	PollRounds      int64
	ConfirmRounds   int64
	SlotMoveRounds  int64
	StampSyncRounds int64
	BorrowRounds    int64
	ReelectRounds   int64

	// Messages counts all cross-node message round trips.
	Messages int64
	// Seconds is the total modeled link time charged to Plans —
	// critical and overlapped shares together, so its semantics do not
	// change when overlapped coordination is enabled.
	Seconds float64
	// OverlapSeconds is the share of Seconds that speculation hid under
	// the previous Collect (zero when overlap is off or nothing was
	// adopted). The critical share a Plan actually waited for is
	// Seconds - OverlapSeconds.
	OverlapSeconds float64
	// WallSeconds / WallHiddenSeconds are the measured twins: the
	// message plane's virtual makespan for the critical and overlapped
	// scripts respectively (msgplane; DESIGN.md §12). The modeled-vs-
	// measured skew benchgate gates is
	// |Seconds - (WallSeconds+WallHiddenSeconds)| / Seconds.
	WallSeconds       float64
	WallHiddenSeconds float64
}

// Bytes returns the total coordination payload.
func (s CoordStats) Bytes() float64 {
	return s.VictimMergeBytes + s.TouchStampBytes + s.BorrowBytes + s.ReelectBytes
}

// Merge adds another manager's lifetime traffic into s (the engines sum
// per-table coordinators into one report).
func (s *CoordStats) Merge(o CoordStats) {
	s.VictimMergeBytes += o.VictimMergeBytes
	s.TouchStampBytes += o.TouchStampBytes
	s.BorrowBytes += o.BorrowBytes
	s.ReelectBytes += o.ReelectBytes
	s.PollRounds += o.PollRounds
	s.ConfirmRounds += o.ConfirmRounds
	s.SlotMoveRounds += o.SlotMoveRounds
	s.StampSyncRounds += o.StampSyncRounds
	s.BorrowRounds += o.BorrowRounds
	s.ReelectRounds += o.ReelectRounds
	s.Messages += o.Messages
	s.Seconds += o.Seconds
	s.OverlapSeconds += o.OverlapSeconds
	s.WallSeconds += o.WallSeconds
	s.WallHiddenSeconds += o.WallHiddenSeconds
}

// bytesBucket returns the payload accumulator a byteBucket names.
func (s *CoordStats) bytesBucket(b byteBucket) *float64 {
	switch b {
	case bktVictim:
		return &s.VictimMergeBytes
	case bktStamp:
		return &s.TouchStampBytes
	case bktBorrow:
		return &s.BorrowBytes
	default:
		return &s.ReelectBytes
	}
}

// roundsBucket returns the round counter a roundBucket names.
func (s *CoordStats) roundsBucket(r roundBucket) *int64 {
	switch r {
	case rndPoll:
		return &s.PollRounds
	case rndConfirm:
		return &s.ConfirmRounds
	case rndSlotMove:
		return &s.SlotMoveRounds
	case rndStampSync:
		return &s.StampSyncRounds
	case rndBorrow:
		return &s.BorrowRounds
	default:
		return &s.ReelectRounds
	}
}

// mergeCounters folds another ledger's message counts and payload bytes
// into s without touching the priced-seconds fields (the caller prices
// the adopted staging itself).
func (s *CoordStats) mergeCounters(o CoordStats) {
	s.VictimMergeBytes += o.VictimMergeBytes
	s.TouchStampBytes += o.TouchStampBytes
	s.BorrowBytes += o.BorrowBytes
	s.ReelectBytes += o.ReelectBytes
	s.PollRounds += o.PollRounds
	s.ConfirmRounds += o.ConfirmRounds
	s.SlotMoveRounds += o.SlotMoveRounds
	s.StampSyncRounds += o.StampSyncRounds
	s.BorrowRounds += o.BorrowRounds
	s.ReelectRounds += o.ReelectRounds
	s.Messages += o.Messages
}

// coordMeter accumulates one Plan's coordination traffic per link pair
// and prices it against the placement's topology, speaking the protocol
// selected by its CoordMode. nil meter (co-located placement) costs
// nothing and is never consulted.
type coordMeter struct {
	place  hw.Placement
	mode   CoordMode
	nodeOf []int32 // shard -> topology node
	nnodes int

	// coordNode anchors the serial coordinator: it runs on shard 0's
	// node, so exact/batched polls and stamp syncs cross the links from
	// that node.
	coordNode int32

	// The hier/approx host tier: hostIdx maps each shard to a dense
	// host index, aggNode maps a dense host to its aggregator node (the
	// node of the host's lowest shard — the hop shards on that host pay
	// intra-host prices to reach), hostShards counts shards per host.
	hostIdx    []int32
	aggNode    []int32
	hostShards []int32

	// Per-sweep / per-Plan batching state: hostPolled marks hosts whose
	// winner batch already cost a cross-host round this sweep (later
	// shard refills on the host merge into it, paying bytes only);
	// planVictims counts victims consumed per shard this Plan (flushed
	// into aggregated confirm rounds at Plan end); hostVictims is the
	// per-host scratch of that flush; moveCount/moveDirty accumulate
	// cross-shard slot transfers per ordered shard pair this Plan.
	hostPolled  []bool
	planVictims []int32
	hostVictims []int32
	moveCount   []int64
	moveDirty   []int32

	// bytes/rounds are the current Plan's per-link-pair traffic,
	// indexed by hw.Topology.PairIndex (the link matrix's own layout);
	// touched lists the dirty node pairs so the per-Plan reset and
	// pricing walk is proportional to traffic, not topology size.
	bytes   []float64
	rounds  []int64
	touched []linkUse

	// plane replays the recorded message script on goroutine hosts at
	// Plan end; ops is the Plan's critical script, phase its current
	// barrier index (see nextPhase).
	plane *msgplane.Plane
	ops   []msgplane.Op
	phase int32

	// Speculation side ledger (spec.go): while staging is set, addRound
	// and addPayload record into the spec arrays, script, and stats
	// instead of the Plan's. specAdopted marks the staged traffic
	// consumed by the current Plan: finishPlan then prices it as
	// OverlapSeconds and merges its counters; otherwise the ledger is
	// simply cleared.
	staging     bool
	specAdopted bool
	specBytes   []float64
	specRounds  []int64
	specTouched []linkUse
	specOps     []msgplane.Op
	specStats   CoordStats

	// Most recent finishPlan split, read back by the Manager:
	// lastCrit is the modeled critical share, lastWallCrit/lastWallFull
	// the measured critical share and full makespan.
	lastCrit     float64
	lastWallCrit float64
	lastWallFull float64

	stats CoordStats
}

// linkUse records one dirty link of the current Plan: the flattened
// pair index plus the node pair itself (so pricing needs no reverse
// lookup).
type linkUse struct {
	idx  int32
	a, b int32
}

// newCoordMeter builds a meter for a distributed placement; returns nil
// when the placement cannot generate cross-node traffic.
func newCoordMeter(p hw.Placement, shards int, mode CoordMode) *coordMeter {
	if !p.Distributed() || shards < 2 {
		return nil
	}
	m := &coordMeter{
		place:       p,
		mode:        mode,
		nodeOf:      make([]int32, shards),
		nnodes:      p.Topo.NumNodes(),
		bytes:       make([]float64, p.Topo.NumLinkPairs()),
		rounds:      make([]int64, p.Topo.NumLinkPairs()),
		hostIdx:     make([]int32, shards),
		planVictims: make([]int32, shards),
		moveCount:   make([]int64, shards*shards),
		plane:       msgplane.New(p.Topo),
	}
	for j := range m.nodeOf {
		m.nodeOf[j] = int32(p.Node[j])
	}
	m.coordNode = m.nodeOf[0]
	// Dense host remap in ascending shard order: the first shard seen
	// on a host makes its node the host's aggregator.
	hostOf := make(map[int]int32)
	for j := range m.nodeOf {
		h := p.Topo.Nodes[m.nodeOf[j]].Host
		idx, ok := hostOf[h]
		if !ok {
			idx = int32(len(m.aggNode))
			hostOf[h] = idx
			m.aggNode = append(m.aggNode, m.nodeOf[j])
			m.hostShards = append(m.hostShards, 0)
		}
		m.hostIdx[j] = idx
		m.hostShards[idx]++
	}
	m.hostPolled = make([]bool, len(m.aggNode))
	m.hostVictims = make([]int32, len(m.aggNode))
	return m
}

// side returns the active recording ledger: the Plan's own, or the
// speculation staging while it is open.
func (c *coordMeter) side() (st *CoordStats, bytes []float64, rounds []int64) {
	if c.staging {
		return &c.specStats, c.specBytes, c.specRounds
	}
	return &c.stats, c.bytes, c.rounds
}

// addRound records one message round of the given payload between two
// nodes, tallying the payload and round into the named buckets and
// appending the round to the active message script; same-node traffic
// is free.
func (c *coordMeter) addRound(a, b int32, payload float64, bb byteBucket, rb roundBucket) {
	if a == b {
		return
	}
	st, bytes, rounds := c.side()
	idx := c.dirty(a, b, bytes, rounds)
	bytes[idx] += payload
	rounds[idx]++
	st.Messages++
	*st.roundsBucket(rb)++
	*st.bytesBucket(bb) += payload
	c.record(msgplane.Op{Exec: a, Peer: b, Bytes: payload, Latency: true, Phase: c.opPhase()})
}

// addPayload merges extra payload onto the link between two nodes
// without a new round (the bytes ride an already-counted batched
// message); same-node traffic is free.
func (c *coordMeter) addPayload(a, b int32, payload float64, bb byteBucket) {
	if a == b {
		return
	}
	st, bytes, rounds := c.side()
	idx := c.dirty(a, b, bytes, rounds)
	bytes[idx] += payload
	*st.bytesBucket(bb) += payload
	c.record(msgplane.Op{Exec: a, Peer: b, Bytes: payload, Latency: false, Phase: c.opPhase()})
}

// record appends one op to the active message script.
func (c *coordMeter) record(op msgplane.Op) {
	if c.staging {
		c.specOps = append(c.specOps, op)
	} else {
		c.ops = append(c.ops, op)
	}
}

// opPhase returns the active script's barrier index: the staged
// speculative script is a single phase (its polls are independent), the
// Plan script advances through nextPhase.
func (c *coordMeter) opPhase() int32 {
	if c.staging {
		return 0
	}
	return c.phase
}

// nextPhase closes the Plan script's current barrier: subsequent ops
// may not start on the plane before every earlier op completed.
func (c *coordMeter) nextPhase() {
	if !c.staging {
		c.phase++
	}
}

// dirty returns the flattened pair index for (a, b), registering the
// pair in the active ledger's touched list on first use.
func (c *coordMeter) dirty(a, b int32, bytes []float64, rounds []int64) int32 {
	idx := int32(c.place.Topo.PairIndex(int(a), int(b)))
	if rounds[idx] == 0 && bytes[idx] == 0 {
		if c.staging {
			c.specTouched = append(c.specTouched, linkUse{idx: idx, a: a, b: b})
		} else {
			c.touched = append(c.touched, linkUse{idx: idx, a: a, b: b})
		}
	}
	return idx
}

// beginStaging opens the speculation side ledger: subsequent addRound /
// addPayload calls record into it. The per-sweep host-batch state is
// reset because the staged polls open the next Plan's sweep.
func (c *coordMeter) beginStaging() {
	if c.specBytes == nil {
		c.specBytes = make([]float64, c.place.Topo.NumLinkPairs())
		c.specRounds = make([]int64, c.place.Topo.NumLinkPairs())
	}
	c.staging = true
	c.beginSweep()
}

// endStaging closes the side ledger (the staged traffic stays parked
// until adoptStaging or discardStaging).
func (c *coordMeter) endStaging() { c.staging = false }

// adoptStaging marks the staged traffic consumed by the current Plan:
// finishPlan will price it as the Plan's overlapped share. The per-sweep
// hostPolled state staged by the speculative polls stays live, so later
// refills on an already-polled host keep merging into its batch.
func (c *coordMeter) adoptStaging() { c.specAdopted = true }

// discardStaging drops the staged traffic without pricing it (rollback:
// the re-polls are metered critically by the Plan, so lifetime stats
// match a run that never speculated).
func (c *coordMeter) discardStaging() {
	for _, u := range c.specTouched {
		c.specBytes[u.idx] = 0
		c.specRounds[u.idx] = 0
	}
	c.specTouched = c.specTouched[:0]
	c.specOps = c.specOps[:0]
	c.specStats = CoordStats{}
	c.specAdopted = false
	c.staging = false
}

// beginSweep resets the per-sweep host-batch state; the Manager calls it
// whenever the victim sweep (re-)arms.
func (c *coordMeter) beginSweep() {
	for i := range c.hostPolled {
		c.hostPolled[i] = false
	}
	c.nextPhase()
}

// meterPoll records one candidate-poll refill for shard j that returned
// got candidates.
func (c *coordMeter) meterPoll(j, got int) {
	switch c.mode {
	case CoordExact:
		c.addRound(c.coordNode, c.nodeOf[j], victimPollBytes, bktVictim, rndPoll)
	case CoordBatched:
		c.addRound(c.coordNode, c.nodeOf[j], pollPayload(got), bktVictim, rndPoll)
	default: // CoordHier, CoordApprox
		h := c.hostIdx[j]
		agg := c.aggNode[h]
		c.addRound(agg, c.nodeOf[j], pollPayload(got), bktVictim, rndPoll)
		if agg == c.coordNode {
			return
		}
		if !c.hostPolled[h] {
			// First refill from this host this sweep: the aggregator
			// forwards the host-level winner batch in one cross-host
			// round.
			c.hostPolled[h] = true
			c.addRound(c.coordNode, agg, pollPayload(got), bktVictim, rndPoll)
		} else {
			// Later refills merge into the host batch already in
			// flight: extra candidates cost bytes, not rounds.
			c.addPayload(c.coordNode, agg, candEntryBytes*float64(got), bktVictim)
		}
	}
}

// meterConfirm records that the merge consumed a victim owned by shard
// j: an immediate confirm round in exact mode, a Plan-end aggregated
// confirm otherwise.
func (c *coordMeter) meterConfirm(j int) {
	if c.mode == CoordExact {
		c.addRound(c.coordNode, c.nodeOf[j], victimConfirmBytes, bktVictim, rndConfirm)
		return
	}
	c.planVictims[j]++
}

// meterSlotMove records a victim slot changing owners from shard `from`
// to shard `to`: an immediate transfer round in exact mode, a Plan-end
// aggregated per-pair transfer otherwise.
func (c *coordMeter) meterSlotMove(from, to int) {
	if c.mode == CoordExact {
		c.addRound(c.nodeOf[from], c.nodeOf[to], slotMoveBytes, bktVictim, rndSlotMove)
		return
	}
	idx := int32(from*len(c.planVictims) + to)
	if c.moveCount[idx] == 0 {
		c.moveDirty = append(c.moveDirty, idx)
	}
	c.moveCount[idx]++
}

// meterBorrow records a free-slot borrow round between two shards
// (identical in every mode: the starved shard blocks on the grant).
func (c *coordMeter) meterBorrow(from, to int) {
	c.addRound(c.nodeOf[from], c.nodeOf[to], borrowBytes, bktBorrow, rndBorrow)
}

// meterStampSync records one Plan's touch-stamp synchronization: per
// remote shard in exact/batched, aggregated through the host tier in
// hier, and nothing at all in approx (quantized epochs are derived
// locally from the batch stream every shard already receives).
func (c *coordMeter) meterStampSync() {
	switch c.mode {
	case CoordApprox:
		return
	case CoordExact, CoordBatched:
		c.nextPhase()
		for j := range c.nodeOf {
			c.addRound(c.coordNode, c.nodeOf[j], stampSyncBytes, bktStamp, rndStampSync)
		}
	default: // CoordHier
		c.nextPhase()
		for j := range c.nodeOf {
			c.addRound(c.aggNode[c.hostIdx[j]], c.nodeOf[j], stampSyncBytes, bktStamp, rndStampSync)
		}
		// Host-level uploads depend on the shard-level collections: a
		// plane barrier separates the two tiers.
		c.nextPhase()
		for h := range c.aggNode {
			c.addRound(c.coordNode, c.aggNode[h],
				batchHeaderBytes+stampCountBytes*float64(c.hostShards[h]),
				bktStamp, rndStampSync)
		}
	}
}

// flushBatched emits the Plan-end aggregated rounds of the batched
// protocols: one confirm round per shard that supplied victims (routed
// coordinator -> host aggregator -> shard in hier/approx) and one slot
// transfer round per dirty ordered shard pair.
func (c *coordMeter) flushBatched() {
	c.nextPhase()
	if c.mode == CoordHier || c.mode == CoordApprox {
		for j, v := range c.planVictims {
			if v > 0 {
				c.hostVictims[c.hostIdx[j]] += v
			}
		}
		for h, v := range c.hostVictims {
			if v > 0 {
				c.addRound(c.coordNode, c.aggNode[h],
					batchHeaderBytes+confirmSlotBytes*float64(v),
					bktVictim, rndConfirm)
				c.hostVictims[h] = 0
			}
		}
		// Shard-level fan-out waits for the host-level batch: barrier.
		c.nextPhase()
		for j, v := range c.planVictims {
			if v > 0 {
				c.addRound(c.aggNode[c.hostIdx[j]], c.nodeOf[j],
					batchHeaderBytes+confirmSlotBytes*float64(v),
					bktVictim, rndConfirm)
				c.planVictims[j] = 0
			}
		}
	} else {
		for j, v := range c.planVictims {
			if v > 0 {
				c.addRound(c.coordNode, c.nodeOf[j],
					batchHeaderBytes+confirmSlotBytes*float64(v),
					bktVictim, rndConfirm)
				c.planVictims[j] = 0
			}
		}
	}
	n := len(c.planVictims)
	for _, idx := range c.moveDirty {
		from, to := int(idx)/n, int(idx)%n
		c.addRound(c.nodeOf[from], c.nodeOf[to],
			slotMoveBytes*float64(c.moveCount[idx]),
			bktVictim, rndSlotMove)
		c.moveCount[idx] = 0
	}
	c.moveDirty = c.moveDirty[:0]
}

// price sums the ledger's link times and zeroes its per-pair arrays;
// the caller truncates the touched list. The coordinator pass is
// serial, so the per-link times add.
func (c *coordMeter) price(touched []linkUse, bytes []float64, rounds []int64) float64 {
	var t float64
	for _, u := range touched {
		l := c.place.Topo.Link(int(u.a), int(u.b))
		// A down link prices at zero like a local one: no message
		// crosses a partition — the rounds stay counted (the protocol
		// sent them; they queue), and the stale state they failed to
		// deliver is what degraded-mode divergence measures.
		if l.Tier != hw.TierLocal && !l.Down {
			t += float64(rounds[u.idx])*l.Latency + bytes[u.idx]/l.Bandwidth
		}
		bytes[u.idx] = 0
		rounds[u.idx] = 0
	}
	return t
}

// finishPlan prices the Plan's accumulated traffic, replays its message
// script on the plane, folds everything into the lifetime stats, resets
// the per-Plan state, and returns the Plan's total coordination latency
// in seconds (critical + adopted overlapped share — the same quantity
// the pre-overlap meter returned, so reported CoordTime semantics are
// unchanged). The critical/overlapped split and the measured wall twins
// are parked in lastCrit / lastWallCrit / lastWallFull for the Manager.
func (c *coordMeter) finishPlan() float64 {
	if c.mode != CoordExact {
		c.flushBatched()
	}
	tCrit := c.price(c.touched, c.bytes, c.rounds)
	c.touched = c.touched[:0]
	var tOver float64
	var specScript []msgplane.Op
	if c.specAdopted {
		tOver = c.price(c.specTouched, c.specBytes, c.specRounds)
		c.specTouched = c.specTouched[:0]
		c.stats.mergeCounters(c.specStats)
		specScript = c.specOps
	}
	total, oend := c.plane.Execute(specScript, c.ops)
	c.lastCrit = tCrit
	c.lastWallCrit = total - oend
	c.lastWallFull = total
	c.stats.Seconds += tCrit + tOver
	c.stats.OverlapSeconds += tOver
	c.stats.WallSeconds += total - oend
	c.stats.WallHiddenSeconds += oend
	c.ops = c.ops[:0]
	c.phase = 0
	if c.specAdopted {
		c.discardStaging()
	}
	return tCrit + tOver
}
