package shard

import "repro/internal/hw"

// The cross-shard eviction-budget coordinator is free only while every
// shard lives in one socket's shared memory. Under a distributed
// placement (hw.Placement spanning several topology nodes) its three
// communication patterns become real messages on real links:
//
//   - touch-stamp sync: each Plan, the coordinator broadcasts the batch's
//     stamp base and collects every remote shard's touch count, keeping
//     the global recency timeline consistent (one round trip per remote
//     shard per Plan).
//   - victim merge: the k-way LRU merge polls a shard for its next
//     evictable candidate whenever its parked candidate is consumed or
//     invalidated (one round trip per fresh poll), confirms each chosen
//     victim to its owner, and transfers slot ownership when the victim's
//     shard is not the missing ID's shard.
//   - free-slot borrowing: taking a never-used slot from another shard's
//     stripe is a request/grant round trip between the two shards.
//
// The meter counts those messages and their payload bytes per link pair
// within one Plan, then prices the Plan's coordination latency as the
// sum over links of rounds x latency + bytes / bandwidth (the
// coordinator pass is serial, so link times add). Message sizes are
// control-plane metadata (slot + stamp + ID sized), not embedding
// payloads — row data still moves through the pipeline's Exchange stage.
// Co-located shards (same node, or any TierLocal link) contribute
// nothing, so a single-node placement reproduces the shared-memory
// coordinator bit-for-bit at zero cost.
const (
	// stampSyncBytes is one touch-stamp round trip: stamp base out,
	// touch count back.
	stampSyncBytes = 16
	// victimPollBytes is one candidate poll: request out, (slot, stamp)
	// back.
	victimPollBytes = 24
	// victimConfirmBytes confirms a chosen victim to its owning shard.
	victimConfirmBytes = 16
	// slotMoveBytes transfers a slot's ownership between shards after a
	// cross-shard eviction.
	slotMoveBytes = 16
	// borrowBytes is one free-slot borrow: request out, slot grant back.
	borrowBytes = 16
)

// CoordStats aggregates the coordinator's cross-node communication over
// a Manager's lifetime. All byte counts are control-message payloads
// that crossed a non-local link; co-located coordination is free and
// uncounted.
type CoordStats struct {
	// VictimMergeBytes is the k-way LRU merge's traffic: candidate
	// polls, victim confirmations, and cross-shard slot transfers.
	VictimMergeBytes float64
	// TouchStampBytes is the per-Plan stamp-clock synchronization.
	TouchStampBytes float64
	// BorrowBytes is the free-slot borrowing traffic.
	BorrowBytes float64
	// Messages counts cross-node message round trips.
	Messages int64
	// Seconds is the total modeled link time charged to Plans.
	Seconds float64
}

// Bytes returns the total coordination payload.
func (s CoordStats) Bytes() float64 {
	return s.VictimMergeBytes + s.TouchStampBytes + s.BorrowBytes
}

// coordMeter accumulates one Plan's coordination traffic per link pair
// and prices it against the placement's topology. nil meter (co-located
// placement) costs nothing and is never consulted.
type coordMeter struct {
	place  hw.Placement
	nodeOf []int32 // shard -> topology node
	nnodes int

	// coordShard anchors the serial coordinator: it runs on shard 0's
	// node, so polls and stamp syncs cross the links from that node.
	coordNode int32

	// bytes/rounds are the current Plan's per-link-pair traffic,
	// indexed by hw.Topology.PairIndex (the link matrix's own layout);
	// touched lists the dirty node pairs so the per-Plan reset and
	// pricing walk is proportional to traffic, not topology size.
	bytes   []float64
	rounds  []int64
	touched []linkUse

	stats CoordStats
}

// linkUse records one dirty link of the current Plan: the flattened
// pair index plus the node pair itself (so pricing needs no reverse
// lookup).
type linkUse struct {
	idx  int32
	a, b int32
}

// newCoordMeter builds a meter for a distributed placement; returns nil
// when the placement cannot generate cross-node traffic.
func newCoordMeter(p hw.Placement, shards int) *coordMeter {
	if !p.Distributed() || shards < 2 {
		return nil
	}
	m := &coordMeter{
		place:  p,
		nodeOf: make([]int32, shards),
		nnodes: p.Topo.NumNodes(),
		bytes:  make([]float64, p.Topo.NumLinkPairs()),
		rounds: make([]int64, p.Topo.NumLinkPairs()),
	}
	for j := range m.nodeOf {
		m.nodeOf[j] = int32(p.Node[j])
	}
	m.coordNode = m.nodeOf[0]
	return m
}

// addNodes records one message round of the given payload between two
// nodes; same-node traffic is free.
func (c *coordMeter) addNodes(a, b int32, payload float64, bucket *float64) {
	if a == b {
		return
	}
	idx := int32(c.place.Topo.PairIndex(int(a), int(b)))
	if c.rounds[idx] == 0 && c.bytes[idx] == 0 {
		c.touched = append(c.touched, linkUse{idx: idx, a: a, b: b})
	}
	c.bytes[idx] += payload
	c.rounds[idx]++
	c.stats.Messages++
	*bucket += payload
}

// addCoord records a message round between the coordinator and shard j.
func (c *coordMeter) addCoord(j int, payload float64, bucket *float64) {
	c.addNodes(c.coordNode, c.nodeOf[j], payload, bucket)
}

// addShards records a message round between two shards.
func (c *coordMeter) addShards(a, b int, payload float64, bucket *float64) {
	c.addNodes(c.nodeOf[a], c.nodeOf[b], payload, bucket)
}

// finishPlan prices the Plan's accumulated traffic, folds it into the
// lifetime stats, resets the per-Plan state, and returns the Plan's
// coordination latency in seconds. The coordinator pass is serial, so
// the per-link times sum.
func (c *coordMeter) finishPlan() float64 {
	var t float64
	for _, u := range c.touched {
		l := c.place.Topo.Link(int(u.a), int(u.b))
		if l.Tier != hw.TierLocal {
			t += float64(c.rounds[u.idx])*l.Latency + c.bytes[u.idx]/l.Bandwidth
		}
		c.bytes[u.idx] = 0
		c.rounds[u.idx] = 0
	}
	c.touched = c.touched[:0]
	c.stats.Seconds += t
	return t
}
