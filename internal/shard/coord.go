package shard

import "repro/internal/hw"

// The cross-shard eviction-budget coordinator is free only while every
// shard lives in one socket's shared memory. Under a distributed
// placement (hw.Placement spanning several topology nodes) its three
// communication patterns become real messages on real links:
//
//   - touch-stamp sync: each Plan, the coordinator broadcasts the batch's
//     stamp base and collects every remote shard's touch count, keeping
//     the global recency timeline consistent (one round trip per remote
//     shard per Plan; aggregated per host in hier mode; eliminated
//     entirely in approx mode, whose quantized epochs are derived
//     locally from the batch stream).
//   - victim merge: the k-way LRU merge polls a shard for its next
//     evictable candidates (one candidate per round in exact mode, the
//     Plan's whole miss budget per round in batched/hier/approx),
//     confirms chosen victims to their owners (per victim in exact
//     mode, one aggregated round per shard — routed through the host
//     tier in hier/approx — at Plan end otherwise), and transfers slot
//     ownership when the victim's shard is not the missing ID's shard
//     (per event in exact mode, one aggregated round per shard pair at
//     Plan end otherwise).
//   - free-slot borrowing: taking a never-used slot from another shard's
//     stripe is a request/grant round trip between the two shards in
//     every mode (the starved shard needs the grant before it can
//     continue).
//
// The meter counts those messages and their payload bytes per link pair
// within one Plan, then prices the Plan's coordination latency as the
// sum over links of rounds x latency + bytes / bandwidth (the
// coordinator pass is serial, so link times add). Message sizes are
// control-plane metadata (slot + stamp + ID sized), not embedding
// payloads — row data still moves through the pipeline's Exchange stage.
// Co-located shards (same node, or any TierLocal link) contribute
// nothing, so a single-node placement reproduces the shared-memory
// coordinator bit-for-bit at zero cost.
const (
	// stampSyncBytes is one touch-stamp round trip: stamp base out,
	// touch count back.
	stampSyncBytes = 16
	// victimPollBytes is one exact-mode candidate poll: request out,
	// (slot, stamp) back.
	victimPollBytes = 24
	// victimConfirmBytes confirms a chosen victim to its owning shard
	// (exact mode).
	victimConfirmBytes = 16
	// slotMoveBytes transfers one slot's ownership between shards after
	// a cross-shard eviction.
	slotMoveBytes = 16
	// borrowBytes is one free-slot borrow: request out, slot grant back.
	borrowBytes = 16

	// Batched-protocol sizing (CoordBatched/CoordHier/CoordApprox): a
	// batched message is one header plus per-entry payload — candidate
	// entries on polls (slot + stamp), victim slots on aggregated
	// confirms, per-shard touch counts on hier stamp syncs.
	batchHeaderBytes = 8
	candEntryBytes   = 12
	confirmSlotBytes = 8
	stampCountBytes  = 8
)

// pollPayload is the wire size of one batched candidate poll carrying
// got candidates (request header + reply entries).
func pollPayload(got int) float64 {
	return batchHeaderBytes + candEntryBytes*float64(got)
}

// CoordStats aggregates the coordinator's cross-node communication over
// a Manager's lifetime. All byte counts are control-message payloads
// that crossed a non-local link; co-located coordination is free and
// uncounted.
type CoordStats struct {
	// VictimMergeBytes is the victim-merge traffic: candidate polls,
	// victim confirmations, and cross-shard slot transfers.
	VictimMergeBytes float64
	// TouchStampBytes is the per-Plan stamp-clock synchronization.
	TouchStampBytes float64
	// BorrowBytes is the free-slot borrowing traffic.
	BorrowBytes float64
	// ReelectBytes is the aggregator re-election traffic after a fault
	// (see failure.go): votes plus the result announcement.
	ReelectBytes float64

	// Per-pattern message-round counts: every cross-node round trip is
	// tallied in exactly one of these, so mode comparisons can report
	// rounds saved per pattern (not just bytes). Messages is their sum.
	PollRounds      int64
	ConfirmRounds   int64
	SlotMoveRounds  int64
	StampSyncRounds int64
	BorrowRounds    int64
	ReelectRounds   int64

	// Messages counts all cross-node message round trips.
	Messages int64
	// Seconds is the total modeled link time charged to Plans.
	Seconds float64
}

// Bytes returns the total coordination payload.
func (s CoordStats) Bytes() float64 {
	return s.VictimMergeBytes + s.TouchStampBytes + s.BorrowBytes + s.ReelectBytes
}

// Merge adds another manager's lifetime traffic into s (the engines sum
// per-table coordinators into one report).
func (s *CoordStats) Merge(o CoordStats) {
	s.VictimMergeBytes += o.VictimMergeBytes
	s.TouchStampBytes += o.TouchStampBytes
	s.BorrowBytes += o.BorrowBytes
	s.ReelectBytes += o.ReelectBytes
	s.PollRounds += o.PollRounds
	s.ConfirmRounds += o.ConfirmRounds
	s.SlotMoveRounds += o.SlotMoveRounds
	s.StampSyncRounds += o.StampSyncRounds
	s.BorrowRounds += o.BorrowRounds
	s.ReelectRounds += o.ReelectRounds
	s.Messages += o.Messages
	s.Seconds += o.Seconds
}

// coordMeter accumulates one Plan's coordination traffic per link pair
// and prices it against the placement's topology, speaking the protocol
// selected by its CoordMode. nil meter (co-located placement) costs
// nothing and is never consulted.
type coordMeter struct {
	place  hw.Placement
	mode   CoordMode
	nodeOf []int32 // shard -> topology node
	nnodes int

	// coordNode anchors the serial coordinator: it runs on shard 0's
	// node, so exact/batched polls and stamp syncs cross the links from
	// that node.
	coordNode int32

	// The hier/approx host tier: hostIdx maps each shard to a dense
	// host index, aggNode maps a dense host to its aggregator node (the
	// node of the host's lowest shard — the hop shards on that host pay
	// intra-host prices to reach), hostShards counts shards per host.
	hostIdx    []int32
	aggNode    []int32
	hostShards []int32

	// Per-sweep / per-Plan batching state: hostPolled marks hosts whose
	// winner batch already cost a cross-host round this sweep (later
	// shard refills on the host merge into it, paying bytes only);
	// planVictims counts victims consumed per shard this Plan (flushed
	// into aggregated confirm rounds at Plan end); hostVictims is the
	// per-host scratch of that flush; moveCount/moveDirty accumulate
	// cross-shard slot transfers per ordered shard pair this Plan.
	hostPolled  []bool
	planVictims []int32
	hostVictims []int32
	moveCount   []int64
	moveDirty   []int32

	// bytes/rounds are the current Plan's per-link-pair traffic,
	// indexed by hw.Topology.PairIndex (the link matrix's own layout);
	// touched lists the dirty node pairs so the per-Plan reset and
	// pricing walk is proportional to traffic, not topology size.
	bytes   []float64
	rounds  []int64
	touched []linkUse

	stats CoordStats
}

// linkUse records one dirty link of the current Plan: the flattened
// pair index plus the node pair itself (so pricing needs no reverse
// lookup).
type linkUse struct {
	idx  int32
	a, b int32
}

// newCoordMeter builds a meter for a distributed placement; returns nil
// when the placement cannot generate cross-node traffic.
func newCoordMeter(p hw.Placement, shards int, mode CoordMode) *coordMeter {
	if !p.Distributed() || shards < 2 {
		return nil
	}
	m := &coordMeter{
		place:       p,
		mode:        mode,
		nodeOf:      make([]int32, shards),
		nnodes:      p.Topo.NumNodes(),
		bytes:       make([]float64, p.Topo.NumLinkPairs()),
		rounds:      make([]int64, p.Topo.NumLinkPairs()),
		hostIdx:     make([]int32, shards),
		planVictims: make([]int32, shards),
		moveCount:   make([]int64, shards*shards),
	}
	for j := range m.nodeOf {
		m.nodeOf[j] = int32(p.Node[j])
	}
	m.coordNode = m.nodeOf[0]
	// Dense host remap in ascending shard order: the first shard seen
	// on a host makes its node the host's aggregator.
	hostOf := make(map[int]int32)
	for j := range m.nodeOf {
		h := p.Topo.Nodes[m.nodeOf[j]].Host
		idx, ok := hostOf[h]
		if !ok {
			idx = int32(len(m.aggNode))
			hostOf[h] = idx
			m.aggNode = append(m.aggNode, m.nodeOf[j])
			m.hostShards = append(m.hostShards, 0)
		}
		m.hostIdx[j] = idx
		m.hostShards[idx]++
	}
	m.hostPolled = make([]bool, len(m.aggNode))
	m.hostVictims = make([]int32, len(m.aggNode))
	return m
}

// addRound records one message round of the given payload between two
// nodes, tallying the payload in bucket and the round in roundCtr;
// same-node traffic is free.
func (c *coordMeter) addRound(a, b int32, payload float64, bucket *float64, roundCtr *int64) {
	if a == b {
		return
	}
	idx := c.dirty(a, b)
	c.bytes[idx] += payload
	c.rounds[idx]++
	c.stats.Messages++
	*roundCtr++
	*bucket += payload
}

// addPayload merges extra payload onto the link between two nodes
// without a new round (the bytes ride an already-counted batched
// message); same-node traffic is free.
func (c *coordMeter) addPayload(a, b int32, payload float64, bucket *float64) {
	if a == b {
		return
	}
	idx := c.dirty(a, b)
	c.bytes[idx] += payload
	*bucket += payload
}

// dirty returns the flattened pair index for (a, b), registering the
// pair in the Plan's touched list on first use.
func (c *coordMeter) dirty(a, b int32) int32 {
	idx := int32(c.place.Topo.PairIndex(int(a), int(b)))
	if c.rounds[idx] == 0 && c.bytes[idx] == 0 {
		c.touched = append(c.touched, linkUse{idx: idx, a: a, b: b})
	}
	return idx
}

// beginSweep resets the per-sweep host-batch state; the Manager calls it
// whenever the victim sweep (re-)arms.
func (c *coordMeter) beginSweep() {
	for i := range c.hostPolled {
		c.hostPolled[i] = false
	}
}

// meterPoll records one candidate-poll refill for shard j that returned
// got candidates.
func (c *coordMeter) meterPoll(j, got int) {
	switch c.mode {
	case CoordExact:
		c.addRound(c.coordNode, c.nodeOf[j], victimPollBytes, &c.stats.VictimMergeBytes, &c.stats.PollRounds)
	case CoordBatched:
		c.addRound(c.coordNode, c.nodeOf[j], pollPayload(got), &c.stats.VictimMergeBytes, &c.stats.PollRounds)
	default: // CoordHier, CoordApprox
		h := c.hostIdx[j]
		agg := c.aggNode[h]
		c.addRound(agg, c.nodeOf[j], pollPayload(got), &c.stats.VictimMergeBytes, &c.stats.PollRounds)
		if agg == c.coordNode {
			return
		}
		if !c.hostPolled[h] {
			// First refill from this host this sweep: the aggregator
			// forwards the host-level winner batch in one cross-host
			// round.
			c.hostPolled[h] = true
			c.addRound(c.coordNode, agg, pollPayload(got), &c.stats.VictimMergeBytes, &c.stats.PollRounds)
		} else {
			// Later refills merge into the host batch already in
			// flight: extra candidates cost bytes, not rounds.
			c.addPayload(c.coordNode, agg, candEntryBytes*float64(got), &c.stats.VictimMergeBytes)
		}
	}
}

// meterConfirm records that the merge consumed a victim owned by shard
// j: an immediate confirm round in exact mode, a Plan-end aggregated
// confirm otherwise.
func (c *coordMeter) meterConfirm(j int) {
	if c.mode == CoordExact {
		c.addRound(c.coordNode, c.nodeOf[j], victimConfirmBytes, &c.stats.VictimMergeBytes, &c.stats.ConfirmRounds)
		return
	}
	c.planVictims[j]++
}

// meterSlotMove records a victim slot changing owners from shard `from`
// to shard `to`: an immediate transfer round in exact mode, a Plan-end
// aggregated per-pair transfer otherwise.
func (c *coordMeter) meterSlotMove(from, to int) {
	if c.mode == CoordExact {
		c.addRound(c.nodeOf[from], c.nodeOf[to], slotMoveBytes, &c.stats.VictimMergeBytes, &c.stats.SlotMoveRounds)
		return
	}
	idx := int32(from*len(c.planVictims) + to)
	if c.moveCount[idx] == 0 {
		c.moveDirty = append(c.moveDirty, idx)
	}
	c.moveCount[idx]++
}

// meterBorrow records a free-slot borrow round between two shards
// (identical in every mode: the starved shard blocks on the grant).
func (c *coordMeter) meterBorrow(from, to int) {
	c.addRound(c.nodeOf[from], c.nodeOf[to], borrowBytes, &c.stats.BorrowBytes, &c.stats.BorrowRounds)
}

// meterStampSync records one Plan's touch-stamp synchronization: per
// remote shard in exact/batched, aggregated through the host tier in
// hier, and nothing at all in approx (quantized epochs are derived
// locally from the batch stream every shard already receives).
func (c *coordMeter) meterStampSync() {
	switch c.mode {
	case CoordApprox:
		return
	case CoordExact, CoordBatched:
		for j := range c.nodeOf {
			c.addRound(c.coordNode, c.nodeOf[j], stampSyncBytes, &c.stats.TouchStampBytes, &c.stats.StampSyncRounds)
		}
	default: // CoordHier
		for j := range c.nodeOf {
			c.addRound(c.aggNode[c.hostIdx[j]], c.nodeOf[j], stampSyncBytes, &c.stats.TouchStampBytes, &c.stats.StampSyncRounds)
		}
		for h := range c.aggNode {
			c.addRound(c.coordNode, c.aggNode[h],
				batchHeaderBytes+stampCountBytes*float64(c.hostShards[h]),
				&c.stats.TouchStampBytes, &c.stats.StampSyncRounds)
		}
	}
}

// flushBatched emits the Plan-end aggregated rounds of the batched
// protocols: one confirm round per shard that supplied victims (routed
// coordinator -> host aggregator -> shard in hier/approx) and one slot
// transfer round per dirty ordered shard pair.
func (c *coordMeter) flushBatched() {
	if c.mode == CoordHier || c.mode == CoordApprox {
		for j, v := range c.planVictims {
			if v > 0 {
				c.hostVictims[c.hostIdx[j]] += v
			}
		}
		for h, v := range c.hostVictims {
			if v > 0 {
				c.addRound(c.coordNode, c.aggNode[h],
					batchHeaderBytes+confirmSlotBytes*float64(v),
					&c.stats.VictimMergeBytes, &c.stats.ConfirmRounds)
				c.hostVictims[h] = 0
			}
		}
		for j, v := range c.planVictims {
			if v > 0 {
				c.addRound(c.aggNode[c.hostIdx[j]], c.nodeOf[j],
					batchHeaderBytes+confirmSlotBytes*float64(v),
					&c.stats.VictimMergeBytes, &c.stats.ConfirmRounds)
				c.planVictims[j] = 0
			}
		}
	} else {
		for j, v := range c.planVictims {
			if v > 0 {
				c.addRound(c.coordNode, c.nodeOf[j],
					batchHeaderBytes+confirmSlotBytes*float64(v),
					&c.stats.VictimMergeBytes, &c.stats.ConfirmRounds)
				c.planVictims[j] = 0
			}
		}
	}
	n := len(c.planVictims)
	for _, idx := range c.moveDirty {
		from, to := int(idx)/n, int(idx)%n
		c.addRound(c.nodeOf[from], c.nodeOf[to],
			slotMoveBytes*float64(c.moveCount[idx]),
			&c.stats.VictimMergeBytes, &c.stats.SlotMoveRounds)
		c.moveCount[idx] = 0
	}
	c.moveDirty = c.moveDirty[:0]
}

// finishPlan prices the Plan's accumulated traffic, folds it into the
// lifetime stats, resets the per-Plan state, and returns the Plan's
// coordination latency in seconds. The coordinator pass is serial, so
// the per-link times sum.
func (c *coordMeter) finishPlan() float64 {
	if c.mode != CoordExact {
		c.flushBatched()
	}
	var t float64
	for _, u := range c.touched {
		l := c.place.Topo.Link(int(u.a), int(u.b))
		// A down link prices at zero like a local one: no message
		// crosses a partition — the rounds stay counted (the protocol
		// sent them; they queue), and the stale state they failed to
		// deliver is what degraded-mode divergence measures.
		if l.Tier != hw.TierLocal && !l.Down {
			t += float64(c.rounds[u.idx])*l.Latency + c.bytes[u.idx]/l.Bandwidth
		}
		c.bytes[u.idx] = 0
		c.rounds[u.idx] = 0
	}
	c.touched = c.touched[:0]
	c.stats.Seconds += t
	return t
}
