package shard

import (
	"math/rand"
	"testing"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/par"
)

// elastic builds an elastic manager, failing the test on error.
func elastic(t *testing.T, cfg core.Config, shards int, opts ...func(*Config)) *Manager {
	t.Helper()
	c := Config{Scratchpad: cfg, Shards: shards, Elastic: true}
	for _, o := range opts {
		o(&c)
	}
	m, err := New(c)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// residency snapshots the manager's full (id -> slot) map.
func residency(m *Manager) map[int64]int32 {
	out := make(map[int64]int32, m.Len())
	m.ForEach(func(id int64, slot int32) { out[id] = slot })
	return out
}

// sameResidency asserts two residency snapshots are identical: every
// cached row reachable, at the same physical slot.
func sameResidency(t *testing.T, label string, want, got map[int64]int32) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: resident rows %d, want %d (cached rows lost or invented)", label, len(got), len(want))
	}
	for id, slot := range want {
		g, ok := got[id]
		if !ok {
			t.Fatalf("%s: cached row %d lost across reshard", label, id)
		}
		if g != slot {
			t.Fatalf("%s: row %d moved from slot %d to %d (slots are global and must not move)", label, id, slot, g)
		}
	}
}

// TestReshardValidation covers the Reshard entry conditions.
func TestReshardValidation(t *testing.T) {
	cfg := testConfig(64, 16)
	plain, err := New(Config{Scratchpad: cfg, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := plain.Reshard(2, hw.Placement{}); err == nil {
		t.Fatal("Reshard on a non-elastic (delegated) manager accepted")
	}
	m := elastic(t, cfg, 2)
	if err := m.Reshard(0, hw.Placement{}); err == nil {
		t.Fatal("Reshard to 0 shards accepted")
	}
	topo := hw.Cluster(2, 2)
	short, err := hw.NewPlacement(hw.PlaceStripe, topo, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Reshard(4, short); err == nil {
		t.Fatal("Reshard with a placement covering the wrong shard count accepted")
	}
	lfu := cfg
	lfu.Policy = cache.LFU
	if _, err := New(Config{Scratchpad: lfu, Shards: 1, Elastic: true}); err == nil {
		t.Fatal("elastic non-LRU manager accepted (migration re-threads LRU recency state)")
	}
	// Placements on different topology instances must be rejected: the
	// migration meter cannot price links between two unrelated graphs.
	p1, _ := hw.NewPlacement(hw.PlaceStripe, hw.Cluster(2, 2), 2, nil)
	if err := m.Reshard(2, p1); err != nil {
		t.Fatal(err)
	}
	p2, _ := hw.NewPlacement(hw.PlaceStripe, hw.Cluster(2, 1), 2, nil)
	if err := m.Reshard(2, p2); err == nil {
		t.Fatal("Reshard across different topology instances accepted")
	}
}

// TestElasticSingleShardBitIdentical proves the elastic S=1 generic
// path (no core.Scratchpad delegation) is still bit-identical to the
// unsharded planner, including physical slot numbers — the property
// that lets engines run elastic from iteration 0 without changing any
// pre-reshard figure.
func TestElasticSingleShardBitIdentical(t *testing.T) {
	cfg := testConfig(256, 64)
	sp, err := core.NewScratchpad(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := elastic(t, cfg, 1)
	if m.Shards() != 1 || !m.Elastic() {
		t.Fatalf("elastic S=1 manager misbuilt: shards %d elastic %v", m.Shards(), m.Elastic())
	}
	st := newStream(11, 64, 64, int64(256*4))
	const depth = 4
	var pendA, pendB []*core.PlanResult
	for seq := 0; seq < 100; seq++ {
		future, hints := st.window(seq, 2, 6)
		ra, err := sp.PlanWithHints(seq, st.at(seq), future, hints)
		if err != nil {
			t.Fatal(err)
		}
		rb, err := m.PlanWithHints(seq, st.at(seq), future, hints)
		if err != nil {
			t.Fatal(err)
		}
		samePlan(t, "elastic-s1", seq, ra, rb)
		for i := range ra.Slots {
			if ra.Slots[i] != rb.Slots[i] {
				t.Fatalf("seq %d: slot %d: %d vs %d (elastic S=1 must be bit-identical)", seq, i, ra.Slots[i], rb.Slots[i])
			}
		}
		pendA, pendB = append(pendA, ra), append(pendB, rb)
		if len(pendA) >= depth {
			old := seq - depth + 1
			if err := sp.Release(old); err != nil {
				t.Fatal(err)
			}
			if err := m.Release(old); err != nil {
				t.Fatal(err)
			}
			sp.Recycle(pendA[0])
			m.Recycle(pendB[0])
			pendA, pendB = pendA[1:], pendB[1:]
		}
	}
	if sp.Stats() != m.Stats() {
		t.Fatalf("stats diverged:\ncore    %+v\nelastic %+v", sp.Stats(), m.Stats())
	}
}

// driveResharding runs st through planner a (the reference) and elastic
// manager b in lockstep, invoking b.Reshard per the schedule map
// (iteration -> new shard count) between Plans, and asserting residency
// is preserved bit-for-bit across every boundary.
func driveResharding(t *testing.T, label string, a planner, b *Manager, st *stream, iters, futureWin int, schedule map[int]int, place func(s int) hw.Placement) {
	t.Helper()
	const depth = 4
	var pendA, pendB []*core.PlanResult
	for seq := 0; seq < iters; seq++ {
		if newS, ok := schedule[seq]; ok {
			before := residency(b)
			var p hw.Placement
			if place != nil {
				p = place(newS)
			}
			if err := b.Reshard(newS, p); err != nil {
				t.Fatalf("%s seq %d: Reshard(%d): %v", label, seq, newS, err)
			}
			if got := b.Shards(); got != newS {
				t.Fatalf("%s seq %d: shards %d after Reshard(%d)", label, seq, got, newS)
			}
			sameResidency(t, label, before, residency(b))
		}
		future, hints := st.window(seq, futureWin, 0)
		ra, err := a.PlanWithHints(seq, st.at(seq), future, hints)
		if err != nil {
			t.Fatalf("%s seq %d: reference Plan: %v", label, seq, err)
		}
		rb, err := b.PlanWithHints(seq, st.at(seq), future, hints)
		if err != nil {
			t.Fatalf("%s seq %d: elastic Plan: %v", label, seq, err)
		}
		samePlan(t, label, seq, ra, rb)
		pendA, pendB = append(pendA, ra), append(pendB, rb)
		if len(pendA) >= depth {
			old := seq - depth + 1
			if err := a.Release(old); err != nil {
				t.Fatalf("%s: reference Release(%d): %v", label, old, err)
			}
			if err := b.Release(old); err != nil {
				t.Fatalf("%s: elastic Release(%d): %v", label, old, err)
			}
			a.Recycle(pendA[0])
			b.Recycle(pendB[0])
			pendA, pendB = pendA[1:], pendB[1:]
		}
	}
}

// TestReshardEquivalence is the tentpole property: an elastic run that
// reshards S=1 -> 4 -> 2 mid-stream — with batches in flight at every
// boundary — must keep emitting exactly the plans, eviction victims,
// and statistics of the unsharded planner, and every boundary must
// preserve the full residency map (no silent row loss).
func TestReshardEquivalence(t *testing.T) {
	cfg := testConfig(512, 96)
	sp, err := core.NewScratchpad(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := elastic(t, cfg, 1, func(c *Config) { c.Pool = par.New(2) })
	st := newStream(29, 96, 96, int64(512*4))
	driveResharding(t, "reshard-1-4-2", sp, m, st, 150, 2, map[int]int{50: 4, 100: 2}, nil)
	if sp.Stats() != m.Stats() {
		t.Fatalf("stats diverged:\ncore    %+v\nelastic %+v", sp.Stats(), m.Stats())
	}
	rs := m.ReshardStats()
	if rs.Events != 2 {
		t.Fatalf("reshard events %d, want 2", rs.Events)
	}
	if rs.ResidentMoved == 0 {
		t.Fatal("no resident entries re-bucketed across S=1 -> 4 -> 2")
	}
	if rs.HoldsMoved == 0 {
		t.Fatal("no in-flight hold entries re-bucketed despite batches in flight at both boundaries")
	}
	if rs.Bytes != 0 || rs.Seconds != 0 || rs.Rounds != 0 {
		t.Fatalf("co-located migration priced: %+v", rs)
	}
}

// TestReshardSameSNoOp: a reshard to the current shard count must be a
// priced no-op — bit-identical plans (physical slots included) after
// the boundary against a manager that never resharded, zero migration
// cost under an unchanged placement.
func TestReshardSameSNoOp(t *testing.T) {
	cfg := testConfig(256, 64)
	ref := elastic(t, cfg, 3)
	m := elastic(t, cfg, 3)
	st := newStream(13, 64, 64, int64(256*4))
	const depth = 4
	var pendA, pendB []*core.PlanResult
	for seq := 0; seq < 90; seq++ {
		if seq == 40 {
			before := residency(m)
			if err := m.Reshard(3, hw.Placement{}); err != nil {
				t.Fatal(err)
			}
			sameResidency(t, "same-S", before, residency(m))
		}
		future, hints := st.window(seq, 2, 0)
		ra, err := ref.PlanWithHints(seq, st.at(seq), future, hints)
		if err != nil {
			t.Fatal(err)
		}
		rb, err := m.PlanWithHints(seq, st.at(seq), future, hints)
		if err != nil {
			t.Fatal(err)
		}
		samePlan(t, "same-S", seq, ra, rb)
		for i := range ra.Slots {
			if ra.Slots[i] != rb.Slots[i] {
				t.Fatalf("seq %d: slot %d: %d vs %d (same-S reshard must be bit-identical)", seq, i, ra.Slots[i], rb.Slots[i])
			}
		}
		pendA, pendB = append(pendA, ra), append(pendB, rb)
		if len(pendA) >= depth {
			old := seq - depth + 1
			if err := ref.Release(old); err != nil {
				t.Fatal(err)
			}
			if err := m.Release(old); err != nil {
				t.Fatal(err)
			}
			ref.Recycle(pendA[0])
			m.Recycle(pendB[0])
			pendA, pendB = pendA[1:], pendB[1:]
		}
	}
	if ref.Stats() != m.Stats() {
		t.Fatalf("stats diverged:\nref     %+v\nreshard %+v", ref.Stats(), m.Stats())
	}
	rs := m.ReshardStats()
	if rs.Events != 1 || rs.Bytes != 0 || rs.Seconds != 0 {
		t.Fatalf("same-S reshard not a free priced no-op: %+v", rs)
	}
}

// TestReshardFuzz drives random streams through random grow/shrink
// schedules (always with batches in flight) against a fresh unsharded
// reference, checking plans and final statistics every trial.
func TestReshardFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	counts := []int{1, 2, 3, 4, 5, 7, 8}
	for trial := 0; trial < 10; trial++ {
		slots := 64 + rng.Intn(512)
		batchLen := 16 + rng.Intn(96)
		idSpace := int64(slots/2 + rng.Intn(slots*6))
		cfg := core.Config{
			Slots:        slots,
			Policy:       cache.LRU,
			PastWindow:   3,
			FutureWindow: rng.Intn(3),
		}
		cfg.Reserve = core.WorstCaseReserve(cfg, batchLen)
		sp, err := core.NewScratchpad(cfg)
		if err != nil {
			t.Fatal(err)
		}
		start := counts[rng.Intn(len(counts))]
		m := elastic(t, cfg, start, func(c *Config) { c.Pool = par.New(2) })
		schedule := map[int]int{}
		for _, at := range []int{10 + rng.Intn(15), 30 + rng.Intn(15)} {
			schedule[at] = counts[rng.Intn(len(counts))]
		}
		st := newStream(rng.Int63(), 32, batchLen, idSpace)
		driveResharding(t, "fuzz", sp, m, st, 60, cfg.FutureWindow, schedule, nil)
		if sp.Stats() != m.Stats() {
			t.Fatalf("trial %d (slots %d, batch %d, start S=%d, schedule %v): stats diverged:\ncore    %+v\nelastic %+v",
				trial, slots, batchLen, start, schedule, sp.Stats(), m.Stats())
		}
	}
}

// TestReshardMigrationCost pins the pricing model: co-located moves are
// free; scaling S=1 -> 4 across a two-host cluster pays network/NUMA
// state transfer; a same-S placement change prices the relocated
// shards' full control state; returning to the same nodes is free
// again.
func TestReshardMigrationCost(t *testing.T) {
	cfg := testConfig(256, 64)
	topo := hw.Cluster(2, 2)
	stripe := func(s int) hw.Placement {
		p, err := hw.NewPlacement(hw.PlaceStripe, topo, s, nil)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	m := elastic(t, cfg, 1)
	st := newStream(7, 32, 64, int64(256*4))
	var pend []*core.PlanResult
	for seq := 0; seq < 32; seq++ {
		future, _ := st.window(seq, 2, 0)
		res, err := m.PlanWithHints(seq, st.at(seq), future, nil)
		if err != nil {
			t.Fatal(err)
		}
		pend = append(pend, res)
		if len(pend) >= 4 {
			if err := m.Release(seq - 3); err != nil {
				t.Fatal(err)
			}
			m.Recycle(pend[0])
			pend = pend[1:]
		}
	}

	// S=1 -> 4 striped across the cluster: shard 0's state stays on
	// node 0, shards 1-3's control entries cross NUMA and network
	// links. Migration must be priced > 0.
	if err := m.Reshard(4, stripe(4)); err != nil {
		t.Fatal(err)
	}
	rs := m.ReshardStats()
	if rs.Bytes <= 0 || rs.Seconds <= 0 || rs.Rounds <= 0 {
		t.Fatalf("distributed scale-out not priced: %+v", rs)
	}
	if m.LastReshardTime() != rs.Seconds {
		t.Fatalf("LastReshardTime %g != event seconds %g", m.LastReshardTime(), rs.Seconds)
	}

	// Same-S, same placement: free no-op.
	before := m.ReshardStats()
	if err := m.Reshard(4, stripe(4)); err != nil {
		t.Fatal(err)
	}
	rs = m.ReshardStats()
	if rs.Events != before.Events+1 {
		t.Fatalf("same-S reshard not counted: %+v", rs)
	}
	if rs.Bytes != before.Bytes || rs.Seconds != before.Seconds {
		t.Fatalf("same-S same-placement reshard cost bytes: %+v vs %+v", rs, before)
	}
	if m.LastReshardTime() != 0 {
		t.Fatalf("same-placement no-op priced %g", m.LastReshardTime())
	}

	// Same-S, reversed placement: every shard changes nodes, so each
	// ships its full control state across a link.
	reversed := hw.Placement{Topo: topo, Node: []int{3, 2, 1, 0}}
	if err := m.Reshard(4, reversed); err != nil {
		t.Fatal(err)
	}
	if m.LastReshardTime() <= 0 {
		t.Fatal("same-S placement relocation not priced")
	}

	// Shrink back to 1 co-located (zero placement = everything on node
	// 0): the state pays its way home off nodes 1-3.
	if err := m.Reshard(1, hw.Placement{}); err != nil {
		t.Fatal(err)
	}
	if m.LastReshardTime() <= 0 {
		t.Fatal("shrink from distributed nodes back to node 0 not priced")
	}
	if m.Shards() != 1 {
		t.Fatalf("shards %d after shrink to 1", m.Shards())
	}

	// Fully co-located from here on: growing again without a topology
	// must cost exactly zero despite re-bucketing entries.
	before = m.ReshardStats()
	if err := m.Reshard(4, hw.Placement{}); err != nil {
		t.Fatal(err)
	}
	rs = m.ReshardStats()
	if rs.ResidentMoved <= before.ResidentMoved {
		t.Fatal("co-located grow re-bucketed nothing")
	}
	if rs.Bytes != before.Bytes || rs.Seconds != before.Seconds || rs.Rounds != before.Rounds {
		t.Fatalf("co-located move priced: %+v vs %+v", rs, before)
	}

	// Drain cleanly: holds must have migrated intact through all of it.
	for i := range pend {
		if err := m.Release(32 - len(pend) + i); err != nil {
			t.Fatalf("post-reshard Release: %v", err)
		}
		m.Recycle(pend[i])
	}
	if m.InFlight() != 0 {
		t.Fatalf("in-flight %d after drain", m.InFlight())
	}
}

// TestReshardCoordStatsCarry: lifetime coordination traffic must
// survive a reshard (each event retires the placement's meter).
func TestReshardCoordStatsCarry(t *testing.T) {
	cfg := testConfig(128, 32)
	topo := hw.Cluster(2, 2)
	p4, err := hw.NewPlacement(hw.PlaceStripe, topo, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	m := elastic(t, cfg, 4, func(c *Config) { c.Placement = p4 })
	st := newStream(3, 32, 32, 96) // small ID space: evictions guaranteed
	var pend []*core.PlanResult
	step := func(seq int) {
		future, _ := st.window(seq, 2, 0)
		res, err := m.PlanWithHints(seq, st.at(seq), future, nil)
		if err != nil {
			t.Fatal(err)
		}
		pend = append(pend, res)
		if len(pend) >= 4 {
			if err := m.Release(seq - 3); err != nil {
				t.Fatal(err)
			}
			m.Recycle(pend[0])
			pend = pend[1:]
		}
	}
	for seq := 0; seq < 24; seq++ {
		step(seq)
	}
	mid := m.CoordStats()
	if mid.Messages == 0 {
		t.Fatal("no coordination traffic before reshard (test premise broken)")
	}
	if err := m.Reshard(2, hw.Placement{}); err != nil {
		t.Fatal(err)
	}
	after := m.CoordStats()
	if after != mid {
		t.Fatalf("reshard changed lifetime coordination totals: %+v vs %+v", after, mid)
	}
	for seq := 24; seq < 32; seq++ {
		step(seq)
	}
	if got := m.CoordStats(); got != after {
		// Co-located now: no new traffic, totals must still be the
		// carried ones.
		t.Fatalf("co-located post-reshard run changed coordination totals: %+v vs %+v", got, after)
	}
}

// TestLoadProbe: elastic managers histogram query mass at the fixed
// probe granularity; a heavily skewed stream must show probe skew well
// above a uniform one.
func TestLoadProbe(t *testing.T) {
	skewOf := func(ids []int64) float64 {
		cfg := testConfig(256, len(ids))
		m := elastic(t, cfg, 1, func(c *Config) { c.LoadProbe = true })
		if _, err := m.Plan(0, ids, nil); err != nil {
			t.Fatal(err)
		}
		probe := m.LoadProbe()
		if len(probe) != LoadProbeBuckets {
			t.Fatalf("probe has %d buckets, want %d", len(probe), LoadProbeBuckets)
		}
		var total, max int64
		for _, v := range probe {
			total += v
			if v > max {
				max = v
			}
		}
		if total != int64(len(ids)) {
			t.Fatalf("probe total %d, want %d occurrences", total, len(ids))
		}
		return float64(LoadProbeBuckets) * float64(max) / float64(total)
	}
	// Enough draws that uniform noise stays well under the default
	// skew threshold at the probe's granularity (~32 per bucket).
	uniform := make([]int64, 32768)
	rng := rand.New(rand.NewSource(1))
	for i := range uniform {
		uniform[i] = rng.Int63n(1 << 30)
	}
	hot := make([]int64, 32768)
	for i := range hot {
		hot[i] = int64(rng.Intn(3)) // 3 hot IDs carry all the mass
	}
	u, h := skewOf(uniform), skewOf(hot)
	if u > 2 {
		t.Fatalf("uniform stream probe skew %g > 2", u)
	}
	if h < 8 {
		t.Fatalf("hot stream probe skew %g < 8", h)
	}
	// The probe is opt-in: elastic managers without it keep the Plan
	// hot path untouched, and it cannot exist without elasticity.
	noProbe := elastic(t, testConfig(64, 16), 2)
	if noProbe.LoadProbe() != nil {
		t.Fatal("probe grew without LoadProbe opt-in")
	}
	if _, err := New(Config{Scratchpad: testConfig(64, 16), Shards: 2, LoadProbe: true}); err == nil {
		t.Fatal("LoadProbe without Elastic accepted")
	}
}
