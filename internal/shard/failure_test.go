package shard

import (
	"testing"

	"repro/internal/core"
	"repro/internal/hw"
)

// failureManager builds an elastic manager placed stripe-wise on
// cluster2x2 (shards i -> node i%4; host 0 owns nodes 0-1, host 1
// nodes 2-3) under the given protocol.
func failureManager(t *testing.T, cfg core.Config, shards int, topo *hw.Topology, mode CoordMode) *Manager {
	t.Helper()
	place, err := hw.NewPlacement(hw.PlaceStripe, topo, shards, nil)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(Config{Scratchpad: cfg, Shards: shards, Placement: place, Coord: mode, Elastic: true})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// drive runs seqs Plans against m, releasing every hold immediately so
// the scratchpad ends idle (no in-flight batches).
func drive(t *testing.T, m *Manager, st *stream, from, to int) {
	t.Helper()
	for seq := from; seq < to; seq++ {
		future, hints := st.window(seq, 2, 6)
		res, err := m.PlanWithHints(seq, st.at(seq), future, hints)
		if err != nil {
			t.Fatal(err)
		}
		m.Recycle(res)
		if err := m.Release(seq); err != nil {
			t.Fatal(err)
		}
	}
}

// TestEvacuateValidation covers the Evacuate entry conditions.
func TestEvacuateValidation(t *testing.T) {
	cfg := testConfig(64, 16)
	plain, err := New(Config{Scratchpad: cfg, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := plain.Evacuate(hw.Placement{}, func(int) bool { return false }, 0); err == nil {
		t.Fatal("Evacuate on a non-elastic (delegated) manager accepted")
	}
	m := elastic(t, cfg, 2)
	if _, err := m.Evacuate(hw.Placement{}, func(int) bool { return false }, 0); err == nil {
		t.Fatal("Evacuate without any topology accepted (nothing can die co-located)")
	}
	topo := hw.Cluster(2, 2)
	dm := failureManager(t, cfg, 2, topo, CoordExact)
	other, err := hw.NewPlacement(hw.PlaceStripe, hw.Cluster(2, 1), 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dm.Evacuate(other, func(int) bool { return false }, 0); err == nil {
		t.Fatal("Evacuate across different topology instances accepted")
	}
}

// TestEvacuateIdleHostNoOp is the satellite guarantee: killing a host
// that carries no shards must not touch residency, stats, or the
// placement — a priced no-op (the engine still bills detection, but
// the control plane has nothing to recover).
func TestEvacuateIdleHostNoOp(t *testing.T) {
	cfg := testConfig(128, 32)
	topo := hw.Cluster(2, 2)
	// S=2 stripe puts both shards on host 0's nodes; host 1 is idle.
	m := failureManager(t, cfg, 2, topo, CoordExact)
	st := newStream(3, 48, 32, int64(128*6))
	drive(t, m, st, 0, 40)

	before := residency(m)
	place := m.Placement()
	st2, err := m.Evacuate(place, func(h int) bool { return h == 1 }, 0)
	if err != nil {
		t.Fatal(err)
	}
	if st2 != (EvacStats{}) {
		t.Fatalf("idle-host evacuation produced stats: %+v", st2)
	}
	if m.EvacStats() != (EvacStats{}) {
		t.Fatalf("idle-host evacuation accumulated lifetime stats: %+v", m.EvacStats())
	}
	sameResidency(t, "idle-host-kill", before, residency(m))
	drive(t, m, st, 40, 48) // and the manager still plans normally
}

// TestEvacuateDropsResidency: killing host 1 under a 4-shard stripe
// drops the dead shards' resident entries (repriced as future cold
// misses), keeps every survivor at its slot, re-homes the placement,
// and prices the re-announcement traffic.
func TestEvacuateDropsResidency(t *testing.T) {
	cfg := testConfig(128, 32)
	topo := hw.Cluster(2, 2)
	m := failureManager(t, cfg, 4, topo, CoordExact)
	st := newStream(5, 48, 32, int64(128*6))
	drive(t, m, st, 0, 40)

	before := residency(m)
	dead := func(h int) bool { return h == 1 }
	place, err := hw.EvacuatePlacement(m.Placement(), dead)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := m.Evacuate(place, dead, 0)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Events != 1 || stats.ShardsEvacuated != 2 {
		t.Fatalf("evacuation events/shards %d/%d, want 1/2", stats.Events, stats.ShardsEvacuated)
	}
	if stats.LostResident == 0 {
		t.Fatal("no residency lost despite two dead shards (stream must populate all shards)")
	}
	if stats.RestoredResident != 0 || stats.HeldKept != 0 {
		t.Fatalf("idle uncheckpointed kill restored/kept entries: %+v", stats)
	}
	if stats.FreeMoved == 0 || stats.Bytes <= 0 || stats.Rounds == 0 || stats.Seconds <= 0 {
		t.Fatalf("evacuation transfers not priced: %+v", stats)
	}
	if m.LastEvacTime() != stats.Seconds {
		t.Fatalf("LastEvacTime %g != stats.Seconds %g", m.LastEvacTime(), stats.Seconds)
	}
	after := residency(m)
	if len(after) != len(before)-int(stats.LostResident) {
		t.Fatalf("resident %d, want %d - %d lost", len(after), len(before), stats.LostResident)
	}
	for id, slot := range after {
		if before[id] != slot {
			t.Fatalf("surviving row %d moved from slot %d to %d", id, before[id], slot)
		}
	}
	for _, n := range m.Placement().Node {
		if topo.Nodes[n].Host == 1 {
			t.Fatalf("shard still homed on the dead host: %v", m.Placement().Node)
		}
	}
	drive(t, m, st, 40, 48) // cold misses refill; the plane keeps planning
}

// TestEvacuateCheckpointRestore: with a restore row size (checkpoint
// recovery) nothing drops — residency is bit-identical across the kill
// at bulk-transfer prices.
func TestEvacuateCheckpointRestore(t *testing.T) {
	cfg := testConfig(128, 32)
	topo := hw.Cluster(2, 2)
	m := failureManager(t, cfg, 4, topo, CoordExact)
	st := newStream(5, 48, 32, int64(128*6))
	drive(t, m, st, 0, 40)

	before := residency(m)
	dead := func(h int) bool { return h == 1 }
	place, err := hw.EvacuatePlacement(m.Placement(), dead)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := m.Evacuate(place, dead, 512)
	if err != nil {
		t.Fatal(err)
	}
	if stats.LostResident != 0 {
		t.Fatalf("checkpointed evacuation lost %d entries", stats.LostResident)
	}
	if stats.RestoredResident == 0 {
		t.Fatal("checkpointed evacuation restored nothing")
	}
	// Only transfers crossing a real link are priced (restores landing
	// on the coordinator's own node are local), so the bound is the
	// rows that left node 0, not all of them.
	if stats.Bytes <= 0 || stats.Seconds <= 0 {
		t.Fatalf("checkpoint restore transfers not priced: %+v", stats)
	}
	sameResidency(t, "checkpoint-restore", before, residency(m))
}

// TestDegradeHealCycle: a partition degrades the protocol to approx
// (divergence measured inline), heal restores it and prices the stamp
// re-sync.
func TestDegradeHealCycle(t *testing.T) {
	cfg := testConfig(128, 32)
	topo := hw.Cluster(2, 2)
	m := failureManager(t, cfg, 4, topo, CoordHier)
	st := newStream(7, 48, 32, int64(128*6))
	drive(t, m, st, 0, 16)

	if m.Degraded() {
		t.Fatal("manager degraded before any fault")
	}
	if m.Heal() != 0 {
		t.Fatal("Heal on a healthy manager priced a re-sync")
	}
	m.Degrade()
	if !m.Degraded() {
		t.Fatal("Degrade did not take")
	}
	m.Degrade() // idempotent
	drive(t, m, st, 16, 32)
	div := m.Divergence()
	if div.Plans != 16 {
		t.Fatalf("degraded-mode divergence compared %d plans, want 16", div.Plans)
	}
	resync := m.Heal()
	if m.Degraded() {
		t.Fatal("Heal did not restore the protocol")
	}
	if resync <= 0 {
		t.Fatal("cross-host stamp re-sync not priced")
	}
	drive(t, m, st, 32, 48)
	if got := m.Divergence().Plans; got != div.Plans {
		t.Fatalf("healed manager kept measuring divergence: %d plans", got)
	}

	// Native approx already measures divergence against its shadow;
	// Degrade must leave it alone.
	ma := failureManager(t, testConfig(64, 16), 2, topo, CoordApprox)
	ma.Degrade()
	if ma.Degraded() {
		t.Fatal("native approx manager marked degraded")
	}
}

// TestReelectAggregator: losing host 0's aggregator under hier elects
// the host's next shard's node, prices the votes + announcement, and
// leaves exact-mode managers untouched.
func TestReelectAggregator(t *testing.T) {
	cfg := testConfig(128, 32)
	topo := hw.Cluster(2, 2)
	m := failureManager(t, cfg, 4, topo, CoordHier)
	st := newStream(9, 24, 32, int64(128*6))
	drive(t, m, st, 0, 8)

	secs := m.ReelectAggregator(0)
	if secs <= 0 {
		t.Fatal("re-election not priced")
	}
	cs := m.CoordStats()
	// Host 0 carries shards 0 and 2 (stripe on nodes 0,1,2,3 -> nodes
	// 0 and 2... host 0 owns nodes 0-1): its shard votes plus one
	// announcement to the global coordinator.
	if cs.ReelectRounds == 0 || cs.ReelectBytes <= 0 {
		t.Fatalf("re-election rounds/bytes not metered: %+v", cs)
	}
	drive(t, m, st, 8, 16) // the elected aggregator keeps coordinating

	// No aggregator tier in exact mode: nothing to re-elect.
	me := failureManager(t, testConfig(64, 16), 2, topo, CoordExact)
	if got := me.ReelectAggregator(0); got != 0 {
		t.Fatalf("exact-mode re-election priced %g", got)
	}
	// Unknown host: no-op.
	if got := m.ReelectAggregator(7); got != 0 {
		t.Fatalf("re-election for an absent host priced %g", got)
	}
}
