// Package msgplane executes coordination message rounds on real
// goroutine "hosts" instead of summing them arithmetically.
//
// The coordination meter (internal/shard/coord.go) records every
// poll / confirm / slot-transfer / borrow / stamp-sync message the
// cross-shard eviction protocol exchanges and prices the total with
// closed-form link arithmetic. That model is cheap and deterministic,
// but it is only a model: nothing ever travels, so its predictions are
// unvalidated. This package is the measured twin. Each topology node
// that terminates coordination traffic becomes a goroutine host; the
// meter replays its recorded message stream through channels between
// those hosts, and delivery is delayed per the hw.Topology link each
// message crosses. The result is a wall-clock figure built by actual
// concurrent execution — serialization points emerge from goroutine
// scheduling and channel hand-off, not from a summation order the
// model assumed — which the bench layer reports as CoordWallTime and
// benchgate diffs against the modeled CoordTime (skew gate).
//
// Delivery clocks are virtual (seconds on the same scale the meter
// prices), advanced by the hosts as they drain their inboxes; the
// goroutines do not sleep out the link latencies. That keeps a plan's
// execution deterministic and cheap while preserving the property the
// model cannot give us: completion time is computed by the hosts
// racing each other through real channels, so any serialization the
// protocol has (every exact-mode round funnels through the
// coordinator; hier fans out per host) is exhibited, not asserted.
//
// The execution contract mirrors the overlapped coordinator: Execute
// takes two scripts, the speculative rounds that ran hidden under
// Collect and the critical rounds Plan had to pay for, and returns
// both the full makespan and the point where the hidden prefix ended,
// so callers can split measured wall into hidden and critical the
// same way the meter splits modeled seconds.
package msgplane

import "repro/internal/hw"

// Op is one recorded coordination message: a request issued by Peer
// that must be serviced by the goroutine hosting Exec (the endpoint
// the protocol serializes on — the global coordinator for exact-mode
// rounds, the per-host aggregator for hier fan-in). Bytes is the
// payload on the wire; Latency marks a full request/response round
// (pays the link's fixed latency) versus a piggybacked payload that
// rides an already-counted round. Phase is a monotone barrier index:
// ops in phase k+1 may not start before every op in phase k completed,
// matching the protocol's real dependencies (stamp sync before polls,
// polls before confirms, confirms before slot moves).
type Op struct {
	// Exec is the topology node whose goroutine services the op.
	Exec int32
	// Peer is the other endpoint; the link crossed is (Exec, Peer).
	Peer int32
	// Bytes is the payload size charged to the link's bandwidth.
	Bytes float64
	// Latency marks a round (pays link latency) vs a payload rider.
	Latency bool
	// Phase orders the op against the plan's barrier structure.
	Phase int32
}

// msg is an Op resolved for delivery: issue is the earliest virtual
// time the requester could have sent it, delay the link crossing cost,
// idx its position in the script (dones are written back there).
type msg struct {
	issue float64
	delay float64
	idx   int32
}

// hostIn is one phase's batched inbox for a single exec host: the
// host's messages in issue order plus its clock at phase entry.
type hostIn struct {
	msgs []msg
	base float64
}

// hostOut reports a host's clock after draining its phase inbox.
type hostOut struct {
	exec  int32
	clock float64
}

// Plane executes coordination scripts over goroutine hosts. One Plane
// serves one shard.Manager (single-threaded caller); all per-phase
// state is preallocated and reused so the hot path allocates nothing
// beyond the per-phase goroutines themselves.
type Plane struct {
	topo  *hw.Topology
	clock []float64 // per-node virtual time

	// Per-phase scratch, reused across Execute calls.
	inbox  []chan hostIn // per-node, persistent (never closed)
	done   chan hostOut
	dones  []float64 // per-op completion times, indexed by Op idx
	msgbuf []msg     // counting-sorted per-exec message lists
	count  []int32   // per-node op count within the phase
	offset []int32   // per-node slice offsets into msgbuf
	active []int32   // distinct exec nodes in the phase
}

// New builds a Plane over topo. Returns nil for a nil topology —
// co-located managers have no links to measure, mirroring the meter.
func New(topo *hw.Topology) *Plane {
	if topo == nil {
		return nil
	}
	n := topo.NumNodes()
	p := &Plane{
		topo:   topo,
		clock:  make([]float64, n),
		inbox:  make([]chan hostIn, n),
		done:   make(chan hostOut, n),
		count:  make([]int32, n),
		offset: make([]int32, n),
		active: make([]int32, 0, n),
	}
	for i := range p.inbox {
		p.inbox[i] = make(chan hostIn, 1)
	}
	return p
}

// delay returns the virtual delivery cost of one op on its link: zero
// for co-located endpoints and partitioned links (the meter's pricing
// rule), otherwise the link latency (rounds only) plus serialization.
func (p *Plane) delay(op Op) float64 {
	if op.Exec == op.Peer {
		return 0
	}
	l := p.topo.Link(int(op.Exec), int(op.Peer))
	if l.Tier == hw.TierLocal || l.Down {
		return 0
	}
	d := op.Bytes / l.Bandwidth
	if op.Latency {
		d += l.Latency
	}
	return d
}

// Execute replays one plan's coordination scripts over the goroutine
// hosts and returns the full virtual makespan plus the completion time
// of the overlapped prefix. overlapped holds the rounds the
// speculative coordinator ran hidden under the previous Collect;
// critical holds the rounds Plan paid for on its own clock. Either may
// be empty. Measured critical wall is total - overlapEnd; the hidden
// share is overlapEnd. Ops within each script must be sorted by Phase
// (the recorder emits them that way).
func (p *Plane) Execute(overlapped, critical []Op) (total, overlapEnd float64) {
	if p == nil {
		return 0, 0
	}
	for i := range p.clock {
		p.clock[i] = 0
	}
	var completion float64
	p.run(overlapped, &completion)
	overlapEnd = completion
	// Critical rounds cannot start before Plan does, which is the
	// barrier the speculative prefix ends on: lift every host to it.
	for i := range p.clock {
		if p.clock[i] < overlapEnd {
			p.clock[i] = overlapEnd
		}
	}
	p.run(critical, &completion)
	return completion, overlapEnd
}

// run executes one script phase by phase.
func (p *Plane) run(ops []Op, completion *float64) {
	for i := 0; i < len(ops); {
		j := i
		ph := ops[i].Phase
		for j < len(ops) && ops[j].Phase == ph {
			j++
		}
		p.runPhase(ops[i:j], completion)
		i = j
	}
}

// runPhase delivers one phase's ops: messages are bucketed per exec
// host (stable counting sort, preserving the protocol's issue order),
// each distinct host gets a goroutine that drains its inbox in virtual
// time, and the drivers folds the per-op completion times back into
// the peer clocks once every host reports in.
func (p *Plane) runPhase(ops []Op, completion *float64) {
	if len(ops) == 0 {
		return
	}
	p.active = p.active[:0]
	for _, op := range ops {
		if p.count[op.Exec] == 0 {
			p.active = append(p.active, op.Exec)
		}
		p.count[op.Exec]++
	}
	if cap(p.msgbuf) < len(ops) {
		p.msgbuf = make([]msg, len(ops))
	}
	p.msgbuf = p.msgbuf[:len(ops)]
	if cap(p.dones) < len(ops) {
		p.dones = make([]float64, len(ops))
	}
	p.dones = p.dones[:len(ops)]
	var off int32
	for _, e := range p.active {
		p.offset[e] = off
		off += p.count[e]
		p.count[e] = 0
	}
	for i, op := range ops {
		pos := p.offset[op.Exec] + p.count[op.Exec]
		p.count[op.Exec]++
		p.msgbuf[pos] = msg{issue: p.clock[op.Peer], delay: p.delay(op), idx: int32(i)}
	}
	// One goroutine per serving host; the batched inbox is one channel
	// send, so even the exact protocol's millions of rounds cost a
	// handful of channel operations per phase.
	for _, e := range p.active {
		go p.host(e)
		lo := p.offset[e]
		hi := lo + p.count[e]
		p.inbox[e] <- hostIn{msgs: p.msgbuf[lo:hi], base: p.clock[e]}
	}
	for range p.active {
		out := <-p.done
		p.clock[out.exec] = out.clock
		p.count[out.exec] = 0
	}
	for i, op := range ops {
		t := p.dones[i]
		if p.clock[op.Peer] < t {
			p.clock[op.Peer] = t
		}
		if *completion < t {
			*completion = t
		}
	}
}

// host is one phase of one exec node's goroutine: it drains its inbox
// in order, advancing its virtual clock past each request's issue time
// plus the link crossing, and reports its final clock. Completion
// times land in the shared dones slice at disjoint indices (each op
// belongs to exactly one host), so the only cross-goroutine hand-off
// is the two channel operations.
func (p *Plane) host(e int32) {
	in := <-p.inbox[e]
	rc := in.base
	for _, m := range in.msgs {
		t := m.issue
		if rc > t {
			t = rc
		}
		t += m.delay
		rc = t
		p.dones[m.idx] = t
	}
	p.done <- hostOut{exec: e, clock: rc}
}
