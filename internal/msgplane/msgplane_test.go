package msgplane

import (
	"math"
	"runtime"
	"testing"
	"time"

	"repro/internal/hw"
)

const eps = 1e-12

func approx(a, b float64) bool {
	if a == b {
		return true
	}
	d := math.Abs(a - b)
	m := math.Max(math.Abs(a), math.Abs(b))
	return d <= eps*math.Max(m, 1)
}

// round builds a full request/response round op.
func round(exec, peer int32, bytes float64, phase int32) Op {
	return Op{Exec: exec, Peer: peer, Bytes: bytes, Latency: true, Phase: phase}
}

func TestSingleRound(t *testing.T) {
	topo := hw.Cluster(2, 1) // two hosts, one socket each: net link
	p := New(topo)
	link := topo.Link(0, 1)
	want := link.Latency + 64/link.Bandwidth
	total, oend := p.Execute(nil, []Op{round(0, 1, 64, 0)})
	if !approx(total, want) {
		t.Fatalf("total = %g, want %g", total, want)
	}
	if oend != 0 {
		t.Fatalf("overlapEnd = %g, want 0 (no overlapped script)", oend)
	}
}

func TestSerializesThroughOneExec(t *testing.T) {
	// Three peers funneling through exec node 0: the host goroutine
	// drains its inbox in order, so the makespan is the sum of the
	// crossing costs — the exact-protocol serialization property.
	topo := hw.Cluster(4, 1)
	p := New(topo)
	var ops []Op
	want := 0.0
	for peer := int32(1); peer <= 3; peer++ {
		ops = append(ops, round(0, peer, 128, 0))
		l := topo.Link(0, int(peer))
		want += l.Latency + 128/l.Bandwidth
	}
	total, _ := p.Execute(nil, ops)
	if !approx(total, want) {
		t.Fatalf("total = %g, want serialized sum %g", total, want)
	}
}

func TestParallelExecsOverlap(t *testing.T) {
	// Two independent exec hosts serve one round each in the same
	// phase: the makespan is the max, not the sum.
	topo := hw.Cluster(2, 2) // nodes 0,1 on host 0; 2,3 on host 1
	p := New(topo)
	ops := []Op{
		round(0, 2, 256, 0), // net crossing
		round(1, 3, 256, 0), // net crossing, disjoint endpoints
	}
	l := topo.Link(0, 2)
	want := l.Latency + 256/l.Bandwidth
	total, _ := p.Execute(nil, ops)
	if !approx(total, want) {
		t.Fatalf("total = %g, want parallel max %g", total, want)
	}
}

func TestPhaseBarrier(t *testing.T) {
	// A phase-1 op between endpoints untouched by phase 0 still waits
	// for its own clocks only; a phase-1 op reusing phase 0's endpoints
	// queues behind them. Both rounds on the same pair across phases
	// must therefore sum.
	topo := hw.Cluster(2, 1)
	p := New(topo)
	l := topo.Link(0, 1)
	one := l.Latency + 64/l.Bandwidth
	total, _ := p.Execute(nil, []Op{round(0, 1, 64, 0), round(0, 1, 64, 1)})
	if !approx(total, 2*one) {
		t.Fatalf("total = %g, want sequential %g", total, 2*one)
	}
}

func TestOverlapSplit(t *testing.T) {
	// The overlapped script's makespan is reported as overlapEnd, and
	// critical ops start no earlier than that barrier even on idle
	// links: measured critical wall is total - overlapEnd.
	topo := hw.Cluster(2, 2)
	p := New(topo)
	over := []Op{round(0, 2, 512, 0)}
	crit := []Op{round(1, 3, 64, 0)}
	lo := topo.Link(0, 2)
	lc := topo.Link(1, 3)
	wantOver := lo.Latency + 512/lo.Bandwidth
	wantTotal := wantOver + lc.Latency + 64/lc.Bandwidth
	total, oend := p.Execute(over, crit)
	if !approx(oend, wantOver) {
		t.Fatalf("overlapEnd = %g, want %g", oend, wantOver)
	}
	if !approx(total, wantTotal) {
		t.Fatalf("total = %g, want %g", total, wantTotal)
	}
}

func TestLocalAndDownLinksAreFree(t *testing.T) {
	topo := hw.Cluster(2, 2)
	// Partition the cross-host pair (0,2).
	l := topo.Link(0, 2)
	l.Down = true
	topo.SetLink(0, 2, l)
	p := New(topo)
	ops := []Op{
		round(0, 0, 1024, 0), // self: free
		round(0, 2, 1024, 0), // down link: free, meter skips it too
	}
	total, _ := p.Execute(nil, ops)
	if total != 0 {
		t.Fatalf("total = %g, want 0 for local/down traffic", total)
	}
}

func TestNilPlane(t *testing.T) {
	var p *Plane
	total, oend := p.Execute(nil, []Op{round(0, 1, 64, 0)})
	if total != 0 || oend != 0 {
		t.Fatalf("nil plane Execute = (%g, %g), want (0, 0)", total, oend)
	}
	if New(nil) != nil {
		t.Fatal("New(nil topology) should return nil")
	}
}

func TestDeterministic(t *testing.T) {
	topo := hw.Cluster(2, 2)
	p := New(topo)
	var ops []Op
	for ph := int32(0); ph < 4; ph++ {
		for e := int32(0); e < 4; e++ {
			for peer := int32(0); peer < 4; peer++ {
				ops = append(ops, round(e, peer, float64(64+8*peer), ph))
			}
		}
	}
	t1, o1 := p.Execute(ops[:16], ops[16:])
	for i := 0; i < 10; i++ {
		t2, o2 := p.Execute(ops[:16], ops[16:])
		if t1 != t2 || o1 != o2 {
			t.Fatalf("run %d: (%g, %g) != first run (%g, %g)", i, t2, o2, t1, o1)
		}
	}
	if t1 <= 0 || o1 <= 0 || o1 > t1 {
		t.Fatalf("implausible makespan: total %g, overlapEnd %g", t1, o1)
	}
}

func TestNoGoroutineLeak(t *testing.T) {
	topo := hw.Cluster(2, 2)
	p := New(topo)
	before := runtime.NumGoroutine()
	ops := []Op{round(0, 1, 64, 0), round(2, 3, 64, 0)}
	for i := 0; i < 100; i++ {
		p.Execute(ops, ops)
	}
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		runtime.Gosched()
		time.Sleep(time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > before {
		t.Fatalf("goroutines leaked: %d before, %d after", before, g)
	}
}
