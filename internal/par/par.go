// Package par provides the shared worker pool the engines use to fan
// per-table work across CPUs. Embedding tables are independent (separate
// scratchpad managers, separate storage arrays, separate CPU tables), so
// every per-table stage loop parallelizes without locks; the pool gives
// all engines one Workers knob and one deterministic fan-out shape.
//
// Determinism contract: ForEach callers write per-index results into
// preallocated slots and reduce serially in index order afterward, so a
// parallel run produces bit-identical output to Workers=1 (the
// equivalence tests rely on this).
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Pool bounds the parallelism of ForEach fan-outs. The zero-size (nil)
// pool degrades to serial execution, so callers never need a nil check.
// Goroutines are spawned per call rather than parked permanently: the
// fan-out granularity is one pipeline stage (microseconds of work per
// table), so spawn cost is negligible, and pools need no lifecycle
// management — an Env can be dropped without leaking workers.
type Pool struct {
	workers int
}

// New returns a pool running at most workers tasks concurrently;
// workers <= 0 selects GOMAXPROCS.
func New(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{workers: workers}
}

// Workers returns the configured parallelism (1 for a nil pool).
func (p *Pool) Workers() int {
	if p == nil {
		return 1
	}
	return p.workers
}

// ForEach runs fn(i) for every i in [0, n), using up to Workers()
// goroutines (the caller participates). It returns when all calls have
// completed.
func (p *Pool) ForEach(n int, fn func(i int)) {
	_ = p.ForEachErr(n, func(i int) error {
		fn(i)
		return nil
	})
}

// ForEachErr is ForEach over a fallible body. Every index runs even when
// some fail; the returned error is the failing call with the lowest
// index, which keeps error reporting deterministic under parallelism.
func (p *Pool) ForEachErr(n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	w := p.Workers()
	if w > n {
		w = n
	}
	if w <= 1 {
		var first error
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil && first == nil {
				first = err
			}
		}
		return first
	}

	var next atomic.Int64
	var mu sync.Mutex
	firstIdx := n
	var firstErr error
	panicIdx := n
	var panicVal any
	body := func() {
		for {
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			err, pv, panicked := protect(fn, i)
			if panicked {
				// A panic must not unwind through the fan-out: if it
				// escaped the caller's inline body here, wg.Wait()
				// would be skipped and the spawned workers would keep
				// mutating shared state while the caller's recovery
				// handler runs. Park it, stop handing out indices, and
				// let the caller rethrow after every worker has
				// drained. The lowest panicking index wins, keeping the
				// rethrown value deterministic under parallelism like
				// the error path.
				mu.Lock()
				if i < panicIdx {
					panicIdx, panicVal = i, pv
				}
				mu.Unlock()
				next.Store(int64(n))
				return
			}
			if err != nil {
				mu.Lock()
				if i < firstIdx {
					firstIdx, firstErr = i, err
				}
				mu.Unlock()
			}
		}
	}
	var wg sync.WaitGroup
	wg.Add(w - 1)
	for k := 0; k < w-1; k++ {
		go func() {
			defer wg.Done()
			body()
		}()
	}
	body() // the caller is worker 0
	wg.Wait()
	if panicIdx < n {
		panic(panicVal)
	}
	return firstErr
}

// protect runs fn(i), converting a panic into a value instead of
// letting it unwind (panicked distinguishes panic(nil) from no panic).
func protect(fn func(i int) error, i int) (err error, pv any, panicked bool) {
	defer func() {
		if panicked {
			pv = recover()
		}
	}()
	panicked = true
	err = fn(i)
	panicked = false
	return
}
