package par

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestForEachCoversAllIndices(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8, 64} {
		for _, n := range []int{0, 1, 2, 7, 8, 100} {
			p := New(workers)
			hits := make([]atomic.Int32, n)
			p.ForEach(n, func(i int) { hits[i].Add(1) })
			for i := range hits {
				if got := hits[i].Load(); got != 1 {
					t.Fatalf("workers=%d n=%d: index %d ran %d times", workers, n, i, got)
				}
			}
		}
	}
}

func TestNilPoolIsSerial(t *testing.T) {
	var p *Pool
	if p.Workers() != 1 {
		t.Fatalf("nil pool Workers = %d, want 1", p.Workers())
	}
	order := []int{}
	p.ForEach(5, func(i int) { order = append(order, i) }) // no race: serial
	for i, v := range order {
		if v != i {
			t.Fatalf("nil pool ran out of order: %v", order)
		}
	}
}

func TestForEachErrLowestIndexWins(t *testing.T) {
	for _, workers := range []int{1, 4} {
		p := New(workers)
		err := p.ForEachErr(50, func(i int) error {
			if i%10 == 3 { // fails at 3, 13, 23, ...
				return fmt.Errorf("index %d", i)
			}
			return nil
		})
		if err == nil || err.Error() != "index 3" {
			t.Fatalf("workers=%d: err = %v, want index 3", workers, err)
		}
	}
}

func TestForEachErrAllIndicesRunDespiteError(t *testing.T) {
	p := New(4)
	var ran atomic.Int32
	sentinel := errors.New("boom")
	err := p.ForEachErr(32, func(i int) error {
		ran.Add(1)
		if i == 0 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want sentinel", err)
	}
	if ran.Load() != 32 {
		t.Fatalf("ran %d of 32 indices", ran.Load())
	}
}

func TestDefaultWorkersIsGOMAXPROCS(t *testing.T) {
	if New(0).Workers() < 1 {
		t.Fatal("New(0) must resolve to at least 1 worker")
	}
	if New(-3).Workers() < 1 {
		t.Fatal("New(-3) must resolve to at least 1 worker")
	}
}

// TestConcurrentForEach exercises two simultaneous fan-outs on one pool
// (the parallel pipeline runs several stages' ForEach concurrently).
func TestConcurrentForEach(t *testing.T) {
	p := New(4)
	done := make(chan bool, 2)
	for g := 0; g < 2; g++ {
		go func() {
			var sum atomic.Int64
			p.ForEach(1000, func(i int) { sum.Add(int64(i)) })
			done <- sum.Load() == 999*1000/2
		}()
	}
	for g := 0; g < 2; g++ {
		if !<-done {
			t.Fatal("concurrent ForEach lost updates")
		}
	}
}
