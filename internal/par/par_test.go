package par

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func TestForEachCoversAllIndices(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8, 64} {
		for _, n := range []int{0, 1, 2, 7, 8, 100} {
			p := New(workers)
			hits := make([]atomic.Int32, n)
			p.ForEach(n, func(i int) { hits[i].Add(1) })
			for i := range hits {
				if got := hits[i].Load(); got != 1 {
					t.Fatalf("workers=%d n=%d: index %d ran %d times", workers, n, i, got)
				}
			}
		}
	}
}

func TestNilPoolIsSerial(t *testing.T) {
	var p *Pool
	if p.Workers() != 1 {
		t.Fatalf("nil pool Workers = %d, want 1", p.Workers())
	}
	order := []int{}
	p.ForEach(5, func(i int) { order = append(order, i) }) // no race: serial
	for i, v := range order {
		if v != i {
			t.Fatalf("nil pool ran out of order: %v", order)
		}
	}
}

func TestForEachErrLowestIndexWins(t *testing.T) {
	for _, workers := range []int{1, 4} {
		p := New(workers)
		err := p.ForEachErr(50, func(i int) error {
			if i%10 == 3 { // fails at 3, 13, 23, ...
				return fmt.Errorf("index %d", i)
			}
			return nil
		})
		if err == nil || err.Error() != "index 3" {
			t.Fatalf("workers=%d: err = %v, want index 3", workers, err)
		}
	}
}

func TestForEachErrAllIndicesRunDespiteError(t *testing.T) {
	p := New(4)
	var ran atomic.Int32
	sentinel := errors.New("boom")
	err := p.ForEachErr(32, func(i int) error {
		ran.Add(1)
		if i == 0 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want sentinel", err)
	}
	if ran.Load() != 32 {
		t.Fatalf("ran %d of 32 indices", ran.Load())
	}
}

func TestDefaultWorkersIsGOMAXPROCS(t *testing.T) {
	if New(0).Workers() < 1 {
		t.Fatal("New(0) must resolve to at least 1 worker")
	}
	if New(-3).Workers() < 1 {
		t.Fatal("New(-3) must resolve to at least 1 worker")
	}
}

// TestPanicDoesNotLeakWorkers is the regression test for the fan-out
// shutdown leak: a panic in the caller's inline body used to unwind
// past wg.Wait(), leaving the spawned workers running (and still
// consuming indices) while the caller's recovery handler proceeded.
// The fan-out must contain the panic, drain every worker, and rethrow.
func TestPanicDoesNotLeakWorkers(t *testing.T) {
	before := runtime.NumGoroutine()
	p := New(8)
	var after atomic.Int32
	func() {
		defer func() {
			if r := recover(); r == nil {
				t.Fatal("panic did not propagate out of ForEachErr")
			}
		}()
		p.ForEachErr(64, func(i int) error {
			if i == 5 {
				panic("stage blew up")
			}
			if i > 5 {
				after.Add(1)
			}
			return nil
		})
	}()
	// Every spawned worker must be gone by the time the rethrown panic
	// reaches the caller — if any were still draining indices, this
	// counter could still be moving and the goroutine count would sit
	// above the baseline.
	settled := after.Load()
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > before {
		t.Fatalf("goroutines leaked across panic: %d before, %d after", before, g)
	}
	if moved := after.Load(); moved != settled {
		t.Fatalf("workers still consuming indices after rethrow: %d -> %d", settled, moved)
	}
}

// TestPanicLowestIndexWins pins the determinism of the rethrown value
// when several workers panic in the same fan-out: index 0 is always
// handed out before the stop, so with every index panicking the
// rethrown value must be index 0's on any worker count.
func TestPanicLowestIndexWins(t *testing.T) {
	for _, workers := range []int{1, 4, 8} {
		p := New(workers)
		func() {
			defer func() {
				if r := recover(); r != "panic 0" {
					t.Fatalf("workers=%d: rethrow = %v, want panic 0", workers, r)
				}
			}()
			p.ForEachErr(32, func(i int) error {
				panic(fmt.Sprintf("panic %d", i))
			})
		}()
	}
}

// TestConcurrentForEach exercises two simultaneous fan-outs on one pool
// (the parallel pipeline runs several stages' ForEach concurrently).
func TestConcurrentForEach(t *testing.T) {
	p := New(4)
	done := make(chan bool, 2)
	for g := 0; g < 2; g++ {
		go func() {
			var sum atomic.Int64
			p.ForEach(1000, func(i int) { sum.Add(int64(i)) })
			done <- sum.Load() == 999*1000/2
		}()
	}
	for g := 0; g < 2; g++ {
		if !<-done {
			t.Fatal("concurrent ForEach lost updates")
		}
	}
}
