package core

import (
	"fmt"
	"sync"
)

// Stage enumerates ScratchPipe's six pipeline stages (Figure 10).
type Stage int

const (
	// StageLoad reads the next mini-batch (and its look-ahead window)
	// from the training dataset.
	StageLoad Stage = iota
	// StagePlan queries the Hit-Map, schedules fills/evictions, and
	// installs hold protection (the paper's control unit).
	StagePlan
	// StageCollect gathers missed rows from the CPU tables and victim
	// rows from the GPU scratchpad into staging buffers.
	StageCollect
	// StageExchange ships the staged rows across PCIe in both
	// directions simultaneously.
	StageExchange
	// StageInsert fills missed rows into the scratchpad and writes
	// evicted rows back into the CPU tables.
	StageInsert
	// StageTrain runs embedding forward, MLP forward/backward, and the
	// embedding parameter update entirely against the GPU scratchpad.
	StageTrain
	// NumStages is the pipeline depth.
	NumStages
)

// String implements fmt.Stringer.
func (s Stage) String() string {
	switch s {
	case StageLoad:
		return "Load"
	case StagePlan:
		return "Plan"
	case StageCollect:
		return "Collect"
	case StageExchange:
		return "Exchange"
	case StageInsert:
		return "Insert"
	case StageTrain:
		return "Train"
	}
	return fmt.Sprintf("Stage(%d)", int(s))
}

// Stages lists all stages in pipeline order.
var Stages = []Stage{StageLoad, StagePlan, StageCollect, StageExchange, StageInsert, StageTrain}

// Job is the per-mini-batch state an engine threads through the pipeline.
type Job interface {
	// Seq returns the batch sequence number (for diagnostics).
	Seq() int
}

// StageFunc executes one stage of one job during one pipeline cycle.
type StageFunc func(cycle int, job Job) error

// Pipeline drives jobs through the six stages. Each RunCycle advances
// every in-flight job by one stage; with Parallel set, the six stage
// executions of a cycle run in separate goroutines — the configuration
// under which any violation of the hold-mask discipline becomes a data
// race that `go test -race` (and the HazardChecker) will catch.
type Pipeline struct {
	stages   [NumStages]StageFunc
	inFlight [NumStages]Job // inFlight[s] is the job executing stage s next cycle
	lastExec [NumStages]Job // stage occupancy during the most recent cycle
	cycle    int
	parallel bool
	// onCycleStart, if set, is invoked before each cycle's stage
	// executions with the cycle number (used to rotate the hazard
	// checker's window).
	onCycleStart func(cycle int)
}

// NewPipeline builds a pipeline with one function per stage; nil stage
// functions are treated as no-ops.
func NewPipeline(stages [NumStages]StageFunc, parallel bool) *Pipeline {
	return &Pipeline{stages: stages, parallel: parallel}
}

// SetCycleStartHook registers a function called at the start of each cycle.
func (p *Pipeline) SetCycleStartHook(f func(cycle int)) { p.onCycleStart = f }

// Cycle returns the number of completed cycles.
func (p *Pipeline) Cycle() int { return p.cycle }

// LastExecuted returns the stage occupancy of the most recent cycle:
// element s is the job whose stage s ran (nil if the slot was empty). The
// engine uses it to compute the cycle's critical-path latency.
func (p *Pipeline) LastExecuted() [NumStages]Job { return p.lastExec }

// AtStage returns the job that will execute stage s next cycle, or nil.
func (p *Pipeline) AtStage(s Stage) Job { return p.inFlight[s] }

// InFlight returns the number of jobs currently inside the pipeline.
func (p *Pipeline) InFlight() int {
	n := 0
	for _, j := range p.inFlight {
		if j != nil {
			n++
		}
	}
	return n
}

// RunCycle injects newJob into the Load stage (nil to drain) and executes
// one pipeline cycle. It returns the job that completed Train this cycle
// (nil while the pipeline is filling) and the first stage error, if any.
func (p *Pipeline) RunCycle(newJob Job) (completed Job, err error) {
	// Advance: the job that finished stage s last cycle enters s+1. The
	// Train position was cleared when its job completed, so nothing
	// falls off the end.
	for s := NumStages - 1; s >= 1; s-- {
		p.inFlight[s] = p.inFlight[s-1]
	}
	p.inFlight[0] = newJob
	p.lastExec = p.inFlight

	if p.onCycleStart != nil {
		p.onCycleStart(p.cycle)
	}

	if p.parallel {
		var wg sync.WaitGroup
		errs := make([]error, NumStages)
		for s := 0; s < int(NumStages); s++ {
			job := p.inFlight[s]
			if job == nil || p.stages[s] == nil {
				continue
			}
			wg.Add(1)
			go func(s int, job Job) {
				defer wg.Done()
				errs[s] = p.stages[s](p.cycle, job)
			}(s, job)
		}
		wg.Wait()
		for s, e := range errs {
			if e != nil {
				return nil, fmt.Errorf("core: pipeline cycle %d stage %s: %w", p.cycle, Stage(s), e)
			}
		}
	} else {
		for s := 0; s < int(NumStages); s++ {
			job := p.inFlight[s]
			if job == nil || p.stages[s] == nil {
				continue
			}
			if e := p.stages[s](p.cycle, job); e != nil {
				return nil, fmt.Errorf("core: pipeline cycle %d stage %s: %w", p.cycle, Stage(s), e)
			}
		}
	}
	p.cycle++
	completed = p.inFlight[NumStages-1]
	p.inFlight[NumStages-1] = nil
	return completed, nil
}

// Drain runs cycles with no new jobs until the pipeline empties, invoking
// onComplete for each job that finishes Train.
func (p *Pipeline) Drain(onComplete func(Job) error) error {
	for p.InFlight() > 0 {
		done, err := p.RunCycle(nil)
		if err != nil {
			return err
		}
		if done != nil && onComplete != nil {
			if err := onComplete(done); err != nil {
				return err
			}
		}
	}
	return nil
}
