package core

// HeldBatch is one in-flight batch's hold set: the slots the batch
// protects from eviction until it is released.
type HeldBatch struct {
	Seq   int
	Slots []int32
}

// BatchRing is a growable FIFO of HeldBatch, shared by the unsharded
// scratchpad (one ring) and the sharded manager (one ring per shard). A
// naive slice-header FIFO (`q = q[1:]`) pins the whole backing array and
// leaks one slot per release for the lifetime of the run; the ring
// reuses its buffer in place.
type BatchRing struct {
	buf  []HeldBatch
	head int
	n    int
}

// Len returns the number of queued batches.
func (r *BatchRing) Len() int { return r.n }

// Push appends hb at the back of the FIFO.
func (r *BatchRing) Push(hb HeldBatch) {
	if r.n == len(r.buf) {
		grown := make([]HeldBatch, 2*len(r.buf)+1)
		for i := 0; i < r.n; i++ {
			grown[i] = r.buf[(r.head+i)%len(r.buf)]
		}
		r.buf = grown
		r.head = 0
	}
	r.buf[(r.head+r.n)%len(r.buf)] = hb
	r.n++
}

// Front returns the oldest batch; callers must check Len() > 0.
func (r *BatchRing) Front() HeldBatch { return r.buf[r.head] }

// At returns the i-th queued batch in FIFO order (0 = oldest); callers
// must check 0 <= i < Len(). The sharded manager's reshard path walks
// every shard's ring with it to re-bucket in-flight hold sets under a
// new hash partition.
func (r *BatchRing) At(i int) HeldBatch { return r.buf[(r.head+i)%len(r.buf)] }

// Pop removes and returns the oldest batch.
func (r *BatchRing) Pop() HeldBatch {
	hb := r.buf[r.head]
	r.buf[r.head] = HeldBatch{} // drop the slots reference
	r.head = (r.head + 1) % len(r.buf)
	r.n--
	return hb
}
