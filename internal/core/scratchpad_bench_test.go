package core

import (
	"math/rand"
	"testing"

	"repro/internal/cache"
)

// planHarness drives a scratchpad through a pipelined Plan/Release/Recycle
// steady state: `depth` batches in flight, pre-generated ID streams, and
// the future window wired exactly as the engine wires it.
type planHarness struct {
	sp      *Scratchpad
	batches [][]int64
	future  [][]int64 // reused projection buffer
	pending []*PlanResult
	depth   int
	seq     int
}

func newPlanHarness(tb testing.TB, slots, batchLen, depth, futureWin int) *planHarness {
	tb.Helper()
	cfg := Config{
		Slots:        slots,
		Policy:       cache.LRU,
		PastWindow:   depth - 1,
		FutureWindow: futureWin,
	}
	cfg.Reserve = WorstCaseReserve(cfg, batchLen)
	sp, err := NewScratchpad(cfg)
	if err != nil {
		tb.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	const distinct = 64
	h := &planHarness{
		sp:      sp,
		batches: make([][]int64, distinct),
		future:  make([][]int64, futureWin),
		depth:   depth,
	}
	idSpace := int64(slots * 4) // 4x the cache: steady eviction churn
	for i := range h.batches {
		ids := make([]int64, batchLen)
		for j := range ids {
			ids[j] = rng.Int63n(idSpace)
		}
		h.batches[i] = ids
	}
	return h
}

func (h *planHarness) batch(seq int) []int64 { return h.batches[seq%len(h.batches)] }

// step runs one pipeline beat: plan the next batch, and once `depth`
// batches are in flight, release + recycle the oldest.
func (h *planHarness) step(tb testing.TB) {
	for k := range h.future {
		h.future[k] = h.batch(h.seq + 1 + k)
	}
	res, err := h.sp.Plan(h.seq, h.batch(h.seq), h.future)
	if err != nil {
		tb.Fatal(err)
	}
	h.pending = append(h.pending, res)
	if len(h.pending) >= h.depth {
		oldSeq := h.seq - h.depth + 1
		if err := h.sp.Release(oldSeq); err != nil {
			tb.Fatal(err)
		}
		h.sp.Recycle(h.pending[0])
		copy(h.pending, h.pending[1:])
		h.pending = h.pending[:len(h.pending)-1]
	}
	h.seq++
}

// TestPlanWarmZeroAllocs is the hot-path regression guard: once the
// free lists and buffers have warmed up, a full Plan/Release/Recycle
// cycle must not allocate at all. (LRU policy: the paper's default; LFU
// allocates occasionally by design when its frequency-bucket map grows.)
func TestPlanWarmZeroAllocs(t *testing.T) {
	h := newPlanHarness(t, 2048, 512, 3, 2)
	for i := 0; i < 200; i++ { // warm every pool and slice capacity
		h.step(t)
	}
	allocs := testing.AllocsPerRun(100, func() { h.step(t) })
	if allocs != 0 {
		t.Fatalf("warm Plan path allocates %.1f times per cycle, want 0", allocs)
	}
}

// TestPlanRecycleReuse checks that recycled PlanResults really are reused
// (the pool is not silently bypassed) and produce correct fresh plans.
func TestPlanRecycleReuse(t *testing.T) {
	h := newPlanHarness(t, 256, 64, 2, 0)
	h.step(t) // first plan: pool empty, result pending
	if len(h.sp.planPool) != 0 {
		t.Fatalf("pool should be empty while plans are pending, has %d", len(h.sp.planPool))
	}
	h.step(t) // second plan: depth reached, oldest recycled into the pool
	if len(h.sp.planPool) != 1 {
		t.Fatalf("pool should hold the recycled plan, has %d", len(h.sp.planPool))
	}
	pooled := h.sp.planPool[0]
	h.step(t) // third plan must reuse the pooled result
	if h.pending[len(h.pending)-1] != pooled {
		t.Fatal("Plan did not reuse the recycled PlanResult")
	}
	// Drive enough steps that the pooled results cycle many times, then
	// validate the plan's invariants.
	for i := 0; i < 50; i++ {
		h.step(t)
	}
	res := h.pending[0]
	if len(res.UniqueIDs) != len(res.Slots) {
		t.Fatalf("UniqueIDs/Slots length mismatch: %d vs %d", len(res.UniqueIDs), len(res.Slots))
	}
	seen := map[int32]bool{}
	for i, id := range res.UniqueIDs {
		if res.Slots[i] < 0 {
			t.Fatalf("unresolved slot for id %d", id)
		}
		if got := res.Slot(id); got != res.Slots[i] {
			t.Fatalf("Slot(%d) = %d, Slots[%d] = %d", id, got, i, res.Slots[i])
		}
		if seen[res.Slots[i]] {
			t.Fatalf("slot %d assigned twice in one plan", res.Slots[i])
		}
		seen[res.Slots[i]] = true
	}
}

// TestReleaseRingReusesBuffer guards the FIFO slice-leak fix: a long
// Plan/Release stream must not grow the in-flight ring beyond the
// pipeline depth.
func TestReleaseRingReusesBuffer(t *testing.T) {
	h := newPlanHarness(t, 256, 64, 3, 0)
	for i := 0; i < 1000; i++ {
		h.step(t)
	}
	if got := h.sp.InFlight(); got != h.depth-1 && got != h.depth {
		t.Fatalf("in-flight %d, want ~%d", got, h.depth)
	}
	if n := len(h.sp.inFlight.buf); n > 8 {
		t.Fatalf("ring buffer grew to %d entries for pipeline depth %d", n, h.depth)
	}
}

// TestPinStampEquivalence proves the multi-epoch pin-stamp optimization
// changes nothing observable: two scratchpads with identical
// configuration and input streams — one forced onto the original
// stamp-every-plan discipline (pinValid=1), one using multi-epoch stamps
// — must emit bit-identical plans (slots, fills, evictions) and stats.
func TestPinStampEquivalence(t *testing.T) {
	for _, policy := range []cache.PolicyKind{cache.LRU, cache.LFU} {
		mk := func() *Scratchpad {
			cfg := Config{Slots: 512, Policy: policy, PolicySeed: 9, PastWindow: 3, FutureWindow: 2}
			cfg.Reserve = WorstCaseReserve(cfg, 96)
			sp, err := NewScratchpad(cfg)
			if err != nil {
				t.Fatal(err)
			}
			return sp
		}
		fast := mk()
		slow := mk()
		if fast.pinValid != 2 {
			t.Fatalf("pinValid = %d, want 2 (past 3 >= future 2)", fast.pinValid)
		}
		slow.pinValid = 1 // force the original per-plan pin discipline

		rng := rand.New(rand.NewSource(31))
		batches := make([][]int64, 128)
		for i := range batches {
			ids := make([]int64, 96)
			for j := range ids {
				ids[j] = rng.Int63n(2048) // 4x the cache: churn
			}
			batches[i] = ids
		}
		future := make([][]int64, 2)
		var pendA, pendB []*PlanResult
		for seq := 0; seq < 120; seq++ {
			future[0] = batches[(seq+1)%len(batches)]
			future[1] = batches[(seq+2)%len(batches)]
			a, err := fast.Plan(seq, batches[seq%len(batches)], future)
			if err != nil {
				t.Fatal(err)
			}
			b, err := slow.Plan(seq, batches[seq%len(batches)], future)
			if err != nil {
				t.Fatal(err)
			}
			if len(a.Slots) != len(b.Slots) || len(a.Fills) != len(b.Fills) || len(a.Evictions) != len(b.Evictions) {
				t.Fatalf("seq %d: plan shape diverged: %d/%d slots, %d/%d fills, %d/%d evictions",
					seq, len(a.Slots), len(b.Slots), len(a.Fills), len(b.Fills), len(a.Evictions), len(b.Evictions))
			}
			for i := range a.Slots {
				if a.Slots[i] != b.Slots[i] || a.UniqueIDs[i] != b.UniqueIDs[i] {
					t.Fatalf("seq %d: slot assignment diverged at %d", seq, i)
				}
			}
			for i := range a.Evictions {
				if a.Evictions[i] != b.Evictions[i] {
					t.Fatalf("seq %d: eviction diverged at %d: %+v vs %+v", seq, i, a.Evictions[i], b.Evictions[i])
				}
			}
			pendA, pendB = append(pendA, a), append(pendB, b)
			if len(pendA) >= 4 { // release at Train: past window 3
				old := seq - 3
				if err := fast.Release(old); err != nil {
					t.Fatal(err)
				}
				if err := slow.Release(old); err != nil {
					t.Fatal(err)
				}
				fast.Recycle(pendA[0])
				slow.Recycle(pendB[0])
				pendA, pendB = pendA[1:], pendB[1:]
			}
		}
		if fast.Stats() != slow.Stats() {
			t.Fatalf("%s: stats diverged:\nfast %+v\nslow %+v", policy, fast.Stats(), slow.Stats())
		}
	}
}

// BenchmarkPlan measures the steady-state Plan/Release/Recycle cycle —
// the control-plane cost the paper requires to hide inside the pipeline.
func BenchmarkPlan(b *testing.B) {
	h := newPlanHarness(b, 8192, 2048, 3, 2)
	for i := 0; i < 50; i++ {
		h.step(b)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.step(b)
	}
}

// BenchmarkPlanHighLocality measures the hit-dominated regime (IDs drawn
// from a space smaller than the cache: no evictions after warm-up).
func BenchmarkPlanHighLocality(b *testing.B) {
	cfg := Config{Slots: 8192, Policy: cache.LRU, PastWindow: 2, FutureWindow: 2}
	cfg.Reserve = WorstCaseReserve(cfg, 2048)
	sp, err := NewScratchpad(cfg)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	batches := make([][]int64, 16)
	for i := range batches {
		ids := make([]int64, 2048)
		for j := range ids {
			ids[j] = rng.Int63n(4096) // half the cache size
		}
		batches[i] = ids
	}
	future := make([][]int64, 2)
	var pending []*PlanResult
	step := func(seq int) {
		future[0] = batches[(seq+1)%len(batches)]
		future[1] = batches[(seq+2)%len(batches)]
		res, err := sp.Plan(seq, batches[seq%len(batches)], future)
		if err != nil {
			b.Fatal(err)
		}
		pending = append(pending, res)
		if len(pending) >= 3 {
			if err := sp.Release(seq - 2); err != nil {
				b.Fatal(err)
			}
			sp.Recycle(pending[0])
			copy(pending, pending[1:])
			pending = pending[:len(pending)-1]
		}
	}
	seq := 0
	for ; seq < 20; seq++ {
		step(seq)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		step(seq)
		seq++
	}
}
