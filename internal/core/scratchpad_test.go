package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/cache"
)

func testConfig(slots, reserve int) Config {
	return Config{
		Slots:        slots,
		Reserve:      reserve,
		Policy:       cache.LRU,
		PastWindow:   3,
		FutureWindow: 2,
	}
}

func mustPad(t *testing.T, cfg Config) *Scratchpad {
	t.Helper()
	sp, err := NewScratchpad(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return sp
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Slots: 0, Policy: cache.LRU},
		{Slots: 4, Reserve: -1, Policy: cache.LRU},
		{Slots: 4, PastWindow: -1, Policy: cache.LRU},
		{Slots: 4, FutureWindow: -1, Policy: cache.LRU},
		{Slots: 4},
		{Slots: 4, Policy: "bogus"},
	}
	for i, cfg := range bad {
		if _, err := NewScratchpad(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted: %+v", i, cfg)
		}
	}
}

func TestPlanHitsAndMisses(t *testing.T) {
	sp := mustPad(t, testConfig(4, 0))
	plan, err := sp.Plan(0, []int64{10, 20, 10}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if plan.OccMisses != 2 || plan.OccHits != 1 {
		t.Fatalf("occ hits/misses = %d/%d", plan.OccHits, plan.OccMisses)
	}
	if len(plan.Fills) != 2 || len(plan.Evictions) != 0 {
		t.Fatalf("fills %d evictions %d", len(plan.Fills), len(plan.Evictions))
	}
	if len(plan.UniqueIDs) != 2 || plan.UniqueIDs[0] != 10 || plan.UniqueIDs[1] != 20 {
		t.Fatalf("unique = %v", plan.UniqueIDs)
	}
	if plan.Slot(10) == plan.Slot(20) {
		t.Fatal("two IDs share a slot")
	}
	if err := sp.Release(0); err != nil {
		t.Fatal(err)
	}
	// Second batch hits.
	plan2, err := sp.Plan(1, []int64{10, 20}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if plan2.OccHits != 2 || len(plan2.Fills) != 0 {
		t.Fatalf("plan2 %+v", plan2)
	}
	if err := sp.Release(1); err != nil {
		t.Fatal(err)
	}
	st := sp.Stats()
	if st.Queries != 5 || st.Hits != 3 || st.Misses != 2 || st.Fills != 2 {
		t.Fatalf("stats %+v", st)
	}
}

func TestPlanSlotPanicsOnUnplannedID(t *testing.T) {
	sp := mustPad(t, testConfig(4, 0))
	plan, err := sp.Plan(0, []int64{1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("Slot(unplanned) did not panic")
		}
	}()
	plan.Slot(99)
}

func TestEvictionWritesBack(t *testing.T) {
	sp := mustPad(t, testConfig(2, 0))
	if _, err := sp.Plan(0, []int64{1, 2}, nil); err != nil {
		t.Fatal(err)
	}
	if err := sp.Release(0); err != nil {
		t.Fatal(err)
	}
	plan, err := sp.Plan(1, []int64{3, 4}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Evictions) != 2 {
		t.Fatalf("evictions = %v", plan.Evictions)
	}
	// Every eviction carries the displaced key for write-back.
	seen := map[int64]bool{}
	for _, e := range plan.Evictions {
		seen[e.OldID] = true
	}
	if !seen[1] || !seen[2] {
		t.Fatalf("evicted keys %v, want 1 and 2", seen)
	}
	if sp.Contains(1) || sp.Contains(2) || !sp.Contains(3) || !sp.Contains(4) {
		t.Fatal("hit map inconsistent after eviction")
	}
}

func TestHoldsPreventEviction(t *testing.T) {
	sp := mustPad(t, testConfig(2, 2))
	if _, err := sp.Plan(0, []int64{1, 2}, nil); err != nil {
		t.Fatal(err)
	}
	// Batch 0 not released: its slots are protected, so batch 1's
	// misses must land in reserve slots.
	plan, err := sp.Plan(1, []int64{3, 4}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Evictions) != 0 {
		t.Fatalf("protected slots were evicted: %v", plan.Evictions)
	}
	if plan.ReserveAllocs != 2 {
		t.Fatalf("reserve allocs = %d", plan.ReserveAllocs)
	}
	if sp.Stats().ReservePeak != 2 {
		t.Fatalf("reserve peak = %d", sp.Stats().ReservePeak)
	}
}

func TestPlanExhaustion(t *testing.T) {
	sp := mustPad(t, testConfig(1, 0))
	if _, err := sp.Plan(0, []int64{1}, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := sp.Plan(1, []int64{2}, nil); err == nil {
		t.Fatal("expected exhaustion error")
	}
}

func TestFutureWindowPinning(t *testing.T) {
	sp := mustPad(t, testConfig(2, 2))
	if _, err := sp.Plan(0, []int64{1, 2}, nil); err != nil {
		t.Fatal(err)
	}
	if err := sp.Release(0); err != nil {
		t.Fatal(err)
	}
	// Rows 1 and 2 are unheld now, but the future batches need row 1:
	// victim selection must spare it and evict row 2 only.
	plan, err := sp.Plan(1, []int64{3}, [][]int64{{1}, {}})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Evictions) != 1 || plan.Evictions[0].OldID != 2 {
		t.Fatalf("evictions = %v, want only row 2", plan.Evictions)
	}
	if !sp.Contains(1) {
		t.Fatal("future-pinned row was evicted")
	}
}

func TestCurrentBatchSelfPinning(t *testing.T) {
	// Row 1 is cached and appears LATE in the current batch. An early
	// miss must not evict it, else the later occurrence would re-read a
	// stale CPU copy.
	sp := mustPad(t, testConfig(1, 4))
	if _, err := sp.Plan(0, []int64{1}, nil); err != nil {
		t.Fatal(err)
	}
	if err := sp.Release(0); err != nil {
		t.Fatal(err)
	}
	plan, err := sp.Plan(1, []int64{9, 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range plan.Evictions {
		if e.OldID == 1 {
			t.Fatal("current batch's own row was evicted mid-plan")
		}
	}
	if plan.OccHits != 1 {
		t.Fatalf("occ hits = %d, want 1 (row 1 still cached)", plan.OccHits)
	}
}

func TestReleaseOrdering(t *testing.T) {
	sp := mustPad(t, testConfig(8, 0))
	if _, err := sp.Plan(0, []int64{1}, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := sp.Plan(1, []int64{2}, nil); err != nil {
		t.Fatal(err)
	}
	if err := sp.Release(1); err == nil {
		t.Fatal("out-of-order release accepted")
	}
	if err := sp.Release(0); err != nil {
		t.Fatal(err)
	}
	if err := sp.Release(1); err != nil {
		t.Fatal(err)
	}
	if err := sp.Release(2); err == nil {
		t.Fatal("release with nothing in flight accepted")
	}
}

func TestFutureWindowBound(t *testing.T) {
	sp := mustPad(t, testConfig(4, 0))
	if _, err := sp.Plan(0, []int64{1}, [][]int64{{2}, {3}, {4}}); err == nil {
		t.Fatal("future window overflow accepted")
	}
}

// TestHitMapStorageBijectionProperty: after any sequence of plans and
// releases, the Hit-Map and the slot key array are inverse mappings, and
// no two IDs share a slot.
func TestHitMapStorageBijectionProperty(t *testing.T) {
	f := func(opsRaw []uint8, seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		sp, err := NewScratchpad(Config{
			Slots: 6, Reserve: 40, Policy: cache.LRU,
			PastWindow: 3, FutureWindow: 2,
		})
		if err != nil {
			return false
		}
		seq := 0
		inFlight := 0
		for _, op := range opsRaw {
			if op%3 == 0 && inFlight > 0 {
				if err := sp.Release(seq - inFlight); err != nil {
					return false
				}
				inFlight--
				continue
			}
			if inFlight >= 4 {
				continue // keep within window capacity
			}
			n := 1 + int(op%5)
			ids := make([]int64, n)
			for i := range ids {
				ids[i] = int64(rng.Intn(30))
			}
			if _, err := sp.Plan(seq, ids, nil); err != nil {
				return false
			}
			seq++
			inFlight++
		}
		// Verify bijection.
		count := 0
		ok := true
		sp.ForEach(func(id int64, slot int32) {
			count++
			if sp.Key(slot) != id {
				ok = false
			}
		})
		return ok && count == sp.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestHeldNeverEvictedProperty: a slot is never evicted while held.
func TestHeldNeverEvictedProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		sp, err := NewScratchpad(Config{
			Slots: 5, Reserve: 60, Policy: cache.LRU,
			PastWindow: 3, FutureWindow: 2,
		})
		if err != nil {
			return false
		}
		// Keep 3 batches in flight; track which slots each holds.
		heldSlots := map[int]map[int32]bool{}
		for seq := 0; seq < 12; seq++ {
			ids := make([]int64, 4)
			for i := range ids {
				ids[i] = int64(rng.Intn(25))
			}
			plan, err := sp.Plan(seq, ids, nil)
			if err != nil {
				return false
			}
			// No eviction may target a slot held by an in-flight batch.
			for _, e := range plan.Evictions {
				for _, slots := range heldSlots {
					if slots[e.Slot] {
						return false
					}
				}
			}
			hs := map[int32]bool{}
			for _, s := range plan.Slots {
				hs[s] = true
			}
			heldSlots[seq] = hs
			if seq >= 3 {
				rel := seq - 3
				if err := sp.Release(rel); err != nil {
					return false
				}
				delete(heldSlots, rel)
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestWorstCaseReserve(t *testing.T) {
	cfg := Config{Slots: 10, Policy: cache.LRU, PastWindow: 3, FutureWindow: 2}
	// Window = 6 batches; 4 unique IDs each -> 25 slots needed, 10
	// present -> reserve 15.
	if got := WorstCaseReserve(cfg, 4); got != 15 {
		t.Fatalf("reserve = %d, want 15", got)
	}
	cfg.Slots = 1000
	if got := WorstCaseReserve(cfg, 4); got != 0 {
		t.Fatalf("reserve = %d, want 0", got)
	}
}

func TestPrewarm(t *testing.T) {
	sp := mustPad(t, testConfig(10, 0))
	rng := rand.New(rand.NewSource(11))
	var filled []int64
	n := sp.Prewarm(func() int64 { return int64(rng.Intn(100)) },
		func(id int64, slot int32) { filled = append(filled, id) })
	if n != 10 || sp.Len() != 10 || len(filled) != 10 {
		t.Fatalf("prewarm inserted %d, len %d, callbacks %d", n, sp.Len(), len(filled))
	}
	for _, id := range filled {
		if !sp.Contains(id) {
			t.Fatalf("prewarmed id %d missing", id)
		}
	}
	// Prewarm terminates even when the support is smaller than the
	// cache.
	sp2 := mustPad(t, testConfig(10, 0))
	n2 := sp2.Prewarm(func() int64 { return 3 }, nil)
	if n2 != 1 {
		t.Fatalf("tiny-support prewarm inserted %d", n2)
	}
}

func TestScratchpadAccessors(t *testing.T) {
	sp := mustPad(t, Config{Slots: 3, Reserve: 2, Policy: cache.LFU, PastWindow: 1, FutureWindow: 1})
	if sp.Capacity() != 3 || sp.TotalSlots() != 5 {
		t.Fatalf("capacity %d total %d", sp.Capacity(), sp.TotalSlots())
	}
	plan, err := sp.Plan(0, []int64{7}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sp.InFlight() != 1 {
		t.Fatalf("in flight %d", sp.InFlight())
	}
	if !sp.Held(plan.Slot(7)) {
		t.Fatal("planned slot not held")
	}
	if sp.Key(plan.Slot(7)) != 7 {
		t.Fatal("Key mismatch")
	}
}
