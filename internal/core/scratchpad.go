// Package core implements the paper's primary contribution: the
// ScratchPipe GPU scratchpad — an embedding cache that "always hits"
// because the Plan stage looks forward in the training dataset — together
// with the 6-stage software pipeline and the hold-mask hazard discipline of
// §IV (Algorithm 1, Figures 8-11).
//
// The Scratchpad here is the control plane only: it maps sparse feature IDs
// to cache slots and decides what to prefetch, evict, and protect. Moving
// the actual embedding vectors (and accounting for the bytes moved) is the
// training engine's job, which lets the same control logic drive both the
// functional float32 simulation and the paper-scale metadata simulation.
package core

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/intmap"
)

// Config configures one per-table scratchpad manager. The paper
// instantiates one manager per embedding table (§VI-G).
type Config struct {
	// Slots is the nominal cache capacity in embedding rows (the
	// "2-10% of the CPU table" swept in the evaluation).
	Slots int
	// Reserve is extra slot capacity provisioned for the worst case in
	// which every slot the sliding window needs is distinct (§VI-D's
	// 960 MB provisioning). Victim selection prefers evicting over
	// consuming reserve slots; reserve usage is reported in Stats.
	Reserve int
	// Policy selects the replacement policy among unprotected slots
	// (paper default LRU; §VI-E also studies LFU and Random).
	Policy cache.PolicyKind
	// PolicySeed seeds the Random policy.
	PolicySeed int64
	// PastWindow is the number of previous in-flight mini-batches whose
	// slots may not be evicted (3 in the paper: the Plan->Train
	// distance, removing RAW-2/3).
	PastWindow int
	// FutureWindow is the number of upcoming mini-batches whose
	// currently-cached rows may not be evicted (2 in the paper: the
	// Collect->Insert distance, removing RAW-4).
	FutureWindow int
}

// DefaultWindows returns the paper's pipeline window shape.
func DefaultWindows() (past, future int) { return 3, 2 }

// Validate reports a descriptive error for an unusable configuration.
func (c Config) Validate() error {
	if c.Slots <= 0 {
		return fmt.Errorf("core: scratchpad: Slots %d <= 0", c.Slots)
	}
	if c.Reserve < 0 {
		return fmt.Errorf("core: scratchpad: Reserve %d < 0", c.Reserve)
	}
	if c.PastWindow < 0 || c.FutureWindow < 0 {
		return fmt.Errorf("core: scratchpad: negative window (past %d, future %d)", c.PastWindow, c.FutureWindow)
	}
	if c.Policy == "" {
		return fmt.Errorf("core: scratchpad: empty policy")
	}
	return nil
}

// Fill schedules one missed embedding: fetch row ID from the CPU table
// ([Collect]) and store it into Slot ([Insert]).
type Fill struct {
	ID   int64
	Slot int32
}

// Eviction schedules one victim: read Slot from the scratchpad ([Collect])
// and write its dirty contents back to CPU row OldID ([Insert]). The paper
// notes every cached embedding is dirty because all cached rows are
// training targets, so every eviction writes back.
type Eviction struct {
	OldID int64
	Slot  int32
}

// PlanResult is the [Plan] stage's output for one mini-batch on one table:
// a stable ID->slot resolution the batch carries through the rest of the
// pipeline, plus the prefetch (Fills) and write-back (Evictions) schedules.
//
// PlanResults are pooled: once a batch has fully retired (left [Train]),
// hand the result back via Scratchpad.Recycle so the next Plan reuses its
// buffers instead of allocating. A recycled result must not be read again.
type PlanResult struct {
	// Seq is the batch sequence number the plan belongs to.
	Seq int
	// UniqueIDs lists the batch's distinct sparse IDs in
	// first-appearance order; Slots[i] is the scratchpad slot assigned
	// to UniqueIDs[i].
	UniqueIDs []int64
	Slots     []int32
	// slotOf indexes UniqueIDs->Slots for the Slot accessor; built
	// lazily on first use so the metadata-mode hot path (which never
	// resolves individual IDs) skips it entirely.
	slotOf  *intmap.Map
	indexed bool
	// OccHits and OccMisses count per-occurrence hits/misses; an
	// occurrence of an ID already scheduled for fill by this same batch
	// counts as a hit (the row will be resident by [Train]).
	OccHits, OccMisses int
	// Fills and Evictions drive [Collect], [Exchange] and [Insert].
	Fills     []Fill
	Evictions []Eviction
	// ReserveAllocs counts fills placed into reserve (overflow) slots
	// because no unprotected victim existed.
	ReserveAllocs int
}

// Slot returns the slot assigned to id, panicking if id was not part of
// the planned batch (which would be a pipeline bug). The first call
// indexes the plan; callers resolving individual IDs do so from one
// goroutine per plan (the pipeline runs each job in one stage at a time).
func (r *PlanResult) Slot(id int64) int32 {
	if !r.indexed {
		r.slotOf.Reserve(len(r.UniqueIDs))
		for i, uid := range r.UniqueIDs {
			r.slotOf.Put(uid, r.Slots[i])
		}
		r.indexed = true
	}
	s, ok := r.slotOf.Get(id)
	if !ok {
		panic(fmt.Sprintf("core: plan %d: id %d was not planned", r.Seq, id))
	}
	return s
}

// NewPlanResult builds an empty result with its lazy index initialized;
// external plan producers (the sharded manager) pool results through
// NewPlanResult/Reset exactly like the scratchpad's internal pool.
func NewPlanResult() *PlanResult {
	return &PlanResult{slotOf: intmap.New(0)}
}

// Reset clears the result for reuse, keeping every buffer's capacity. A
// reset result must not be read until it has been replanned.
func (r *PlanResult) Reset() {
	r.Seq = 0
	r.UniqueIDs = r.UniqueIDs[:0]
	r.Slots = r.Slots[:0]
	r.slotOf.Clear()
	r.indexed = false
	r.OccHits, r.OccMisses = 0, 0
	r.Fills = r.Fills[:0]
	r.Evictions = r.Evictions[:0]
	r.ReserveAllocs = 0
}

// Stats aggregates scratchpad activity for the timing model and reports.
type Stats struct {
	// Queries/Hits/Misses are per-occurrence counts over all planned
	// batches.
	Queries, Hits, Misses int64
	// UniqueQueries/UniqueHits/UniqueMisses are per-distinct-ID counts.
	UniqueQueries, UniqueHits, UniqueMisses int64
	// Fills is the number of CPU->GPU row prefetches scheduled
	// (== UniqueMisses).
	Fills int64
	// Evictions is the number of victim rows written back GPU->CPU.
	Evictions int64
	// ReserveAllocs counts allocations that had to use reserve slots.
	ReserveAllocs int64
	// ReservePeak is the high-water mark of simultaneously occupied
	// reserve slots (the §VI-D overhead metric).
	ReservePeak int
	// Planned counts Plan calls; Released counts Release calls.
	Planned, Released int64
}

// slotMeta is one slot's control metadata, packed so the hold/pin/key
// evictability predicate reads a single 24-byte record.
type slotMeta struct {
	// key is the cached sparse ID (-1 when the slot is empty).
	key int64
	// pinStamp is the epoch of the slot's latest look-ahead pin.
	pinStamp int64
	// holds counts in-flight batches referencing the slot.
	holds int32
	// entryIdx is key's entry position inside hitMap, so an eviction
	// deletes its victim's stale key without re-probing (the victim's
	// entry is cache-cold by eviction time). Backward-shift relocations
	// report back through onMove; map growth triggers a full reindex.
	entryIdx int32
}

// Scratchpad is the per-table cache manager: the Hit-Map, the hold
// discipline that substitutes for Algorithm 1's Hold-mask bitmask queue,
// and the replacement policy.
//
// Where the paper ages a per-slot bitmask by shifting it every cycle, this
// implementation keeps an explicit per-slot hold counter plus a FIFO of
// in-flight batches' slot sets: a slot is protected exactly while some
// batch inside the sliding window references it, which is the same
// predicate the bitmask encodes ("mask != 0"), in a form that is testable
// and O(touched slots) instead of O(cache size) per cycle.
type Scratchpad struct {
	cfg    Config
	policy cache.Policy
	// lru is the devirtualized fast path when policy is the default
	// LRU: recency touches and victim sweeps go through concrete,
	// inlinable calls (nil for other policies).
	lru *cache.LRUPolicy

	hitMap *intmap.Map // sparse ID -> slot
	// slots holds the per-slot control metadata in one array of structs
	// so the victim sweep's evictability check (key, pin stamp, hold
	// count) touches one cache line per candidate instead of three.
	slots  []slotMeta
	onMove func(slot int32, newIdx int)

	// slots[slot].pinStamp > pinEpoch-pinValid marks the slot as pinned by
	// the current Plan's sliding window (epoch stamping avoids clearing
	// or hashing a per-plan set; checks are O(1) array reads).
	//
	// pinValid is the number of consecutive Plans one stamp protects.
	// When the hold window is at least as wide as the future window
	// (the paper's 3 >= 2), a batch's cached rows only need stamping
	// once — when the batch enters the look-ahead window — because any
	// row of that batch cached *later* was filled by an in-window batch
	// and carries that batch's hold for at least as long; steady-state
	// Plans therefore probe one future batch instead of all of them,
	// with bit-identical eviction decisions. With a shrunken hold
	// window (fault injection) pinValid stays 1 and every Plan
	// re-stamps the whole window, the original discipline.
	pinEpoch      int64
	pinValid      int64
	lastPinnedSeq int
	havePinned    bool
	// hintStamp[slot] == pinEpoch marks the slot as merely *hinted*:
	// a batch beyond the hazard window will reference it, so prefer not
	// to evict it — but evicting it is safe if nothing else is
	// available (Belady-style deep look-ahead, §III-C's "intelligently
	// store (and evict) not just the current but also future").
	hintStamp   []int64
	hintRelaxed bool // victim search fell back to hinted slots this Plan

	freePrimary []int32 // unused slots in [0, Slots)
	freeReserve []int32 // unused slots in [Slots, Slots+Reserve)

	inFlight     BatchRing // FIFO, oldest first
	reserveInUse int
	sweepArmed   bool // victim sweep armed for the current Plan

	// evictableFn is the victim predicate handed to the policy, bound
	// once at construction so the hot path passes a reused func value
	// instead of allocating a fresh closure per Plan.
	evictableFn func(slot int) bool

	// Free lists recycling all per-batch buffers: Plan pops, Recycle
	// and Release push. Steady-state Plan allocates nothing.
	planPool []*PlanResult
	heldPool [][]int32
	// missIdx is scratch: each miss's position in UniqueIDs/Slots.
	missIdx []int
	// dedup/uniqScratch/cntScratch back the occurrence-list entry
	// points (Plan/PlanWithHints), which deduplicate into these before
	// running the unique-list planner.
	dedup       *intmap.Map
	uniqScratch []int64
	cntScratch  []int32

	stats Stats
}

// NewScratchpad builds a scratchpad manager from cfg.
func NewScratchpad(cfg Config) (*Scratchpad, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	total := cfg.Slots + cfg.Reserve
	policy, err := cache.NewPolicy(cfg.Policy, total, cfg.PolicySeed)
	if err != nil {
		return nil, err
	}
	s := &Scratchpad{
		cfg:    cfg,
		policy: policy,
		// Sized for the population the window actually reaches: the
		// nominal slots plus half the worst-case reserve (hold
		// pressure routinely spills into reserve, but rarely to the
		// provisioning bound). The map grows transparently past that;
		// growth invalidates the slot->entry reverse index, which
		// reindex rebuilds (see allocate/Prewarm).
		hitMap: intmap.New(cfg.Slots + cfg.Reserve/2),
		slots:  make([]slotMeta, total),
		// hintStamp is allocated lazily on the first hinted Plan:
		// engines without deep look-ahead never pay for it.
	}
	s.evictableFn = s.isEvictable
	s.onMove = func(slot int32, newIdx int) { s.slots[slot].entryIdx = int32(newIdx) }
	s.lru, _ = policy.(*cache.LRUPolicy)
	s.pinValid = 1
	if cfg.FutureWindow > 1 && cfg.PastWindow >= cfg.FutureWindow {
		s.pinValid = int64(cfg.FutureWindow)
	}
	// Start the epoch clock at pinValid so a zeroed pinStamp can never
	// satisfy `stamp > epoch-pinValid`.
	s.pinEpoch = s.pinValid
	for i := range s.slots {
		s.slots[i].key = -1
	}
	s.freePrimary = make([]int32, 0, cfg.Slots)
	for i := cfg.Slots - 1; i >= 0; i-- {
		s.freePrimary = append(s.freePrimary, int32(i))
	}
	s.freeReserve = make([]int32, 0, cfg.Reserve)
	for i := total - 1; i >= cfg.Slots; i-- {
		s.freeReserve = append(s.freeReserve, int32(i))
	}
	return s, nil
}

// isEvictable is the victim predicate: a slot is fair game when nothing
// holds or pins it, it is occupied, and (unless the search has relaxed)
// deep look-ahead has not hinted it for reuse.
func (s *Scratchpad) isEvictable(slot int) bool {
	m := &s.slots[slot]
	if m.holds != 0 || m.pinStamp > s.pinEpoch-s.pinValid || m.key < 0 {
		return false
	}
	return s.hintRelaxed || s.hintStamp[slot] != s.pinEpoch
}

// getPlanResult pops a recycled PlanResult or builds a fresh one.
func (s *Scratchpad) getPlanResult() *PlanResult {
	if n := len(s.planPool); n > 0 {
		res := s.planPool[n-1]
		s.planPool[n-1] = nil
		s.planPool = s.planPool[:n-1]
		return res
	}
	return NewPlanResult()
}

// getHeldSlots pops a recycled hold-list buffer or returns nil (append
// will allocate the first time around).
func (s *Scratchpad) getHeldSlots() []int32 {
	if n := len(s.heldPool); n > 0 {
		buf := s.heldPool[n-1]
		s.heldPool[n-1] = nil
		s.heldPool = s.heldPool[:n-1]
		return buf[:0]
	}
	return nil
}

// Recycle returns a retired batch's plan buffers to the free list. Call
// it once the plan can no longer be read (the batch has left [Train]);
// passing nil is a no-op. Recycling is what makes the steady-state Plan
// path allocation-free.
func (s *Scratchpad) Recycle(res *PlanResult) {
	if res == nil {
		return
	}
	res.Reset()
	s.planPool = append(s.planPool, res)
}

// Capacity returns the nominal slot count (excluding reserve).
func (s *Scratchpad) Capacity() int { return s.cfg.Slots }

// TotalSlots returns nominal + reserve capacity.
func (s *Scratchpad) TotalSlots() int { return s.cfg.Slots + s.cfg.Reserve }

// Len returns the number of cached rows.
func (s *Scratchpad) Len() int { return s.hitMap.Len() }

// Contains reports whether sparse ID id currently has a slot.
func (s *Scratchpad) Contains(id int64) bool {
	_, ok := s.hitMap.Get(id)
	return ok
}

// InFlight returns the number of batches currently holding slots.
func (s *Scratchpad) InFlight() int { return s.inFlight.Len() }

// Stats returns accumulated counters.
func (s *Scratchpad) Stats() Stats { return s.stats }

// Plan runs the [Plan] stage for one mini-batch: queries the Hit-Map,
// assigns slots to missed IDs by evicting unprotected victims (or drawing
// on free/reserve slots), and registers the batch's holds. future holds the
// sparse IDs of the next FutureWindow mini-batches (outer index: distance
// ahead); their currently-cached slots are pinned against eviction for the
// duration of this call, which removes RAW-4 exactly as §IV-C prescribes.
//
// Plan fails only when slots+reserve cannot accommodate the window's
// worst-case working set; size Reserve with WorstCaseReserve to make that
// impossible.
func (s *Scratchpad) Plan(seq int, ids []int64, future [][]int64) (*PlanResult, error) {
	return s.PlanWithHints(seq, ids, future, nil)
}

// PlanWithHints is Plan with deep look-ahead: hints carries the sparse IDs
// of batches *beyond* the hazard window (distance > FutureWindow). Hinted
// rows are demoted, not protected: victim selection prefers unhinted slots
// and falls back to hinted ones only when nothing else is evictable, so
// safety is unchanged while soon-to-be-reused rows tend to stay resident.
//
// ids is the batch's occurrence stream; it is deduplicated into reusable
// scratch and handed to PlanUniqueWithHints, which produces an identical
// result. Callers that already hold the batch's distinct IDs and counts
// (the dataset records them once per batch) should call
// PlanUniqueWithHints directly and skip the extra pass.
func (s *Scratchpad) PlanWithHints(seq int, ids []int64, future, hints [][]int64) (*PlanResult, error) {
	if s.dedup == nil {
		s.dedup = intmap.New(len(ids))
	}
	uniq, cnt := s.uniqScratch[:0], s.cntScratch[:0]
	if cap(uniq) < len(ids) {
		uniq = make([]int64, 0, len(ids))
		cnt = make([]int32, 0, len(ids))
	}
	uniq, cnt = intmap.Dedup(ids, s.dedup, uniq, cnt)
	s.uniqScratch, s.cntScratch = uniq, cnt
	return s.PlanUniqueWithHints(seq, uniq, cnt, future, hints)
}

// PlanUniqueWithHints is the planner's native form: uniq lists the
// batch's distinct sparse IDs in first-appearance order and counts their
// per-ID occurrence multiplicities (counts may be nil, meaning one
// occurrence each). future and hints may carry either occurrence or
// distinct ID lists — pinning is idempotent — but distinct lists probe
// proportionally less.
func (s *Scratchpad) PlanUniqueWithHints(seq int, uniq []int64, counts []int32, future, hints [][]int64) (*PlanResult, error) {
	if got := len(future); got > s.cfg.FutureWindow {
		return nil, fmt.Errorf("core: plan %d: %d future batches exceeds future window %d", seq, got, s.cfg.FutureWindow)
	}
	// Pin the next FutureWindow batches' cached rows (evicting those
	// would race their [Collect] against our [Insert] write-back, RAW-4).
	// The *current* batch's rows need no pin pass: every hit registers a
	// hold in pass 1 below, and victim selection (pass 2) only starts
	// after pass 1 has finished, so "an early miss evicting a row a later
	// occurrence of this same batch still needs" is already impossible —
	// the hold protects it through the whole window. Together these are
	// the paper's "three past, one current, and two future" superset.
	//
	// With multi-epoch stamps (pinValid > 1) only batches newly entering
	// the window are probed; earlier entrants' stamps are still valid,
	// and rows they cached after their stamping were filled by in-window
	// batches whose holds outlast the future window (see pinValid).
	s.pinEpoch++
	start := 0
	if s.pinValid > 1 && s.havePinned {
		if start = s.lastPinnedSeq - seq; start < 0 {
			start = 0
		} else if start > len(future) {
			start = len(future)
		}
	}
	for _, fids := range future[start:] {
		s.pinIDs(fids)
	}
	if n := seq + len(future); len(future) > 0 && (!s.havePinned || n > s.lastPinnedSeq) {
		s.lastPinnedSeq = n
		s.havePinned = true
	}
	if len(hints) > 0 && s.hintStamp == nil {
		s.hintStamp = make([]int64, s.TotalSlots())
	}
	for _, hids := range hints {
		for _, id := range hids {
			if slot, ok := s.hitMap.Get(id); ok {
				s.hintStamp[slot] = s.pinEpoch
			}
		}
	}

	res := s.getPlanResult()
	res.Seq = seq
	s.hintRelaxed = len(hints) == 0

	// Presize every per-batch buffer up front: one reallocation on the
	// first batch instead of a doubling cascade on every growth step.
	if cap(res.UniqueIDs) < len(uniq) {
		res.UniqueIDs = make([]int64, 0, len(uniq))
		res.Slots = make([]int32, 0, len(uniq))
	}
	held := s.getHeldSlots()
	if cap(held) < len(uniq) {
		held = make([]int32, 0, len(uniq))
	}
	if cap(s.missIdx) < len(uniq) {
		s.missIdx = make([]int, 0, len(uniq))
	}

	// Pass 1: classify every distinct ID against the Hit-Map, register
	// hits (hold + recency touch), and record misses in first-appearance
	// order with placeholder slots. Occurrence-level counters derive
	// from the multiplicities: a hit ID's occurrences all hit; a missed
	// ID's first occurrence misses and the rest count as hits (the row
	// is already scheduled for fill and resident by [Train]).
	missIdx := s.missIdx[:0]
	for i, id := range uniq {
		c := 1
		if counts != nil {
			c = int(counts[i])
		}
		if slot, ok := s.hitMap.Get(id); ok {
			res.OccHits += c
			res.UniqueIDs = append(res.UniqueIDs, id)
			res.Slots = append(res.Slots, slot)
			if s.lru != nil {
				s.lru.OnAccess(int(slot))
			} else {
				s.policy.OnAccess(int(slot))
			}
			s.slots[slot].holds++
			held = append(held, slot)
			continue
		}
		res.OccMisses++
		res.OccHits += c - 1
		res.UniqueIDs = append(res.UniqueIDs, id)
		res.Slots = append(res.Slots, -1)
		missIdx = append(missIdx, len(res.Slots)-1)
	}
	s.missIdx = missIdx

	// Pass 2: allocate slots for the misses. Hits are already touched,
	// so the policies' victim sweeps (armed lazily once the free list
	// runs dry) walk the eviction order exactly once per Plan.
	if cap(res.Fills) < len(missIdx) {
		res.Fills = make([]Fill, 0, len(missIdx))
	}
	if cap(res.Evictions) < len(missIdx) {
		res.Evictions = make([]Eviction, 0, len(missIdx))
	}
	s.sweepArmed = false
	for _, k := range missIdx {
		id := res.UniqueIDs[k]
		slot, evicted, fromReserve, err := s.allocate()
		if err != nil {
			s.heldPool = append(s.heldPool, held)
			return nil, fmt.Errorf("core: plan %d: %w", seq, err)
		}
		if evicted >= 0 {
			res.Evictions = append(res.Evictions, Eviction{OldID: evicted, Slot: slot})
		}
		if fromReserve {
			res.ReserveAllocs++
		}
		cap0 := s.hitMap.Cap()
		at := s.hitMap.PutIdx(id, slot)
		if s.hitMap.Cap() != cap0 {
			s.reindex()
		}
		s.slots[slot].entryIdx = int32(at)
		s.slots[slot].key = id
		if s.lru != nil {
			s.lru.OnInsert(int(slot))
		} else {
			s.policy.OnInsert(int(slot))
		}
		s.slots[slot].holds++
		held = append(held, slot)
		res.Slots[k] = slot
		res.Fills = append(res.Fills, Fill{ID: id, Slot: slot})
	}
	s.inFlight.Push(HeldBatch{Seq: seq, Slots: held})

	s.stats.Planned++
	s.stats.Queries += int64(res.OccHits + res.OccMisses)
	s.stats.Hits += int64(res.OccHits)
	s.stats.Misses += int64(res.OccMisses)
	s.stats.UniqueQueries += int64(len(res.UniqueIDs))
	s.stats.UniqueMisses += int64(len(res.Fills))
	s.stats.UniqueHits += int64(len(res.UniqueIDs) - len(res.Fills))
	s.stats.Fills += int64(len(res.Fills))
	s.stats.Evictions += int64(len(res.Evictions))
	s.stats.ReserveAllocs += int64(res.ReserveAllocs)
	return res, nil
}

// victim picks the next evictable slot of the armed sweep, or -1. For
// the default LRU policy the sweep is driven inline (direct calls, the
// evictability check inlined); other policies go through the interface.
func (s *Scratchpad) victim() int {
	if s.lru != nil {
		for {
			v := s.lru.SweepNext()
			if v < 0 || s.isEvictable(v) {
				return v
			}
		}
	}
	return s.policy.Victim(s.evictableFn)
}

// reindex rebuilds every slot's hitMap entry position after the map
// grew (entry positions move wholesale on a rehash).
func (s *Scratchpad) reindex() {
	s.hitMap.ForEachIdx(func(idx int, _ int64, slot int32) {
		s.slots[slot].entryIdx = int32(idx)
	})
}

// pinIDs stamps the scratchpad locations of every currently-cached ID in
// idList as pinned for the current Plan epoch.
func (s *Scratchpad) pinIDs(idList []int64) {
	for _, id := range idList {
		if slot, ok := s.hitMap.Get(id); ok {
			s.slots[slot].pinStamp = s.pinEpoch
		}
	}
}

// allocate finds a slot for a missed ID: free primary slot first, then an
// unprotected victim (per s.evictableFn), then a reserve slot. evicted is
// the displaced sparse ID or -1.
func (s *Scratchpad) allocate() (slot int32, evicted int64, fromReserve bool, err error) {
	if n := len(s.freePrimary); n > 0 {
		slot = s.freePrimary[n-1]
		s.freePrimary = s.freePrimary[:n-1]
		return slot, -1, false, nil
	}
	// Arm the policy's victim sweep on first eviction need of this Plan
	// (after the free list is exhausted, so free-slot OnInserts can no
	// longer disturb the sweep cursor).
	if !s.sweepArmed {
		s.policy.BeginVictimSweep()
		s.sweepArmed = true
	}
	if v := s.victim(); v >= 0 {
		old := s.slots[v].key
		s.hitMap.DeleteAt(int(s.slots[v].entryIdx), s.onMove)
		s.slots[v].key = -1
		return int32(v), old, false, nil
	}
	// Every unprotected slot is merely hinted (deep look-ahead says a
	// later batch wants it): relax the preference — evicting hinted
	// rows is safe, just suboptimal — and sweep once more.
	if !s.hintRelaxed {
		s.hintRelaxed = true
		s.policy.BeginVictimSweep()
		if v := s.victim(); v >= 0 {
			old := s.slots[v].key
			s.hitMap.DeleteAt(int(s.slots[v].entryIdx), s.onMove)
			s.slots[v].key = -1
			return int32(v), old, false, nil
		}
	}
	if n := len(s.freeReserve); n > 0 {
		slot = s.freeReserve[n-1]
		s.freeReserve = s.freeReserve[:n-1]
		s.reserveInUse++
		if s.reserveInUse > s.stats.ReservePeak {
			s.stats.ReservePeak = s.reserveInUse
		}
		return slot, -1, true, nil
	}
	return 0, -1, false, fmt.Errorf("scratchpad exhausted: %d slots + %d reserve all protected (in-flight %d batches)",
		s.cfg.Slots, s.cfg.Reserve, s.inFlight.Len())
}

// Release drops the oldest in-flight batch's holds. The engine calls it
// when that batch enters [Train]: from that point the batch's slots may be
// chosen as victims again (their eviction read would happen strictly after
// the training writes, per the pipeline's stage spacing).
func (s *Scratchpad) Release(seq int) error {
	if s.inFlight.Len() == 0 {
		return fmt.Errorf("core: release %d: no in-flight batches", seq)
	}
	if got := s.inFlight.Front().Seq; got != seq {
		return fmt.Errorf("core: release %d: oldest in-flight batch is %d (releases must be FIFO)", seq, got)
	}
	hb := s.inFlight.Pop()
	for _, slot := range hb.Slots {
		if s.slots[slot].holds <= 0 {
			return fmt.Errorf("core: release %d: slot %d hold underflow", seq, slot)
		}
		s.slots[slot].holds--
	}
	if hb.Slots != nil {
		s.heldPool = append(s.heldPool, hb.Slots)
	}
	s.stats.Released++
	return nil
}

// Held reports whether a slot is currently protected by any in-flight
// batch (the hold-mask "!= 0" predicate); exported for invariant tests.
func (s *Scratchpad) Held(slot int32) bool { return s.slots[slot].holds != 0 }

// Key returns the sparse ID cached in slot, or -1. Exported for tests.
func (s *Scratchpad) Key(slot int32) int64 { return s.slots[slot].key }

// Prewarm fills the scratchpad's free capacity with IDs drawn from sample
// before training starts, approximating the steady-state content of an LRU
// cache under the trace's access distribution (the most recent distinct
// draws). onFill, when non-nil, is invoked for every inserted row so
// functional engines can copy the corresponding embedding values into the
// storage array. It returns the number of rows inserted.
//
// Prewarm draws at most 8x the nominal capacity: rows that have not
// appeared within that many draws are cold enough that their absence from
// the warm cache has negligible effect on measured hit rates, and an
// unbounded fill would degenerate into a coupon-collector walk over the
// distribution's long tail.
func (s *Scratchpad) Prewarm(sample func() int64, onFill func(id int64, slot int32)) int {
	return s.PrewarmRows(0, sample, onFill)
}

// PrewarmRows is Prewarm for callers that know the sparse ID domain:
// with rows > 0 the duplicate-draw check runs against a rows-wide bitmap
// (a few KB, cache-resident) instead of probing the hit map once per
// draw, inserting identical content several times faster. rows <= 0
// falls back to hit-map probing.
func (s *Scratchpad) PrewarmRows(rows int64, sample func() int64, onFill func(id int64, slot int32)) int {
	if s.inFlight.Len() != 0 {
		panic("core: Prewarm with batches in flight")
	}
	var seen []uint64
	if rows > 0 {
		seen = make([]uint64, (rows+63)/64)
	}
	inserted := 0
	limit := 8*s.cfg.Slots + 100
	for draws := 0; len(s.freePrimary) > 0 && draws < limit; draws++ {
		id := sample()
		n := len(s.freePrimary)
		slot := s.freePrimary[n-1]
		var at int
		if seen != nil {
			w, bit := id/64, uint64(1)<<(uint64(id)%64)
			if seen[w]&bit != 0 {
				continue
			}
			seen[w] |= bit
			cap0 := s.hitMap.Cap()
			at = s.hitMap.PutIdx(id, slot)
			if s.hitMap.Cap() != cap0 {
				s.reindex()
			}
		} else {
			cap0 := s.hitMap.Cap()
			var dup bool
			_, at, dup = s.hitMap.GetOrPut(id, slot)
			// GetOrPut may grow the table even when the key turns
			// out to be a duplicate: reindex before skipping.
			if s.hitMap.Cap() != cap0 {
				s.reindex()
			}
			if dup {
				continue
			}
		}
		s.slots[slot].entryIdx = int32(at)
		s.freePrimary = s.freePrimary[:n-1]
		s.slots[slot].key = id
		s.policy.OnInsert(int(slot))
		if onFill != nil {
			onFill(id, slot)
		}
		inserted++
	}
	return inserted
}

// ForEach visits every cached (sparse ID, slot) pair in unspecified order;
// engines use it to flush dirty cached rows back to the CPU tables at the
// end of training.
func (s *Scratchpad) ForEach(f func(id int64, slot int32)) {
	s.hitMap.ForEach(f)
}

// WorstCaseReserve returns the reserve capacity that guarantees Plan can
// never fail: with windowBatches = past + current + future batches in
// flight, at most windowBatches*maxUniquePerBatch slots are protected
// simultaneously, so provisioning that many slots beyond... the nominal
// capacity guarantees an unprotected slot (or a free reserve slot) always
// exists. This is the paper's §VI-D worst-case sizing (6 mini-batches'
// gathers, 960 MB under the default configuration).
func WorstCaseReserve(cfg Config, maxUniquePerBatch int) int {
	window := cfg.PastWindow + 1 + cfg.FutureWindow
	need := window*maxUniquePerBatch + 1
	if need <= cfg.Slots {
		return 0
	}
	return need - cfg.Slots
}
