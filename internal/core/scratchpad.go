// Package core implements the paper's primary contribution: the
// ScratchPipe GPU scratchpad — an embedding cache that "always hits"
// because the Plan stage looks forward in the training dataset — together
// with the 6-stage software pipeline and the hold-mask hazard discipline of
// §IV (Algorithm 1, Figures 8-11).
//
// The Scratchpad here is the control plane only: it maps sparse feature IDs
// to cache slots and decides what to prefetch, evict, and protect. Moving
// the actual embedding vectors (and accounting for the bytes moved) is the
// training engine's job, which lets the same control logic drive both the
// functional float32 simulation and the paper-scale metadata simulation.
package core

import (
	"fmt"

	"repro/internal/cache"
)

// Config configures one per-table scratchpad manager. The paper
// instantiates one manager per embedding table (§VI-G).
type Config struct {
	// Slots is the nominal cache capacity in embedding rows (the
	// "2-10% of the CPU table" swept in the evaluation).
	Slots int
	// Reserve is extra slot capacity provisioned for the worst case in
	// which every slot the sliding window needs is distinct (§VI-D's
	// 960 MB provisioning). Victim selection prefers evicting over
	// consuming reserve slots; reserve usage is reported in Stats.
	Reserve int
	// Policy selects the replacement policy among unprotected slots
	// (paper default LRU; §VI-E also studies LFU and Random).
	Policy cache.PolicyKind
	// PolicySeed seeds the Random policy.
	PolicySeed int64
	// PastWindow is the number of previous in-flight mini-batches whose
	// slots may not be evicted (3 in the paper: the Plan->Train
	// distance, removing RAW-2/3).
	PastWindow int
	// FutureWindow is the number of upcoming mini-batches whose
	// currently-cached rows may not be evicted (2 in the paper: the
	// Collect->Insert distance, removing RAW-4).
	FutureWindow int
}

// DefaultWindows returns the paper's pipeline window shape.
func DefaultWindows() (past, future int) { return 3, 2 }

// Validate reports a descriptive error for an unusable configuration.
func (c Config) Validate() error {
	if c.Slots <= 0 {
		return fmt.Errorf("core: scratchpad: Slots %d <= 0", c.Slots)
	}
	if c.Reserve < 0 {
		return fmt.Errorf("core: scratchpad: Reserve %d < 0", c.Reserve)
	}
	if c.PastWindow < 0 || c.FutureWindow < 0 {
		return fmt.Errorf("core: scratchpad: negative window (past %d, future %d)", c.PastWindow, c.FutureWindow)
	}
	if c.Policy == "" {
		return fmt.Errorf("core: scratchpad: empty policy")
	}
	return nil
}

// Fill schedules one missed embedding: fetch row ID from the CPU table
// ([Collect]) and store it into Slot ([Insert]).
type Fill struct {
	ID   int64
	Slot int32
}

// Eviction schedules one victim: read Slot from the scratchpad ([Collect])
// and write its dirty contents back to CPU row OldID ([Insert]). The paper
// notes every cached embedding is dirty because all cached rows are
// training targets, so every eviction writes back.
type Eviction struct {
	OldID int64
	Slot  int32
}

// PlanResult is the [Plan] stage's output for one mini-batch on one table:
// a stable ID->slot resolution the batch carries through the rest of the
// pipeline, plus the prefetch (Fills) and write-back (Evictions) schedules.
type PlanResult struct {
	// Seq is the batch sequence number the plan belongs to.
	Seq int
	// UniqueIDs lists the batch's distinct sparse IDs in
	// first-appearance order; Slots[i] is the scratchpad slot assigned
	// to UniqueIDs[i].
	UniqueIDs []int64
	Slots     []int32
	slotOf    map[int64]int32
	// OccHits and OccMisses count per-occurrence hits/misses; an
	// occurrence of an ID already scheduled for fill by this same batch
	// counts as a hit (the row will be resident by [Train]).
	OccHits, OccMisses int
	// Fills and Evictions drive [Collect], [Exchange] and [Insert].
	Fills     []Fill
	Evictions []Eviction
	// ReserveAllocs counts fills placed into reserve (overflow) slots
	// because no unprotected victim existed.
	ReserveAllocs int
}

// Slot returns the slot assigned to id, panicking if id was not part of
// the planned batch (which would be a pipeline bug).
func (r *PlanResult) Slot(id int64) int32 {
	s, ok := r.slotOf[id]
	if !ok {
		panic(fmt.Sprintf("core: plan %d: id %d was not planned", r.Seq, id))
	}
	return s
}

// Stats aggregates scratchpad activity for the timing model and reports.
type Stats struct {
	// Queries/Hits/Misses are per-occurrence counts over all planned
	// batches.
	Queries, Hits, Misses int64
	// UniqueQueries/UniqueHits/UniqueMisses are per-distinct-ID counts.
	UniqueQueries, UniqueHits, UniqueMisses int64
	// Fills is the number of CPU->GPU row prefetches scheduled
	// (== UniqueMisses).
	Fills int64
	// Evictions is the number of victim rows written back GPU->CPU.
	Evictions int64
	// ReserveAllocs counts allocations that had to use reserve slots.
	ReserveAllocs int64
	// ReservePeak is the high-water mark of simultaneously occupied
	// reserve slots (the §VI-D overhead metric).
	ReservePeak int
	// Planned counts Plan calls; Released counts Release calls.
	Planned, Released int64
}

// Scratchpad is the per-table cache manager: the Hit-Map, the hold
// discipline that substitutes for Algorithm 1's Hold-mask bitmask queue,
// and the replacement policy.
//
// Where the paper ages a per-slot bitmask by shifting it every cycle, this
// implementation keeps an explicit per-slot hold counter plus a FIFO of
// in-flight batches' slot sets: a slot is protected exactly while some
// batch inside the sliding window references it, which is the same
// predicate the bitmask encodes ("mask != 0"), in a form that is testable
// and O(touched slots) instead of O(cache size) per cycle.
type Scratchpad struct {
	cfg    Config
	policy cache.Policy

	hitMap map[int64]int32 // sparse ID -> slot
	key    []int64         // slot -> sparse ID (-1 when empty)
	holds  []int32         // slot -> # in-flight batches referencing it

	// pinStamp[slot] == pinEpoch marks the slot as pinned by the
	// current Plan's sliding window (epoch stamping avoids clearing or
	// hashing a per-plan set; checks are O(1) array reads).
	pinStamp []int64
	pinEpoch int64
	// hintStamp[slot] == pinEpoch marks the slot as merely *hinted*:
	// a batch beyond the hazard window will reference it, so prefer not
	// to evict it — but evicting it is safe if nothing else is
	// available (Belady-style deep look-ahead, §III-C's "intelligently
	// store (and evict) not just the current but also future").
	hintStamp   []int64
	hintRelaxed bool // victim search fell back to hinted slots this Plan

	freePrimary []int32 // unused slots in [0, Slots)
	freeReserve []int32 // unused slots in [Slots, Slots+Reserve)

	inFlight     []heldBatch // FIFO, oldest first
	reserveInUse int
	sweepArmed   bool // victim sweep armed for the current Plan

	stats Stats
}

type heldBatch struct {
	seq   int
	slots []int32
}

// NewScratchpad builds a scratchpad manager from cfg.
func NewScratchpad(cfg Config) (*Scratchpad, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	total := cfg.Slots + cfg.Reserve
	policy, err := cache.NewPolicy(cfg.Policy, total, cfg.PolicySeed)
	if err != nil {
		return nil, err
	}
	s := &Scratchpad{
		cfg:       cfg,
		policy:    policy,
		hitMap:    make(map[int64]int32),
		key:       make([]int64, total),
		holds:     make([]int32, total),
		pinStamp:  make([]int64, total),
		hintStamp: make([]int64, total),
	}
	for i := range s.key {
		s.key[i] = -1
	}
	for i := cfg.Slots - 1; i >= 0; i-- {
		s.freePrimary = append(s.freePrimary, int32(i))
	}
	for i := total - 1; i >= cfg.Slots; i-- {
		s.freeReserve = append(s.freeReserve, int32(i))
	}
	return s, nil
}

// Capacity returns the nominal slot count (excluding reserve).
func (s *Scratchpad) Capacity() int { return s.cfg.Slots }

// TotalSlots returns nominal + reserve capacity.
func (s *Scratchpad) TotalSlots() int { return s.cfg.Slots + s.cfg.Reserve }

// Len returns the number of cached rows.
func (s *Scratchpad) Len() int { return len(s.hitMap) }

// Contains reports whether sparse ID id currently has a slot.
func (s *Scratchpad) Contains(id int64) bool {
	_, ok := s.hitMap[id]
	return ok
}

// InFlight returns the number of batches currently holding slots.
func (s *Scratchpad) InFlight() int { return len(s.inFlight) }

// Stats returns accumulated counters.
func (s *Scratchpad) Stats() Stats { return s.stats }

// Plan runs the [Plan] stage for one mini-batch: queries the Hit-Map,
// assigns slots to missed IDs by evicting unprotected victims (or drawing
// on free/reserve slots), and registers the batch's holds. future holds the
// sparse IDs of the next FutureWindow mini-batches (outer index: distance
// ahead); their currently-cached slots are pinned against eviction for the
// duration of this call, which removes RAW-4 exactly as §IV-C prescribes.
//
// Plan fails only when slots+reserve cannot accommodate the window's
// worst-case working set; size Reserve with WorstCaseReserve to make that
// impossible.
func (s *Scratchpad) Plan(seq int, ids []int64, future [][]int64) (*PlanResult, error) {
	return s.PlanWithHints(seq, ids, future, nil)
}

// PlanWithHints is Plan with deep look-ahead: hints carries the sparse IDs
// of batches *beyond* the hazard window (distance > FutureWindow). Hinted
// rows are demoted, not protected: victim selection prefers unhinted slots
// and falls back to hinted ones only when nothing else is evictable, so
// safety is unchanged while soon-to-be-reused rows tend to stay resident.
func (s *Scratchpad) PlanWithHints(seq int, ids []int64, future, hints [][]int64) (*PlanResult, error) {
	if got := len(future); got > s.cfg.FutureWindow {
		return nil, fmt.Errorf("core: plan %d: %d future batches exceeds future window %d", seq, got, s.cfg.FutureWindow)
	}
	// Pin the scratchpad locations of every ID inside the sliding
	// window that holds do not already cover: the *current* batch's own
	// IDs (an early miss must not evict a row a later occurrence of
	// this same batch still needs — its refill would read the CPU copy
	// before our own write-back lands) and the next FutureWindow
	// batches' IDs (evicting those would race their [Collect] against
	// our [Insert] write-back, RAW-4). This is the paper's "three past,
	// one current, and two future" superset.
	s.pinEpoch++
	pin := func(idList []int64) {
		for _, id := range idList {
			if slot, ok := s.hitMap[id]; ok {
				s.pinStamp[slot] = s.pinEpoch
			}
		}
	}
	pin(ids)
	for _, fids := range future {
		pin(fids)
	}
	for _, hids := range hints {
		for _, id := range hids {
			if slot, ok := s.hitMap[id]; ok {
				s.hintStamp[slot] = s.pinEpoch
			}
		}
	}

	res := &PlanResult{Seq: seq, slotOf: make(map[int64]int32)}
	s.hintRelaxed = len(hints) == 0
	evictable := func(slot int) bool {
		if s.holds[slot] != 0 || s.pinStamp[slot] == s.pinEpoch || s.key[slot] < 0 {
			return false
		}
		return s.hintRelaxed || s.hintStamp[slot] != s.pinEpoch
	}

	// Pass 1: classify every occurrence against the Hit-Map, register
	// hits (hold + recency touch), and record misses in first-appearance
	// order with placeholder slots.
	var held []int32
	var missIdx []int
	for _, id := range ids {
		if _, ok := res.slotOf[id]; ok {
			// Repeated occurrence within the batch: already
			// resolved (or scheduled for fill); resident by
			// [Train] either way.
			res.OccHits++
			continue
		}
		if slot, ok := s.hitMap[id]; ok {
			res.OccHits++
			res.slotOf[id] = slot
			res.UniqueIDs = append(res.UniqueIDs, id)
			res.Slots = append(res.Slots, slot)
			s.policy.OnAccess(int(slot))
			s.holds[slot]++
			held = append(held, slot)
			continue
		}
		res.OccMisses++
		res.slotOf[id] = -1
		res.UniqueIDs = append(res.UniqueIDs, id)
		res.Slots = append(res.Slots, -1)
		missIdx = append(missIdx, len(res.Slots)-1)
	}

	// Pass 2: allocate slots for the misses. Hits are already touched,
	// so the policies' victim sweeps (armed lazily once the free list
	// runs dry) walk the eviction order exactly once per Plan.
	s.sweepArmed = false
	for _, k := range missIdx {
		id := res.UniqueIDs[k]
		slot, evicted, fromReserve, err := s.allocate(evictable)
		if err != nil {
			return nil, fmt.Errorf("core: plan %d: %w", seq, err)
		}
		if evicted >= 0 {
			res.Evictions = append(res.Evictions, Eviction{OldID: evicted, Slot: slot})
		}
		if fromReserve {
			res.ReserveAllocs++
		}
		s.hitMap[id] = slot
		s.key[slot] = id
		s.policy.OnInsert(int(slot))
		s.holds[slot]++
		held = append(held, slot)
		res.slotOf[id] = slot
		res.Slots[k] = slot
		res.Fills = append(res.Fills, Fill{ID: id, Slot: slot})
	}
	s.inFlight = append(s.inFlight, heldBatch{seq: seq, slots: held})

	s.stats.Planned++
	s.stats.Queries += int64(len(ids))
	s.stats.Hits += int64(res.OccHits)
	s.stats.Misses += int64(res.OccMisses)
	s.stats.UniqueQueries += int64(len(res.UniqueIDs))
	s.stats.UniqueMisses += int64(len(res.Fills))
	s.stats.UniqueHits += int64(len(res.UniqueIDs) - len(res.Fills))
	s.stats.Fills += int64(len(res.Fills))
	s.stats.Evictions += int64(len(res.Evictions))
	s.stats.ReserveAllocs += int64(res.ReserveAllocs)
	return res, nil
}

// allocate finds a slot for a missed ID: free primary slot first, then an
// unprotected victim, then a reserve slot. evicted is the displaced sparse
// ID or -1.
func (s *Scratchpad) allocate(evictable func(int) bool) (slot int32, evicted int64, fromReserve bool, err error) {
	if n := len(s.freePrimary); n > 0 {
		slot = s.freePrimary[n-1]
		s.freePrimary = s.freePrimary[:n-1]
		return slot, -1, false, nil
	}
	// Arm the policy's victim sweep on first eviction need of this Plan
	// (after the free list is exhausted, so free-slot OnInserts can no
	// longer disturb the sweep cursor).
	if !s.sweepArmed {
		s.policy.BeginVictimSweep()
		s.sweepArmed = true
	}
	if v := s.policy.Victim(evictable); v >= 0 {
		old := s.key[v]
		delete(s.hitMap, old)
		s.key[v] = -1
		return int32(v), old, false, nil
	}
	// Every unprotected slot is merely hinted (deep look-ahead says a
	// later batch wants it): relax the preference — evicting hinted
	// rows is safe, just suboptimal — and sweep once more.
	if !s.hintRelaxed {
		s.hintRelaxed = true
		s.policy.BeginVictimSweep()
		if v := s.policy.Victim(evictable); v >= 0 {
			old := s.key[v]
			delete(s.hitMap, old)
			s.key[v] = -1
			return int32(v), old, false, nil
		}
	}
	if n := len(s.freeReserve); n > 0 {
		slot = s.freeReserve[n-1]
		s.freeReserve = s.freeReserve[:n-1]
		s.reserveInUse++
		if s.reserveInUse > s.stats.ReservePeak {
			s.stats.ReservePeak = s.reserveInUse
		}
		return slot, -1, true, nil
	}
	return 0, -1, false, fmt.Errorf("scratchpad exhausted: %d slots + %d reserve all protected (in-flight %d batches)",
		s.cfg.Slots, s.cfg.Reserve, len(s.inFlight))
}

// Release drops the oldest in-flight batch's holds. The engine calls it
// when that batch enters [Train]: from that point the batch's slots may be
// chosen as victims again (their eviction read would happen strictly after
// the training writes, per the pipeline's stage spacing).
func (s *Scratchpad) Release(seq int) error {
	if len(s.inFlight) == 0 {
		return fmt.Errorf("core: release %d: no in-flight batches", seq)
	}
	hb := s.inFlight[0]
	if hb.seq != seq {
		return fmt.Errorf("core: release %d: oldest in-flight batch is %d (releases must be FIFO)", seq, hb.seq)
	}
	s.inFlight = s.inFlight[1:]
	for _, slot := range hb.slots {
		if s.holds[slot] <= 0 {
			return fmt.Errorf("core: release %d: slot %d hold underflow", seq, slot)
		}
		s.holds[slot]--
	}
	s.stats.Released++
	return nil
}

// Held reports whether a slot is currently protected by any in-flight
// batch (the hold-mask "!= 0" predicate); exported for invariant tests.
func (s *Scratchpad) Held(slot int32) bool { return s.holds[slot] != 0 }

// Key returns the sparse ID cached in slot, or -1. Exported for tests.
func (s *Scratchpad) Key(slot int32) int64 { return s.key[slot] }

// Prewarm fills the scratchpad's free capacity with IDs drawn from sample
// before training starts, approximating the steady-state content of an LRU
// cache under the trace's access distribution (the most recent distinct
// draws). onFill, when non-nil, is invoked for every inserted row so
// functional engines can copy the corresponding embedding values into the
// storage array. It returns the number of rows inserted.
//
// Prewarm draws at most 8x the nominal capacity: rows that have not
// appeared within that many draws are cold enough that their absence from
// the warm cache has negligible effect on measured hit rates, and an
// unbounded fill would degenerate into a coupon-collector walk over the
// distribution's long tail.
func (s *Scratchpad) Prewarm(sample func() int64, onFill func(id int64, slot int32)) int {
	if len(s.inFlight) != 0 {
		panic("core: Prewarm with batches in flight")
	}
	inserted := 0
	limit := 8*s.cfg.Slots + 100
	for draws := 0; len(s.freePrimary) > 0 && draws < limit; draws++ {
		id := sample()
		if _, ok := s.hitMap[id]; ok {
			continue
		}
		n := len(s.freePrimary)
		slot := s.freePrimary[n-1]
		s.freePrimary = s.freePrimary[:n-1]
		s.hitMap[id] = slot
		s.key[slot] = id
		s.policy.OnInsert(int(slot))
		if onFill != nil {
			onFill(id, slot)
		}
		inserted++
	}
	return inserted
}

// ForEach visits every cached (sparse ID, slot) pair in unspecified order;
// engines use it to flush dirty cached rows back to the CPU tables at the
// end of training.
func (s *Scratchpad) ForEach(f func(id int64, slot int32)) {
	for id, slot := range s.hitMap {
		f(id, slot)
	}
}

// WorstCaseReserve returns the reserve capacity that guarantees Plan can
// never fail: with windowBatches = past + current + future batches in
// flight, at most windowBatches*maxUniquePerBatch slots are protected
// simultaneously, so provisioning that many slots beyond... the nominal
// capacity guarantees an unprotected slot (or a free reserve slot) always
// exists. This is the paper's §VI-D worst-case sizing (6 mini-batches'
// gathers, 960 MB under the default configuration).
func WorstCaseReserve(cfg Config, maxUniquePerBatch int) int {
	window := cfg.PastWindow + 1 + cfg.FutureWindow
	need := window*maxUniquePerBatch + 1
	if need <= cfg.Slots {
		return 0
	}
	return need - cfg.Slots
}
