package core

import (
	"fmt"
	"sync"
)

// ResKind names a shared resource class for hazard tracking.
type ResKind int

const (
	// ResGPUSlot is one scratchpad Storage slot of one table.
	ResGPUSlot ResKind = iota
	// ResCPURow is one row of one CPU embedding table.
	ResCPURow
)

// String implements fmt.Stringer.
func (k ResKind) String() string {
	switch k {
	case ResGPUSlot:
		return "gpu-slot"
	case ResCPURow:
		return "cpu-row"
	}
	return fmt.Sprintf("ResKind(%d)", int(k))
}

// Violation is one detected ordering hazard on a shared resource. Two
// accesses by different mini-batches conflict when at least one writes and
// either (a) they land in the same pipeline cycle (physically unordered —
// in the parallel pipeline they race), or (b) the physically later access
// belongs to the logically earlier batch, meaning a stale value was read or
// a newer value was overwritten (the RAW-1..4 hazards of §IV-B).
// Under the paper's hold-mask discipline none of these can occur; the
// checker exists to prove that, and to demonstrate the hazards reappear
// when tests deliberately shrink the windows.
type Violation struct {
	Cycle int
	Kind  ResKind
	Table int
	Index int64
	// First/Second describe the two conflicting accesses in physical
	// (cycle) order.
	First, Second AccessInfo
}

// AccessInfo identifies one recorded access.
type AccessInfo struct {
	Stage Stage
	Seq   int // mini-batch sequence number
	Cycle int
	Write bool
}

// String implements fmt.Stringer.
func (v Violation) String() string {
	return fmt.Sprintf("%s table %d index %d: batch %d %s(write=%t)@cycle %d vs batch %d %s(write=%t)@cycle %d",
		v.Kind, v.Table, v.Index,
		v.First.Seq, v.First.Stage, v.First.Write, v.First.Cycle,
		v.Second.Seq, v.Second.Stage, v.Second.Write, v.Second.Cycle)
}

type resKey struct {
	kind  ResKind
	table int
	index int64
}

type resState struct {
	lastWrite AccessInfo
	hasWrite  bool
	lastRead  AccessInfo // the read with the highest batch seq so far
	hasRead   bool
}

// HazardChecker records resource accesses across pipeline cycles and
// detects conflicts between in-flight mini-batches. It is safe for
// concurrent use (the parallel pipeline's stages report from separate
// goroutines). Enable it on small runs; it keeps one entry per touched
// resource.
type HazardChecker struct {
	mu              sync.Mutex
	cycle           int
	state           map[resKey]*resState
	violations      []Violation
	totalViolations int
	maxRecord       int
}

// NewHazardChecker returns a checker that retains at most maxViolations
// violations (more are counted but not stored); maxViolations <= 0 retains
// all.
func NewHazardChecker(maxViolations int) *HazardChecker {
	return &HazardChecker{
		state:     make(map[resKey]*resState),
		maxRecord: maxViolations,
	}
}

// BeginCycle advances the checker's cycle clock; wire it to the pipeline's
// cycle-start hook.
func (h *HazardChecker) BeginCycle(cycle int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.cycle = cycle
}

func (h *HazardChecker) record(v Violation) {
	if h.maxRecord <= 0 || len(h.violations) < h.maxRecord {
		h.violations = append(h.violations, v)
	}
	h.totalViolations++
}

// Access records that stage of mini-batch seq touched (kind, table, index)
// during the current cycle.
func (h *HazardChecker) Access(stage Stage, kind ResKind, table int, index int64, write bool, seq int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	k := resKey{kind: kind, table: table, index: index}
	cur := AccessInfo{Stage: stage, Seq: seq, Cycle: h.cycle, Write: write}
	st, ok := h.state[k]
	if !ok {
		st = &resState{}
		h.state[k] = st
	}
	conflict := func(prev AccessInfo) bool {
		if prev.Seq == seq {
			return false // same batch: ordered by its own stage sequence
		}
		if prev.Cycle == cur.Cycle {
			return true // physically unordered
		}
		return seq < prev.Seq // logically earlier batch physically later
	}
	// A previous write conflicts with any later-unordered access.
	if st.hasWrite && conflict(st.lastWrite) {
		h.record(Violation{Cycle: h.cycle, Kind: kind, Table: table, Index: index,
			First: st.lastWrite, Second: cur})
	}
	if write && st.hasRead && conflict(st.lastRead) {
		h.record(Violation{Cycle: h.cycle, Kind: kind, Table: table, Index: index,
			First: st.lastRead, Second: cur})
	}
	if write {
		if !st.hasWrite || seq >= st.lastWrite.Seq {
			st.lastWrite = cur
			st.hasWrite = true
		}
	} else {
		if !st.hasRead || seq >= st.lastRead.Seq {
			st.lastRead = cur
			st.hasRead = true
		}
	}
}

// Violations returns the recorded violations.
func (h *HazardChecker) Violations() []Violation {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]Violation, len(h.violations))
	copy(out, h.violations)
	return out
}

// Count returns the total number of violations detected (including those
// beyond the retention limit).
func (h *HazardChecker) Count() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.totalViolations
}
