package core

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

type testJob struct {
	seq    int
	trace  []string // stages executed, in order
	mu     sync.Mutex
	shared *[]string
	smu    *sync.Mutex
}

func (j *testJob) Seq() int { return j.seq }

func recordingStages(t *testing.T) ([NumStages]StageFunc, *[]string, *sync.Mutex) {
	var log []string
	var mu sync.Mutex
	var stages [NumStages]StageFunc
	for s := StageLoad; s < NumStages; s++ {
		s := s
		stages[s] = func(cycle int, job Job) error {
			tj := job.(*testJob)
			tj.mu.Lock()
			tj.trace = append(tj.trace, s.String())
			tj.mu.Unlock()
			mu.Lock()
			log = append(log, fmt.Sprintf("c%d:%s:j%d", cycle, s, tj.seq))
			mu.Unlock()
			return nil
		}
	}
	return stages, &log, &mu
}

func TestPipelineJobTraversal(t *testing.T) {
	for _, parallel := range []bool{false, true} {
		stages, _, _ := recordingStages(t)
		p := NewPipeline(stages, parallel)
		var completed []int
		jobs := make([]*testJob, 8)
		for i := range jobs {
			jobs[i] = &testJob{seq: i}
		}
		for i := 0; i < len(jobs); i++ {
			done, err := p.RunCycle(jobs[i])
			if err != nil {
				t.Fatal(err)
			}
			if done != nil {
				completed = append(completed, done.(*testJob).seq)
			}
		}
		if err := p.Drain(func(j Job) error {
			completed = append(completed, j.(*testJob).seq)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if len(completed) != 8 {
			t.Fatalf("parallel=%v: %d jobs completed", parallel, len(completed))
		}
		for i, seq := range completed {
			if seq != i {
				t.Fatalf("parallel=%v: completion order %v", parallel, completed)
			}
		}
		// Every job visited all six stages in order.
		for _, j := range jobs {
			if len(j.trace) != int(NumStages) {
				t.Fatalf("job %d executed %v", j.seq, j.trace)
			}
			for s, name := range j.trace {
				if name != Stage(s).String() {
					t.Fatalf("job %d stage order %v", j.seq, j.trace)
				}
			}
		}
		if p.InFlight() != 0 {
			t.Fatalf("pipeline not empty after drain: %d", p.InFlight())
		}
	}
}

func TestPipelineConcurrencyShape(t *testing.T) {
	stages, log, mu := recordingStages(t)
	p := NewPipeline(stages, false)
	for i := 0; i < 10; i++ {
		if _, err := p.RunCycle(&testJob{seq: i}); err != nil {
			t.Fatal(err)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	// At cycle 5 (0-based), all six stages must have executed: jobs 5..0.
	var atCycle5 int
	for _, e := range *log {
		if strings.HasPrefix(e, "c5:") {
			atCycle5++
		}
	}
	if atCycle5 != int(NumStages) {
		t.Fatalf("cycle 5 executed %d stages, want %d", atCycle5, NumStages)
	}
}

func TestPipelineStageError(t *testing.T) {
	var stages [NumStages]StageFunc
	stages[StageCollect] = func(cycle int, job Job) error {
		return fmt.Errorf("boom")
	}
	p := NewPipeline(stages, false)
	if _, err := p.RunCycle(&testJob{seq: 0}); err != nil {
		t.Fatalf("cycle 0: %v", err)
	}
	if _, err := p.RunCycle(nil); err != nil {
		t.Fatalf("cycle 1: %v", err)
	}
	// Cycle 2: job reaches Collect.
	if _, err := p.RunCycle(nil); err == nil {
		t.Fatal("stage error not propagated")
	}
}

func TestPipelineNilStagesAreNoOps(t *testing.T) {
	var stages [NumStages]StageFunc
	p := NewPipeline(stages, false)
	done, err := p.RunCycle(&testJob{seq: 0})
	if err != nil || done != nil {
		t.Fatalf("done=%v err=%v", done, err)
	}
	if err := p.Drain(nil); err != nil {
		t.Fatal(err)
	}
	if p.Cycle() != int(NumStages) {
		t.Fatalf("cycles = %d", p.Cycle())
	}
}

func TestPipelineCycleHookAndAccessors(t *testing.T) {
	var hooks []int
	stages, _, _ := recordingStages(t)
	p := NewPipeline(stages, false)
	p.SetCycleStartHook(func(c int) { hooks = append(hooks, c) })
	j0 := &testJob{seq: 0}
	if _, err := p.RunCycle(j0); err != nil {
		t.Fatal(err)
	}
	if len(hooks) != 1 || hooks[0] != 0 {
		t.Fatalf("hooks %v", hooks)
	}
	if p.AtStage(StageLoad) != Job(j0) {
		t.Fatal("AtStage(Load) mismatch")
	}
	exec := p.LastExecuted()
	if exec[StageLoad] != Job(j0) {
		t.Fatal("LastExecuted mismatch")
	}
	if p.InFlight() != 1 {
		t.Fatalf("in flight %d", p.InFlight())
	}
}

func TestStageString(t *testing.T) {
	want := []string{"Load", "Plan", "Collect", "Exchange", "Insert", "Train"}
	for i, s := range Stages {
		if s.String() != want[i] {
			t.Errorf("stage %d = %s", i, s)
		}
	}
	if Stage(99).String() == "" {
		t.Error("unknown stage string empty")
	}
}

func TestHazardCheckerOrdering(t *testing.T) {
	h := NewHazardChecker(0)
	h.BeginCycle(0)
	// Batch 0 writes a CPU row at cycle 0; batch 2 reads it at cycle 1:
	// physically and logically ordered -> no violation.
	h.Access(StageInsert, ResCPURow, 0, 42, true, 0)
	h.BeginCycle(1)
	h.Access(StageCollect, ResCPURow, 0, 42, false, 2)
	if h.Count() != 0 {
		t.Fatalf("ordered accesses flagged: %v", h.Violations())
	}
	// Batch 1 (logically earlier than 2) writes the same row at cycle 2
	// AFTER batch 2's read: stale-read hazard.
	h.BeginCycle(2)
	h.Access(StageInsert, ResCPURow, 0, 42, true, 1)
	if h.Count() != 1 {
		t.Fatalf("stale write not flagged: count=%d", h.Count())
	}
}

func TestHazardCheckerSameCycleConflict(t *testing.T) {
	h := NewHazardChecker(0)
	h.BeginCycle(5)
	h.Access(StageTrain, ResGPUSlot, 1, 7, true, 3)
	h.Access(StageCollect, ResGPUSlot, 1, 7, false, 6)
	if h.Count() != 1 {
		t.Fatalf("same-cycle write/read not flagged")
	}
	// Reads alone never conflict.
	h2 := NewHazardChecker(0)
	h2.BeginCycle(0)
	h2.Access(StageCollect, ResCPURow, 0, 1, false, 0)
	h2.Access(StageCollect, ResCPURow, 0, 1, false, 5)
	if h2.Count() != 0 {
		t.Fatal("read/read flagged")
	}
	// Same batch touching its own resource across stages is fine.
	h3 := NewHazardChecker(0)
	h3.BeginCycle(0)
	h3.Access(StageInsert, ResGPUSlot, 0, 2, true, 4)
	h3.Access(StageTrain, ResGPUSlot, 0, 2, true, 4)
	if h3.Count() != 0 {
		t.Fatal("same-batch accesses flagged")
	}
}

func TestHazardCheckerRetentionLimit(t *testing.T) {
	h := NewHazardChecker(2)
	h.BeginCycle(0)
	for i := 0; i < 5; i++ {
		h.Access(StageTrain, ResGPUSlot, 0, int64(i), true, 1)
		h.Access(StageCollect, ResGPUSlot, 0, int64(i), true, 2)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d", h.Count())
	}
	if len(h.Violations()) != 2 {
		t.Fatalf("retained = %d", len(h.Violations()))
	}
	if h.Violations()[0].String() == "" {
		t.Error("violation string empty")
	}
}
