package trace

import (
	"math"
	"math/rand"
	"strings"
	"testing"
)

func TestEmpiricalBasics(t *testing.T) {
	// 4 rows with counts 50, 30, 15, 5 (given shuffled).
	e, err := NewEmpirical([]int64{15, 50, 5, 30})
	if err != nil {
		t.Fatal(err)
	}
	if e.Rows() != 4 || e.TotalAccesses() != 100 {
		t.Fatalf("rows %d total %d", e.Rows(), e.TotalAccesses())
	}
	// Sorted hottest-first: CDF(0.25) = 0.50, CDF(0.5) = 0.80.
	if got := e.CDF(0.25); math.Abs(got-0.50) > 1e-12 {
		t.Errorf("CDF(0.25) = %v", got)
	}
	if got := e.CDF(0.5); math.Abs(got-0.80) > 1e-12 {
		t.Errorf("CDF(0.5) = %v", got)
	}
	if e.CDF(0) != 0 || e.CDF(1) != 1 {
		t.Error("CDF endpoints wrong")
	}
	var _ Distribution = e
}

func TestEmpiricalSampling(t *testing.T) {
	e, err := NewEmpirical([]int64{80, 15, 5})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(21))
	counts := make([]int, 3)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[e.Sample(rng)]++
	}
	if got := float64(counts[0]) / n; math.Abs(got-0.80) > 0.01 {
		t.Errorf("row 0 share %v, want ~0.80", got)
	}
	if got := float64(counts[2]) / n; math.Abs(got-0.05) > 0.01 {
		t.Errorf("row 2 share %v, want ~0.05", got)
	}
}

func TestEmpiricalZeroTailRows(t *testing.T) {
	e, err := NewEmpirical([]int64{10, 0, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(22))
	for i := 0; i < 1000; i++ {
		if s := e.Sample(rng); s != 0 {
			t.Fatalf("sampled zero-count row %d", s)
		}
	}
}

func TestEmpiricalValidation(t *testing.T) {
	if _, err := NewEmpirical(nil); err == nil {
		t.Error("empty counts accepted")
	}
	if _, err := NewEmpirical([]int64{0, 0}); err == nil {
		t.Error("all-zero counts accepted")
	}
	if _, err := NewEmpirical([]int64{5, -1}); err == nil {
		t.Error("negative count accepted")
	}
}

func TestParseCountsCSV(t *testing.T) {
	input := `# header comment
0,100
1,50

2,25
`
	counts, err := ParseCountsCSV(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if len(counts) != 3 || counts[0] != 100 || counts[2] != 25 {
		t.Fatalf("counts = %v", counts)
	}
	// Bare count column works too.
	counts, err = ParseCountsCSV(strings.NewReader("7\n9\n"))
	if err != nil || len(counts) != 2 || counts[1] != 9 {
		t.Fatalf("bare counts = %v, %v", counts, err)
	}
	if _, err := ParseCountsCSV(strings.NewReader("a,b\n")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := ParseCountsCSV(strings.NewReader("")); err == nil {
		t.Error("empty input accepted")
	}
}

func TestEmpiricalDrivesGenerator(t *testing.T) {
	counts := make([]int64, 1000)
	for i := range counts {
		counts[i] = int64(1000 - i) // gently decaying popularity
	}
	e, err := NewEmpirical(counts)
	if err != nil {
		t.Fatal(err)
	}
	dists := make([]Distribution, 2)
	for i := range dists {
		dists[i] = e
	}
	gen, err := NewGenerator(GeneratorConfig{
		NumTables:    2,
		RowsPerTable: 1000,
		Lookups:      4,
		BatchSize:    8,
		Dists:        dists,
		Seed:         3,
		MetadataOnly: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	b := gen.Next()
	for _, ids := range b.Tables {
		for _, id := range ids {
			if id < 0 || id >= 1000 {
				t.Fatalf("id %d out of range", id)
			}
		}
	}
}
