package trace

import (
	"fmt"
	"math/rand"
	"sort"
)

// AccessHistogram is the empirical characterization behind Figure 3: the
// sorted per-row access counts of a sampled trace, bucketed into Bins
// equal-width row-fraction bins so 10M-row tables stay plottable.
type AccessHistogram struct {
	// Rows is the table size the histogram was collected over.
	Rows int64
	// Samples is the number of lookups drawn.
	Samples int
	// BinCounts[i] is the total access count landing in the i-th bin of
	// rows after sorting rows hottest-first.
	BinCounts []int64
	// UniqueRows is the number of distinct rows touched.
	UniqueRows int
}

// CollectHistogram samples `samples` lookups from d and returns the sorted
// access-count histogram with `bins` bins.
func CollectHistogram(d Distribution, samples, bins int, seed int64) (*AccessHistogram, error) {
	if samples <= 0 || bins <= 0 {
		return nil, fmt.Errorf("trace: histogram: samples %d and bins %d must be positive", samples, bins)
	}
	rng := rand.New(rand.NewSource(seed))
	counts := make(map[int64]int64, samples)
	for i := 0; i < samples; i++ {
		counts[d.Sample(rng)]++
	}
	sorted := make([]int64, 0, len(counts))
	for _, c := range counts {
		sorted = append(sorted, c)
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] > sorted[j] })
	h := &AccessHistogram{
		Rows:       d.Rows(),
		Samples:    samples,
		BinCounts:  make([]int64, bins),
		UniqueRows: len(counts),
	}
	// Untouched rows are implicit zeros at the tail; distribute the
	// touched, sorted counts over the first len(sorted)/Rows fraction.
	for i, c := range sorted {
		bin := int(float64(i) / float64(h.Rows) * float64(bins))
		if bin >= bins {
			bin = bins - 1
		}
		h.BinCounts[bin] += c
	}
	return h, nil
}

// TopShare returns the fraction of sampled accesses captured by the top
// `frac` fraction of rows, computed from the histogram bins.
func (h *AccessHistogram) TopShare(frac float64) float64 {
	if frac <= 0 {
		return 0
	}
	nbins := float64(len(h.BinCounts))
	var sum int64
	covered := frac * nbins
	for i, c := range h.BinCounts {
		if float64(i+1) <= covered {
			sum += c
			continue
		}
		if float64(i) < covered {
			sum += int64(float64(c) * (covered - float64(i)))
		}
		break
	}
	return float64(sum) / float64(h.Samples)
}

// StaticHitRate returns the analytic hit rate of a static top-N cache that
// holds the top cacheFrac fraction of rows of distribution d — the quantity
// plotted in Figure 6. For a sorted-hotness distribution this is exactly
// the access CDF.
func StaticHitRate(d Distribution, cacheFrac float64) float64 {
	return d.CDF(cacheFrac)
}

// HitRateCurve evaluates StaticHitRate at the given cache fractions.
func HitRateCurve(d Distribution, fracs []float64) []float64 {
	out := make([]float64, len(fracs))
	for i, f := range fracs {
		out[i] = StaticHitRate(d, f)
	}
	return out
}

// BatchStats summarizes the sparse-ID structure of a batch for one table:
// how many IDs it carries and how many are distinct. Duplicate IDs are what
// force the gradient duplicate-and-coalesce step of Figure 2(b).
type BatchStats struct {
	TotalIDs  int
	UniqueIDs int
}

// StatsFor computes BatchStats for table t of batch b.
func StatsFor(b *Batch, t int) BatchStats {
	return BatchStats{TotalIDs: len(b.Tables[t]), UniqueIDs: len(b.UniqueIDs(t))}
}
