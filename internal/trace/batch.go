package trace

import (
	"fmt"
	"math/rand"
)

// Batch is one training mini-batch's worth of sparse feature IDs: for each
// embedding table, Lookups IDs per sample, flattened sample-major. These
// are the indices the dataset records for embedding gathers (forward) and
// gradient scatters (backward) — the information ScratchPipe's Plan stage
// reads ahead of time.
type Batch struct {
	// Seq is the 0-based position of this batch in the dataset stream.
	Seq int
	// BatchSize is the number of samples.
	BatchSize int
	// Lookups is the number of embedding gathers per sample per table.
	Lookups int
	// Tables[t] holds BatchSize*Lookups row IDs for table t, sample-major:
	// IDs for sample s occupy Tables[t][s*Lookups : (s+1)*Lookups].
	Tables [][]int64
	// Dense holds the continuous features for each sample, sample-major
	// (BatchSize x DenseDim), used by the bottom MLP. May be nil when the
	// consumer only needs sparse IDs (metadata-mode simulation).
	Dense []float32
	// DenseDim is the number of continuous features per sample.
	DenseDim int
	// Labels holds the click/no-click label per sample in {0,1}. May be
	// nil in metadata mode.
	Labels []float32
}

// NumTables returns the number of embedding tables the batch addresses.
func (b *Batch) NumTables() int { return len(b.Tables) }

// TotalIDs returns the number of sparse IDs per table (BatchSize*Lookups).
func (b *Batch) TotalIDs() int { return b.BatchSize * b.Lookups }

// UniqueIDs returns the deduplicated IDs of table t in first-appearance
// order. The order is deterministic so every engine coalesces gradients
// identically (required for the bitwise-equivalence tests).
func (b *Batch) UniqueIDs(t int) []int64 {
	ids := b.Tables[t]
	seen := make(map[int64]struct{}, len(ids))
	out := make([]int64, 0, len(ids))
	for _, id := range ids {
		if _, ok := seen[id]; ok {
			continue
		}
		seen[id] = struct{}{}
		out = append(out, id)
	}
	return out
}

// GeneratorConfig configures a synthetic trace generator.
type GeneratorConfig struct {
	// NumTables is the number of embedding tables (paper default: 8).
	NumTables int
	// RowsPerTable is the number of rows in each table (default: 10M).
	RowsPerTable int64
	// Lookups is the number of gathers per table per sample (default: 20).
	Lookups int
	// BatchSize is the mini-batch size (default: 2048).
	BatchSize int
	// DenseDim is the number of continuous features (default: 13, the
	// Criteo/MLPerf-DLRM count). Zero disables dense generation.
	DenseDim int
	// Class selects the locality class used for every table unless
	// Dists overrides it.
	Class Class
	// Dists optionally overrides the per-table distribution; when set it
	// must have NumTables entries.
	Dists []Distribution
	// Seed seeds the deterministic PRNG stream.
	Seed int64
	// MetadataOnly skips dense feature and label generation; batches
	// carry only sparse IDs. Used for paper-scale timing simulation.
	MetadataOnly bool
}

// Validate reports a descriptive error for an unusable configuration.
func (c GeneratorConfig) Validate() error {
	if c.NumTables <= 0 {
		return fmt.Errorf("trace: generator: NumTables %d <= 0", c.NumTables)
	}
	if c.RowsPerTable <= 0 {
		return fmt.Errorf("trace: generator: RowsPerTable %d <= 0", c.RowsPerTable)
	}
	if c.Lookups <= 0 {
		return fmt.Errorf("trace: generator: Lookups %d <= 0", c.Lookups)
	}
	if c.BatchSize <= 0 {
		return fmt.Errorf("trace: generator: BatchSize %d <= 0", c.BatchSize)
	}
	if c.DenseDim < 0 {
		return fmt.Errorf("trace: generator: DenseDim %d < 0", c.DenseDim)
	}
	if c.Dists != nil && len(c.Dists) != c.NumTables {
		return fmt.Errorf("trace: generator: %d distributions for %d tables", len(c.Dists), c.NumTables)
	}
	return nil
}

// Generator produces an endless, deterministic stream of mini-batches. It
// implements Source, the interface ScratchPipe's dataset loader consumes.
//
// Sparse IDs and dense features draw from two independent PRNG streams so
// that the ID sequence — which all cache behaviour and therefore all
// simulated timing depends on — is identical whether or not dense features
// are generated (metadata vs functional mode).
type Generator struct {
	cfg      GeneratorConfig
	dists    []Distribution
	rngIDs   *rand.Rand
	rngDense *rand.Rand
	seq      int
}

// NewGenerator builds a generator from cfg, materializing the per-table
// distributions for the configured class when none are supplied.
func NewGenerator(cfg GeneratorConfig) (*Generator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	dists := cfg.Dists
	if dists == nil {
		dists = make([]Distribution, cfg.NumTables)
		for t := range dists {
			d, err := NewClassDistribution(cfg.Class, cfg.RowsPerTable)
			if err != nil {
				return nil, err
			}
			dists[t] = d
		}
	}
	for t, d := range dists {
		if d.Rows() != cfg.RowsPerTable {
			return nil, fmt.Errorf("trace: generator: table %d distribution has %d rows, config says %d", t, d.Rows(), cfg.RowsPerTable)
		}
	}
	return &Generator{
		cfg:      cfg,
		dists:    dists,
		rngIDs:   rand.New(rand.NewSource(cfg.Seed)),
		rngDense: rand.New(rand.NewSource(cfg.Seed ^ 0x5DEECE66D)),
	}, nil
}

// Config returns the generator's configuration.
func (g *Generator) Config() GeneratorConfig { return g.cfg }

// Dists returns the per-table access distributions (shared, read-only).
func (g *Generator) Dists() []Distribution {
	out := make([]Distribution, len(g.dists))
	copy(out, g.dists)
	return out
}

// Next produces the next mini-batch in the stream.
func (g *Generator) Next() *Batch {
	b := &Batch{
		Seq:       g.seq,
		BatchSize: g.cfg.BatchSize,
		Lookups:   g.cfg.Lookups,
		Tables:    make([][]int64, g.cfg.NumTables),
		DenseDim:  g.cfg.DenseDim,
	}
	g.seq++
	n := b.TotalIDs()
	for t := 0; t < g.cfg.NumTables; t++ {
		ids := make([]int64, n)
		for i := range ids {
			ids[i] = g.dists[t].Sample(g.rngIDs)
		}
		b.Tables[t] = ids
	}
	if !g.cfg.MetadataOnly && g.cfg.DenseDim > 0 {
		b.Dense = make([]float32, g.cfg.BatchSize*g.cfg.DenseDim)
		for i := range b.Dense {
			b.Dense[i] = float32(g.rngDense.NormFloat64())
		}
		b.Labels = make([]float32, g.cfg.BatchSize)
		for i := range b.Labels {
			if g.rngDense.Float64() < 0.5 {
				b.Labels[i] = 1
			}
		}
	}
	return b
}

// Source is any producer of an ordered mini-batch stream. Both the
// synthetic Generator and the file-backed Reader satisfy it.
type Source interface {
	Next() *Batch
}
