package trace

import (
	"fmt"
	"math/rand"

	"repro/internal/intmap"
)

// Batch is one training mini-batch's worth of sparse feature IDs: for each
// embedding table, Lookups IDs per sample, flattened sample-major. These
// are the indices the dataset records for embedding gathers (forward) and
// gradient scatters (backward) — the information ScratchPipe's Plan stage
// reads ahead of time.
type Batch struct {
	// Seq is the 0-based position of this batch in the dataset stream.
	Seq int
	// BatchSize is the number of samples.
	BatchSize int
	// Lookups is the number of embedding gathers per sample per table.
	Lookups int
	// Tables[t] holds BatchSize*Lookups row IDs for table t, sample-major:
	// IDs for sample s occupy Tables[t][s*Lookups : (s+1)*Lookups].
	Tables [][]int64
	// Dense holds the continuous features for each sample, sample-major
	// (BatchSize x DenseDim), used by the bottom MLP. May be nil when the
	// consumer only needs sparse IDs (metadata-mode simulation).
	Dense []float32
	// DenseDim is the number of continuous features per sample.
	DenseDim int
	// Labels holds the click/no-click label per sample in {0,1}. May be
	// nil in metadata mode.
	Labels []float32
	// Uniq[t]/Cnt[t] are table t's distinct IDs in first-appearance
	// order with their occurrence counts, deduplicated once at
	// generation time so every consumer (Plan classification, pin
	// passes, cache statistics) works on the distinct working set
	// instead of re-deduplicating the occurrence stream. Nil for
	// batches from sources that do not precompute them; UniqueIDs
	// builds and memoizes on demand.
	Uniq [][]int64
	Cnt  [][]int32
}

// NumTables returns the number of embedding tables the batch addresses.
func (b *Batch) NumTables() int { return len(b.Tables) }

// TotalIDs returns the number of sparse IDs per table (BatchSize*Lookups).
func (b *Batch) TotalIDs() int { return b.BatchSize * b.Lookups }

// UniqueIDs returns the deduplicated IDs of table t in first-appearance
// order. The order is deterministic so every engine coalesces gradients
// identically (required for the bitwise-equivalence tests). The result
// is memoized on the batch; callers must not mutate it.
func (b *Batch) UniqueIDs(t int) []int64 {
	u, _ := b.UniqueWithCounts(t)
	return u
}

// UniqueWithCounts returns table t's distinct IDs (first-appearance
// order) alongside each ID's occurrence count, computing and memoizing
// them if the batch's source did not. Not safe for concurrent first
// computation on the same table; engines prepare batches serially before
// fanning per-table work out.
func (b *Batch) UniqueWithCounts(t int) ([]int64, []int32) {
	if b.Uniq == nil {
		b.Uniq = make([][]int64, len(b.Tables))
		b.Cnt = make([][]int32, len(b.Tables))
	}
	if b.Uniq[t] == nil {
		b.Uniq[t], b.Cnt[t] = intmap.Dedup(b.Tables[t], intmap.New(len(b.Tables[t])), nil, nil)
	}
	return b.Uniq[t], b.Cnt[t]
}

// EnsureUnique precomputes every table's distinct-ID lists so later
// concurrent per-table UniqueWithCounts calls are read-only. Engines
// call it once, from a single goroutine, before fanning per-table work
// out (for generator batches the lists already exist and this is a
// cheap memo check).
func (b *Batch) EnsureUnique() {
	for t := range b.Tables {
		b.UniqueWithCounts(t)
	}
}

// GeneratorConfig configures a synthetic trace generator.
type GeneratorConfig struct {
	// NumTables is the number of embedding tables (paper default: 8).
	NumTables int
	// RowsPerTable is the number of rows in each table (default: 10M).
	RowsPerTable int64
	// Lookups is the number of gathers per table per sample (default: 20).
	Lookups int
	// BatchSize is the mini-batch size (default: 2048).
	BatchSize int
	// DenseDim is the number of continuous features (default: 13, the
	// Criteo/MLPerf-DLRM count). Zero disables dense generation.
	DenseDim int
	// Class selects the locality class used for every table unless
	// Dists overrides it.
	Class Class
	// Dists optionally overrides the per-table distribution; when set it
	// must have NumTables entries.
	Dists []Distribution
	// Seed seeds the deterministic PRNG stream.
	Seed int64
	// MetadataOnly skips dense feature and label generation; batches
	// carry only sparse IDs. Used for paper-scale timing simulation.
	MetadataOnly bool
}

// Validate reports a descriptive error for an unusable configuration.
func (c GeneratorConfig) Validate() error {
	if c.NumTables <= 0 {
		return fmt.Errorf("trace: generator: NumTables %d <= 0", c.NumTables)
	}
	if c.RowsPerTable <= 0 {
		return fmt.Errorf("trace: generator: RowsPerTable %d <= 0", c.RowsPerTable)
	}
	if c.Lookups <= 0 {
		return fmt.Errorf("trace: generator: Lookups %d <= 0", c.Lookups)
	}
	if c.BatchSize <= 0 {
		return fmt.Errorf("trace: generator: BatchSize %d <= 0", c.BatchSize)
	}
	if c.DenseDim < 0 {
		return fmt.Errorf("trace: generator: DenseDim %d < 0", c.DenseDim)
	}
	if c.Dists != nil && len(c.Dists) != c.NumTables {
		return fmt.Errorf("trace: generator: %d distributions for %d tables", len(c.Dists), c.NumTables)
	}
	return nil
}

// Generator produces an endless, deterministic stream of mini-batches. It
// implements Source, the interface ScratchPipe's dataset loader consumes.
//
// Sparse IDs and dense features draw from two independent PRNG streams so
// that the ID sequence — which all cache behaviour and therefore all
// simulated timing depends on — is identical whether or not dense features
// are generated (metadata vs functional mode).
type Generator struct {
	cfg      GeneratorConfig
	dists    []Distribution
	rngIDs   *rand.Rand
	rngDense *rand.Rand
	seq      int
	// free recycles retired batches (engines opt in via Recycle):
	// batches are the steady-state loop's largest remaining allocation.
	free []*Batch
	// seen is the dedup scratch reused across batches (O(1) clear).
	seen *intmap.Map
}

// NewGenerator builds a generator from cfg, materializing the per-table
// distributions for the configured class when none are supplied.
func NewGenerator(cfg GeneratorConfig) (*Generator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	dists := cfg.Dists
	if dists == nil {
		dists = make([]Distribution, cfg.NumTables)
		for t := range dists {
			d, err := NewClassDistribution(cfg.Class, cfg.RowsPerTable)
			if err != nil {
				return nil, err
			}
			dists[t] = d
		}
	}
	for t, d := range dists {
		if d.Rows() != cfg.RowsPerTable {
			return nil, fmt.Errorf("trace: generator: table %d distribution has %d rows, config says %d", t, d.Rows(), cfg.RowsPerTable)
		}
	}
	return &Generator{
		cfg:      cfg,
		dists:    dists,
		rngIDs:   rand.New(rand.NewSource(cfg.Seed)),
		rngDense: rand.New(rand.NewSource(cfg.Seed ^ 0x5DEECE66D)),
		seen:     intmap.New(cfg.BatchSize * cfg.Lookups),
	}, nil
}

// Config returns the generator's configuration.
func (g *Generator) Config() GeneratorConfig { return g.cfg }

// Dists returns the per-table access distributions (shared, read-only).
func (g *Generator) Dists() []Distribution {
	out := make([]Distribution, len(g.dists))
	copy(out, g.dists)
	return out
}

// Next produces the next mini-batch in the stream.
func (g *Generator) Next() *Batch {
	var b *Batch
	if n := len(g.free); n > 0 {
		b = g.free[n-1]
		g.free[n-1] = nil
		g.free = g.free[:n-1]
		b.Seq = g.seq
	} else {
		b = &Batch{
			Seq:       g.seq,
			BatchSize: g.cfg.BatchSize,
			Lookups:   g.cfg.Lookups,
			Tables:    make([][]int64, g.cfg.NumTables),
			Uniq:      make([][]int64, g.cfg.NumTables),
			Cnt:       make([][]int32, g.cfg.NumTables),
			DenseDim:  g.cfg.DenseDim,
		}
		n := b.TotalIDs()
		// One flat backing array for all tables' IDs: a batch costs
		// two allocations instead of NumTables+1.
		flat := make([]int64, n*g.cfg.NumTables)
		for t := 0; t < g.cfg.NumTables; t++ {
			b.Tables[t] = flat[t*n : (t+1)*n : (t+1)*n]
			b.Uniq[t] = make([]int64, 0, n)
			b.Cnt[t] = make([]int32, 0, n)
		}
		if !g.cfg.MetadataOnly && g.cfg.DenseDim > 0 {
			b.Dense = make([]float32, g.cfg.BatchSize*g.cfg.DenseDim)
			b.Labels = make([]float32, g.cfg.BatchSize)
		}
	}
	g.seq++
	for t := 0; t < g.cfg.NumTables; t++ {
		ids := b.Tables[t]
		dist := g.dists[t]
		for i := range ids {
			ids[i] = dist.Sample(g.rngIDs)
		}
		b.Uniq[t], b.Cnt[t] = intmap.Dedup(ids, g.seen, b.Uniq[t][:0], b.Cnt[t][:0])
	}
	if !g.cfg.MetadataOnly && g.cfg.DenseDim > 0 {
		for i := range b.Dense {
			b.Dense[i] = float32(g.rngDense.NormFloat64())
		}
		for i := range b.Labels {
			b.Labels[i] = 0
			if g.rngDense.Float64() < 0.5 {
				b.Labels[i] = 1
			}
		}
	}
	return b
}

// Recycle hands a retired batch back for reuse by a future Next. The
// caller must have dropped every reference into the batch (including
// subslices of Tables); engines call it once a batch has fully left
// their pipeline.
func (g *Generator) Recycle(b *Batch) {
	if b == nil {
		return
	}
	g.free = append(g.free, b)
}

// Source is any producer of an ordered mini-batch stream. Both the
// synthetic Generator and the file-backed Reader satisfy it.
type Source interface {
	Next() *Batch
}
