package trace

import "fmt"

// Loader is the dataset loader of the paper's [Load Input Mini-batch]
// stage, extended with the capability that makes ScratchPipe possible at
// all: *look-ahead*. Because the training dataset records the sparse IDs of
// every future iteration, the loader can expose not just the current batch
// but the next K batches, which the Plan stage uses to build its
// future-window hold masks.
//
// The loader keeps a ring of prefetched batches: Current() is the batch
// about to enter the pipeline and Peek(k) looks k batches ahead.
type Loader struct {
	src    Source
	window []*Batch // ring: window[0] is current
	ahead  int
}

// NewLoader wraps src with a look-ahead window of `ahead` future batches
// (the paper's ScratchPipe uses 2, the future-window width).
func NewLoader(src Source, ahead int) (*Loader, error) {
	if ahead < 0 {
		return nil, fmt.Errorf("trace: loader: negative look-ahead %d", ahead)
	}
	l := &Loader{src: src, ahead: ahead}
	l.window = make([]*Batch, ahead+1)
	for i := range l.window {
		l.window[i] = src.Next()
	}
	return l, nil
}

// Ahead returns the configured look-ahead depth.
func (l *Loader) Ahead() int { return l.ahead }

// Current returns the batch at the head of the stream without consuming it.
func (l *Loader) Current() *Batch { return l.window[0] }

// Peek returns the batch k positions ahead of Current (Peek(0) == Current).
// k must be within the configured look-ahead.
func (l *Loader) Peek(k int) *Batch {
	if k < 0 || k > l.ahead {
		panic(fmt.Sprintf("trace: loader: Peek(%d) outside look-ahead window [0,%d]", k, l.ahead))
	}
	return l.window[k]
}

// Advance consumes the current batch and pulls one more batch into the
// look-ahead window, returning the batch that was consumed.
func (l *Loader) Advance() *Batch {
	head := l.window[0]
	copy(l.window, l.window[1:])
	l.window[len(l.window)-1] = l.src.Next()
	return head
}
