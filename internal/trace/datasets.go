package trace

import "fmt"

// DatasetTable is one named embedding table of a real-world dataset preset
// together with its fitted access distribution.
type DatasetTable struct {
	Name string
	Dist Distribution
}

// Dataset is a named preset mimicking one of the four real-world datasets
// the paper characterizes in Figures 3 and 6.
type Dataset struct {
	Name   string
	Tables []DatasetTable
}

// DatasetNames lists the presets in the paper's presentation order.
var DatasetNames = []string{"Alibaba", "KaggleAnime", "MovieLens", "Criteo"}

// NewDataset returns the named dataset preset with rows rows per table.
// The per-table CDF knots are fitted to Figure 6's hit-rate curves:
//
//   - Alibaba (a): both User and Item curves rise almost linearly — very
//     low locality; >90% hit needs >65% of the table cached.
//   - Kaggle Anime (b): the Item table is much hotter than the User table.
//   - MovieLens (c): medium locality on both tables.
//   - Criteo (d): several tables where a tiny head captures nearly all
//     traffic, plus a few colder ones (the paper plots tables 0..21).
func NewDataset(name string, rows int64) (*Dataset, error) {
	pw := func(pts []Point) Distribution { return MustPiecewise(rows, pts) }
	switch name {
	case "Alibaba":
		return &Dataset{Name: name, Tables: []DatasetTable{
			{"User", pw([]Point{{0.02, 0.085}, {0.10, 0.30}, {0.30, 0.62}, {0.65, 0.905}, {1, 1}})},
			{"Item", pw([]Point{{0.02, 0.12}, {0.10, 0.36}, {0.30, 0.68}, {0.65, 0.92}, {1, 1}})},
		}}, nil
	case "KaggleAnime":
		return &Dataset{Name: name, Tables: []DatasetTable{
			{"User", pw([]Point{{0.02, 0.18}, {0.10, 0.48}, {0.30, 0.78}, {0.65, 0.95}, {1, 1}})},
			{"Item", pw([]Point{{0.005, 0.30}, {0.02, 0.55}, {0.10, 0.82}, {0.30, 0.96}, {1, 1}})},
		}}, nil
	case "MovieLens":
		return &Dataset{Name: name, Tables: []DatasetTable{
			{"User", pw([]Point{{0.02, 0.30}, {0.10, 0.60}, {0.30, 0.85}, {0.65, 0.97}, {1, 1}})},
			{"Item", pw([]Point{{0.005, 0.25}, {0.02, 0.48}, {0.10, 0.75}, {0.30, 0.93}, {1, 1}})},
		}}, nil
	case "Criteo":
		mk := func(headShare float64) Distribution {
			return pw([]Point{
				{0.0005, headShare * 0.45},
				{0.02, headShare},
				{0.10, headShare + (1-headShare)*0.72},
				{0.30, headShare + (1-headShare)*0.93},
				{1, 1},
			})
		}
		tables := []DatasetTable{
			{"Table0", mk(0.90)},
			{"Table9", mk(0.86)},
			{"Table10", mk(0.82)},
			{"Table11", mk(0.80)},
			{"Table19", mk(0.74)},
			{"Table20", mk(0.66)},
			{"Table21", mk(0.58)},
		}
		return &Dataset{Name: name, Tables: tables}, nil
	}
	return nil, fmt.Errorf("trace: unknown dataset preset %q", name)
}
