package trace

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPiecewiseValidation(t *testing.T) {
	cases := []struct {
		name string
		rows int64
		pts  []Point
		ok   bool
	}{
		{"valid", 100, []Point{{0.1, 0.5}, {1, 1}}, true},
		{"no points", 100, nil, false},
		{"zero rows", 0, []Point{{1, 1}}, false},
		{"not ending at 1,1", 100, []Point{{0.5, 0.9}}, false},
		{"non increasing rowfrac", 100, []Point{{0.5, 0.5}, {0.5, 0.8}, {1, 1}}, false},
		{"non increasing share", 100, []Point{{0.5, 0.5}, {0.7, 0.5}, {1, 1}}, false},
		{"increasing density", 100, []Point{{0.5, 0.2}, {1, 1}}, false},
		{"exceeds one", 100, []Point{{0.5, 1.2}, {1, 1}}, false},
	}
	for _, c := range cases {
		_, err := NewPiecewise(c.rows, c.pts)
		if (err == nil) != c.ok {
			t.Errorf("%s: err=%v, want ok=%v", c.name, err, c.ok)
		}
	}
}

func TestPiecewiseCDFEndpoints(t *testing.T) {
	d := MustPiecewise(1000, []Point{{0.02, 0.5}, {0.3, 0.9}, {1, 1}})
	if got := d.CDF(0); got != 0 {
		t.Errorf("CDF(0) = %v", got)
	}
	if got := d.CDF(1); got != 1 {
		t.Errorf("CDF(1) = %v", got)
	}
	if got := d.CDF(0.02); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("CDF(0.02) = %v, want 0.5", got)
	}
	if got := d.CDF(0.3); math.Abs(got-0.9) > 1e-12 {
		t.Errorf("CDF(0.3) = %v, want 0.9", got)
	}
	// Interpolation halfway through the first segment.
	if got := d.CDF(0.01); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("CDF(0.01) = %v, want 0.25", got)
	}
}

// TestCDFMonotoneProperty: every distribution's CDF is monotone
// non-decreasing and bounded in [0,1].
func TestCDFMonotoneProperty(t *testing.T) {
	dists := []Distribution{
		MustPiecewise(10000, []Point{{0.005, 0.3}, {0.1, 0.8}, {1, 1}}),
		mustUniform(t, 10000),
		mustZipf(t, 10000, 1.3, 1),
	}
	for _, d := range dists {
		f := func(a, b float64) bool {
			a, b = math.Abs(math.Mod(a, 1)), math.Abs(math.Mod(b, 1))
			if a > b {
				a, b = b, a
			}
			ca, cb := d.CDF(a), d.CDF(b)
			return ca >= 0 && cb <= 1 && ca <= cb+1e-12
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
			t.Errorf("%T: %v", d, err)
		}
	}
}

// TestSampleInRangeProperty: samples always fall inside [0, Rows).
func TestSampleInRangeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	dists := []Distribution{
		MustPiecewise(777, []Point{{0.01, 0.4}, {1, 1}}),
		mustUniform(t, 777),
		mustZipf(t, 777, 1.5, 2),
	}
	for _, d := range dists {
		for i := 0; i < 20000; i++ {
			s := d.Sample(rng)
			if s < 0 || s >= d.Rows() {
				t.Fatalf("%T: sample %d out of [0,%d)", d, s, d.Rows())
			}
		}
	}
}

// TestSampleMatchesCDF: the empirical share of samples landing in the top
// f fraction of rows tracks the analytic CDF.
func TestSampleMatchesCDF(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	d := MustPiecewise(100000, []Point{{0.02, 0.6}, {0.2, 0.9}, {1, 1}})
	const n = 200000
	cut02 := int64(0.02 * 100000)
	cut20 := int64(0.2 * 100000)
	var in02, in20 int
	for i := 0; i < n; i++ {
		s := d.Sample(rng)
		if s < cut02 {
			in02++
		}
		if s < cut20 {
			in20++
		}
	}
	if got := float64(in02) / n; math.Abs(got-0.6) > 0.01 {
		t.Errorf("top-2%% share = %v, want ~0.6", got)
	}
	if got := float64(in20) / n; math.Abs(got-0.9) > 0.01 {
		t.Errorf("top-20%% share = %v, want ~0.9", got)
	}
}

func TestClassDistributionsMatchPaperQuotes(t *testing.T) {
	const rows = 10_000_000
	low := MustClassDistribution(Low, rows)
	if got := low.CDF(0.02); math.Abs(got-0.085) > 1e-9 {
		t.Errorf("Low top-2%% = %v, want 0.085 (Alibaba quote)", got)
	}
	if got := low.CDF(0.65); got < 0.90 {
		t.Errorf("Low top-65%% = %v, want >= 0.90 (>90%% hit needs >65%% cached)", got)
	}
	high := MustClassDistribution(High, rows)
	if got := high.CDF(0.02); got < 0.80 {
		t.Errorf("High top-2%% = %v, want > 0.80 (Criteo quote)", got)
	}
	random := MustClassDistribution(Random, rows)
	if got := random.CDF(0.25); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("Random CDF(0.25) = %v", got)
	}
	// Locality ordering: at every cache size, High >= Medium >= Low >= Random.
	med := MustClassDistribution(Medium, rows)
	for _, f := range []float64{0.01, 0.02, 0.05, 0.1, 0.3, 0.6} {
		if !(high.CDF(f) >= med.CDF(f) && med.CDF(f) >= low.CDF(f) && low.CDF(f) >= random.CDF(f)) {
			t.Errorf("locality ordering violated at %v: %v %v %v %v",
				f, high.CDF(f), med.CDF(f), low.CDF(f), random.CDF(f))
		}
	}
}

func TestParseClass(t *testing.T) {
	for _, c := range Classes {
		got, err := ParseClass(c.String())
		if err != nil || got != c {
			t.Errorf("ParseClass(%q) = %v, %v", c.String(), got, err)
		}
	}
	if _, err := ParseClass("bogus"); err == nil {
		t.Error("ParseClass(bogus) succeeded")
	}
}

func TestZipfCDF(t *testing.T) {
	z := mustZipf(t, 1_000_000, 1.2, 1)
	if z.CDF(0) != 0 || z.CDF(1) != 1 {
		t.Fatalf("zipf CDF endpoints: %v %v", z.CDF(0), z.CDF(1))
	}
	// Head heaviness: top 1% of a s=1.2 Zipf over 1M rows captures well
	// over half the mass.
	if got := z.CDF(0.01); got < 0.5 {
		t.Errorf("zipf top-1%% = %v, want > 0.5", got)
	}
	if _, err := NewZipf(10, 1.0, 1); err == nil {
		t.Error("NewZipf(s=1) succeeded, want error")
	}
}

func mustUniform(t *testing.T, rows int64) *Uniform {
	t.Helper()
	u, err := NewUniform(rows)
	if err != nil {
		t.Fatal(err)
	}
	return u
}

func mustZipf(t *testing.T, rows int64, s, v float64) *Zipf {
	t.Helper()
	z, err := NewZipf(rows, s, v)
	if err != nil {
		t.Fatal(err)
	}
	return z
}
