package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// traceMagic identifies the on-disk trace format.
const traceMagic = "SPTRACE1"

// Header describes a serialized trace file.
type Header struct {
	NumTables    int32
	RowsPerTable int64
	Lookups      int32
	BatchSize    int32
	NumBatches   int32
}

// WriteTrace serializes batches (sparse IDs only) to w. Dense features and
// labels are not stored: the trace format exists to reproduce embedding
// access patterns, which is all the caching experiments consume.
func WriteTrace(w io.Writer, rowsPerTable int64, batches []*Batch) error {
	if len(batches) == 0 {
		return fmt.Errorf("trace: write: no batches")
	}
	first := batches[0]
	h := Header{
		NumTables:    int32(first.NumTables()),
		RowsPerTable: rowsPerTable,
		Lookups:      int32(first.Lookups),
		BatchSize:    int32(first.BatchSize),
		NumBatches:   int32(len(batches)),
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(traceMagic); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, h); err != nil {
		return err
	}
	for i, b := range batches {
		if b.NumTables() != int(h.NumTables) || b.BatchSize != int(h.BatchSize) || b.Lookups != int(h.Lookups) {
			return fmt.Errorf("trace: write: batch %d shape differs from batch 0", i)
		}
		for _, ids := range b.Tables {
			if err := binary.Write(bw, binary.LittleEndian, ids); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadTrace deserializes a trace written by WriteTrace.
func ReadTrace(r io.Reader) (Header, []*Batch, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(traceMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return Header{}, nil, fmt.Errorf("trace: read: %w", err)
	}
	if string(magic) != traceMagic {
		return Header{}, nil, fmt.Errorf("trace: read: bad magic %q", magic)
	}
	var h Header
	if err := binary.Read(br, binary.LittleEndian, &h); err != nil {
		return Header{}, nil, fmt.Errorf("trace: read: header: %w", err)
	}
	if h.NumTables <= 0 || h.BatchSize <= 0 || h.Lookups <= 0 || h.NumBatches <= 0 {
		return Header{}, nil, fmt.Errorf("trace: read: invalid header %+v", h)
	}
	batches := make([]*Batch, 0, h.NumBatches)
	n := int(h.BatchSize) * int(h.Lookups)
	for i := 0; i < int(h.NumBatches); i++ {
		b := &Batch{
			Seq:       i,
			BatchSize: int(h.BatchSize),
			Lookups:   int(h.Lookups),
			Tables:    make([][]int64, h.NumTables),
		}
		for t := range b.Tables {
			ids := make([]int64, n)
			if err := binary.Read(br, binary.LittleEndian, ids); err != nil {
				return Header{}, nil, fmt.Errorf("trace: read: batch %d table %d: %w", i, t, err)
			}
			for _, id := range ids {
				if id < 0 || id >= h.RowsPerTable {
					return Header{}, nil, fmt.Errorf("trace: read: batch %d table %d: id %d out of [0,%d)", i, t, id, h.RowsPerTable)
				}
			}
			b.Tables[t] = ids
		}
		batches = append(batches, b)
	}
	return h, batches, nil
}

// SliceSource replays a fixed batch list, cycling when exhausted, so finite
// recorded traces can drive arbitrarily long training runs.
type SliceSource struct {
	batches []*Batch
	next    int
	seq     int
}

// NewSliceSource wraps batches as a cycling Source.
func NewSliceSource(batches []*Batch) (*SliceSource, error) {
	if len(batches) == 0 {
		return nil, fmt.Errorf("trace: slice source: no batches")
	}
	return &SliceSource{batches: batches}, nil
}

// Next implements Source. Replayed batches get fresh sequence numbers but
// share underlying ID storage with the recorded batches.
func (s *SliceSource) Next() *Batch {
	src := s.batches[s.next]
	s.next = (s.next + 1) % len(s.batches)
	b := *src
	b.Seq = s.seq
	s.seq++
	return &b
}
