package trace

import (
	"bytes"
	"testing"
)

func testGenConfig() GeneratorConfig {
	return GeneratorConfig{
		NumTables:    3,
		RowsPerTable: 5000,
		Lookups:      4,
		BatchSize:    8,
		DenseDim:     5,
		Class:        Medium,
		Seed:         99,
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	g1, err := NewGenerator(testGenConfig())
	if err != nil {
		t.Fatal(err)
	}
	g2, err := NewGenerator(testGenConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		a, b := g1.Next(), g2.Next()
		if a.Seq != i || b.Seq != i {
			t.Fatalf("seq %d/%d, want %d", a.Seq, b.Seq, i)
		}
		for tt := range a.Tables {
			for j := range a.Tables[tt] {
				if a.Tables[tt][j] != b.Tables[tt][j] {
					t.Fatalf("batch %d table %d id %d differs", i, tt, j)
				}
			}
		}
		for j := range a.Dense {
			if a.Dense[j] != b.Dense[j] {
				t.Fatalf("batch %d dense %d differs", i, j)
			}
		}
	}
}

func TestGeneratorShapes(t *testing.T) {
	g, err := NewGenerator(testGenConfig())
	if err != nil {
		t.Fatal(err)
	}
	b := g.Next()
	if b.NumTables() != 3 {
		t.Errorf("NumTables = %d", b.NumTables())
	}
	if b.TotalIDs() != 32 {
		t.Errorf("TotalIDs = %d", b.TotalIDs())
	}
	if len(b.Dense) != 8*5 || len(b.Labels) != 8 {
		t.Errorf("dense %d labels %d", len(b.Dense), len(b.Labels))
	}
	for _, ids := range b.Tables {
		if len(ids) != 32 {
			t.Errorf("table ids %d", len(ids))
		}
		for _, id := range ids {
			if id < 0 || id >= 5000 {
				t.Errorf("id %d out of range", id)
			}
		}
	}
}

func TestGeneratorMetadataOnly(t *testing.T) {
	cfg := testGenConfig()
	cfg.MetadataOnly = true
	g, err := NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b := g.Next()
	if b.Dense != nil || b.Labels != nil {
		t.Error("metadata-only batch carries dense features")
	}
}

func TestGeneratorValidation(t *testing.T) {
	bad := []func(*GeneratorConfig){
		func(c *GeneratorConfig) { c.NumTables = 0 },
		func(c *GeneratorConfig) { c.RowsPerTable = 0 },
		func(c *GeneratorConfig) { c.Lookups = 0 },
		func(c *GeneratorConfig) { c.BatchSize = 0 },
		func(c *GeneratorConfig) { c.DenseDim = -1 },
		func(c *GeneratorConfig) {
			u, err := NewUniform(5000)
			if err != nil {
				t.Fatal(err)
			}
			c.Dists = []Distribution{u} // one distribution for three tables
		},
	}
	for i, mod := range bad {
		cfg := testGenConfig()
		mod(&cfg)
		if _, err := NewGenerator(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestUniqueIDsFirstAppearanceOrder(t *testing.T) {
	b := &Batch{
		BatchSize: 2, Lookups: 3,
		Tables: [][]int64{{5, 3, 5, 9, 3, 1}},
	}
	got := b.UniqueIDs(0)
	want := []int64{5, 3, 9, 1}
	if len(got) != len(want) {
		t.Fatalf("unique = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("unique = %v, want %v", got, want)
		}
	}
}

func TestLoaderWindow(t *testing.T) {
	g, err := NewGenerator(testGenConfig())
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLoader(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	if l.Current().Seq != 0 || l.Peek(1).Seq != 1 || l.Peek(2).Seq != 2 {
		t.Fatalf("window seqs %d %d %d", l.Current().Seq, l.Peek(1).Seq, l.Peek(2).Seq)
	}
	got := l.Advance()
	if got.Seq != 0 {
		t.Fatalf("Advance returned seq %d", got.Seq)
	}
	if l.Current().Seq != 1 || l.Peek(2).Seq != 3 {
		t.Fatalf("after advance: %d %d", l.Current().Seq, l.Peek(2).Seq)
	}
}

func TestLoaderPeekBounds(t *testing.T) {
	g, _ := NewGenerator(testGenConfig())
	l, err := NewLoader(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("Peek(2) beyond window did not panic")
		}
	}()
	l.Peek(2)
}

func TestTraceRoundTrip(t *testing.T) {
	g, err := NewGenerator(testGenConfig())
	if err != nil {
		t.Fatal(err)
	}
	var batches []*Batch
	for i := 0; i < 4; i++ {
		batches = append(batches, g.Next())
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, 5000, batches); err != nil {
		t.Fatal(err)
	}
	h, got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if h.NumTables != 3 || h.NumBatches != 4 || h.RowsPerTable != 5000 {
		t.Fatalf("header %+v", h)
	}
	for i := range batches {
		for tt := range batches[i].Tables {
			for j := range batches[i].Tables[tt] {
				if batches[i].Tables[tt][j] != got[i].Tables[tt][j] {
					t.Fatalf("batch %d table %d id %d differs after round trip", i, tt, j)
				}
			}
		}
	}
	// Cycling source replays with fresh sequence numbers.
	src, err := NewSliceSource(got)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		b := src.Next()
		if b.Seq != i {
			t.Fatalf("replay seq %d, want %d", b.Seq, i)
		}
		orig := batches[i%4]
		if b.Tables[0][0] != orig.Tables[0][0] {
			t.Fatalf("replay %d does not match original", i)
		}
	}
}

func TestReadTraceCorrupt(t *testing.T) {
	if _, _, err := ReadTrace(bytes.NewReader([]byte("NOTATRACE"))); err == nil {
		t.Error("bad magic accepted")
	}
	if _, _, err := ReadTrace(bytes.NewReader(nil)); err == nil {
		t.Error("empty input accepted")
	}
}

func TestDatasetsAndHistogram(t *testing.T) {
	for _, name := range DatasetNames {
		ds, err := NewDataset(name, 100000)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(ds.Tables) < 2 {
			t.Fatalf("%s: %d tables", name, len(ds.Tables))
		}
		for _, dt := range ds.Tables {
			h, err := CollectHistogram(dt.Dist, 50000, 100, 1)
			if err != nil {
				t.Fatal(err)
			}
			var total int64
			for _, c := range h.BinCounts {
				total += c
			}
			if total != 50000 {
				t.Fatalf("%s/%s: histogram holds %d samples", name, dt.Name, total)
			}
			if h.TopShare(1) < 0.999 {
				t.Fatalf("%s/%s: TopShare(1) = %v", name, dt.Name, h.TopShare(1))
			}
			// The sorted head share can only exceed the positional
			// CDF (sorting pulls lucky tail rows forward), never
			// fall meaningfully below it.
			analytic := dt.Dist.CDF(0.02)
			sampled := h.TopShare(0.02)
			if sampled < analytic-0.03 {
				t.Errorf("%s/%s: sampled top-2%% %v below analytic %v", name, dt.Name, sampled, analytic)
			}
		}
	}
	if _, err := NewDataset("nope", 100); err == nil {
		t.Error("unknown dataset accepted")
	}
}

func TestHitRateCurveMonotone(t *testing.T) {
	d := MustClassDistribution(Medium, 100000)
	fracs := []float64{0, 0.02, 0.1, 0.5, 1}
	curve := HitRateCurve(d, fracs)
	for i := 1; i < len(curve); i++ {
		if curve[i] < curve[i-1] {
			t.Fatalf("hit rate decreasing: %v", curve)
		}
	}
	if curve[0] != 0 || curve[len(curve)-1] != 1 {
		t.Fatalf("curve endpoints: %v", curve)
	}
}

func TestStatsFor(t *testing.T) {
	b := &Batch{BatchSize: 2, Lookups: 2, Tables: [][]int64{{1, 1, 2, 3}}}
	s := StatsFor(b, 0)
	if s.TotalIDs != 4 || s.UniqueIDs != 3 {
		t.Fatalf("stats %+v", s)
	}
}
