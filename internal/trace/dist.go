// Package trace generates and characterizes the embedding-table access
// traces that drive every experiment in the paper.
//
// Real RecSys training traces (Alibaba, Kaggle Anime, MovieLens, Criteo)
// are not publicly redistributable, so — exactly like the paper's §V
// methodology — we fit the sorted access-count curves of those datasets
// (Figure 3) with parametric probability density functions and sample
// synthetic traces from them. The piecewise distributions below are
// calibrated to the numbers the paper quotes: for Criteo, the top 2% of
// rows attract >80% of accesses; for the Alibaba user table, the top 2%
// attract only 8.5% and >90% hit rate requires caching >65% of the table.
package trace

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Distribution models which embedding-table row a single lookup touches.
// Row 0 is the hottest row: distributions are, by construction, sorted by
// access frequency so that "cache the top N rows" means "cache rows 0..N-1"
// (the static cache of Yin et al. assumed in Figure 4b).
type Distribution interface {
	// Rows is the number of rows in the table.
	Rows() int64
	// Sample draws one row index in [0, Rows).
	Sample(r *rand.Rand) int64
	// CDF returns the fraction of all accesses that land in the top
	// `frac` fraction of rows, for frac in [0,1]. CDF(0)=0, CDF(1)=1,
	// and CDF is concave because rows are sorted by hotness.
	CDF(frac float64) float64
}

// Point is one knot of a piecewise-linear access CDF: the top RowFrac
// fraction of rows receives AccessShare of all accesses.
type Point struct {
	RowFrac     float64
	AccessShare float64
}

// Piecewise is a piecewise-linear access CDF over row fraction. Within a
// segment, rows are equally hot; across segments hotness is non-increasing.
// This is the workhorse used to mimic the paper's four dataset classes.
type Piecewise struct {
	rows int64
	pts  []Point // strictly increasing in both coordinates, ends at (1,1)
	// lut[k] is the first knot index whose AccessShare covers u=k/256:
	// Sample starts its knot scan there instead of at 0, making the
	// per-draw scan O(1) expected (sampling is the simulator's single
	// hottest trace-generation call).
	lut [256]uint8
}

// NewPiecewise builds a distribution over rows table rows from CDF knots.
// The knot list must be strictly increasing in both coordinates and end at
// (1,1); a (0,0) origin is implied. Densities must be non-increasing across
// segments (hot rows first) or an error is returned.
func NewPiecewise(rows int64, pts []Point) (*Piecewise, error) {
	if rows <= 0 {
		return nil, fmt.Errorf("trace: piecewise: rows %d <= 0", rows)
	}
	if len(pts) == 0 {
		return nil, fmt.Errorf("trace: piecewise: no points")
	}
	last := pts[len(pts)-1]
	if last.RowFrac != 1 || last.AccessShare != 1 {
		return nil, fmt.Errorf("trace: piecewise: final point %+v must be (1,1)", last)
	}
	prev := Point{0, 0}
	prevDensity := maxFloat
	for i, p := range pts {
		if p.RowFrac <= prev.RowFrac || p.AccessShare <= prev.AccessShare {
			return nil, fmt.Errorf("trace: piecewise: point %d (%+v) not strictly increasing after %+v", i, p, prev)
		}
		if p.RowFrac > 1 || p.AccessShare > 1 {
			return nil, fmt.Errorf("trace: piecewise: point %d (%+v) exceeds 1", i, p)
		}
		density := (p.AccessShare - prev.AccessShare) / (p.RowFrac - prev.RowFrac)
		if density > prevDensity*(1+1e-9) {
			return nil, fmt.Errorf("trace: piecewise: segment %d density %g exceeds previous %g (rows must be sorted hottest-first)", i, density, prevDensity)
		}
		prevDensity = density
		prev = p
	}
	cp := make([]Point, len(pts))
	copy(cp, pts)
	p := &Piecewise{rows: rows, pts: cp}
	if len(cp) > 255 {
		return nil, fmt.Errorf("trace: piecewise: %d knots exceeds 255", len(cp))
	}
	i := uint8(0)
	for k := range p.lut {
		for cp[i].AccessShare < float64(k)/256 {
			i++
		}
		p.lut[k] = i
	}
	return p, nil
}

// MustPiecewise is NewPiecewise that panics on invalid knots; used for the
// package's own presets, which are validated by tests.
func MustPiecewise(rows int64, pts []Point) *Piecewise {
	p, err := NewPiecewise(rows, pts)
	if err != nil {
		panic(err)
	}
	return p
}

const maxFloat = 1.797693134862315708145274237317043567981e+308

// Rows implements Distribution.
func (p *Piecewise) Rows() int64 { return p.rows }

// Sample implements Distribution: inverse-CDF sampling. A uniform draw on
// the access-share axis is mapped to a row fraction through the knots and
// then to a concrete row, uniform within its segment.
func (p *Piecewise) Sample(r *rand.Rand) int64 {
	u := r.Float64()
	// Jump to the LUT's knot for u's 1/256 bucket, then settle with at
	// most a step or two of linear scan — exactly the index
	// sort.Search(AccessShare >= u) would return, without its closure
	// indirection or data-dependent branch cascade.
	i := int(p.lut[int(u*256)])
	for i < len(p.pts) && p.pts[i].AccessShare < u {
		i++
	}
	lo := Point{0, 0}
	if i > 0 {
		lo = p.pts[i-1]
	}
	hi := p.pts[min(i, len(p.pts)-1)]
	span := hi.AccessShare - lo.AccessShare
	var frac float64
	if span <= 0 {
		frac = lo.RowFrac
	} else {
		frac = lo.RowFrac + (u-lo.AccessShare)/span*(hi.RowFrac-lo.RowFrac)
	}
	row := int64(frac * float64(p.rows))
	if row >= p.rows {
		row = p.rows - 1
	}
	if row < 0 {
		row = 0
	}
	return row
}

// CDF implements Distribution.
func (p *Piecewise) CDF(frac float64) float64 {
	if frac <= 0 {
		return 0
	}
	if frac >= 1 {
		return 1
	}
	i := sort.Search(len(p.pts), func(i int) bool { return p.pts[i].RowFrac >= frac })
	lo := Point{0, 0}
	if i > 0 {
		lo = p.pts[i-1]
	}
	hi := p.pts[min(i, len(p.pts)-1)]
	span := hi.RowFrac - lo.RowFrac
	if span <= 0 {
		return lo.AccessShare
	}
	return lo.AccessShare + (frac-lo.RowFrac)/span*(hi.AccessShare-lo.AccessShare)
}

// Uniform is a distribution with no locality at all: every row is equally
// likely. This is the paper's "Random" trace.
type Uniform struct {
	rows int64
}

// NewUniform returns a uniform distribution over rows rows.
func NewUniform(rows int64) (*Uniform, error) {
	if rows <= 0 {
		return nil, fmt.Errorf("trace: uniform: rows %d <= 0", rows)
	}
	return &Uniform{rows: rows}, nil
}

// Rows implements Distribution.
func (u *Uniform) Rows() int64 { return u.rows }

// Sample implements Distribution.
func (u *Uniform) Sample(r *rand.Rand) int64 { return r.Int63n(u.rows) }

// CDF implements Distribution.
func (u *Uniform) CDF(frac float64) float64 {
	if frac <= 0 {
		return 0
	}
	if frac >= 1 {
		return 1
	}
	return frac
}

// Zipf wraps math/rand's bounded Zipf-Mandelbrot sampler as a Distribution
// for users who prefer a classic power law over the piecewise presets. The
// CDF is computed from the generalized harmonic numbers.
type Zipf struct {
	rows int64
	s    float64
	v    float64
	// cdfFracs/cdfShares is a precomputed coarse CDF table used by CDF;
	// exact summation over 10M rows per query would be too slow.
	cdfFracs  []float64
	cdfShares []float64
}

// NewZipf returns a Zipf distribution over rows rows with exponent s > 1
// and offset v >= 1 (see math/rand.NewZipf).
func NewZipf(rows int64, s, v float64) (*Zipf, error) {
	if rows <= 0 {
		return nil, fmt.Errorf("trace: zipf: rows %d <= 0", rows)
	}
	if s <= 1 || v < 1 {
		return nil, fmt.Errorf("trace: zipf: need s>1 (got %g) and v>=1 (got %g)", s, v)
	}
	z := &Zipf{rows: rows, s: s, v: v}
	z.buildCDF()
	return z, nil
}

func (z *Zipf) buildCDF() {
	// Tabulate the CDF at geometrically spaced row counts so CDF queries
	// interpolate smoothly on both ends of the long tail.
	const steps = 512
	fracs := make([]float64, 0, steps)
	f := 1.0 / float64(z.rows)
	for i := 0; i < steps && f < 1; i++ {
		fracs = append(fracs, f)
		f *= 1.035
	}
	fracs = append(fracs, 1)
	weightUpTo := func(n int64) float64 {
		// Sum of (v+k)^-s for k in [0,n): integral approximation with
		// exact summation of the first few dominant terms.
		var sum float64
		head := int64(1024)
		if head > n {
			head = n
		}
		for k := int64(0); k < head; k++ {
			sum += pow(z.v+float64(k), -z.s)
		}
		if n > head {
			// Integral of (v+x)^-s dx from head to n.
			a := z.v + float64(head)
			b := z.v + float64(n)
			sum += (pow(a, 1-z.s) - pow(b, 1-z.s)) / (z.s - 1)
		}
		return sum
	}
	total := weightUpTo(z.rows)
	shares := make([]float64, len(fracs))
	for i, fr := range fracs {
		n := int64(fr * float64(z.rows))
		if n < 1 {
			n = 1
		}
		shares[i] = weightUpTo(n) / total
	}
	shares[len(shares)-1] = 1
	z.cdfFracs, z.cdfShares = fracs, shares
}

func pow(x, y float64) float64 { return math.Pow(x, y) }

// Rows implements Distribution.
func (z *Zipf) Rows() int64 { return z.rows }

// Sample implements Distribution.
func (z *Zipf) Sample(r *rand.Rand) int64 {
	zg := rand.NewZipf(r, z.s, z.v, uint64(z.rows-1))
	return int64(zg.Uint64())
}

// CDF implements Distribution.
func (z *Zipf) CDF(frac float64) float64 {
	if frac <= 0 {
		return 0
	}
	if frac >= 1 {
		return 1
	}
	i := sort.SearchFloat64s(z.cdfFracs, frac)
	if i == 0 {
		return z.cdfShares[0] * frac / z.cdfFracs[0]
	}
	if i >= len(z.cdfFracs) {
		return 1
	}
	lo, hi := z.cdfFracs[i-1], z.cdfFracs[i]
	sl, sh := z.cdfShares[i-1], z.cdfShares[i]
	return sl + (frac-lo)/(hi-lo)*(sh-sl)
}
