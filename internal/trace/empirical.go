package trace

import (
	"bufio"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strconv"
	"strings"
)

// Empirical is an access distribution built from observed per-row access
// counts — the bridge from real dataset logs (what the paper measured for
// Figure 3) to this package's samplers. Counts are sorted hottest-first on
// construction so the "top-N rows" convention holds.
type Empirical struct {
	rows   int64
	cum    []float64 // cum[i] = share of accesses in rows [0, i]
	counts []int64
	total  int64
}

// NewEmpirical builds a distribution over the given per-row access counts
// (one entry per table row; order need not be sorted). Rows with zero
// counts are legal: they are simply never sampled.
func NewEmpirical(counts []int64) (*Empirical, error) {
	if len(counts) == 0 {
		return nil, fmt.Errorf("trace: empirical: no counts")
	}
	sorted := make([]int64, len(counts))
	copy(sorted, counts)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] > sorted[j] })
	var total int64
	for i, c := range sorted {
		if c < 0 {
			return nil, fmt.Errorf("trace: empirical: negative count at sorted index %d", i)
		}
		total += c
	}
	if total == 0 {
		return nil, fmt.Errorf("trace: empirical: all counts zero")
	}
	cum := make([]float64, len(sorted))
	var running int64
	for i, c := range sorted {
		running += c
		cum[i] = float64(running) / float64(total)
	}
	return &Empirical{
		rows:   int64(len(sorted)),
		cum:    cum,
		counts: sorted,
		total:  total,
	}, nil
}

// ParseCountsCSV reads "row,count" or "count" lines (comments with #,
// blank lines ignored) and returns the counts column. When a row column is
// present it is ignored — only the multiset of counts matters, because the
// distribution sorts by hotness anyway.
func ParseCountsCSV(r io.Reader) ([]int64, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var counts []int64
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Split(text, ",")
		raw := strings.TrimSpace(fields[len(fields)-1])
		c, err := strconv.ParseInt(raw, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: counts csv line %d: %w", line, err)
		}
		counts = append(counts, c)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(counts) == 0 {
		return nil, fmt.Errorf("trace: counts csv: no data")
	}
	return counts, nil
}

// Rows implements Distribution.
func (e *Empirical) Rows() int64 { return e.rows }

// Sample implements Distribution via inverse-CDF binary search.
func (e *Empirical) Sample(r *rand.Rand) int64 {
	u := r.Float64()
	i := sort.SearchFloat64s(e.cum, u)
	if i >= len(e.cum) {
		i = len(e.cum) - 1
	}
	return int64(i)
}

// CDF implements Distribution.
func (e *Empirical) CDF(frac float64) float64 {
	if frac <= 0 {
		return 0
	}
	if frac >= 1 {
		return 1
	}
	pos := frac * float64(e.rows)
	i := int(pos)
	if i >= len(e.cum) {
		return 1
	}
	var lo float64
	if i > 0 {
		lo = e.cum[i-1]
	}
	return lo + (pos-float64(i))*(e.cum[i]-lo)
}

// TotalAccesses returns the number of observations behind the fit.
func (e *Empirical) TotalAccesses() int64 { return e.total }
