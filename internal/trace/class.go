package trace

import "fmt"

// Class is one of the paper's four synthetic locality classes (§V): the
// Random / Low / Medium / High traces used on the x-axis of Figures 5, 12,
// 13, 14, 15 and Table I.
type Class int

const (
	// Random has no locality: lookups are uniform over the table.
	Random Class = iota
	// Low mimics the Alibaba user table: the top 2% of rows receive only
	// 8.5% of accesses and >90% hit rate needs >65% of the table cached.
	Low
	// Medium mimics MovieLens/Kaggle-Anime-grade locality.
	Medium
	// High mimics Criteo: the top 2% of rows receive >80% of accesses.
	High
)

// Classes lists all locality classes in the paper's presentation order.
var Classes = []Class{Random, Low, Medium, High}

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case Random:
		return "Random"
	case Low:
		return "Low"
	case Medium:
		return "Medium"
	case High:
		return "High"
	}
	return fmt.Sprintf("Class(%d)", int(c))
}

// ParseClass converts a class name (case-sensitive, as printed by String)
// back to a Class.
func ParseClass(s string) (Class, error) {
	for _, c := range Classes {
		if c.String() == s {
			return c, nil
		}
	}
	return 0, fmt.Errorf("trace: unknown locality class %q", s)
}

// NewClassDistribution returns the access distribution for class c over a
// table with rows rows. The knots reproduce the locality statistics the
// paper quotes for the corresponding real datasets (see package comment).
func NewClassDistribution(c Class, rows int64) (Distribution, error) {
	switch c {
	case Random:
		return NewUniform(rows)
	case Low:
		return NewPiecewise(rows, []Point{
			{0.02, 0.085},
			{0.10, 0.30},
			{0.30, 0.62},
			{0.65, 0.905},
			{1, 1},
		})
	case Medium:
		return NewPiecewise(rows, []Point{
			{0.005, 0.22},
			{0.02, 0.45},
			{0.10, 0.72},
			{0.30, 0.92},
			{1, 1},
		})
	case High:
		return NewPiecewise(rows, []Point{
			{0.0005, 0.38},
			{0.02, 0.82},
			{0.10, 0.95},
			{0.30, 0.99},
			{1, 1},
		})
	}
	return nil, fmt.Errorf("trace: unknown locality class %d", int(c))
}

// MustClassDistribution is NewClassDistribution that panics on error; the
// presets are validated by tests.
func MustClassDistribution(c Class, rows int64) Distribution {
	d, err := NewClassDistribution(c, rows)
	if err != nil {
		panic(err)
	}
	return d
}
