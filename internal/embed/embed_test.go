package embed

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

func newTable(t *testing.T, rows int64, dim int) *Table {
	t.Helper()
	tbl, err := NewTable(rows, dim, rand.New(rand.NewSource(6)))
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func TestTableBasics(t *testing.T) {
	tbl := newTable(t, 10, 4)
	if tbl.Rows() != 10 || tbl.Dim() != 4 {
		t.Fatalf("shape %dx%d", tbl.Rows(), tbl.Dim())
	}
	r := tbl.Row(3)
	r[0] = 42
	if tbl.Row(3)[0] != 42 {
		t.Fatal("Row does not alias storage")
	}
	c := tbl.Clone()
	c.Row(3)[0] = 7
	if tbl.Row(3)[0] != 42 {
		t.Fatal("Clone aliases storage")
	}
	if tbl.Equal(c) {
		t.Fatal("Equal missed a difference")
	}
	if _, err := NewTable(0, 4, rand.New(rand.NewSource(1))); err == nil {
		t.Error("zero rows accepted")
	}
}

func TestTableRowBounds(t *testing.T) {
	tbl := newTable(t, 10, 4)
	for _, id := range []int64{-1, 10} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Row(%d) did not panic", id)
				}
			}()
			tbl.Row(id)
		}()
	}
}

func TestGatherReduce(t *testing.T) {
	tbl := newTable(t, 10, 2)
	// Make rows recognizable.
	for i := int64(0); i < 10; i++ {
		tbl.Row(i)[0] = float32(i)
		tbl.Row(i)[1] = float32(i * 10)
	}
	ids := []int64{1, 2, 3, 4} // batch 2, lookups 2
	g := Gather(tbl, ids)
	if g.Rows != 4 || g.Cols != 2 {
		t.Fatalf("gather shape %dx%d", g.Rows, g.Cols)
	}
	if g.At(2, 0) != 3 {
		t.Fatalf("gather[2] = %v", g.Row(2))
	}
	pooled := ReduceSum(g, 2, 2)
	// Sample 0: rows 1+2 = (3, 30); sample 1: rows 3+4 = (7, 70).
	if pooled.At(0, 0) != 3 || pooled.At(0, 1) != 30 || pooled.At(1, 0) != 7 || pooled.At(1, 1) != 70 {
		t.Fatalf("pooled = %v", pooled.Data)
	}
}

func TestDuplicateCoalesceKnown(t *testing.T) {
	// Batch of 2 samples, 2 lookups each; row 5 appears in both samples
	// (the Figure 2b scenario: gradients must coalesce).
	ids := []int64{5, 1, 5, 2}
	pooledGrad := tensor.FromSlice(2, 2, []float32{
		1, 2, // sample 0 gradient
		10, 20, // sample 1 gradient
	})
	g := DuplicateCoalesce(ids, pooledGrad, 2)
	// First-appearance order: 5, 1, 2.
	if len(g.IDs) != 3 || g.IDs[0] != 5 || g.IDs[1] != 1 || g.IDs[2] != 2 {
		t.Fatalf("ids = %v", g.IDs)
	}
	// Row 5: grad(sample0) + grad(sample1) = (11, 22).
	if g.Grads.At(0, 0) != 11 || g.Grads.At(0, 1) != 22 {
		t.Fatalf("coalesced row 5 = %v", g.Grads.Row(0))
	}
	if g.Grads.At(1, 0) != 1 || g.Grads.At(2, 0) != 10 {
		t.Fatalf("grads = %v", g.Grads.Data)
	}
}

// TestCoalescePreservesSumsProperty: coalescing never loses gradient mass —
// for every row, the coalesced gradient equals the sum of the pooled
// gradients of the samples referencing it.
func TestCoalescePreservesSumsProperty(t *testing.T) {
	f := func(rawIDs []uint8, seed int64) bool {
		const batch, lookups, dim = 4, 3, 2
		ids := make([]int64, batch*lookups)
		for i := range ids {
			v := int64(0)
			if i < len(rawIDs) {
				v = int64(rawIDs[i] % 7)
			}
			ids[i] = v
		}
		rng := rand.New(rand.NewSource(seed))
		pooled := tensor.New(batch, dim)
		for i := range pooled.Data {
			pooled.Data[i] = float32(rng.Intn(17) - 8) // integer grads: exact float math
		}
		g := DuplicateCoalesce(ids, pooled, lookups)
		// Reference: accumulate per row directly.
		want := map[int64][]float32{}
		for i, id := range ids {
			if want[id] == nil {
				want[id] = make([]float32, dim)
			}
			for j := 0; j < dim; j++ {
				want[id][j] += pooled.At(i/lookups, j)
			}
		}
		if len(g.IDs) != len(want) {
			return false
		}
		for k, id := range g.IDs {
			for j := 0; j < dim; j++ {
				if g.Grads.At(k, j) != want[id][j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestScatterSGD(t *testing.T) {
	tbl := newTable(t, 4, 2)
	before := append([]float32(nil), tbl.Row(2)...)
	g := CoalescedGrads{
		IDs:   []int64{2},
		Grads: tensor.FromSlice(1, 2, []float32{1, -2}),
	}
	ScatterSGD(tbl, g, 0.5)
	if tbl.Row(2)[0] != before[0]-0.5 || tbl.Row(2)[1] != before[1]+1 {
		t.Fatalf("scatter result %v from %v", tbl.Row(2), before)
	}
}

// TestReduceLinearityProperty: reducing the concatenation of two gathers
// equals the sum of reducing them separately (with exact integer floats).
func TestReduceLinearityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const batch, lookups, dim = 3, 2, 2
		a := tensor.New(batch*lookups, dim)
		b := tensor.New(batch*lookups, dim)
		for i := range a.Data {
			a.Data[i] = float32(rng.Intn(9) - 4)
			b.Data[i] = float32(rng.Intn(9) - 4)
		}
		sum := tensor.New(batch*lookups, dim)
		for i := range sum.Data {
			sum.Data[i] = a.Data[i] + b.Data[i]
		}
		ra, rb, rsum := ReduceSum(a, batch, lookups), ReduceSum(b, batch, lookups), ReduceSum(sum, batch, lookups)
		for i := range rsum.Data {
			if rsum.Data[i] != ra.Data[i]+rb.Data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestForwardPooledMatchesManual(t *testing.T) {
	tbl := newTable(t, 20, 3)
	ids := []int64{4, 4, 7, 9, 0, 1}
	pooled := ForwardPooled(tbl, ids, 3, 2)
	manual := ReduceSum(Gather(tbl, ids), 3, 2)
	for i := range manual.Data {
		if pooled.Data[i] != manual.Data[i] {
			t.Fatal("ForwardPooled diverges from manual gather+reduce")
		}
	}
}

func TestReducePanicsOnShapeMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("mismatched reduce accepted")
		}
	}()
	ReduceSum(tensor.New(5, 2), 2, 2)
}

func TestDuplicateCoalescePanicsOnShapeMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("mismatched coalesce accepted")
		}
	}()
	DuplicateCoalesce([]int64{1, 2, 3}, tensor.New(1, 2), 2)
}

func TestInitScale(t *testing.T) {
	tbl := newTable(t, 100, 16)
	for i := int64(0); i < 100; i++ {
		for _, v := range tbl.Row(i) {
			if math.Abs(float64(v)) > 1.0/16+1e-9 {
				t.Fatalf("init value %v exceeds 1/dim", v)
			}
		}
	}
}
