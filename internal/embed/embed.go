// Package embed implements the embedding-layer primitives of Figure 2:
// embedding gather, per-sample sum reduction (forward), and gradient
// duplication, coalescing and scatter update (backward).
//
// There is exactly one implementation of each primitive, parameterized over
// a RowStore. The baseline engine points the primitives at the CPU-resident
// Table; the cached engines point them at a GPU cache view. Because every
// engine executes the *same float operations in the same order*, the
// bitwise-equivalence tests between ScratchPipe and the sequential baseline
// are meaningful.
package embed

import (
	"fmt"
	"math/rand"

	"repro/internal/tensor"
)

// RowStore is anything that can hand out embedding rows by sparse ID: the
// CPU embedding table itself, or a GPU embedding cache that remaps IDs to
// cache slots.
type RowStore interface {
	// Dim returns the embedding dimension.
	Dim() int
	// Row returns a mutable view of the embedding vector for sparse ID
	// id. Reads and in-place updates go through the same view, matching
	// the paper's observation that embedding tables are both read and
	// written during training.
	Row(id int64) []float32
}

// Table is one CPU-memory embedding table: Rows embedding vectors of
// dimension Dim stored contiguously.
type Table struct {
	rows int64
	dim  int
	data []float32
}

// NewTable allocates a rows x dim table initialized with small uniform
// values from the deterministic rng (matching DLRM's sqrt(1/rows) scale).
func NewTable(rows int64, dim int, rng *rand.Rand) (*Table, error) {
	if rows <= 0 || dim <= 0 {
		return nil, fmt.Errorf("embed: table: invalid shape %dx%d", rows, dim)
	}
	t := &Table{rows: rows, dim: dim, data: make([]float32, rows*int64(dim))}
	scale := float32(1.0 / float64(dim))
	for i := range t.data {
		t.data[i] = (rng.Float32()*2 - 1) * scale
	}
	return t, nil
}

// NewZeroTable allocates a rows x dim table of zeros (optimizer-state
// tables start empty).
func NewZeroTable(rows int64, dim int) (*Table, error) {
	if rows <= 0 || dim <= 0 {
		return nil, fmt.Errorf("embed: zero table: invalid shape %dx%d", rows, dim)
	}
	return &Table{rows: rows, dim: dim, data: make([]float32, rows*int64(dim))}, nil
}

// Rows returns the number of rows.
func (t *Table) Rows() int64 { return t.rows }

// Dim implements RowStore.
func (t *Table) Dim() int { return t.dim }

// Row implements RowStore.
func (t *Table) Row(id int64) []float32 {
	if id < 0 || id >= t.rows {
		panic(fmt.Sprintf("embed: table: row %d out of [0,%d)", id, t.rows))
	}
	off := id * int64(t.dim)
	return t.data[off : off+int64(t.dim)]
}

// Clone deep-copies the table (used by equivalence tests to snapshot
// initial state).
func (t *Table) Clone() *Table {
	c := &Table{rows: t.rows, dim: t.dim, data: make([]float32, len(t.data))}
	copy(c.data, t.data)
	return c
}

// Equal reports whether two tables hold bitwise-identical contents.
func (t *Table) Equal(o *Table) bool {
	if t.rows != o.rows || t.dim != o.dim {
		return false
	}
	for i, v := range t.data {
		if v != o.data[i] {
			return false
		}
	}
	return true
}

// Gather reads the embedding vectors for ids from store into a
// len(ids) x dim matrix (Figure 2a, "embedding gather").
func Gather(store RowStore, ids []int64) *tensor.Matrix {
	dim := store.Dim()
	out := tensor.New(len(ids), dim)
	for i, id := range ids {
		copy(out.Row(i), store.Row(id))
	}
	return out
}

// ReduceSum pools gathered embeddings per sample: gathered is
// (batch*lookups) x dim in sample-major order and the result is batch x dim
// with out[s] = sum of the lookups vectors of sample s, accumulated in
// lookup order (Figure 2a, "reduced output tensor").
func ReduceSum(gathered *tensor.Matrix, batch, lookups int) *tensor.Matrix {
	if gathered.Rows != batch*lookups {
		panic(fmt.Sprintf("embed: reduce: %d gathered rows for batch %d x lookups %d", gathered.Rows, batch, lookups))
	}
	out := tensor.New(batch, gathered.Cols)
	for s := 0; s < batch; s++ {
		dst := out.Row(s)
		for l := 0; l < lookups; l++ {
			src := gathered.Row(s*lookups + l)
			for j, v := range src {
				dst[j] += v
			}
		}
	}
	return out
}

// CoalescedGrads is the output of gradient duplication + coalescing
// (Figure 2b): one summed gradient per distinct row, in first-appearance
// order of the row within the batch's ID list.
type CoalescedGrads struct {
	// IDs lists the distinct rows to update.
	IDs []int64
	// Grads is len(IDs) x dim; Grads[k] is the coalesced gradient for
	// IDs[k].
	Grads *tensor.Matrix
}

// DuplicateCoalesce expands the pooled gradient (batch x dim) back to the
// per-ID gradients (each ID of sample s receives pooledGrad[s], because the
// reduction was a plain sum) and coalesces duplicates by summing in batch
// order. The first-appearance ordering makes every engine's float
// accumulation identical.
func DuplicateCoalesce(ids []int64, pooledGrad *tensor.Matrix, lookups int) CoalescedGrads {
	if len(ids) != pooledGrad.Rows*lookups {
		panic(fmt.Sprintf("embed: coalesce: %d ids for %d samples x %d lookups", len(ids), pooledGrad.Rows, lookups))
	}
	index := make(map[int64]int, len(ids))
	var uniq []int64
	dim := pooledGrad.Cols
	var rowsData []float32
	for i, id := range ids {
		k, ok := index[id]
		if !ok {
			k = len(uniq)
			index[id] = k
			uniq = append(uniq, id)
			rowsData = append(rowsData, make([]float32, dim)...)
		}
		dst := rowsData[k*dim : (k+1)*dim]
		src := pooledGrad.Row(i / lookups)
		for j, v := range src {
			dst[j] += v
		}
	}
	return CoalescedGrads{IDs: uniq, Grads: tensor.FromSlice(len(uniq), dim, rowsData)}
}

// ScatterSGD applies one SGD step to the coalesced gradients:
// row[id] -= lr * grad (Figure 2b, "gradient scatter / optimizer").
func ScatterSGD(store RowStore, g CoalescedGrads, lr float32) {
	for k, id := range g.IDs {
		row := store.Row(id)
		grad := g.Grads.Row(k)
		for j, gv := range grad {
			row[j] -= lr * gv
		}
	}
}

// ForwardPooled is the complete embedding-layer forward for one table:
// gather all ids from store and reduce per sample.
func ForwardPooled(store RowStore, ids []int64, batch, lookups int) *tensor.Matrix {
	return ReduceSum(Gather(store, ids), batch, lookups)
}
