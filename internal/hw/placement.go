// Placement maps scratchpad shards onto topology nodes. The shard
// coordinator's victim-merge, touch-stamp, and free-slot-borrow messages
// then cross the links between the nodes its shards occupy, which is
// what turns the shared-memory coordinator into a costed distributed
// one. Placement never changes plans, evictions, or statistics — only
// the modeled coordination latency (the equivalence tests in
// internal/shard prove the invariance).

package hw

import (
	"fmt"
	"sort"
)

// PlacementPolicy selects how shards spread across topology nodes.
type PlacementPolicy string

const (
	// PlaceStripe assigns shard j to node j mod N (round-robin):
	// maximal spread, every node loaded within one shard of even.
	PlaceStripe PlacementPolicy = "stripe"
	// PlaceRange assigns contiguous shard ranges to nodes (shard j to
	// node j*N/S): neighbors co-locate, which keeps more coordination
	// local when the shard count exceeds the node count.
	PlaceRange PlacementPolicy = "range"
	// PlaceLoadAware greedily balances per-shard load weights (e.g.
	// each shard's share of a hot table's query mass) across nodes:
	// heaviest shard first onto the least-loaded node.
	PlaceLoadAware PlacementPolicy = "loadaware"
)

// PlacementPolicies lists every policy for usage errors and sweeps.
var PlacementPolicies = []PlacementPolicy{PlaceStripe, PlaceRange, PlaceLoadAware}

// ParsePlacementPolicy resolves a policy name ("" selects stripe).
func ParsePlacementPolicy(s string) (PlacementPolicy, error) {
	switch PlacementPolicy(s) {
	case "", PlaceStripe:
		return PlaceStripe, nil
	case PlaceRange:
		return PlaceRange, nil
	case PlaceLoadAware:
		return PlaceLoadAware, nil
	}
	return "", fmt.Errorf("hw: unknown placement policy %q (want stripe, range, or loadaware)", s)
}

// Placement is a concrete shard-to-node assignment on a topology. The
// zero value (nil Topo) means "everything co-located": zero coordination
// cost, the pre-topology behaviour.
type Placement struct {
	// Topo is the platform graph the shards are placed on.
	Topo *Topology
	// Node[j] is the topology node hosting shard j.
	Node []int
	// Policy records how the assignment was computed (reports only).
	Policy PlacementPolicy
}

// Distributed reports whether the placement spans more than one node
// (i.e. whether any coordination cost can arise).
func (p Placement) Distributed() bool {
	if p.Topo == nil || len(p.Node) == 0 {
		return false
	}
	for _, n := range p.Node[1:] {
		if n != p.Node[0] {
			return true
		}
	}
	return false
}

// Hosts returns the number of distinct hosts the placement's assigned
// nodes span — the fleet a deployment of this placement actually rents,
// which can be smaller than the topology's host count (e.g. two shards
// striped onto one host of a two-host cluster). Zero-value placements
// span one host.
func (p Placement) Hosts() int {
	if p.Topo == nil || len(p.Node) == 0 {
		return 1
	}
	seen := make(map[int]struct{}, len(p.Node))
	for _, n := range p.Node {
		seen[p.Topo.Nodes[n].Host] = struct{}{}
	}
	return len(seen)
}

// Validate reports a descriptive error for an inconsistent placement.
func (p Placement) Validate(shards int) error {
	if p.Topo == nil {
		if len(p.Node) != 0 {
			return fmt.Errorf("hw: placement has node assignments but no topology")
		}
		return nil
	}
	if err := p.Topo.Validate(); err != nil {
		return err
	}
	if len(p.Node) != shards {
		return fmt.Errorf("hw: placement covers %d shards, want %d", len(p.Node), shards)
	}
	for j, n := range p.Node {
		if n < 0 || n >= p.Topo.NumNodes() {
			return fmt.Errorf("hw: shard %d placed on node %d, topology %q has %d nodes",
				j, n, p.Topo.Name, p.Topo.NumNodes())
		}
	}
	return nil
}

// NewPlacement assigns shards to topo's nodes under the given policy.
// weights carries per-shard load estimates for PlaceLoadAware (heavier
// shards are spread first); nil weights treat shards as uniform. The
// assignment is deterministic: equal weights and ties always break
// toward the lower shard/node index.
func NewPlacement(policy PlacementPolicy, topo *Topology, shards int, weights []float64) (Placement, error) {
	pol, err := ParsePlacementPolicy(string(policy))
	if err != nil {
		return Placement{}, err
	}
	if topo == nil {
		return Placement{}, fmt.Errorf("hw: placement needs a topology")
	}
	if err := topo.Validate(); err != nil {
		return Placement{}, err
	}
	if shards < 1 {
		return Placement{}, fmt.Errorf("hw: placement of %d shards", shards)
	}
	if weights != nil && len(weights) != shards {
		return Placement{}, fmt.Errorf("hw: %d load weights for %d shards", len(weights), shards)
	}
	n := topo.NumNodes()
	node := make([]int, shards)
	switch pol {
	case PlaceStripe:
		for j := range node {
			node[j] = j % n
		}
	case PlaceRange:
		for j := range node {
			node[j] = j * n / shards
		}
	case PlaceLoadAware:
		// Greedy LPT bin packing: heaviest shard first onto the
		// least-loaded node.
		order := make([]int, shards)
		for j := range order {
			order[j] = j
		}
		w := func(j int) float64 {
			if weights == nil {
				return 1
			}
			return weights[j]
		}
		sort.SliceStable(order, func(a, b int) bool { return w(order[a]) > w(order[b]) })
		load := make([]float64, n)
		for _, j := range order {
			best := 0
			for k := 1; k < n; k++ {
				if load[k] < load[best] {
					best = k
				}
			}
			node[j] = best
			load[best] += w(j)
		}
	}
	return Placement{Topo: topo, Node: node, Policy: pol}, nil
}
