// FaultPlan is the deterministic failure schedule: which hosts die,
// which links partition or degrade, and which per-host aggregators are
// lost, each pinned to an iteration index. At the fleet sizes the Acun
// et al. scaling study operates ("Understanding Training Efficiency of
// DLRM at Scale"), hardware faults are a daily operating condition, not
// an exception — so the failure model is scheduled and replayable, the
// same way the trace generator seeds query streams: the identical plan
// against the identical run produces the identical recovery bill.
//
// The plan is pure data; it never mutates anything by itself. The
// engine owns a live clone of the run's Topology (Clone), walks the
// event list between Plans, and applies each event through the
// mutators below (SetHostLinksDown, DegradeHostLinks,
// RestoreHostLinks). Host deaths re-home shards via
// EvacuatePlacement, which the shard manager's migration machinery
// then prices like any other reshard.

package hw

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// FaultKind classifies a scheduled fault event.
type FaultKind uint8

const (
	// FaultHostDown kills every node on one host permanently: its
	// shards must evacuate and their scratchpad residency is lost.
	FaultHostDown FaultKind = iota
	// FaultLinkDown partitions every link between two hosts (optionally
	// healing later): coordination across the cut degrades until heal.
	FaultLinkDown
	// FaultLinkDegraded multiplies the latency and divides the
	// bandwidth of every link between two hosts by Factor (optionally
	// healing later): the links stay up but everything crossing them
	// pays more.
	FaultLinkDegraded
	// FaultAggLoss kills one host's coordination aggregator process
	// while the host itself survives: the hierarchical protocols must
	// re-elect before the next sweep.
	FaultAggLoss
	// FaultReplicaDown kills one serving replica at a virtual-clock
	// time (optionally recovering later): its queue is flushed, its
	// scratchpad state is lost, and recovery is priced as cold-cache
	// re-warm. Replica events only make sense on the serving tier —
	// Validate rejects them in training plans; ValidateServe checks
	// them against the serving configuration.
	FaultReplicaDown
)

// String returns the kind's short name.
func (k FaultKind) String() string {
	switch k {
	case FaultHostDown:
		return "host-down"
	case FaultLinkDown:
		return "link-down"
	case FaultLinkDegraded:
		return "link-degraded"
	case FaultAggLoss:
		return "agg-loss"
	case FaultReplicaDown:
		return "replica-down"
	}
	return fmt.Sprintf("fault(%d)", int(k))
}

// DefaultDegradeFactor is the link-degradation multiplier when a
// degrade event omits the x<F> suffix: latency x4, bandwidth /4 —
// roughly one oversubscribed switch hop's worth of damage.
const DefaultDegradeFactor = 4

// FaultEvent is one scheduled fault. Events fire at the iteration
// boundary before Iter's Plan (the same between-Plans instant the
// elastic reshard schedule uses), so the pipeline never observes a
// half-applied fault.
type FaultEvent struct {
	// Iter is the 1-based iteration before which the fault strikes.
	Iter int64
	// Kind classifies the event.
	Kind FaultKind
	// Host is the stricken host (FaultHostDown, FaultAggLoss) or the
	// lower endpoint of the stricken host pair (link events).
	Host int
	// HostB is the higher endpoint of the host pair for link events.
	HostB int
	// Heal, when nonzero, is the iteration before which a link event
	// un-applies (partition heals, degradation lifts). Zero means the
	// fault persists to the end of the run. Host deaths never heal.
	Heal int64
	// Factor is the FaultLinkDegraded multiplier (>1).
	Factor float64
	// Replica is the stricken serving replica (FaultReplicaDown only;
	// zero-valued otherwise).
	Replica int
	// At/Until are the strike and recovery times of a FaultReplicaDown
	// event in virtual-clock seconds (serving runs are timed, not
	// iterated). Until zero means the replica never recovers. Both are
	// zero-valued for iteration-scoped kinds.
	At, Until float64
}

// String renders the event in the -fail grammar.
func (e FaultEvent) String() string {
	switch e.Kind {
	case FaultHostDown:
		return fmt.Sprintf("host%d@%d", e.Host, e.Iter)
	case FaultAggLoss:
		return fmt.Sprintf("agg%d@%d", e.Host, e.Iter)
	case FaultLinkDown:
		s := fmt.Sprintf("link:host%d-host%d@%d", e.Host, e.HostB, e.Iter)
		if e.Heal > 0 {
			s += fmt.Sprintf("-%d", e.Heal)
		}
		return s
	case FaultLinkDegraded:
		s := fmt.Sprintf("degrade:host%d-host%d@%d", e.Host, e.HostB, e.Iter)
		if e.Heal > 0 {
			s += fmt.Sprintf("-%d", e.Heal)
		}
		return s + fmt.Sprintf("x%g", e.Factor)
	case FaultReplicaDown:
		s := fmt.Sprintf("replica%d@%g", e.Replica, e.At)
		if e.Until > 0 {
			s += fmt.Sprintf("-%g", e.Until)
		}
		return s
	}
	return e.Kind.String()
}

// when is the event's schedule key: the strike iteration for
// iteration-scoped kinds, the strike time for replica events (both are
// "how far into the run", so one ascending order covers mixed plans).
func (e FaultEvent) when() float64 {
	if e.Kind == FaultReplicaDown {
		return e.At
	}
	return float64(e.Iter)
}

// FaultPlan is a deterministic, replayable fault schedule: the events,
// sorted by iteration. The zero value is the no-fault plan and is
// guaranteed not to perturb a run in any way.
type FaultPlan struct {
	// Events holds the schedule in ascending Iter order.
	Events []FaultEvent
}

// Active reports whether the plan schedules any fault.
func (p FaultPlan) Active() bool { return len(p.Events) > 0 }

// String renders the plan in canonical -fail grammar (events in
// schedule order), "" for the empty plan. The canonical form is what
// benchmark baselines record and match on.
func (p FaultPlan) String() string {
	if !p.Active() {
		return ""
	}
	parts := make([]string, len(p.Events))
	for i, e := range p.Events {
		parts[i] = e.String()
	}
	return strings.Join(parts, ",")
}

// FaultGrammar documents the -fail event forms for usage errors.
const FaultGrammar = "host<H>@<I>, agg<H>@<I>, link:host<A>-host<B>@<I>[-<J>], degrade:host<A>-host<B>@<I>[-<J>][x<F>], replica<R>@<T>[-<T2>]"

// ParseFaultPlan parses a comma-separated fault schedule, e.g.
//
//	host1@300,link:host0-host1@500
//
// Event forms (H, A, B are host indices; I the strike iteration; T, T2
// virtual-clock seconds):
//
//	host<H>@<I>                          host H dies permanently
//	agg<H>@<I>                           host H's aggregator is lost
//	link:host<A>-host<B>@<I>[-<J>]       A-B links partition, heal at J
//	degrade:host<A>-host<B>@<I>[-<J>][x<F>]  A-B links degrade by F
//	replica<R>@<T>[-<T2>]                serving replica R dies at T s,
//	                                     recovering cold at T2
//
// Events are sorted by schedule position; "" parses as the empty
// (no-fault) plan. A malformed token is reported with its position and
// the token itself, so a long schedule pinpoints the offender. Host and
// replica existence are checked later against the run's configuration
// by Validate / ValidateServe, so a plan can be parsed before the
// topology is chosen.
func ParseFaultPlan(s string) (FaultPlan, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return FaultPlan{}, nil
	}
	var plan FaultPlan
	for i, tok := range strings.Split(s, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			return FaultPlan{}, fmt.Errorf("hw: fault plan %q: event %d is empty", s, i+1)
		}
		e, err := parseFaultEvent(tok)
		if err != nil {
			return FaultPlan{}, fmt.Errorf("hw: fault plan: event %d %q: %v", i+1, tok, err)
		}
		plan.Events = append(plan.Events, e)
	}
	sort.SliceStable(plan.Events, func(i, j int) bool {
		return plan.Events[i].when() < plan.Events[j].when()
	})
	return plan, nil
}

// parseFaultEvent parses one event token of the -fail grammar. Errors
// are bare (no "hw:" prefix, no token echo) — ParseFaultPlan wraps them
// with the token and its position in the plan.
func parseFaultEvent(tok string) (FaultEvent, error) {
	bad := func() (FaultEvent, error) {
		return FaultEvent{}, fmt.Errorf("want %s", FaultGrammar)
	}
	switch {
	case strings.HasPrefix(tok, "link:"), strings.HasPrefix(tok, "degrade:"):
		kind, body := FaultLinkDown, strings.TrimPrefix(tok, "link:")
		if strings.HasPrefix(tok, "degrade:") {
			kind, body = FaultLinkDegraded, strings.TrimPrefix(tok, "degrade:")
		}
		pair, when, ok := strings.Cut(body, "@")
		if !ok {
			return bad()
		}
		var a, b int
		if _, err := fmt.Sscanf(pair, "host%d-host%d", &a, &b); err != nil ||
			pair != fmt.Sprintf("host%d-host%d", a, b) {
			return bad()
		}
		if a == b {
			return FaultEvent{}, fmt.Errorf("link endpoints must differ")
		}
		if a > b {
			a, b = b, a
		}
		e := FaultEvent{Kind: kind, Host: a, HostB: b}
		if kind == FaultLinkDegraded {
			e.Factor = DefaultDegradeFactor
			if body, factor, ok := strings.Cut(when, "x"); ok {
				when = body
				if _, err := fmt.Sscanf(factor, "%g", &e.Factor); err != nil ||
					factor != fmt.Sprintf("%g", e.Factor) {
					return bad()
				}
				if !(e.Factor > 1) || math.IsInf(e.Factor, 0) {
					return FaultEvent{}, fmt.Errorf("degrade factor must be finite and exceed 1")
				}
			}
		}
		strike, heal, hasHeal := strings.Cut(when, "-")
		if _, err := fmt.Sscanf(strike, "%d", &e.Iter); err != nil ||
			strike != fmt.Sprintf("%d", e.Iter) || e.Iter < 1 {
			return bad()
		}
		if hasHeal {
			if _, err := fmt.Sscanf(heal, "%d", &e.Heal); err != nil ||
				heal != fmt.Sprintf("%d", e.Heal) {
				return bad()
			}
			if e.Heal <= e.Iter {
				return FaultEvent{}, fmt.Errorf("heal iteration must follow the strike")
			}
		}
		return e, nil
	case strings.HasPrefix(tok, "replica"):
		body := strings.TrimPrefix(tok, "replica")
		idx, when, ok := strings.Cut(body, "@")
		if !ok {
			return bad()
		}
		r, err := strconv.Atoi(idx)
		if err != nil || r < 0 || idx != strconv.Itoa(r) {
			return bad()
		}
		e := FaultEvent{Kind: FaultReplicaDown, Replica: r}
		strike, heal, hasHeal := strings.Cut(when, "-")
		if e.At, err = strconv.ParseFloat(strike, 64); err != nil {
			return bad()
		}
		if !(e.At > 0) || math.IsInf(e.At, 0) {
			return FaultEvent{}, fmt.Errorf("strike time must be positive finite seconds")
		}
		if hasHeal {
			if e.Until, err = strconv.ParseFloat(heal, 64); err != nil {
				return bad()
			}
			if !(e.Until > e.At) || math.IsInf(e.Until, 0) {
				return FaultEvent{}, fmt.Errorf("recovery time must be finite and follow the strike")
			}
		}
		return e, nil
	case strings.HasPrefix(tok, "host"), strings.HasPrefix(tok, "agg"):
		kind, format := FaultHostDown, "host%d@%d"
		if strings.HasPrefix(tok, "agg") {
			kind, format = FaultAggLoss, "agg%d@%d"
		}
		var h int
		var it int64
		if _, err := fmt.Sscanf(tok, format, &h, &it); err != nil ||
			tok != fmt.Sprintf(format, h, it) {
			return bad()
		}
		if it < 1 {
			return bad()
		}
		return FaultEvent{Kind: kind, Host: h, Iter: it}, nil
	}
	return bad()
}

// Validate reports a descriptive error when the plan cannot run on
// topo: an event addressed to a host the topology does not have, a
// duplicate kill of the same host, or a schedule that leaves no host
// alive. A nil topology only accepts the empty plan (faults need a
// multi-host fleet to strike).
func (p FaultPlan) Validate(topo *Topology) error {
	if !p.Active() {
		return nil
	}
	if topo == nil {
		return fmt.Errorf("hw: fault plan %q needs a multi-host topology", p.String())
	}
	hosts := make(map[int]struct{}, len(topo.Nodes))
	for _, n := range topo.Nodes {
		hosts[n.Host] = struct{}{}
	}
	has := func(h int) bool { _, ok := hosts[h]; return ok }
	dead := make(map[int]struct{})
	for _, e := range p.Events {
		if e.Kind == FaultReplicaDown {
			return fmt.Errorf("hw: fault event %s: replica events strike the serving tier; schedule them with -serve-fail under -serve (training plans take %s)",
				e.String(), "host/agg/link/degrade events")
		}
		if !has(e.Host) {
			return fmt.Errorf("hw: fault event %s: topology %q has no host %d",
				e.String(), topo.Name, e.Host)
		}
		switch e.Kind {
		case FaultHostDown:
			if _, gone := dead[e.Host]; gone {
				return fmt.Errorf("hw: fault event %s: host %d is already dead", e.String(), e.Host)
			}
			dead[e.Host] = struct{}{}
		case FaultLinkDown, FaultLinkDegraded:
			if !has(e.HostB) {
				return fmt.Errorf("hw: fault event %s: topology %q has no host %d",
					e.String(), topo.Name, e.HostB)
			}
		}
	}
	if len(dead) >= len(hosts) {
		return fmt.Errorf("hw: fault plan %q kills all %d hosts; at least one must survive",
			p.String(), len(hosts))
	}
	return nil
}

// ValidateServe reports a descriptive error when the plan cannot strike
// a serving fleet of the given replica count: only replica and
// host-down events make sense there (a host kill takes down every
// replica homed on it), replica indices must exist, host events need a
// topology that has the host, and one replica cannot be struck again
// while it is already down. Host-down times are whole virtual-clock
// seconds (the grammar's integer slot reinterpreted); overlapping
// blackouts of the entire fleet are allowed — that is a scenario worth
// measuring, not a configuration error.
func (p FaultPlan) ValidateServe(replicas int, topo *Topology) error {
	if !p.Active() {
		return nil
	}
	hosts := make(map[int]struct{})
	if topo != nil {
		for _, n := range topo.Nodes {
			hosts[n.Host] = struct{}{}
		}
	}
	last := make(map[int]FaultEvent) // replica -> previous strike
	for _, e := range p.Events {
		switch e.Kind {
		case FaultReplicaDown:
			if e.Replica >= replicas {
				return fmt.Errorf("hw: fault event %s: serving fleet has %d replicas (0..%d)",
					e.String(), replicas, replicas-1)
			}
			if prev, ok := last[e.Replica]; ok {
				if prev.Until == 0 || e.At < prev.Until {
					return fmt.Errorf("hw: fault event %s: replica %d is already down (from %s)",
						e.String(), e.Replica, prev.String())
				}
			}
			last[e.Replica] = e
		case FaultHostDown:
			if topo == nil {
				return fmt.Errorf("hw: fault event %s: host kills need a multi-host topology (-topology)", e.String())
			}
			if _, ok := hosts[e.Host]; !ok {
				return fmt.Errorf("hw: fault event %s: topology %q has no host %d",
					e.String(), topo.Name, e.Host)
			}
		default:
			return fmt.Errorf("hw: fault event %s: only replica<R> and host<H> events strike the serving tier",
				e.String())
		}
	}
	return nil
}

// Clone returns a deep copy of the topology: the engine mutates the
// clone when applying fault events so the caller's pristine graph
// stays intact (and serves as the restore source on heal).
func (t *Topology) Clone() *Topology {
	c := &Topology{
		Name:  t.Name,
		Nodes: append([]Node(nil), t.Nodes...),
		links: append([]Link(nil), t.links...),
	}
	return c
}

// hostPairs calls fn for every unordered node pair spanning hosts a
// and b (in either orientation).
func (t *Topology) hostPairs(a, b int, fn func(i, j int)) {
	for i := 0; i < len(t.Nodes); i++ {
		for j := i + 1; j < len(t.Nodes); j++ {
			hi, hj := t.Nodes[i].Host, t.Nodes[j].Host
			if (hi == a && hj == b) || (hi == b && hj == a) {
				fn(i, j)
			}
		}
	}
}

// SetHostLinksDown marks every link between hosts a and b as down (or
// back up). A down link's calibration is preserved; consumers that
// price traffic skip it the way they skip TierLocal, because no
// message crosses a partition.
func (t *Topology) SetHostLinksDown(a, b int, down bool) {
	t.hostPairs(a, b, func(i, j int) {
		l := t.Link(i, j)
		l.Down = down
		t.SetLink(i, j, l)
	})
}

// DegradeHostLinks multiplies the latency and divides the bandwidth of
// every link between hosts a and b by factor, so everything crossing
// the pair — coordination rounds, migration bytes — pays the damage
// through the ordinary pricing paths.
func (t *Topology) DegradeHostLinks(a, b int, factor float64) {
	t.hostPairs(a, b, func(i, j int) {
		l := t.Link(i, j)
		if l.Tier == TierLocal {
			return
		}
		l.Latency *= factor
		l.Bandwidth /= factor
		t.SetLink(i, j, l)
	})
}

// RestoreHostLinks copies every link between hosts a and b from src
// (the pristine pre-fault clone), healing a partition or lifting a
// degradation.
func (t *Topology) RestoreHostLinks(src *Topology, a, b int) {
	t.hostPairs(a, b, func(i, j int) {
		t.SetLink(i, j, src.Link(i, j))
	})
}

// EvacuatePlacement re-homes every shard assigned to a dead host onto
// the surviving nodes: survivors keep their assignment untouched (no
// gratuitous migration), evacuees go greedily to the least-loaded
// surviving node, ties toward the lower node index — deterministic,
// like every placement decision. It errors when no node survives.
func EvacuatePlacement(p Placement, hostDead func(host int) bool) (Placement, error) {
	if p.Topo == nil || len(p.Node) == 0 {
		return p, nil
	}
	deadNode := func(n int) bool { return hostDead(p.Topo.Nodes[n].Host) }
	load := make([]int, p.Topo.NumNodes())
	moved := false
	for _, n := range p.Node {
		if !deadNode(n) {
			load[n]++
		} else {
			moved = true
		}
	}
	if !moved {
		return p, nil
	}
	node := append([]int(nil), p.Node...)
	for j, n := range node {
		if !deadNode(n) {
			continue
		}
		best := -1
		for k := 0; k < len(load); k++ {
			if deadNode(k) {
				continue
			}
			if best < 0 || load[k] < load[best] {
				best = k
			}
		}
		if best < 0 {
			return Placement{}, fmt.Errorf("hw: evacuation of shard %d: no surviving node in topology %q",
				j, p.Topo.Name)
		}
		node[j] = best
		load[best]++
	}
	return Placement{Topo: p.Topo, Node: node, Policy: p.Policy}, nil
}
