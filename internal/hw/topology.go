// Topology generalizes the fixed {one CPU socket, NumGPUs, PCIe, NVLink}
// platform of System into a graph: a set of named nodes (sockets, GPUs,
// grouped into hosts) plus a symmetric link matrix whose entries carry an
// interconnect tier (intra-socket, NUMA, PCIe, NVLink, network). The
// paper's single-node platform is one instance of this graph
// (System.Topology); scale-out studies build wider instances and place
// scratchpad shards on their nodes, which is what prices the
// communication wall the Acun et al. scaling study identifies.
//
// Link calibration constants per tier live in DefaultLink and are
// documented in DESIGN.md §7.

package hw

import (
	"fmt"
	"strings"
)

// LinkTier classifies an interconnect by where it sits in the machine
// hierarchy. Tiers are ordered: a higher tier is a slower, more remote
// hop for the small coordination messages the shard coordinator sends.
type LinkTier uint8

const (
	// TierLocal is intra-socket communication (shared LLC/DRAM): the
	// degenerate zero-cost tier — co-located shards coordinate through
	// shared memory, exactly the pre-topology model.
	TierLocal LinkTier = iota
	// TierNUMA is socket-to-socket traffic on one host (UPI/QPI).
	TierNUMA
	// TierPCIe is host-to-device traffic over PCIe gen3 x16.
	TierPCIe
	// TierNVLink is device-to-device traffic over an NVLink fabric.
	TierNVLink
	// TierNet is host-to-host traffic over the datacenter network
	// (the p3-class 25 Gb Ethernet).
	TierNet
)

var tierNames = [...]string{"local", "numa", "pcie", "nvlink", "net"}

// String returns the tier's short name.
func (t LinkTier) String() string {
	if int(t) < len(tierNames) {
		return tierNames[t]
	}
	return fmt.Sprintf("tier(%d)", int(t))
}

// DefaultLink returns the calibrated link model for a tier (DESIGN.md §7).
// TierLocal returns the zero Link: co-located endpoints communicate
// through shared memory at zero modeled coordination cost.
func DefaultLink(t LinkTier) Link {
	switch t {
	case TierLocal:
		return Link{Name: "local", Tier: TierLocal, FullDuplex: true}
	case TierNUMA:
		// One UPI/QPI hop: ~20 GB/s per direction, sub-microsecond
		// small-message latency.
		return Link{Name: "numa", Tier: TierNUMA, Bandwidth: 20e9, Latency: 0.3e-6, FullDuplex: true}
	case TierPCIe:
		// Mirrors DefaultSystem's PCIe gen3 x16 calibration.
		return Link{Name: "pcie", Tier: TierPCIe, Bandwidth: 16e9, Latency: 15e-6, FullDuplex: true}
	case TierNVLink:
		// Mirrors DefaultSystem's NVLink calibration.
		return Link{Name: "nvlink", Tier: TierNVLink, Bandwidth: 150e9, Latency: 5e-6, FullDuplex: true}
	case TierNet:
		// p3-class 25 Gb Ethernet: ~3.1 GB/s effective, tens of
		// microseconds per small message.
		return Link{Name: "net", Tier: TierNet, Bandwidth: 3.1e9, Latency: 30e-6, FullDuplex: true}
	}
	return Link{}
}

// NodeKind classifies a topology node.
type NodeKind uint8

const (
	// KindSocket is a CPU socket (DRAM + cores).
	KindSocket NodeKind = iota
	// KindGPU is an accelerator with its own memory.
	KindGPU
)

// String returns the kind's short name.
func (k NodeKind) String() string {
	if k == KindGPU {
		return "gpu"
	}
	return "socket"
}

// Node is one placement target in the topology: a socket or a GPU,
// grouped into a host (cost accounting rents whole hosts).
type Node struct {
	// Name identifies the node in reports ("host0/socket1").
	Name string
	// Kind classifies the node.
	Kind NodeKind
	// Host is the index of the physical host the node belongs to.
	Host int
}

// Topology is the general platform graph: named nodes plus a symmetric
// link matrix. The zero-cost diagonal (a node to itself) is implicit:
// Link(i, i) is always the TierLocal zero link.
type Topology struct {
	// Name identifies the topology ("single", "numa2", "cluster2x2").
	Name  string
	Nodes []Node
	// links is the flattened upper-triangular link matrix: links[idx(i,j)]
	// for i < j.
	links []Link
}

// NewTopology builds a topology with every off-diagonal link set to the
// given default tier; callers adjust individual links with SetLink.
func NewTopology(name string, nodes []Node, tier LinkTier) *Topology {
	n := len(nodes)
	t := &Topology{Name: name, Nodes: nodes, links: make([]Link, n*(n-1)/2)}
	l := DefaultLink(tier)
	for i := range t.links {
		t.links[i] = l
	}
	return t
}

// NumNodes returns the node count.
func (t *Topology) NumNodes() int { return len(t.Nodes) }

// Hosts returns the number of distinct hosts spanned by the nodes
// (host indices need not be dense).
func (t *Topology) Hosts() int {
	seen := make(map[int]struct{}, len(t.Nodes))
	for _, n := range t.Nodes {
		seen[n.Host] = struct{}{}
	}
	return len(seen)
}

// PairIndex flattens an unordered node pair (i != j) into the
// upper-triangular index of the link matrix. It is the layout contract
// for anything that keeps per-link state alongside a topology (the
// shard coordinator's traffic meter indexes its counters with it).
func (t *Topology) PairIndex(i, j int) int {
	if i > j {
		i, j = j, i
	}
	n := len(t.Nodes)
	return i*(2*n-i-1)/2 + (j - i - 1)
}

// NumLinkPairs returns the number of unordered node pairs (the length
// of a per-link state array indexed by PairIndex).
func (t *Topology) NumLinkPairs() int {
	n := len(t.Nodes)
	return n * (n - 1) / 2
}

// Link returns the interconnect between nodes i and j; i == j returns
// the TierLocal zero link.
func (t *Topology) Link(i, j int) Link {
	if i == j {
		return DefaultLink(TierLocal)
	}
	return t.links[t.PairIndex(i, j)]
}

// SetLink installs l as the (symmetric) interconnect between i and j.
func (t *Topology) SetLink(i, j int, l Link) {
	if i == j {
		panic("hw: SetLink on the diagonal")
	}
	t.links[t.PairIndex(i, j)] = l
}

// Validate reports a descriptive error if the graph is unusable.
func (t *Topology) Validate() error {
	if len(t.Nodes) == 0 {
		return fmt.Errorf("hw: topology %q has no nodes", t.Name)
	}
	for i, n := range t.Nodes {
		if n.Host < 0 {
			return fmt.Errorf("hw: topology %q: node %d (%s): negative host", t.Name, i, n.Name)
		}
	}
	for i := 0; i < len(t.Nodes); i++ {
		for j := i + 1; j < len(t.Nodes); j++ {
			l := t.links[t.PairIndex(i, j)]
			if l.Tier == TierLocal {
				continue // co-located nodes: zero-cost shared memory
			}
			if l.Bandwidth <= 0 {
				return fmt.Errorf("hw: topology %q: link %s-%s: non-positive bandwidth %g",
					t.Name, t.Nodes[i].Name, t.Nodes[j].Name, l.Bandwidth)
			}
			if l.Latency < 0 {
				return fmt.Errorf("hw: topology %q: link %s-%s: negative latency",
					t.Name, t.Nodes[i].Name, t.Nodes[j].Name)
			}
		}
	}
	return nil
}

// SingleNode returns the degenerate one-socket topology: every shard
// co-located, all coordination at zero modeled cost — the exact
// pre-topology behaviour.
func SingleNode() *Topology {
	return NewTopology("single", []Node{{Name: "socket0", Kind: KindSocket}}, TierLocal)
}

// MultiSocket returns n CPU sockets on one host, fully connected by NUMA
// (UPI) links.
func MultiSocket(n int) *Topology {
	nodes := make([]Node, n)
	for i := range nodes {
		nodes[i] = Node{Name: fmt.Sprintf("socket%d", i), Kind: KindSocket}
	}
	return NewTopology(fmt.Sprintf("numa%d", n), nodes, TierNUMA)
}

// PCIePool returns n accelerator nodes on one host whose coordination
// traffic crosses the PCIe root complex (shards pushed down to
// device-resident control planes).
func PCIePool(n int) *Topology {
	nodes := make([]Node, n)
	for i := range nodes {
		nodes[i] = Node{Name: fmt.Sprintf("dev%d", i), Kind: KindGPU}
	}
	return NewTopology(fmt.Sprintf("pcie%d", n), nodes, TierPCIe)
}

// NVLinkPool returns n accelerator nodes on one host connected by an
// all-to-all NVLink fabric (the 8-GPU comparison system's interconnect).
func NVLinkPool(n int) *Topology {
	nodes := make([]Node, n)
	for i := range nodes {
		nodes[i] = Node{Name: fmt.Sprintf("gpu%d", i), Kind: KindGPU}
	}
	return NewTopology(fmt.Sprintf("nvlink%d", n), nodes, TierNVLink)
}

// Cluster returns hosts x socketsPerHost CPU sockets: NUMA links within
// each host, network links across hosts — the paper's p3.16xlarge-style
// scale-out baseline shape.
func Cluster(hosts, socketsPerHost int) *Topology {
	nodes := make([]Node, 0, hosts*socketsPerHost)
	for h := 0; h < hosts; h++ {
		for s := 0; s < socketsPerHost; s++ {
			nodes = append(nodes, Node{
				Name: fmt.Sprintf("host%d/socket%d", h, s),
				Kind: KindSocket,
				Host: h,
			})
		}
	}
	t := NewTopology(fmt.Sprintf("cluster%dx%d", hosts, socketsPerHost), nodes, TierNet)
	numa := DefaultLink(TierNUMA)
	for i := range nodes {
		for j := i + 1; j < len(nodes); j++ {
			if nodes[i].Host == nodes[j].Host {
				t.SetLink(i, j, numa)
			}
		}
	}
	return t
}

// TopologyNames lists the parseable topology families for usage errors.
const TopologyNames = "single, numa<N>, pcie<N>, nvlink<N>, cluster<H>x<S>"

// ParseTopology resolves a topology name: "single" (or ""), "numa<N>"
// (N sockets over UPI), "pcie<N>" (N devices over PCIe), "nvlink<N>"
// (N GPUs over NVLink), or "cluster<H>x<S>" (H hosts x S sockets, NUMA
// within a host, network across).
func ParseTopology(name string) (*Topology, error) {
	switch {
	case name == "" || name == "single":
		return SingleNode(), nil
	case strings.HasPrefix(name, "numa"):
		if n, err := parseCount(name, "numa"); err == nil {
			return MultiSocket(n), nil
		}
	case strings.HasPrefix(name, "nvlink"):
		if n, err := parseCount(name, "nvlink"); err == nil {
			return NVLinkPool(n), nil
		}
	case strings.HasPrefix(name, "pcie"):
		if n, err := parseCount(name, "pcie"); err == nil {
			return PCIePool(n), nil
		}
	case strings.HasPrefix(name, "cluster"):
		var h, s int
		// Sscanf tolerates trailing garbage; the round-trip check
		// rejects it ("cluster2x2x3" must not parse as cluster2x2).
		if _, err := fmt.Sscanf(name, "cluster%dx%d", &h, &s); err == nil &&
			h >= 1 && s >= 1 && name == fmt.Sprintf("cluster%dx%d", h, s) {
			return Cluster(h, s), nil
		}
	}
	return nil, fmt.Errorf("hw: unknown topology %q (want %s)", name, TopologyNames)
}

// parseCount parses the <N> suffix of a "<prefix><N>" topology name.
func parseCount(name, prefix string) (int, error) {
	var n int
	if _, err := fmt.Sscanf(name[len(prefix):], "%d", &n); err != nil || n < 1 ||
		name != fmt.Sprintf("%s%d", prefix, n) {
		return 0, fmt.Errorf("hw: bad node count in %q", name)
	}
	return n, nil
}

// Topology materializes the System's own platform as a topology graph:
// one CPU socket plus NumGPUs GPU nodes, PCIe links between the socket
// and each GPU, NVLink among the GPUs. DefaultSystem().Topology() is the
// paper's §V machine as one instance of the general model.
func (s System) Topology() *Topology {
	nodes := make([]Node, 0, 1+s.NumGPUs)
	nodes = append(nodes, Node{Name: s.CPU.Name, Kind: KindSocket})
	for g := 0; g < s.NumGPUs; g++ {
		nodes = append(nodes, Node{Name: fmt.Sprintf("%s%d", s.GPU.Name, g), Kind: KindGPU})
	}
	t := NewTopology("system", nodes, TierNVLink)
	pcie := s.PCIe
	pcie.Tier = TierPCIe
	nvlink := s.NVLink
	nvlink.Tier = TierNVLink
	for g := 1; g <= s.NumGPUs; g++ {
		t.SetLink(0, g, pcie)
	}
	for a := 1; a <= s.NumGPUs; a++ {
		for b := a + 1; b <= s.NumGPUs; b++ {
			t.SetLink(a, b, nvlink)
		}
	}
	return t
}
