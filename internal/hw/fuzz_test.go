package hw

import "testing"

// FuzzParseFaultPlan drives the -fail grammar with arbitrary input.
// Two properties, both unconditional:
//
//  1. No input panics the parser (it must reject with an error, never
//     crash — the flag value comes straight from the command line).
//  2. Canonical fixpoint: any accepted plan re-rendered by String()
//     must reparse, and the reparse must render the same string. The
//     benchmark history matches baselines on the canonical form, so a
//     parse/print drift would silently detach entries from their
//     families.
func FuzzParseFaultPlan(f *testing.F) {
	for _, seed := range []string{
		"",
		"host1@300",
		"agg0@50",
		"host1@300,link:host0-host1@500",
		"link:host0-host1@500-900",
		"degrade:host0-host1@100-200x8",
		"degrade:host1-host0@100",
		"replica1@0.4",
		"replica2@0.4-0.9,replica0@0.1",
		"host1@300,host1@300",
		"link:host2-host2@10",
		"replica-1@0.5",
		"host1@0",
		"degrade:host0-host1@5x0.5",
		"replica0@",
		",",
		"host1@300,",
		"replica0@1e-3-2e-3",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		plan, err := ParseFaultPlan(s)
		if err != nil {
			return
		}
		canon := plan.String()
		again, err := ParseFaultPlan(canon)
		if err != nil {
			t.Fatalf("canonical form %q of accepted plan %q does not reparse: %v", canon, s, err)
		}
		if got := again.String(); got != canon {
			t.Fatalf("canonical form is not a fixpoint: %q -> %q -> %q", s, canon, got)
		}
	})
}
