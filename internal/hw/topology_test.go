package hw

import "testing"

func TestTopologyBuilders(t *testing.T) {
	for _, tc := range []struct {
		name       string
		topo       *Topology
		nodes      int
		hosts      int
		sampleTier LinkTier
		sampleA    int
		sampleB    int
	}{
		{"single", SingleNode(), 1, 1, TierLocal, 0, 0},
		{"numa2", MultiSocket(2), 2, 1, TierNUMA, 0, 1},
		{"pcie4", PCIePool(4), 4, 1, TierPCIe, 1, 3},
		{"nvlink8", NVLinkPool(8), 8, 1, TierNVLink, 0, 7},
		{"cluster2x2", Cluster(2, 2), 4, 2, TierNet, 0, 2},
	} {
		if err := tc.topo.Validate(); err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if got := tc.topo.NumNodes(); got != tc.nodes {
			t.Fatalf("%s: %d nodes, want %d", tc.name, got, tc.nodes)
		}
		if got := tc.topo.Hosts(); got != tc.hosts {
			t.Fatalf("%s: %d hosts, want %d", tc.name, got, tc.hosts)
		}
		if got := tc.topo.Link(tc.sampleA, tc.sampleB).Tier; got != tc.sampleTier {
			t.Fatalf("%s: link(%d,%d) tier %s, want %s", tc.name, tc.sampleA, tc.sampleB, got, tc.sampleTier)
		}
	}
	// Cluster intra-host links are NUMA, inter-host links network.
	cl := Cluster(2, 2)
	if got := cl.Link(0, 1).Tier; got != TierNUMA {
		t.Fatalf("cluster intra-host tier %s, want numa", got)
	}
	if got := cl.Link(1, 2).Tier; got != TierNet {
		t.Fatalf("cluster inter-host tier %s, want net", got)
	}
	// The diagonal is always the local tier (costing skips TierLocal).
	if l := cl.Link(3, 3); l.Tier != TierLocal {
		t.Fatalf("diagonal link not local: %+v", l)
	}
	// Hosts counts distinct host values, not max+1: non-dense host
	// numbering must not inflate the rented fleet.
	sparse := NewTopology("sparse", []Node{{Name: "a", Host: 0}, {Name: "b", Host: 3}}, TierNet)
	if got := sparse.Hosts(); got != 2 {
		t.Fatalf("sparse host numbering: %d hosts, want 2", got)
	}
}

func TestTierCostOrdering(t *testing.T) {
	// The placement study's monotone penalty depends on tier ordering
	// for coordination-sized messages: local < NUMA < PCIe < network.
	const msg = 64.0
	prev := 0.0
	for _, tier := range []LinkTier{TierLocal, TierNUMA, TierPCIe, TierNet} {
		l := DefaultLink(tier)
		cost := 0.0
		if tier != TierLocal {
			cost = l.TransferTime(msg)
		}
		if cost < prev {
			t.Fatalf("tier %s costs %g < previous tier's %g: tiers not monotone", tier, cost, prev)
		}
		if tier != TierLocal && cost <= prev {
			t.Fatalf("tier %s costs %g, not strictly above previous %g", tier, cost, prev)
		}
		prev = cost
	}
}

func TestParseTopology(t *testing.T) {
	for name, nodes := range map[string]int{
		"":           1,
		"single":     1,
		"numa2":      2,
		"numa4":      4,
		"pcie4":      4,
		"nvlink8":    8,
		"cluster2x2": 4,
		"cluster4x1": 4,
	} {
		topo, err := ParseTopology(name)
		if err != nil {
			t.Fatalf("ParseTopology(%q): %v", name, err)
		}
		if topo.NumNodes() != nodes {
			t.Fatalf("ParseTopology(%q): %d nodes, want %d", name, topo.NumNodes(), nodes)
		}
	}
	for _, bad := range []string{"mesh", "numa0", "numa-2", "numa2x", "cluster2", "clusterx2", "cluster2x2x3", "cluster2x2junk", "cluster0x2", "pcie", "bogus9"} {
		if _, err := ParseTopology(bad); err == nil {
			t.Fatalf("ParseTopology(%q) accepted", bad)
		}
	}
}

func TestSystemTopologyInstance(t *testing.T) {
	sys := DefaultSystem()
	topo := sys.Topology()
	if err := topo.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := topo.NumNodes(); got != 1+sys.NumGPUs {
		t.Fatalf("%d nodes, want %d", got, 1+sys.NumGPUs)
	}
	if l := topo.Link(0, 1); l.Tier != TierPCIe || l.Bandwidth != sys.PCIe.Bandwidth {
		t.Fatalf("cpu-gpu link %+v, want the system's PCIe link", l)
	}
	if l := topo.Link(1, 2); l.Tier != TierNVLink || l.Bandwidth != sys.NVLink.Bandwidth {
		t.Fatalf("gpu-gpu link %+v, want the system's NVLink fabric", l)
	}
}

func TestPlacementPolicies(t *testing.T) {
	topo := Cluster(2, 2) // 4 nodes
	stripe, err := NewPlacement(PlaceStripe, topo, 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	wantStripe := []int{0, 1, 2, 3, 0, 1, 2, 3}
	for j, n := range stripe.Node {
		if n != wantStripe[j] {
			t.Fatalf("stripe: shard %d on node %d, want %d", j, n, wantStripe[j])
		}
	}
	rng, err := NewPlacement(PlaceRange, topo, 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	wantRange := []int{0, 0, 1, 1, 2, 2, 3, 3}
	for j, n := range rng.Node {
		if n != wantRange[j] {
			t.Fatalf("range: shard %d on node %d, want %d", j, n, wantRange[j])
		}
	}
	// Load-aware: one hot shard plus light shards — the hot shard must
	// sit alone-ish while light shards pack the remaining nodes evenly.
	weights := []float64{10, 1, 1, 1, 1, 1, 1, 1}
	la, err := NewPlacement(PlaceLoadAware, topo, 8, weights)
	if err != nil {
		t.Fatal(err)
	}
	load := make([]float64, topo.NumNodes())
	for j, n := range la.Node {
		load[n] += weights[j]
	}
	hot := la.Node[0]
	for n, l := range load {
		if n != hot && l > load[hot] {
			t.Fatalf("load-aware: node %d carries %g > hot node %d's %g", n, l, hot, load[hot])
		}
	}
	if !la.Distributed() || !stripe.Distributed() {
		t.Fatal("multi-node placements must report Distributed")
	}
	// Hosts() counts the hosts the placement spans, not the topology's:
	// two shards striped onto cluster2x2 land on nodes 0,1 — one host —
	// while range spreads them to nodes 0,2 — both hosts.
	s2, err := NewPlacement(PlaceStripe, topo, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := s2.Hosts(); got != 1 {
		t.Fatalf("stripe S=2 spans %d hosts, want 1", got)
	}
	r2, err := NewPlacement(PlaceRange, topo, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := r2.Hosts(); got != 2 {
		t.Fatalf("range S=2 spans %d hosts, want 2", got)
	}
	if got := stripe.Hosts(); got != 2 {
		t.Fatalf("stripe S=8 spans %d hosts, want 2", got)
	}
	if got := (Placement{}).Hosts(); got != 1 {
		t.Fatalf("zero placement spans %d hosts, want 1", got)
	}
	single, err := NewPlacement(PlaceStripe, SingleNode(), 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if single.Distributed() {
		t.Fatal("single-node placement reports Distributed")
	}
	if (Placement{}).Distributed() {
		t.Fatal("zero placement reports Distributed")
	}
}

func TestPlacementValidation(t *testing.T) {
	topo := MultiSocket(2)
	if _, err := NewPlacement("bogus", topo, 4, nil); err == nil {
		t.Fatal("unknown policy accepted")
	}
	if _, err := NewPlacement(PlaceStripe, nil, 4, nil); err == nil {
		t.Fatal("nil topology accepted")
	}
	if _, err := NewPlacement(PlaceStripe, topo, 0, nil); err == nil {
		t.Fatal("zero shards accepted")
	}
	if _, err := NewPlacement(PlaceLoadAware, topo, 4, []float64{1, 2}); err == nil {
		t.Fatal("mismatched weights accepted")
	}
	p, err := NewPlacement(PlaceStripe, topo, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(4); err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(3); err == nil {
		t.Fatal("shard-count mismatch accepted")
	}
	bad := p
	bad.Node = []int{0, 1, 2, 1}
	if err := bad.Validate(4); err == nil {
		t.Fatal("out-of-range node accepted")
	}
	if err := (Placement{}).Validate(4); err != nil {
		t.Fatalf("zero placement should validate: %v", err)
	}
}
