package hw

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDefaultSystemValid(t *testing.T) {
	if err := DefaultSystem().Validate(); err != nil {
		t.Fatalf("default system invalid: %v", err)
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	mods := []func(*System){
		func(s *System) { s.CPU.MemBandwidth = 0 },
		func(s *System) { s.CPU.StreamEff = 0 },
		func(s *System) { s.CPU.StreamEff = 1.5 },
		func(s *System) { s.GPU.RandomEff = -1 },
		func(s *System) { s.GPU.Flops = 0 },
		func(s *System) { s.GPU.FlopsEff = 2 },
		func(s *System) { s.CPU.KernelOverhead = -1 },
		func(s *System) { s.PCIe.Bandwidth = 0 },
		func(s *System) { s.NVLink.Latency = -1 },
		func(s *System) { s.NumGPUs = 0 },
	}
	for i, mod := range mods {
		s := DefaultSystem()
		mod(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("case %d: invalid system accepted", i)
		}
	}
}

func TestBasicLatencyArithmetic(t *testing.T) {
	d := Device{Name: "d", MemBandwidth: 100e9, StreamEff: 0.5, RandomEff: 0.1,
		Flops: 1e12, FlopsEff: 0.5, KernelOverhead: 1e-6}
	// 50 GB/s effective stream: 50 GB takes 1 s + overhead.
	if got := d.StreamTime(50e9); math.Abs(got-1.000001) > 1e-9 {
		t.Errorf("StreamTime = %v", got)
	}
	// 10 GB/s effective random: 10 GB takes 1 s.
	if got := d.RandomTime(10e9); math.Abs(got-1.000001) > 1e-9 {
		t.Errorf("RandomTime = %v", got)
	}
	// 0.5 TFLOP/s effective: 0.5 TFLOP takes 1 s.
	if got := d.ComputeTime(0.5e12); math.Abs(got-1.000001) > 1e-9 {
		t.Errorf("ComputeTime = %v", got)
	}
	if d.StreamTime(0) != 0 || d.RandomTime(0) != 0 || d.ComputeTime(0) != 0 {
		t.Error("zero work should cost zero time")
	}
}

func TestMatmulRoofline(t *testing.T) {
	d := Device{Name: "d", MemBandwidth: 100e9, StreamEff: 1, RandomEff: 1,
		Flops: 1e12, FlopsEff: 1, KernelOverhead: 0}
	// Compute bound: 1e12 flops, tiny bytes -> 1 s.
	if got := d.MatmulTime(1e12, 1); math.Abs(got-1) > 1e-9 {
		t.Errorf("compute-bound matmul = %v", got)
	}
	// Memory bound: tiny flops, 100 GB -> 1 s.
	if got := d.MatmulTime(1, 100e9); math.Abs(got-1) > 1e-9 {
		t.Errorf("memory-bound matmul = %v", got)
	}
}

func TestLinkTransfer(t *testing.T) {
	l := Link{Name: "l", Bandwidth: 10e9, Latency: 1e-6, FullDuplex: true}
	if got := l.TransferTime(10e9); math.Abs(got-1.000001) > 1e-9 {
		t.Errorf("TransferTime = %v", got)
	}
	// Duplex: simultaneous transfers cost the max direction.
	if got := l.DuplexTransferTime(10e9, 5e9); math.Abs(got-1.000001) > 1e-9 {
		t.Errorf("duplex = %v", got)
	}
	half := Link{Name: "h", Bandwidth: 10e9, Latency: 0, FullDuplex: false}
	if got := half.DuplexTransferTime(10e9, 5e9); math.Abs(got-1.5) > 1e-9 {
		t.Errorf("half duplex = %v", got)
	}
	if l.TransferTime(0) != 0 || l.DuplexTransferTime(0, 0) != 0 {
		t.Error("zero transfer should cost zero time")
	}
}

func TestEmbeddingOpCosts(t *testing.T) {
	sys := DefaultSystem()
	// A gather of N rows moves N*dim*4 bytes randomly.
	rows, dim := 1000, 128
	want := sys.CPU.RandomTime(float64(rows * dim * 4))
	if got := sys.CPU.GatherTime(rows, dim); got != want {
		t.Errorf("GatherTime = %v, want %v", got, want)
	}
	// Scatter update is twice the gather traffic (read-modify-write).
	up := sys.CPU.ScatterUpdateTime(rows, dim)
	wr := sys.CPU.ScatterWriteTime(rows, dim)
	if up <= wr {
		t.Errorf("scatter update %v not more expensive than plain write %v", up, wr)
	}
	// Monotonicity in rows.
	if sys.CPU.GatherTime(2000, dim) <= sys.CPU.GatherTime(1000, dim) {
		t.Error("gather time not monotone in rows")
	}
}

// TestCostMonotonicityProperty: all cost functions are monotone in their
// byte/flop arguments and never negative.
func TestCostMonotonicityProperty(t *testing.T) {
	d := DefaultSystem().CPU
	f := func(a, b float64) bool {
		a, b = math.Abs(a), math.Abs(b)
		if a > b {
			a, b = b, a
		}
		return d.StreamTime(a) <= d.StreamTime(b) &&
			d.RandomTime(a) <= d.RandomTime(b) &&
			d.ComputeTime(a) <= d.ComputeTime(b) &&
			d.StreamTime(a) >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestCalibrationAnchors(t *testing.T) {
	// The calibration targets of DESIGN.md §7, kept as executable
	// regression anchors: the CPU-side random gather of one default
	// batch's embeddings (8 tables x 20 x 2048 rows x 512 B) lands in
	// the tens of milliseconds, and the same gather on the GPU is >50x
	// faster.
	sys := DefaultSystem()
	rows := 8 * 20 * 2048
	cpu := sys.CPU.GatherTime(rows, 128)
	gpu := sys.GPU.GatherTime(rows, 128)
	if cpu < 0.020 || cpu > 0.100 {
		t.Errorf("CPU batch gather = %v s, want 20-100 ms", cpu)
	}
	if cpu/gpu < 50 {
		t.Errorf("CPU/GPU gather ratio = %v, want > 50", cpu/gpu)
	}
}

func TestSeconds(t *testing.T) {
	if Seconds(1.5).Seconds() != 1.5 {
		t.Errorf("Seconds round trip failed")
	}
}
