package hw

import (
	"reflect"
	"strings"
	"testing"
)

// TestParseFaultPlan pins the -fail grammar, its canonical String
// rendering, and its rejections.
func TestParseFaultPlan(t *testing.T) {
	good := []struct {
		in, canon string
		plan      FaultPlan
	}{
		{"", "", FaultPlan{}},
		{"host1@300", "host1@300", FaultPlan{Events: []FaultEvent{
			{Kind: FaultHostDown, Host: 1, Iter: 300}}}},
		{"agg0@25", "agg0@25", FaultPlan{Events: []FaultEvent{
			{Kind: FaultAggLoss, Host: 0, Iter: 25}}}},
		{"link:host0-host1@500", "link:host0-host1@500", FaultPlan{Events: []FaultEvent{
			{Kind: FaultLinkDown, Host: 0, HostB: 1, Iter: 500}}}},
		{"link:host1-host0@10-20", "link:host0-host1@10-20", FaultPlan{Events: []FaultEvent{
			{Kind: FaultLinkDown, Host: 0, HostB: 1, Iter: 10, Heal: 20}}}},
		{"degrade:host0-host1@5", "degrade:host0-host1@5x4", FaultPlan{Events: []FaultEvent{
			{Kind: FaultLinkDegraded, Host: 0, HostB: 1, Iter: 5, Factor: DefaultDegradeFactor}}}},
		{"degrade:host0-host1@5-9x2.5", "degrade:host0-host1@5-9x2.5", FaultPlan{Events: []FaultEvent{
			{Kind: FaultLinkDegraded, Host: 0, HostB: 1, Iter: 5, Heal: 9, Factor: 2.5}}}},
		// The ISSUE example, plus sorting by iteration.
		{"host1@300,link:host0-host1@500", "host1@300,link:host0-host1@500", FaultPlan{Events: []FaultEvent{
			{Kind: FaultHostDown, Host: 1, Iter: 300},
			{Kind: FaultLinkDown, Host: 0, HostB: 1, Iter: 500}}}},
		{"link:host0-host1@500, host1@300", "host1@300,link:host0-host1@500", FaultPlan{Events: []FaultEvent{
			{Kind: FaultHostDown, Host: 1, Iter: 300},
			{Kind: FaultLinkDown, Host: 0, HostB: 1, Iter: 500}}}},
	}
	for _, tc := range good {
		plan, err := ParseFaultPlan(tc.in)
		if err != nil {
			t.Fatalf("ParseFaultPlan(%q): %v", tc.in, err)
		}
		if !reflect.DeepEqual(plan, tc.plan) {
			t.Fatalf("ParseFaultPlan(%q) = %+v, want %+v", tc.in, plan, tc.plan)
		}
		if got := plan.String(); got != tc.canon {
			t.Fatalf("ParseFaultPlan(%q).String() = %q, want %q", tc.in, got, tc.canon)
		}
		if reparsed, err := ParseFaultPlan(plan.String()); err != nil || !reflect.DeepEqual(reparsed, plan) {
			t.Fatalf("String round-trip of %q failed: %+v, %v", tc.in, reparsed, err)
		}
	}
	bad := []string{
		"abc", "host1", "host1@", "host1@0", "host1@-3", "hostx@5",
		"agg@5", "agg1@0", "host1@300,,host0@400",
		"link:host0@5", "link:host0-host0@5", "link:host0-host1@0",
		"link:host0-host1@10-10", "link:host0-host1@10-5",
		"degrade:host0-host1@5x1", "degrade:host0-host1@5x0.5",
		"degrade:host0-host1@5xab",
	}
	for _, in := range bad {
		if _, err := ParseFaultPlan(in); err == nil {
			t.Fatalf("ParseFaultPlan(%q) accepted", in)
		}
	}
	if (FaultPlan{}).Active() {
		t.Fatal("zero plan active")
	}
}

// TestParseFaultPlanReplica pins the serving-tier replica event grammar:
// fractional virtual-clock seconds, optional recovery, canonical String
// round-trip, and mixed-plan sorting by schedule position.
func TestParseFaultPlanReplica(t *testing.T) {
	good := []struct {
		in, canon string
		plan      FaultPlan
	}{
		{"replica1@0.35", "replica1@0.35", FaultPlan{Events: []FaultEvent{
			{Kind: FaultReplicaDown, Replica: 1, At: 0.35}}}},
		{"replica0@0.35-0.85", "replica0@0.35-0.85", FaultPlan{Events: []FaultEvent{
			{Kind: FaultReplicaDown, Replica: 0, At: 0.35, Until: 0.85}}}},
		// Replica times and host iterations sort on one schedule axis.
		{"replica2@5,replica0@0.5", "replica0@0.5,replica2@5", FaultPlan{Events: []FaultEvent{
			{Kind: FaultReplicaDown, Replica: 0, At: 0.5},
			{Kind: FaultReplicaDown, Replica: 2, At: 5}}}},
		{"host1@3,replica0@0.5", "replica0@0.5,host1@3", FaultPlan{Events: []FaultEvent{
			{Kind: FaultReplicaDown, Replica: 0, At: 0.5},
			{Kind: FaultHostDown, Host: 1, Iter: 3}}}},
	}
	for _, tc := range good {
		plan, err := ParseFaultPlan(tc.in)
		if err != nil {
			t.Fatalf("ParseFaultPlan(%q): %v", tc.in, err)
		}
		if !reflect.DeepEqual(plan, tc.plan) {
			t.Fatalf("ParseFaultPlan(%q) = %+v, want %+v", tc.in, plan, tc.plan)
		}
		if got := plan.String(); got != tc.canon {
			t.Fatalf("ParseFaultPlan(%q).String() = %q, want %q", tc.in, got, tc.canon)
		}
		if reparsed, err := ParseFaultPlan(plan.String()); err != nil || !reflect.DeepEqual(reparsed, plan) {
			t.Fatalf("String round-trip of %q failed: %+v, %v", tc.in, reparsed, err)
		}
	}
	for _, in := range []string{
		"replica@0.5", "replica1", "replica1@", "replica1@0", "replica1@-2",
		"replica-1@0.5", "replica01@0.5", "replica1@0.5-0.5", "replica1@0.5-0.2",
		"replica1@abc", "replica1@0.5-xyz",
	} {
		if _, err := ParseFaultPlan(in); err == nil {
			t.Fatalf("ParseFaultPlan(%q) accepted", in)
		}
	}
}

// TestParseFaultPlanErrorPosition: a malformed token in a long schedule
// is reported with its 1-based position and the token itself.
func TestParseFaultPlanErrorPosition(t *testing.T) {
	_, err := ParseFaultPlan("host1@300,link:host0-host0@5,agg0@25")
	if err == nil {
		t.Fatal("bad middle token accepted")
	}
	msg := err.Error()
	for _, want := range []string{"event 2", `"link:host0-host0@5"`} {
		if !strings.Contains(msg, want) {
			t.Errorf("error %q does not name %s", msg, want)
		}
	}
	_, err = ParseFaultPlan("host1@300,,host0@400")
	if err == nil || !strings.Contains(err.Error(), "event 2") {
		t.Errorf("empty-token error %v does not carry its position", err)
	}
}

// TestFaultPlanValidate: events addressed to absent hosts, duplicate
// kills, and fleet-annihilating schedules are rejected against the
// concrete topology; the empty plan passes everywhere, including nil.
func TestFaultPlanValidate(t *testing.T) {
	topo := Cluster(2, 2) // hosts 0 and 1
	mustParse := func(s string) FaultPlan {
		t.Helper()
		p, err := ParseFaultPlan(s)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	if err := (FaultPlan{}).Validate(nil); err != nil {
		t.Fatalf("empty plan rejected on nil topology: %v", err)
	}
	if err := mustParse("host1@5").Validate(nil); err == nil {
		t.Fatal("active plan accepted on nil topology")
	}
	if err := mustParse("host1@5,link:host0-host1@2-4").Validate(topo); err != nil {
		t.Fatalf("valid plan rejected: %v", err)
	}
	for _, s := range []string{
		"host7@5",            // no such host
		"agg7@5",             // no such aggregator host
		"link:host0-host7@5", // link endpoint absent
		"host1@5,host1@9",    // duplicate kill
		"host0@5,host1@9",    // nobody left alive
	} {
		if err := mustParse(s).Validate(topo); err == nil {
			t.Fatalf("Validate(%q) accepted on %s", s, topo.Name)
		}
	}
	// Replica events belong to the serving tier: training-plan Validate
	// must turn them away and point at -serve-fail.
	if err := mustParse("replica1@0.5").Validate(topo); err == nil ||
		!strings.Contains(err.Error(), "-serve-fail") {
		t.Fatalf("training Validate on replica event: %v, want -serve-fail redirect", err)
	}
}

// TestFaultPlanValidateServe checks the serving-tier validation:
// replica indices against the fleet size, re-strikes of a still-down
// replica, host kills against the topology, and the rejection of
// link/degrade/agg events that only make sense in training plans.
func TestFaultPlanValidateServe(t *testing.T) {
	topo := Cluster(2, 2)
	mustParse := func(s string) FaultPlan {
		t.Helper()
		p, err := ParseFaultPlan(s)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	for _, s := range []string{
		"replica0@0.5", "replica3@0.5-1.5", "replica0@0.5-1,replica0@2",
		"replica0@0.5,replica1@0.5", // fleet-wide blackout is a scenario, not an error
		"host1@2", "host0@1,replica3@0.5",
	} {
		if err := mustParse(s).ValidateServe(4, topo); err != nil {
			t.Errorf("ValidateServe(%q): %v", s, err)
		}
	}
	bad := []struct{ plan, why string }{
		{"replica4@0.5", "replica index past the fleet"},
		{"replica0@0.5,replica0@1", "re-strike while permanently down"},
		{"replica0@0.5-2,replica0@1", "re-strike inside the outage"},
		{"link:host0-host1@5", "link events are training-only"},
		{"agg0@5", "agg events are training-only"},
	}
	for _, tc := range bad {
		if err := mustParse(tc.plan).ValidateServe(4, topo); err == nil {
			t.Errorf("ValidateServe(%q) accepted: %s", tc.plan, tc.why)
		}
	}
	if err := mustParse("host1@2").ValidateServe(4, nil); err == nil {
		t.Error("host kill accepted without a topology")
	}
	if err := mustParse("host7@2").ValidateServe(4, topo); err == nil {
		t.Error("host kill on absent host accepted")
	}
	if err := (FaultPlan{}).ValidateServe(0, nil); err != nil {
		t.Errorf("empty plan rejected: %v", err)
	}
}

// TestTopologyClone: the clone is deep — mutating its links must not
// touch the original.
func TestTopologyClone(t *testing.T) {
	topo := Cluster(2, 2)
	clone := topo.Clone()
	clone.SetHostLinksDown(0, 1, true)
	for i := 0; i < topo.NumNodes(); i++ {
		for j := i + 1; j < topo.NumNodes(); j++ {
			if topo.Link(i, j).Down {
				t.Fatalf("clone mutation leaked into original link %d-%d", i, j)
			}
		}
	}
	if !clone.Link(0, 2).Down {
		t.Fatal("clone's cross-host link not marked down")
	}
}

// TestHostLinkMutators: partition marks exactly the cross-host pairs
// down, degrade reprices them, and restore heals both back to the
// pristine calibration.
func TestHostLinkMutators(t *testing.T) {
	pristine := Cluster(2, 2)
	topo := pristine.Clone()

	topo.SetHostLinksDown(0, 1, true)
	for i := 0; i < topo.NumNodes(); i++ {
		for j := i + 1; j < topo.NumNodes(); j++ {
			cross := topo.Nodes[i].Host != topo.Nodes[j].Host
			if got := topo.Link(i, j).Down; got != cross {
				t.Fatalf("link %d-%d down=%v, want %v", i, j, got, cross)
			}
		}
	}
	topo.RestoreHostLinks(pristine, 0, 1)
	if !reflect.DeepEqual(topo, pristine) {
		t.Fatal("restore after partition did not recover the pristine topology")
	}

	topo.DegradeHostLinks(0, 1, 4)
	base, slow := pristine.Link(0, 2), topo.Link(0, 2)
	if slow.Latency != base.Latency*4 || slow.Bandwidth != base.Bandwidth/4 {
		t.Fatalf("degrade x4: latency %g->%g bandwidth %g->%g", base.Latency, slow.Latency, base.Bandwidth, slow.Bandwidth)
	}
	if intra := topo.Link(0, 1); intra != pristine.Link(0, 1) {
		t.Fatalf("degrade touched an intra-host link: %+v", intra)
	}
	topo.RestoreHostLinks(pristine, 0, 1)
	if !reflect.DeepEqual(topo, pristine) {
		t.Fatal("restore after degrade did not recover the pristine topology")
	}
}

// TestEvacuatePlacement: survivors keep their nodes, evacuees land on
// the least-loaded surviving node deterministically, and a fleet with
// no survivor errors.
func TestEvacuatePlacement(t *testing.T) {
	topo := Cluster(2, 2) // nodes 0,1 on host 0; nodes 2,3 on host 1
	place := Placement{Topo: topo, Node: []int{0, 1, 2, 3}}
	dead := func(h int) bool { return h == 1 }

	out, err := EvacuatePlacement(place, dead)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out.Node, []int{0, 1, 0, 1}) {
		t.Fatalf("evacuated placement %v, want [0 1 0 1]", out.Node)
	}
	if !reflect.DeepEqual(place.Node, []int{0, 1, 2, 3}) {
		t.Fatal("evacuation mutated the input placement")
	}

	// Nothing on the dead host: the placement comes back unchanged (no
	// gratuitous migration), same backing slice and all.
	idle := Placement{Topo: topo, Node: []int{0, 1, 0, 1}}
	out, err = EvacuatePlacement(idle, dead)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out, idle) {
		t.Fatalf("idle-host evacuation changed the placement: %v", out.Node)
	}

	// Zero placements (co-located runs) pass through untouched.
	if out, err := EvacuatePlacement(Placement{}, dead); err != nil || out.Topo != nil {
		t.Fatalf("zero placement: %+v, %v", out, err)
	}

	if _, err := EvacuatePlacement(place, func(int) bool { return true }); err == nil {
		t.Fatal("evacuation with no surviving host accepted")
	}
}
