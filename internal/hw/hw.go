// Package hw models the hardware platform the paper evaluates on: a hybrid
// CPU-GPU node (Intel Xeon E5-2698v4 + NVIDIA V100) connected over PCIe
// gen3, optionally scaled out to an 8-GPU NVLink system.
//
// The paper measures wall-clock time on a real machine. This reproduction
// has no GPU, so hw provides an analytic cost model instead: every primitive
// the training pipeline executes (embedding gather, gradient scatter,
// reduction, MLP matmul, PCIe transfer, ...) is mapped to a simulated
// latency derived from bytes moved, FLOPs executed, and per-kernel
// overheads. All results downstream (Figures 5, 12, 13, 14, 15 and Table I)
// are functions of these latencies and of event counts produced by the
// functional cache simulation, which is exactly the information the paper's
// own numbers depend on.
//
// Architecture orientation (DESIGN.md §5 and §7 are the long form):
//
//   - [Device] and [Link] are the primitives: a memory+compute endpoint
//     and an interconnect, each reduced to the bandwidth/latency/
//     overhead constants the timing formulas need.
//   - [System] is the paper's fixed platform — one CPU socket, NumGPUs
//     GPUs, PCIe between them, NVLink among the GPUs — and carries the
//     per-primitive cost methods (StreamTime, RandomTime, MatmulTime,
//     TransferTime) every engine prices its stages with.
//   - [Topology] generalizes System into a graph: named nodes (sockets,
//     GPUs, grouped into hosts) plus a symmetric tiered link matrix
//     (local/NUMA/PCIe/NVLink/net). System.Topology() renders the
//     paper's machine as one instance; ParseTopology names scale-out
//     families (numa<N>, pcie<N>, nvlink<N>, cluster<H>x<S>).
//   - [Placement] assigns scratchpad shards to topology nodes (stripe,
//     range, or load-aware). The shard coordinator (internal/shard)
//     meters its messages — and, on an elastic reshard, its migrated
//     state — in bytes and charges the links a placement makes them
//     cross; co-located endpoints are free by construction.
//
// Times are float64 seconds. Bandwidths are bytes/second. Calibration
// constants live in DefaultSystem and DefaultLink and are documented in
// DESIGN.md §7.
package hw

import (
	"fmt"
	"time"
)

// Device describes one memory+compute device (a CPU socket or a GPU).
type Device struct {
	// Name identifies the device in reports ("cpu", "gpu").
	Name string
	// MemBandwidth is the peak DRAM/HBM bandwidth in bytes/second.
	MemBandwidth float64
	// StreamEff is the fraction of peak bandwidth achieved by long
	// sequential accesses (reductions, bulk copies).
	StreamEff float64
	// RandomEff is the fraction of peak bandwidth achieved by
	// row-granular random accesses (embedding gathers and scatters).
	// Embedding rows are a few hundred bytes, so random access wastes
	// most of each DRAM page; the paper's CPU-side gathers run far below
	// peak, which is the entire premise of the work.
	RandomEff float64
	// Flops is peak FP32 throughput in FLOP/s.
	Flops float64
	// FlopsEff is the fraction of peak FLOPs achieved by the MLP
	// matmuls at the paper's batch sizes.
	FlopsEff float64
	// KernelOverhead is the fixed cost of launching one operation
	// (kernel launch, framework dispatch).
	KernelOverhead float64
	// IterOverhead is a fixed per-training-iteration cost charged once
	// per iteration on this device (optimizer step bookkeeping, Python
	// framework overhead in the paper's PyTorch harness).
	IterOverhead float64
}

// Link describes an interconnect between devices or topology nodes.
type Link struct {
	// Name identifies the link ("pcie", "nvlink").
	Name string
	// Tier classifies where the link sits in the machine hierarchy
	// (see LinkTier); the zero value TierLocal marks co-located
	// endpoints whose communication has zero modeled cost.
	Tier LinkTier
	// Bandwidth is effective bytes/second per direction.
	Bandwidth float64
	// Latency is the fixed per-transfer latency in seconds.
	Latency float64
	// FullDuplex reports whether simultaneous transfers in opposite
	// directions proceed at full bandwidth each (PCIe and NVLink do).
	FullDuplex bool
	// Down marks a partitioned link (see FaultPlan): the calibration is
	// preserved for the heal, but no traffic crosses and consumers skip
	// it when pricing.
	Down bool
}

// System is the full platform: one CPU socket, NumGPUs GPUs, a CPU-GPU PCIe
// link and a GPU-GPU NVLink fabric.
type System struct {
	CPU     Device
	GPU     Device
	PCIe    Link
	NVLink  Link
	NumGPUs int
}

// DefaultSystem returns the platform of the paper's §V methodology:
// Xeon E5-2698v4 (256 GB DDR4 @ 76.8 GB/s), V100 (32 GB HBM2 @ 900 GB/s,
// 15.7 TFLOPS FP32), PCIe gen3 x16 (16 GB/s). Efficiency constants are
// calibrated so the baseline hybrid CPU-GPU configuration lands in the
// paper's measured range (~150-200 ms/iteration, Figure 5) and ScratchPipe
// lands in Table I's 26-48 ms range; see DESIGN.md §7.
func DefaultSystem() System {
	return System{
		CPU: Device{
			Name:           "cpu",
			MemBandwidth:   76.8e9,
			StreamEff:      0.50,
			RandomEff:      0.045,
			Flops:          1.5e12,
			FlopsEff:       0.50,
			KernelOverhead: 50e-6,
			IterOverhead:   1e-3,
		},
		GPU: Device{
			Name:           "gpu",
			MemBandwidth:   900e9,
			StreamEff:      0.75,
			RandomEff:      0.45,
			Flops:          15.7e12,
			FlopsEff:       0.25,
			KernelOverhead: 20e-6,
			IterOverhead:   16e-3,
		},
		PCIe: Link{
			Name:       "pcie",
			Tier:       TierPCIe,
			Bandwidth:  16e9,
			Latency:    15e-6,
			FullDuplex: true,
		},
		NVLink: Link{
			Name:       "nvlink",
			Tier:       TierNVLink,
			Bandwidth:  150e9,
			Latency:    5e-6,
			FullDuplex: true,
		},
		NumGPUs: 8,
	}
}

// Validate reports a descriptive error if any parameter is non-physical.
func (s System) Validate() error {
	for _, d := range []Device{s.CPU, s.GPU} {
		if d.MemBandwidth <= 0 {
			return fmt.Errorf("hw: device %q: non-positive memory bandwidth %g", d.Name, d.MemBandwidth)
		}
		if d.StreamEff <= 0 || d.StreamEff > 1 {
			return fmt.Errorf("hw: device %q: stream efficiency %g out of (0,1]", d.Name, d.StreamEff)
		}
		if d.RandomEff <= 0 || d.RandomEff > 1 {
			return fmt.Errorf("hw: device %q: random efficiency %g out of (0,1]", d.Name, d.RandomEff)
		}
		if d.Flops <= 0 || d.FlopsEff <= 0 || d.FlopsEff > 1 {
			return fmt.Errorf("hw: device %q: invalid flops %g (eff %g)", d.Name, d.Flops, d.FlopsEff)
		}
		if d.KernelOverhead < 0 || d.IterOverhead < 0 {
			return fmt.Errorf("hw: device %q: negative overhead", d.Name)
		}
	}
	for _, l := range []Link{s.PCIe, s.NVLink} {
		if l.Bandwidth <= 0 {
			return fmt.Errorf("hw: link %q: non-positive bandwidth %g", l.Name, l.Bandwidth)
		}
		if l.Latency < 0 {
			return fmt.Errorf("hw: link %q: negative latency", l.Name)
		}
	}
	if s.NumGPUs < 1 {
		return fmt.Errorf("hw: NumGPUs %d < 1", s.NumGPUs)
	}
	return nil
}

// StreamTime is the latency of moving bytes with long sequential accesses
// on device d (one kernel).
func (d Device) StreamTime(bytes float64) float64 {
	if bytes <= 0 {
		return 0
	}
	return d.KernelOverhead + bytes/(d.MemBandwidth*d.StreamEff)
}

// RandomTime is the latency of moving bytes with row-granular random
// accesses on device d (one kernel).
func (d Device) RandomTime(bytes float64) float64 {
	if bytes <= 0 {
		return 0
	}
	return d.KernelOverhead + bytes/(d.MemBandwidth*d.RandomEff)
}

// ComputeTime is the latency of executing flops FLOPs on device d (one
// kernel), assuming the op is compute bound.
func (d Device) ComputeTime(flops float64) float64 {
	if flops <= 0 {
		return 0
	}
	return d.KernelOverhead + flops/(d.Flops*d.FlopsEff)
}

// MatmulTime is a roofline estimate for a dense matmul: the larger of the
// compute time and the streaming time of its operand traffic.
func (d Device) MatmulTime(flops, bytes float64) float64 {
	if flops <= 0 && bytes <= 0 {
		return 0
	}
	c := flops / (d.Flops * d.FlopsEff)
	m := bytes / (d.MemBandwidth * d.StreamEff)
	return d.KernelOverhead + max(c, m)
}

// TransferTime is the latency of a single transfer of bytes over link l.
func (l Link) TransferTime(bytes float64) float64 {
	if bytes <= 0 {
		return 0
	}
	return l.Latency + bytes/l.Bandwidth
}

// DuplexTransferTime is the latency of simultaneously sending fwdBytes one
// way and bwdBytes the other way (the [Exchange] stage ships missed
// embeddings CPU->GPU while shipping evicted embeddings GPU->CPU).
func (l Link) DuplexTransferTime(fwdBytes, bwdBytes float64) float64 {
	if fwdBytes <= 0 && bwdBytes <= 0 {
		return 0
	}
	if l.FullDuplex {
		return l.Latency + max(fwdBytes, bwdBytes)/l.Bandwidth
	}
	return l.Latency + (fwdBytes+bwdBytes)/l.Bandwidth
}

// EmbeddingBytes returns the size in bytes of rows embedding vectors of
// dimension dim in float32.
func EmbeddingBytes(rows, dim int) float64 {
	return float64(rows) * float64(dim) * 4
}

// GatherTime is the latency of gathering rows embedding rows of dimension
// dim from device memory (random reads).
func (d Device) GatherTime(rows, dim int) float64 {
	return d.RandomTime(EmbeddingBytes(rows, dim))
}

// ScatterWriteTime is the latency of writing rows embedding rows of
// dimension dim to random locations (full-row writes, no read-modify-write:
// the row is overwritten, as in a cache fill or eviction write-back).
func (d Device) ScatterWriteTime(rows, dim int) float64 {
	return d.RandomTime(EmbeddingBytes(rows, dim))
}

// ScatterUpdateTime is the latency of a read-modify-write gradient scatter
// (optimizer update: read the row, add the gradient, write it back), which
// moves twice the row bytes.
func (d Device) ScatterUpdateTime(rows, dim int) float64 {
	return d.RandomTime(2 * EmbeddingBytes(rows, dim))
}

// ReduceTime is the latency of the per-table embedding reduction: stream
// totalGathered rows in and write reducedOut pooled rows out.
func (d Device) ReduceTime(totalGathered, reducedOut, dim int) float64 {
	return d.StreamTime(EmbeddingBytes(totalGathered+reducedOut, dim))
}

// GradDuplicateCoalesceTime is the latency of expanding reducedIn gradient
// rows into totalIDs duplicated rows and coalescing them back down to
// uniqueRows rows (Figure 2b). The duplication writes totalIDs rows and the
// coalescing reads them and writes uniqueRows rows; all streaming.
func (d Device) GradDuplicateCoalesceTime(reducedIn, totalIDs, uniqueRows, dim int) float64 {
	bytes := EmbeddingBytes(reducedIn+2*totalIDs+uniqueRows, dim)
	return d.StreamTime(bytes)
}

// Seconds converts a model latency to a time.Duration for display.
func Seconds(s float64) time.Duration {
	return time.Duration(s * float64(time.Second))
}
