// Package tensor provides the dense float32 linear algebra the DLRM's MLP
// layers are built from. It is deliberately minimal: row-major matrices,
// the three matmul variants backpropagation needs, and elementwise helpers.
// Everything is deterministic — no hidden parallelism — because the
// reproduction's correctness tests require bitwise-identical results across
// training engines.
package tensor

import (
	"fmt"
	"math"
	"math/rand"
)

// Matrix is a row-major rows x cols float32 matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float32
}

// New allocates a zeroed rows x cols matrix.
func New(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: negative shape %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float32, rows*cols)}
}

// FromSlice wraps data (length rows*cols) without copying.
func FromSlice(rows, cols int, data []float32) *Matrix {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("tensor: FromSlice: %d values for %dx%d", len(data), rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: data}
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float32 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float32) { m.Data[i*m.Cols+j] = v }

// Row returns row i as a slice aliasing the matrix storage.
func (m *Matrix) Row(i int) []float32 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := New(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Zero sets every element to 0.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// XavierInit fills m with uniform values in [-limit, limit] where limit =
// sqrt(6/(fanIn+fanOut)), using the given deterministic source.
func (m *Matrix) XavierInit(fanIn, fanOut int, rng *rand.Rand) {
	limit := float32(math.Sqrt(6.0 / float64(fanIn+fanOut)))
	for i := range m.Data {
		m.Data[i] = (rng.Float32()*2 - 1) * limit
	}
}

func checkMul(aRows, aCols, bRows, bCols, cRows, cCols int, op string) {
	if aCols != bRows || cRows != aRows || cCols != bCols {
		panic(fmt.Sprintf("tensor: %s: shape mismatch (%dx%d)*(%dx%d)->(%dx%d)", op, aRows, aCols, bRows, bCols, cRows, cCols))
	}
}

// MatMul computes dst = a * b (dst must not alias a or b).
func MatMul(dst, a, b *Matrix) {
	checkMul(a.Rows, a.Cols, b.Rows, b.Cols, dst.Rows, dst.Cols, "MatMul")
	for i := 0; i < a.Rows; i++ {
		ar := a.Row(i)
		dr := dst.Row(i)
		for j := range dr {
			dr[j] = 0
		}
		for k, av := range ar {
			if av == 0 {
				continue
			}
			br := b.Row(k)
			for j, bv := range br {
				dr[j] += av * bv
			}
		}
	}
}

// MatMulNT computes dst = a * bᵀ.
func MatMulNT(dst, a, b *Matrix) {
	checkMul(a.Rows, a.Cols, b.Cols, b.Rows, dst.Rows, dst.Cols, "MatMulNT")
	for i := 0; i < a.Rows; i++ {
		ar := a.Row(i)
		dr := dst.Row(i)
		for j := 0; j < b.Rows; j++ {
			br := b.Row(j)
			var sum float32
			for k, av := range ar {
				sum += av * br[k]
			}
			dr[j] = sum
		}
	}
}

// MatMulTN computes dst = aᵀ * b.
func MatMulTN(dst, a, b *Matrix) {
	checkMul(a.Cols, a.Rows, b.Rows, b.Cols, dst.Rows, dst.Cols, "MatMulTN")
	dst.Zero()
	for k := 0; k < a.Rows; k++ {
		ar := a.Row(k)
		br := b.Row(k)
		for i, av := range ar {
			if av == 0 {
				continue
			}
			dr := dst.Row(i)
			for j, bv := range br {
				dr[j] += av * bv
			}
		}
	}
}

// AddBias adds bias (length m.Cols) to every row of m.
func AddBias(m *Matrix, bias []float32) {
	if len(bias) != m.Cols {
		panic(fmt.Sprintf("tensor: AddBias: bias len %d for %d cols", len(bias), m.Cols))
	}
	for i := 0; i < m.Rows; i++ {
		r := m.Row(i)
		for j := range r {
			r[j] += bias[j]
		}
	}
}

// ColSums accumulates the column sums of m into dst (length m.Cols),
// overwriting dst. Used for bias gradients.
func ColSums(dst []float32, m *Matrix) {
	if len(dst) != m.Cols {
		panic(fmt.Sprintf("tensor: ColSums: dst len %d for %d cols", len(dst), m.Cols))
	}
	for j := range dst {
		dst[j] = 0
	}
	for i := 0; i < m.Rows; i++ {
		r := m.Row(i)
		for j, v := range r {
			dst[j] += v
		}
	}
}

// AXPY computes y += alpha*x over equal-length slices.
func AXPY(alpha float32, x, y []float32) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("tensor: AXPY: len %d vs %d", len(x), len(y)))
	}
	for i, v := range x {
		y[i] += alpha * v
	}
}

// Scale multiplies every element of x by alpha.
func Scale(alpha float32, x []float32) {
	for i := range x {
		x[i] *= alpha
	}
}

// Dot returns the inner product of equal-length slices.
func Dot(x, y []float32) float32 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("tensor: Dot: len %d vs %d", len(x), len(y)))
	}
	var sum float32
	for i, v := range x {
		sum += v * y[i]
	}
	return sum
}
