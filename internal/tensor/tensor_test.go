package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMatMulKnown(t *testing.T) {
	a := FromSlice(2, 3, []float32{1, 2, 3, 4, 5, 6})
	b := FromSlice(3, 2, []float32{7, 8, 9, 10, 11, 12})
	c := New(2, 2)
	MatMul(c, a, b)
	want := []float32{58, 64, 139, 154}
	for i, v := range want {
		if c.Data[i] != v {
			t.Fatalf("MatMul = %v, want %v", c.Data, want)
		}
	}
}

func TestMatMulNTAndTNAgreeWithExplicitTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := New(4, 5)
	b := New(6, 5) // for NT: a(4x5) * b^T(5x6) = 4x6
	for i := range a.Data {
		a.Data[i] = rng.Float32() - 0.5
	}
	for i := range b.Data {
		b.Data[i] = rng.Float32() - 0.5
	}
	bt := New(5, 6)
	for i := 0; i < 6; i++ {
		for j := 0; j < 5; j++ {
			bt.Set(j, i, b.At(i, j))
		}
	}
	viaNT := New(4, 6)
	MatMulNT(viaNT, a, b)
	direct := New(4, 6)
	MatMul(direct, a, bt)
	for i := range direct.Data {
		if math.Abs(float64(direct.Data[i]-viaNT.Data[i])) > 1e-5 {
			t.Fatalf("NT mismatch at %d: %v vs %v", i, direct.Data[i], viaNT.Data[i])
		}
	}

	// TN: a^T(5x4) * c(4x6).
	c := New(4, 6)
	for i := range c.Data {
		c.Data[i] = rng.Float32() - 0.5
	}
	at := New(5, 4)
	for i := 0; i < 4; i++ {
		for j := 0; j < 5; j++ {
			at.Set(j, i, a.At(i, j))
		}
	}
	viaTN := New(5, 6)
	MatMulTN(viaTN, a, c)
	direct2 := New(5, 6)
	MatMul(direct2, at, c)
	for i := range direct2.Data {
		if math.Abs(float64(direct2.Data[i]-viaTN.Data[i])) > 1e-5 {
			t.Fatalf("TN mismatch at %d", i)
		}
	}
}

func TestShapePanics(t *testing.T) {
	cases := []func(){
		func() { MatMul(New(2, 2), New(2, 3), New(2, 2)) },
		func() { MatMulNT(New(2, 2), New(2, 3), New(2, 2)) },
		func() { MatMulTN(New(2, 2), New(3, 2), New(2, 2)) },
		func() { AddBias(New(2, 3), []float32{1}) },
		func() { ColSums([]float32{1}, New(2, 3)) },
		func() { AXPY(1, []float32{1}, []float32{1, 2}) },
		func() { Dot([]float32{1}, []float32{1, 2}) },
		func() { FromSlice(2, 2, []float32{1}) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: no panic on shape mismatch", i)
				}
			}()
			f()
		}()
	}
}

func TestAddBiasColSums(t *testing.T) {
	m := FromSlice(2, 3, []float32{1, 2, 3, 4, 5, 6})
	AddBias(m, []float32{10, 20, 30})
	want := []float32{11, 22, 33, 14, 25, 36}
	for i := range want {
		if m.Data[i] != want[i] {
			t.Fatalf("AddBias = %v", m.Data)
		}
	}
	sums := make([]float32, 3)
	ColSums(sums, m)
	if sums[0] != 25 || sums[1] != 47 || sums[2] != 69 {
		t.Fatalf("ColSums = %v", sums)
	}
}

func TestCloneIsDeep(t *testing.T) {
	m := FromSlice(1, 2, []float32{1, 2})
	c := m.Clone()
	c.Data[0] = 99
	if m.Data[0] != 1 {
		t.Fatal("Clone aliases storage")
	}
	m.Zero()
	if m.Data[1] != 0 {
		t.Fatal("Zero failed")
	}
}

func TestXavierInitBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m := New(64, 32)
	m.XavierInit(64, 32, rng)
	limit := float32(math.Sqrt(6.0 / 96))
	for _, v := range m.Data {
		if v < -limit || v > limit {
			t.Fatalf("init value %v outside ±%v", v, limit)
		}
	}
	var sum float64
	for _, v := range m.Data {
		sum += float64(v)
	}
	if mean := sum / float64(len(m.Data)); math.Abs(mean) > 0.01 {
		t.Errorf("init mean %v not near zero", mean)
	}
}

// TestAXPYLinearityProperty: AXPY(a, x, y) then AXPY(-a, x, y) restores y
// within float32 tolerance when the magnitudes are tame.
func TestAXPYLinearityProperty(t *testing.T) {
	f := func(raw []float32, alpha float32) bool {
		if len(raw) == 0 {
			return true
		}
		alpha = float32(math.Mod(float64(alpha), 4))
		x := make([]float32, len(raw))
		y := make([]float32, len(raw))
		for i, v := range raw {
			v = float32(math.Mod(float64(v), 100))
			if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
				v = 1
			}
			x[i] = v
			y[i] = -v / 2
		}
		orig := make([]float32, len(y))
		copy(orig, y)
		AXPY(alpha, x, y)
		AXPY(-alpha, x, y)
		for i := range y {
			if math.Abs(float64(y[i]-orig[i])) > 1e-3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDotAndScale(t *testing.T) {
	x := []float32{1, 2, 3}
	y := []float32{4, 5, 6}
	if Dot(x, y) != 32 {
		t.Fatalf("Dot = %v", Dot(x, y))
	}
	Scale(2, x)
	if x[0] != 2 || x[2] != 6 {
		t.Fatalf("Scale = %v", x)
	}
}

func TestNegativeShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(-1, 2) did not panic")
		}
	}()
	New(-1, 2)
}
