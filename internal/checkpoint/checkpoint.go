// Package checkpoint serializes and restores full training state: the
// dense model parameters, every embedding table, and (for stateful
// optimizers) the per-row optimizer state. Engines must Flush their GPU
// caches before checkpointing so the CPU tables are authoritative — the
// same invariant the paper's eviction write-backs maintain continuously.
package checkpoint

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/engine"
)

// magic identifies the checkpoint format.
const magic = "SPCKPT01"

type header struct {
	NumTables    int32
	RowsPerTable int64
	EmbeddingDim int32
	StateDim     int32
	NumParams    int32
}

// Save writes env's complete training state to w. The caller must have
// flushed engine-side caches first.
func Save(w io.Writer, env *engine.Env) error {
	if !env.Cfg.Functional {
		return fmt.Errorf("checkpoint: metadata-mode environments hold no state to save")
	}
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.WriteString(magic); err != nil {
		return err
	}
	params := env.Model.Params()
	h := header{
		NumTables:    int32(env.Cfg.Model.NumTables),
		RowsPerTable: env.Cfg.Model.RowsPerTable,
		EmbeddingDim: int32(env.Cfg.Model.EmbeddingDim),
		StateDim:     int32(env.StateDim),
		NumParams:    int32(len(params)),
	}
	if err := binary.Write(bw, binary.LittleEndian, h); err != nil {
		return err
	}
	for _, p := range params {
		if err := binary.Write(bw, binary.LittleEndian, int64(len(p.Weights()))); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, p.Weights()); err != nil {
			return err
		}
	}
	for t := 0; t < env.Cfg.Model.NumTables; t++ {
		tbl := env.Tables[t]
		for r := int64(0); r < tbl.Rows(); r++ {
			if err := binary.Write(bw, binary.LittleEndian, tbl.Row(r)); err != nil {
				return err
			}
		}
	}
	if env.StateDim > 0 {
		for t := 0; t < env.Cfg.Model.NumTables; t++ {
			st := env.StateTables[t]
			for r := int64(0); r < st.Rows(); r++ {
				if err := binary.Write(bw, binary.LittleEndian, st.Row(r)); err != nil {
					return err
				}
			}
		}
	}
	return bw.Flush()
}

// Load restores a checkpoint written by Save into env, which must have
// been constructed with the same model configuration and optimizer.
// Every header field is validated against the environment — and the
// dense parameter section is staged and length-checked in full — before
// any environment state is overwritten, so a mismatched or corrupt
// checkpoint reports a descriptive error and leaves env untouched up to
// the embedding-table section (whose own reads fail before the first
// row of a short file is applied).
func Load(r io.Reader, env *engine.Env) error {
	if !env.Cfg.Functional {
		return fmt.Errorf("checkpoint: cannot load into a metadata-mode environment")
	}
	br := bufio.NewReaderSize(r, 1<<20)
	got := make([]byte, len(magic))
	if _, err := io.ReadFull(br, got); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	if string(got) != magic {
		return fmt.Errorf("checkpoint: bad magic %q", got)
	}
	var h header
	if err := binary.Read(br, binary.LittleEndian, &h); err != nil {
		return err
	}
	if h.NumTables < 0 || h.RowsPerTable < 0 || h.EmbeddingDim < 0 || h.StateDim < 0 || h.NumParams < 0 {
		return fmt.Errorf("checkpoint: corrupt header (tables %d, rows %d, dim %d, state dim %d, params %d)",
			h.NumTables, h.RowsPerTable, h.EmbeddingDim, h.StateDim, h.NumParams)
	}
	params := env.Model.Params()
	switch {
	case int(h.NumTables) != env.Cfg.Model.NumTables:
		return fmt.Errorf("checkpoint: %d tables, environment has %d", h.NumTables, env.Cfg.Model.NumTables)
	case h.RowsPerTable != env.Cfg.Model.RowsPerTable:
		return fmt.Errorf("checkpoint: %d rows/table, environment has %d", h.RowsPerTable, env.Cfg.Model.RowsPerTable)
	case int(h.EmbeddingDim) != env.Cfg.Model.EmbeddingDim:
		return fmt.Errorf("checkpoint: dim %d, environment has %d", h.EmbeddingDim, env.Cfg.Model.EmbeddingDim)
	case int(h.StateDim) != env.StateDim:
		return fmt.Errorf("checkpoint: optimizer state dim %d, environment has %d", h.StateDim, env.StateDim)
	case int(h.NumParams) != len(params):
		return fmt.Errorf("checkpoint: %d dense params, environment has %d", h.NumParams, len(params))
	}
	// Stage the dense parameters so a length mismatch or truncation in a
	// later blob cannot leave the model half-overwritten.
	staged := make([][]float32, len(params))
	for i, p := range params {
		var n int64
		if err := binary.Read(br, binary.LittleEndian, &n); err != nil {
			return fmt.Errorf("checkpoint: param %d: %w", i, err)
		}
		if n != int64(len(p.Weights())) {
			return fmt.Errorf("checkpoint: param %d has %d weights, environment has %d", i, n, len(p.Weights()))
		}
		staged[i] = make([]float32, n)
		if err := binary.Read(br, binary.LittleEndian, staged[i]); err != nil {
			return fmt.Errorf("checkpoint: param %d: %w", i, err)
		}
	}
	for i, p := range params {
		copy(p.Weights(), staged[i])
	}
	for t := 0; t < env.Cfg.Model.NumTables; t++ {
		tbl := env.Tables[t]
		for r := int64(0); r < tbl.Rows(); r++ {
			if err := binary.Read(br, binary.LittleEndian, tbl.Row(r)); err != nil {
				return fmt.Errorf("checkpoint: table %d row %d: %w", t, r, err)
			}
		}
	}
	if env.StateDim > 0 {
		for t := 0; t < env.Cfg.Model.NumTables; t++ {
			st := env.StateTables[t]
			for r := int64(0); r < st.Rows(); r++ {
				if err := binary.Read(br, binary.LittleEndian, st.Row(r)); err != nil {
					return fmt.Errorf("checkpoint: state table %d row %d: %w", t, r, err)
				}
			}
		}
	}
	return nil
}
