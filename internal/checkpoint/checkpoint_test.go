package checkpoint

import (
	"bytes"
	"testing"

	"repro/internal/dlrm"
	"repro/internal/engine"
	"repro/internal/hw"
	"repro/internal/opt"
	"repro/internal/trace"
)

func tinyModel() dlrm.Config {
	return dlrm.Config{
		NumTables:    2,
		EmbeddingDim: 8,
		Lookups:      3,
		DenseDim:     4,
		RowsPerTable: 300,
		BatchSize:    8,
		BottomHidden: []int{8},
		TopHidden:    []int{8},
		LR:           0.05,
	}
}

func newEnvKind(t *testing.T, optimizer string, seed int64) *engine.Env {
	t.Helper()
	env, err := engine.NewEnv(engine.EnvConfig{
		Model:      tinyModel(),
		System:     hw.DefaultSystem(),
		Class:      trace.Medium,
		Seed:       seed,
		Functional: true,
		Optimizer:  opt.Kind(optimizer),
	})
	if err != nil {
		t.Fatal(err)
	}
	return env
}

func TestSaveLoadRoundTrip(t *testing.T) {
	for _, optimizer := range []string{"sgd", "adagrad"} {
		env := newEnvKind(t, optimizer, 5)
		eng := engine.NewHybrid(env)
		if _, err := eng.Run(10); err != nil {
			t.Fatal(err)
		}

		var buf bytes.Buffer
		if err := Save(&buf, env); err != nil {
			t.Fatalf("%s: save: %v", optimizer, err)
		}

		// Restore into a fresh environment (different seed: its
		// initial weights differ, proving Load overwrites them).
		fresh := newEnvKind(t, optimizer, 99)
		if err := Load(bytes.NewReader(buf.Bytes()), fresh); err != nil {
			t.Fatalf("%s: load: %v", optimizer, err)
		}
		for i := range env.Tables {
			if !env.Tables[i].Equal(fresh.Tables[i]) {
				t.Fatalf("%s: table %d differs after round trip", optimizer, i)
			}
		}
		for i := range env.StateTables {
			if !env.StateTables[i].Equal(fresh.StateTables[i]) {
				t.Fatalf("%s: state table %d differs after round trip", optimizer, i)
			}
		}
		pa, pb := env.Model.Params(), fresh.Model.Params()
		for i := range pa {
			wa, wb := pa[i].Weights(), pb[i].Weights()
			for j := range wa {
				if wa[j] != wb[j] {
					t.Fatalf("%s: param %d[%d] differs", optimizer, i, j)
				}
			}
		}
	}
}

// TestResumeEquivalence: train 20 iterations straight through, versus
// train 10, checkpoint, restore into a fresh environment, and train 10
// more on the same remaining batch stream. Final state must be identical —
// the checkpoint captures everything that matters.
func TestResumeEquivalence(t *testing.T) {
	// Continuous run.
	cont := newEnvKind(t, "adagrad", 7)
	engCont := engine.NewHybrid(cont)
	if _, err := engCont.Run(20); err != nil {
		t.Fatal(err)
	}

	// Interrupted run: same env config, first half.
	half := newEnvKind(t, "adagrad", 7)
	engHalf := engine.NewHybrid(half)
	if _, err := engHalf.Run(10); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Save(&buf, half); err != nil {
		t.Fatal(err)
	}

	// Restore into the SAME env (its generator has already consumed 10
	// batches, so training continues from batch 10 like the continuous
	// run).
	if err := Load(bytes.NewReader(buf.Bytes()), half); err != nil {
		t.Fatal(err)
	}
	if _, err := engHalf.Run(10); err != nil {
		t.Fatal(err)
	}

	for i := range cont.Tables {
		if !cont.Tables[i].Equal(half.Tables[i]) {
			t.Fatalf("table %d differs between continuous and resumed runs", i)
		}
	}
	for i := range cont.StateTables {
		if !cont.StateTables[i].Equal(half.StateTables[i]) {
			t.Fatalf("state table %d differs between continuous and resumed runs", i)
		}
	}
}

func TestLoadRejectsMismatchedShapes(t *testing.T) {
	env := newEnvKind(t, "sgd", 11)
	var buf bytes.Buffer
	if err := Save(&buf, env); err != nil {
		t.Fatal(err)
	}
	other, err := engine.NewEnv(engine.EnvConfig{
		Model: func() dlrm.Config {
			m := tinyModel()
			m.EmbeddingDim = 16
			return m
		}(),
		System:     hw.DefaultSystem(),
		Class:      trace.Medium,
		Seed:       11,
		Functional: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := Load(bytes.NewReader(buf.Bytes()), other); err == nil {
		t.Fatal("mismatched checkpoint accepted")
	}
}

func TestMetadataModeRejected(t *testing.T) {
	env, err := engine.NewEnv(engine.EnvConfig{
		Model:  tinyModel(),
		System: hw.DefaultSystem(),
		Class:  trace.Medium,
		Seed:   1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := Save(&bytes.Buffer{}, env); err == nil {
		t.Fatal("metadata-mode save accepted")
	}
	if err := Load(bytes.NewReader(nil), env); err == nil {
		t.Fatal("metadata-mode load accepted")
	}
}

func TestLoadRejectsCorruptStream(t *testing.T) {
	env := newEnvKind(t, "sgd", 13)
	if err := Load(bytes.NewReader([]byte("NOTACKPT")), env); err == nil {
		t.Fatal("bad magic accepted")
	}
	if err := Load(bytes.NewReader(nil), env); err == nil {
		t.Fatal("empty stream accepted")
	}
}

// snapshotParams copies every dense parameter tensor.
func snapshotParams(env *engine.Env) [][]float32 {
	var out [][]float32
	for _, p := range env.Model.Params() {
		out = append(out, append([]float32(nil), p.Weights()...))
	}
	return out
}

// sameParams asserts the dense model is bitwise unchanged.
func sameParams(t *testing.T, label string, env *engine.Env, want [][]float32) {
	t.Helper()
	for i, p := range env.Model.Params() {
		for j, w := range p.Weights() {
			if w != want[i][j] {
				t.Fatalf("%s: param %d weight %d changed (%g -> %g)", label, i, j, want[i][j], w)
			}
		}
	}
}

// TestLoadRejectsCorruptHeader: negative header fields (a corrupt or
// hostile stream) are rejected before any allocation or comparison.
func TestLoadRejectsCorruptHeader(t *testing.T) {
	env := newEnvKind(t, "sgd", 13)
	var good bytes.Buffer
	if err := Save(&good, env); err != nil {
		t.Fatal(err)
	}
	// The header starts right after the 8-byte magic; NumTables is its
	// first int32. Flip it negative.
	data := append([]byte(nil), good.Bytes()...)
	data[8] = 0xff
	data[9] = 0xff
	data[10] = 0xff
	data[11] = 0xff
	if err := Load(bytes.NewReader(data), env); err == nil {
		t.Fatal("negative table count accepted")
	}
}

// TestLoadFailureLeavesParamsIntact: a stream that passes the header
// check but dies inside the dense-parameter section (truncation, bad
// per-param length) must report an error WITHOUT touching the target
// environment's parameters — the staged read's whole point.
func TestLoadFailureLeavesParamsIntact(t *testing.T) {
	src := newEnvKind(t, "sgd", 11)
	var buf bytes.Buffer
	if err := Save(&buf, src); err != nil {
		t.Fatal(err)
	}
	dst := newEnvKind(t, "sgd", 29) // different seed: different weights
	before := snapshotParams(dst)

	// Truncate mid-way through the parameter section: the header and
	// the first param lengths parse, then the stream dies.
	data := buf.Bytes()
	const headerEnd = 8 + 4 + 8 + 4 + 4 + 4 // magic + header fields
	trunc := data[:headerEnd+12]
	if err := Load(bytes.NewReader(trunc), dst); err == nil {
		t.Fatal("truncated parameter section accepted")
	}
	sameParams(t, "truncated-params", dst, before)

	// Corrupt the first per-param length so it mismatches the target.
	bad := append([]byte(nil), data...)
	bad[headerEnd] ^= 0x01
	if err := Load(bytes.NewReader(bad), dst); err == nil {
		t.Fatal("mismatched parameter length accepted")
	}
	sameParams(t, "bad-param-length", dst, before)

	// And a full mismatch error (different dim) still leaves dst alone.
	other, err := engine.NewEnv(engine.EnvConfig{
		Model: func() dlrm.Config {
			m := tinyModel()
			m.EmbeddingDim = 16
			return m
		}(),
		System:     hw.DefaultSystem(),
		Class:      trace.Medium,
		Seed:       29,
		Functional: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	otherBefore := snapshotParams(other)
	if err := Load(bytes.NewReader(data), other); err == nil {
		t.Fatal("mismatched checkpoint accepted")
	}
	sameParams(t, "shape-mismatch", other, otherBefore)
}
