// Package opt provides the embedding-side optimizers. The paper trains
// with plain SGD; production DLRM overwhelmingly uses sparse Adagrad,
// whose per-row accumulator state stresses exactly the machinery
// ScratchPipe is about: optimizer state lives with the embedding row, so
// the GPU scratchpad must prefetch it at [Collect], keep it coherent at
// [Train], and write it back at [Insert] alongside the embedding values.
//
// A SparseOptimizer therefore applies updates through *two* RowStores —
// one for the embedding rows and one for the per-row optimizer state —
// both of which the training engines route through the same cache.
package opt

import (
	"fmt"
	"math"

	"repro/internal/embed"
)

// Kind names an embedding optimizer for configuration.
type Kind string

const (
	// SGDKind is the paper's plain stochastic gradient descent (no
	// per-row state).
	SGDKind Kind = "sgd"
	// AdagradKind is row-wise sparse Adagrad: each row keeps one
	// accumulated squared-gradient scalar per element.
	AdagradKind Kind = "adagrad"
)

// SparseOptimizer applies coalesced gradients to embedding rows.
type SparseOptimizer interface {
	// Name identifies the optimizer ("sgd", "adagrad").
	Name() string
	// StateDim returns the per-row optimizer state width in floats
	// (0 for stateless optimizers). State rows travel with embedding
	// rows through the cache hierarchy.
	StateDim() int
	// Apply performs one update step for the coalesced gradients g:
	// rows come from rowStore, per-row state (when StateDim > 0) from
	// stateStore. Implementations must touch rows in g.IDs order so
	// every engine performs identical float operations.
	Apply(rowStore embed.RowStore, stateStore embed.RowStore, g embed.CoalescedGrads)
}

// New constructs an optimizer of the given kind with learning rate lr.
func New(kind Kind, lr float32) (SparseOptimizer, error) {
	switch kind {
	case SGDKind, "":
		return SGD{LR: lr}, nil
	case AdagradKind:
		return Adagrad{LR: lr, Eps: 1e-8}, nil
	}
	return nil, fmt.Errorf("opt: unknown optimizer %q", kind)
}

// SGD is stateless: row -= lr * grad.
type SGD struct {
	// LR is the learning rate.
	LR float32
}

// Name implements SparseOptimizer.
func (SGD) Name() string { return string(SGDKind) }

// StateDim implements SparseOptimizer.
func (SGD) StateDim() int { return 0 }

// Apply implements SparseOptimizer.
func (o SGD) Apply(rowStore embed.RowStore, _ embed.RowStore, g embed.CoalescedGrads) {
	embed.ScatterSGD(rowStore, g, o.LR)
}

// Adagrad is element-wise sparse Adagrad:
//
//	acc += grad*grad
//	row -= lr * grad / (sqrt(acc) + eps)
//
// The accumulator has the same width as the embedding row (StateDim ==
// embedding dim).
type Adagrad struct {
	// LR is the learning rate; Eps the numerical floor.
	LR, Eps float32
}

// Name implements SparseOptimizer.
func (Adagrad) Name() string { return string(AdagradKind) }

// StateDim implements SparseOptimizer: one accumulator per element. The
// engine allocates state rows with the same dimension as embedding rows.
func (Adagrad) StateDim() int { return -1 } // sentinel: same as embedding dim

// Apply implements SparseOptimizer.
func (o Adagrad) Apply(rowStore embed.RowStore, stateStore embed.RowStore, g embed.CoalescedGrads) {
	if stateStore == nil {
		panic("opt: adagrad requires a state store")
	}
	for k, id := range g.IDs {
		row := rowStore.Row(id)
		acc := stateStore.Row(id)
		grad := g.Grads.Row(k)
		for j, gv := range grad {
			acc[j] += gv * gv
			row[j] -= o.LR * gv / (float32(math.Sqrt(float64(acc[j]))) + o.Eps)
		}
	}
}

// EffectiveStateDim resolves an optimizer's state width for a given
// embedding dimension (handles the "same as dim" sentinel).
func EffectiveStateDim(o SparseOptimizer, dim int) int {
	sd := o.StateDim()
	if sd < 0 {
		return dim
	}
	return sd
}
