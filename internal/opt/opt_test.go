package opt

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/embed"
	"repro/internal/tensor"
)

func newTables(t *testing.T, rows int64, dim int) (*embed.Table, *embed.Table) {
	t.Helper()
	tbl, err := embed.NewTable(rows, dim, rand.New(rand.NewSource(12)))
	if err != nil {
		t.Fatal(err)
	}
	st, err := embed.NewZeroTable(rows, dim)
	if err != nil {
		t.Fatal(err)
	}
	return tbl, st
}

func TestNew(t *testing.T) {
	for _, kind := range []Kind{SGDKind, AdagradKind, ""} {
		o, err := New(kind, 0.1)
		if err != nil {
			t.Fatalf("%q: %v", kind, err)
		}
		if o.Name() == "" {
			t.Fatalf("%q: empty name", kind)
		}
	}
	if _, err := New("bogus", 0.1); err == nil {
		t.Error("unknown optimizer accepted")
	}
}

func TestSGDMatchesScatterSGD(t *testing.T) {
	tblA, _ := newTables(t, 10, 4)
	tblB := tblA.Clone()
	g := embed.CoalescedGrads{
		IDs:   []int64{3, 7},
		Grads: tensor.FromSlice(2, 4, []float32{1, 2, 3, 4, -1, -2, -3, -4}),
	}
	SGD{LR: 0.5}.Apply(tblA, nil, g)
	embed.ScatterSGD(tblB, g, 0.5)
	if !tblA.Equal(tblB) {
		t.Fatal("SGD optimizer diverges from canonical ScatterSGD")
	}
}

func TestAdagradKnownStep(t *testing.T) {
	tbl, st := newTables(t, 4, 2)
	orig := append([]float32(nil), tbl.Row(1)...)
	g := embed.CoalescedGrads{
		IDs:   []int64{1},
		Grads: tensor.FromSlice(1, 2, []float32{3, -4}),
	}
	o := Adagrad{LR: 0.1, Eps: 0}
	o.Apply(tbl, st, g)
	// acc = g^2; update = lr * g / sqrt(g^2) = lr * sign(g).
	if math.Abs(float64(tbl.Row(1)[0]-(orig[0]-0.1))) > 1e-6 {
		t.Errorf("row[0] = %v, want %v", tbl.Row(1)[0], orig[0]-0.1)
	}
	if math.Abs(float64(tbl.Row(1)[1]-(orig[1]+0.1))) > 1e-6 {
		t.Errorf("row[1] = %v, want %v", tbl.Row(1)[1], orig[1]+0.1)
	}
	if st.Row(1)[0] != 9 || st.Row(1)[1] != 16 {
		t.Errorf("acc = %v, want [9 16]", st.Row(1))
	}
	// Second identical step shrinks: acc=18,32 -> step = lr*3/sqrt(18).
	o.Apply(tbl, st, g)
	if st.Row(1)[0] != 18 {
		t.Errorf("acc after 2 steps = %v", st.Row(1)[0])
	}
}

// TestAdagradMonotoneStateProperty: the accumulator never decreases and
// the step magnitude never exceeds the SGD step for the same gradient.
func TestAdagradMonotoneStateProperty(t *testing.T) {
	f := func(seed int64, steps uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		tbl, err := embed.NewTable(8, 3, rand.New(rand.NewSource(12)))
		if err != nil {
			return false
		}
		st, err := embed.NewZeroTable(8, 3)
		if err != nil {
			return false
		}
		o := Adagrad{LR: 0.1, Eps: 1e-8}
		prevAcc := make([]float32, 3)
		for s := 0; s < int(steps%8)+1; s++ {
			grads := tensor.New(1, 3)
			for j := range grads.Data {
				grads.Data[j] = float32(rng.NormFloat64())
			}
			g := embed.CoalescedGrads{IDs: []int64{2}, Grads: grads}
			before := append([]float32(nil), tbl.Row(2)...)
			o.Apply(tbl, st, g)
			for j := 0; j < 3; j++ {
				if st.Row(2)[j] < prevAcc[j] {
					return false
				}
				prevAcc[j] = st.Row(2)[j]
				sgdStep := math.Abs(float64(0.1 * grads.Data[j]))
				adaStep := math.Abs(float64(tbl.Row(2)[j] - before[j]))
				// After accumulating, |step| <= lr (normalized).
				if adaStep > 0.1+1e-5 {
					return false
				}
				_ = sgdStep
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestAdagradRequiresState(t *testing.T) {
	tbl, _ := newTables(t, 4, 2)
	defer func() {
		if recover() == nil {
			t.Error("adagrad without state store did not panic")
		}
	}()
	Adagrad{LR: 0.1}.Apply(tbl, nil, embed.CoalescedGrads{
		IDs: []int64{0}, Grads: tensor.New(1, 2),
	})
}

func TestEffectiveStateDim(t *testing.T) {
	if EffectiveStateDim(SGD{}, 128) != 0 {
		t.Error("SGD state dim != 0")
	}
	if EffectiveStateDim(Adagrad{}, 128) != 128 {
		t.Error("Adagrad state dim != embedding dim")
	}
}
