package cache

import (
	"testing"
	"testing/quick"
)

func all(int) bool { return true }

func TestNewPolicy(t *testing.T) {
	for _, kind := range []PolicyKind{LRU, LFU, RandomPolicy} {
		p, err := NewPolicy(kind, 8, 1)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if p.Name() != string(kind) {
			t.Errorf("%s: Name() = %s", kind, p.Name())
		}
	}
	if _, err := NewPolicy("bogus", 8, 1); err == nil {
		t.Error("unknown policy accepted")
	}
}

func TestLRUOrder(t *testing.T) {
	p := NewLRUPolicy(4)
	// Initial order: 0 is LRU.
	if v := p.Victim(all); v != 0 {
		t.Fatalf("initial victim %d", v)
	}
	p.OnAccess(0)
	if v := p.Victim(all); v != 1 {
		t.Fatalf("victim after touch(0) = %d", v)
	}
	p.OnAccess(1)
	p.OnAccess(2)
	p.OnAccess(3)
	// Now 0 is LRU again.
	if v := p.Victim(all); v != 0 {
		t.Fatalf("victim = %d", v)
	}
	// Inserts count as most-recent too.
	p.OnInsert(0)
	if v := p.Victim(all); v != 1 {
		t.Fatalf("victim after insert(0) = %d", v)
	}
}

func TestLRUVictimRespectsPredicate(t *testing.T) {
	p := NewLRUPolicy(4)
	blocked := map[int]bool{0: true, 1: true}
	v := p.Victim(func(s int) bool { return !blocked[s] })
	if v != 2 {
		t.Fatalf("victim = %d, want 2", v)
	}
	if v := p.Victim(func(int) bool { return false }); v != -1 {
		t.Fatalf("victim with nothing evictable = %d, want -1", v)
	}
}

func TestLFUPrefersColdSlots(t *testing.T) {
	p := NewLFUPolicy(3)
	p.OnInsert(0) // freq 1
	p.OnInsert(1) // freq 1
	p.OnInsert(2) // freq 1
	p.OnAccess(0)
	p.OnAccess(0)
	p.OnAccess(1)
	// Slot 2 has the lowest frequency.
	if v := p.Victim(all); v != 2 {
		t.Fatalf("victim = %d, want 2", v)
	}
	// After re-inserting into 2 and hammering it, 1 is coldest.
	p.OnInsert(2)
	p.OnAccess(2)
	p.OnAccess(2)
	if v := p.Victim(func(s int) bool { return s != 1 }); v == 1 {
		t.Fatal("predicate ignored")
	}
	if v := p.Victim(all); v != 1 {
		t.Fatalf("victim = %d, want 1", v)
	}
}

func TestLFUInsertResetsFrequency(t *testing.T) {
	p := NewLFUPolicy(2)
	p.OnInsert(0)
	for i := 0; i < 10; i++ {
		p.OnAccess(0)
	}
	p.OnInsert(1)
	if v := p.Victim(all); v != 1 {
		t.Fatalf("victim = %d, want fresh slot 1", v)
	}
	// Re-insert over slot 0: frequency restarts at 1, tying slot 1; the
	// victim must be one of them, not a crash.
	p.OnInsert(0)
	if v := p.Victim(all); v != 0 && v != 1 {
		t.Fatalf("victim = %d", v)
	}
}

func TestRandomPolicyTermination(t *testing.T) {
	p := NewRandomPolicy(8, 3)
	seen := map[int]bool{}
	for i := 0; i < 200; i++ {
		v := p.Victim(all)
		if v < 0 || v >= 8 {
			t.Fatalf("victim %d out of range", v)
		}
		seen[v] = true
	}
	if len(seen) < 4 {
		t.Errorf("random victims not spread: %v", seen)
	}
	if v := p.Victim(func(s int) bool { return s == 5 }); v != 5 {
		t.Fatalf("constrained victim = %d", v)
	}
	if v := p.Victim(func(int) bool { return false }); v != -1 {
		t.Fatalf("impossible victim = %d", v)
	}
}

// TestPolicyVictimAlwaysEvictableProperty: whatever the access history,
// Victim only returns slots passing the predicate (or -1).
func TestPolicyVictimAlwaysEvictableProperty(t *testing.T) {
	for _, kind := range []PolicyKind{LRU, LFU, RandomPolicy} {
		kind := kind
		f := func(ops []uint8, mask uint8) bool {
			const n = 8
			p, err := NewPolicy(kind, n, 7)
			if err != nil {
				return false
			}
			for _, op := range ops {
				slot := int(op) % n
				if op%2 == 0 {
					p.OnAccess(slot)
				} else {
					p.OnInsert(slot)
				}
			}
			pred := func(s int) bool { return mask&(1<<uint(s%8)) != 0 }
			v := p.Victim(pred)
			if v == -1 {
				// Only legal if nothing is evictable.
				for s := 0; s < n; s++ {
					if pred(s) {
						return false
					}
				}
				return true
			}
			return pred(v)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
			t.Errorf("%s: %v", kind, err)
		}
	}
}
