package cache

import (
	"math/rand"
	"testing"

	"repro/internal/embed"
)

func TestStaticMetadataMode(t *testing.T) {
	s, err := NewStatic(nil, 1000, 8, 100)
	if err != nil {
		t.Fatal(err)
	}
	hits, misses := s.Query([]int64{0, 99, 100, 500})
	if hits != 2 || misses != 2 {
		t.Fatalf("hits %d misses %d", hits, misses)
	}
	st := s.Stats()
	if st.Queries != 4 || st.Hits != 2 || st.Misses != 2 {
		t.Fatalf("stats %+v", st)
	}
	if s.TopN() != 100 {
		t.Fatalf("TopN = %d", s.TopN())
	}
}

func TestStaticBounds(t *testing.T) {
	if _, err := NewStatic(nil, 100, 8, 101); err == nil {
		t.Error("topN > rows accepted")
	}
	if _, err := NewStatic(nil, 100, 8, -1); err == nil {
		t.Error("negative topN accepted")
	}
}

func TestStaticFunctionalRouting(t *testing.T) {
	cpu, err := embed.NewTable(50, 4, rand.New(rand.NewSource(8)))
	if err != nil {
		t.Fatal(err)
	}
	orig0 := append([]float32(nil), cpu.Row(0)...)
	s, err := NewStatic(cpu, 50, 4, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Hot row: updates land in the GPU copy, CPU copy stays stale.
	s.Row(0)[0] = 123
	if cpu.Row(0)[0] == 123 {
		t.Fatal("hot-row write reached CPU table before Flush")
	}
	// Cold row: direct CPU access.
	s.Row(20)[0] = 456
	if cpu.Row(20)[0] != 456 {
		t.Fatal("cold-row write did not reach CPU table")
	}
	// Flush publishes dirty hot rows.
	s.Flush()
	if cpu.Row(0)[0] != 123 {
		t.Fatal("Flush did not write back hot row")
	}
	_ = orig0
	if s.Dim() != 4 {
		t.Fatalf("Dim = %d", s.Dim())
	}
}

func TestStaticInitialCopyMatchesCPU(t *testing.T) {
	cpu, err := embed.NewTable(30, 4, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	want := append([]float32(nil), cpu.Row(5)...)
	s, err := NewStatic(cpu, 30, 4, 10)
	if err != nil {
		t.Fatal(err)
	}
	got := s.Row(5)
	for i := range want {
		if got[i] != want[i] {
			t.Fatal("cached copy differs from CPU value")
		}
	}
}

func TestStaticZeroTopN(t *testing.T) {
	cpu, err := embed.NewTable(30, 4, rand.New(rand.NewSource(10)))
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewStatic(cpu, 30, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	hits, misses := s.Query([]int64{0, 1, 2})
	if hits != 0 || misses != 3 {
		t.Fatalf("hits %d misses %d", hits, misses)
	}
	s.Flush() // no-op, must not panic
	// All rows route to CPU.
	s.Row(0)[0] = 77
	if cpu.Row(0)[0] != 77 {
		t.Fatal("write did not reach CPU")
	}
}
