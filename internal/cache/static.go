package cache

import (
	"fmt"
	"math/rand"

	"repro/internal/embed"
)

// Static models the software-managed GPU embedding cache of Yin et al.
// that the paper evaluates as its stronger baseline (Figure 4b): the top-N
// most-frequently-accessed rows are pinned in GPU memory for the entire
// training run and are never evicted. Hit rows are read and updated in GPU
// memory; missed rows are read and updated in the CPU table.
//
// Because the synthetic distributions in internal/trace are sorted
// hottest-first, "top-N most frequent" is exactly rows [0, N).
type Static struct {
	topN int64
	// gpu holds the cached copies of rows [0, topN); nil in metadata
	// mode (hit/miss accounting only).
	gpu *embed.Table
	// cpu is the backing CPU embedding table; nil in metadata mode.
	cpu *embed.Table

	stats StaticStats
}

// StaticStats counts cache events for the timing model.
type StaticStats struct {
	Queries int64
	Hits    int64
	Misses  int64
}

// NewStatic builds a static cache holding the top topN rows of cpu. In
// functional mode the hot rows are copied into a GPU-resident table; pass a
// nil cpu table for metadata-only simulation.
func NewStatic(cpu *embed.Table, rows int64, dim int, topN int64) (*Static, error) {
	if topN < 0 || topN > rows {
		return nil, fmt.Errorf("cache: static: topN %d out of [0,%d]", topN, rows)
	}
	s := &Static{topN: topN, cpu: cpu}
	if cpu != nil && topN > 0 {
		if cpu.Rows() != rows || cpu.Dim() != dim {
			return nil, fmt.Errorf("cache: static: cpu table %dx%d, want %dx%d", cpu.Rows(), cpu.Dim(), rows, dim)
		}
		// The init values are immediately overwritten by the copies
		// from the CPU table, so the rng seed is irrelevant.
		gpu, err := embed.NewTable(topN, dim, rand.New(rand.NewSource(0)))
		if err != nil {
			return nil, err
		}
		for id := int64(0); id < topN; id++ {
			copy(gpu.Row(id), cpu.Row(id))
		}
		s.gpu = gpu
	}
	return s, nil
}

// TopN returns the number of pinned rows.
func (s *Static) TopN() int64 { return s.topN }

// Hit reports whether sparse ID id is serviced by the GPU cache.
func (s *Static) Hit(id int64) bool { return id < s.topN }

// Query classifies the batch's IDs, updating statistics, and returns the
// hit and miss counts (the "Evaluate hit IDs & missed IDs" stage of
// Figure 4b).
func (s *Static) Query(ids []int64) (hits, misses int) {
	for _, id := range ids {
		if s.Hit(id) {
			hits++
		} else {
			misses++
		}
	}
	s.stats.Queries += int64(len(ids))
	s.stats.Hits += int64(hits)
	s.stats.Misses += int64(misses)
	return hits, misses
}

// RecordQuery folds an externally computed hit/miss classification into
// the statistics; callers that already hold the batch's distinct IDs and
// counts classify without rescanning the occurrence stream.
func (s *Static) RecordQuery(hits, misses int) {
	s.stats.Queries += int64(hits + misses)
	s.stats.Hits += int64(hits)
	s.stats.Misses += int64(misses)
}

// Stats returns accumulated counters.
func (s *Static) Stats() StaticStats { return s.stats }

// Dim implements embed.RowStore in functional mode: reads and updates are
// routed to the GPU copy for hot rows and to the CPU table otherwise —
// exactly the hit/miss split execution of Figure 4b.
func (s *Static) Dim() int { return s.cpu.Dim() }

// Row implements embed.RowStore.
func (s *Static) Row(id int64) []float32 {
	if s.gpu != nil && s.Hit(id) {
		return s.gpu.Row(id)
	}
	return s.cpu.Row(id)
}

// Flush writes the (dirty) GPU-cached rows back into the CPU table so the
// full model can be checkpointed or compared against another engine.
func (s *Static) Flush() {
	if s.gpu == nil {
		return
	}
	for id := int64(0); id < s.topN; id++ {
		copy(s.cpu.Row(id), s.gpu.Row(id))
	}
}
