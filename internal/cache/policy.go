// Package cache provides the software-managed GPU embedding cache building
// blocks: the static top-N cache the paper uses as its stronger baseline
// (Figure 4b, after Yin et al.), and the replacement policies (LRU, LFU,
// Random) that the dynamic scratchpad of ScratchPipe selects eviction
// victims with (§VI-E studies all three).
package cache

import (
	"fmt"
	"math/rand"
)

// Policy orders cache slots for eviction. Slots are dense indices
// [0, n). The scratchpad manager calls OnInsert when a new key fills a
// slot, OnAccess when a cached key is referenced again, and Victim to pick
// an eviction candidate among slots for which evictable returns true
// (the hold-mask discipline is enforced by the caller through that
// predicate, not by the policy).
type Policy interface {
	// Name identifies the policy in reports ("lru", "lfu", "random").
	Name() string
	// OnInsert records that slot now holds a freshly inserted key.
	OnInsert(slot int)
	// OnAccess records a reference to the key cached in slot.
	OnAccess(slot int)
	// Victim returns an evictable slot to reuse, or -1 if every slot is
	// currently protected.
	Victim(evictable func(slot int) bool) int
	// BeginVictimSweep arms sweep mode for a burst of Victim calls
	// during which no slot can *become* evictable (the scratchpad's
	// hold/pin sets only grow within one Plan). In sweep mode the
	// policy walks its eviction order exactly once, never re-examining
	// skipped slots, making a whole batch's victim selection
	// O(cache size) instead of O(misses x protected). The caller must
	// not call OnAccess between BeginVictimSweep and the final Victim
	// of the sweep (OnInsert of returned victims is fine).
	BeginVictimSweep()
}

// PolicyKind names a replacement policy for configuration.
type PolicyKind string

const (
	// LRU evicts the least recently used slot (the paper's default).
	LRU PolicyKind = "lru"
	// LFU evicts the least frequently used slot.
	LFU PolicyKind = "lfu"
	// RandomPolicy evicts a uniformly random unprotected slot.
	RandomPolicy PolicyKind = "random"
)

// NewPolicy constructs a policy of the given kind over n slots. The seed
// only matters for RandomPolicy.
func NewPolicy(kind PolicyKind, n int, seed int64) (Policy, error) {
	switch kind {
	case LRU:
		return NewLRUPolicy(n), nil
	case LFU:
		return NewLFUPolicy(n), nil
	case RandomPolicy:
		return NewRandomPolicy(n, seed), nil
	}
	return nil, fmt.Errorf("cache: unknown policy %q", kind)
}

// lruNode packs a list node's prev/next links into one 8-byte word so an
// unlink/push touches one cache line per node instead of two.
type lruNode struct {
	prev, next int32
}

// LRUPolicy is an intrusive doubly-linked list over slot indices; index n
// is the sentinel head/tail. The concrete type is exported so the
// scratchpad can devirtualize the hot path for the paper's default
// policy: recency touches and the victim sweep then run through direct,
// inlinable calls instead of interface dispatch and a callback.
type LRUPolicy struct {
	nodes []lruNode
	n     int
	// sweep is the armed-mode cursor (sentinel value n when exhausted);
	// armed is toggled by BeginVictimSweep.
	sweep int32
	armed bool
}

// NewLRUPolicy returns an LRU policy over n slots, all initially in LRU
// order 0..n-1 (slot 0 least recent).
func NewLRUPolicy(n int) Policy {
	p := &LRUPolicy{nodes: make([]lruNode, n+1), n: n}
	// Circular list through sentinel n; next points toward MRU.
	for i := 0; i <= n; i++ {
		p.nodes[i].next = int32((i + 1) % (n + 1))
		p.nodes[(i+1)%(n+1)].prev = int32(i)
	}
	return p
}

func (p *LRUPolicy) Name() string { return string(LRU) }

func (p *LRUPolicy) unlink(s int) {
	nd := p.nodes[s]
	p.nodes[nd.prev].next = nd.next
	p.nodes[nd.next].prev = nd.prev
}

func (p *LRUPolicy) pushMRU(s int) {
	// MRU position is just before the sentinel.
	sent := int32(p.n)
	last := p.nodes[sent].prev
	p.nodes[last].next = int32(s)
	p.nodes[s] = lruNode{prev: last, next: sent}
	p.nodes[sent].prev = int32(s)
}

func (p *LRUPolicy) touch(s int) {
	p.unlink(s)
	p.pushMRU(s)
}

func (p *LRUPolicy) OnInsert(slot int) { p.touch(slot) }
func (p *LRUPolicy) OnAccess(slot int) { p.touch(slot) }

func (p *LRUPolicy) BeginVictimSweep() {
	p.armed = true
	p.sweep = p.nodes[p.n].next
}

// SweepNext returns the next candidate of the armed sweep (advancing the
// cursor) or -1 when the eviction order is exhausted. It lets callers
// drive the sweep with an inlined evictability check; equivalent to
// Victim with a predicate evaluated caller-side.
func (p *LRUPolicy) SweepNext() int {
	s := p.sweep
	if s == int32(p.n) {
		return -1
	}
	p.sweep = p.nodes[s].next
	return int(s)
}

func (p *LRUPolicy) Victim(evictable func(int) bool) int {
	if !p.armed {
		// Standalone mode: fresh walk from the LRU end.
		for s := p.nodes[p.n].next; s != int32(p.n); s = p.nodes[s].next {
			if evictable(int(s)) {
				return int(s)
			}
		}
		return -1
	}
	// Sweep mode: continue from the cursor; skipped slots cannot become
	// evictable within the sweep, so never revisit them.
	for s := p.sweep; s != int32(p.n); {
		nxt := p.nodes[s].next
		p.sweep = nxt
		if evictable(int(s)) {
			return int(s)
		}
		s = nxt
	}
	return -1
}

// lfuPolicy is an amortized-O(1) LFU: frequency buckets, each an intrusive
// list. minFreq only advances past *empty* buckets (a bucket whose slots
// are merely hold-protected right now must stay reachable for later
// victims); maxFreq bounds the upward scan.
type lfuPolicy struct {
	freq             []int64
	prev, next       []int32
	bucketHead       map[int64]int32 // freq -> first slot; chains via next
	minFreq, maxFreq int64
	n                int
	// Armed-sweep cursor: frequency level and chain position
	// (sweepSlot == -2 means "start of bucket sweepF").
	armed     bool
	sweepF    int64
	sweepSlot int32
}

// NewLFUPolicy returns an LFU policy over n slots, all starting at
// frequency 0.
func NewLFUPolicy(n int) Policy {
	p := &lfuPolicy{
		freq:       make([]int64, n),
		prev:       make([]int32, n),
		next:       make([]int32, n),
		bucketHead: make(map[int64]int32),
		n:          n,
	}
	for i := n - 1; i >= 0; i-- {
		p.pushBucket(i, 0)
	}
	return p
}

func (p *lfuPolicy) Name() string { return string(LFU) }

func (p *lfuPolicy) pushBucket(s int, f int64) {
	head, ok := p.bucketHead[f]
	p.prev[s] = -1
	if ok {
		p.next[s] = head
		p.prev[head] = int32(s)
	} else {
		p.next[s] = -1
	}
	p.bucketHead[f] = int32(s)
}

func (p *lfuPolicy) removeFromBucket(s int) {
	f := p.freq[s]
	if p.prev[s] >= 0 {
		p.next[p.prev[s]] = p.next[s]
	} else {
		if p.next[s] >= 0 {
			p.bucketHead[f] = p.next[s]
		} else {
			delete(p.bucketHead, f)
		}
	}
	if p.next[s] >= 0 {
		p.prev[p.next[s]] = p.prev[s]
	}
}

func (p *lfuPolicy) bump(s int) {
	p.removeFromBucket(s)
	p.freq[s]++
	p.pushBucket(s, p.freq[s])
	if p.freq[s] > p.maxFreq {
		p.maxFreq = p.freq[s]
	}
}

func (p *lfuPolicy) OnAccess(slot int) { p.bump(slot) }

func (p *lfuPolicy) OnInsert(slot int) {
	// A newly inserted key starts its frequency over at 1.
	p.removeFromBucket(slot)
	p.freq[slot] = 1
	p.pushBucket(slot, 1)
	if p.minFreq > 1 {
		p.minFreq = 1
	}
	if p.maxFreq < 1 {
		p.maxFreq = 1
	}
}

func (p *lfuPolicy) BeginVictimSweep() {
	p.armed = true
	p.sweepF = p.minFreq
	p.sweepSlot = -2
}

func (p *lfuPolicy) Victim(evictable func(int) bool) int {
	if !p.armed {
		return p.victimFresh(evictable)
	}
	f, s := p.sweepF, p.sweepSlot
	for f <= p.maxFreq {
		if s == -2 {
			head, ok := p.bucketHead[f]
			if !ok {
				// Empty buckets contiguous with minFreq can
				// never refill below a future insert's
				// frequency of 1, so skipping them permanently
				// is safe.
				if f == p.minFreq {
					p.minFreq++
				}
				f++
				continue
			}
			s = head
		}
		for s >= 0 {
			nxt := p.next[s]
			if evictable(int(s)) {
				p.sweepF, p.sweepSlot = f, nxt
				return int(s)
			}
			s = nxt
		}
		f++
		s = -2
	}
	p.sweepF, p.sweepSlot = f, -2
	return -1
}

func (p *lfuPolicy) victimFresh(evictable func(int) bool) int {
	for f := p.minFreq; f <= p.maxFreq; f++ {
		head, ok := p.bucketHead[f]
		if !ok {
			if f == p.minFreq {
				p.minFreq++
			}
			continue
		}
		for s := head; s >= 0; s = p.next[s] {
			if evictable(int(s)) {
				return int(s)
			}
		}
	}
	return -1
}

// randomPolicy probes uniformly random slots.
type randomPolicy struct {
	rng *rand.Rand
	n   int
}

// NewRandomPolicy returns a random-eviction policy over n slots.
func NewRandomPolicy(n int, seed int64) Policy {
	return &randomPolicy{rng: rand.New(rand.NewSource(seed)), n: n}
}

func (p *randomPolicy) Name() string      { return string(RandomPolicy) }
func (p *randomPolicy) OnInsert(int)      {}
func (p *randomPolicy) OnAccess(int)      {}
func (p *randomPolicy) BeginVictimSweep() {}

func (p *randomPolicy) Victim(evictable func(int) bool) int {
	for tries := 0; tries < 4*p.n; tries++ {
		s := p.rng.Intn(p.n)
		if evictable(s) {
			return s
		}
	}
	// Extremely contended: fall back to a deterministic sweep.
	for s := 0; s < p.n; s++ {
		if evictable(s) {
			return s
		}
	}
	return -1
}
