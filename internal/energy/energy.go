// Package energy models system-level power the way the paper measures it
// (§VI-C): socket-level CPU power via pcm-power and GPU power via
// nvidia-smi, multiplied by execution time. Here power states are constants
// per device and energy integrates the simulated busy/idle times.
package energy

// PowerModel holds device power states in watts.
type PowerModel struct {
	// CPUActive is socket+DRAM power while the CPU executes embedding
	// work; CPUIdle while it waits.
	CPUActive, CPUIdle float64
	// GPUActive/GPUIdle are the per-GPU equivalents.
	GPUActive, GPUIdle float64
}

// Default returns constants for the paper's platform: Xeon E5-2698v4
// (135 W TDP plus DDR4 power) and V100 (300 W board cap; sustained
// training draw below cap).
func Default() PowerModel {
	return PowerModel{
		CPUActive: 165,
		CPUIdle:   60,
		GPUActive: 250,
		GPUIdle:   50,
	}
}

// IterationEnergy returns joules consumed by one training iteration given
// its wall time and per-device busy times (all simulated seconds), for a
// system with numGPUs GPUs. Busy times are clamped to the available
// device-seconds.
func (p PowerModel) IterationEnergy(wall, cpuBusy, gpuBusy float64, numGPUs int) float64 {
	if wall <= 0 {
		return 0
	}
	if cpuBusy > wall {
		cpuBusy = wall
	}
	if cpuBusy < 0 {
		cpuBusy = 0
	}
	gpuSeconds := wall * float64(numGPUs)
	if gpuBusy > gpuSeconds {
		gpuBusy = gpuSeconds
	}
	if gpuBusy < 0 {
		gpuBusy = 0
	}
	e := cpuBusy*p.CPUActive + (wall-cpuBusy)*p.CPUIdle
	e += gpuBusy*p.GPUActive + (gpuSeconds-gpuBusy)*p.GPUIdle
	return e
}
