package energy

import (
	"math"
	"testing"
	"testing/quick"
)

func TestIterationEnergyBasics(t *testing.T) {
	p := PowerModel{CPUActive: 100, CPUIdle: 10, GPUActive: 200, GPUIdle: 20}
	// Fully busy for 1 s on both devices, one GPU.
	if got := p.IterationEnergy(1, 1, 1, 1); math.Abs(got-300) > 1e-9 {
		t.Errorf("fully busy = %v, want 300", got)
	}
	// Fully idle.
	if got := p.IterationEnergy(1, 0, 0, 1); math.Abs(got-30) > 1e-9 {
		t.Errorf("idle = %v, want 30", got)
	}
	// Zero wall time costs nothing.
	if got := p.IterationEnergy(0, 1, 1, 1); got != 0 {
		t.Errorf("zero wall = %v", got)
	}
	// Busy clamps to wall.
	if got := p.IterationEnergy(1, 5, 5, 1); math.Abs(got-300) > 1e-9 {
		t.Errorf("clamped = %v, want 300", got)
	}
	// Negative busy clamps to zero.
	if got := p.IterationEnergy(1, -1, -1, 1); math.Abs(got-30) > 1e-9 {
		t.Errorf("negative busy = %v, want 30", got)
	}
}

func TestMultiGPUEnergy(t *testing.T) {
	p := PowerModel{CPUActive: 100, CPUIdle: 10, GPUActive: 200, GPUIdle: 20}
	// 8 idle GPUs for 1 s: 10 + 8*20 = 170.
	if got := p.IterationEnergy(1, 0, 0, 8); math.Abs(got-170) > 1e-9 {
		t.Errorf("8 idle GPUs = %v, want 170", got)
	}
	// 8 GPUs fully busy: 10 + 8*200 = 1610.
	if got := p.IterationEnergy(1, 0, 8, 8); math.Abs(got-1610) > 1e-9 {
		t.Errorf("8 busy GPUs = %v", got)
	}
}

// TestEnergyMonotoneProperty: more busy time never reduces energy, and
// energy is always at least the all-idle floor.
func TestEnergyMonotoneProperty(t *testing.T) {
	p := Default()
	f := func(wallRaw, busyA, busyB float64) bool {
		wall := math.Abs(math.Mod(wallRaw, 100))
		a := math.Abs(math.Mod(busyA, 100))
		b := math.Abs(math.Mod(busyB, 100))
		if a > b {
			a, b = b, a
		}
		ea := p.IterationEnergy(wall, a, 0, 1)
		eb := p.IterationEnergy(wall, b, 0, 1)
		floor := p.IterationEnergy(wall, 0, 0, 1)
		return eb >= ea-1e-9 && ea >= floor-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestDefaultPlausible(t *testing.T) {
	p := Default()
	if p.CPUActive <= p.CPUIdle || p.GPUActive <= p.GPUIdle {
		t.Fatal("active power must exceed idle power")
	}
}
