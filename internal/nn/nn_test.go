package nn

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

func newRand() *rand.Rand { return rand.New(rand.NewSource(5)) }

// numericGradCheck compares analytic parameter gradients against central
// finite differences for a tiny MLP + BCE loss.
func TestMLPGradientCheck(t *testing.T) {
	rng := newRand()
	mlp, err := NewMLP([]int{3, 4, 1}, rng)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.New(5, 3)
	for i := range x.Data {
		x.Data[i] = rng.Float32()*2 - 1
	}
	labels := []float32{1, 0, 1, 1, 0}

	loss := func() float64 {
		logits := mlp.Forward(x)
		l, _ := BCEWithLogits(logits, labels)
		return float64(l)
	}

	// Analytic gradients.
	logits := mlp.Forward(x)
	_, grad := BCEWithLogits(logits, labels)
	mlp.Backward(grad)
	params := mlp.Params()

	const eps = 1e-3
	checked := 0
	for pi, p := range params {
		for wi := 0; wi < len(p.W); wi += 7 { // sample every 7th weight
			orig := p.W[wi]
			p.W[wi] = orig + eps
			up := loss()
			p.W[wi] = orig - eps
			down := loss()
			p.W[wi] = orig
			numeric := (up - down) / (2 * eps)
			analytic := float64(p.dW[wi])
			if diff := math.Abs(numeric - analytic); diff > 2e-3 && diff > 0.15*math.Abs(numeric) {
				t.Errorf("param %d[%d]: analytic %v vs numeric %v", pi, wi, analytic, numeric)
			}
			checked++
		}
	}
	if checked < 5 {
		t.Fatalf("only %d gradients checked", checked)
	}
}

func TestLinearShapes(t *testing.T) {
	l := NewLinear(3, 2, newRand())
	y := l.Forward(tensor.New(4, 3))
	if y.Rows != 4 || y.Cols != 2 {
		t.Fatalf("forward shape %dx%d", y.Rows, y.Cols)
	}
	dx := l.Backward(tensor.New(4, 2))
	if dx.Rows != 4 || dx.Cols != 3 {
		t.Fatalf("backward shape %dx%d", dx.Rows, dx.Cols)
	}
	if len(l.Params()) != 2 {
		t.Fatalf("params %d", len(l.Params()))
	}
}

func TestLinearPanics(t *testing.T) {
	l := NewLinear(3, 2, newRand())
	func() {
		defer func() {
			if recover() == nil {
				t.Error("wrong input width accepted")
			}
		}()
		l.Forward(tensor.New(4, 5))
	}()
	l2 := NewLinear(3, 2, newRand())
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Backward before Forward accepted")
			}
		}()
		l2.Backward(tensor.New(4, 2))
	}()
}

func TestReLU(t *testing.T) {
	r := NewReLU()
	x := tensor.FromSlice(1, 4, []float32{-1, 0, 2, -3})
	y := r.Forward(x)
	want := []float32{0, 0, 2, 0}
	for i := range want {
		if y.Data[i] != want[i] {
			t.Fatalf("relu = %v", y.Data)
		}
	}
	dy := tensor.FromSlice(1, 4, []float32{5, 5, 5, 5})
	dx := r.Backward(dy)
	wantDx := []float32{0, 0, 5, 0}
	for i := range wantDx {
		if dx.Data[i] != wantDx[i] {
			t.Fatalf("relu grad = %v", dx.Data)
		}
	}
}

func TestMLPConstruction(t *testing.T) {
	if _, err := NewMLP([]int{3}, newRand()); err == nil {
		t.Error("single-size MLP accepted")
	}
	m, err := NewMLP([]int{3, 5, 2}, newRand())
	if err != nil {
		t.Fatal(err)
	}
	// Linear, ReLU, Linear.
	if len(m.Layers) != 3 {
		t.Fatalf("layers %d", len(m.Layers))
	}
	if m.NumParams() != 3*5+5+5*2+2 {
		t.Fatalf("NumParams = %d", m.NumParams())
	}
	if m.FlopsForward(10) != 2*10*(3*5+5*2) {
		t.Fatalf("FlopsForward = %v", m.FlopsForward(10))
	}
}

func TestBCEWithLogits(t *testing.T) {
	logits := tensor.FromSlice(2, 1, []float32{0, 0})
	loss, grad := BCEWithLogits(logits, []float32{1, 0})
	// At logit 0: loss = ln 2 per sample.
	if math.Abs(float64(loss)-math.Ln2) > 1e-6 {
		t.Errorf("loss = %v, want ln2", loss)
	}
	// grad = (sigmoid(0) - y)/n = (0.5 - y)/2.
	if math.Abs(float64(grad.Data[0])+0.25) > 1e-6 || math.Abs(float64(grad.Data[1])-0.25) > 1e-6 {
		t.Errorf("grad = %v", grad.Data)
	}
	// Extreme logits stay finite.
	big := tensor.FromSlice(2, 1, []float32{40, -40})
	l2, g2 := BCEWithLogits(big, []float32{1, 0})
	if math.IsNaN(float64(l2)) || math.IsInf(float64(l2), 0) {
		t.Errorf("extreme loss = %v", l2)
	}
	if math.Abs(float64(g2.Data[0])) > 1e-6 || math.Abs(float64(g2.Data[1])) > 1e-6 {
		t.Errorf("extreme grads = %v", g2.Data)
	}
}

func TestSigmoid(t *testing.T) {
	s := Sigmoid(tensor.FromSlice(1, 3, []float32{0, 100, -100}))
	if math.Abs(float64(s.Data[0])-0.5) > 1e-6 || s.Data[1] < 0.999 || s.Data[2] > 0.001 {
		t.Fatalf("sigmoid = %v", s.Data)
	}
}

func TestSGDStepAndZero(t *testing.T) {
	w := []float32{1, 2}
	dw := []float32{10, -10}
	SGD{LR: 0.1}.Step([]Param{{W: w, dW: dw}})
	if w[0] != 0 || w[1] != 3 {
		t.Fatalf("after step w = %v", w)
	}
	if dw[0] != 0 || dw[1] != 0 {
		t.Fatalf("grads not zeroed: %v", dw)
	}
}

func TestTrainingReducesLoss(t *testing.T) {
	rng := newRand()
	mlp, err := NewMLP([]int{4, 16, 1}, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Learnable toy task: label = x0 > 0.
	x := tensor.New(64, 4)
	labels := make([]float32, 64)
	for i := 0; i < 64; i++ {
		for j := 0; j < 4; j++ {
			x.Set(i, j, rng.Float32()*2-1)
		}
		if x.At(i, 0) > 0 {
			labels[i] = 1
		}
	}
	opt := SGD{LR: 0.5}
	first, last := float32(0), float32(0)
	for step := 0; step < 200; step++ {
		logits := mlp.Forward(x)
		loss, grad := BCEWithLogits(logits, labels)
		if step == 0 {
			first = loss
		}
		last = loss
		mlp.Backward(grad)
		opt.Step(mlp.Params())
	}
	if last >= first*0.5 {
		t.Fatalf("loss did not halve: first %v last %v", first, last)
	}
}
