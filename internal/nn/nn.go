// Package nn implements the dense neural-network half of the DLRM: fully
// connected layers with ReLU activations (the bottom and top MLPs of
// Figure 1), a binary-cross-entropy-with-logits loss for click-through-rate
// prediction, and plain SGD — the optimizer the paper trains with.
//
// The implementation is deliberately sequential and allocation-stable so
// that two engines training the same stream produce bitwise-identical
// weights, which the integration tests rely on.
package nn

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/tensor"
)

// Layer is one differentiable stage of an MLP.
type Layer interface {
	// Forward consumes the layer input (batch x in) and returns the
	// output (batch x out). Implementations may retain the input for use
	// in Backward.
	Forward(x *tensor.Matrix) *tensor.Matrix
	// Backward consumes dL/d(output) and returns dL/d(input),
	// accumulating parameter gradients internally.
	Backward(dy *tensor.Matrix) *tensor.Matrix
	// Params returns parameter/gradient pairs for the optimizer, or nil
	// for parameterless layers.
	Params() []Param
}

// Param is one trainable tensor with its accumulated gradient.
type Param struct {
	W  []float32
	dW []float32
}

// Weights exposes the parameter values (for checkpoint comparison in tests).
func (p Param) Weights() []float32 { return p.W }

// Grad exposes the accumulated gradient.
func (p Param) Grad() []float32 { return p.dW }

// Linear is a fully connected layer: y = x*W + b, W is in x out.
type Linear struct {
	In, Out int
	W       *tensor.Matrix
	B       []float32
	dw      *tensor.Matrix
	db      []float32
	lastX   *tensor.Matrix
}

// NewLinear creates a Xavier-initialized fully connected layer using the
// deterministic rng.
func NewLinear(in, out int, rng *rand.Rand) *Linear {
	l := &Linear{
		In:  in,
		Out: out,
		W:   tensor.New(in, out),
		B:   make([]float32, out),
		dw:  tensor.New(in, out),
		db:  make([]float32, out),
	}
	l.W.XavierInit(in, out, rng)
	return l
}

// Forward implements Layer.
func (l *Linear) Forward(x *tensor.Matrix) *tensor.Matrix {
	if x.Cols != l.In {
		panic(fmt.Sprintf("nn: linear: input cols %d != in %d", x.Cols, l.In))
	}
	l.lastX = x
	y := tensor.New(x.Rows, l.Out)
	tensor.MatMul(y, x, l.W)
	tensor.AddBias(y, l.B)
	return y
}

// Backward implements Layer.
func (l *Linear) Backward(dy *tensor.Matrix) *tensor.Matrix {
	if l.lastX == nil {
		panic("nn: linear: Backward before Forward")
	}
	// dW += xᵀ dy ; db += colsum(dy) ; dx = dy Wᵀ.
	dwNew := tensor.New(l.In, l.Out)
	tensor.MatMulTN(dwNew, l.lastX, dy)
	tensor.AXPY(1, dwNew.Data, l.dw.Data)
	dbNew := make([]float32, l.Out)
	tensor.ColSums(dbNew, dy)
	tensor.AXPY(1, dbNew, l.db)
	dx := tensor.New(dy.Rows, l.In)
	tensor.MatMulNT(dx, dy, l.W)
	return dx
}

// Params implements Layer.
func (l *Linear) Params() []Param {
	return []Param{{W: l.W.Data, dW: l.dw.Data}, {W: l.B, dW: l.db}}
}

// FlopsForward returns the forward FLOP count for a given batch size
// (2*in*out per sample), used by the timing model.
func (l *Linear) FlopsForward(batch int) float64 {
	return 2 * float64(batch) * float64(l.In) * float64(l.Out)
}

// ReLU is the elementwise rectifier.
type ReLU struct {
	lastX *tensor.Matrix
}

// NewReLU returns a ReLU activation layer.
func NewReLU() *ReLU { return &ReLU{} }

// Forward implements Layer.
func (r *ReLU) Forward(x *tensor.Matrix) *tensor.Matrix {
	r.lastX = x
	y := tensor.New(x.Rows, x.Cols)
	for i, v := range x.Data {
		if v > 0 {
			y.Data[i] = v
		}
	}
	return y
}

// Backward implements Layer.
func (r *ReLU) Backward(dy *tensor.Matrix) *tensor.Matrix {
	if r.lastX == nil {
		panic("nn: relu: Backward before Forward")
	}
	dx := tensor.New(dy.Rows, dy.Cols)
	for i, v := range r.lastX.Data {
		if v > 0 {
			dx.Data[i] = dy.Data[i]
		}
	}
	return dx
}

// Params implements Layer.
func (r *ReLU) Params() []Param { return nil }

// MLP is a sequential stack of layers.
type MLP struct {
	Layers []Layer
}

// NewMLP builds Linear+ReLU stacks for the given layer sizes; the final
// Linear has no activation (the caller applies the loss or interaction).
// sizes must contain at least two entries (input and output width).
func NewMLP(sizes []int, rng *rand.Rand) (*MLP, error) {
	if len(sizes) < 2 {
		return nil, fmt.Errorf("nn: mlp: need >=2 sizes, got %v", sizes)
	}
	m := &MLP{}
	for i := 0; i+1 < len(sizes); i++ {
		m.Layers = append(m.Layers, NewLinear(sizes[i], sizes[i+1], rng))
		if i+2 < len(sizes) {
			m.Layers = append(m.Layers, NewReLU())
		}
	}
	return m, nil
}

// Forward runs all layers in order.
func (m *MLP) Forward(x *tensor.Matrix) *tensor.Matrix {
	for _, l := range m.Layers {
		x = l.Forward(x)
	}
	return x
}

// Backward runs all layers in reverse, returning dL/d(input).
func (m *MLP) Backward(dy *tensor.Matrix) *tensor.Matrix {
	for i := len(m.Layers) - 1; i >= 0; i-- {
		dy = m.Layers[i].Backward(dy)
	}
	return dy
}

// Params returns every trainable parameter in the stack.
func (m *MLP) Params() []Param {
	var ps []Param
	for _, l := range m.Layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// FlopsForward is the total forward FLOP count for one batch.
func (m *MLP) FlopsForward(batch int) float64 {
	var f float64
	for _, l := range m.Layers {
		if lin, ok := l.(*Linear); ok {
			f += lin.FlopsForward(batch)
		}
	}
	return f
}

// NumParams returns the number of trainable scalars.
func (m *MLP) NumParams() int {
	var n int
	for _, p := range m.Params() {
		n += len(p.W)
	}
	return n
}

// BCEWithLogits computes the mean binary cross entropy between logits and
// labels in {0,1}, and the gradient dL/dlogit = (sigmoid(z)-y)/batch.
func BCEWithLogits(logits *tensor.Matrix, labels []float32) (loss float32, grad *tensor.Matrix) {
	if logits.Cols != 1 || logits.Rows != len(labels) {
		panic(fmt.Sprintf("nn: bce: logits %dx%d vs %d labels", logits.Rows, logits.Cols, len(labels)))
	}
	grad = tensor.New(logits.Rows, 1)
	n := float32(logits.Rows)
	var sum float64
	for i := 0; i < logits.Rows; i++ {
		z := float64(logits.Data[i])
		y := float64(labels[i])
		// Numerically stable: log(1+exp(-|z|)) + max(z,0) - z*y.
		sum += math.Max(z, 0) - z*y + math.Log1p(math.Exp(-math.Abs(z)))
		s := 1 / (1 + math.Exp(-z))
		grad.Data[i] = (float32(s) - labels[i]) / n
	}
	return float32(sum / float64(logits.Rows)), grad
}

// Sigmoid returns the elementwise logistic of the logits (CTR predictions).
func Sigmoid(logits *tensor.Matrix) *tensor.Matrix {
	out := tensor.New(logits.Rows, logits.Cols)
	for i, z := range logits.Data {
		out.Data[i] = float32(1 / (1 + math.Exp(-float64(z))))
	}
	return out
}

// SGD is plain stochastic gradient descent with a fixed learning rate; the
// paper notes ScratchPipe leaves the SGD algorithm untouched.
type SGD struct {
	LR float32
}

// Step applies w -= lr*dw to every parameter and zeroes the gradients.
func (o SGD) Step(params []Param) {
	for _, p := range params {
		for i, g := range p.dW {
			p.W[i] -= o.LR * g
			p.dW[i] = 0
		}
	}
}
