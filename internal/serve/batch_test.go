package serve

import (
	"reflect"
	"testing"

	"repro/internal/hw"
	"repro/internal/trace"
)

// batchTestConfig is a serving config under enough load that queues
// form: a flash crowd against four replicas, which is where batching
// has material to work with.
func batchTestConfig(policy Policy, batch BatchSpec) Config {
	cfg := testConfig(policy, trace.High)
	cfg.Arrival = ArrivalSpec{Shape: ShapeFlash, Rate: 8000, Mult: 10}
	cfg.Batch = batch
	return cfg
}

// TestBatchCapOneByteIdentical pins the no-op contract: an explicit
// cap of 1 (and the zero spec) must produce a report deep-equal to the
// unbatched simulator's on both simulator paths — the closed-form fast
// path and, with resilience knobs engaged, the event-driven path. This
// is the -serve-batch 1 == flag-absent acceptance gate in test form.
func TestBatchCapOneByteIdentical(t *testing.T) {
	shapes := []struct {
		name string
		mut  func(*Config)
	}{
		{"closed-form", func(cfg *Config) {}},
		{"event-driven", func(cfg *Config) {
			cfg.Deadline = 20e-3
			cfg.Retry = RetrySpec{Max: 2}
			cfg.Faults = hw.FaultPlan{Events: []hw.FaultEvent{
				{Kind: hw.FaultReplicaDown, Replica: 2, At: 0.02, Until: 0.1},
			}}
		}},
	}
	for _, sh := range shapes {
		t.Run(sh.name, func(t *testing.T) {
			base := batchTestConfig(PolicyHitAware, BatchSpec{})
			sh.mut(&base)
			capOne := base
			capOne.Batch = BatchSpec{Cap: 1}
			want, err := Run(base)
			if err != nil {
				t.Fatal(err)
			}
			got, err := Run(capOne)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(want, got) {
				t.Errorf("cap-1 report differs from unbatched report:\nunbatched: %+v\ncap-1:     %+v", want, got)
			}
		})
	}
}

// TestBatchCountersConsistent: under flash load with cap 8, real
// batches form and the counters hang together — every batch within the
// cap, occupancy above one on average, per-worker launch counts
// summing to the fleet total, and every served query accounted to a
// batch (with no faults in play, served queries and launched batch
// members are the same population).
func TestBatchCountersConsistent(t *testing.T) {
	rep, err := Run(batchTestConfig(PolicyTelemetry, BatchSpec{Cap: 8}))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Batches == 0 {
		t.Fatal("no batches launched under flash load")
	}
	if rep.MaxBatch < 2 || rep.MaxBatch > 8 {
		t.Errorf("max batch %d out of [2, 8]", rep.MaxBatch)
	}
	if rep.BatchedQueries <= rep.Batches {
		t.Errorf("batched queries %d not above batch count %d — batching never amortized anything",
			rep.BatchedQueries, rep.Batches)
	}
	if rep.BatchedQueries != rep.Served {
		t.Errorf("batched queries %d != served %d: a fault-free batched run must serve exactly the launched members",
			rep.BatchedQueries, rep.Served)
	}
	var perWorker int64
	for _, w := range rep.Workers {
		perWorker += w.Batches
	}
	if perWorker != rep.Batches {
		t.Errorf("per-worker batch counts sum to %d, fleet total %d", perWorker, rep.Batches)
	}
	if rep.Batch.Cap != 8 {
		t.Errorf("report echoes batch spec %+v, want cap 8", rep.Batch)
	}
}

// TestBatchThroughputBeatsSingles: the tentpole's reason to exist.
// Under the same flash crowd, cap 8 must strictly beat cap 1 on
// throughput — shared keys probed once, PCIe and kernel launches
// amortized — while serving at least as many queries.
func TestBatchThroughputBeatsSingles(t *testing.T) {
	single, err := Run(batchTestConfig(PolicyTelemetry, BatchSpec{Cap: 1}))
	if err != nil {
		t.Fatal(err)
	}
	batched, err := Run(batchTestConfig(PolicyTelemetry, BatchSpec{Cap: 8}))
	if err != nil {
		t.Fatal(err)
	}
	if batched.Throughput <= single.Throughput {
		t.Errorf("cap-8 throughput %.0f q/s does not beat cap-1 %.0f q/s under flash load",
			batched.Throughput, single.Throughput)
	}
	if batched.Served < single.Served {
		t.Errorf("cap-8 served %d < cap-1 served %d", batched.Served, single.Served)
	}
}

// TestBatchKillFlushesPending: killing a replica mid-flash flushes its
// queued batch members as failed attempts — without a retry budget
// those flushed queries finalize as TimedOut, and conservation must
// hold exactly through the flush (no member lost in the batcher's
// pending queue).
func TestBatchKillFlushesPending(t *testing.T) {
	// The flash window of this arrival spans [0.125s, 0.15s); striking
	// inside it guarantees the victim holds queued batch members.
	cfg := batchTestConfig(PolicyTelemetry, BatchSpec{Cap: 8})
	cfg.Faults = hw.FaultPlan{Events: []hw.FaultEvent{
		{Kind: hw.FaultReplicaDown, Replica: 0, At: 0.13},
	}}
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TimedOut == 0 {
		t.Error("permanent mid-flash replica kill flushed no pending batch members (no timed-out queries)")
	}
	if got := rep.Served + rep.Shed + rep.Drops + rep.TimedOut; got != rep.Offered {
		t.Errorf("conservation broken through the kill flush: offered %d, fates sum %d", rep.Offered, got)
	}
	if rep.Batches == 0 {
		t.Error("surviving replicas never batched")
	}
}

// TestDegradedLatencySplit pins the degraded-path latency separation:
// queries answered on the CPU fallback (admission degrade mode) land in
// DegradedLatency, GPU-path completions in Latency, and the two counts
// partition Served exactly. Before the split, CPU-path completions —
// orders of magnitude slower — polluted the main percentile deque and
// made p99 track the fallback instead of the fleet.
func TestDegradedLatencySplit(t *testing.T) {
	cfg := batchTestConfig(PolicyHitAware, BatchSpec{})
	cfg.QueueCap = 8
	cfg.Admission = AdmissionSpec{Policy: AdmitNewest, Threshold: 0.5, Degrade: true}
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Degraded == 0 {
		t.Fatal("flash load against tiny queues never degraded a query — the split is unexercised")
	}
	if int64(rep.DegradedLatency.Count) != rep.Degraded {
		t.Errorf("degraded latency count %d != degraded served %d", rep.DegradedLatency.Count, rep.Degraded)
	}
	if int64(rep.Latency.Count)+int64(rep.DegradedLatency.Count) != rep.Served {
		t.Errorf("latency counts %d + %d do not partition served %d",
			rep.Latency.Count, rep.DegradedLatency.Count, rep.Served)
	}
	// The fallback is priced orders of magnitude above the GPU path, so
	// the split must actually show: the degraded median sits above the
	// GPU-path p99.
	if rep.DegradedLatency.P50 <= rep.Latency.P99 {
		t.Errorf("degraded p50 %.6f not above GPU-path p99 %.6f — split not separating the populations",
			rep.DegradedLatency.P50, rep.Latency.P99)
	}
}
