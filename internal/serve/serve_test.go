package serve

import (
	"math"
	"sort"
	"testing"

	"repro/internal/hw"
	"repro/internal/trace"
)

func testDists(class trace.Class, tables int, rows int64) []trace.Distribution {
	dists := make([]trace.Distribution, tables)
	for t := range dists {
		dists[t] = trace.MustClassDistribution(class, rows)
	}
	return dists
}

func testConfig(policy Policy, class trace.Class) Config {
	const tables, rows = 4, 10000
	return Config{
		Options: Options{
			Replicas: 4,
			Router:   policy,
			Arrival:  ArrivalSpec{Shape: ShapePoisson, Rate: 5000},
			Requests: 2000,
		},
		NumTables:    tables,
		RowsPerTable: rows,
		Lookups:      8,
		EmbeddingDim: 64,
		Dists:        testDists(class, tables, rows),
		Seed:         42,
		System:       hw.DefaultSystem(),
	}
}

func TestServeDeterministic(t *testing.T) {
	a, err := Run(testConfig(PolicyHitAware, trace.High))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(testConfig(PolicyHitAware, trace.High))
	if err != nil {
		t.Fatal(err)
	}
	if a.Served != b.Served || a.Drops != b.Drops || a.Hits != b.Hits ||
		a.Throughput != b.Throughput || a.Latency.P99 != b.Latency.P99 {
		t.Errorf("same seed diverged: %+v vs %+v", a, b)
	}
}

// TestSingleReplicaPolicyEquivalence: with one replica every router has
// exactly one choice, so all four policies must produce the identical
// report.
func TestSingleReplicaPolicyEquivalence(t *testing.T) {
	var base *Report
	for _, p := range Policies {
		cfg := testConfig(p, trace.Medium)
		cfg.Replicas = 1
		rep, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if base == nil {
			base = rep
			continue
		}
		if rep.Served != base.Served || rep.Hits != base.Hits ||
			rep.Misses != base.Misses || rep.Throughput != base.Throughput ||
			rep.Latency.P99 != base.Latency.P99 {
			t.Errorf("%s diverged from %s with one replica", p, base.Router)
		}
	}
}

// TestHitAwareDegradesGracefully: on a no-locality (uniform) trace the
// router's cache views carry no signal, so hit-aware must fall back to
// round-robin-comparable hit rates rather than collapsing onto one
// replica.
func TestHitAwareDegradesGracefully(t *testing.T) {
	ha, err := Run(testConfig(PolicyHitAware, trace.Random))
	if err != nil {
		t.Fatal(err)
	}
	rr, err := Run(testConfig(PolicyRoundRobin, trace.Random))
	if err != nil {
		t.Fatal(err)
	}
	if d := math.Abs(ha.HitRate() - rr.HitRate()); d > 0.05 {
		t.Errorf("hit-aware %.3f vs round-robin %.3f hit rate on uniform trace (|d|=%.3f > 0.05)",
			ha.HitRate(), rr.HitRate(), d)
	}
	var maxShare float64
	for _, w := range ha.Workers {
		if s := float64(w.Served) / float64(ha.Served); s > maxShare {
			maxShare = s
		}
	}
	if maxShare > 0.60 {
		t.Errorf("hit-aware sent %.0f%% of uniform traffic to one replica", maxShare*100)
	}
}

// TestLatencyPercentiles checks the end-to-end latency digest against a
// hand-computed trace: one single-row table on one replica, all queries
// arriving at t=0, so query i completes at svcMiss + i*svcHit and the
// percentiles follow the metrics.Series interpolation formula exactly.
func TestLatencyPercentiles(t *testing.T) {
	const n = 10
	dist, err := trace.NewUniform(1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Options: Options{
			Replicas: 1,
			Router:   PolicyRoundRobin,
			QueueCap: n + 1,
		},
		NumTables:    1,
		RowsPerTable: 1,
		Lookups:      1,
		EmbeddingDim: 64,
		Dists:        []trace.Distribution{dist},
		Seed:         7,
		System:       hw.DefaultSystem(),
	}
	f, err := NewFleet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := f.Simulate(make([]float64, n))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Served != n || rep.Drops != 0 {
		t.Fatalf("served %d drops %d, want %d/0", rep.Served, rep.Drops, n)
	}
	svcMiss := f.ServiceTime(1, 1, 0)
	svcHit := f.ServiceTime(0, 1, 0)
	lats := make([]float64, n)
	for i := range lats {
		lats[i] = svcMiss + float64(i)*svcHit
	}
	sort.Float64s(lats)
	quantile := func(q float64) float64 {
		pos := q * float64(n-1)
		lo := int(pos)
		frac := pos - float64(lo)
		if lo+1 >= n {
			return lats[n-1]
		}
		return lats[lo] + frac*(lats[lo+1]-lats[lo])
	}
	for _, c := range []struct {
		name      string
		got, want float64
	}{
		{"p50", rep.Latency.P50, quantile(0.50)},
		{"p95", rep.Latency.P95, quantile(0.95)},
		{"p99", rep.Latency.P99, quantile(0.99)},
		{"max", rep.Latency.Max, lats[n-1]},
	} {
		if math.Abs(c.got-c.want) > 1e-12 {
			t.Errorf("%s = %.9g, want %.9g", c.name, c.got, c.want)
		}
	}
	if rep.HitRate() != float64(n-1)/float64(n) {
		t.Errorf("hit rate %.3f, want %.3f", rep.HitRate(), float64(n-1)/float64(n))
	}
}

// TestOverloadDrops: a queue cap of 1 under simultaneous arrivals must
// bounce the excess.
func TestOverloadDrops(t *testing.T) {
	cfg := testConfig(PolicyLeastLoaded, trace.High)
	cfg.Replicas = 2
	cfg.QueueCap = 1
	f, err := NewFleet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := f.Simulate(make([]float64, 100))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Drops != 98 || rep.Served != 2 {
		t.Errorf("served %d drops %d, want 2/98 with cap 1 on 2 replicas", rep.Served, rep.Drops)
	}
}

// TestCrossHostRouting: on cluster2x2 with four replicas, three live off
// the frontend node and one off the frontend host pair, so cross-node
// traffic and link time must both be charged.
func TestCrossHostRouting(t *testing.T) {
	cfg := testConfig(PolicyRoundRobin, trace.Medium)
	topo, err := hw.ParseTopology("cluster2x2")
	if err != nil {
		t.Fatal(err)
	}
	cfg.Topology = topo
	cfg.Requests = 400
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.CrossNode == 0 || rep.CrossHost == 0 || rep.LinkTime <= 0 {
		t.Errorf("cross-node %d cross-host %d link %.6g: want all > 0",
			rep.CrossNode, rep.CrossHost, rep.LinkTime)
	}
	if rep.CrossHost >= rep.CrossNode {
		t.Errorf("cross-host %d >= cross-node %d", rep.CrossHost, rep.CrossNode)
	}
}

// TestShardedElasticWorkers: sharded and elastic scratchpad configs must
// carry over to serving replicas, with NUMA coordination priced in.
func TestShardedElasticWorkers(t *testing.T) {
	cfg := testConfig(PolicyHitAware, trace.High)
	topo, err := hw.ParseTopology("cluster2x2")
	if err != nil {
		t.Fatal(err)
	}
	cfg.Topology = topo
	cfg.Shards = 2
	cfg.Elastic = true
	cfg.Requests = 400
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Served == 0 {
		t.Fatal("no queries served")
	}
	if rep.CoordTime <= 0 {
		t.Errorf("sharded workers on NUMA hosts charged no coordination time")
	}
}

func TestZeroReportIsSafe(t *testing.T) {
	var rep Report
	if rep.HitRate() != 0 || rep.Throughput != 0 || rep.Drops != 0 {
		t.Errorf("zero Report not zero-valued: %+v", rep)
	}
	var w WorkerReport
	if w.HitRate() != 0 {
		t.Errorf("zero WorkerReport hit rate %.3f", w.HitRate())
	}
}

func TestOptionsValidation(t *testing.T) {
	if (Options{}).Active() {
		t.Error("zero Options should be inactive")
	}
	if err := (Options{}).Validate(); err != nil {
		t.Errorf("inactive Options should validate: %v", err)
	}
	bad := []Options{
		{Replicas: 1, Router: "fastest"},
		{Replicas: 1, Arrival: ArrivalSpec{Shape: "sawtooth", Rate: 100}},
		{Replicas: 1, QueueCap: -1},
		{Replicas: 1, CacheFrac: 1.5},
		{Replicas: 1, Requests: -5},
	}
	for i, o := range bad {
		if err := o.Validate(); err == nil {
			t.Errorf("bad options %d validated: %+v", i, o)
		}
	}
	cfg := testConfig(PolicyHitAware, trace.High)
	cfg.Dists = cfg.Dists[:2]
	if _, err := NewFleet(cfg); err == nil {
		t.Error("mismatched Dists length accepted")
	}
}
