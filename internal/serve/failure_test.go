package serve

import (
	"strings"
	"testing"

	"repro/internal/hw"
	"repro/internal/trace"
)

func mustServeFaults(t *testing.T, s string) hw.FaultPlan {
	t.Helper()
	p, err := hw.ParseFaultPlan(s)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func checkConserved(t *testing.T, rep *Report) {
	t.Helper()
	if err := rep.checkConservation(); err != nil {
		t.Fatal(err)
	}
	if rep.Offered != rep.Served+rep.Shed+rep.Drops+rep.TimedOut {
		t.Fatalf("conservation arithmetic off: %+v", rep)
	}
}

// killConfig is the shared kill scenario: a flash crowd piles the
// queues deep (the caps are roomy enough that little drops), then
// replica 1 dies near the spike's end with a full queue to flush. The
// flash window is [0.3 s, 0.375 s] (fractions of the 1.5 s nominal
// duration); the kill lands at 0.37 s.
func killConfig(t *testing.T, policy Policy) Config {
	cfg := testConfig(policy, trace.Medium)
	cfg.Arrival = ArrivalSpec{Shape: ShapeFlash, Rate: 1000, Mult: 6, At: 0.2, Dur: 0.05}
	cfg.Requests = 1500
	cfg.QueueCap = 64
	cfg.DenseTime = 2e-3 // ~2.2 ms service: work is in flight at any instant
	cfg.Faults = mustServeFaults(t, "replica1@0.37")
	return cfg
}

// TestReplicaKillConservation: a permanent mid-run replica kill without
// retries loses the flushed queue to TimedOut, keeps the conservation
// invariant exact, and books the replica's downtime and the fleet's
// availability loss.
func TestReplicaKillConservation(t *testing.T) {
	rep, err := Run(killConfig(t, PolicyLeastLoaded))
	if err != nil {
		t.Fatal(err)
	}
	checkConserved(t, rep)
	if rep.TimedOut == 0 {
		t.Error("queue flush produced no timed-out queries")
	}
	if rep.Availability >= 1 {
		t.Errorf("availability %.4f with a dead replica, want < 1", rep.Availability)
	}
	if dt := rep.Workers[1].Downtime; dt <= 0 {
		t.Errorf("killed replica booked %.4fs downtime", dt)
	}
	for i, w := range rep.Workers {
		if i != 1 && w.Downtime != 0 {
			t.Errorf("replica %d booked %.4fs downtime without a fault", i, w.Downtime)
		}
	}
}

// TestRetryFailoverBeatsNoRetry: under the same mid-run kill, bounded
// retries with failover must recover the flushed queries on the
// surviving replicas — strictly more served and strictly higher goodput
// than the no-retry run (the acceptance gate of DESIGN.md §13). The
// backoff matters as much as the budget: it spaces the retries past the
// spike so they find room instead of bouncing off still-full queues.
func TestRetryFailoverBeatsNoRetry(t *testing.T) {
	noRetry, err := Run(killConfig(t, PolicyLeastLoaded))
	if err != nil {
		t.Fatal(err)
	}
	withRetry := killConfig(t, PolicyLeastLoaded)
	withRetry.Retry = RetrySpec{Max: 3, Backoff: 0.1}
	retried, err := Run(withRetry)
	if err != nil {
		t.Fatal(err)
	}
	checkConserved(t, retried)
	if retried.Retried == 0 {
		t.Fatal("retry run issued no retries")
	}
	if retried.Served <= noRetry.Served {
		t.Errorf("retry served %d <= no-retry %d", retried.Served, noRetry.Served)
	}
	if retried.Goodput <= noRetry.Goodput {
		t.Errorf("retry goodput %.1f <= no-retry %.1f", retried.Goodput, noRetry.Goodput)
	}
	if retried.TimedOut >= noRetry.TimedOut {
		t.Errorf("retry timed out %d >= no-retry %d", retried.TimedOut, noRetry.TimedOut)
	}
}

// TestRouterExcludesDownReplica: while a replica is down no new query
// may land on it — its served count freezes at the kill.
func TestRouterExcludesDownReplica(t *testing.T) {
	for _, p := range Policies {
		cfg := testConfig(p, trace.Medium)
		cfg.Faults = mustServeFaults(t, "replica0@0.02")
		cfg.Retry = RetrySpec{Max: 1}
		rep, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		checkConserved(t, rep)
		// Every query the dead replica "served" completed before the
		// strike; its queue was flushed at it. The other replicas carry
		// the rest of the run.
		var others int64
		for i, w := range rep.Workers {
			if i != 0 {
				others += w.Served
			}
		}
		if others == 0 {
			t.Errorf("%s: survivors served nothing", p)
		}
		if rep.Workers[0].Served > others {
			t.Errorf("%s: dead replica served %d vs survivors %d", p, rep.Workers[0].Served, others)
		}
	}
}

// TestHealRewarm: a replica that recovers starts cold and re-warms
// through priced fills; the report carries the re-warm bill.
func TestHealRewarm(t *testing.T) {
	cfg := testConfig(PolicyRoundRobin, trace.High)
	cfg.Faults = mustServeFaults(t, "replica1@0.05-0.1")
	cfg.Retry = RetrySpec{Max: 2}
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	checkConserved(t, rep)
	if rep.RewarmFills == 0 || rep.RewarmTime <= 0 {
		t.Errorf("recovered replica booked no re-warm: fills %d, time %.6f",
			rep.RewarmFills, rep.RewarmTime)
	}
	if rep.Workers[1].Served == 0 {
		t.Error("recovered replica served nothing after heal")
	}
	if dt := rep.Workers[1].Downtime; dt <= 0.04 || dt > 0.06 {
		t.Errorf("downtime %.4fs, want ~0.05s outage overlap", dt)
	}
}

// TestHedgedRequests: with hedging on, slow queries duplicate to a
// second replica, the counter records it, and conservation still holds
// (first response wins — a query never counts twice).
func TestHedgedRequests(t *testing.T) {
	cfg := testConfig(PolicyLeastLoaded, trace.Medium)
	cfg.Hedge = 2e-4
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	checkConserved(t, rep)
	if rep.Hedged == 0 {
		t.Fatal("no hedges fired at a 0.2 ms hedge delay")
	}
	if rep.Served > rep.Offered {
		t.Fatalf("served %d > offered %d: a hedged query counted twice", rep.Served, rep.Offered)
	}
}

// TestDeadlineGoodput: a tight deadline splits goodput from throughput;
// without one they are equal.
func TestDeadlineGoodput(t *testing.T) {
	cfg := testConfig(PolicyLeastLoaded, trace.Medium)
	cfg.Arrival.Rate = 20000 // enough queueing that the tail crosses 0.3 ms
	cfg.Deadline = 3e-4
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	checkConserved(t, rep)
	if rep.Goodput >= rep.Throughput {
		t.Errorf("goodput %.1f >= throughput %.1f under a 1 ms deadline",
			rep.Goodput, rep.Throughput)
	}
	loose := testConfig(PolicyLeastLoaded, trace.Medium)
	loose.Deadline = 10
	rep2, err := Run(loose)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Goodput != rep2.Throughput {
		t.Errorf("goodput %.1f != throughput %.1f under a loose deadline",
			rep2.Goodput, rep2.Throughput)
	}
}

// TestAdmissionShedding: under overload the reject-newest controller
// sheds ahead of the queue cap, accounted separately from drops; with
// Degrade the rejections ride the CPU path instead and nothing is lost.
func TestAdmissionShedding(t *testing.T) {
	overload := func() Config {
		cfg := testConfig(PolicyLeastLoaded, trace.Medium)
		cfg.Arrival.Rate = 50000
		cfg.QueueCap = 8
		return cfg
	}
	cfg := overload()
	cfg.Admission = AdmissionSpec{Policy: AdmitNewest, Threshold: 0.5}
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	checkConserved(t, rep)
	if rep.Shed == 0 {
		t.Error("reject-newest shed nothing under 25x overload")
	}
	if rep.Drops != 0 {
		t.Errorf("queue-cap drops %d alongside a shedding threshold below the cap", rep.Drops)
	}

	deg := overload()
	deg.Admission = AdmissionSpec{Policy: AdmitNewest, Threshold: 0.5, Degrade: true}
	repD, err := Run(deg)
	if err != nil {
		t.Fatal(err)
	}
	checkConserved(t, repD)
	if repD.Shed != 0 || repD.Drops != 0 {
		t.Errorf("degraded mode still lost queries: shed %d, drops %d", repD.Shed, repD.Drops)
	}
	if repD.Degraded == 0 {
		t.Error("degraded mode served nothing on the CPU path")
	}
	if repD.Served != repD.Offered {
		t.Errorf("degraded mode served %d of %d offered", repD.Served, repD.Offered)
	}
	var workerDegraded int64
	for _, w := range repD.Workers {
		workerDegraded += w.Degraded
	}
	if workerDegraded != repD.Degraded {
		t.Errorf("per-worker degraded %d != fleet %d", workerDegraded, repD.Degraded)
	}
}

// TestAdmissionCheapestSpares: cheapest-first sheds only queries the
// router estimates cache-warm, so it sheds no more than reject-newest
// at the same threshold and keeps serving the miss-heavy tail.
func TestAdmissionCheapestSpares(t *testing.T) {
	run := func(policy AdmissionPolicy) *Report {
		cfg := testConfig(PolicyHitAware, trace.Medium)
		cfg.Arrival.Rate = 50000
		cfg.QueueCap = 8
		cfg.Admission = AdmissionSpec{Policy: policy, Threshold: 0.5}
		rep, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		checkConserved(t, rep)
		return rep
	}
	newest := run(AdmitNewest)
	cheapest := run(AdmitCheapest)
	if cheapest.Shed == 0 {
		t.Error("cheapest-first shed nothing under 25x overload on a high-locality trace")
	}
	if cheapest.Shed >= newest.Shed {
		t.Errorf("cheapest-first shed %d >= reject-newest %d", cheapest.Shed, newest.Shed)
	}
}

// TestHostKillTakesDownReplicas: on cluster2x2 a host kill takes down
// every replica homed on that host at once.
func TestHostKillTakesDownReplicas(t *testing.T) {
	cfg := testConfig(PolicyRoundRobin, trace.Medium)
	topo, err := hw.ParseTopology("cluster2x2")
	if err != nil {
		t.Fatal(err)
	}
	cfg.Topology = topo
	cfg.Arrival.Rate = 2000
	cfg.Requests = 4000 // ~2 s of traffic so the 1 s host kill lands mid-run
	cfg.Faults = mustServeFaults(t, "host1@1")
	cfg.Retry = RetrySpec{Max: 2}
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	checkConserved(t, rep)
	downed := 0
	for _, w := range rep.Workers {
		if w.Host == 1 {
			if w.Downtime <= 0 {
				t.Errorf("replica on host 1 booked no downtime")
			}
			downed++
		} else if w.Downtime != 0 {
			t.Errorf("replica on host %d booked %.4fs downtime", w.Host, w.Downtime)
		}
	}
	if downed != 2 {
		t.Fatalf("%d replicas homed on host 1, want 2 on cluster2x2 with 4 replicas", downed)
	}
	if rep.Availability >= 1 || rep.Availability <= 0 {
		t.Errorf("availability %.4f, want in (0,1)", rep.Availability)
	}
}

// TestResilientNeutralKnobsMatchFastPath: with resilience knobs engaged
// but never exercised (retry budget on a fault-free, drop-free run) the
// event-driven simulator must reproduce the fast path's report exactly.
func TestResilientNeutralKnobsMatchFastPath(t *testing.T) {
	mk := func() Config {
		cfg := testConfig(PolicyHitAware, trace.Medium)
		cfg.Arrival.Rate = 1000 // well under capacity: no drops either way
		cfg.Requests = 600
		return cfg
	}
	fast, err := Run(mk())
	if err != nil {
		t.Fatal(err)
	}
	cfg := mk()
	cfg.Retry = RetrySpec{Max: 2}
	resilient, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if fast.Drops != 0 || resilient.Drops != 0 {
		t.Fatalf("scenario not drop-free (fast %d, resilient %d): comparison void",
			fast.Drops, resilient.Drops)
	}
	if resilient.Served != fast.Served || resilient.Hits != fast.Hits ||
		resilient.Misses != fast.Misses || resilient.Fills != fast.Fills ||
		resilient.Throughput != fast.Throughput ||
		resilient.Latency.P50 != fast.Latency.P50 ||
		resilient.Latency.P99 != fast.Latency.P99 ||
		resilient.Availability != 1 || resilient.Goodput != fast.Goodput {
		t.Errorf("neutral-knob resilient run diverged from fast path:\nfast      %+v\nresilient %+v",
			fast, resilient)
	}
	if resilient.Retried != 0 || resilient.Hedged != 0 || resilient.Shed != 0 ||
		resilient.TimedOut != 0 || resilient.Degraded != 0 {
		t.Errorf("neutral knobs produced nonzero resilience counters: %+v", resilient)
	}
}

// TestZeroFaultReportFields: the fast path fills the new fields with
// their documented identities (never nil, never unset).
func TestZeroFaultReportFields(t *testing.T) {
	rep, err := Run(testConfig(PolicyLeastLoaded, trace.Medium))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Availability != 1 {
		t.Errorf("fault-free availability %.4f, want 1", rep.Availability)
	}
	if rep.Goodput != rep.Throughput {
		t.Errorf("fault-free goodput %.1f != throughput %.1f", rep.Goodput, rep.Throughput)
	}
	if rep.Shed != 0 || rep.TimedOut != 0 || rep.Retried != 0 || rep.Hedged != 0 ||
		rep.Degraded != 0 || rep.RewarmFills != 0 || rep.RewarmTime != 0 {
		t.Errorf("fault-free run carries resilience counters: %+v", rep)
	}
	for _, w := range rep.Workers {
		if w.Downtime != 0 || w.Degraded != 0 {
			t.Errorf("fault-free worker carries downtime/degraded: %+v", w)
		}
	}
}

// TestServeFaultValidation: the serving config rejects fault plans that
// cannot strike it.
func TestServeFaultValidation(t *testing.T) {
	for _, tc := range []struct{ plan, why string }{
		{"replica7@0.5", "replica index past the fleet"},
		{"host0@1", "host kill without a topology"},
		{"link:host0-host1@5", "training-only event kind"},
	} {
		cfg := testConfig(PolicyLeastLoaded, trace.Medium)
		cfg.Faults = mustServeFaults(t, tc.plan)
		if _, err := NewFleet(cfg); err == nil {
			t.Errorf("NewFleet accepted %q: %s", tc.plan, tc.why)
		}
	}
}

// TestResilienceStringCanonical pins the canonical resilience shape key
// recorded by benchmark baselines.
func TestResilienceStringCanonical(t *testing.T) {
	if s := (Options{}).ResilienceString(); s != "" {
		t.Errorf("zero options render %q, want empty", s)
	}
	o := Options{
		Deadline:  0.02,
		Retry:     RetrySpec{Max: 2},
		Hedge:     5e-4,
		Admission: AdmissionSpec{Policy: AdmitNewest, Threshold: 0.75},
	}
	want := "deadline=0.02;retry=2:0.5;hedge=0.0005;admission=newest:0.75"
	if s := o.ResilienceString(); s != want {
		t.Errorf("ResilienceString() = %q, want %q", s, want)
	}
}

// TestParseResilienceFlags covers the -retry and -admission grammars.
func TestParseResilienceFlags(t *testing.T) {
	r, err := ParseRetry("2:0.25")
	if err != nil || r.Max != 2 || r.Backoff != 0.25e-3 {
		t.Errorf("ParseRetry(2:0.25) = %+v, %v", r, err)
	}
	if r, err := ParseRetry("3"); err != nil || r.Backoff != DefaultRetryBackoff {
		t.Errorf("ParseRetry(3) = %+v, %v (want default backoff)", r, err)
	}
	for _, in := range []string{"0", "-1", "2:", "2:0", "2:-1", "abc"} {
		if _, err := ParseRetry(in); err == nil {
			t.Errorf("ParseRetry(%q) accepted", in)
		}
	}
	a, err := ParseAdmission("cheapest:0.5:degrade")
	if err != nil || a.Policy != AdmitCheapest || a.Threshold != 0.5 || !a.Degrade {
		t.Errorf("ParseAdmission(cheapest:0.5:degrade) = %+v, %v", a, err)
	}
	if a, err := ParseAdmission("degrade"); err != nil || a.Policy != AdmitAll || !a.Degrade {
		t.Errorf("ParseAdmission(degrade) = %+v, %v", a, err)
	}
	if a, err := ParseAdmission("newest"); err != nil || a.Threshold != DefaultAdmissionThreshold {
		t.Errorf("ParseAdmission(newest) = %+v, %v (want default threshold)", a, err)
	}
	for _, in := range []string{"oldest", "newest:2", "newest:-0.5", "degrade:0.5", "newest:0.5:0.6:degrade"} {
		if _, err := ParseAdmission(in); err == nil {
			t.Errorf("ParseAdmission(%q) accepted", in)
		}
	}
	// Round-trips through the canonical String form.
	for _, in := range []string{"2:0.25", "3"} {
		spec, err := ParseRetry(in)
		if err != nil {
			t.Fatal(err)
		}
		back, err := ParseRetry(spec.String())
		if err != nil || back != spec {
			t.Errorf("retry round-trip %q -> %q -> %+v, %v", in, spec.String(), back, err)
		}
	}
	for _, in := range []string{"newest", "cheapest:0.5:degrade", "degrade"} {
		spec, err := ParseAdmission(in)
		if err != nil {
			t.Fatal(err)
		}
		back, err := ParseAdmission(spec.String())
		if err != nil || back != spec {
			t.Errorf("admission round-trip %q -> %q -> %+v, %v", in, spec.String(), back, err)
		}
	}
}

// TestResilienceOptionValidation: the new knobs reject nonsense values.
func TestResilienceOptionValidation(t *testing.T) {
	bad := []Options{
		{Replicas: 1, Deadline: -1},
		{Replicas: 1, Hedge: -0.5},
		{Replicas: 1, Retry: RetrySpec{Max: -1}},
		{Replicas: 1, Retry: RetrySpec{Max: 1, Backoff: -2}},
		{Replicas: 1, Admission: AdmissionSpec{Policy: "oldest"}},
		{Replicas: 1, Admission: AdmissionSpec{Policy: AdmitNewest, Threshold: 1.5}},
	}
	for i, o := range bad {
		if err := o.Validate(); err == nil {
			t.Errorf("bad options %d validated: %+v", i, o)
		}
	}
	if (Options{Replicas: 1}).Resilient() {
		t.Error("plain serving options report resilient")
	}
	if !(Options{Replicas: 1, Retry: RetrySpec{Max: 1}}).Resilient() {
		t.Error("retry options not resilient")
	}
}

// TestDropRateSignals: the per-report and per-worker drop-rate signals
// (satellite of DESIGN.md §13) complement the served-only percentiles.
func TestDropRateSignals(t *testing.T) {
	rep := Report{Offered: 100, Served: 80, Drops: 10, Shed: 6, TimedOut: 4}
	if got := rep.DropRate(); got != 0.20 {
		t.Errorf("DropRate() = %.3f, want 0.20", got)
	}
	w := WorkerReport{Served: 30, Drops: 10}
	if got := w.DropRate(); got != 0.25 {
		t.Errorf("worker DropRate() = %.3f, want 0.25", got)
	}
	if (Report{}).DropRate() != 0 || (WorkerReport{}).DropRate() != 0 {
		t.Error("zero-value drop rates not zero")
	}
}

// TestArrivalEdgeCases (satellite): zero/negative rates, flash windows
// past the horizon, and out-of-range diurnal amplitudes each fail
// validation with a single-line error — no panic, no silent clamp.
func TestArrivalEdgeCases(t *testing.T) {
	bad := []ArrivalSpec{
		{Shape: ShapePoisson, Rate: 0},
		{Shape: ShapePoisson, Rate: -100},
		{Shape: ShapeDiurnal, Rate: 100, Amp: 1.5},
		{Shape: ShapeDiurnal, Rate: 100, Amp: -0.5},
		{Shape: ShapeFlash, Rate: 100, At: 0.95, Dur: 0.2}, // window past horizon
		{Shape: ShapeFlash, Rate: 100, At: 0.999},          // default dur pushes past horizon
	}
	for i, spec := range bad {
		err := spec.Validate()
		if err == nil {
			t.Errorf("bad arrival %d validated: %+v", i, spec)
			continue
		}
		if strings.Contains(err.Error(), "\n") {
			t.Errorf("bad arrival %d error spans lines: %q", i, err)
		}
	}
	for _, in := range []string{"poisson:0", "poisson:-5", "diurnal:100:2", "flash:100:4:0.95:0.2"} {
		if _, err := ParseArrival(in); err == nil {
			t.Errorf("ParseArrival(%q) accepted", in)
		}
	}
	// The good window right at the horizon still passes.
	if err := (ArrivalSpec{Shape: ShapeFlash, Rate: 100, At: 0.9, Dur: 0.1}).Validate(); err != nil {
		t.Errorf("flash window ending exactly at the horizon rejected: %v", err)
	}
}
