package serve

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/hw"
	"repro/internal/trace"
)

// propViolation runs cfg and returns a description of the first broken
// invariant, "" when all hold. The invariants are exact, not tolerant:
//
//   - conservation: Offered = Served + Shed + Drops + TimedOut — every
//     generated query meets exactly one fate, whatever combination of
//     batching, faults, retries, hedging, admission control, and
//     deadlines the config engages;
//   - Goodput <= Throughput: the deadline-meeting completion rate can
//     never exceed the completion rate;
//   - non-negative fates, and Served bounded by Offered.
func propViolation(cfg Config) string {
	rep, err := Run(cfg)
	if err != nil {
		return fmt.Sprintf("Run failed: %v", err)
	}
	if rep.Served < 0 || rep.Shed < 0 || rep.Drops < 0 || rep.TimedOut < 0 {
		return fmt.Sprintf("negative fate count: served %d shed %d drops %d timedout %d",
			rep.Served, rep.Shed, rep.Drops, rep.TimedOut)
	}
	if got := rep.Served + rep.Shed + rep.Drops + rep.TimedOut; got != rep.Offered {
		return fmt.Sprintf("conservation broken: offered %d != served %d + shed %d + drops %d + timedout %d = %d",
			rep.Offered, rep.Served, rep.Shed, rep.Drops, rep.TimedOut, got)
	}
	if rep.Served > rep.Offered {
		return fmt.Sprintf("served %d exceeds offered %d", rep.Served, rep.Offered)
	}
	if rep.Goodput > rep.Throughput {
		return fmt.Sprintf("goodput %g exceeds throughput %g", rep.Goodput, rep.Throughput)
	}
	return ""
}

// randServeConfig draws one serving configuration from the whole knob
// space: every router (including telemetry), every arrival shape, and
// random combinations of deadline, retry, hedging, admission control,
// replica faults, and batching. Requests stays small so the suite
// explores many configurations instead of simulating few long ones.
func randServeConfig(rng *rand.Rand) Config {
	const tables = 2
	const rows = 4000
	classes := []trace.Class{trace.Random, trace.Low, trace.Medium, trace.High}
	class := classes[rng.Intn(len(classes))]
	allPolicies := append(append([]Policy{}, Policies...), PolicyTelemetry)

	replicas := 1 + rng.Intn(5)
	opts := Options{
		Replicas:  replicas,
		Router:    allPolicies[rng.Intn(len(allPolicies))],
		Requests:  64 + rng.Intn(449),
		QueueCap:  4 + rng.Intn(61),
		CacheFrac: 0.02 + 0.08*rng.Float64(),
	}
	switch rng.Intn(3) {
	case 0:
		opts.Arrival = ArrivalSpec{Shape: ShapePoisson, Rate: 500 + 8000*rng.Float64()}
	case 1:
		opts.Arrival = ArrivalSpec{Shape: ShapeDiurnal, Rate: 500 + 8000*rng.Float64(), Amp: rng.Float64()}
	default:
		opts.Arrival = ArrivalSpec{Shape: ShapeFlash, Rate: 500 + 8000*rng.Float64(),
			Mult: 2 + 10*rng.Float64(), At: 0.2 + 0.3*rng.Float64(), Dur: 0.1 + 0.2*rng.Float64()}
	}
	if rng.Intn(2) == 0 {
		opts.Deadline = (2 + 50*rng.Float64()) * 1e-3
	}
	if rng.Intn(2) == 0 {
		opts.Retry = RetrySpec{Max: 1 + rng.Intn(3), Backoff: rng.Float64() * 2e-3}
	}
	if rng.Intn(3) == 0 {
		opts.Hedge = (1 + 10*rng.Float64()) * 1e-3
	}
	switch rng.Intn(4) {
	case 0:
		opts.Admission = AdmissionSpec{Policy: AdmitNewest, Threshold: 0.5 + 0.4*rng.Float64()}
	case 1:
		opts.Admission = AdmissionSpec{Policy: AdmitNewest, Threshold: 0.5 + 0.4*rng.Float64(), Degrade: true}
	}
	if rng.Intn(3) == 0 {
		// At most one fault per replica: a second strike on a replica
		// that is already down is a plan-validation error, not a
		// simulator state the property needs to explore.
		kills := 1 + rng.Intn(2)
		for _, r := range rng.Perm(replicas) {
			if kills == 0 {
				break
			}
			kills--
			e := hw.FaultEvent{Kind: hw.FaultReplicaDown, Replica: r,
				At: 0.001 + 0.2*rng.Float64()}
			if rng.Intn(2) == 0 {
				e.Until = e.At + 0.001 + 0.2*rng.Float64()
			}
			opts.Faults.Events = append(opts.Faults.Events, e)
		}
	}
	switch rng.Intn(4) {
	case 0:
	case 1:
		opts.Batch = BatchSpec{Cap: 2 + rng.Intn(7)}
	case 2:
		opts.Batch = BatchSpec{Cap: 2 + rng.Intn(15), Delay: rng.Float64() * 0.5e-3}
	default:
		opts.Batch = BatchSpec{Cap: 1}
	}

	return Config{
		Options:      opts,
		NumTables:    tables,
		RowsPerTable: rows,
		Lookups:      4,
		EmbeddingDim: 32,
		Dists:        testDists(class, tables, rows),
		Seed:         rng.Int63(),
		System:       hw.DefaultSystem(),
	}
}

// shrinkServeConfig greedily minimizes a violating config: halve the
// request count, then switch off one knob at a time (faults, batching,
// hedging, retries, admission, deadline, extra replicas), keeping each
// simplification only while the violation persists. The result is the
// smallest configuration this ladder reaches that still breaks the
// invariant — what the failure log shows, so a red run points at the
// interacting knobs instead of a 500-query haystack.
func shrinkServeConfig(cfg Config) Config {
	for cfg.Requests > 8 {
		c := cfg
		c.Requests = cfg.Requests / 2
		if propViolation(c) == "" {
			break
		}
		cfg = c
	}
	simplify := []func(*Config){
		func(c *Config) { c.Faults = hw.FaultPlan{} },
		func(c *Config) { c.Batch = BatchSpec{} },
		func(c *Config) { c.Hedge = 0 },
		func(c *Config) { c.Retry = RetrySpec{} },
		func(c *Config) { c.Admission = AdmissionSpec{} },
		func(c *Config) { c.Deadline = 0 },
		func(c *Config) { c.Replicas = 1; c.Faults = hw.FaultPlan{} },
	}
	for _, f := range simplify {
		c := cfg
		f(&c)
		if propViolation(c) != "" {
			cfg = c
		}
	}
	return cfg
}

// TestServeConservationProperty draws randomized serving configurations
// across the full knob space and checks the exact conservation
// invariant (Offered = Served + Shed + Drops + TimedOut) and
// Goodput <= Throughput on every one. On a violation it shrinks the
// config first and reports the minimal reproduction.
func TestServeConservationProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(20220614))
	const trials = 150
	for i := 0; i < trials; i++ {
		cfg := randServeConfig(rng)
		if v := propViolation(cfg); v != "" {
			small := shrinkServeConfig(cfg)
			t.Logf("trial %d violated, shrunk reproduction: %+v", i, small.Options)
			t.Fatalf("trial %d: %s (shrunk: %s)", i, v, propViolation(small))
		}
	}
}
