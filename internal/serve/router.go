// Request routers: the policy that picks which replica serves each
// arriving query. Routing is where the serving fleet trades locality
// against load: spreading queries evenly balances queues but dilutes
// every replica's cache, while concentrating similar queries heats one
// replica's cache at the risk of queue buildup. The hit-aware policy
// navigates exactly that frontier.

package serve

import (
	"fmt"
	"math/rand"
)

// Policy names a routing policy.
type Policy string

const (
	// PolicyRandom routes each query to a uniformly random replica.
	PolicyRandom Policy = "random"
	// PolicyRoundRobin cycles replicas in index order.
	PolicyRoundRobin Policy = "roundrobin"
	// PolicyLeastLoaded routes to the replica with the shortest queue
	// at arrival time (ties break toward the lower index).
	PolicyLeastLoaded Policy = "leastloaded"
	// PolicyHitAware scores each replica by the estimated overlap
	// between the query's embedding IDs and the replica's cache
	// contents (tracked router-side, not by oracle inspection), minus a
	// queue-depth penalty; ties break toward the shallower queue, then
	// the lower index.
	PolicyHitAware Policy = "hitaware"
	// PolicyTelemetry is the hit-aware successor that replaces the
	// router's send-history cache view with replica-published
	// telemetry: each worker reports a decayed per-table hit rate as it
	// plans (at most every TelemetryInterval of virtual time), and the
	// router scores replicas by the expected hit occurrences that view
	// predicts for the query, minus the same queue-depth penalty.
	// Snapshots older than TelemetryStaleness score zero, and a down
	// replica publishes nothing — its view is cleared on the kill, so
	// the router never routes toward a warmth that died with the
	// scratchpad.
	PolicyTelemetry Policy = "hitaware-telemetry"
)

// Policies lists every routing policy in escalation order.
var Policies = []Policy{PolicyRandom, PolicyRoundRobin, PolicyLeastLoaded, PolicyHitAware}

// PolicyNames lists the parseable policies for usage errors.
const PolicyNames = "random, roundrobin, leastloaded, hitaware, hitaware-telemetry"

// ParsePolicy resolves a routing policy name ("" selects hitaware).
func ParsePolicy(s string) (Policy, error) {
	switch Policy(s) {
	case "", PolicyHitAware:
		return PolicyHitAware, nil
	case PolicyRandom:
		return PolicyRandom, nil
	case PolicyRoundRobin:
		return PolicyRoundRobin, nil
	case PolicyLeastLoaded:
		return PolicyLeastLoaded, nil
	case PolicyTelemetry:
		return PolicyTelemetry, nil
	}
	return "", fmt.Errorf("serve: unknown router policy %q (want %s)", s, PolicyNames)
}

// Telemetry calibration for PolicyTelemetry.
const (
	// TelemetryDecay is the weight of the newest per-table hit-rate
	// sample in a worker's exponentially decayed estimate.
	TelemetryDecay = 0.25
	// TelemetryInterval is the minimum virtual time between a worker's
	// telemetry publications — the staleness the router tolerates by
	// design (a busier publication schedule would just be the oracle).
	TelemetryInterval = 1e-3
	// TelemetryStaleness bounds how old a published snapshot may be
	// before the router treats the replica as unknown (scores zero).
	// An idle replica stops publishing, ages out, draws a query, and
	// publishes again — the loop that keeps the view live.
	TelemetryStaleness = 50e-3
)

// depthPenalty converts queue depth into overlap-score units, in
// multiples of the query's own occurrence count: each queued request
// costs a full query's worth of overlap. A fully warm replica can
// therefore never outbid an idle rival from behind a queue — overlap
// only breaks ties between equally shallow queues. Weaker penalties
// (tried first) let the warm replica absorb the whole stream and blow
// up the latency tail; this calibration keeps the p99 at the
// load-balancers' level while still concentrating traffic for cache
// warmth whenever the fleet has slack.
const depthPenalty = 1.0

// router is the routing state shared across a run: the PRNG for the
// random policy, the round-robin cursor, and the hit-aware policy's
// per-replica cache views.
type router struct {
	policy Policy
	rng    *rand.Rand
	rr     int
	views  []*cacheView
	telem  []telemSnapshot
}

// telemSnapshot is the router's copy of one replica's last published
// telemetry: the decayed per-table hit rates and the publication time.
type telemSnapshot struct {
	rates []float64
	at    float64
	ok    bool
}

// newRouter builds the routing state. Views are kept when the policy is
// hit-aware (scoring needs them) or when needViews is set (the
// cheapest-first admission controller estimates query cost from them
// under any policy); the telemetry policy allocates the published-view
// slots instead.
func newRouter(policy Policy, replicas, viewCap int, seed int64, needViews bool) *router {
	r := &router{policy: policy, rng: rand.New(rand.NewSource(seed))}
	if policy == PolicyHitAware || needViews {
		r.views = make([]*cacheView, replicas)
		for i := range r.views {
			r.views[i] = newCacheView(viewCap)
		}
	}
	if policy == PolicyTelemetry {
		r.telem = make([]telemSnapshot, replicas)
	}
	return r
}

// publish installs worker w's decayed per-table hit rates as its
// current telemetry snapshot, timestamped now.
func (r *router) publish(w int, rates []float64, now float64) {
	if r.telem == nil {
		return
	}
	snap := &r.telem[w]
	if snap.rates == nil {
		snap.rates = make([]float64, len(rates))
	}
	copy(snap.rates, rates)
	snap.at = now
	snap.ok = true
}

// telemScore is the expected number of the query's nkeys occurrences
// worker w's published hit rates predict as resident: zero when the
// replica has never published or its snapshot aged past the staleness
// bound.
func (r *router) telemScore(w, nkeys int, now float64) float64 {
	snap := &r.telem[w]
	if !snap.ok || now-snap.at > TelemetryStaleness || len(snap.rates) == 0 {
		return 0
	}
	sum := 0.0
	for _, rate := range snap.rates {
		sum += rate
	}
	return sum * float64(nkeys) / float64(len(snap.rates))
}

// pick selects the replica for a request arriving at time now and
// records the routing decision in the views. keys is the request's
// embedding IDs in the router's composite (table, id) key space,
// occurrence-ordered. This is the fast-path entry; the resilient
// simulator calls choose/note separately so it can run the admission
// decision between them.
func (r *router) pick(keys []int64, workers []*worker, now float64) int {
	w := r.choose(keys, workers, now, nil)
	r.note(w, keys)
	return w
}

// choose selects a replica without recording it: down replicas are
// never eligible, nor is any index in excl (the workers a query already
// tried — retries and hedges go elsewhere). Returns -1 when no replica
// is eligible. With no replica down and no exclusions every policy
// follows the exact pre-resilience decision sequence (same PRNG draws,
// same depth probes), which is what keeps zero-fault runs
// diff-identical.
func (r *router) choose(keys []int64, workers []*worker, now float64, excl []int) int {
	eligible := func(i int) bool {
		if workers[i].down {
			return false
		}
		for _, x := range excl {
			if x == i {
				return false
			}
		}
		return true
	}
	switch r.policy {
	case PolicyRandom:
		if len(excl) == 0 && !anyDown(workers) {
			return r.rng.Intn(len(workers))
		}
		var cand []int
		for i := range workers {
			if eligible(i) {
				cand = append(cand, i)
			}
		}
		if len(cand) == 0 {
			return -1
		}
		return cand[r.rng.Intn(len(cand))]
	case PolicyRoundRobin:
		for range workers {
			w := r.rr
			r.rr = (r.rr + 1) % len(workers)
			if eligible(w) {
				return w
			}
		}
		return -1
	case PolicyLeastLoaded:
		best := -1
		bestDepth := 0
		for i := range workers {
			if !eligible(i) {
				continue
			}
			d := workers[i].depth(now)
			if best < 0 || d < bestDepth {
				best, bestDepth = i, d
			}
		}
		return best
	case PolicyHitAware:
		// score(w) = overlap(w) - depthPenalty * |keys| * depth(w),
		// where overlap counts the request's ID occurrences the router
		// believes are resident in w's scratchpad.
		best := -1
		bestScore := 0.0
		bestDepth := 0
		for i, wk := range workers {
			if !eligible(i) {
				continue
			}
			d := wk.depth(now)
			score := float64(r.views[i].overlap(keys)) - depthPenalty*float64(len(keys))*float64(d)
			if best < 0 || score > bestScore || (score == bestScore && d < bestDepth) {
				best, bestScore, bestDepth = i, score, d
			}
		}
		return best
	case PolicyTelemetry:
		// Hit-aware scoring against the replica-published view: the
		// same shape as PolicyHitAware (expected hit occurrences minus
		// the depth penalty, ties to the shallower queue then the lower
		// index), but the warmth estimate is what the replicas last
		// reported rather than the router's own send history.
		best := -1
		bestScore := 0.0
		bestDepth := 0
		for i, wk := range workers {
			if !eligible(i) {
				continue
			}
			d := wk.depth(now)
			score := r.telemScore(i, len(keys), now) - depthPenalty*float64(len(keys))*float64(d)
			if best < 0 || score > bestScore || (score == bestScore && d < bestDepth) {
				best, bestScore, bestDepth = i, score, d
			}
		}
		return best
	}
	return 0
}

// note records keys as routed to worker w in the router's cache views
// (no-op without views or for w < 0).
func (r *router) note(w int, keys []int64) {
	if w >= 0 && r.views != nil {
		r.views[w].insert(keys)
	}
}

// estOverlap returns the router's occurrence-weighted estimate of how
// many of keys are resident on worker w (0 without views) — the
// cheapest-first admission controller's cost signal.
func (r *router) estOverlap(w int, keys []int64) int {
	if r.views == nil {
		return 0
	}
	return r.views[w].overlap(keys)
}

// invalidate clears the router's view of worker w: the replica died
// and its scratchpad with it, so the send-history view is stale in full
// and the published telemetry describes a cache that no longer exists
// (a down replica publishes nothing). Both re-learn after recovery.
func (r *router) invalidate(w int) {
	if r.views != nil {
		r.views[w].reset()
	}
	if r.telem != nil {
		r.telem[w].ok = false
	}
}

// anyDown reports whether any worker is currently down.
func anyDown(workers []*worker) bool {
	for _, w := range workers {
		if w.down {
			return true
		}
	}
	return false
}

// cacheView is the router's approximate model of one replica's cache
// contents: a bounded FIFO set of the composite ID keys the router has
// sent there. It deliberately ignores the replica's true (LRU) eviction
// order — the router estimates from its own routing history, which is
// the information a real frontend actually has.
type cacheView struct {
	set  map[int64]struct{}
	ring []int64
	head int
	cap  int
}

func newCacheView(capacity int) *cacheView {
	if capacity < 1 {
		capacity = 1
	}
	return &cacheView{set: make(map[int64]struct{}, capacity), cap: capacity}
}

// overlap counts the keys (occurrence-weighted) present in the view.
func (v *cacheView) overlap(keys []int64) int {
	n := 0
	for _, k := range keys {
		if _, ok := v.set[k]; ok {
			n++
		}
	}
	return n
}

// insert records keys as resident, evicting the oldest entries FIFO
// once the view exceeds its capacity.
func (v *cacheView) insert(keys []int64) {
	for _, k := range keys {
		if _, ok := v.set[k]; ok {
			continue
		}
		v.set[k] = struct{}{}
		v.ring = append(v.ring, k)
		for len(v.set) > v.cap {
			old := v.ring[v.head]
			v.head++
			delete(v.set, old)
		}
	}
	// Compact the ring's consumed prefix once it dominates the slice.
	if v.head > len(v.ring)/2 && v.head > 1024 {
		v.ring = append(v.ring[:0], v.ring[v.head:]...)
		v.head = 0
	}
}

// reset empties the view (the modeled replica lost its scratchpad).
func (v *cacheView) reset() {
	for k := range v.set {
		delete(v.set, k)
	}
	v.ring = v.ring[:0]
	v.head = 0
}
